/**
 * @file
 * google-benchmark timings of the numeric Winograd kernels against
 * direct convolution - the host-side counterpart of the Fig 1
 * compute-reduction story, measured on real code rather than the
 * analytic model.
 *
 * The elementwise / transform kernels and the end-to-end pipeline also
 * sweep the execution-engine thread count (1/2/4/hardware max) so the
 * scaling of the blocked GEMM path is tracked release to release.
 *
 * With WINOMC_METRICS=BENCH_wino.json the run additionally dumps the
 * per-stage timer registry (wino.xform.*, wino.ew.*) as a reproducible
 * JSON artifact; WINOMC_TRACE=wino.trace.json captures the spans for
 * chrome://tracing / Perfetto.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/trace.hh"
#include "winograd/algo.hh"
#include "winograd/conv.hh"

using namespace winomc;

namespace {

struct Shapes
{
    int batch, ch, hw;
};

Shapes
shapeFor(int idx)
{
    switch (idx) {
      case 0:
        return {1, 16, 32};
      case 1:
        return {2, 32, 16};
      default:
        return {4, 8, 24};
    }
}

/** Thread sweep 1/2/4/max, deduplicated for small machines. */
void
threadArgs(benchmark::internal::Benchmark *b)
{
    b->ArgName("threads");
    std::vector<int> counts = {1, 2, 4, defaultThreadCount()};
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()),
                 counts.end());
    for (int c : counts)
        b->Arg(c);
}

void
BM_DirectConv(benchmark::State &state)
{
    Shapes s = shapeFor(int(state.range(0)));
    Rng rng(1);
    Tensor x(s.batch, s.ch, s.hw, s.hw);
    Tensor w(s.ch, s.ch, 3, 3);
    x.fillUniform(rng);
    w.fillUniform(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(directConvForward(x, w));
    state.SetItemsProcessed(int64_t(state.iterations()) * s.batch *
                            s.ch * s.ch * s.hw * s.hw * 9);
}
BENCHMARK(BM_DirectConv)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void
BM_WinogradConvF2(benchmark::State &state)
{
    Shapes s = shapeFor(int(state.range(0)));
    Rng rng(1);
    Tensor x(s.batch, s.ch, s.hw, s.hw);
    Tensor w(s.ch, s.ch, 3, 3);
    x.fillUniform(rng);
    w.fillUniform(rng);
    const auto &algo = algoF2x2_3x3();
    WinoWeights W = transformWeights(w, algo);
    for (auto _ : state)
        benchmark::DoNotOptimize(winogradForward(x, W, algo));
    state.SetItemsProcessed(int64_t(state.iterations()) * s.batch *
                            s.ch * s.ch * s.hw * s.hw * 9);
}
BENCHMARK(BM_WinogradConvF2)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void
BM_WinogradConvF4(benchmark::State &state)
{
    Shapes s = shapeFor(int(state.range(0)));
    Rng rng(1);
    Tensor x(s.batch, s.ch, s.hw, s.hw);
    Tensor w(s.ch, s.ch, 3, 3);
    x.fillUniform(rng);
    w.fillUniform(rng);
    const auto &algo = algoF4x4_3x3();
    WinoWeights W = transformWeights(w, algo);
    for (auto _ : state)
        benchmark::DoNotOptimize(winogradForward(x, W, algo));
    state.SetItemsProcessed(int64_t(state.iterations()) * s.batch *
                            s.ch * s.ch * s.hw * s.hw * 9);
}
BENCHMARK(BM_WinogradConvF4)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// -------------------------------------------------------------------
// Threaded kernel benchmarks. Largest shape: batch 8, 64 -> 64
// channels, 32x32 feature maps, F(4x4, 3x3); batch*tiles = 512 per uv.
// -------------------------------------------------------------------

struct ElementwiseFixture
{
    ElementwiseFixture()
    {
        Rng rng(1);
        Tensor x(8, 64, 32, 32);
        Tensor w(64, 64, 3, 3);
        x.fillUniform(rng);
        w.fillUniform(rng);
        const auto &algo = algoF4x4_3x3();
        W = transformWeights(w, algo);
        X = transformInput(x, algo);
        dY = inverseTransformAdjoint(x, algo);
    }

    WinoWeights W;
    WinoTiles X, dY;
};

ElementwiseFixture &
elementwiseFixture()
{
    static ElementwiseFixture f;
    return f;
}

void
BM_ElementwiseForward(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(int(state.range(0)));
    auto &f = elementwiseFixture();
    for (auto _ : state)
        benchmark::DoNotOptimize(elementwiseForward(f.X, f.W));
    // 2 flops per (uv, j, i, k) MAC.
    state.SetItemsProcessed(int64_t(state.iterations()) * f.X.uvCount() *
                            f.W.outChannels() * f.W.inChannels() *
                            f.X.batch() * f.X.tiles() * 2);
}
BENCHMARK(BM_ElementwiseForward)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_ElementwiseBackwardData(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(int(state.range(0)));
    auto &f = elementwiseFixture();
    for (auto _ : state)
        benchmark::DoNotOptimize(elementwiseBackwardData(f.dY, f.W));
    state.SetItemsProcessed(int64_t(state.iterations()) * f.X.uvCount() *
                            f.W.outChannels() * f.W.inChannels() *
                            f.X.batch() * f.X.tiles() * 2);
}
BENCHMARK(BM_ElementwiseBackwardData)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_ElementwiseGradWeights(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(int(state.range(0)));
    auto &f = elementwiseFixture();
    for (auto _ : state)
        benchmark::DoNotOptimize(elementwiseGradWeights(f.dY, f.X));
    state.SetItemsProcessed(int64_t(state.iterations()) * f.X.uvCount() *
                            f.W.outChannels() * f.W.inChannels() *
                            f.X.batch() * f.X.tiles() * 2);
}
BENCHMARK(BM_ElementwiseGradWeights)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_InputTransform(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(int(state.range(0)));
    Rng rng(1);
    Tensor x(2, 32, 32, 32);
    x.fillUniform(rng);
    const auto &algo = algoF2x2_3x3();
    for (auto _ : state)
        benchmark::DoNotOptimize(transformInput(x, algo));
}
BENCHMARK(BM_InputTransform)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_InverseTransform(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(int(state.range(0)));
    auto &f = elementwiseFixture();
    const auto &algo = algoF4x4_3x3();
    WinoTiles Y = elementwiseForward(f.X, f.W);
    for (auto _ : state)
        benchmark::DoNotOptimize(inverseTransform(Y, algo, 32, 32));
}
BENCHMARK(BM_InverseTransform)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

/**
 * One full training step of a Winograd layer: forward, backward-data,
 * and Winograd-domain weight gradient. The single end-to-end number
 * future PRs track.
 */
void
BM_WinoEndToEnd(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(int(state.range(0)));
    Rng rng(1);
    const auto &algo = algoF4x4_3x3();
    Tensor x(4, 32, 32, 32);
    Tensor w(32, 32, 3, 3);
    Tensor dy(4, 32, 32, 32);
    x.fillUniform(rng);
    w.fillUniform(rng);
    dy.fillUniform(rng);
    WinoWeights W = transformWeights(w, algo);
    for (auto _ : state) {
        Tensor y = winogradForward(x, W, algo);
        Tensor dx = winogradBackwardData(dy, W, algo, 32, 32);
        WinoWeights dW = winogradGradWeights(x, dy, algo);
        benchmark::DoNotOptimize(y);
        benchmark::DoNotOptimize(dx);
        benchmark::DoNotOptimize(dW);
    }
}
BENCHMARK(BM_WinoEndToEnd)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_ToomCookGenerate(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(
            makeWinograd(int(state.range(0)), int(state.range(1))));
}
BENCHMARK(BM_ToomCookGenerate)->Args({2, 3})->Args({4, 3})->Args({6, 3});

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    // Emit the observability artifacts before returning so the dump
    // exists even if a wrapper kills the process at exit.
    winomc::metrics::dumpIfConfigured();
    winomc::trace::flushIfConfigured();
    if (!winomc::metrics::configuredPath().empty())
        std::printf("metrics dump: %s\n",
                    winomc::metrics::configuredPath().c_str());
    if (!winomc::trace::configuredPath().empty())
        std::printf("trace file:   %s\n",
                    winomc::trace::configuredPath().c_str());
    return 0;
}
