/**
 * @file
 * Execution policy for the sparse + low-precision Winograd hot path.
 *
 * Two process-wide knobs select how the elementwise stage runs:
 *
 *  - WINOMC_PREC=fp32|fp16|bf16 picks the storage format of the
 *    transformed-activation slabs (weights and accumulation stay fp32);
 *  - WINOMC_SPARSE=off|on enables zero-skipping: per-tile-panel
 *    activation zero masks built during the input transform plus
 *    weight-row compaction, so fully-zero (row, panel) products are
 *    never issued.
 *
 * Both follow the common/env.hh discipline: missing/empty is the
 * default silently, garbage warns and falls back. The resolved pair is
 * an ExecPolicy; WinoPlan captures it at construction and refuses to
 * match under a different policy, so plan pools can never alias plans
 * across precision/sparsity modes.
 */

#ifndef WINOMC_WINOGRAD_LOWPREC_HH
#define WINOMC_WINOGRAD_LOWPREC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace winomc {

/** Storage precision of the transformed-activation slabs. */
enum class Prec { F32 = 0, F16 = 1, Bf16 = 2 };

const char *precName(Prec p);
/** Bytes per stored activation element under `p` (4, 2, 2). */
int precBytes(Prec p);
/** Parse a WINOMC_PREC value; unknown strings warn and yield F32. */
Prec parsePrec(const char *str);
/** The process-wide precision (env parsed once, or the last setPrec). */
Prec requestedPrec();
void setPrec(Prec p);

/** Parse a WINOMC_SPARSE value (on/off/1/0/true/false); unknown
 *  strings warn and yield false. */
bool parseSparse(const char *str);
/** The process-wide sparse flag (env parsed once, or the last
 *  setSparseMode). */
bool requestedSparse();
void setSparseMode(bool on);

/** The (precision, sparsity) pair a plan executes under. */
struct ExecPolicy
{
    Prec prec = Prec::F32;
    bool sparse = false;

    bool
    operator==(const ExecPolicy &o) const
    {
        return prec == o.prec && sparse == o.sparse;
    }
    bool operator!=(const ExecPolicy &o) const { return !(*this == o); }
};

/** The policy newly constructed plans capture right now. */
ExecPolicy currentExecPolicy();

/**
 * Cache-key suffix for `pol`: empty at the fp32-dense default (so
 * existing tuner caches and weight tags keep their format), else
 * "_fp16"/"_bf16" and/or "_sp" appended in that order.
 */
std::string execPolicySuffix(const ExecPolicy &pol);

/**
 * Winograd-domain tiles stored as 16-bit payloads (f16 or bf16 bit
 * patterns — the container does not care which). Same [uv][channel]
 * [batch][tile] layout and indexing as WinoTiles; the microkernels
 * decode to fp32 on load and accumulate in fp32.
 */
class HalfTiles
{
  public:
    HalfTiles() = default;

    /** Rebind shape, reusing capacity when possible. Contents are
     *  zeroed iff the shape changed. */
    void reshape(int alpha, int channels, int batch, int tiles);

    int alphaEdge() const { return alpha; }
    int uvCount() const { return alpha * alpha; }
    int channels() const { return nch; }
    int batch() const { return nb; }
    int tiles() const { return nt; }
    std::size_t size() const { return data.size(); }

    /** Contiguous (batch * tiles) row for a given (uv, channel). */
    std::uint16_t *
    row(int uv, int c)
    {
        return data.data() + index(uv, c, 0, 0);
    }
    const std::uint16_t *
    row(int uv, int c) const
    {
        return data.data() + index(uv, c, 0, 0);
    }

    /** Pointer to element (uv=0, c, b, t); see WinoTiles::uvBase. */
    std::uint16_t *
    uvBase(int c, int b, int t)
    {
        return data.data() + index(0, c, b, t);
    }
    const std::uint16_t *
    uvBase(int c, int b, int t) const
    {
        return data.data() + index(0, c, b, t);
    }
    std::size_t uvStride() const { return (std::size_t(nch) * nb) * nt; }

  private:
    std::size_t
    index(int uv, int c, int b, int t) const
    {
        winomc_assert(uv >= 0 && uv < alpha * alpha && c >= 0 &&
                          c < nch && b >= 0 && b < nb && t >= 0 && t < nt,
                      "HalfTiles index out of range");
        return ((std::size_t(uv) * nch + c) * nb + b) * nt + t;
    }

    int alpha = 0;
    int nch = 0;
    int nb = 0;
    int nt = 0;
    std::vector<std::uint16_t> data;
};

/**
 * Bit-packed per-tile-panel activation zero mask.
 *
 * For each (channel, image) plane the input transform records, per
 * kTilePanel-wide tile panel and per uv coefficient, whether the
 * just-written panel lane set is entirely zero. Bit sense: 1 means
 * "panel known all-zero" (skippable); clear() resets everything to 0,
 * the conservative no-skip state, so a stale or absent mask can only
 * cost performance, never correctness.
 *
 * Word layout: one contiguous region of `wordsPerPlane` uint64 words
 * per (c, b) plane at region base (c * batch + b) * wordsPerPlane; bit
 * index within the region is panel * uvCount + uv. The parallel input
 * transform partitions work by (b, c) plane, so each region has
 * exactly one writer and plain read-modify-write is race-free.
 */
class ActMask
{
  public:
    ActMask() = default;

    void reshape(int uvCount, int channels, int batch, int tiles);
    /** Reset every bit to 0 (nothing skippable). */
    void clear();
    bool empty() const { return words.empty(); }

    int panels() const { return nPanels; }
    std::size_t wordCount() const { return words.size(); }

    /** The word region for plane (c, b); `wordsPerPlane()` words. */
    std::uint64_t *
    plane(int c, int b)
    {
        return words.data() + (std::size_t(c) * nb + b) * wpp;
    }
    const std::uint64_t *
    plane(int c, int b) const
    {
        return words.data() + (std::size_t(c) * nb + b) * wpp;
    }
    std::size_t wordsPerPlane() const { return wpp; }

    /** Mark panel `p` of plane (c, b), coefficient `uv`, as all-zero. */
    void
    setZero(int uv, int c, int b, int p)
    {
        const std::size_t bit = std::size_t(p) * nUv + uv;
        plane(c, b)[bit >> 6] |= std::uint64_t(1) << (bit & 63);
    }

    /**
     * OR the uvCount()-wide bit set `bits` (bit uv = panel all-zero,
     * exactly mk::panelZeroMask's result) into panel `p` of plane
     * (c, b). The per-panel bit runs are contiguous, so this is the
     * one-call fast path the input transforms use.
     */
    void
    orPanelBits(int c, int b, int p, std::uint64_t bits)
    {
        std::uint64_t *pl = plane(c, b);
        const std::size_t base = std::size_t(p) * nUv;
        const int s = int(base & 63);
        pl[base >> 6] |= bits << s;
        const int spill = s + nUv - 64;
        if (spill > 0)
            pl[(base >> 6) + 1] |= bits >> (nUv - spill);
    }

    bool
    panelZero(int uv, int c, int b, int p) const
    {
        const std::size_t bit = std::size_t(p) * nUv + uv;
        return (plane(c, b)[bit >> 6] >> (bit & 63)) & 1u;
    }

    /**
     * True iff every panel of channel `c`, coefficient `uv`, that
     * overlaps flat row range [k0, k0+kb) (the row is batch * tiles
     * elements long, tiles per image = `nt`) is known all-zero. This
     * is the elementwise GEMM's skip query for one K-block.
     */
    bool rowRangeZero(int uv, int c, int k0, int kb) const;

  private:
    int nUv = 0;
    int nch = 0;
    int nb = 0;
    int nt = 0;
    int nPanels = 0;      ///< ceil(nt / kTilePanel)
    std::size_t wpp = 0;  ///< words per (c, b) plane
    std::vector<std::uint64_t> words;
};

} // namespace winomc

#endif // WINOMC_WINOGRAD_LOWPREC_HH
