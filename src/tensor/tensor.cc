#include "tensor/tensor.hh"

#include <algorithm>
#include <cmath>

namespace winomc {

bool
Tensor::sameShape(const Tensor &o) const
{
    return dims[0] == o.dims[0] && dims[1] == o.dims[1] &&
           dims[2] == o.dims[2] && dims[3] == o.dims[3];
}

void
Tensor::fill(float v)
{
    std::fill(buf.begin(), buf.end(), v);
}

void
Tensor::fillUniform(Rng &rng, float lo, float hi)
{
    for (auto &v : buf)
        v = float(rng.uniform(lo, hi));
}

void
Tensor::fillGaussian(Rng &rng, float mean, float sigma)
{
    for (auto &v : buf)
        v = float(rng.gaussian(mean, sigma));
}

void
Tensor::fillKaiming(Rng &rng)
{
    double fan_in = double(dims[1]) * dims[2] * dims[3];
    double sigma = std::sqrt(2.0 / std::max(fan_in, 1.0));
    fillGaussian(rng, 0.0f, float(sigma));
}

Tensor &
Tensor::operator+=(const Tensor &o)
{
    winomc_assert(sameShape(o), "tensor += shape mismatch");
    for (size_t i = 0; i < buf.size(); ++i)
        buf[i] += o.buf[i];
    return *this;
}

Tensor &
Tensor::operator-=(const Tensor &o)
{
    winomc_assert(sameShape(o), "tensor -= shape mismatch");
    for (size_t i = 0; i < buf.size(); ++i)
        buf[i] -= o.buf[i];
    return *this;
}

Tensor &
Tensor::operator*=(float s)
{
    for (auto &v : buf)
        v *= s;
    return *this;
}

float
Tensor::absMax() const
{
    float m = 0.0f;
    for (auto v : buf)
        m = std::max(m, std::abs(v));
    return m;
}

float
Tensor::maxAbsDiff(const Tensor &o) const
{
    winomc_assert(sameShape(o), "maxAbsDiff shape mismatch");
    float m = 0.0f;
    for (size_t i = 0; i < buf.size(); ++i)
        m = std::max(m, std::abs(buf[i] - o.buf[i]));
    return m;
}

float
Tensor::stddev() const
{
    if (buf.empty())
        return 0.0f;
    double mean = 0.0;
    for (auto v : buf)
        mean += v;
    mean /= double(buf.size());
    double var = 0.0;
    for (auto v : buf)
        var += (v - mean) * (v - mean);
    return float(std::sqrt(var / double(buf.size())));
}

} // namespace winomc
