#include "noc/network.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"

namespace winomc::noc {

Network::Network(std::unique_ptr<Topology> topo_, const NocConfig &cfg_)
    : topo(std::move(topo_)), cfg(cfg_)
{
    winomc_assert(cfg.vcs >= topo->vcsNeeded(),
                  "topology '", topo->name(), "' needs ",
                  topo->vcsNeeded(), " VCs, config has ", cfg.vcs);
    const int n = topo->nodes();
    routers.reserve(size_t(n));
    winomc_assert(cfg.injectionLanes >= 1, "need an injection lane");
    for (int i = 0; i < n; ++i)
        routers.emplace_back(i, topo->ports(), cfg.vcs, cfg.bufferDepth,
                             cfg.injectionLanes);
    sourceQueues.assign(size_t(n),
                        std::vector<std::deque<Flit>>(
                            size_t(cfg.injectionLanes)));
    wheel.emplace_back(); // current cycle bucket

    linkBusy.assign(size_t(n) * size_t(topo->ports()), 0);
    nodeInjected.assign(size_t(n), 0);
    nodeEjected.assign(size_t(n), 0);
    creditStalls.assign(size_t(n), 0);
    holBlocks.assign(size_t(n), 0);
    if (cfg.sampleOccupancy) {
        // One bucket range covering an entirely full router.
        int capacity = (topo->ports() + cfg.injectionLanes) * cfg.vcs *
                       cfg.bufferDepth;
        occupancyHist.emplace(0.0, double(capacity + 1), 32);
    }
}

int
Network::offerPacket(int src, int dst, int bytes)
{
    winomc_assert(src >= 0 && src < topo->nodes() && dst >= 0 &&
                  dst < topo->nodes(), "bad packet endpoints");
    winomc_assert(src != dst, "packet to self");
    winomc_assert(bytes > 0, "empty packet");

    int id = int(packets.size());
    int flits = (bytes + cfg.flitBytes - 1) / cfg.flitBytes;
    PacketInfo info;
    info.src = src;
    info.dst = dst;
    info.flits = flits;
    info.injected = cycle;
    packets.push_back(info);
    offeredFlits += uint64_t(flits);

    int vc = topo->selectVc(src, dst);
    // Whole packets stay on one lane so wormhole ordering holds.
    size_t lane = size_t(nextLane++) % size_t(cfg.injectionLanes);
    for (int k = 0; k < flits; ++k) {
        Flit f;
        f.packet = id;
        f.head = (k == 0);
        f.tail = (k == flits - 1);
        f.dst = dst;
        f.vc = vc;
        sourceQueues[size_t(src)][lane].push_back(f);
    }
    return id;
}

void
Network::deliverArrivals()
{
    auto &bucket = wheel.front();
    for (const auto &a : bucket) {
        if (a.is_credit)
            routers[size_t(a.node)].acceptCredit(a.port, a.vc);
        else
            routers[size_t(a.node)].acceptFlit(a.port, a.vc, a.flit);
    }
    bucket.clear();
}

void
Network::switchAllocation()
{
    const int n = topo->nodes();
    const int net_ports = topo->ports();
    const int egress = net_ports;

    for (int node = 0; node < n; ++node) {
        Router &r = routers[size_t(node)];
        const int in_slots = r.inputPorts() * cfg.vcs;

        // Ejection first: the terminal empties into the NDP's on-chip
        // crossbar (Table III), which is far wider than one serial
        // link, so any number of head flits may eject per cycle.
        for (int p = 0; p < r.inputPorts(); ++p) {
            for (int v = 0; v < cfg.vcs; ++v) {
                auto &in = r.inputs[size_t(p)][size_t(v)];
                while (!in.fifo.empty()) {
                    Flit f = in.fifo.front();
                    if (in.outPort == -1) {
                        if (!f.head || f.dst != node)
                            break;
                        in.outPort = egress;
                        in.outVc = 0;
                    }
                    if (in.outPort != egress)
                        break;
                    in.fifo.pop_front();
                    if (f.tail) {
                        PacketInfo &pi = packets[size_t(f.packet)];
                        pi.ejected = cycle;
                        pi.done = true;
                        ++ejected;
                        latency.add(double(cycle - pi.injected));
                        in.outPort = -1;
                        in.outVc = -1;
                    }
                    ++ejectedFlits;
                    ++totalEjectedFlits;
                    ++nodeEjected[size_t(node)];
                    if (p < net_ports) {
                        Arrival c;
                        c.when = cycle + Tick(cfg.hopLatency);
                        c.node = topo->neighbor(node, p);
                        c.port = topo->peerPort(node, p);
                        c.vc = v;
                        c.is_credit = true;
                        size_t off = size_t(cfg.hopLatency);
                        while (wheel.size() <= off)
                            wheel.emplace_back();
                        wheel[off].push_back(c);
                    }
                }
            }
        }

        // One grant per network output port per cycle.
        for (int o = 0; o < net_ports; ++o) {
            int &ptr = r.rrPtr[size_t(o)];
            for (int k = 0; k < in_slots; ++k) {
                int slot = (ptr + k) % in_slots;
                int p = slot / cfg.vcs;
                int v = slot % cfg.vcs;
                auto &in = r.inputs[size_t(p)][size_t(v)];
                if (in.fifo.empty())
                    continue;
                Flit f = in.fifo.front();

                // Route computation at the head flit.
                if (in.outPort == -1) {
                    winomc_assert(f.head, "body flit with no route at ",
                                  node);
                    if (f.dst == node) {
                        in.outPort = egress;
                        in.outVc = 0;
                    } else {
                        in.outPort = topo->route(node, f.dst);
                        in.outVc = topo->nextVc(node, in.outPort, f.vc);
                    }
                }
                if (in.outPort != o)
                    continue;

                // Output VC ownership (wormhole) and credits.
                if (o != egress) {
                    int &owner = r.ownerIn[size_t(o)][size_t(in.outVc)];
                    if (owner != slot && owner != -1) {
                        ++holBlocks[size_t(node)];
                        continue; // another packet owns this output VC
                    }
                    if (r.credits[size_t(o)][size_t(in.outVc)] <= 0) {
                        ++creditStalls[size_t(node)];
                        continue;
                    }
                    owner = slot;
                    --r.credits[size_t(o)][size_t(in.outVc)];
                }

                // Grant: move the flit.
                in.fifo.pop_front();
                if (o == egress) {
                    if (f.tail) {
                        PacketInfo &pi = packets[size_t(f.packet)];
                        pi.ejected = cycle;
                        pi.done = true;
                        ++ejected;
                        latency.add(double(cycle - pi.injected));
                    }
                    ++ejectedFlits;
                    ++totalEjectedFlits;
                    ++nodeEjected[size_t(node)];
                } else {
                    ++linkBusy[size_t(node) * size_t(net_ports) +
                               size_t(o)];
                    Flit out = f;
                    out.vc = in.outVc;
                    Arrival a;
                    a.when = cycle + Tick(cfg.hopLatency);
                    a.node = topo->neighbor(node, o);
                    a.port = topo->peerPort(node, o);
                    a.vc = in.outVc;
                    a.is_credit = false;
                    a.flit = out;
                    size_t off = size_t(cfg.hopLatency);
                    while (wheel.size() <= off)
                        wheel.emplace_back();
                    wheel[off].push_back(a);
                }

                // Release the output VC at the tail.
                if (f.tail && o != egress)
                    r.ownerIn[size_t(o)][size_t(in.outVc)] = -1;
                if (f.tail) {
                    in.outPort = -1;
                    in.outVc = -1;
                }

                // Credit back to the upstream router (network inputs).
                if (p < net_ports) {
                    Arrival c;
                    c.when = cycle + Tick(cfg.hopLatency);
                    c.node = topo->neighbor(node, p);
                    c.port = topo->peerPort(node, p);
                    c.vc = v;
                    c.is_credit = true;
                    size_t off = size_t(cfg.hopLatency);
                    while (wheel.size() <= off)
                        wheel.emplace_back();
                    wheel[off].push_back(c);
                }

                ptr = (slot + 1) % in_slots;
                break;
            }
        }
    }
}

void
Network::injection()
{
    for (int node = 0; node < topo->nodes(); ++node) {
        Router &r = routers[size_t(node)];
        for (int lane = 0; lane < cfg.injectionLanes; ++lane) {
            auto &q = sourceQueues[size_t(node)][size_t(lane)];
            if (q.empty())
                continue;
            Flit &f = q.front();
            if (!r.hasSpace(r.injectionPort(lane), f.vc))
                continue;
            if (f.head)
                packets[size_t(f.packet)].network_in = cycle;
            r.acceptFlit(r.injectionPort(lane), f.vc, f);
            ++nodeInjected[size_t(node)];
            q.pop_front();
        }
    }
}

void
Network::step()
{
    deliverArrivals();
    switchAllocation();
    injection();
    if (occupancyHist)
        for (const auto &r : routers)
            occupancyHist->add(double(r.occupancy()));
    ++cycle;
    wheel.pop_front();
    if (wheel.empty())
        wheel.emplace_back();
}

void
Network::run(int cycles)
{
    for (int k = 0; k < cycles; ++k)
        step();
}

bool
Network::drain(int max_cycles)
{
    for (int k = 0; k < max_cycles; ++k) {
        if (ejected == packets.size() && flitsInFlight() == 0)
            return true;
        step();
    }
    return ejected == packets.size() && flitsInFlight() == 0;
}

double
Network::acceptedFlitRate() const
{
    Tick elapsed = cycle - statsSince;
    if (elapsed == 0)
        return 0.0;
    return double(ejectedFlits) / double(elapsed) / topo->nodes();
}

void
Network::resetStats()
{
    latency.reset();
    ejectedFlits = 0;
    std::fill(linkBusy.begin(), linkBusy.end(), 0);
    std::fill(nodeInjected.begin(), nodeInjected.end(), 0);
    std::fill(nodeEjected.begin(), nodeEjected.end(), 0);
    std::fill(creditStalls.begin(), creditStalls.end(), 0);
    std::fill(holBlocks.begin(), holBlocks.end(), 0);
    if (occupancyHist)
        occupancyHist->reset();
    statsSince = cycle;
}

size_t
Network::flitsInFlight() const
{
    size_t n = 0;
    for (const auto &r : routers)
        n += r.occupancy();
    for (const auto &lanes : sourceQueues)
        for (const auto &q : lanes)
            n += q.size();
    for (const auto &bucket : wheel)
        for (const auto &a : bucket)
            if (!a.is_credit)
                ++n;
    return n;
}

double
Network::linkUtilization(int node, int port) const
{
    Tick elapsed = statsElapsed();
    if (elapsed == 0)
        return 0.0;
    return double(linkBusy[size_t(node) * size_t(topo->ports()) +
                           size_t(port)]) /
           double(elapsed);
}

double
Network::maxLinkUtilization() const
{
    double best = 0.0;
    for (int node = 0; node < topo->nodes(); ++node)
        for (int port = 0; port < topo->ports(); ++port)
            if (topo->neighbor(node, port) >= 0)
                best = std::max(best, linkUtilization(node, port));
    return best;
}

double
Network::meanLinkUtilization() const
{
    double sum = 0.0;
    int wired = 0;
    for (int node = 0; node < topo->nodes(); ++node)
        for (int port = 0; port < topo->ports(); ++port)
            if (topo->neighbor(node, port) >= 0) {
                sum += linkUtilization(node, port);
                ++wired;
            }
    return wired ? sum / wired : 0.0;
}

uint64_t
Network::creditStallCount() const
{
    uint64_t n = 0;
    for (uint64_t c : creditStalls)
        n += c;
    return n;
}

uint64_t
Network::holBlockCount() const
{
    uint64_t n = 0;
    for (uint64_t c : holBlocks)
        n += c;
    return n;
}

double
Network::injectionRate(int node) const
{
    Tick elapsed = statsElapsed();
    return elapsed ? double(nodeInjected[size_t(node)]) /
                         double(elapsed)
                   : 0.0;
}

double
Network::ejectionRate(int node) const
{
    Tick elapsed = statsElapsed();
    return elapsed ? double(nodeEjected[size_t(node)]) /
                         double(elapsed)
                   : 0.0;
}

const Histogram &
Network::occupancyHistogram() const
{
    winomc_assert(occupancyHist,
                  "occupancy histogram needs cfg.sampleOccupancy");
    return *occupancyHist;
}

void
Network::exportMetrics(const std::string &prefix) const
{
    if (!metrics::enabled())
        return;
    auto key = [&](const char *suffix) { return prefix + suffix; };

    metrics::counterAdd(key(".flits_offered").c_str(),
                        double(offeredFlits));
    metrics::counterAdd(key(".flits_ejected").c_str(),
                        double(totalEjectedFlits));
    metrics::counterAdd(key(".credit_stall_events").c_str(),
                        double(creditStallCount()));
    metrics::counterAdd(key(".hol_block_events").c_str(),
                        double(holBlockCount()));
    metrics::gaugeSet(key(".cycles").c_str(), double(cycle));
    metrics::gaugeSet(key(".accepted_flit_rate").c_str(),
                      acceptedFlitRate());
    metrics::gaugeSet(key(".link_util_max").c_str(),
                      maxLinkUtilization());
    metrics::gaugeSet(key(".link_util_mean").c_str(),
                      meanLinkUtilization());
    if (latency.count()) {
        metrics::gaugeSet(key(".latency_mean_cycles").c_str(),
                          latency.mean());
        metrics::gaugeSet(key(".latency_max_cycles").c_str(),
                          latency.maximum());
    }

    const std::string util = key(".link_utilization");
    const std::string inj = key(".injection_rate");
    const std::string ej = key(".ejection_rate");
    for (int node = 0; node < topo->nodes(); ++node) {
        for (int port = 0; port < topo->ports(); ++port)
            if (topo->neighbor(node, port) >= 0)
                metrics::histogramAdd(util.c_str(),
                                      linkUtilization(node, port), 0.0,
                                      1.0, 20);
        metrics::histogramAdd(inj.c_str(), injectionRate(node), 0.0,
                              double(cfg.injectionLanes), 20);
        metrics::histogramAdd(ej.c_str(), ejectionRate(node), 0.0,
                              double(cfg.injectionLanes), 20);
    }
    if (occupancyHist && occupancyHist->count())
        metrics::histogramMerge(key(".router_occupancy").c_str(),
                                *occupancyHist);
}

void
Network::exportTrace(const std::string &label) const
{
    if (!trace::enabled())
        return;
    int pid = trace::allocSimPid();
    trace::namePid(pid, "noc:" + label + " (" + topo->name() + ")");
    // Virtual time: 1 router cycle rendered as 1 us; one track (tid)
    // per source node so concurrent packets stack sensibly.
    for (size_t id = 0; id < packets.size(); ++id) {
        const PacketInfo &pi = packets[id];
        if (!pi.done)
            continue;
        std::string name = "pkt" + std::to_string(id) + " " +
                           std::to_string(pi.src) + "->" +
                           std::to_string(pi.dst);
        double dur = double(pi.ejected - pi.injected);
        trace::emitCompleteAt(name, "noc", double(pi.injected),
                              dur > 0 ? dur : 1.0, pid, pi.src);
    }
}

} // namespace winomc::noc
