#include "serve/plan_cache.hh"

#include "common/logging.hh"
#include "common/metrics.hh"
#include "tensor/workspace.hh"
#include "winograd/conv.hh"

namespace winomc::serve {

PlanCache::PlanCache(std::size_t budgetBytes)
    : budget(budgetBytes ? budgetBytes
                         : ws::Workspace::global().limitBytes())
{
    winomc_assert(budget > 0, "PlanCache needs a positive byte budget");
}

std::unique_ptr<WinoPlan>
PlanCache::acquirePlan(const WinogradAlgo &algo, int batch, int inCh,
                       int outCh, int h, int w)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        for (std::size_t i = 0; i < pool.size(); ++i) {
            if (pool[i]->matches(algo, batch, inCh, outCh, h, w)) {
                std::unique_ptr<WinoPlan> p = std::move(pool[i]);
                pool.erase(pool.begin() + long(i));
                poolBytes -= p->workspaceBytes();
                ++nHits;
                metrics::counterAdd("serve.plan_cache.hits");
                publishGauges();
                p->invalidateCache();
                return p;
            }
        }
        ++nMisses;
        metrics::counterAdd("serve.plan_cache.misses");
    }
    // Build outside the lock: plan construction zero-fills multi-MB
    // slabs, and concurrent misses on different shapes should overlap.
    return std::make_unique<WinoPlan>(algo, batch, inCh, outCh, h, w);
}

void
PlanCache::releasePlan(std::unique_ptr<WinoPlan> plan)
{
    if (!plan)
        return;
    const std::size_t bytes = plan->workspaceBytes();
    std::vector<std::unique_ptr<WinoPlan>> doomed; // freed outside mu
    {
        std::lock_guard<std::mutex> lock(mu);
        if (bytes > budget) {
            ++nEvictions;
            metrics::counterAdd("serve.plan_cache.evictions");
            doomed.push_back(std::move(plan));
        } else {
            pool.insert(pool.begin(), std::move(plan));
            poolBytes += bytes;
            while (poolBytes > budget) {
                poolBytes -= pool.back()->workspaceBytes();
                ++nEvictions;
                metrics::counterAdd("serve.plan_cache.evictions");
                doomed.push_back(std::move(pool.back()));
                pool.pop_back();
            }
        }
        publishGauges();
    }
}

std::shared_ptr<const WinoWeights>
PlanCache::transformedWeights(const std::string &tag,
                              const Tensor &spatial,
                              const WinogradAlgo &algo)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = weights.find(tag);
        if (it != weights.end())
            return it->second;
    }
    // Transform outside the lock; a concurrent duplicate build of the
    // same tag is harmless (first insert wins, the loser's slab dies).
    auto built = std::make_shared<const WinoWeights>(
        transformWeights(spatial, algo));
    std::lock_guard<std::mutex> lock(mu);
    auto [it, inserted] = weights.emplace(tag, std::move(built));
    if (inserted) {
        ++nWeightBuilds;
        metrics::counterAdd("serve.plan_cache.weight_builds");
    }
    return it->second;
}

std::shared_ptr<const WinoWeights>
PlanCache::transformedWeights(const ConvSpec &spec,
                              const Tensor &spatial,
                              const WinogradAlgo &algo)
{
    // Batch-independent: strip the leading "b<N>_" of the canonical key
    // so every batch shape of one layer shares a single slab. The
    // ExecPolicy suffix (empty at the fp32-dense default) keeps
    // engines running under different WINOMC_PREC / WINOMC_SPARSE
    // settings from ever aliasing a slab.
    std::string key = spec.key();
    const std::size_t us = key.find('_');
    if (us != std::string::npos)
        key.erase(0, us + 1);
    return transformedWeights(key + "_F" + std::to_string(algo.m) + "x" +
                                  std::to_string(algo.r) +
                                  execPolicySuffix(currentExecPolicy()),
                              spatial, algo);
}

std::size_t
PlanCache::parkedBytes() const
{
    std::lock_guard<std::mutex> lock(mu);
    return poolBytes;
}

int
PlanCache::parkedPlans() const
{
    std::lock_guard<std::mutex> lock(mu);
    return int(pool.size());
}

std::uint64_t
PlanCache::hits() const
{
    std::lock_guard<std::mutex> lock(mu);
    return nHits;
}

std::uint64_t
PlanCache::misses() const
{
    std::lock_guard<std::mutex> lock(mu);
    return nMisses;
}

std::uint64_t
PlanCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mu);
    return nEvictions;
}

std::uint64_t
PlanCache::weightBuilds() const
{
    std::lock_guard<std::mutex> lock(mu);
    return nWeightBuilds;
}

void
PlanCache::clear()
{
    std::vector<std::unique_ptr<WinoPlan>> doomed;
    std::lock_guard<std::mutex> lock(mu);
    doomed.swap(pool);
    poolBytes = 0;
    weights.clear();
    publishGauges();
}

void
PlanCache::publishGauges() const
{
    metrics::gaugeSet("serve.plan_cache.bytes", double(poolBytes));
    metrics::gaugeSet("serve.plan_cache.plans", double(pool.size()));
}

} // namespace winomc::serve
