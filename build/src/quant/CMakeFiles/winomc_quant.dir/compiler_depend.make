# Empty compiler generated dependencies file for winomc_quant.
# This may be replaced when dependencies are built.
