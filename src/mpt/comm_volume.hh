/**
 * @file
 * Per-worker communication volumes of Section III-C (Figures 6 and 7).
 *
 * Data parallelism: every worker moves ~|w| 2(p-1)/p weight-gradient
 * bytes per iteration and no tile traffic.
 *
 * MPT with (N_g, N_c): the weight collective shrinks to the group's
 * slice (|W|/N_g over a ring of N_c), while tile scatter/gather appears:
 * a worker holds |Tiles| / (N_c N_g) tile data per transfer direction
 * and exchanges the (N_g - 1)/N_g fraction of it inside its cluster.
 * Activation prediction, zero skipping, and the source-side 1D
 * transform (which shrinks gathered lines from alpha to m elements)
 * scale the tile terms.
 */

#ifndef WINOMC_MPT_COMM_VOLUME_HH
#define WINOMC_MPT_COMM_VOLUME_HH

#include "memnet/cluster.hh"
#include "mpt/system_config.hh"
#include "winograd/algo.hh"
#include "winograd/conv_spec.hh"

namespace winomc::mpt {

/** Bytes one worker sends per training iteration of one layer. */
struct CommVolume
{
    double weightBytes = 0.0;  ///< collective (reduce + broadcast)
    double tileBytes = 0.0;    ///< scatter + gather, fprop + bprop

    double total() const { return weightBytes + tileBytes; }
};

/**
 * Per-worker volume for a Winograd layer under MPT.
 *
 * @param predict  nullptr disables prediction/zero-skip scaling.
 */
CommVolume mptCommVolume(const ConvSpec &spec, const WinogradAlgo &algo,
                         const memnet::ClusterShape &shape,
                         const PredictionParams *predict);

/** Per-worker volume for data-parallel training (weights only).
 *  `weight_elems` is |w| (direct / w_dp) or |W| (Winograd layer). */
CommVolume dataParallelCommVolume(uint64_t weight_elems, int workers);

/** Tile-transfer scale factor from prediction + zero skipping for the
 *  gather (output) direction under the given transfer mode. */
double gatherScale(const PredictionParams &p, memnet::TransferMode mode);
/** Same for the scatter (input) direction. */
double scatterScale(const PredictionParams &p, memnet::TransferMode mode);

} // namespace winomc::mpt

#endif // WINOMC_MPT_COMM_VOLUME_HH
