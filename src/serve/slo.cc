#include "serve/slo.hh"

#include <algorithm>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/metrics.hh"

namespace winomc::serve {

namespace {

constexpr long long kObjectiveCeilingUs = 3'600'000'000; // one hour
constexpr double kDefaultObjectiveUs = 50'000.0;         // 50 ms
constexpr int kLongWindowCeilingSec = 3600;

} // namespace

SloConfig
resolveSloConfig(SloConfig cfg)
{
    if (cfg.latencyObjectiveUs <= 0.0)
        cfg.latencyObjectiveUs = double(
            env::envPositiveInt("WINOMC_SLO_LATENCY_US",
                                kObjectiveCeilingUs,
                                (long long)kDefaultObjectiveUs));
    cfg.targetFraction = std::clamp(cfg.targetFraction, 0.0, 0.9999999);
    cfg.shortWindowSec = std::max(1, cfg.shortWindowSec);
    cfg.longWindowSec =
        std::clamp(cfg.longWindowSec, cfg.shortWindowSec,
                   kLongWindowCeilingSec);
    return cfg;
}

SloMonitor::SloMonitor(const SloConfig &config)
    : cfg(resolveSloConfig(config)),
      ring(std::size_t(cfg.longWindowSec)),
      epoch(std::chrono::steady_clock::now())
{
    if (metrics::enabled())
        metrics::gaugeSet("slo.objective_us", cfg.latencyObjectiveUs);
}

double
SloMonitor::nowSec() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

void
SloMonitor::advanceTo(long long sec)
{
    if (sec <= curSec)
        return; // same second, or out-of-order timestamp: fold into now
    const long long gap = sec - curSec;
    if (gap >= (long long)ring.size()) {
        std::fill(ring.begin(), ring.end(), Bucket{});
    } else {
        for (long long s = curSec + 1; s <= sec; ++s)
            ring[std::size_t(s % (long long)ring.size())] = Bucket{};
    }
    curSec = sec;
}

void
SloMonitor::observe(double latencyUs)
{
    observeAt(latencyUs, nowSec());
}

void
SloMonitor::observeAt(double latencyUs, double tSec)
{
    std::lock_guard<std::mutex> lk(mu);
    advanceTo((long long)tSec);
    Bucket &b = ring[std::size_t(curSec % (long long)ring.size())];
    b.total += 1;
    nObserved += 1;
    if (latencyUs > cfg.latencyObjectiveUs) {
        b.violations += 1;
        nViolations += 1;
        if (metrics::enabled())
            metrics::counterAdd("slo.violations");
    }
}

double
SloMonitor::burnRateLocked(int windowSec) const
{
    const int w = std::min(windowSec, int(ring.size()));
    const long long size = (long long)ring.size();
    std::uint64_t total = 0, bad = 0;
    for (int i = 0; i < w; ++i) {
        const long long s = curSec - i;
        if (s < 0)
            break; // before monitor start: no such seconds
        const Bucket &b = ring[std::size_t(s % size)];
        total += b.total;
        bad += b.violations;
    }
    if (total == 0)
        return 0.0;
    const double budget = 1.0 - cfg.targetFraction;
    return (double(bad) / double(total)) / budget;
}

double
SloMonitor::burnRate(int windowSec) const
{
    std::lock_guard<std::mutex> lk(mu);
    return burnRateLocked(windowSec);
}

bool
SloMonitor::evaluate()
{
    return evaluateAt(nowSec());
}

bool
SloMonitor::evaluateAt(double tSec)
{
    std::lock_guard<std::mutex> lk(mu);
    advanceTo((long long)tSec);
    const double burnShort = burnRateLocked(cfg.shortWindowSec);
    const double burnLong = burnRateLocked(cfg.longWindowSec);
    const bool fire = burnShort >= cfg.burnThreshold &&
                      burnLong >= cfg.burnThreshold;
    if (fire != alertActive) {
        alertActive = fire;
        if (fire)
            winomc_warn("slo: burn-rate alert firing objective_us=",
                        cfg.latencyObjectiveUs,
                        " burn_short=", burnShort,
                        " burn_long=", burnLong,
                        " threshold=", cfg.burnThreshold);
        else
            winomc_inform("slo: burn-rate alert cleared "
                          "burn_short=", burnShort,
                          " burn_long=", burnLong);
    }
    if (metrics::enabled()) {
        metrics::gaugeSet("slo.burn_rate_short", burnShort);
        metrics::gaugeSet("slo.burn_rate_long", burnLong);
        metrics::gaugeSet("slo.alert_active", fire ? 1.0 : 0.0);
    }
    return fire;
}

bool
SloMonitor::alerting() const
{
    std::lock_guard<std::mutex> lk(mu);
    return alertActive;
}

std::uint64_t
SloMonitor::observed() const
{
    std::lock_guard<std::mutex> lk(mu);
    return nObserved;
}

std::uint64_t
SloMonitor::violations() const
{
    std::lock_guard<std::mutex> lk(mu);
    return nViolations;
}

} // namespace winomc::serve
