#include "common/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace winomc {

Table::Table(std::string title_) : title(std::move(title_)) {}

Table &
Table::header(std::initializer_list<std::string> cols)
{
    head.assign(cols);
    return *this;
}

Table &
Table::header(const std::vector<std::string> &cols)
{
    head = cols;
    return *this;
}

Table &
Table::row()
{
    rows.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &v)
{
    winomc_assert(!rows.empty(), "cell() before row()");
    rows.back().push_back(v);
    return *this;
}

Table &
Table::cell(const char *v)
{
    return cell(std::string(v));
}

Table &
Table::cell(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return cell(std::string(buf));
}

Table &
Table::cell(int64_t v)
{
    return cell(std::to_string(v));
}

Table &
Table::cell(uint64_t v)
{
    return cell(std::to_string(v));
}

Table &
Table::rule()
{
    rules_after.push_back(rows.size());
    return *this;
}

std::string
Table::toString() const
{
    std::vector<size_t> widths(head.size());
    for (size_t c = 0; c < head.size(); ++c)
        widths[c] = head[c].size();
    for (const auto &r : rows) {
        for (size_t c = 0; c < r.size(); ++c) {
            if (c >= widths.size())
                widths.resize(c + 1, 0);
            widths[c] = std::max(widths[c], r[c].size());
        }
    }

    auto emit_rule = [&](std::ostringstream &oss) {
        for (size_t c = 0; c < widths.size(); ++c) {
            oss << std::string(widths[c] + 2, '-');
            if (c + 1 < widths.size())
                oss << "+";
        }
        oss << "\n";
    };
    auto emit_row = [&](std::ostringstream &oss,
                        const std::vector<std::string> &r) {
        for (size_t c = 0; c < widths.size(); ++c) {
            std::string v = c < r.size() ? r[c] : "";
            oss << " " << v << std::string(widths[c] - v.size() + 1, ' ');
            if (c + 1 < widths.size())
                oss << "|";
        }
        oss << "\n";
    };

    std::ostringstream oss;
    if (!title.empty())
        oss << "== " << title << " ==\n";
    if (!head.empty()) {
        emit_row(oss, head);
        emit_rule(oss);
    }
    for (size_t i = 0; i < rows.size(); ++i) {
        emit_row(oss, rows[i]);
        if (std::find(rules_after.begin(), rules_after.end(), i + 1) !=
                rules_after.end()) {
            emit_rule(oss);
        }
    }
    return oss.str();
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
    std::fputs("\n", stdout);
}

std::string
formatBytes(double bytes)
{
    const char *suffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int s = 0;
    while (std::abs(bytes) >= 1024.0 && s < 4) {
        bytes /= 1024.0;
        ++s;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, suffix[s]);
    return buf;
}

std::string
formatTime(double seconds)
{
    const char *suffix[] = {"s", "ms", "us", "ns", "ps"};
    int s = 0;
    while (seconds != 0.0 && std::abs(seconds) < 1.0 && s < 4) {
        seconds *= 1000.0;
        ++s;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f %s", seconds, suffix[s]);
    return buf;
}

} // namespace winomc
