file(REMOVE_RECURSE
  "CMakeFiles/winomc_tensor.dir/matrix.cc.o"
  "CMakeFiles/winomc_tensor.dir/matrix.cc.o.d"
  "CMakeFiles/winomc_tensor.dir/tensor.cc.o"
  "CMakeFiles/winomc_tensor.dir/tensor.cc.o.d"
  "libwinomc_tensor.a"
  "libwinomc_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winomc_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
