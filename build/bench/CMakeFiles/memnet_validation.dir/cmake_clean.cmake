file(REMOVE_RECURSE
  "CMakeFiles/memnet_validation.dir/memnet_validation.cpp.o"
  "CMakeFiles/memnet_validation.dir/memnet_validation.cpp.o.d"
  "memnet_validation"
  "memnet_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memnet_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
