#include "common/perfcounters.hh"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "common/metrics.hh"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace winomc::perf {

namespace {

/** 0 = unprobed, 1 = available, 2 = disabled. */
std::atomic<int> gState{0};

#if defined(__linux__)

long
perfEventOpen(perf_event_attr *attr, pid_t pid, int cpu, int group_fd,
              unsigned long flags)
{
    return syscall(__NR_perf_event_open, attr, pid, cpu, group_fd,
                   flags);
}

perf_event_attr
makeAttr(std::uint32_t type, std::uint64_t config)
{
    perf_event_attr a;
    std::memset(&a, 0, sizeof(a));
    a.size = sizeof(a);
    a.type = type;
    a.config = config;
    a.disabled = 0;       // count from open
    a.exclude_kernel = 1; // user-mode work only (and fewer permission
    a.exclude_hv = 1;     // hurdles under perf_event_paranoid >= 1)
    return a;
}

/**
 * The calling thread's counter file descriptors, opened on first
 * read(). Each counter opens independently so a PMU lacking one event
 * (commonly stalled-cycles-backend) still yields the others.
 */
struct ThreadCounters
{
    int fd[4] = {-1, -1, -1, -1};

    ThreadCounters()
    {
        if (!available())
            return;
        const struct
        {
            std::uint32_t type;
            std::uint64_t config;
        } events[4] = {
            {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
            {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
            {PERF_TYPE_HW_CACHE,
             PERF_COUNT_HW_CACHE_LL |
                 (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                 (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
            {PERF_TYPE_HARDWARE,
             PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
        };
        for (int i = 0; i < 4; ++i) {
            perf_event_attr a = makeAttr(events[i].type,
                                         events[i].config);
            fd[i] = int(perfEventOpen(&a, 0, -1, -1, 0));
        }
    }

    ~ThreadCounters()
    {
        for (int f : fd)
            if (f >= 0)
                close(f);
    }

    std::uint64_t
    value(int i) const
    {
        if (fd[i] < 0)
            return 0;
        std::uint64_t v = 0;
        if (::read(fd[i], &v, sizeof(v)) != ssize_t(sizeof(v)))
            return 0;
        return v;
    }
};

ThreadCounters &
localCounters()
{
    thread_local ThreadCounters tc;
    return tc;
}

bool
probe()
{
    perf_event_attr a =
        makeAttr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
    long fd = perfEventOpen(&a, 0, -1, -1, 0);
    if (fd < 0) {
        winomc_warn("hardware perf counters unavailable (",
                    "perf_event_open: ", std::strerror(errno),
                    "); roofline hardware columns disabled");
        return false;
    }
    close(int(fd));
    return true;
}

#else // !__linux__

bool
probe()
{
    winomc_warn("hardware perf counters unavailable on this platform; "
                "roofline hardware columns disabled");
    return false;
}

#endif

} // namespace

bool
available()
{
    int s = gState.load(std::memory_order_acquire);
    if (s == 0) {
        // Two racing probers agree: probe() is idempotent and both
        // store the same verdict.
        s = probe() ? 1 : 2;
        gState.store(s, std::memory_order_release);
        if (metrics::enabled())
            metrics::gaugeSet("perf.available", s == 1 ? 1.0 : 0.0);
    }
    return s == 1;
}

void
disable()
{
    gState.store(2, std::memory_order_release);
}

Reading
read()
{
    Reading r;
    if (!available())
        return r;
#if defined(__linux__)
    ThreadCounters &tc = localCounters();
    r.cycles = tc.value(0);
    r.instructions = tc.value(1);
    r.llcMisses = tc.value(2);
    r.stalledBackend = tc.value(3);
    r.valid = tc.fd[0] >= 0;
#endif
    return r;
}

void
publishStage(const char *stage, const Reading &start)
{
    if (!metrics::enabled())
        return;
    const Reading d = read() - start;
    if (!d.valid)
        return;
    std::string base = "perf.";
    base += stage;
    metrics::counterAdd((base + ".cycles").c_str(), double(d.cycles));
    metrics::counterAdd((base + ".instructions").c_str(),
                        double(d.instructions));
    metrics::counterAdd((base + ".llc_misses").c_str(),
                        double(d.llcMisses));
    metrics::counterAdd((base + ".stalled_backend").c_str(),
                        double(d.stalledBackend));
}

} // namespace winomc::perf
