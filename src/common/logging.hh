/**
 * @file
 * Status/error reporting in the gem5 style.
 *
 * panic()  - internal invariant violated; a winomc bug. Aborts.
 * fatal()  - the user asked for something impossible (bad config). Exits.
 * warn()   - something works but not as well as it should.
 * inform() - normal status output.
 * debug()  - development chatter, off by default.
 *
 * Every line carries a wall-clock timestamp and a small dense thread
 * id ("12:34:56.789 [t0] warn: ..."), so interleaved multi-thread
 * output stays attributable. Verbosity is controlled by
 * WINOMC_LOG_LEVEL=debug|info|warn|error (garbage warns and falls
 * back to info, the default) or programmatically via setLogLevel().
 *
 * Fatal paths (panic, fatal, uncaught exceptions via the installed
 * std::terminate handler) best-effort flush the telemetry sinks —
 * the WINOMC_TRACE ring and a final WINOMC_METRICS snapshot — before
 * the process dies, so a crash under load does not lose the entire
 * observability payload.
 */

#ifndef WINOMC_COMMON_LOGGING_HH
#define WINOMC_COMMON_LOGGING_HH

#include <cstdio>
#include <sstream>
#include <string>

namespace winomc {

namespace detail {

/** Append all args, stream-formatted, to one string. */
template <typename... Args>
std::string
concatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

} // namespace detail

/**
 * Global verbosity: 0 = errors only (panic/fatal always print),
 * 1 = + warn, 2 = + inform (default), 3 = + debug. The first log call
 * resolves WINOMC_LOG_LEVEL; setLogLevel() overrides it.
 */
void setLogLevel(int level);
int logLevel();

/** Parse a WINOMC_LOG_LEVEL word (debug|info|warn|error, case/space
 *  tolerant) into a level. Garbage warns and returns 2 (info) — the
 *  common/env.hh knob discipline. */
int parseLogLevel(const char *str);

/**
 * Best-effort flush of the telemetry sinks (trace ring + metrics
 * snapshot) to their configured paths. Re-entrancy safe and never
 * throws; runs automatically from panic/fatal/terminate.
 */
void flushTelemetry() noexcept;

} // namespace winomc

/** Abort: something that should never happen happened (a winomc bug). */
#define winomc_panic(...)                                                    \
    ::winomc::detail::panicImpl(__FILE__, __LINE__,                          \
        ::winomc::detail::concatMessage(__VA_ARGS__))

/** Exit(1): the simulation cannot continue due to a user/config error. */
#define winomc_fatal(...)                                                    \
    ::winomc::detail::fatalImpl(__FILE__, __LINE__,                          \
        ::winomc::detail::concatMessage(__VA_ARGS__))

/** Non-fatal: functionality may be degraded. */
#define winomc_warn(...)                                                     \
    ::winomc::detail::warnImpl(::winomc::detail::concatMessage(__VA_ARGS__))

/** Normal status message. */
#define winomc_inform(...)                                                   \
    ::winomc::detail::informImpl(                                            \
        ::winomc::detail::concatMessage(__VA_ARGS__))

/** Development chatter; needs WINOMC_LOG_LEVEL=debug. */
#define winomc_debug(...)                                                    \
    ::winomc::detail::debugImpl(                                             \
        ::winomc::detail::concatMessage(__VA_ARGS__))

/** Assert an internal invariant; compiled in all build types. */
#define winomc_assert(cond, ...)                                             \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::winomc::detail::panicImpl(__FILE__, __LINE__,                  \
                ::winomc::detail::concatMessage("assertion '" #cond          \
                    "' failed. ", ##__VA_ARGS__));                           \
        }                                                                    \
    } while (0)

#endif // WINOMC_COMMON_LOGGING_HH
