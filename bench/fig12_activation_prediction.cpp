/**
 * @file
 * Figure 12: actual and predicted ratio of non-activated tiles (2D
 * predict, 6-bit) and lines (1D predict, 5-bit) with F(2x2,3x3), across
 * quantizer configurations (uniform and non-uniform with 2/4/8
 * regions), plus the zero-skipping ratios of Section V-B.
 *
 * CIFAR / ImageNet and pre-trained weights are unavailable offline
 * (DESIGN.md substitution table); two data sources replace them:
 *   1. Gaussian Winograd-domain tiles (the distribution the paper
 *      itself observes for these values);
 *   2. pre-activation tiles harvested from a CNN trained here on the
 *      procedurally generated shape dataset.
 */

#include <cstdio>
#include <memory>

#include "common/table.hh"
#include "nn/basic_layers.hh"
#include "nn/conv_layer.hh"
#include "nn/dataset.hh"
#include "nn/trainer.hh"
#include "quant/predict.hh"
#include "quant/zero_skip.hh"
#include "winograd/algo.hh"

using namespace winomc;
using namespace winomc::quant;

namespace {

void
reportPredict(const std::string &source, const WinoTiles &tiles)
{
    const WinogradAlgo algo = makeWinograd(2, 3);

    Table t("non-activated ratio, " + source);
    t.header({"predict", "bits", "regions", "actual", "predicted",
              "catch rate", "false neg"});

    struct Cfg
    {
        PredictMode mode;
        int levels, regions;
    };
    const Cfg cfgs[] = {
        {PredictMode::TwoD, 64, 1}, {PredictMode::TwoD, 64, 2},
        {PredictMode::TwoD, 64, 4}, {PredictMode::TwoD, 64, 8},
        {PredictMode::OneD, 32, 1}, {PredictMode::OneD, 32, 2},
        {PredictMode::OneD, 32, 4}, {PredictMode::OneD, 32, 8},
    };
    for (const auto &cfg : cfgs) {
        double sigma = ActivationPredictor::wireSigma(tiles, algo,
                                                      cfg.mode);
        NonUniformQuantizer qz(cfg.levels, cfg.regions, sigma);
        ActivationPredictor pred(algo, qz, cfg.mode);
        PredictStats st = pred.run(tiles);

        bool two_d = cfg.mode == PredictMode::TwoD;
        double actual = two_d ? st.tileDeadActualRatio()
                              : st.lineDeadActualRatio();
        double predicted = two_d ? st.tileDeadPredictedRatio()
                                 : st.lineDeadPredictedRatio();
        t.row()
            .cell(two_d ? "2D (tiles)" : "1D (lines)")
            .cell(int64_t(qz.bits()))
            .cell(cfg.regions == 1 ? "uniform"
                                   : std::to_string(cfg.regions))
            .cell(actual, 3)
            .cell(predicted, 3)
            .cell(actual > 0 ? predicted / actual : 0.0, 3)
            .cell(int64_t(st.falseNegatives));
    }
    t.print();
}

} // namespace

int
main()
{
    std::printf("Figure 12: activation prediction accuracy "
                "(F(2x2,3x3))\n\n");
    const WinogradAlgo algo = makeWinograd(2, 3);

    // ---- Source 1: Gaussian tiles (Section V-A observation).
    {
        Rng rng(2026);
        WinoTiles tiles(algo.alpha, 8, 8, 128);
        for (int uv = 0; uv < tiles.uvCount(); ++uv)
            for (int c = 0; c < tiles.channels(); ++c)
                for (int b = 0; b < tiles.batch(); ++b)
                    for (int k = 0; k < tiles.tiles(); ++k)
                        tiles.at(uv, c, b, k) =
                            float(rng.gaussian(-0.25, 1.0));
        reportPredict("synthetic Gaussian tiles", tiles);
    }

    // ---- Source 2: a CNN trained on the shape dataset.
    {
        Rng rng(7);
        nn::Dataset train_set = nn::makeShapeDataset(256, 16, 4, rng);
        nn::Dataset val_set = nn::makeShapeDataset(64, 16, 4, rng);

        nn::Sequential net;
        net.add(std::make_unique<nn::ConvLayer>(
            1, 8, 3, nn::ConvMode::WinogradLayer, algo, rng));
        net.add(std::make_unique<nn::ReLU>());
        auto conv2 = std::make_unique<nn::ConvLayer>(
            8, 8, 3, nn::ConvMode::WinogradLayer, algo, rng);
        nn::ConvLayer *conv2_ptr = conv2.get();
        net.add(std::move(conv2));
        net.add(std::make_unique<nn::ReLU>());
        net.add(std::make_unique<nn::MaxPool2>());
        net.add(std::make_unique<nn::Dense>(8 * 8 * 8, 4, rng));

        nn::TrainConfig cfg;
        cfg.epochs = 4;
        cfg.batchSize = 16;
        cfg.lr = 0.08f;
        auto hist = nn::train(net, train_set, val_set, cfg, rng);
        std::printf("trained probe CNN: val acc %.2f (chance 0.25)\n\n",
                    hist.back().valAcc);

        // Forward one batch in train mode to cache conv2's
        // pre-activation Winograd tiles.
        std::vector<int> labels;
        Tensor xb = val_set.batch(0, 32, labels);
        net.forward(xb, true);
        reportPredict("trained CNN activations", conv2_ptr->lastOutputTiles());

        // ---- Zero skipping of the input-tile scatter (Section V-B).
        // conv2's input is the post-ReLU output of conv1.
        Tensor post_relu = net.child(0).forward(xb, false);
        nn::ReLU relu;
        post_relu = relu.forward(post_relu, false);
        ZeroSkipStats z2 = zeroSkipScatter(post_relu, algo,
                                           PredictMode::TwoD);
        ZeroSkipStats z1 = zeroSkipScatter(post_relu, algo,
                                           PredictMode::OneD);
        Table zt("zero-skippable scatter values (post-ReLU input)");
        zt.header({"transfer", "elements", "zeros", "ratio"});
        zt.row().cell("2D (B^T x B)").cell(z2.elems).cell(z2.zeros)
            .cell(z2.ratio(), 3);
        zt.row().cell("1D (B^T x)").cell(z1.elems).cell(z1.zeros)
            .cell(z1.ratio(), 3);
        zt.print();
    }

    std::printf("paper: non-uniform 4-region best; gathering cut 34.0%% "
                "(2D, 6-bit) / 78.1%% (1D, 5-bit); scattering cut "
                "39.3%% / 64.7%%; zero false negatives by "
                "construction.\n");
    return 0;
}
