#include "nn/module.hh"

namespace winomc::nn {

Sequential &
Sequential::add(ModulePtr m)
{
    children.push_back(std::move(m));
    return *this;
}

Tensor
Sequential::forward(const Tensor &x, bool train)
{
    Tensor cur = x;
    for (auto &c : children)
        cur = c->forward(cur, train);
    return cur;
}

Tensor
Sequential::backward(const Tensor &dy)
{
    Tensor cur = dy;
    for (auto it = children.rbegin(); it != children.rend(); ++it)
        cur = (*it)->backward(cur);
    return cur;
}

void
Sequential::step(float lr)
{
    for (auto &c : children)
        c->step(lr);
}

size_t
Sequential::paramCount() const
{
    size_t n = 0;
    for (const auto &c : children)
        n += c->paramCount();
    return n;
}

} // namespace winomc::nn
