/**
 * @file
 * Functional, event-driven model of the collective communication engine
 * (Section VI-C, Fig 13(c)).
 *
 * Weight gradients all-reduce over a ring as reduce-scatter followed by
 * all-gather, at 256-byte chunk granularity (Table III): every chunk is
 * a packet, chunks of one message arrive in order, but chunks of
 * *different* concurrent messages interleave arbitrarily on the links -
 * the per-message Reduce blocks and communication buffers of Fig 13(c)
 * are what make that legal, and this model reproduces the behaviour:
 * it really adds the floating-point data, so the tests can check both
 * the numerics (result == sum, replicated on every worker) and the
 * timing (against the closed-form collective model).
 */

#ifndef WINOMC_MEMNET_REDUCE_ENGINE_HH
#define WINOMC_MEMNET_REDUCE_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "memnet/link_model.hh"

namespace winomc::memnet {

/** Outcome of one all-reduced message. */
struct CollectiveOutcome
{
    /** Fully reduced vector (identical on every worker at the end;
     *  checked internally). */
    std::vector<float> reduced;
    double finishSec = 0.0;
    uint64_t chunksMoved = 0;
};

class RingCollectiveEngine
{
  public:
    /**
     * @param workers     ring length
     * @param link        link class the ring runs on
     * @param chunk_bytes collective packet size (Table III: 256)
     */
    RingCollectiveEngine(int workers, const LinkSpec &link,
                         int chunk_bytes = 256);

    /**
     * Submit one message: per_worker[w] is worker w's partial vector
     * (all the same length). @param start_sec earliest start.
     * Returns the message id.
     */
    int submit(std::vector<std::vector<float>> per_worker,
               double start_sec = 0.0);

    /** Simulate every submitted message to completion. */
    void run();

    const CollectiveOutcome &outcome(int id) const;
    double makespan() const { return makespanSec; }

    // ------------------------------------------------- introspection
    /** Serialization-busy seconds of the directed ring link out of
     *  worker w (valid after run()). */
    double linkBusySeconds(int w) const { return linkBusy.at(size_t(w)); }
    /** Busy fraction of link w over the makespan. */
    double linkUtilization(int w) const;
    /** Chunks moved over all links, all messages. */
    uint64_t totalChunksMoved() const;
    /** Bytes moved over all links (chunks x chunk size). */
    double totalBytesMoved() const;

    /** Counters (.chunks, .bytes), gauges (.makespan_sec,
     *  .link_util_mean) and a per-link utilization histogram under
     *  `prefix` (e.g. "memnet.collective"). No-op when metrics are
     *  disabled. */
    void exportMetrics(const std::string &prefix) const;

  private:
    struct Message
    {
        std::vector<std::vector<float>> data; ///< evolving per worker
        double start;
        size_t len;
        CollectiveOutcome result;
    };

    int n;
    LinkSpec link;
    int chunkBytes;
    int chunkFloats;
    std::vector<Message> messages;
    std::vector<CollectiveOutcome> outcomes;
    double makespanSec = 0.0;
    std::vector<double> linkBusy; ///< busy seconds per ring link
};

} // namespace winomc::memnet

#endif // WINOMC_MEMNET_REDUCE_ENGINE_HH
