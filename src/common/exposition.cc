#include "common/exposition.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/trace.hh"

#if defined(__unix__) || defined(__APPLE__)
#define WINOMC_EXPOSITION_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace winomc::exposition {

namespace {

constexpr int kMaxPort = 65535;
constexpr int kPollMs = 200;     ///< listener wake-up cadence
constexpr double kTickSec = 1.0; ///< derived-gauge publish cadence

/** Prometheus float: finite via %.17g, plus the spec spellings of the
 *  non-finite values ("NaN", never "-": a scrape body must parse). */
std::string
fmtVal(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
appendExemplar(std::string &out, const metrics::Sample &s)
{
    out += " # {trace_id=\"";
    out += std::to_string(s.exemplarId);
    out += "\"} ";
    out += fmtVal(s.exemplarValue);
}

void
renderHistogram(std::string &out, const std::string &n,
                const metrics::Sample &s)
{
    out += "# TYPE " + n + " histogram\n";
    bool exemplarPending = s.exemplarId != 0;
    if (s.hist) {
        const winomc::Histogram &h = *s.hist;
        std::uint64_t cumulative = h.underflow();
        for (int b = 0; b < h.buckets(); ++b) {
            cumulative += h.bucketCount(b);
            const double upper = b + 1 == h.buckets()
                                     ? h.high()
                                     : h.bucketLow(b + 1);
            out += n + "_bucket{le=\"" + fmtVal(upper) + "\"} " +
                   std::to_string(cumulative);
            if (exemplarPending && s.exemplarValue <= upper) {
                appendExemplar(out, s);
                exemplarPending = false;
            }
            out += "\n";
        }
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(s.count);
    if (exemplarPending)
        appendExemplar(out, s);
    out += "\n";
    out += n + "_sum " + fmtVal(s.value) + "\n";
    out += n + "_count " + std::to_string(s.count) + "\n";
    // Registry-computed percentiles as companion gauges: NaN (not "-")
    // for an empty histogram, so the body stays parseable.
    const struct
    {
        const char *suffix;
        double v;
    } pct[3] = {{"_p50", s.p50}, {"_p90", s.p90}, {"_p99", s.p99}};
    for (const auto &p : pct) {
        out += "# TYPE " + n + p.suffix + " gauge\n";
        out += n + p.suffix + " " + fmtVal(p.v) + "\n";
    }
}

#if WINOMC_EXPOSITION_SOCKETS

struct Listener
{
    int fd = -1;
    int boundPort = -1;
    std::thread thread;
    std::atomic<bool> stopRequested{false};
};

std::mutex gMu;
Listener *gListener = nullptr; // guarded by gMu
std::atomic<int> gPort{-1};    // lock-free for port()/running()

/** Answer one accepted connection: any request gets the scrape body
 *  (there is only one resource worth serving). */
void
serveOne(int conn)
{
    char req[2048];
    (void)recv(conn, req, sizeof(req), 0); // drain best-effort
    metrics::counterAdd("exposition.scrapes");
    const std::string body = renderText(metrics::snapshot());
    std::string resp = "HTTP/1.1 200 OK\r\n"
                       "Content-Type: text/plain; version=0.0.4; "
                       "charset=utf-8\r\n"
                       "Connection: close\r\n"
                       "Content-Length: " +
                       std::to_string(body.size()) + "\r\n\r\n" + body;
    std::size_t off = 0;
    while (off < resp.size()) {
        const ssize_t n = send(conn, resp.data() + off,
                               resp.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            break; // client went away; scrape is best-effort
        off += std::size_t(n);
    }
    close(conn);
}

/** The ~1 s tick: derived gauges computed from a private delta
 *  baseline, so one-shot consumers see rates without doing math. */
void
publishTick(metrics::DeltaBaseline &base, double dtSec)
{
    metrics::gaugeSet("process.uptime_sec", trace::nowUs() / 1e6);
    if (dtSec <= 0.0)
        return;
    for (const metrics::Sample &s : metrics::snapshotDelta(base)) {
        if (s.name == "serve.requests")
            metrics::gaugeSet("serve.qps", s.value / dtSec);
    }
}

void
run(Listener *l)
{
    metrics::DeltaBaseline base;
    metrics::snapshotDelta(base); // seed: first tick reports a delta
    auto lastTick = std::chrono::steady_clock::now();
    while (!l->stopRequested.load(std::memory_order_acquire)) {
        pollfd pfd{l->fd, POLLIN, 0};
        const int rc = poll(&pfd, 1, kPollMs);
        if (rc > 0 && (pfd.revents & POLLIN)) {
            const int conn = accept(l->fd, nullptr, nullptr);
            if (conn >= 0)
                serveOne(conn);
        }
        const auto now = std::chrono::steady_clock::now();
        const double dt =
            std::chrono::duration<double>(now - lastTick).count();
        if (dt >= kTickSec) {
            publishTick(base, dt);
            lastTick = now;
        }
    }
}

void
stopAtExit()
{
    stop();
}

#endif // WINOMC_EXPOSITION_SOCKETS

} // namespace

std::string
promName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out.insert(out.begin(), '_');
    return out;
}

std::string
renderText(const std::vector<metrics::Sample> &samples)
{
    std::string out;
    out.reserve(samples.size() * 64);
    for (const metrics::Sample &s : samples) {
        const std::string n = promName(s.name);
        switch (s.kind) {
        case metrics::Kind::Counter:
            out += "# TYPE " + n + " counter\n";
            out += n + " " + fmtVal(s.value) + "\n";
            break;
        case metrics::Kind::Gauge:
            out += "# TYPE " + n + " gauge\n";
            out += n + " " + fmtVal(s.value) + "\n";
            break;
        case metrics::Kind::Timer:
            out += "# TYPE " + n + " summary\n";
            out += n + "_count " + std::to_string(s.count) + "\n";
            out += n + "_sum " + fmtVal(s.totalSec) + "\n";
            break;
        case metrics::Kind::Histogram:
            renderHistogram(out, n, s);
            break;
        }
    }
    return out;
}

#if WINOMC_EXPOSITION_SOCKETS

int
start(int portWanted)
{
    std::lock_guard<std::mutex> lk(gMu);
    if (gListener)
        return -1;

    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        winomc_warn("WINOMC_STATS_PORT: socket() failed (",
                    std::strerror(errno), "); exposition disabled");
        return -1;
    }
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(std::uint16_t(portWanted));
    if (bind(fd, reinterpret_cast<const sockaddr *>(&addr),
             sizeof(addr)) != 0 ||
        listen(fd, 8) != 0) {
        winomc_warn("WINOMC_STATS_PORT: cannot listen on 127.0.0.1:",
                    portWanted, " (", std::strerror(errno),
                    "); exposition disabled");
        close(fd);
        return -1;
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    int boundPort = portWanted;
    if (getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &blen) ==
        0)
        boundPort = int(ntohs(bound.sin_port));

    metrics::setEnabled(true); // a scrape target must have data
    auto *l = new Listener;
    l->fd = fd;
    l->boundPort = boundPort;
    l->thread = std::thread(run, l);
    gListener = l;
    gPort.store(boundPort, std::memory_order_release);

    static bool atexitArmed = false;
    if (!atexitArmed) {
        atexitArmed = true;
        std::atexit(stopAtExit);
    }
    winomc_inform("metrics exposition listening on 127.0.0.1:",
                  boundPort);
    return boundPort;
}

void
stop()
{
    Listener *l = nullptr;
    {
        std::lock_guard<std::mutex> lk(gMu);
        l = gListener;
        gListener = nullptr;
        gPort.store(-1, std::memory_order_release);
    }
    if (!l)
        return;
    l->stopRequested.store(true, std::memory_order_release);
    l->thread.join();
    close(l->fd);
    delete l;
}

#else // !WINOMC_EXPOSITION_SOCKETS

int
start(int portWanted)
{
    (void)portWanted;
    winomc_warn("WINOMC_STATS_PORT: exposition not supported on this "
                "platform");
    return -1;
}

void
stop()
{
}

#endif

int
startFromEnv()
{
    const long long p =
        env::envPositiveInt("WINOMC_STATS_PORT", kMaxPort, 0);
    if (p <= 0)
        return -1; // unset (or rejected, already warned): no listener
    if (running())
        return port();
    return start(int(p));
}

bool
running()
{
    return port() >= 0;
}

int
port()
{
#if WINOMC_EXPOSITION_SOCKETS
    return gPort.load(std::memory_order_acquire);
#else
    return -1;
#endif
}

} // namespace winomc::exposition
