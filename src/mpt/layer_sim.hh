/**
 * @file
 * Performance and energy simulation of one convolution layer's training
 * iteration on the 256-worker NDP system, for every Table IV
 * configuration (the machinery behind Figures 15 and 16).
 *
 * Per phase the model composes:
 *  - systolic-array time of the element-wise dot products (Eq. 2),
 *  - vector-unit time of the (inverse) transforms, activation and
 *    weight update,
 *  - stacked-DRAM streaming (overlapped with compute by the double
 *    buffers),
 *  - tile scatter/gather as an all-to-all over the intra-cluster
 *    topology (bottleneck link model, validated against the flit and
 *    message simulators),
 *  - the pipelined ring collective of the group's weight slice,
 * and overlaps them with the wave pipeline / task-graph scheduler.
 */

#ifndef WINOMC_MPT_LAYER_SIM_HH
#define WINOMC_MPT_LAYER_SIM_HH

#include <string>

#include "memnet/cluster.hh"
#include "mpt/system_config.hh"
#include "winograd/conv_spec.hh"

namespace winomc::mpt {

/** One phase (fwd = fprop; bwd = bprop + updateGrad). */
struct PhaseResult
{
    double seconds = 0.0;

    // Pre-overlap totals per worker (diagnostics / energy).
    double computeSec = 0.0;
    double scatterSec = 0.0;
    double gatherSec = 0.0;
    double collectiveSec = 0.0;

    double macs = 0.0;          ///< per worker
    double vecOps = 0.0;        ///< per worker
    double dramBytes = 0.0;     ///< per worker
    double linkBytesSent = 0.0; ///< per worker

    energy::EnergyBreakdown energy; ///< whole system
};

struct LayerResult
{
    PhaseResult fwd;
    PhaseResult bwd;
    memnet::ClusterShape shape{1, 1};
    std::string algoName;

    /** Split timings for the network-level task graph: bwd.seconds ==
     *  bpropSeconds + max(ugradComputeSeconds, collectiveSeconds) +
     *  scheduling overhead; the graph overlaps collectives with other
     *  layers' compute (Section VI-C's concurrent Reduce blocks). */
    double bpropSeconds = 0.0;
    double ugradComputeSeconds = 0.0;
    double collectiveSeconds = 0.0;

    double totalSeconds() const { return fwd.seconds + bwd.seconds; }
    energy::EnergyBreakdown
    totalEnergy() const
    {
        energy::EnergyBreakdown e = fwd.energy;
        e += bwd.energy;
        return e;
    }
};

/** Simulate with the strategy's own shape policy (dynamic clustering
 *  optimizes the shape for WinoMPTPredictDyn). */
LayerResult simulateLayer(const ConvSpec &spec, Strategy strategy,
                          const SystemParams &params);

/** Simulate with an explicitly fixed cluster shape (ablations /
 *  the dynamic-clustering optimizer). */
LayerResult simulateLayerWithShape(const ConvSpec &spec,
                                   Strategy strategy,
                                   const SystemParams &params,
                                   const memnet::ClusterShape &shape);

} // namespace winomc::mpt

#endif // WINOMC_MPT_LAYER_SIM_HH
