file(REMOVE_RECURSE
  "CMakeFiles/wino_kernels.dir/wino_kernels.cpp.o"
  "CMakeFiles/wino_kernels.dir/wino_kernels.cpp.o.d"
  "wino_kernels"
  "wino_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wino_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
