/**
 * @file
 * Units used throughout the performance and energy models.
 *
 * Conventions:
 *   time       - double seconds (helpers for ns/us/ms)
 *   ticks      - uint64_t cycles of the 1 GHz system clock (sim kernel)
 *   bandwidth  - double bytes per second
 *   energy     - double joules (helpers for pJ/nJ)
 */

#ifndef WINOMC_COMMON_UNITS_HH
#define WINOMC_COMMON_UNITS_HH

#include <cstdint>

namespace winomc {

using Tick = uint64_t;

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

/** Convert nanoseconds to seconds. */
constexpr double nsToSec(double ns) { return ns * 1e-9; }
/** Convert seconds to nanoseconds. */
constexpr double secToNs(double s) { return s * 1e9; }
/** Convert picojoules to joules. */
constexpr double pJ(double pj) { return pj * 1e-12; }
/** Convert GB/s (decimal) to bytes/s. */
constexpr double GBps(double gb) { return gb * 1e9; }
/**
 * Link rate from lane count and per-lane signalling rate in Gbps,
 * returned in bytes per second (8b/lane-bit, no coding overhead modeled).
 */
constexpr double
laneBandwidth(int lanes, double gbps_per_lane)
{
    return lanes * gbps_per_lane * 1e9 / 8.0;
}

} // namespace winomc

#endif // WINOMC_COMMON_UNITS_HH
