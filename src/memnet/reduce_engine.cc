#include "memnet/reduce_engine.hh"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "sim/event_queue.hh"

namespace winomc::memnet {

namespace {

Tick
toTicks(double sec)
{
    return Tick(sec * 1e12 + 0.5);
}

double
toSec(Tick t)
{
    return double(t) * 1e-12;
}

} // namespace

RingCollectiveEngine::RingCollectiveEngine(int workers,
                                           const LinkSpec &link_,
                                           int chunk_bytes)
    : n(workers), link(link_), chunkBytes(chunk_bytes),
      chunkFloats(chunk_bytes / 4)
{
    winomc_assert(workers >= 2, "ring needs >= 2 workers");
    winomc_assert(chunk_bytes >= 4 && chunk_bytes % 4 == 0,
                  "chunk must hold whole floats");
}

int
RingCollectiveEngine::submit(std::vector<std::vector<float>> per_worker,
                             double start_sec)
{
    winomc_assert(int(per_worker.size()) == n,
                  "need one partial vector per worker");
    const size_t len = per_worker.front().size();
    winomc_assert(len > 0, "empty message");
    for (const auto &v : per_worker)
        winomc_assert(v.size() == len, "ragged partial vectors");

    Message m;
    m.data = std::move(per_worker);
    m.start = start_sec;
    m.len = len;
    messages.push_back(std::move(m));
    outcomes.emplace_back();
    return int(messages.size()) - 1;
}

void
RingCollectiveEngine::run()
{
    sim::EventQueue eq;
    // Directed ring links w -> (w+1) only (one rotation direction, as
    // the engine of Fig 13(c) uses; the reverse direction would carry a
    // second concurrent ring in the real system).
    std::vector<Tick> link_free(size_t(n), 0);
    linkBusy.assign(size_t(n), 0.0);

    const Tick ser = toTicks(double(chunkBytes) / link.bandwidth);
    const Tick lat = toTicks(link.hopLatencySec);
    const int total_hops = 2 * (n - 1);

    // Keep the original contributions for the reduce accumulation.
    std::vector<std::vector<std::vector<float>>> originals;
    originals.reserve(messages.size());
    for (const auto &m : messages)
        originals.push_back(m.data);

    Tick makespan = 0;

    struct Hop
    {
        int msg;
        size_t lo, hi;       ///< float range of this chunk
        int shard;           ///< originating shard (= start worker)
        int hop;             ///< chain position 0 .. 2n-3
        std::vector<float> payload;
    };

    // Forward declaration via std::function for the recursive chain.
    std::function<void(Hop)> send = [&](Hop h) {
        const int sender = (h.shard + h.hop) % n;
        Tick &free_at = link_free[size_t(sender)];
        if (free_at > eq.now()) {
            Tick at = free_at;
            eq.schedule(at, [&send, h]() mutable { send(std::move(h)); });
            return;
        }
        free_at = eq.now() + ser;
        linkBusy[size_t(sender)] += toSec(ser);
        Tick arrive = eq.now() + ser + lat;
        eq.schedule(arrive, [this, &send, &originals, &makespan, &eq,
                             total_hops, h]() mutable {
            const int receiver = (h.shard + h.hop + 1) % n;
            Message &m = messages[size_t(h.msg)];
            if (h.hop < n - 1) {
                // Reduce block: accumulate the receiver's contribution.
                const auto &own = originals[size_t(h.msg)]
                                           [size_t(receiver)];
                for (size_t i = h.lo; i < h.hi; ++i)
                    h.payload[i - h.lo] += own[i];
            }
            // The receiver's buffer now holds the partial (or, past the
            // reduce-scatter phase, final) chunk.
            for (size_t i = h.lo; i < h.hi; ++i)
                m.data[size_t(receiver)][i] = h.payload[i - h.lo];

            ++m.result.chunksMoved;
            if (h.hop + 1 < total_hops) {
                ++h.hop;
                send(std::move(h));
            } else {
                Tick now = eq.now();
                makespan = std::max(makespan, now);
                if (toSec(now) > m.result.finishSec)
                    m.result.finishSec = toSec(now);
            }
        });
    };

    // Seed: every shard's chunk chains start at their owners.
    for (int mi = 0; mi < int(messages.size()); ++mi) {
        Message &m = messages[size_t(mi)];
        const size_t shard_len = (m.len + size_t(n) - 1) / size_t(n);
        for (int s = 0; s < n; ++s) {
            size_t s_lo = size_t(s) * shard_len;
            size_t s_hi = std::min(m.len, s_lo + shard_len);
            for (size_t lo = s_lo; lo < s_hi;
                 lo += size_t(chunkFloats)) {
                Hop h;
                h.msg = mi;
                h.lo = lo;
                h.hi = std::min(s_hi, lo + size_t(chunkFloats));
                h.shard = s;
                h.hop = 0;
                h.payload.assign(
                    m.data[size_t(s)].begin() + long(h.lo),
                    m.data[size_t(s)].begin() + long(h.hi));
                eq.schedule(toTicks(m.start),
                            [&send, h]() mutable { send(std::move(h)); });
            }
        }
    }

    eq.run();
    makespanSec = toSec(makespan);

    // Finalize and verify replication.
    for (size_t mi = 0; mi < messages.size(); ++mi) {
        Message &m = messages[mi];
        m.result.reduced = m.data.front();
        for (int w = 1; w < n; ++w) {
            for (size_t i = 0; i < m.len; ++i) {
                winomc_assert(
                    std::fabs(m.data[size_t(w)][i] -
                              m.result.reduced[i]) <= 1e-4f *
                        std::max(1.0f, std::fabs(m.result.reduced[i])),
                    "collective result not replicated at worker ", w);
            }
        }
        outcomes[mi] = m.result;
    }
}

const CollectiveOutcome &
RingCollectiveEngine::outcome(int id) const
{
    return outcomes.at(size_t(id));
}

double
RingCollectiveEngine::linkUtilization(int w) const
{
    return makespanSec > 0.0 ? linkBusySeconds(w) / makespanSec : 0.0;
}

uint64_t
RingCollectiveEngine::totalChunksMoved() const
{
    uint64_t total = 0;
    for (const auto &o : outcomes)
        total += o.chunksMoved;
    return total;
}

double
RingCollectiveEngine::totalBytesMoved() const
{
    return double(totalChunksMoved()) * chunkBytes;
}

void
RingCollectiveEngine::exportMetrics(const std::string &prefix) const
{
    if (!metrics::enabled())
        return;
    metrics::counterAdd((prefix + ".chunks").c_str(),
                        double(totalChunksMoved()));
    metrics::counterAdd((prefix + ".bytes").c_str(), totalBytesMoved());
    metrics::gaugeSet((prefix + ".makespan_sec").c_str(), makespanSec);
    double mean = 0.0;
    const std::string util = prefix + ".link_utilization";
    for (int w = 0; w < n; ++w) {
        double u = linkUtilization(w);
        mean += u / n;
        metrics::histogramAdd(util.c_str(), u, 0.0, 1.0, 20);
    }
    metrics::gaugeSet((prefix + ".link_util_mean").c_str(), mean);
}

} // namespace winomc::memnet
