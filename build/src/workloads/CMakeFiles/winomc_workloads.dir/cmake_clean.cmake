file(REMOVE_RECURSE
  "CMakeFiles/winomc_workloads.dir/layers.cc.o"
  "CMakeFiles/winomc_workloads.dir/layers.cc.o.d"
  "CMakeFiles/winomc_workloads.dir/networks.cc.o"
  "CMakeFiles/winomc_workloads.dir/networks.cc.o.d"
  "libwinomc_workloads.a"
  "libwinomc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winomc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
