#include "workloads/layers.hh"

namespace winomc::workloads {

std::vector<ConvSpec>
tableTwoLayers(int batch)
{
    return {
        {"Early", batch, 64, 64, 112, 112, 3},
        {"Mid-A", batch, 128, 128, 56, 56, 3},
        {"Mid-B", batch, 256, 256, 28, 28, 3},
        {"Late-A", batch, 512, 512, 14, 14, 3},
        {"Late-B", batch, 512, 512, 7, 7, 3},
    };
}

std::vector<ConvSpec>
tableTwoLayers5x5(int batch)
{
    std::vector<ConvSpec> layers = tableTwoLayers(batch);
    for (auto &l : layers) {
        l.r = 5;
        l.name += "-5x5";
    }
    return layers;
}

std::vector<ConvSpec>
modernLayers(int batch)
{
    // {name, B, I, J, H, W, r} + designated geometry overrides.
    ConvSpec stem{"Stem-7x7s2", batch, 3, 64, 224, 224, 7};
    stem.strideH = stem.strideW = 2;
    stem.padH = stem.padW = 3; // torchvision ResNet stem: 224 -> 112
    ConvSpec incep{"Incep-5x5", batch, 48, 64, 28, 28, 5};
    ConvSpec down{"Down-3x3s2", batch, 128, 128, 56, 56, 3};
    down.strideH = down.strideW = 2;
    down.padH = down.padW = 1; // 56 -> 28
    return {stem, incep, down};
}

} // namespace winomc::workloads
