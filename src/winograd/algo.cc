#include "winograd/algo.hh"

#include "common/logging.hh"
#include "winograd/toom_cook.hh"

namespace winomc {

std::string
WinogradAlgo::name() const
{
    return "F(" + std::to_string(m) + "x" + std::to_string(m) + "," +
           std::to_string(r) + "x" + std::to_string(r) + ")";
}

WinogradAlgo
makeWinograd(int m, int r)
{
    ToomCookMatrices tc = generateToomCook(m, r);
    WinogradAlgo a;
    a.m = m;
    a.r = r;
    a.alpha = tc.alpha;
    a.BT = toMatrix(tc.BT);
    a.G = toMatrix(tc.G);
    a.AT = toMatrix(tc.AT);
    a.B = a.BT.transposed();
    a.GT = a.G.transposed();
    a.A = a.AT.transposed();
    return a;
}

const WinogradAlgo &
algoF2x2_3x3()
{
    static const WinogradAlgo a = makeWinograd(2, 3);
    return a;
}

const WinogradAlgo &
algoF4x4_3x3()
{
    static const WinogradAlgo a = makeWinograd(4, 3);
    return a;
}

const WinogradAlgo &
algoF2x2_5x5()
{
    static const WinogradAlgo a = makeWinograd(2, 5);
    return a;
}

const WinogradAlgo &
algoF6x6_3x3()
{
    static const WinogradAlgo a = makeWinograd(6, 3);
    return a;
}

const WinogradAlgo &
algoForTile(int m)
{
    switch (m) {
      case 2:
        return algoF2x2_3x3();
      case 4:
        return algoF4x4_3x3();
      case 6:
        return algoF6x6_3x3();
    }
    winomc_assert(false, "no F(m,3) candidate for tile edge m=", m);
    return algoF4x4_3x3(); // unreachable
}

const WinogradAlgo &
algoF2_3()
{
    static const WinogradAlgo a = makeWinograd(2, 3);
    return a;
}

} // namespace winomc
