/**
 * @file
 * Host-side parallel execution engine: a lazily-initialized shared
 * thread pool with a chunked-range parallelFor primitive.
 *
 * The numeric Winograd/convolution kernels are embarrassingly parallel
 * across output slices; this pool gives them a single shared set of
 * worker threads instead of per-call thread spawning. Design points:
 *
 *  - Thread count comes from the WINOMC_THREADS environment variable,
 *    defaulting to std::thread::hardware_concurrency(). A count of 1
 *    means fully serial inline execution (no workers are spawned), so
 *    deterministic single-threaded runs keep a serial escape hatch.
 *  - parallelFor partitions [begin, end) into contiguous chunks of at
 *    least grainSize iterations; workers claim chunks dynamically. A
 *    callee always owns its whole chunk, so kernels that partition
 *    *output* ranges are data-race free and bitwise deterministic for
 *    any thread count (scheduling only changes which thread runs a
 *    chunk, never the arithmetic inside one).
 *  - Nested parallelFor calls execute inline on the calling worker;
 *    there is no nested work splitting (and no deadlock).
 *  - Exceptions thrown by chunk bodies are captured and the first one
 *    is rethrown on the calling thread after all chunks finish.
 */

#ifndef WINOMC_COMMON_PARALLEL_HH
#define WINOMC_COMMON_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace winomc {

/** Hard ceiling on the pool size; larger requests clamp here. */
constexpr int kMaxThreadCount = 4096;

/**
 * Parse a thread-count string (env var); 0 if missing/invalid (the
 * caller then falls back to hardware_concurrency()). Never crashes:
 * garbage, negative, and zero values warn and return 0; values above
 * kMaxThreadCount warn and clamp.
 */
int parseThreadCount(const char *str);

/** WINOMC_THREADS if set and valid, else hardware_concurrency(), >= 1. */
int defaultThreadCount();

/**
 * Shared worker pool. Use ThreadPool::global() (lazily constructed on
 * first use); direct construction is also allowed for tests.
 */
class ThreadPool
{
  public:
    using RangeFn = std::function<void(std::int64_t, std::int64_t)>;

    /** The process-wide pool used by the free parallelFor(). */
    static ThreadPool &global();

    explicit ThreadPool(int threads = 0);
    ~ThreadPool();
    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Active thread count (including the calling thread). */
    int threadCount() const { return nthreads; }

    /**
     * Resize the pool (0 => defaultThreadCount()). Blocks until idle;
     * must not be called from inside a parallelFor body.
     */
    void setThreadCount(int threads);

    /**
     * Run fn(chunkBegin, chunkEnd) over disjoint contiguous chunks
     * covering [begin, end), each at least grainSize iterations (except
     * possibly the last). The calling thread participates. Serial inline
     * execution when the pool has one thread, the range is within one
     * grain, or the call is nested inside another parallelFor body.
     */
    void parallelFor(std::int64_t begin, std::int64_t end,
                     std::int64_t grainSize, const RangeFn &fn);

  private:
    struct Job;

    void startWorkers();
    void stopWorkers();
    void workerLoop();
    static void runJob(Job &job);

    int nthreads = 1;
    std::vector<std::thread> workers;
    std::shared_ptr<Job> job;      ///< currently published job, if any
    std::uint64_t jobSeq = 0;      ///< bumped per published job
    bool stopping = false;
    std::mutex mu;                 ///< guards job/jobSeq/stopping
    std::condition_variable cv;    ///< wakes workers for a new job
    std::mutex postMu;             ///< serializes posters and resizing
};

/** parallelFor on the shared global pool. */
void parallelFor(std::int64_t begin, std::int64_t end,
                 std::int64_t grainSize, const ThreadPool::RangeFn &fn);

} // namespace winomc

#endif // WINOMC_COMMON_PARALLEL_HH
