#include "winograd/cost.hh"

#include "common/logging.hh"
#include "winograd/plan.hh" // decomposeSpec
#include "winograd/tiling.hh"

namespace winomc {

namespace {

uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

ConvCost
directConvCost(const ConvSpec &spec, Phase phase, const CostModelParams &p)
{
    const uint64_t B = spec.batch, I = spec.inCh, J = spec.outCh;
    const uint64_t HW = uint64_t(spec.outH()) * spec.outW();
    const uint64_t RR = uint64_t(spec.kernelH()) * spec.kernelW();
    const double bytes = p.bytesPerScalar;
    const uint64_t S = uint64_t(p.systolicDim);

    ConvCost c;
    // All three phases are the same-sized convolution with roles of
    // x / y / w permuted (Section II-A), so the MAC count is identical.
    c.mults = B * I * J * HW * RR;
    c.adds = c.mults;

    // Streamed operand re-read factor: one pass per S-wide block of the
    // "output channel" dimension of the underlying matmul.
    switch (phase) {
      case Phase::Fprop: {
        // y[B,J,HW] = x[B,I,HW] * w ; x streamed per J-block.
        uint64_t x_reads = spec.inputElems() * ceilDiv(J, S);
        c.dramReadBytes = uint64_t((x_reads + spec.weightElems()) * bytes);
        c.dramWriteBytes = uint64_t(spec.outputElems() * bytes);
        break;
      }
      case Phase::Bprop: {
        // dx = dy (*) flip(w); dy streamed per I-block.
        uint64_t dy_reads = spec.outputElems() * ceilDiv(I, S);
        c.dramReadBytes = uint64_t((dy_reads + spec.weightElems()) * bytes);
        c.dramWriteBytes = uint64_t(spec.inputElems() * bytes);
        break;
      }
      case Phase::UpdateGrad: {
        // dw = sum_b dy (*) x; both feature maps stream, accumulating a
        // weight-sized output. x re-read per J-block of the gradient.
        uint64_t reads = spec.outputElems() +
                         spec.inputElems() * ceilDiv(J, S);
        c.dramReadBytes = uint64_t(reads * bytes);
        c.dramWriteBytes = uint64_t(spec.weightElems() * bytes);
        break;
      }
    }
    return c;
}

ConvCost
winogradConvCost(const ConvSpec &spec, const WinogradAlgo &algo,
                 Phase phase, const CostModelParams &p)
{
    winomc_assert(spec.squareKernel() && spec.kernelH() == algo.r,
                  "ConvSpec kernel ", spec.kernelH(), "x",
                  spec.kernelW(), " does not match algorithm r=",
                  algo.r);
    winomc_assert(spec.samePadded(),
                  "plain Winograd cost needs a stride-1 same-padded "
                  "spec (got ", spec.key(),
                  "); use decomposedConvCost");
    const uint64_t B = spec.batch, I = spec.inCh, J = spec.outCh;
    const uint64_t S = uint64_t(p.systolicDim);
    const double bytes = p.bytesPerScalar;

    TileGrid grid(spec.h, spec.w, algo);
    const uint64_t t = uint64_t(grid.tiles());
    const uint64_t a2 = uint64_t(algo.alpha) * algo.alpha;
    // 2D transform of one alpha x alpha tile: two small matmuls,
    // ~2 * alpha^3 MACs (upper bound; many coefficients are 0/+-1).
    const uint64_t xf_macs = 2 * a2 * uint64_t(algo.alpha);

    // Winograd-domain array sizes (elements).
    const uint64_t tiles_in = B * I * t * a2;   // X
    const uint64_t tiles_out = B * J * t * a2;  // Y
    const uint64_t wino_w = I * J * a2;         // W

    ConvCost c;
    switch (phase) {
      case Phase::Fprop: {
        // transform x -> X, dot products, inverse Y -> y.
        c.mults = B * I * t * xf_macs        // input transform
                + t * a2 * B * I * J          // eq. (2) dot products
                + B * J * t * xf_macs;        // inverse transform
        c.adds = c.mults;
        uint64_t reads = spec.inputElems()            // x for transform
                       + tiles_in * ceilDiv(J, S)     // X streamed per blk
                       + wino_w                       // W
                       + tiles_out;                   // Y for inverse
        uint64_t writes = tiles_in + tiles_out + spec.outputElems();
        c.dramReadBytes = uint64_t(reads * bytes);
        c.dramWriteBytes = uint64_t(writes * bytes);
        break;
      }
      case Phase::Bprop: {
        // dy -> dY (adjoint transform), dX = W^T dY, dX -> dx.
        c.mults = B * J * t * xf_macs
                + t * a2 * B * I * J
                + B * I * t * xf_macs;
        c.adds = c.mults;
        uint64_t reads = spec.outputElems()
                       + tiles_out * ceilDiv(I, S)
                       + wino_w
                       + tiles_in;
        uint64_t writes = tiles_out + tiles_in + spec.inputElems();
        c.dramReadBytes = uint64_t(reads * bytes);
        c.dramWriteBytes = uint64_t(writes * bytes);
        break;
      }
      case Phase::UpdateGrad: {
        // Winograd layer: dW[uv] = dY[uv] X[uv]^T; X, dY already in DRAM
        // from fprop/bprop; dW accumulates into W (update in Winograd
        // domain, Fig 2(b)).
        c.mults = t * a2 * B * I * J;
        c.adds = c.mults;
        uint64_t reads = tiles_out + tiles_in * ceilDiv(J, S) + wino_w;
        uint64_t writes = wino_w;
        c.dramReadBytes = uint64_t(reads * bytes);
        c.dramWriteBytes = uint64_t(writes * bytes);
        break;
      }
    }
    return c;
}

TrafficPrediction
predictedTrafficBytes(const ConvSpec &spec, const WinogradAlgo &algo,
                      Phase phase, bool fused, int stripsPerImage,
                      const CostModelParams &p)
{
    winomc_assert(spec.squareKernel() && spec.kernelH() == algo.r,
                  "ConvSpec kernel ", spec.kernelH(), "x",
                  spec.kernelW(), " does not match algorithm r=",
                  algo.r);
    winomc_assert(spec.samePadded(), "slab-traffic prediction covers "
                                     "the stride-1 same pipeline only");
    winomc_assert(stripsPerImage >= 1, "need at least one strip");
    const uint64_t B = spec.batch, I = spec.inCh, J = spec.outCh;
    const double bytes = p.bytesPerScalar;

    TileGrid grid(spec.h, spec.w, algo);
    const uint64_t t = uint64_t(grid.tiles());
    const uint64_t a2 = uint64_t(algo.alpha) * algo.alpha;
    const uint64_t m2 = uint64_t(algo.m) * algo.m;

    // Slab / stream sizes in elements.
    const uint64_t tilesIn = B * I * t * a2;  // Xt / dXt
    const uint64_t tilesOut = B * J * t * a2; // Yt / dYt
    const uint64_t winoW = I * J * a2;        // W
    const uint64_t inGather = B * I * t * a2; // a x a window per tile
    const uint64_t dyGather = B * J * t * m2; // m x m window per tile

    auto toBytes = [bytes](uint64_t elems) {
        return uint64_t(double(elems) * bytes);
    };

    TrafficPrediction tp;
    switch (phase) {
      case Phase::Fprop:
        if (fused) {
            // Gather x, stream W once per (image, strip), store y; the
            // strip scratch stays cache-resident by construction.
            tp.xformBytes = toBytes(inGather);
            tp.ewBytes = toBytes(winoW * B * uint64_t(stripsPerImage));
            tp.inverseBytes = toBytes(spec.outputElems());
        } else {
            tp.xformBytes = toBytes(inGather + tilesIn);
            tp.ewBytes = toBytes(tilesIn + winoW + tilesOut);
            tp.inverseBytes = toBytes(tilesOut + spec.outputElems());
        }
        break;
      case Phase::Bprop:
        if (fused) {
            tp.xformBytes = toBytes(dyGather);
            tp.ewBytes = toBytes(winoW * B * uint64_t(stripsPerImage));
            // dx zero-fill write plus the overlap-add read+write sweep.
            tp.inverseBytes =
                toBytes(spec.inputElems() + 2 * inGather);
        } else {
            tp.xformBytes = toBytes(dyGather + tilesOut);
            tp.ewBytes = toBytes(tilesOut + winoW + tilesIn);
            tp.inverseBytes =
                toBytes(tilesIn + spec.inputElems() + 2 * inGather);
        }
        break;
      case Phase::UpdateGrad:
        // Staged only: both transforms stream their slabs, the dot
        // products re-read them against a weight-sized output.
        tp.xformBytes =
            toBytes(inGather + tilesIn + dyGather + tilesOut);
        tp.ewBytes = toBytes(tilesIn + tilesOut + winoW);
        tp.inverseBytes = 0;
        break;
    }
    return tp;
}

ConvCost
decomposedConvCost(const ConvSpec &spec, const WinogradAlgo &unit,
                   const CostModelParams &p)
{
    winomc_assert(unit.r == 3,
                  "decomposition terms are 3-tap units; got r=", unit.r);
    const uint64_t terms = uint64_t(decomposeSpec(spec).size());
    winomc_assert(terms > 0, "empty decomposition for ", spec.key());

    // Every term is the same inner stride-1 "same" 3x3 convolution
    // over the gathered (outH+2) x (outW+2) view (the +2 border
    // absorbs the inner pipeline's implicit padding).
    ConvSpec innerSpec = spec;
    innerSpec.h = spec.outH() + 2;
    innerSpec.w = spec.outW() + 2;
    innerSpec.r = 3;
    innerSpec.kh = innerSpec.kw = 0;
    innerSpec.strideH = innerSpec.strideW = 1;
    innerSpec.padH = innerSpec.padW = -1;
    const ConvCost one = winogradConvCost(innerSpec, unit,
                                          Phase::Fprop, p);

    // Per term on top of the inner pipeline: write + re-read the
    // gathered view, and the crop-accumulate's read-modify-write
    // sweep over the output map.
    const uint64_t gatherElems = innerSpec.inputElems();
    const uint64_t accumElems = spec.outputElems();

    ConvCost c;
    c.mults = terms * one.mults;
    c.adds = terms * (one.adds + accumElems);
    c.dramReadBytes =
        terms * (one.dramReadBytes +
                 uint64_t((gatherElems + accumElems) * p.bytesPerScalar));
    c.dramWriteBytes =
        terms * (one.dramWriteBytes +
                 uint64_t((gatherElems + accumElems) * p.bytesPerScalar));
    return c;
}

ConvCost
directConvIterCost(const ConvSpec &spec, const CostModelParams &p)
{
    ConvCost c = directConvCost(spec, Phase::Fprop, p);
    c += directConvCost(spec, Phase::Bprop, p);
    c += directConvCost(spec, Phase::UpdateGrad, p);
    return c;
}

ConvCost
winogradConvIterCost(const ConvSpec &spec, const WinogradAlgo &algo,
                     const CostModelParams &p)
{
    ConvCost c = winogradConvCost(spec, algo, Phase::Fprop, p);
    c += winogradConvCost(spec, algo, Phase::Bprop, p);
    c += winogradConvCost(spec, algo, Phase::UpdateGrad, p);
    return c;
}

} // namespace winomc
