# Empty dependencies file for wino_kernels.
# This may be replaced when dependencies are built.
