/**
 * @file
 * Request queue + dynamic batcher for the serving engine.
 *
 * Clients submit single-image requests; a batcher thread pops them as
 * shape-pure FIFO batches: it takes the longest same-shape prefix of
 * the queue, up to a size threshold, waiting out a deadline anchored
 * at the head request's arrival before emitting a partial batch. The
 * queue is bounded — a full queue blocks producers (backpressure)
 * instead of dropping requests — and close() lets the consumer drain
 * every in-flight request before shutdown.
 */

#ifndef WINOMC_SERVE_BATCHER_HH
#define WINOMC_SERVE_BATCHER_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "tensor/tensor.hh"

namespace winomc::serve {

/** One in-flight inference request (a single image, N = 1). */
struct Request
{
    Tensor x;                  ///< input image [1, C, H, W]
    std::promise<Tensor> done; ///< fulfilled with the output [1, K, H, W]
    std::chrono::steady_clock::time_point enqueued;
    /** Trace id minted by Engine::submit (0 = untracked). Propagated
     *  through the queue to the dispatched batch, where it names the
     *  request's "serve.request" span and the latency histogram's
     *  exemplar — the correlation key of the telemetry plane. */
    std::uint64_t id = 0;
};

/**
 * Bounded MPMC queue of requests with shape-pure batch pops.
 *
 * Thread-safety: any number of pushers and poppers. The serving
 * engine runs one popper (the batcher thread); tests hammer it with
 * several of each.
 */
class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t capacity);

    /**
     * Enqueue a request, blocking while the queue is full
     * (backpressure — nothing is ever dropped). Returns false without
     * consuming side effects when the queue is closed: the request is
     * destroyed and its promise breaks.
     */
    bool push(Request r);

    /**
     * Pop the next batch: blocks for a head request (or close), then
     * gathers the same-shape (C, H, W) FIFO prefix up to `maxBatch`
     * requests, waiting for latecomers until `head.enqueued +
     * maxDelay` before emitting a partial batch. After close() the
     * remaining requests drain batch by batch; an empty result means
     * closed-and-drained (the consumer's exit signal).
     */
    std::vector<Request> popBatch(int maxBatch,
                                  std::chrono::microseconds maxDelay);

    /** Reject future pushes and wake every waiter. Idempotent. */
    void close();

    /** Requests currently queued (racy by nature; for gauges). */
    std::size_t depth() const;

    bool closed() const;

  private:
    const std::size_t cap;
    mutable std::mutex mu;
    std::condition_variable canPush;
    std::condition_variable canPop;
    std::deque<Request> q;
    bool shut = false;
};

} // namespace winomc::serve

#endif // WINOMC_SERVE_BATCHER_HH
