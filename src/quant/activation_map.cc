#include "quant/activation_map.hh"

#include "common/logging.hh"

namespace winomc::quant {

ActivationMap::ActivationMap(size_t units)
    : nUnits(units), bits((units + 7) / 8, 0)
{
    winomc_assert(units > 0, "empty activation map");
}

void
ActivationMap::set(size_t unit, bool live)
{
    winomc_assert(unit < nUnits, "activation map index out of range");
    uint8_t mask = uint8_t(1u << (unit % 8));
    if (live)
        bits[unit / 8] |= mask;
    else
        bits[unit / 8] &= uint8_t(~mask);
}

bool
ActivationMap::live(size_t unit) const
{
    winomc_assert(unit < nUnits, "activation map index out of range");
    return (bits[unit / 8] >> (unit % 8)) & 1u;
}

size_t
ActivationMap::liveCount() const
{
    size_t n = 0;
    for (size_t u = 0; u < nUnits; ++u)
        if (live(u))
            ++n;
    return n;
}

std::vector<float>
packUnits(const float *data, size_t unit_floats, const ActivationMap &map)
{
    winomc_assert(unit_floats > 0, "empty unit");
    std::vector<float> out;
    out.reserve(map.liveCount() * unit_floats);
    for (size_t u = 0; u < map.units(); ++u) {
        if (!map.live(u))
            continue;
        const float *p = data + u * unit_floats;
        out.insert(out.end(), p, p + unit_floats);
    }
    return out;
}

void
unpackUnits(const std::vector<float> &packed, size_t unit_floats,
            const ActivationMap &map, float *out)
{
    winomc_assert(packed.size() == map.liveCount() * unit_floats,
                  "packed payload size mismatch: ", packed.size(),
                  " vs ", map.liveCount() * unit_floats);
    size_t src = 0;
    for (size_t u = 0; u < map.units(); ++u) {
        float *p = out + u * unit_floats;
        if (map.live(u)) {
            for (size_t k = 0; k < unit_floats; ++k)
                p[k] = packed[src++];
        } else {
            for (size_t k = 0; k < unit_floats; ++k)
                p[k] = 0.0f;
        }
    }
}

ActivationMap
mapFromZeroUnits(const float *data, size_t units, size_t unit_floats)
{
    ActivationMap map(units);
    for (size_t u = 0; u < units; ++u) {
        bool live = false;
        for (size_t k = 0; k < unit_floats; ++k) {
            if (data[u * unit_floats + k] != 0.0f) {
                live = true;
                break;
            }
        }
        map.set(u, live);
    }
    return map;
}

size_t
packedWireBytes(const ActivationMap &map, size_t unit_floats)
{
    return map.liveCount() * unit_floats * sizeof(float) +
           map.mapBytes();
}

} // namespace winomc::quant
