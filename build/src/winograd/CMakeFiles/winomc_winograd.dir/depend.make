# Empty dependencies file for winomc_winograd.
# This may be replaced when dependencies are built.
