/**
 * @file
 * Numerical-stability ablation (Section II-B discussion of [31]): as
 * the output tile m grows, the Toom-Cook interpolation points spread
 * and the transform coefficients blow up, degrading FP32 accuracy -
 * the reason the paper stays at F(2x2,3x3)/F(4x4,3x3) and leaves
 * larger tiles to better-conditioned transforms as future work. This
 * bench measures the actual max relative error of this library's
 * generated algorithms against direct convolution.
 */

#include <algorithm>
#include <cstdio>

#include "common/rng.hh"
#include "common/table.hh"
#include "winograd/algo.hh"
#include "winograd/conv.hh"

using namespace winomc;

namespace {

double
maxRelError(int m, int r, int trials)
{
    WinogradAlgo algo = makeWinograd(m, r);
    Rng rng(555);
    double worst = 0.0;
    for (int t = 0; t < trials; ++t) {
        Tensor x(1, 3, 3 * algo.alpha, 3 * algo.alpha);
        Tensor w(2, 3, r, r);
        x.fillUniform(rng);
        w.fillUniform(rng);
        Tensor ref = directConvForward(x, w);
        Tensor got = winogradForward(x, transformWeights(w, algo), algo);
        double scale = std::max(1.0f, ref.absMax());
        worst = std::max(worst, double(got.maxAbsDiff(ref)) / scale);
    }
    return worst;
}

} // namespace

int
main()
{
    std::printf("Winograd numerical stability vs tile size (FP32, "
                "uniform [-1,1] data)\n\n");
    Table t("max relative error vs direct convolution");
    t.header({"algorithm", "tile", "max rel err", "vs F(2,r)"});
    double base3 = 0.0, base5 = 0.0;
    for (int m : {2, 3, 4, 5, 6}) {
        double e = maxRelError(m, 3, 8);
        if (m == 2)
            base3 = e;
        t.row()
            .cell("F(" + std::to_string(m) + "x" + std::to_string(m) +
                  ",3x3)")
            .cell(int64_t(m + 2))
            .cell(e, 9)
            .cell(e / base3, 1);
    }
    t.rule();
    for (int m : {2, 3, 4}) {
        double e = maxRelError(m, 5, 8);
        if (m == 2)
            base5 = e;
        t.row()
            .cell("F(" + std::to_string(m) + "x" + std::to_string(m) +
                  ",5x5)")
            .cell(int64_t(m + 4))
            .cell(e, 9)
            .cell(e / base5, 1);
    }
    t.print();
    std::printf("expected: error grows steeply with the tile edge - the "
                "paper's choice of F(2x2)/F(4x4) is the accuracy-safe "
                "region; larger tiles need the improved transforms of "
                "[31].\n");
    return 0;
}
