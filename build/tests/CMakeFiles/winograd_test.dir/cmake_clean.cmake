file(REMOVE_RECURSE
  "CMakeFiles/winograd_test.dir/winograd_test.cpp.o"
  "CMakeFiles/winograd_test.dir/winograd_test.cpp.o.d"
  "winograd_test"
  "winograd_test.pdb"
  "winograd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winograd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
