/**
 * @file
 * Fused tile-strip pipeline tests (§4.11): fused-vs-staged bitwise
 * parity over odd shapes / N=1 / C!=K / grids both smaller and larger
 * than one strip, at 1-vs-8 threads and under scalar + auto ISA
 * dispatch; WINOMC_FUSED knob parsing and the Auto heuristic; zero
 * fresh workspace bytes in fused steady state; and the layer wirings
 * (ConvLayer train-mode under WINOMC_FUSED=on, MptConvLayer fused
 * inference forward).
 *
 * The parity expectation is exact equality — the fused schedule keeps
 * the staged pipeline's per-element operation order (panel grouping
 * and strip boundaries align with the staged 16-wide panels, strips of
 * one image overlap-add in ascending tile order), so "within ULP
 * bounds" collapses to bitwise identity on every ISA. Any nonzero
 * diff is a scheduling bug, not roundoff.
 */

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "mpt/mpt_conv_layer.hh"
#include "nn/conv_layer.hh"
#include "tensor/workspace.hh"
#include "winograd/conv.hh"
#include "winograd/microkernel.hh"
#include "winograd/plan.hh"

namespace winomc {

// This suite validates the fp32 pipeline against fp32 oracles (direct
// convolution, numeric gradients, bitwise stage parity), so the
// activation storage precision is pinned to fp32 regardless of
// WINOMC_PREC. WINOMC_SPARSE stays env-driven on purpose: sparse
// execution is bitwise identical and must keep passing here.
[[maybe_unused]] const bool kPinFp32 = [] {
    setPrec(Prec::F32);
    return true;
}();

namespace {

/** Restore the process-wide fused mode / ISA / thread count on exit so
 *  tests cannot leak overrides into each other. */
struct KnobGuard
{
    ~KnobGuard()
    {
        setFusedMode(FusedMode::Auto);
        mk::setIsa(mk::Isa::Auto);
        ThreadPool::global().setThreadCount(0);
    }
};

// ------------------------------------------------------- Knob parsing

TEST(FusedKnob, ParsesTokensCaseInsensitivelyAndTrimmed)
{
    EXPECT_EQ(parseFusedMode("on"), FusedMode::On);
    EXPECT_EQ(parseFusedMode("off"), FusedMode::Off);
    EXPECT_EQ(parseFusedMode("auto"), FusedMode::Auto);
    EXPECT_EQ(parseFusedMode(" ON "), FusedMode::On);
    EXPECT_EQ(parseFusedMode("Off\n"), FusedMode::Off);
    EXPECT_EQ(parseFusedMode("AuTo"), FusedMode::Auto);
}

TEST(FusedKnob, GarbageFallsBackToAuto)
{
    EXPECT_EQ(parseFusedMode(nullptr), FusedMode::Auto);
    EXPECT_EQ(parseFusedMode(""), FusedMode::Auto);
    EXPECT_EQ(parseFusedMode("banana"), FusedMode::Auto);
    EXPECT_EQ(parseFusedMode("on1"), FusedMode::Auto);
    EXPECT_EQ(parseFusedMode("yes"), FusedMode::Auto);
}

TEST(FusedKnob, SetFusedModeOverridesExactly)
{
    KnobGuard guard;
    setFusedMode(FusedMode::On);
    EXPECT_EQ(requestedFusedMode(), FusedMode::On);
    setFusedMode(FusedMode::Off);
    EXPECT_EQ(requestedFusedMode(), FusedMode::Off);
    setFusedMode(FusedMode::Auto);
    EXPECT_EQ(requestedFusedMode(), FusedMode::Auto);
}

TEST(FusedKnob, ModeNamesRoundTrip)
{
    EXPECT_STREQ(fusedModeName(FusedMode::Off), "off");
    EXPECT_STREQ(fusedModeName(FusedMode::Auto), "auto");
    EXPECT_STREQ(fusedModeName(FusedMode::On), "on");
    EXPECT_EQ(parseFusedMode(fusedModeName(FusedMode::On)),
              FusedMode::On);
}

// ----------------------------------------------------- Auto heuristic

TEST(FusedHeuristic, OffNeverFusesOnAlwaysFuses)
{
    KnobGuard guard;
    WinogradAlgo algo = makeWinograd(2, 3);
    WinoPlan plan(algo, 1, 2, 2, 8, 8);
    ASSERT_TRUE(plan.fusedSupported());
    setFusedMode(FusedMode::Off);
    EXPECT_FALSE(plan.shouldFuse(false));
    EXPECT_FALSE(plan.shouldFuse(true));
    setFusedMode(FusedMode::On);
    EXPECT_TRUE(plan.shouldFuse(false));
    EXPECT_TRUE(plan.shouldFuse(true)); // explicit on overrides caches
}

TEST(FusedHeuristic, AutoFusesLargeSlabsButPreservesTileCaches)
{
    KnobGuard guard;
    setFusedMode(FusedMode::Auto);
    WinogradAlgo algo = makeWinograd(2, 3);
    WinoPlan small(algo, 1, 2, 2, 8, 8); // slabs are a few KiB
    EXPECT_FALSE(small.shouldFuse(false));
    WinoPlan big(algo, 4, 32, 32, 64, 64); // slabs are tens of MiB
    EXPECT_TRUE(big.shouldFuse(false));
    EXPECT_FALSE(big.shouldFuse(true)); // caller needs the tile caches
}

TEST(FusedStrips, GeometryCoversTheGridInWholePanels)
{
    WinogradAlgo algo = makeWinograd(2, 3);
    // Heavy channels shrink the strip until the grid needs several.
    WinoPlan plan(algo, 1, 128, 128, 24, 24);
    EXPECT_EQ(plan.stripTiles() % mk::kTilePanel, 0);
    EXPECT_GT(plan.stripCount(), 1);
    EXPECT_GE(plan.stripTiles() * plan.stripCount(),
              plan.tileGrid().tiles());
    // Tiny grid: one panel-sized strip.
    WinoPlan tiny(algo, 1, 2, 2, 4, 4);
    EXPECT_EQ(tiny.stripCount(), 1);
    EXPECT_GE(tiny.stripTiles(), tiny.tileGrid().tiles());
}

// --------------------------------------------- Fused vs staged parity

struct FusedCase
{
    int batch, in_ch, out_ch, h, w, m, r;
};

class FusedParityP : public ::testing::TestWithParam<FusedCase> {};

TEST_P(FusedParityP, BitwiseMatchesStagedForAnyThreadCountAndIsa)
{
    KnobGuard guard;
    const auto p = GetParam();
    WinogradAlgo algo = makeWinograd(p.m, p.r);
    Rng rng(321);
    Tensor x(p.batch, p.in_ch, p.h, p.w);
    Tensor dy(p.batch, p.out_ch, p.h, p.w);
    Tensor w(p.out_ch, p.in_ch, p.r, p.r);
    x.fillUniform(rng);
    dy.fillUniform(rng);
    w.fillUniform(rng);
    const WinoWeights W = transformWeights(w, algo);

    for (mk::Isa isa : {mk::Isa::Scalar, mk::Isa::Auto}) {
        mk::setIsa(isa);
        WinoPlan plan(algo, p.batch, p.in_ch, p.out_ch, p.h, p.w);
        Tensor y_ref(p.batch, p.out_ch, p.h, p.w);
        Tensor dx_ref(p.batch, p.in_ch, p.h, p.w);
        plan.forwardInto(x, W, y_ref);
        plan.backwardDataInto(dy, W, dx_ref);

        Tensor y(p.batch, p.out_ch, p.h, p.w);
        Tensor dx(p.batch, p.in_ch, p.h, p.w);
        for (int threads : {1, 8}) {
            ThreadPool::global().setThreadCount(threads);
            // Twice per thread count: the second pass reuses warm
            // strip scratch and must still be bitwise identical.
            for (int pass = 0; pass < 2; ++pass) {
                y.fill(-1.0f); // poison: every element must be stored
                dx.fill(-1.0f);
                plan.forwardFusedInto(x, W, y);
                plan.backwardDataFusedInto(dy, W, dx);
                EXPECT_EQ(y.maxAbsDiff(y_ref), 0.0f)
                    << "isa " << mk::isaName(isa) << " threads "
                    << threads;
                EXPECT_EQ(dx.maxAbsDiff(dx_ref), 0.0f)
                    << "isa " << mk::isaName(isa) << " threads "
                    << threads;
            }
        }

        // The free wrappers dispatch through the same plans.
        setFusedMode(FusedMode::On);
        EXPECT_EQ(winogradForward(x, W, algo).maxAbsDiff(y_ref), 0.0f);
        EXPECT_EQ(winogradBackwardData(dy, W, algo, p.h, p.w)
                      .maxAbsDiff(dx_ref),
                  0.0f);
        setFusedMode(FusedMode::Auto);
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FusedParityP,
    ::testing::Values(
        FusedCase{1, 1, 1, 3, 3, 2, 3},      // N=1, single ragged tile
        FusedCase{1, 2, 5, 5, 7, 2, 3},      // C < K, ragged grid
        FusedCase{3, 5, 2, 9, 6, 4, 3},      // C > K, F(4,3)
        FusedCase{2, 3, 4, 8, 8, 4, 3},      // even grid, F(4,3)
        FusedCase{1, 3, 2, 13, 11, 2, 5},    // r=5, odd spatial
        FusedCase{2, 128, 128, 24, 24, 2, 3}), // multi-strip grid
    [](const ::testing::TestParamInfo<FusedCase> &info) {
        const auto &p = info.param;
        return "b" + std::to_string(p.batch) + "c" +
               std::to_string(p.in_ch) + "k" + std::to_string(p.out_ch) +
               "h" + std::to_string(p.h) + "w" + std::to_string(p.w) +
               "F" + std::to_string(p.m) + "r" + std::to_string(p.r);
    });

TEST(FusedParity, MultiStripGridReallyUsesMultipleStrips)
{
    WinogradAlgo algo = makeWinograd(2, 3);
    WinoPlan plan(algo, 2, 128, 128, 24, 24);
    // Guards the INSTANTIATE case above: if strip sizing changes and
    // this collapses to one strip, the ragged-strip coverage is gone.
    EXPECT_GT(plan.stripCount(), 1);
    // ... and the last strip must be ragged (not a full stripT).
    EXPECT_NE(plan.tileGrid().tiles() % plan.stripTiles(), 0);
}

// ------------------------------------------- Zero steady-state alloc

TEST(FusedSteadyState, FusedPathAllocatesNothingAfterWarmup)
{
    KnobGuard guard;
    setFusedMode(FusedMode::On);
    WinogradAlgo algo = makeWinograd(2, 3);
    Rng rng(17);
    Tensor x(2, 8, 16, 16);
    Tensor dy(2, 8, 16, 16);
    Tensor w(8, 8, 3, 3);
    x.fillUniform(rng);
    dy.fillUniform(rng);
    w.fillUniform(rng);
    const WinoWeights W = transformWeights(w, algo);
    WinoPlan plan(algo, 2, 8, 8, 16, 16);
    Tensor y(2, 8, 16, 16);
    Tensor dx(2, 8, 16, 16);
    for (int threads : {1, 8}) {
        ThreadPool::global().setThreadCount(threads);
        // Warm-up builds the per-worker strip slots at this
        // concurrency and primes the workspace pool.
        plan.forwardFusedInto(x, W, y);
        plan.backwardDataFusedInto(dy, W, dx);
        const auto s0 = ws::Workspace::global().stats();
        for (int i = 0; i < 10; ++i) {
            plan.forwardFusedInto(x, W, y);
            plan.backwardDataFusedInto(dy, W, dx);
        }
        const auto s1 = ws::Workspace::global().stats();
        EXPECT_EQ(s1.freshAllocs, s0.freshAllocs)
            << "fused steady state hit the heap at " << threads
            << " threads";
        EXPECT_EQ(s1.freshBytes, s0.freshBytes);
        EXPECT_EQ(s1.highWater, s0.highWater);
    }
}

// ------------------------------------------------------ Layer wiring

TEST(FusedConvLayer, TrainStepsBitwiseMatchStagedUnderForcedFusion)
{
    KnobGuard guard;
    WinogradAlgo algo = makeWinograd(2, 3);
    for (auto mode :
         {nn::ConvMode::WinogradSpatial, nn::ConvMode::WinogradLayer}) {
        // Identically-seeded twin layers, one staged, one fused.
        Rng rngA(42), rngB(42);
        nn::ConvLayer staged(3, 4, 3, mode, algo, rngA);
        nn::ConvLayer fused(3, 4, 3, mode, algo, rngB);
        Rng dataRng(7);
        for (int iter = 0; iter < 3; ++iter) {
            Tensor x(2, 3, 6, 6);
            Tensor dy(2, 4, 6, 6);
            x.fillUniform(dataRng);
            dy.fillUniform(dataRng);

            setFusedMode(FusedMode::Off);
            Tensor y_ref = staged.forward(x, true);
            Tensor dx_ref = staged.backward(dy);
            staged.step(0.01f);

            setFusedMode(FusedMode::On);
            Tensor y = fused.forward(x, true);
            Tensor dx = fused.backward(dy);
            fused.step(0.01f);

            EXPECT_EQ(y.maxAbsDiff(y_ref), 0.0f) << "mode " << int(mode);
            EXPECT_EQ(dx.maxAbsDiff(dx_ref), 0.0f)
                << "mode " << int(mode);
        }
    }
}

TEST(FusedConvLayer, EvalForwardMatchesStagedAndKeepsBackwardFenced)
{
    KnobGuard guard;
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    WinogradAlgo algo = makeWinograd(2, 3);
    Rng rng(5);
    nn::ConvLayer layer(2, 3, 3, nn::ConvMode::WinogradSpatial, algo,
                        rng);
    Tensor x(1, 2, 6, 6);
    Tensor dy(1, 3, 6, 6);
    x.fillUniform(rng);
    dy.fillUniform(rng);
    setFusedMode(FusedMode::Off);
    Tensor y_ref = layer.forward(x, false);
    setFusedMode(FusedMode::On);
    Tensor y = layer.forward(x, false);
    EXPECT_EQ(y.maxAbsDiff(y_ref), 0.0f);
    // The stale-cache fence survives the fused eval forward.
    EXPECT_DEATH(layer.backward(dy), "stale");
}

TEST(FusedMptLayer, InferenceForwardMatchesCanonicalPipeline)
{
    KnobGuard guard;
    WinogradAlgo algo = makeWinograd(2, 3); // alpha^2 = 16
    // ng == 1: the undivided shard qualifies for the fused forward.
    Rng rngA(23), rngB(23);
    mpt::MptConvLayer staged(3, 4, 3, 1, 2, algo, rngA);
    mpt::MptConvLayer fused(3, 4, 3, 1, 2, algo, rngB);
    Rng dataRng(29);
    Tensor x(4, 3, 8, 8);
    x.fillUniform(dataRng);
    setFusedMode(FusedMode::Off);
    Tensor y_staged = staged.forward(x, false);
    setFusedMode(FusedMode::On);
    Tensor y = fused.forward(x, false);
    // The fused shard forward is bitwise the canonical plan pipeline
    // (batch grouping does not change any per-element operation order).
    setFusedMode(FusedMode::Off);
    Tensor y_ref = winogradForward(x, fused.winoWeights(), algo);
    EXPECT_EQ(y.maxAbsDiff(y_ref), 0.0f);
    // The staged MPT path accumulates per-group partial products in a
    // different summation order, so it was never bitwise to the
    // canonical pipeline — only roundoff apart (cf. FunctionalMptP).
    float scale = std::max(1.0f, y_ref.absMax());
    EXPECT_LT(y.maxAbsDiff(y_staged), 1e-4f * scale);
}

TEST(FusedMptLayer, GroupedTrainingIgnoresFusedRequest)
{
    KnobGuard guard;
    WinogradAlgo algo = makeWinograd(2, 3);
    // ng > 1 partial products need the plan slabs; WINOMC_FUSED=on
    // must leave the grouped path (and its training step) intact.
    Rng rngA(31), rngB(31);
    mpt::MptConvLayer staged(3, 4, 3, 2, 2, algo, rngA);
    mpt::MptConvLayer fused(3, 4, 3, 2, 2, algo, rngB);
    Rng dataRng(37);
    Tensor x(4, 3, 8, 8);
    Tensor dy(4, 4, 8, 8);
    x.fillUniform(dataRng);
    dy.fillUniform(dataRng);
    setFusedMode(FusedMode::Off);
    Tensor y_ref = staged.forward(x, true);
    Tensor dx_ref = staged.backward(dy);
    setFusedMode(FusedMode::On);
    Tensor y = fused.forward(x, true);
    Tensor dx = fused.backward(dy);
    EXPECT_EQ(y.maxAbsDiff(y_ref), 0.0f);
    EXPECT_EQ(dx.maxAbsDiff(dx_ref), 0.0f);
}

} // namespace
} // namespace winomc
