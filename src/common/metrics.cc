#include "common/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/logging.hh"
#include "common/stats.hh"

namespace winomc::metrics {

std::atomic<bool> gEnabled{false};

namespace {

std::atomic<bool> gWarnedHistShape{false};

/** Accumulation state of one metric inside one shard (or merged). */
struct Value
{
    Kind kind = Kind::Counter;
    double value = 0.0;
    std::uint64_t count = 0;
    double totalSec = 0.0;
    double minSec = 0.0;
    double maxSec = 0.0;
    std::shared_ptr<winomc::Histogram> hist; ///< Kind::Histogram only
    std::uint64_t exemplarId = 0;            ///< Kind::Histogram only
    double exemplarValue = 0.0;

    void
    takeExemplar(std::uint64_t id, double v)
    {
        // Keep the largest-valued exemplar: the outlier worth chasing.
        if (id && (!exemplarId || v > exemplarValue)) {
            exemplarId = id;
            exemplarValue = v;
        }
    }

    void
    mergeHist(const winomc::Histogram &o)
    {
        if (!hist) {
            hist = std::make_shared<winomc::Histogram>(o);
        } else if (hist->sameShape(o)) {
            hist->merge(o);
        } else if (!gWarnedHistShape.exchange(true)) {
            winomc_warn("histogram metric recorded with conflicting "
                        "bucket layouts; keeping the first layout's "
                        "buckets (count/sum still aggregate)");
        }
    }

    void
    mergeFrom(const Value &o)
    {
        kind = o.kind;
        value += o.value;
        if (o.kind == Kind::Gauge)
            value = o.value;
        if (o.kind == Kind::Timer) {
            minSec = count ? std::min(minSec, o.minSec) : o.minSec;
            maxSec = count ? std::max(maxSec, o.maxSec) : o.maxSec;
        }
        count += o.count;
        totalSec += o.totalSec;
        if (o.hist)
            mergeHist(*o.hist);
        takeExemplar(o.exemplarId, o.exemplarValue);
    }
};

using ValueMap = std::map<std::string, Value>;

/**
 * Per-thread accumulation shard. The owning thread takes the shard
 * mutex for each record; snapshot/reset take it briefly from outside.
 * The mutex is uncontended except during a snapshot, so the enabled
 * hot path stays cheap and TSan-clean.
 */
struct Shard
{
    std::mutex mu;
    ValueMap values;
};

struct Registry
{
    std::mutex mu;
    std::vector<std::shared_ptr<Shard>> shards;
    ValueMap retired; ///< gauges + shards of exited threads
    std::string path; ///< WINOMC_METRICS, if set

    static Registry &
    instance()
    {
        static Registry *r = new Registry; // never destroyed: shards
        return *r;                         // may outlive main()
    }
};

/** Registers this thread's shard on first use, merges it on exit. */
struct ShardHandle
{
    std::shared_ptr<Shard> shard = std::make_shared<Shard>();

    ShardHandle()
    {
        Registry &r = Registry::instance();
        std::lock_guard<std::mutex> lk(r.mu);
        r.shards.push_back(shard);
    }

    ~ShardHandle()
    {
        Registry &r = Registry::instance();
        std::lock_guard<std::mutex> lk(r.mu);
        {
            std::lock_guard<std::mutex> slk(shard->mu);
            for (const auto &[name, v] : shard->values)
                r.retired[name].mergeFrom(v);
            shard->values.clear();
        }
        r.shards.erase(
            std::remove(r.shards.begin(), r.shards.end(), shard),
            r.shards.end());
    }
};

Shard &
localShard()
{
    thread_local ShardHandle handle;
    return *handle.shard;
}

void
dumpAtExit()
{
    dumpIfConfigured();
}

/** Reads WINOMC_METRICS once and arms the at-exit dump. */
struct EnvInit
{
    EnvInit()
    {
        const char *p = std::getenv("WINOMC_METRICS");
        if (p && *p) {
            Registry::instance().path = p;
            gEnabled.store(true, std::memory_order_relaxed);
            std::atexit(dumpAtExit);
        }
    }
};
EnvInit envInit;

/**
 * Render a percentile for a dump: NaN (an empty histogram has no
 * percentiles) becomes "-" — quoted in JSON so the document stays
 * valid, bare in CSV. The metrics_io parsers map "-" back to NaN.
 */
std::string
fmtPercentile(double v, bool json)
{
    if (std::isnan(v))
        return json ? "\"-\"" : "-";
    std::ostringstream oss;
    oss.precision(17);
    oss << v;
    return oss.str();
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

ValueMap
mergedValues()
{
    Registry &r = Registry::instance();
    std::lock_guard<std::mutex> lk(r.mu);
    // Build fresh Values via mergeFrom (never copy the maps wholesale):
    // histogram payloads are cloned on first merge, so the snapshot
    // cannot alias — and later mutate — registry state.
    ValueMap out;
    for (const auto &[name, v] : r.retired)
        out[name].mergeFrom(v);
    for (const auto &shard : r.shards) {
        std::lock_guard<std::mutex> slk(shard->mu);
        for (const auto &[name, v] : shard->values)
            out[name].mergeFrom(v);
    }
    return out;
}

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::Counter:
        return "counter";
      case Kind::Gauge:
        return "gauge";
      case Kind::Timer:
        return "timer";
      case Kind::Histogram:
        return "histogram";
    }
    return "?";
}

/**
 * Run-scope prefix. Readers load an immutable string published with
 * release ordering; setRunScope intentionally leaks the previous
 * string so a concurrent reader can never see it die (scope changes
 * are rare run boundaries, so the leak is bounded and tiny).
 */
std::atomic<const std::string *> gScope{nullptr};

std::string
scopedKey(const char *name)
{
    const std::string *scope =
        gScope.load(std::memory_order_acquire);
    if (!scope)
        return name;
    std::string key;
    key.reserve(scope->size() + 1 + std::strlen(name));
    key += *scope;
    key += '/';
    key += name;
    return key;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              unsigned(static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** RFC 4180 quoting: fields carrying separators/quotes/newlines are
 *  wrapped in quotes with embedded quotes doubled. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void
setEnabled(bool on)
{
    gEnabled.store(on, std::memory_order_relaxed);
}

const std::string &
configuredPath()
{
    return Registry::instance().path;
}

void
setConfiguredPath(const std::string &path)
{
    Registry::instance().path = path;
}

void
counterAdd(const char *name, double v)
{
    if (!enabled())
        return;
    Shard &s = localShard();
    std::lock_guard<std::mutex> lk(s.mu);
    Value &val = s.values[scopedKey(name)];
    val.kind = Kind::Counter;
    val.value += v;
    ++val.count;
}

void
gaugeSet(const char *name, double v)
{
    if (!enabled())
        return;
    Registry &r = Registry::instance();
    std::lock_guard<std::mutex> lk(r.mu);
    Value &val = r.retired[scopedKey(name)];
    val.kind = Kind::Gauge;
    val.value = v;
    ++val.count;
}

void
timerAdd(const char *name, double seconds)
{
    if (!enabled())
        return;
    Shard &s = localShard();
    std::lock_guard<std::mutex> lk(s.mu);
    Value &val = s.values[scopedKey(name)];
    val.kind = Kind::Timer;
    val.minSec = val.count ? std::min(val.minSec, seconds) : seconds;
    val.maxSec = val.count ? std::max(val.maxSec, seconds) : seconds;
    val.totalSec += seconds;
    ++val.count;
}

void
histogramAdd(const char *name, double v, double lo, double hi,
             int buckets)
{
    histogramAddExemplar(name, v, lo, hi, buckets, 0);
}

void
histogramAddExemplar(const char *name, double v, double lo, double hi,
                     int buckets, std::uint64_t exemplarId)
{
    if (!enabled())
        return;
    Shard &s = localShard();
    std::lock_guard<std::mutex> lk(s.mu);
    Value &val = s.values[scopedKey(name)];
    val.kind = Kind::Histogram;
    if (!val.hist) {
        val.hist =
            std::make_shared<winomc::Histogram>(lo, hi, buckets);
    }
    val.hist->add(v);
    val.value += v;
    ++val.count;
    val.takeExemplar(exemplarId, v);
}

void
histogramRegister(const char *name, double lo, double hi, int buckets)
{
    if (!enabled())
        return;
    Shard &s = localShard();
    std::lock_guard<std::mutex> lk(s.mu);
    Value &val = s.values[scopedKey(name)];
    val.kind = Kind::Histogram;
    if (!val.hist)
        val.hist =
            std::make_shared<winomc::Histogram>(lo, hi, buckets);
}

void
histogramMerge(const char *name, const winomc::Histogram &h)
{
    if (!enabled() || h.count() == 0)
        return;
    Shard &s = localShard();
    std::lock_guard<std::mutex> lk(s.mu);
    Value &val = s.values[scopedKey(name)];
    val.kind = Kind::Histogram;
    val.mergeHist(h);
    val.value += h.sum();
    val.count += h.count();
}

void
setRunScope(const std::string &scope)
{
    gScope.store(scope.empty() ? nullptr : new std::string(scope),
                 std::memory_order_release);
}

std::string
runScope()
{
    const std::string *scope =
        gScope.load(std::memory_order_acquire);
    return scope ? *scope : std::string();
}

std::vector<Sample>
snapshot()
{
    std::vector<Sample> out;
    for (const auto &[name, v] : mergedValues()) {
        Sample s;
        s.name = name;
        s.kind = v.kind;
        s.value = v.value;
        s.count = v.count;
        s.totalSec = v.totalSec;
        s.minSec = v.minSec;
        s.maxSec = v.maxSec;
        if (v.hist) {
            s.p50 = v.hist->percentile(0.50);
            s.p90 = v.hist->percentile(0.90);
            s.p99 = v.hist->percentile(0.99);
            s.hist = v.hist; // merged clone owned by this snapshot
        }
        s.exemplarId = v.exemplarId;
        s.exemplarValue = v.exemplarValue;
        out.push_back(std::move(s));
    }
    return out; // std::map iteration is already name-sorted
}

std::vector<Sample>
snapshotDelta(DeltaBaseline &base)
{
    std::vector<Sample> cum = snapshot();
    std::vector<Sample> out;
    out.reserve(cum.size());
    std::map<std::string, Sample> next;
    for (Sample &s : cum) {
        Sample d = s; // keeps percentiles/exemplar/hist cumulative
        if (s.kind != Kind::Gauge) {
            auto it = base.prev.find(s.name);
            if (it != base.prev.end()) {
                d.value -= it->second.value;
                d.count -= it->second.count;
                d.totalSec -= it->second.totalSec;
            }
        }
        // The baseline only needs the differenced fields; drop the
        // histogram payload so baselines stay small.
        Sample b;
        b.name = s.name;
        b.kind = s.kind;
        b.value = s.value;
        b.count = s.count;
        b.totalSec = s.totalSec;
        next.emplace(b.name, std::move(b));
        out.push_back(std::move(d));
    }
    base.prev = std::move(next);
    return out;
}

void
reset()
{
    Registry &r = Registry::instance();
    std::lock_guard<std::mutex> lk(r.mu);
    r.retired.clear();
    for (const auto &shard : r.shards) {
        std::lock_guard<std::mutex> slk(shard->mu);
        shard->values.clear();
    }
}

std::string
toJson()
{
    std::ostringstream oss;
    oss.precision(17);
    oss << "{\n  \"metrics\": [";
    bool first = true;
    for (const Sample &s : snapshot()) {
        oss << (first ? "\n" : ",\n");
        first = false;
        oss << "    {\"name\": \"" << jsonEscape(s.name)
            << "\", \"kind\": \"" << kindName(s.kind)
            << "\", \"count\": " << s.count;
        if (s.kind == Kind::Timer) {
            oss << ", \"total_sec\": " << s.totalSec
                << ", \"min_sec\": " << s.minSec
                << ", \"max_sec\": " << s.maxSec;
        } else if (s.kind == Kind::Histogram) {
            oss << ", \"sum\": " << s.value
                << ", \"mean\": " << s.mean()
                << ", \"p50\": " << fmtPercentile(s.p50, true)
                << ", \"p90\": " << fmtPercentile(s.p90, true)
                << ", \"p99\": " << fmtPercentile(s.p99, true);
        } else {
            oss << ", \"value\": " << s.value;
        }
        oss << "}";
    }
    oss << "\n  ]\n}\n";
    return oss.str();
}

std::string
toCsv()
{
    std::ostringstream oss;
    oss.precision(17);
    oss << "name,kind,count,value,total_sec,min_sec,max_sec,"
           "p50,p90,p99\n";
    for (const Sample &s : snapshot()) {
        oss << csvField(s.name) << "," << kindName(s.kind) << ","
            << s.count << "," << s.value << "," << s.totalSec << ","
            << s.minSec << "," << s.maxSec << ","
            << fmtPercentile(s.p50, false) << ","
            << fmtPercentile(s.p90, false) << ","
            << fmtPercentile(s.p99, false) << "\n";
    }
    return oss.str();
}

void
dumpToFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        winomc_warn("cannot write metrics dump to '", path, "'");
        return;
    }
    std::string body = endsWith(path, ".csv") ? toCsv() : toJson();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
}

void
dumpIfConfigured()
{
    const std::string &path = configuredPath();
    if (path.empty())
        return;
    dumpToFile(path);
}

} // namespace winomc::metrics
