#include "common/metrics_io.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/logging.hh"

namespace winomc::metrics {

namespace {

/** Cursor over the dump body with the few JSON moves the dumper uses. */
struct Cursor
{
    const char *p;
    const char *end;

    explicit Cursor(const std::string &s)
        : p(s.data()), end(s.data() + s.size())
    {
    }

    bool done() const { return p >= end; }

    void
    skipWs()
    {
        while (!done() && std::isspace(static_cast<unsigned char>(*p)))
            ++p;
    }

    char
    peek()
    {
        skipWs();
        winomc_assert(!done(), "unexpected end of metrics dump");
        return *p;
    }

    void
    expect(char c)
    {
        winomc_assert(peek() == c, "metrics dump: expected '", c,
                      "', got '", *p, "'");
        ++p;
    }

    bool
    consume(char c)
    {
        if (!done() && peek() == c) {
            ++p;
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            winomc_assert(!done(), "unterminated string in dump");
            char c = *p++;
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            winomc_assert(!done(), "dangling escape in dump");
            char e = *p++;
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                winomc_assert(end - p >= 4, "truncated \\u escape");
                unsigned code = 0;
                for (int k = 0; k < 4; ++k) {
                    char h = *p++;
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        winomc_fatal("bad \\u escape in dump");
                }
                // The dumper only emits \u00XX control characters.
                out += char(code & 0xff);
                break;
              }
              default:
                winomc_fatal("unknown escape '\\", e, "' in dump");
            }
        }
    }

    double
    parseNumber()
    {
        skipWs();
        char *after = nullptr;
        double v = std::strtod(p, &after);
        winomc_assert(after != p, "metrics dump: expected a number");
        p = after;
        return v;
    }
};

void
applyField(Sample &s, const std::string &key, double num)
{
    if (key == "count")
        s.count = std::uint64_t(num);
    else if (key == "value" || key == "sum")
        s.value = num;
    else if (key == "total_sec")
        s.totalSec = num;
    else if (key == "min_sec")
        s.minSec = num;
    else if (key == "max_sec")
        s.maxSec = num;
    else if (key == "p50")
        s.p50 = num;
    else if (key == "p90")
        s.p90 = num;
    else if (key == "p99")
        s.p99 = num;
    // "mean" is derived; unknown numeric fields are ignored so newer
    // dumps stay readable.
}

/** The dumps render the percentiles of an empty histogram as "-"
 *  (JSON: quoted string; CSV: bare field). Map that back to NaN so a
 *  round-trip through the dump preserves "no samples"; std::atof on
 *  "-" would silently turn it into 0, a plausible-looking latency. */
void
applyTextField(Sample &s, const std::string &key, const std::string &v)
{
    if (v == "-")
        applyField(s, key, std::numeric_limits<double>::quiet_NaN());
    else
        applyField(s, key, std::atof(v.c_str()));
}

Sample
parseMetricObject(Cursor &c)
{
    Sample s;
    c.expect('{');
    if (!c.consume('}')) {
        do {
            std::string key = c.parseString();
            c.expect(':');
            if (c.peek() == '"') {
                std::string v = c.parseString();
                if (key == "name")
                    s.name = v;
                else if (key == "kind")
                    s.kind = kindFromName(v);
                else
                    applyTextField(s, key, v);
            } else {
                applyField(s, key, c.parseNumber());
            }
        } while (c.consume(','));
        c.expect('}');
    }
    return s;
}

/** Split one CSV record (quote-aware); returns fields, advances pos
 *  past the record's newline. */
std::vector<std::string>
csvRecord(const std::string &body, size_t &pos)
{
    std::vector<std::string> fields;
    std::string cur;
    bool quoted = false;
    while (pos < body.size()) {
        char ch = body[pos];
        if (quoted) {
            if (ch == '"') {
                if (pos + 1 < body.size() && body[pos + 1] == '"') {
                    cur += '"';
                    pos += 2;
                    continue;
                }
                quoted = false;
                ++pos;
                continue;
            }
            cur += ch;
            ++pos;
            continue;
        }
        if (ch == '"') {
            quoted = true;
            ++pos;
        } else if (ch == ',') {
            fields.push_back(std::move(cur));
            cur.clear();
            ++pos;
        } else if (ch == '\n') {
            ++pos;
            break;
        } else if (ch == '\r') {
            ++pos; // swallow; the \n case ends the record
        } else {
            cur += ch;
            ++pos;
        }
    }
    fields.push_back(std::move(cur));
    return fields;
}

} // namespace

Kind
kindFromName(const std::string &name)
{
    if (name == "gauge")
        return Kind::Gauge;
    if (name == "timer")
        return Kind::Timer;
    if (name == "histogram")
        return Kind::Histogram;
    return Kind::Counter;
}

std::vector<Sample>
parseJsonDump(const std::string &body)
{
    std::vector<Sample> out;
    Cursor c(body);
    c.expect('{');
    if (c.consume('}'))
        return out;
    do {
        std::string key = c.parseString();
        c.expect(':');
        winomc_assert(key == "metrics",
                      "metrics dump: unexpected top-level key '", key,
                      "'");
        c.expect('[');
        if (!c.consume(']')) {
            do {
                out.push_back(parseMetricObject(c));
            } while (c.consume(','));
            c.expect(']');
        }
    } while (c.consume(','));
    c.expect('}');
    return out;
}

std::vector<Sample>
parseCsvDump(const std::string &body)
{
    std::vector<Sample> out;
    size_t pos = 0;
    std::vector<std::string> header = csvRecord(body, pos);
    winomc_assert(!header.empty() && header.front() == "name",
                  "metrics CSV: missing header row");
    while (pos < body.size()) {
        std::vector<std::string> row = csvRecord(body, pos);
        if (row.size() <= 1 && (row.empty() || row.front().empty()))
            continue; // trailing blank line
        Sample s;
        for (size_t i = 0; i < row.size() && i < header.size(); ++i) {
            const std::string &col = header[i];
            if (col == "name")
                s.name = row[i];
            else if (col == "kind")
                s.kind = kindFromName(row[i]);
            else
                applyTextField(s, col, row[i]);
        }
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<Sample>
parseDumpFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        winomc_warn("cannot read metrics dump '", path, "'");
        return {};
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    const std::string body = oss.str();
    size_t first = body.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) {
        winomc_warn("metrics dump '", path, "' is empty");
        return {};
    }
    return body[first] == '{' ? parseJsonDump(body)
                              : parseCsvDump(body);
}

} // namespace winomc::metrics
