/**
 * @file
 * Readers for the metric dump formats written by common/metrics.hh.
 *
 * The JSON/CSV dumpers escape names (quotes, commas, newlines, control
 * characters); these parsers reverse that, so a dump -> parse round
 * trip preserves every Sample field the dump carries. They accept
 * exactly the subset of JSON/CSV the dumpers emit (flat metric records
 * with string and number fields) — enough for tools/winomc-report to
 * consume any WINOMC_METRICS artifact without external dependencies.
 */

#ifndef WINOMC_COMMON_METRICS_IO_HH
#define WINOMC_COMMON_METRICS_IO_HH

#include <string>
#include <vector>

#include "common/metrics.hh"

namespace winomc::metrics {

/** Parse a JSON dump (the toJson() format). Throws via winomc_fatal on
 *  malformed input. */
std::vector<Sample> parseJsonDump(const std::string &body);

/** Parse a CSV dump (the toCsv() format, RFC 4180 quoting). */
std::vector<Sample> parseCsvDump(const std::string &body);

/** Read `path` and parse by content ('{' first => JSON, else CSV).
 *  Returns an empty vector (with a warning) when unreadable. */
std::vector<Sample> parseDumpFile(const std::string &path);

/** "counter" / "gauge" / "timer" / "histogram" -> Kind. */
Kind kindFromName(const std::string &name);

} // namespace winomc::metrics

#endif // WINOMC_COMMON_METRICS_IO_HH
