/**
 * @file
 * Tests for the Table I / Table II workload definitions.
 */

#include <gtest/gtest.h>

#include "workloads/layers.hh"
#include "workloads/networks.hh"

namespace winomc::workloads {
namespace {

TEST(TableTwo, FiveLayersWithPaperTrends)
{
    auto layers = tableTwoLayers();
    ASSERT_EQ(layers.size(), 5u);
    // Early: largest feature map, smallest weights; late: the reverse.
    for (size_t k = 1; k < layers.size(); ++k) {
        EXPECT_LE(layers[k].h, layers[k - 1].h);
        EXPECT_GE(layers[k].weightElems(), layers[k - 1].weightElems());
    }
    for (const auto &l : layers) {
        EXPECT_EQ(l.batch, 256);
        EXPECT_EQ(l.r, 3);
        EXPECT_EQ(l.h, l.w);
    }
}

TEST(TableTwo, FiveByFiveVariant)
{
    auto layers = tableTwoLayers5x5();
    ASSERT_EQ(layers.size(), 5u);
    for (const auto &l : layers)
        EXPECT_EQ(l.r, 5);
    // 25/9 more weight elements than the 3x3 versions.
    auto base = tableTwoLayers();
    for (size_t k = 0; k < layers.size(); ++k)
        EXPECT_EQ(layers[k].weightElems(), base[k].weightElems() / 9 * 25);
}

TEST(ConvSpecHelpers, ElementCounts)
{
    ConvSpec s{"x", 2, 3, 4, 8, 8, 3};
    EXPECT_EQ(s.weightElems(), uint64_t(3) * 4 * 9);
    EXPECT_EQ(s.inputElems(), uint64_t(2) * 3 * 64);
    EXPECT_EQ(s.outputElems(), uint64_t(2) * 4 * 64);
}

TEST(TableOne, WrnParamCountMatchesPaper)
{
    auto net = wideResnet40_10();
    // Table I: 55.6M (55.5M with 3x3-only counting).
    double m = double(net.paramCount()) / 1e6;
    EXPECT_GT(m, 50.0);
    EXPECT_LT(m, 60.0);
    EXPECT_EQ(net.layers.size(), 36u); // 3 groups x 12 convs
}

TEST(TableOne, Resnet34ShapeAndParams)
{
    auto net = resnet34();
    double m = double(net.paramCount()) / 1e6;
    EXPECT_GT(m, 15.0);
    EXPECT_LT(m, 25.0);
    EXPECT_EQ(net.layers.size(), 32u);
    EXPECT_EQ(net.layers.front().h, 56);
    EXPECT_EQ(net.layers.back().h, 7);
}

TEST(TableOne, FractalNetLargestModel)
{
    auto nets = tableOneNetworks();
    ASSERT_EQ(nets.size(), 3u);
    auto &fractal = nets[2];
    EXPECT_EQ(fractal.name, "FractalNet");
    EXPECT_EQ(fractal.layers.size(), 60u); // 4 blocks x 15 convs
    // Table I: 164M; our 4-column construction lands close (see
    // DESIGN.md substitutions).
    double m = double(fractal.paramCount()) / 1e6;
    EXPECT_GT(m, 120.0);
    EXPECT_LT(m, 220.0);
    // Largest of the three.
    EXPECT_GT(fractal.paramCount(), nets[0].paramCount());
    EXPECT_GT(fractal.paramCount(), nets[1].paramCount());
}

TEST(ModelZoo, Vgg16Shape)
{
    auto net = vgg16();
    EXPECT_EQ(net.layers.size(), 13u);
    double m = double(net.paramCount()) / 1e6;
    EXPECT_GT(m, 12.0);
    EXPECT_LT(m, 17.0);
    EXPECT_EQ(net.layers.front().inCh, 3);
    EXPECT_EQ(net.layers.back().h, 14);
    for (const auto &l : net.layers)
        EXPECT_EQ(l.r, 3);
}

TEST(TableOne, BatchPropagates)
{
    auto net = resnet34(64);
    for (const auto &l : net.layers)
        EXPECT_EQ(l.batch, 64);
}

} // namespace
} // namespace winomc::workloads
