/**
 * @file
 * Per-layer convolution algorithm auto-tuner.
 *
 * Given a generalized ConvSpec, pick how to execute it: direct
 * convolution, a plain F(m,3) Winograd pipeline (stride-1 "same" 3x3
 * layers), or the DWM decomposition into F(m,3) units (larger kernels,
 * strides, rectangular filters). Candidates are filtered by the
 * numeric-safety bounds the Tong & Huang survey (arXiv 2111.00977)
 * catalogs per tile size, ranked by an analytic host-roofline cost
 * model, and optionally refined by short measurement.
 *
 * Knobs (established env.hh parsing discipline — trimmed,
 * case-insensitive, garbage warns and falls back to the default):
 *
 *   WINOMC_TUNE=off|analytic|measure   (default: analytic)
 *     off      — no cost model, no cache: a static heuristic (F(4,3)
 *                on same 3x3 layers, decomposed-F(4,3) where the
 *                decomposition applies, direct otherwise);
 *     analytic — rank the safety-filtered candidates by the analytic
 *                model (no execution at selection time);
 *     measure  — analytic ranking, then the top candidates are timed
 *                on a batch-clamped copy of the layer and the fastest
 *                measured one wins.
 *
 *   WINOMC_TUNE_CACHE=<path>   (default: unset — no persistence)
 *     On-disk tuning cache keyed by ConvSpec::key() (the same
 *     descriptor identity serve::PlanCache leases resolve through).
 *     Loaded lazily on first consult; every new winner rewrites the
 *     file, so a second run re-selects nothing beyond the file read.
 *
 * Selections are memoized in-process per key, and published under
 * WINOMC_METRICS as tuner.* counters plus per-layer
 * tuner.layer.<key>.* gauges (rendered by winomc-report's "Algorithm
 * selection" table).
 *
 * Thread-safety: all entry points are serialized on one internal
 * mutex; selection is cheap after the first call per shape.
 */

#ifndef WINOMC_WINOGRAD_TUNER_HH
#define WINOMC_WINOGRAD_TUNER_HH

#include <cstdint>

#include "winograd/conv_spec.hh"

namespace winomc::tune {

enum class TuneMode : int { Off = 0, Analytic = 1, Measure = 2 };

/** Parse a WINOMC_TUNE string; unknown input warns and yields
 *  Analytic. Never throws, never exits (same discipline as
 *  parseFusedMode / parseIsa). */
TuneMode parseTuneMode(const char *str);

/** The process-wide mode: the last setTuneMode() value, or WINOMC_TUNE
 *  parsed once on first use. */
TuneMode requestedTuneMode();

/** Programmatic override (tests); does not re-read the environment. */
void setTuneMode(TuneMode m);

/** Human-readable name ("off", "analytic", "measure"). */
const char *tuneModeName(TuneMode m);

/** How a layer executes its convolution. */
enum class AlgoKind : int { Direct = 0, Winograd = 1, Decomposed = 2 };

const char *algoKindName(AlgoKind k);

/** One tuning decision. */
struct AlgoChoice
{
    AlgoKind kind = AlgoKind::Direct;
    int m = 0;               ///< F(m,3) tile edge (Winograd/Decomposed)
    double predictedMs = 0;  ///< analytic model estimate (full batch)
    double measuredMs = 0;   ///< 0 unless Measure mode timed it
    bool fromCache = false;  ///< resolved from the on-disk cache
};

/**
 * Survey fp32 error budget: the max relative error of F(m,3) vs direct
 * (Tong & Huang, arXiv 2111.00977, Table "numerical accuracy" —
 * F(2,3) ~2e-7, F(4,3) ~1e-6, F(6,3) ~9e-5, F(8,3) ~1e-2). Returns
 * +inf for tile sizes outside the candidate family.
 */
double winogradMaxRelError(int m, int r);

/** Does F(m,r) stay inside the fp32 safety budget (1e-4)? Admits
 *  m in {2, 4, 6} for r = 3; F(8,3) and beyond fail. */
bool numericallySafe(int m, int r);

/**
 * Analytic host-roofline forward-time estimate (ms) of executing
 * `spec` with `choice` (predictedMs/measuredMs fields ignored):
 * stage MAC counts from winograd/cost.hh divided by calibrated
 * per-stage rates (transforms get an alpha-dependent efficiency
 * penalty — large-tile transform matrices have dense non-trivial
 * coefficients), plus a DRAM-stream term. The process ExecPolicy
 * folds in: 16-bit activation storage shrinks the X-slab stream term,
 * and a sparse policy scales the element-wise FLOP term by
 * (1 - sparsityHint()). At the fp32-dense default both adjustments
 * vanish and predictions match the pre-policy model exactly.
 */
double predictMs(const ConvSpec &spec, const AlgoChoice &choice);

/**
 * Expected combined skip ratio of the sparse element-wise stage
 * (weight sparsity plus activation dead panels, in [0, 1)) the cost
 * model charges under a sparse policy. Default 0 — callers that prune
 * (or measure quant.ew.rows_skipped) feed the observed ratio back.
 */
double sparsityHint();
void setSparsityHint(double ratio);

/**
 * Pick the execution algorithm for one layer shape. Consults, in
 * order: the in-process memo, the on-disk cache (when configured),
 * and the mode's selection procedure. Publishes tuner.* metrics.
 */
AlgoChoice selectAlgorithm(const ConvSpec &spec);

/** Override the cache file path (tests); nullptr restores the
 *  WINOMC_TUNE_CACHE environment lookup. Drops the loaded disk map. */
void setTuneCachePath(const char *path);

/** Drop the in-process memo and the loaded disk map (the file itself
 *  is kept), so the next select exercises the full consult path. */
void resetTunerForTest();

/** Monotone in-process tuner statistics. */
struct TunerStats
{
    uint64_t selects = 0;      ///< selectAlgorithm calls
    uint64_t memoHits = 0;     ///< answered from the in-process memo
    uint64_t cacheHits = 0;    ///< answered from the on-disk cache
    uint64_t cacheMisses = 0;  ///< disk consulted, key absent
    uint64_t measureRuns = 0;  ///< candidate timings executed
};

TunerStats tunerStats();

} // namespace winomc::tune

#endif // WINOMC_WINOGRAD_TUNER_HH
