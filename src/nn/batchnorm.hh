/**
 * @file
 * 2D batch normalization. The Table I networks (Wide ResNet, ResNet-34,
 * FractalNet) all interleave their convolutions with batch norm; the
 * trainable substrate supports it so deeper reproductions of those
 * networks converge.
 */

#ifndef WINOMC_NN_BATCHNORM_HH
#define WINOMC_NN_BATCHNORM_HH

#include "nn/module.hh"

namespace winomc::nn {

/** Per-channel batch normalization with affine scale/shift. */
class BatchNorm2d : public Module
{
  public:
    explicit BatchNorm2d(int channels, float eps = 1e-5f,
                         float momentum = 0.1f);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &dy) override;
    void step(float lr) override;
    size_t paramCount() const override { return 2 * size_t(channels); }
    std::string name() const override { return "batchnorm2d"; }

    float runningMean(int c) const { return running_mean[size_t(c)]; }
    float runningVar(int c) const { return running_var[size_t(c)]; }
    float gamma(int c) const { return gamma_[size_t(c)]; }
    float beta(int c) const { return beta_[size_t(c)]; }

  private:
    int channels;
    float eps;
    float statMomentum;

    std::vector<float> gamma_, beta_;
    std::vector<float> dgamma, dbeta;
    std::vector<float> running_mean, running_var;

    // Cached training-forward state for backward.
    Tensor xhat;                   ///< normalized activations
    std::vector<float> batch_mean, batch_inv_std;
    bool haveGrad = false;
};

} // namespace winomc::nn

#endif // WINOMC_NN_BATCHNORM_HH
