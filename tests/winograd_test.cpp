/**
 * @file
 * Tests for the Winograd transform generator and convolution kernels:
 * exact-rational Toom-Cook generation, equivalence with direct
 * convolution, adjoint/gradient correctness, and the cost model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "winograd/algo.hh"
#include "winograd/conv.hh"
#include "winograd/conv1d.hh"
#include "winograd/cost.hh"
#include "winograd/rational.hh"
#include "winograd/toom_cook.hh"

namespace winomc {

// This suite validates the fp32 pipeline against fp32 oracles (direct
// convolution, numeric gradients, bitwise stage parity), so the
// activation storage precision is pinned to fp32 regardless of
// WINOMC_PREC. WINOMC_SPARSE stays env-driven on purpose: sparse
// execution is bitwise identical and must keep passing here.
[[maybe_unused]] const bool kPinFp32 = [] {
    setPrec(Prec::F32);
    return true;
}();

namespace {

// ---------------------------------------------------------------- Rational

TEST(Rational, Arithmetic)
{
    Rational a(1, 2), b(1, 3);
    EXPECT_EQ((a + b), Rational(5, 6));
    EXPECT_EQ((a - b), Rational(1, 6));
    EXPECT_EQ((a * b), Rational(1, 6));
    EXPECT_EQ((a / b), Rational(3, 2));
    EXPECT_EQ(-a, Rational(-1, 2));
}

TEST(Rational, NormalizesSignAndGcd)
{
    EXPECT_EQ(Rational(2, -4), Rational(-1, 2));
    EXPECT_EQ(Rational(6, 3), Rational(2));
    EXPECT_EQ(Rational(0, 7), Rational(0));
    EXPECT_DOUBLE_EQ(Rational(-3, 4).toDouble(), -0.75);
}

TEST(Rational, LargeIntermediatesStayExact)
{
    // Lagrange denominators with points up to +-4.
    Rational d(1);
    for (int k = -4; k <= 4; ++k)
        if (k != 3)
            d *= Rational(3 - k);
    Rational r = Rational(1) / d;
    EXPECT_EQ((r * d), Rational(1));
}

// --------------------------------------------------------------- ToomCook

TEST(ToomCook, DefaultPointSequence)
{
    auto pts = defaultPoints(5);
    ASSERT_EQ(pts.size(), 5u);
    EXPECT_EQ(pts[0], Rational(0));
    EXPECT_EQ(pts[1], Rational(1));
    EXPECT_EQ(pts[2], Rational(-1));
    EXPECT_EQ(pts[3], Rational(2));
    EXPECT_EQ(pts[4], Rational(-2));
}

TEST(ToomCook, F23MatchesHandDerivedMatrices)
{
    // Hand-verified in the derivation notes: points {0, 1, -1} + inf.
    auto tc = generateToomCook(2, 3);
    Matrix BT = toMatrix(tc.BT);
    Matrix expect_bt{{1, 0, -1, 0},
                     {0, 0.5, 0.5, 0},
                     {0, -0.5, 0.5, 0},
                     {0, -1, 0, 1}};
    EXPECT_LT(BT.maxAbsDiff(expect_bt), 1e-12);

    Matrix G = toMatrix(tc.G);
    Matrix expect_g{{1, 0, 0}, {1, 1, 1}, {1, -1, 1}, {0, 0, 1}};
    EXPECT_LT(G.maxAbsDiff(expect_g), 1e-12);

    Matrix AT = toMatrix(tc.AT);
    Matrix expect_at{{1, 1, 1, 0}, {0, 1, -1, 1}};
    EXPECT_LT(AT.maxAbsDiff(expect_at), 1e-12);
}

/// 1D filtering check straight from the bilinear form:
/// y = A^T [(G w) (.) (B^T x)] must equal valid correlation.
void
check1dFiltering(int m, int r, uint64_t seed)
{
    auto tc = generateToomCook(m, r);
    Matrix BT = toMatrix(tc.BT);
    Matrix G = toMatrix(tc.G);
    Matrix AT = toMatrix(tc.AT);
    const int alpha = tc.alpha;

    Rng rng(seed);
    std::vector<double> x(size_t(alpha), 0.0), w(size_t(r), 0.0);
    for (auto &v : x)
        v = rng.uniform(-2, 2);
    for (auto &v : w)
        v = rng.uniform(-2, 2);

    std::vector<double> gx(size_t(alpha), 0), gw(size_t(alpha), 0);
    for (int i = 0; i < alpha; ++i)
        for (int j = 0; j < alpha; ++j)
            gx[size_t(i)] += BT.at(i, j) * x[size_t(j)];
    for (int i = 0; i < alpha; ++i)
        for (int j = 0; j < r; ++j)
            gw[size_t(i)] += G.at(i, j) * w[size_t(j)];

    for (int o = 0; o < m; ++o) {
        double y = 0;
        for (int i = 0; i < alpha; ++i)
            y += AT.at(o, i) * gx[size_t(i)] * gw[size_t(i)];
        double ref = 0;
        for (int k = 0; k < r; ++k)
            ref += w[size_t(k)] * x[size_t(o + k)];
        EXPECT_NEAR(y, ref, 1e-9)
            << "F(" << m << "," << r << ") output " << o;
    }
}

struct MR
{
    int m, r;
};

class ToomCookFilterP : public ::testing::TestWithParam<MR> {};

TEST_P(ToomCookFilterP, ComputesValidCorrelation)
{
    for (uint64_t seed = 1; seed <= 20; ++seed)
        check1dFiltering(GetParam().m, GetParam().r, seed);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ToomCookFilterP,
    ::testing::Values(MR{2, 3}, MR{4, 3}, MR{2, 5}, MR{3, 3}, MR{6, 3},
                      MR{4, 5}, MR{1, 3}, MR{2, 2}, MR{5, 5}),
    [](const ::testing::TestParamInfo<MR> &info) {
        return "F" + std::to_string(info.param.m) + "_" +
               std::to_string(info.param.r);
    });

// ------------------------------------------------------------------- Algo

TEST(Algo, PresetDimensions)
{
    const auto &a = algoF2x2_3x3();
    EXPECT_EQ(a.m, 2);
    EXPECT_EQ(a.r, 3);
    EXPECT_EQ(a.alpha, 4);
    EXPECT_EQ(a.BT.rows(), 4);
    EXPECT_EQ(a.G.rows(), 4);
    EXPECT_EQ(a.G.cols(), 3);
    EXPECT_EQ(a.AT.rows(), 2);

    const auto &b = algoF4x4_3x3();
    EXPECT_EQ(b.alpha, 6);
    const auto &c = algoF2x2_5x5();
    EXPECT_EQ(c.alpha, 6);
    EXPECT_EQ(c.r, 5);
}

// ----------------------------------------------------- Convolution kernels

struct ConvCase
{
    int batch, in_ch, out_ch, h, w, m, r;
};

class WinogradConvP : public ::testing::TestWithParam<ConvCase> {};

TEST_P(WinogradConvP, ForwardMatchesDirect)
{
    const auto p = GetParam();
    WinogradAlgo algo = makeWinograd(p.m, p.r);
    Rng rng(42);
    Tensor x(p.batch, p.in_ch, p.h, p.w);
    Tensor w(p.out_ch, p.in_ch, p.r, p.r);
    x.fillUniform(rng);
    w.fillUniform(rng);

    Tensor ref = directConvForward(x, w);
    WinoWeights W = transformWeights(w, algo);
    Tensor got = winogradForward(x, W, algo);

    ASSERT_TRUE(got.sameShape(ref));
    EXPECT_LT(got.maxAbsDiff(ref), 1e-3f * std::max(1.0f, ref.absMax()));
}

TEST_P(WinogradConvP, BackwardDataMatchesDirect)
{
    const auto p = GetParam();
    WinogradAlgo algo = makeWinograd(p.m, p.r);
    Rng rng(43);
    Tensor dy(p.batch, p.out_ch, p.h, p.w);
    Tensor w(p.out_ch, p.in_ch, p.r, p.r);
    dy.fillUniform(rng);
    w.fillUniform(rng);

    Tensor ref = directConvBackwardData(dy, w);
    WinoWeights W = transformWeights(w, algo);
    Tensor got = winogradBackwardData(dy, W, algo, p.h, p.w);

    ASSERT_TRUE(got.sameShape(ref));
    EXPECT_LT(got.maxAbsDiff(ref), 1e-3f * std::max(1.0f, ref.absMax()));
}

TEST_P(WinogradConvP, SpatialWeightGradientMatchesDirect)
{
    const auto p = GetParam();
    WinogradAlgo algo = makeWinograd(p.m, p.r);
    Rng rng(44);
    Tensor x(p.batch, p.in_ch, p.h, p.w);
    Tensor dy(p.batch, p.out_ch, p.h, p.w);
    x.fillUniform(rng);
    dy.fillUniform(rng);

    Tensor ref = directConvGradWeights(x, dy, p.r);
    // Winograd-domain gradient mapped back through the weight-transform
    // adjoint must equal the spatial gradient (chain rule through
    // W = G w G^T).
    WinoWeights dW = winogradGradWeights(x, dy, algo);
    Tensor got = transformWeightsAdjoint(dW, algo);

    ASSERT_TRUE(got.sameShape(ref));
    float scale = std::max(1.0f, ref.absMax());
    EXPECT_LT(got.maxAbsDiff(ref), 2e-3f * scale);
}

INSTANTIATE_TEST_SUITE_P(Shapes, WinogradConvP,
    ::testing::Values(
        ConvCase{1, 1, 1, 4, 4, 2, 3},    // one tile, F(2x2,3x3)
        ConvCase{1, 1, 1, 5, 7, 2, 3},    // boundary crop
        ConvCase{2, 3, 4, 8, 8, 2, 3},
        ConvCase{2, 3, 4, 9, 10, 2, 3},   // ragged tiles
        ConvCase{1, 2, 2, 12, 12, 4, 3},  // F(4x4,3x3)
        ConvCase{2, 3, 2, 13, 9, 4, 3},
        ConvCase{1, 2, 3, 10, 10, 2, 5},  // F(2x2,5x5)
        ConvCase{2, 2, 2, 7, 11, 2, 5},
        ConvCase{1, 1, 1, 6, 6, 3, 3},    // F(3x3,3x3)
        ConvCase{1, 4, 1, 6, 6, 1, 3}),   // m=1 degenerate
    [](const ::testing::TestParamInfo<ConvCase> &info) {
        const auto &p = info.param;
        return "b" + std::to_string(p.batch) + "i" +
               std::to_string(p.in_ch) + "j" + std::to_string(p.out_ch) +
               "h" + std::to_string(p.h) + "w" + std::to_string(p.w) +
               "F" + std::to_string(p.m) + "r" + std::to_string(p.r);
    });

/// Numerical gradient check of the Winograd *layer*: parameters are the
/// Winograd-domain weights W; loss L = 0.5 * ||y||^2.
TEST(WinogradLayerGrad, MatchesNumericalGradient)
{
    WinogradAlgo algo = makeWinograd(2, 3);
    Rng rng(7);
    const int B = 1, I = 2, J = 2, H = 4, Wd = 4;
    Tensor x(B, I, H, Wd);
    x.fillUniform(rng);
    Tensor w(J, I, 3, 3);
    w.fillUniform(rng);
    WinoWeights W = transformWeights(w, algo);

    // Analytic: dL/dW = gradWeights(x, dy) with dy = y.
    Tensor y = winogradForward(x, W, algo);
    WinoTiles X = transformInput(x, algo);
    WinoTiles dY = inverseTransformAdjoint(y, algo);
    WinoWeights dW = elementwiseGradWeights(dY, X);

    auto loss = [&](const WinoWeights &Wt) {
        Tensor yy = winogradForward(x, Wt, algo);
        double l = 0;
        for (int b = 0; b < B; ++b)
            for (int j = 0; j < J; ++j)
                for (int r = 0; r < H; ++r)
                    for (int c = 0; c < Wd; ++c)
                        l += 0.5 * double(yy.at(b, j, r, c)) *
                             yy.at(b, j, r, c);
        return l;
    };

    const float eps = 1e-3f;
    for (int uv = 0; uv < algo.tileElems(); uv += 3) {
        for (int j = 0; j < J; ++j) {
            for (int i = 0; i < I; ++i) {
                WinoWeights Wp = W, Wm = W;
                Wp.at(uv, j, i) += eps;
                Wm.at(uv, j, i) -= eps;
                double num = (loss(Wp) - loss(Wm)) / (2.0 * eps);
                EXPECT_NEAR(num, double(dW.at(uv, j, i)),
                            2e-2 * std::max(1.0, std::abs(num)))
                    << "uv=" << uv << " j=" << j << " i=" << i;
            }
        }
    }
}

/// Gradient check w.r.t. the *input* through the full pipeline.
TEST(WinogradInputGrad, MatchesNumericalGradient)
{
    WinogradAlgo algo = makeWinograd(2, 3);
    Rng rng(8);
    const int B = 1, I = 2, J = 2, H = 6, Wd = 5;
    Tensor x(B, I, H, Wd);
    x.fillUniform(rng);
    Tensor w(J, I, 3, 3);
    w.fillUniform(rng);
    WinoWeights W = transformWeights(w, algo);

    Tensor y = winogradForward(x, W, algo);
    Tensor dx = winogradBackwardData(y, W, algo, H, Wd);

    auto loss = [&](const Tensor &xt) {
        Tensor yy = winogradForward(xt, W, algo);
        double l = 0;
        for (int b = 0; b < B; ++b)
            for (int j = 0; j < J; ++j)
                for (int r = 0; r < H; ++r)
                    for (int c = 0; c < Wd; ++c)
                        l += 0.5 * double(yy.at(b, j, r, c)) *
                             yy.at(b, j, r, c);
        return l;
    };

    const float eps = 1e-3f;
    for (int i = 0; i < I; ++i) {
        for (int r = 0; r < H; r += 2) {
            for (int c = 0; c < Wd; c += 2) {
                Tensor xp = x, xm = x;
                xp.at(0, i, r, c) += eps;
                xm.at(0, i, r, c) -= eps;
                double num = (loss(xp) - loss(xm)) / (2.0 * eps);
                EXPECT_NEAR(num, double(dx.at(0, i, r, c)),
                            2e-2 * std::max(1.0, std::abs(num)));
            }
        }
    }
}

/// Transform adjoint property: <T(x), y> == <x, T*(y)> for random x, y.
TEST(Adjoints, InputTransformAdjointProperty)
{
    WinogradAlgo algo = makeWinograd(2, 3);
    Rng rng(9);
    const int B = 2, C = 2, H = 6, Wd = 6;
    Tensor x(B, C, H, Wd);
    x.fillUniform(rng);
    WinoTiles X = transformInput(x, algo);

    WinoTiles Yr(X.alphaEdge(), C, B, X.tiles());
    for (int uv = 0; uv < X.uvCount(); ++uv)
        for (int c = 0; c < C; ++c)
            for (int b = 0; b < B; ++b)
                for (int t = 0; t < X.tiles(); ++t)
                    Yr.at(uv, c, b, t) = float(rng.uniform(-1, 1));

    double lhs = 0;
    for (int uv = 0; uv < X.uvCount(); ++uv)
        for (int c = 0; c < C; ++c)
            for (int b = 0; b < B; ++b)
                for (int t = 0; t < X.tiles(); ++t)
                    lhs += double(X.at(uv, c, b, t)) * Yr.at(uv, c, b, t);

    Tensor xa = transformInputAdjoint(Yr, algo, H, Wd);
    double rhs = 0;
    for (int b = 0; b < B; ++b)
        for (int c = 0; c < C; ++c)
            for (int r = 0; r < H; ++r)
                for (int cc = 0; cc < Wd; ++cc)
                    rhs += double(x.at(b, c, r, cc)) * xa.at(b, c, r, cc);

    EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::abs(lhs)));
}

/// The modified join of Section VII-A: joining (mean) in the Winograd
/// domain equals joining after the inverse transform, because the
/// inverse transform is linear - the identity that lets FractalNet's
/// join skip one tile gather per branch.
TEST(WinogradDomainJoin, CommutesWithInverseTransform)
{
    WinogradAlgo algo = makeWinograd(2, 3);
    Rng rng(99);
    const int B = 2, C = 3, H = 9, Wd = 7;
    Tensor xa(B, C, H, Wd), xb(B, C, H, Wd), xc(B, C, H, Wd);
    xa.fillUniform(rng);
    xb.fillUniform(rng);
    xc.fillUniform(rng);

    WinoTiles A = transformInput(xa, algo);
    WinoTiles Bt = transformInput(xb, algo);
    WinoTiles Ct = transformInput(xc, algo);

    // Winograd-domain join, then one inverse transform.
    WinoTiles joined = tileMean({&A, &Bt, &Ct});
    Tensor wino_path = inverseTransform(joined, algo, H, Wd);

    // Spatial join of three separately inverse-transformed branches.
    Tensor sa = inverseTransform(A, algo, H, Wd);
    Tensor sb = inverseTransform(Bt, algo, H, Wd);
    Tensor sc = inverseTransform(Ct, algo, H, Wd);
    sa += sb;
    sa += sc;
    sa *= 1.0f / 3.0f;

    EXPECT_LT(wino_path.maxAbsDiff(sa), 1e-5f);
}

// ------------------------------------------------------- 1D convolution

struct Conv1dCase
{
    int batch, in_ch, out_ch, h, w, m, r;
};

class Winograd1dP : public ::testing::TestWithParam<Conv1dCase> {};

TEST_P(Winograd1dP, MatchesDirect1d)
{
    const auto p = GetParam();
    WinogradAlgo algo = makeWinograd(p.m, p.r);
    Rng rng(77);
    Tensor x(p.batch, p.in_ch, p.h, p.w);
    Tensor w(p.out_ch, p.in_ch, p.r, 1);
    x.fillUniform(rng);
    w.fillUniform(rng);

    Tensor ref = directConv1dForward(x, w);
    Tensor got = winograd1dForward(x, w, algo);
    ASSERT_TRUE(got.sameShape(ref));
    EXPECT_LT(got.maxAbsDiff(ref), 1e-4f * std::max(1.0f, ref.absMax()));
}

INSTANTIATE_TEST_SUITE_P(Shapes, Winograd1dP,
    ::testing::Values(
        Conv1dCase{1, 1, 1, 4, 3, 2, 3},   // F(2,3): the 4x1 tile of
                                           // Section VII-B
        Conv1dCase{2, 3, 4, 9, 5, 2, 3},   // ragged rows
        Conv1dCase{1, 2, 2, 12, 4, 4, 3},  // F(4,3) 1D
        Conv1dCase{2, 2, 3, 11, 3, 2, 5}), // F(2,5) 1D
    [](const ::testing::TestParamInfo<Conv1dCase> &info) {
        const auto &p = info.param;
        return "b" + std::to_string(p.batch) + "h" + std::to_string(p.h) +
               "F" + std::to_string(p.m) + "r" + std::to_string(p.r);
    });

TEST(Winograd1d, SingleTapIdentity)
{
    // r=1 degenerates: F(m,1) convolution is a per-channel scale.
    WinogradAlgo algo = makeWinograd(2, 1);
    Rng rng(5);
    Tensor x(1, 1, 6, 3);
    x.fillUniform(rng);
    Tensor w(1, 1, 1, 1);
    w.at(0, 0, 0, 0) = 2.5f;
    Tensor y = winograd1dForward(x, w, algo);
    for (int i = 0; i < 6; ++i)
        for (int j = 0; j < 3; ++j)
            EXPECT_NEAR(y.at(0, 0, i, j), 2.5f * x.at(0, 0, i, j), 1e-5f);
}

// ------------------------------------------------------------- Cost model

TEST(CostModel, WinogradReducesComputeButInflatesAccesses)
{
    // A mid-network layer; the Figure 1 claim.
    ConvSpec spec{"mid", 256, 128, 128, 28, 28, 3};
    ConvCost d = directConvIterCost(spec);
    ConvCost w = winogradConvIterCost(spec, algoF4x4_3x3());

    double compute_ratio = double(d.mults) / double(w.mults);
    double access_ratio = double(w.dramBytes()) / double(d.dramBytes());
    EXPECT_GT(compute_ratio, 1.8);
    EXPECT_LT(compute_ratio, 5.0);
    EXPECT_GT(access_ratio, 2.0);
    EXPECT_LT(access_ratio, 8.0);
}

TEST(CostModel, PhasesSumToIteration)
{
    ConvSpec spec{"x", 32, 16, 32, 14, 14, 3};
    ConvCost sum = directConvCost(spec, Phase::Fprop);
    sum += directConvCost(spec, Phase::Bprop);
    sum += directConvCost(spec, Phase::UpdateGrad);
    ConvCost it = directConvIterCost(spec);
    EXPECT_EQ(sum.mults, it.mults);
    EXPECT_EQ(sum.dramBytes(), it.dramBytes());
}

TEST(CostModel, DirectMacCountExact)
{
    ConvSpec spec{"x", 2, 3, 4, 8, 8, 3};
    ConvCost c = directConvCost(spec, Phase::Fprop);
    EXPECT_EQ(c.mults, uint64_t(2) * 3 * 4 * 8 * 8 * 9);
}

} // namespace
} // namespace winomc
