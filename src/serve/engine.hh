/**
 * @file
 * Dynamic-batching inference engine over an nn::Module.
 *
 * Clients submit single images and get futures; one batcher thread
 * coalesces the queue into shape-pure batches (size threshold or
 * deadline, whichever first), dispatches them through one
 * Module::forward — which parallelizes internally across the
 * common/parallel.hh pool — and demuxes the output rows back to the
 * per-request futures. Batching changes throughput, never results: a
 * demuxed row is bitwise identical to running the request alone,
 * because every Winograd stage treats images and tiles independently.
 *
 * Knobs (parsed with the common/env.hh discipline — garbage warns and
 * falls back):
 *
 *  - WINOMC_SERVE_MAX_BATCH     batch size threshold   (default 8)
 *  - WINOMC_SERVE_MAX_DELAY_US  batching deadline, us  (default 1000)
 *
 * The engine owns a serve::PlanCache and re-points every
 * nn::ConvLayer in the model at it, so shape churn leases plans from
 * one byte-budgeted pool; several engines can share one cache
 * (EngineConfig::sharedCache) to serve model replicas.
 *
 * Metrics: serve.queue_depth (gauge), serve.batch_size and
 * serve.latency_us (histograms, registered eagerly so a dump before
 * the first request still lists them), serve.requests / serve.batches
 * (counters).
 *
 * Telemetry plane: submit() mints a per-request trace id that rides
 * the Request through the queue; dispatch emits a serve.batch span
 * with assemble/forward/demux children and one serve.request span per
 * request carrying {"trace_id": id}, attaches the id as the latency
 * histogram's exemplar (so a p99 outlier in a scrape resolves to its
 * span), and feeds every latency into the SloMonitor (serve/slo.hh).
 * The constructor starts the WINOMC_STATS_PORT exposition listener
 * when that knob is set (common/exposition.hh).
 */

#ifndef WINOMC_SERVE_ENGINE_HH
#define WINOMC_SERVE_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>

#include "nn/module.hh"
#include "serve/batcher.hh"
#include "serve/plan_cache.hh"
#include "serve/slo.hh"

namespace winomc::serve {

struct EngineConfig
{
    /** Batch size threshold; 0 reads WINOMC_SERVE_MAX_BATCH (def. 8). */
    int maxBatch = 0;
    /** Batching deadline in us; < 0 reads WINOMC_SERVE_MAX_DELAY_US
     *  (default 1000). 0 disables coalescing waits: every batch is
     *  whatever already queued. */
    long long maxDelayUs = -1;
    /** Request-queue bound (backpressure); 0 means 4 * maxBatch. */
    std::size_t queueCapacity = 0;
    /** Share another engine's plan cache instead of owning one (must
     *  outlive this engine). */
    PlanCache *sharedCache = nullptr;
};

class Engine
{
  public:
    /** @param model served model; the engine re-points its ConvLayers'
     *  plan sources at the plan cache and owns all forward() calls
     *  until stop(). Must outlive the engine. */
    explicit Engine(nn::Module &model, const EngineConfig &cfg = {});
    ~Engine();

    /**
     * Submit one image [1, C, H, W]; the future resolves to the model
     * output for that image. Blocks while the queue is full
     * (backpressure). Dies after stop().
     */
    std::future<Tensor> submit(Tensor image);

    /**
     * Prime every steady-state resource for the given image shape:
     * runs one forward per batch size 1..maxBatch so all plans sit in
     * the cache and the workspace pool holds every transient — after
     * this, serving that shape performs zero fresh allocations. Call
     * before traffic (it uses the model directly, bypassing the
     * queue).
     */
    void warmup(int c, int h, int w);

    /** Drain every queued request, then join the batcher thread.
     *  Idempotent; implied by the destructor. */
    void stop();

    int maxBatch() const { return maxB; }
    long long maxDelayUs() const { return delayUs; }
    PlanCache &planCache() { return *cache; }
    /** Latency SLO monitor (observed by the batcher thread; read it
     *  for burn rates / alert state). */
    SloMonitor &sloMonitor() { return slo; }
    /** Requests served (completed, not merely submitted). */
    std::uint64_t served() const
    {
        return nServed.load(std::memory_order_relaxed);
    }

  private:
    void run();
    void dispatch(std::vector<Request> &batch);

    nn::Module &model;
    std::unique_ptr<PlanCache> ownCache; ///< null when sharing
    PlanCache *cache;
    int maxB;
    long long delayUs;
    RequestQueue queue;
    Tensor batchX; ///< persistent batch-assembly slab
    std::atomic<std::uint64_t> nServed{0};
    std::atomic<std::uint64_t> nextId{1}; ///< trace id mint (submit)
    std::uint64_t batchSeq = 0;           ///< batcher thread only
    SloMonitor slo;
    bool stopped = false;
    std::thread worker; ///< last member: starts after everything above
};

} // namespace winomc::serve

#endif // WINOMC_SERVE_ENGINE_HH
