# Empty compiler generated dependencies file for fig12_activation_prediction.
# This may be replaced when dependencies are built.
