#include "memnet/cluster.hh"

#include "common/logging.hh"

namespace winomc::memnet {

TransferMode
ClusterShape::transferMode() const
{
    if (ng == 1)
        return TransferMode::None;
    return ng <= 4 ? TransferMode::OneD : TransferMode::TwoD;
}

std::string
ClusterShape::toString() const
{
    return "(" + std::to_string(ng) + "Ng," + std::to_string(nc) + "Nc)";
}

ClusterShape
ClusterShape::groups16(int p)
{
    winomc_assert(p % 16 == 0, "p must be divisible by 16, got ", p);
    return ClusterShape{16, p / 16};
}

ClusterShape
ClusterShape::groups4(int p)
{
    winomc_assert(p % 4 == 0, "p must be divisible by 4, got ", p);
    return ClusterShape{4, p / 4};
}

ClusterShape
ClusterShape::dataParallel(int p)
{
    winomc_assert(p >= 1, "need at least one worker");
    return ClusterShape{1, p};
}

std::unique_ptr<noc::Topology>
clusterTopology(const ClusterShape &shape)
{
    switch (shape.ng) {
      case 1:
        return nullptr;
      case 4:
        return std::make_unique<noc::FullyConnected>(4);
      case 16:
        return std::make_unique<noc::FlatButterfly2D>(4);
      default:
        // Generalized shapes (tests / ablations): clique when small,
        // flattened butterfly when a square grid exists.
        for (int k = 2; k * k <= shape.ng; ++k)
            if (k * k == shape.ng)
                return std::make_unique<noc::FlatButterfly2D>(k);
        return std::make_unique<noc::FullyConnected>(shape.ng);
    }
}

LinkSpec
clusterLink(const ClusterShape &shape)
{
    // The (4, p/4) configuration bridges groups through the host over
    // the full-width links; the dense 16-worker cluster uses the narrow
    // links of the flattened butterfly (Section VII-A).
    return shape.ng <= 4 ? LinkSpec::full() : LinkSpec::narrow();
}

} // namespace winomc::memnet
