#include "quant/zero_skip.hh"

#include <array>

#include "common/logging.hh"
#include "winograd/tiling.hh"

namespace winomc::quant {

ZeroSkipStats
zeroSkipScatter(const Tensor &x, const WinogradAlgo &algo,
                PredictMode mode)
{
    constexpr int kMaxAlpha = 8;
    winomc_assert(algo.alpha <= kMaxAlpha, "alpha too large");
    const int a = algo.alpha;
    TileGrid grid(x.h(), x.w(), algo);

    ZeroSkipStats st;
    std::array<double, kMaxAlpha * kMaxAlpha> patch{};
    std::array<double, kMaxAlpha * kMaxAlpha> out{};

    for (int b = 0; b < x.n(); ++b) {
        for (int c = 0; c < x.c(); ++c) {
            for (int th = 0; th < grid.tilesH; ++th) {
                for (int tw = 0; tw < grid.tilesW; ++tw) {
                    const int r0 = grid.tileRow(th);
                    const int c0 = grid.tileCol(tw);
                    for (int i = 0; i < a; ++i) {
                        for (int j = 0; j < a; ++j) {
                            int rr = r0 + i, cc = c0 + j;
                            bool in = rr >= 0 && rr < x.h() && cc >= 0 &&
                                      cc < x.w();
                            patch[size_t(i * a + j)] =
                                in ? double(x.at(b, c, rr, cc)) : 0.0;
                        }
                    }
                    if (mode == PredictMode::TwoD) {
                        // Full B^T patch B.
                        std::array<double, kMaxAlpha * kMaxAlpha> tmp{};
                        for (int i = 0; i < a; ++i)
                            for (int j = 0; j < a; ++j) {
                                double acc = 0;
                                for (int k = 0; k < a; ++k)
                                    acc += algo.BT.at(i, k) *
                                           patch[size_t(k * a + j)];
                                tmp[size_t(i * a + j)] = acc;
                            }
                        for (int i = 0; i < a; ++i)
                            for (int j = 0; j < a; ++j) {
                                double acc = 0;
                                for (int k = 0; k < a; ++k)
                                    acc += tmp[size_t(i * a + k)] *
                                           algo.B.at(k, j);
                                out[size_t(i * a + j)] = acc;
                            }
                    } else {
                        // One-sided B^T patch (rows stay spatial).
                        for (int i = 0; i < a; ++i)
                            for (int j = 0; j < a; ++j) {
                                double acc = 0;
                                for (int k = 0; k < a; ++k)
                                    acc += algo.BT.at(i, k) *
                                           patch[size_t(k * a + j)];
                                out[size_t(i * a + j)] = acc;
                            }
                    }
                    for (int k = 0; k < a * a; ++k) {
                        ++st.elems;
                        if (out[size_t(k)] == 0.0)
                            ++st.zeros;
                    }
                }
            }
        }
    }
    return st;
}

} // namespace winomc::quant
