#include "nn/conv_layer.hh"

#include "common/metrics.hh"
#include "winograd/microkernel.hh"

namespace winomc::nn {

ConvLayer::ConvLayer(int in_ch, int out_ch, int r_, ConvMode mode,
                     const WinogradAlgo &algo_, Rng &rng)
    : inCh(in_ch), outCh(out_ch), r(r_), kh(r_), kw(r_), sH(1), sW(1),
      convMode(mode), alg(&algo_), w(out_ch, in_ch, r_, r_),
      dw(out_ch, in_ch, r_, r_)
{
    winomc_assert(r_ % 2 == 1, "ConvLayer needs odd filter size");
    winomc_assert(mode != ConvMode::Auto,
                  "Auto layers carry no algorithm hint; use the "
                  "geometry constructor");
    if (mode != ConvMode::Direct) {
        winomc_assert(alg->r == r_, "algorithm r=", alg->r,
                      " mismatches layer r=", r_);
    }
    w.fillKaiming(rng);
    if (mode != ConvMode::Direct) {
        W = transformWeights(w, *alg);
        dW = WinoWeights(alg->alpha, out_ch, in_ch);
        gScratch = WinoWeights(alg->alpha, out_ch, in_ch);
        if (mode == ConvMode::WinogradSpatial)
            dwScratch = Tensor(out_ch, in_ch, r_, r_);
    }
}

ConvLayer::ConvLayer(int in_ch, int out_ch, int kernel_h, int kernel_w,
                     int stride_h, int stride_w, Rng &rng)
    : inCh(in_ch), outCh(out_ch),
      r(kernel_h == kernel_w ? kernel_h : 0), kh(kernel_h),
      kw(kernel_w), sH(stride_h), sW(stride_w),
      convMode(ConvMode::Auto), alg(nullptr),
      w(out_ch, in_ch, kernel_h, kernel_w),
      dw(out_ch, in_ch, kernel_h, kernel_w)
{
    winomc_assert(kernel_h >= 1 && kernel_w >= 1 && stride_h >= 1 &&
                      stride_w >= 1,
                  "bad Auto conv geometry: kernel ", kernel_h, "x",
                  kernel_w, " stride ", stride_h, "x", stride_w);
    w.fillKaiming(rng);
}

void
ConvLayer::ensurePlan(const Tensor &x)
{
    winomc_assert(alg, "ensurePlan without a bound algorithm");
    if (execPlan &&
        execPlan->matches(*alg, x.n(), inCh, outCh, x.h(), x.w()))
        return;
    // Park the displaced plan before leasing: an A/B/A shape flip then
    // finds the parked plan and the whole rotation stays allocation-
    // free, where rebuilding in place bounced the slabs off the
    // workspace pool on every flip.
    PlanSource &src = planSourceRef();
    src.releasePlan(std::move(execPlan));
    execPlan = src.acquirePlan(*alg, x.n(), inCh, outCh, x.h(), x.w());
}

void
ConvLayer::setPlanSource(PlanSource *src)
{
    if (src == planSrc)
        return;
    // The active plan belongs to the outgoing source's pool economy —
    // hand it back there before switching.
    planSourceRef().releasePlan(std::move(execPlan));
    planSrc = src;
}

double
ConvLayer::pruneWinogradWeights(double sparsity)
{
    winomc_assert(convMode == ConvMode::WinogradLayer,
                  "pruneWinogradWeights needs WinogradLayer mode: only "
                  "there are the parameters the Winograd-domain slab "
                  "itself");
    winomc_assert(!sharedW,
                  "cannot prune shared frozen Winograd weights");
    pruneMask = std::make_unique<quant::PruneMask>(
        quant::magnitudePrune(W, sparsity));
    pruneMask->apply(W);
    if (metrics::enabled())
        metrics::gaugeSet("quant.prune.weight_sparsity",
                          pruneMask->sparsity());
    return pruneMask->sparsity();
}

void
ConvLayer::shareWinoWeights(std::shared_ptr<const WinoWeights> shared)
{
    if (shared) {
        winomc_assert(convMode == ConvMode::WinogradSpatial ||
                          convMode == ConvMode::WinogradLayer,
                      "shareWinoWeights needs a manual Winograd mode");
        winomc_assert(shared->alphaEdge() == alg->alpha &&
                          shared->outChannels() == outCh &&
                          shared->inChannels() == inCh,
                      "shared Winograd weights mismatch the layer: got ",
                      shared->alphaEdge(), "/", shared->outChannels(),
                      "/", shared->inChannels(), ", want ", alg->alpha,
                      "/", outCh, "/", inCh);
    }
    sharedW = std::move(shared);
}

ConvSpec
ConvLayer::autoSpec(const Tensor &x) const
{
    ConvSpec s{};
    s.name = "auto";
    s.batch = x.n();
    s.inCh = inCh;
    s.outCh = outCh;
    s.h = x.h();
    s.w = x.w();
    s.r = (kh == kw) ? kh : 0;
    s.kh = kh;
    s.kw = kw;
    s.strideH = sH;
    s.strideW = sW;
    return s;
}

void
ConvLayer::ensureChoice(const ConvSpec &spec)
{
    if (haveChoice && tunedB == spec.batch && tunedH == spec.h &&
        tunedW == spec.w)
        return;
    const tune::AlgoChoice next = tune::selectAlgorithm(spec);
    const bool algoChanged =
        !haveChoice || next.kind != choice.kind || next.m != choice.m;
    choice = next;
    haveChoice = true;
    tunedB = spec.batch;
    tunedH = spec.h;
    tunedW = spec.w;
    if (!algoChanged)
        return;
    // (Re)bind the state the chosen algorithm executes with. Stale
    // state of the losing algorithms is kept — a shape flip back needs
    // only the dirty-flag refresh, not a rebuild.
    switch (choice.kind) {
      case tune::AlgoKind::Direct:
        alg = nullptr;
        break;
      case tune::AlgoKind::Winograd: {
        const WinogradAlgo &na = algoForTile(choice.m);
        alg = &na;
        W = transformWeights(w, na);
        gScratch = WinoWeights(na.alpha, outCh, inCh);
        dwScratch = Tensor(outCh, inCh, kh, kw);
        break;
      }
      case tune::AlgoKind::Decomposed:
        alg = &algoForTile(choice.m);
        decompWeightsDirty = true;
        break;
    }
}

Tensor
ConvLayer::winogradForwardBody(const Tensor &x, bool train)
{
    ensurePlan(x);
    Tensor y(x.n(), outCh, x.h(), x.w());
    // A train-mode forward wants the plan's input-tile cache for the
    // weight-gradient product, so Auto stays staged there; only an
    // explicit WINOMC_FUSED=on fuses it, caching the raw activations
    // instead and re-transforming them in backward().
    if (execPlan->shouldFuse(train)) {
        execPlan->forwardFusedInto(x, effectiveW(), y);
    } else {
        execPlan->forwardInto(x, effectiveW(), y);
        if (!train)
            execPlan->invalidateCache();
    }
    // Fused and half-precision forwards both leave the fp32 input-tile
    // cache unpopulated; backward then rebuilds it from the raw
    // activations (identical fp32 tiles either way).
    if (train && !execPlan->inputCached())
        cachedX = x;
    return y;
}

Tensor
ConvLayer::forwardAuto(const Tensor &x, bool train)
{
    const ConvSpec spec = autoSpec(x);
    ensureChoice(spec);
    switch (choice.kind) {
      case tune::AlgoKind::Direct:
        if (train)
            cachedX = x;
        return directConvForwardEx(x, w, sH, sW, spec.padHEff(),
                                   spec.padWEff());
      case tune::AlgoKind::Winograd:
        return winogradForwardBody(x, train);
      case tune::AlgoKind::Decomposed: {
        if (!decompPlan || !decompPlan->matches(spec, *alg)) {
            decompPlan = std::make_unique<WinoDecompPlan>(spec, *alg);
            decompWeightsDirty = true;
        }
        if (decompWeightsDirty) {
            decompPlan->setWeights(w);
            decompWeightsDirty = false;
        }
        if (train)
            cachedX = x;
        Tensor y(x.n(), outCh, spec.outH(), spec.outW());
        decompPlan->forwardInto(x, y);
        return y;
      }
    }
    winomc_assert(false, "unreachable conv algorithm kind");
    return Tensor();
}

Tensor
ConvLayer::forward(const Tensor &x, bool train)
{
    winomc_assert(x.c() == inCh, "ConvLayer expected ", inCh,
                  " channels, got ", x.c());
    winomc_assert(!(train && sharedW),
                  "train-mode forward on a ConvLayer with shared frozen "
                  "Winograd weights (inference-only)");
    lastH = x.h();
    lastW = x.w();
    trainCached = train;

    if (convMode == ConvMode::Auto)
        return forwardAuto(x, train);

    if (convMode == ConvMode::Direct) {
        if (train)
            cachedX = x;
        return directConvForward(x, w);
    }
    return winogradForwardBody(x, train);
}

Tensor
ConvLayer::backward(const Tensor &dy)
{
    winomc_assert(trainCached,
                  "ConvLayer::backward without a train-mode forward: "
                  "the cached activations are stale");
    haveGrad = true;

    // Auto layers whose fast path is direct or decomposed take direct
    // gradients (the decomposition shares the spatial parameters, so
    // the adjoint of the direct convolution IS its adjoint); the
    // direct kernels bind stride-1 odd square "same" geometry.
    const bool directGrads =
        convMode == ConvMode::Direct ||
        (convMode == ConvMode::Auto &&
         choice.kind != tune::AlgoKind::Winograd);
    if (directGrads) {
        if (convMode == ConvMode::Auto) {
            winomc_assert(sH == 1 && sW == 1 && kh == kw && kh % 2 == 1,
                          "training through a strided or rectangular "
                          "Auto conv is unsupported (kernel ", kh, "x",
                          kw, ", stride ", sH, "x", sW, ")");
        }
        dw += directConvGradWeights(cachedX, dy, kh);
        return directConvBackwardData(dy, w);
    }

    // A fused or half-precision forward bypassed the fp32 input-tile
    // slab, so the cache the weight-gradient product needs does not
    // exist yet — rebuild it from the cached activations (identical
    // tiles regardless of how the forward ran; backward is full fp32).
    if (!execPlan->inputCached())
        execPlan->scatterInput(cachedX);
    execPlan->transformGradOutput(dy);
    execPlan->gradWeightsFromCachedInto(gScratch);
    if (convMode == ConvMode::WinogradLayer) {
        // Pinned pruned coefficients take exactly-zero gradient, so
        // they stay dead through the SGD update.
        if (pruneMask)
            pruneMask->apply(gScratch);
        dW += gScratch;
    } else {
        // Chain through W = G w G^T back to the spatial parameters.
        transformWeightsAdjointInto(gScratch, *alg, dwScratch);
        dw += dwScratch;
    }
    Tensor dx(dy.n(), inCh, lastH, lastW);
    if (execPlan->shouldFuse(false))
        execPlan->backwardDataFusedInto(dy, W, dx);
    else
        execPlan->backwardDataFromCachedInto(W, dx);
    return dx;
}

void
ConvLayer::step(float lr)
{
    winomc_assert(!sharedW,
                  "step() on a ConvLayer with shared frozen Winograd "
                  "weights (inference-only)");
    if (!haveGrad)
        return;
    haveGrad = false;
    const mk::MicroKernels &K = mk::kernels();
    switch (convMode) {
      case ConvMode::Direct:
        K.axpy(w.data(), -lr, dw.data(), std::int64_t(w.size()));
        dw.fill(0.0f);
        break;
      case ConvMode::WinogradSpatial:
        K.axpy(w.data(), -lr, dw.data(), std::int64_t(w.size()));
        dw.fill(0.0f);
        transformWeightsInto(w, *alg, W);
        break;
      case ConvMode::WinogradLayer:
        K.axpy(W.raw(), -lr, dW.raw(), std::int64_t(W.size()));
        dW.fill(0.0f);
        break;
      case ConvMode::Auto:
        K.axpy(w.data(), -lr, dw.data(), std::int64_t(w.size()));
        dw.fill(0.0f);
        // Refresh the fast path's derived weights lazily: transform now
        // if the plain pipeline is live, flag the decomposition so the
        // next forward re-splits.
        if (haveChoice && choice.kind == tune::AlgoKind::Winograd)
            transformWeightsInto(w, *alg, W);
        decompWeightsDirty = true;
        break;
    }
}

const WinoTiles &
ConvLayer::lastOutputTiles() const
{
    winomc_assert(execPlan != nullptr,
                  "lastOutputTiles before any Winograd-mode forward");
    return execPlan->outputTiles();
}

size_t
ConvLayer::paramCount() const
{
    if (convMode == ConvMode::WinogradLayer)
        return W.size();
    return w.size();
}

std::string
ConvLayer::name() const
{
    switch (convMode) {
      case ConvMode::Direct:
        return "conv_direct";
      case ConvMode::WinogradSpatial:
        return "conv_wino_spatial";
      case ConvMode::WinogradLayer:
        return "conv_wino_layer";
      case ConvMode::Auto:
        return "conv_auto";
    }
    return "conv";
}

} // namespace winomc::nn
