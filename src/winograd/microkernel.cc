/**
 * @file
 * Runtime ISA dispatch for the micro-kernel tables.
 *
 * Resolution happens once, on the first kernels() call, and combines
 * three inputs: the WINOMC_ISA knob (or a setIsa() override), what the
 * running CPU reports via cpuid, and which vector TUs this binary was
 * actually built with. Anything unsatisfiable warns and falls down the
 * ladder — never crashes — mirroring the WINOMC_THREADS discipline.
 */

#include "winograd/microkernel.hh"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <mutex>
#include <string>

#include "common/logging.hh"
#include "common/metrics.hh"

namespace winomc::mk {

namespace {

std::mutex gMu;
std::atomic<const MicroKernels *> gActive{nullptr};
Isa gRequested = Isa::Auto; ///< guarded by gMu

const MicroKernels *
tableFor(Isa isa)
{
    switch (isa) {
      case Isa::Scalar:
        return detail::scalarTable();
      case Isa::Sse2:
        return detail::sse2Table();
      case Isa::Avx2:
        return detail::avx2Table();
      case Isa::Avx512:
        return detail::avx512Table();
      case Isa::Auto:
        break;
    }
    return nullptr;
}

/** Does the running CPU execute this level? (Build coverage is
 *  checked separately via tableFor.) */
bool
cpuHas(Isa isa)
{
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
    switch (isa) {
      case Isa::Scalar:
        return true;
      case Isa::Sse2:
        return __builtin_cpu_supports("sse2");
      case Isa::Avx2:
        // f16c: the AVX2 TU is compiled with -mf16c for the fp16
        // decode path (every AVX2+FMA part ships it, but verify).
        return __builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("fma") &&
               __builtin_cpu_supports("f16c");
      case Isa::Avx512:
        return __builtin_cpu_supports("avx512f");
      case Isa::Auto:
        break;
    }
    return false;
#else
    return isa == Isa::Scalar;
#endif
}

bool
usable(Isa isa)
{
    return cpuHas(isa) && tableFor(isa) != nullptr;
}

} // namespace

const char *
isaName(Isa isa)
{
    switch (isa) {
      case Isa::Scalar:
        return "scalar";
      case Isa::Sse2:
        return "sse2";
      case Isa::Avx2:
        return "avx2";
      case Isa::Avx512:
        return "avx512";
      case Isa::Auto:
        return "auto";
    }
    return "scalar";
}

Isa
parseIsa(const char *str)
{
    if (!str || !*str)
        return Isa::Auto;
    // Trim whitespace, lowercase: "  AVX2 " parses like "avx2".
    std::string s;
    for (const char *p = str; *p; ++p)
        if (!std::isspace(static_cast<unsigned char>(*p)))
            s += char(std::tolower(static_cast<unsigned char>(*p)));
    if (s == "auto")
        return Isa::Auto;
    if (s == "scalar")
        return Isa::Scalar;
    if (s == "sse2")
        return Isa::Sse2;
    if (s == "avx2")
        return Isa::Avx2;
    if (s == "avx512")
        return Isa::Avx512;
    winomc_warn("ignoring unrecognized WINOMC_ISA '", str,
                "' (want auto|scalar|sse2|avx2|avx512)");
    return Isa::Auto;
}

Isa
highestSupported()
{
    for (Isa isa : {Isa::Avx512, Isa::Avx2, Isa::Sse2})
        if (usable(isa))
            return isa;
    return Isa::Scalar;
}

Isa
resolveIsa(Isa requested)
{
    if (requested == Isa::Auto)
        return highestSupported();
    if (usable(requested))
        return requested;
    Isa fallback = Isa::Scalar;
    for (Isa isa : {Isa::Avx512, Isa::Avx2, Isa::Sse2}) {
        if (int(isa) < int(requested) && usable(isa)) {
            fallback = isa;
            break;
        }
    }
    winomc_warn("WINOMC_ISA=", isaName(requested),
                cpuHas(requested) ? " not built into this binary"
                                  : " not supported by this CPU",
                "; falling back to ", isaName(fallback));
    return fallback;
}

const MicroKernels &
kernels()
{
    if (const MicroKernels *t = gActive.load(std::memory_order_acquire))
        return *t;
    std::lock_guard<std::mutex> lk(gMu);
    if (const MicroKernels *t = gActive.load(std::memory_order_relaxed))
        return *t;
    Isa req = gRequested;
    if (req == Isa::Auto)
        req = parseIsa(std::getenv("WINOMC_ISA"));
    const MicroKernels *t = tableFor(resolveIsa(req));
    winomc_assert(t != nullptr, "ISA resolution produced no table");
    metrics::gaugeSet("kernel.isa.level", double(int(t->isa)));
    gActive.store(t, std::memory_order_release);
    return *t;
}

Isa
activeIsa()
{
    return kernels().isa;
}

void
setIsa(Isa isa)
{
    std::lock_guard<std::mutex> lk(gMu);
    gRequested = isa;
    gActive.store(nullptr, std::memory_order_release);
}

void
publishStageMetrics(const char *stage, double seconds, double flops)
{
    if (!metrics::enabled())
        return;
    const MicroKernels &k = kernels();
    metrics::gaugeSet("kernel.isa.level", double(int(k.isa)));
    std::string base = "kernel.";
    base += stage;
    metrics::gaugeSet((base + ".gflops").c_str(),
                      seconds > 0.0 ? flops / seconds * 1e-9 : 0.0);
    // Cumulative time and work per stage: together with the
    // perf.<stage>.* hardware counters these are the inputs of the
    // winomc-report roofline table (GFLOP/s from flops/seconds, IPC
    // and bytes/cycle from the perf counters).
    metrics::timerAdd((base + ".seconds").c_str(), seconds);
    metrics::counterAdd((base + ".flops").c_str(), flops);
    metrics::timerAdd(k.isa == Isa::Scalar ? "kernel.time.scalar"
                                           : "kernel.time.vector",
                      seconds);
}

} // namespace winomc::mk
