/**
 * @file
 * Whole-CNN training-iteration simulation on the NDP system (the
 * machinery behind Figures 17 and 18).
 *
 * Builds the Section VI-A task graph of one iteration - forward chain,
 * backward chain, weight-gradient compute, and the weight collectives -
 * and schedules it with the update-counter scheduler. Collectives run
 * on their own (ring-link) resource, so they overlap the bprop of
 * earlier layers exactly as the concurrent Reduce blocks of Section
 * VI-C allow.
 */

#ifndef WINOMC_MPT_NETWORK_SIM_HH
#define WINOMC_MPT_NETWORK_SIM_HH

#include <vector>

#include "mpt/layer_sim.hh"
#include "workloads/networks.hh"

namespace winomc::mpt {

struct NetworkResult
{
    double iterationSeconds = 0.0;
    double fwdSeconds = 0.0;   ///< completion of the forward chain
    double imagesPerSec = 0.0;
    energy::EnergyBreakdown energy; ///< whole system, one iteration
    double averagePowerWatts = 0.0;
    std::vector<LayerResult> layers;
};

NetworkResult simulateNetwork(const workloads::NetworkSpec &net,
                              Strategy strategy,
                              const SystemParams &params);

} // namespace winomc::mpt

#endif // WINOMC_MPT_NETWORK_SIM_HH
