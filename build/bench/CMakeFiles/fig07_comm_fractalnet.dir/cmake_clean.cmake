file(REMOVE_RECURSE
  "CMakeFiles/fig07_comm_fractalnet.dir/fig07_comm_fractalnet.cpp.o"
  "CMakeFiles/fig07_comm_fractalnet.dir/fig07_comm_fractalnet.cpp.o.d"
  "fig07_comm_fractalnet"
  "fig07_comm_fractalnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_comm_fractalnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
