/**
 * @file
 * AVX2+FMA micro-kernel TU. CMake compiles this file with
 * -mavx2 -mfma and defines WINOMC_HAVE_MK_AVX2 when the compiler
 * accepts those flags on an x86 target; the resulting code is only
 * ever *executed* after the runtime cpuid check in microkernel.cc.
 */

#include "winograd/microkernel.hh"

#if defined(WINOMC_HAVE_MK_AVX2)

#include "common/simd.hh"

static_assert(WINOMC_SIMD_LEVEL >= 2,
              "AVX2 TU compiled without -mavx2 -mfma");

#include "winograd/microkernel_impl.hh"

WINOMC_MK_DEFINE_TABLE(avx2Table, Isa::Avx2, "avx2")

#else

namespace winomc::mk::detail {

const MicroKernels *
avx2Table()
{
    return nullptr;
}

} // namespace winomc::mk::detail

#endif
