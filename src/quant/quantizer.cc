#include "quant/quantizer.hh"

#include <cmath>

#include "common/logging.hh"

namespace winomc::quant {

NonUniformQuantizer::NonUniformQuantizer(int levels, int regions,
                                         double sigma,
                                         double range_sigmas)
    : nLevels(levels), nRegions(regions)
{
    winomc_assert(levels >= 4 && (levels & (levels - 1)) == 0,
                  "levels must be a power of two >= 4, got ", levels);
    const int per_side = levels / 2;
    winomc_assert(regions >= 1 && regions <= per_side,
                  "regions must be in [1, levels/2]");
    winomc_assert(per_side % regions == 0,
                  "levels/2 must be divisible by regions");
    stepsPerRegion = per_side / regions;
    winomc_assert(sigma > 0.0, "sigma must be positive");

    // Side range = steps * (delta + 2 delta + ... + 2^(R-1) delta).
    const double units =
        double(stepsPerRegion) * double((1 << regions) - 1);
    range = range_sigmas * sigma;
    delta = range / units;
}

int
NonUniformQuantizer::bits() const
{
    int b = 0;
    while ((1 << b) < nLevels)
        ++b;
    return b;
}

namespace {

/** Step width at 0-based magnitude step index s: delta * 2^region(s). */
double
stepWidth(double delta, int steps_per_region, int s)
{
    return delta * double(1 << (s / steps_per_region));
}

/** Magnitude grid edge k (edge 0 = 0, edge per_side = full scale). */
double
gridEdge(double delta, int steps_per_region, int k)
{
    // Sum of full regions below k plus the remainder inside its region.
    int full_regions = k / steps_per_region;
    int rem = k % steps_per_region;
    // Full region r contributes steps_per_region * delta * 2^r.
    double e = delta * double(steps_per_region) *
               double((1 << full_regions) - 1);
    e += double(rem) * delta * double(1 << full_regions);
    return e;
}

} // namespace

int
NonUniformQuantizer::encode(float v) const
{
    const int per_side = nLevels / 2;
    const double x = double(v);
    const double mag = std::fabs(x);

    if (x >= 0.0 && mag >= range)
        return nLevels; // positive overflow sentinel
    if (x < 0.0 && mag > range)
        return -1;      // negative overflow sentinel

    // Magnitude step index s with edge(s) <= mag < edge(s+1).
    int s = 0;
    {
        double base = 0.0;
        double step = delta;
        for (int reg = 0; reg < nRegions; ++reg) {
            double top = base + step * stepsPerRegion;
            if (mag < top || reg == nRegions - 1) {
                int in_reg = int((mag - base) / step);
                if (in_reg >= stepsPerRegion)
                    in_reg = stepsPerRegion - 1;
                s += in_reg;
                break;
            }
            s += stepsPerRegion;
            base = top;
            step *= 2.0;
        }
    }

    int sidx;
    if (x >= 0.0) {
        sidx = s;
    } else if (mag == gridEdge(delta, stepsPerRegion, s)) {
        sidx = -s; // exactly on an edge: floor is itself
    } else {
        sidx = -(s + 1);
        if (sidx < -per_side)
            sidx = -per_side; // mag == range handled above; clamp -0.0
    }
    return sidx + per_side;
}

Quantized
NonUniformQuantizer::decode(int code) const
{
    if (code == -1 || code == nLevels)
        return Quantized{0.0f, 0.0f, true};
    winomc_assert(code >= 0 && code < nLevels, "bad quantizer code ",
                  code);
    const int per_side = nLevels / 2;
    const int sidx = code - per_side;

    double q, res;
    if (sidx >= 0) {
        q = gridEdge(delta, stepsPerRegion, sidx);
        res = stepWidth(delta, stepsPerRegion, sidx);
    } else {
        q = -gridEdge(delta, stepsPerRegion, -sidx);
        res = stepWidth(delta, stepsPerRegion, -sidx - 1);
    }
    return Quantized{float(q), float(res), false};
}

Quantized
NonUniformQuantizer::quantize(float v) const
{
    return decode(encode(v));
}

} // namespace winomc::quant
