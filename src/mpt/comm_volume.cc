#include "mpt/comm_volume.hh"

#include "common/logging.hh"
#include "winograd/tiling.hh"

namespace winomc::mpt {

namespace {
constexpr double kBytesPerScalar = 4.0;
} // namespace

double
gatherScale(const PredictionParams &p, memnet::TransferMode mode)
{
    if (mode == memnet::TransferMode::None)
        return 0.0;
    const bool one_d = mode == memnet::TransferMode::OneD;
    const double skip = one_d ? p.gatherSkip1D : p.gatherSkip2D;
    const int qbits = one_d ? p.quantBits1D : p.quantBits2D;
    // Quantized pre-transmission of everything + real values for the
    // fraction not predicted dead.
    return double(qbits) / 32.0 + (1.0 - skip);
}

double
scatterScale(const PredictionParams &p, memnet::TransferMode mode)
{
    if (mode == memnet::TransferMode::None)
        return 0.0;
    const bool one_d = mode == memnet::TransferMode::OneD;
    const double skip = one_d ? p.scatterSkip1D : p.scatterSkip2D;
    // Surviving non-zero values + the shared activation map.
    return (1.0 - skip) + p.mapBitsPerElem / 32.0;
}

CommVolume
mptCommVolume(const ConvSpec &spec, const WinogradAlgo &algo,
              const memnet::ClusterShape &shape,
              const PredictionParams *predict)
{
    winomc_assert(spec.squareKernel() && spec.kernelH() == algo.r,
                  "spec/algo filter size mismatch");
    winomc_assert(spec.samePadded(), "MPT tile scatter/gather volumes "
                                     "bind the stride-1 same pipeline");
    const double ng = shape.ng;
    const double nc = shape.nc;
    winomc_assert(shape.ng >= 1 && shape.nc >= 1, "bad shape");
    winomc_assert(double(algo.alpha) * algo.alpha >= ng,
                  "more groups than tile elements");

    TileGrid grid(spec.h, spec.w, algo);
    const double t = grid.tiles();
    const double a2 = double(algo.alpha) * algo.alpha;

    CommVolume v;

    // Weight collective: the group's Winograd-domain slice |W|/N_g,
    // reduce + broadcast over the ring of N_c group members.
    const double wino_w_bytes =
        double(spec.inCh) * spec.outCh * a2 * kBytesPerScalar;
    if (shape.nc > 1)
        v.weightBytes = wino_w_bytes / ng * 2.0 * (nc - 1.0) / nc;

    if (shape.ng > 1) {
        const auto mode = shape.transferMode();
        // Per-worker resident tile bytes per direction and transfer
        // fraction (Section III-C).
        const double frac = (ng - 1.0) / ng;
        const double in_tiles =
            double(spec.batch) * spec.inCh * t * a2 / (nc * ng) *
            kBytesPerScalar;
        const double out_tiles =
            double(spec.batch) * spec.outCh * t * a2 / (nc * ng) *
            kBytesPerScalar;
        // Source-side 1D transform shrinks gathered tiles from alpha^2
        // to alpha * m values (Section IV).
        const double gather_rep =
            mode == memnet::TransferMode::OneD
                ? double(algo.m) / algo.alpha
                : 1.0;

        double gather_f = 1.0, scatter_f = 1.0;
        if (predict) {
            gather_f = gatherScale(*predict, mode);
            scatter_f = scatterScale(*predict, mode);
        }

        // fprop: scatter x-tiles, gather y-tiles;
        // bprop: scatter dy-tiles, gather dx-tiles.
        double scatter = (in_tiles + out_tiles) * frac * scatter_f;
        double gather =
            (out_tiles + in_tiles) * frac * gather_rep * gather_f;
        v.tileBytes = scatter + gather;
    }
    return v;
}

CommVolume
dataParallelCommVolume(uint64_t weight_elems, int workers)
{
    CommVolume v;
    if (workers > 1) {
        double p = workers;
        v.weightBytes = double(weight_elems) * kBytesPerScalar * 2.0 *
                        (p - 1.0) / p;
    }
    return v;
}

} // namespace winomc::mpt
