# Empty compiler generated dependencies file for fig15_layerwise.
# This may be replaced when dependencies are built.
