/**
 * @file
 * Cross-validation of the three communication-model tiers on the same
 * MPT traffic:
 *
 *   1. analytic link-bottleneck model (what the layer simulation uses),
 *   2. event-driven message simulator,
 *   3. flit-level simulator (wormhole routers, credits, VCs),
 *
 * for the intra-cluster tile all-to-all on the narrow-link flattened
 * butterfly, plus the ring weight collective against the closed-form
 * pipelined-collective model and the functional chunk-level engine.
 */

#include <cstdio>
#include <memory>

#include "common/rng.hh"
#include "common/table.hh"
#include "memnet/collective.hh"
#include "memnet/link_model.hh"
#include "memnet/message_sim.hh"
#include "memnet/reduce_engine.hh"
#include "noc/network.hh"
#include "noc/topology.hh"

using namespace winomc;

namespace {

/** Flit-level all-to-all time on a 4x4 fbfly with narrow links. */
double
flitAllToAll(double bytes_per_pair)
{
    noc::NocConfig cfg;
    cfg.flitBytes = 10;      // narrow link: 10 B/cycle at 1 GHz
    cfg.injectionLanes = 6;  // terminal feeds all six fbfly links
    noc::Network net(std::make_unique<noc::FlatButterfly2D>(4), cfg);
    // Offer in 64 B packets, interleaved round-robin.
    int packets = int(bytes_per_pair / 64.0 + 0.5);
    for (int p = 0; p < packets; ++p)
        for (int k = 1; k < 16; ++k)
            for (int s = 0; s < 16; ++s)
                net.offerPacket(s, (s + k) % 16, 64);
    bool ok = net.drain(30'000'000);
    return ok ? double(net.now()) * 1e-9 : -1.0;
}

} // namespace

int
main()
{
    std::printf("communication-model cross-validation\n\n");

    Table t("tile all-to-all, 16-worker cluster, narrow-link fbfly");
    t.header({"bytes/pair", "analytic us", "message-sim us",
              "flit-sim us", "flit/analytic"});
    for (double v : {4096.0, 16384.0, 65536.0}) {
        noc::FlatButterfly2D ta(4);
        double an = memnet::allToAllTime(ta, v,
                                         memnet::LinkSpec::narrow());
        noc::FlatButterfly2D tb(4);
        double ms = memnet::simulateAllToAll(
            tb, memnet::LinkSpec::narrow(), v);
        double fs = flitAllToAll(v);
        t.row()
            .cell(v, 0)
            .cell(an * 1e6, 1)
            .cell(ms * 1e6, 1)
            .cell(fs * 1e6, 1)
            .cell(fs / an, 2);
    }
    t.print();

    Table c("weight collective, 16-worker ring, full links");
    c.header({"message KiB", "closed form us", "functional engine us",
              "ratio"});
    Rng rng(5);
    for (size_t kib : {64, 256, 1024}) {
        size_t len = kib * 256; // floats
        std::vector<std::vector<float>> parts;
        parts.resize(16);
        for (auto &p : parts) {
            p.resize(len);
            for (auto &x : p)
                x = float(rng.uniform(-1, 1));
        }
        memnet::RingCollectiveEngine eng(16, memnet::LinkSpec::full());
        int id = eng.submit(std::move(parts));
        eng.run();

        memnet::CollectiveConfig cc;
        cc.rings = 1;
        double model = memnet::ringAllReduceTime(len * 4, 16, cc);
        double sim = eng.outcome(id).finishSec;
        c.row()
            .cell(int64_t(kib))
            .cell(model * 1e6, 1)
            .cell(sim * 1e6, 1)
            .cell(sim / model, 2);
    }
    c.print();

    std::printf("all three tiers agree within the pipelining slack - "
                "the layer model's communication times rest on "
                "validated ground.\n");
    return 0;
}
