/**
 * @file
 * Arena-style workspace allocator with size-class slab reuse.
 *
 * Every Tensor / WinoTiles / WinoWeights buffer is acquired from (and
 * released back to) this pool, so in steady state — fixed shapes, as in
 * a training loop — the numeric substrate performs zero heap
 * allocations: a released slab is handed straight back to the next
 * acquire of the same size class. This is the host-side analogue of the
 * paper's planned SRAM working set: allocation becomes a plan-time
 * event, not a per-batch one.
 *
 * Design points:
 *
 *  - Size classes are powers of two (min 256 floats). acquire(n) takes
 *    a slab from the smallest class holding n; release returns the slab
 *    to the class its capacity fits. Slabs keep their capacity across
 *    the pool, so a reuse never touches the heap.
 *  - The pool retains at most limitBytes() (WINOMC_WORKSPACE_LIMIT_MB,
 *    default 1024 MB); slabs released beyond that are freed to the OS.
 *    checkBudget() lets execution plans fail loudly — not OOM — when a
 *    planned working set alone would exceed the budget.
 *  - Counters distinguish fresh heap allocations (pool misses) from
 *    slab reuses; tests pin the hot path to zero fresh allocations
 *    after a one-step warm-up. Gauges (bytes in use, high water,
 *    pooled bytes) are mirrored into common/metrics under "workspace.*"
 *    and surface in winomc-report.
 *  - All operations are mutex-guarded; acquire/release happen at tensor
 *    granularity (never inside kernels' inner loops), so contention is
 *    negligible and the pool composes with common/parallel.hh workers.
 */

#ifndef WINOMC_TENSOR_WORKSPACE_HH
#define WINOMC_TENSOR_WORKSPACE_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace winomc::ws {

/** Default retention/budget limit when the knob is unset. */
constexpr std::size_t kDefaultLimitMb = 1024;
/** Hard ceiling on the knob; larger requests clamp here. */
constexpr std::size_t kMaxLimitMb = std::size_t(1) << 20; // 1 TiB

/**
 * Parse a WINOMC_WORKSPACE_LIMIT_MB string; 0 if missing/invalid (the
 * caller then falls back to kDefaultLimitMb). Never crashes: garbage,
 * negative, and zero values warn and return 0; values above kMaxLimitMb
 * warn and clamp — the same contract as parseThreadCount.
 */
std::size_t parseWorkspaceLimitMb(const char *str);

/** Pool observability counters/gauges (bytes are heap bytes). */
struct Stats
{
    std::uint64_t freshAllocs = 0; ///< acquires that hit the heap
    std::uint64_t freshBytes = 0;  ///< bytes newly heap-allocated
    std::uint64_t reuses = 0;      ///< acquires served from the pool
    std::uint64_t releases = 0;
    std::uint64_t dropped = 0;     ///< slabs freed (pool at limit)
    std::size_t bytesInUse = 0;    ///< acquired minus released
    std::size_t highWater = 0;
    std::size_t pooledBytes = 0;   ///< retained in free lists
};

class Workspace
{
  public:
    /** The process-wide pool every tensor buffer routes through. */
    static Workspace &global();

    Workspace() = default;
    Workspace(const Workspace &) = delete;
    Workspace &operator=(const Workspace &) = delete;

    /** A zero-filled slab of exactly n floats (capacity >= n). */
    std::vector<float> acquire(std::size_t n);

    /** Return a slab to the pool (or free it if the pool is full). */
    void release(std::vector<float> &&buf);

    Stats stats() const;
    /** Zero the counters; bytesInUse/pooledBytes stay, highWater
     *  restarts from the current bytesInUse. */
    void resetStats();
    /** Free every pooled slab back to the OS. */
    void trim();

    std::size_t limitBytes() const;
    void setLimitBytes(std::size_t bytes);

    /** Number of power-of-two size classes (min class: 256 floats). */
    static constexpr int kClasses = 44;

  private:
    void publishGauges() const;      // callers hold mu
    std::size_t limitBytesLocked();  // callers hold mu

    mutable std::mutex mu;
    std::vector<std::vector<float>> pool[kClasses];
    Stats st;
    std::size_t limitB = 0; ///< 0 = uninitialized, read env lazily
};

/** Workspace::global().acquire / release shorthands. */
std::vector<float> acquire(std::size_t n);
void release(std::vector<float> &&buf);

/**
 * Capacity-aware copy into a pooled destination: reuses dst's capacity
 * when it suffices, otherwise swaps dst for a pooled slab. The
 * copy-assignment path of the tensor classes.
 */
void assignCopy(std::vector<float> &dst, const std::vector<float> &src);

/**
 * Fail loudly (winomc_fatal, not OOM) when a planned working set of
 * `bytes` exceeds the workspace budget. `what` names the plan in the
 * error message.
 */
void checkBudget(std::size_t bytes, const std::string &what);

} // namespace winomc::ws

#endif // WINOMC_TENSOR_WORKSPACE_HH
