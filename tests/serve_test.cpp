/**
 * @file
 * Serving-engine correctness suite: batch demux bitwise-equality
 * against unbatched forwards (staged and fused, 1 vs 8 threads),
 * deadline-driven partial batches, queue-full backpressure without
 * drops, clean shutdown with in-flight requests, PlanCache lease /
 * eviction / shared-transformed-weight semantics (including under
 * concurrency — run these under TSan via ctest -L serve), serving
 * knob parsing, and the zero-allocation steady-state guarantee.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "common/metrics.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/trace.hh"
#include "nn/conv_layer.hh"
#include "serve/engine.hh"
#include "serve/plan_cache.hh"
#include "serve/slo.hh"
#include "tensor/workspace.hh"
#include "winograd/conv.hh"

namespace winomc {
namespace {

using serve::Engine;
using serve::EngineConfig;
using serve::PlanCache;

/** Two-layer Winograd-layer CNN (3 -> 4 -> 2 channels, F(2x2,3x3)). */
nn::Sequential
makeModel(unsigned seed)
{
    Rng rng(seed);
    nn::Sequential model;
    model.add(std::make_unique<nn::ConvLayer>(
        3, 4, 3, nn::ConvMode::WinogradLayer, algoF2x2_3x3(), rng));
    model.add(std::make_unique<nn::ConvLayer>(
        4, 2, 3, nn::ConvMode::WinogradLayer, algoF2x2_3x3(), rng));
    return model;
}

std::vector<Tensor>
makeImages(int count, int c, int h, int w, unsigned seed)
{
    Rng rng(seed);
    std::vector<Tensor> xs;
    for (int i = 0; i < count; ++i) {
        xs.emplace_back(1, c, h, w);
        xs.back().fillUniform(rng);
    }
    return xs;
}

// ------------------------------------------------- Batch demux parity

TEST(ServeEngine, BatchDemuxBitwiseMatchesUnbatchedForward)
{
    for (auto fused : {FusedMode::Off, FusedMode::On}) {
        setFusedMode(fused);
        for (int threads : {1, 8}) {
            ThreadPool::global().setThreadCount(threads);
            nn::Sequential model = makeModel(17);
            const auto xs = makeImages(6, 3, 10, 10, 99);

            std::vector<Tensor> refs;
            for (const auto &x : xs)
                refs.push_back(model.forward(x, false));

            EngineConfig cfg;
            cfg.maxBatch = 4;
            cfg.maxDelayUs = 50'000; // force coalescing
            Engine engine(model, cfg);
            std::vector<std::future<Tensor>> futs;
            for (const auto &x : xs)
                futs.push_back(engine.submit(x));
            for (std::size_t i = 0; i < futs.size(); ++i) {
                Tensor y = futs[i].get();
                EXPECT_EQ(y.maxAbsDiff(refs[i]), 0.0f)
                    << "request " << i << " (fused="
                    << fusedModeName(fused) << ", threads=" << threads
                    << ") diverged from its unbatched forward";
            }
            engine.stop();
        }
    }
    setFusedMode(FusedMode::Auto);
}

// -------------------------------------------------- Deadline batching

TEST(ServeEngine, DeadlineEmitsPartialBatches)
{
    nn::Sequential model = makeModel(5);
    EngineConfig cfg;
    cfg.maxBatch = 64; // never fills from 3 requests
    cfg.maxDelayUs = 2'000;
    Engine engine(model, cfg);
    const auto xs = makeImages(3, 3, 8, 8, 7);
    std::vector<std::future<Tensor>> futs;
    for (const auto &x : xs)
        futs.push_back(engine.submit(x));
    for (auto &f : futs) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(10)),
                  std::future_status::ready)
            << "partial batch never fired despite the deadline";
        Tensor y = f.get();
        EXPECT_EQ(y.c(), 2);
        EXPECT_EQ(y.h(), 8);
    }
    engine.stop();
    EXPECT_EQ(engine.served(), 3u);
}

// ----------------------------------------------------- Backpressure

TEST(ServeEngine, BackpressureBlocksWithoutDropping)
{
    nn::Sequential model = makeModel(11);
    const int kProducers = 4;
    const int kPerProducer = 10;
    const auto xs = makeImages(kProducers * kPerProducer, 3, 8, 8, 31);

    std::vector<Tensor> refs;
    for (const auto &x : xs)
        refs.push_back(model.forward(x, false));

    EngineConfig cfg;
    cfg.maxBatch = 2;
    cfg.maxDelayUs = 0;   // dispatch whatever already queued
    cfg.queueCapacity = 2; // producers must block on the full queue
    Engine engine(model, cfg);

    std::vector<std::thread> producers;
    std::atomic<int> mismatches{0};
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                const int idx = p * kPerProducer + i;
                Tensor y = engine.submit(xs[idx]).get();
                if (y.maxAbsDiff(refs[idx]) != 0.0f)
                    ++mismatches;
            }
        });
    }
    for (auto &t : producers)
        t.join();
    engine.stop();
    EXPECT_EQ(mismatches.load(), 0)
        << "some request got another request's answer";
    EXPECT_EQ(engine.served(), std::uint64_t(kProducers * kPerProducer));
}

// --------------------------------------------------- Clean shutdown

TEST(ServeEngine, StopDrainsInFlightRequests)
{
    nn::Sequential model = makeModel(13);
    EngineConfig cfg;
    cfg.maxBatch = 4;
    cfg.maxDelayUs = 100'000; // without the drain, stop would strand these
    Engine engine(model, cfg);
    const auto xs = makeImages(10, 3, 8, 8, 3);
    std::vector<std::future<Tensor>> futs;
    for (const auto &x : xs)
        futs.push_back(engine.submit(x));
    engine.stop();
    for (auto &f : futs) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready)
            << "stop() returned with an unserved in-flight request";
        Tensor y = f.get();
        EXPECT_EQ(y.c(), 2);
    }
    EXPECT_EQ(engine.served(), 10u);
}

TEST(ServeEngineDeath, SubmitAfterStopDies)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    nn::Sequential model = makeModel(13);
    Engine engine(model);
    engine.stop();
    Tensor x(1, 3, 8, 8);
    EXPECT_DEATH(engine.submit(x), "after stop");
}

// ------------------------------------------------------- PlanCache

TEST(ServePlanCache, LeaseParkLeaseReusesThePlan)
{
    PlanCache cache(std::size_t(64) << 20);
    const WinogradAlgo &algo = algoF2x2_3x3();
    auto plan = cache.acquirePlan(algo, 2, 3, 4, 8, 8);
    const WinoPlan *raw = plan.get();
    EXPECT_EQ(cache.misses(), 1u);
    cache.releasePlan(std::move(plan));
    EXPECT_EQ(cache.parkedPlans(), 1);
    auto again = cache.acquirePlan(algo, 2, 3, 4, 8, 8);
    EXPECT_EQ(again.get(), raw) << "matching lease rebuilt the plan";
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.parkedPlans(), 0);
}

TEST(ServePlanCache, EvictsLeastRecentlyUsedPastTheByteBudget)
{
    const WinogradAlgo &algo = algoF2x2_3x3();
    std::size_t oneBytes = 0;
    {
        WinoPlan probe(algo, 2, 3, 4, 8, 8);
        oneBytes = probe.workspaceBytes();
    }
    // Room for two small plans, not three.
    PlanCache cache(2 * oneBytes + oneBytes / 2);
    auto a = cache.acquirePlan(algo, 2, 3, 4, 8, 8);
    auto b = cache.acquirePlan(algo, 4, 3, 4, 8, 8);  // ~2x oneBytes
    const WinoPlan *rawB = b.get();
    cache.releasePlan(std::move(a));
    cache.releasePlan(std::move(b)); // budget forces A (the LRU) out
    EXPECT_GE(cache.evictions(), 1u);
    EXPECT_LE(cache.parkedBytes(), cache.budgetBytes());
    auto b2 = cache.acquirePlan(algo, 4, 3, 4, 8, 8);
    EXPECT_EQ(b2.get(), rawB) << "the MRU plan should have survived";
    auto a2 = cache.acquirePlan(algo, 2, 3, 4, 8, 8);
    EXPECT_EQ(cache.misses(), 3u) << "the evicted plan must rebuild";
}

TEST(ServePlanCache, OversizedPlanIsNeverParked)
{
    const WinogradAlgo &algo = algoF2x2_3x3();
    PlanCache cache(1024); // smaller than any real plan
    auto p = cache.acquirePlan(algo, 2, 3, 4, 8, 8);
    cache.releasePlan(std::move(p));
    EXPECT_EQ(cache.parkedPlans(), 0);
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ServePlanCache, TransformedWeightsBuildOncePerTag)
{
    PlanCache cache(std::size_t(64) << 20);
    const WinogradAlgo &algo = algoF2x2_3x3();
    Rng rng(21);
    Tensor w(4, 3, 3, 3);
    w.fillUniform(rng);
    auto first = cache.transformedWeights("model.conv1", w, algo);
    auto second = cache.transformedWeights("model.conv1", w, algo);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.weightBuilds(), 1u);
    const WinoWeights ref = transformWeights(w, algo);
    EXPECT_EQ(first->maxAbsDiff(ref), 0.0f);
}

TEST(ServePlanCache, ConcurrentLeasesAndWeightLookupsAreSafe)
{
    PlanCache cache(std::size_t(64) << 20);
    const WinogradAlgo &algo = algoF2x2_3x3();
    Rng rng(33);
    Tensor w(4, 3, 3, 3);
    w.fillUniform(rng);
    const int kThreads = 8;
    const int kIters = 25;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                const int batch = (t + i) % 2 ? 2 : 4;
                auto plan = cache.acquirePlan(algo, batch, 3, 4, 8, 8);
                ASSERT_TRUE(plan->matches(algo, batch, 3, 4, 8, 8));
                cache.releasePlan(std::move(plan));
                auto shared =
                    cache.transformedWeights("m.conv", w, algo);
                ASSERT_NE(shared.get(), nullptr);
            }
        });
    }
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(cache.hits() + cache.misses(),
              std::uint64_t(kThreads * kIters));
    EXPECT_EQ(cache.weightBuilds(), 1u);
}

// -------------------------------------- Cross-replica weight sharing

TEST(ServeEngine, ReplicasSharingCacheAndWeightsServeIdentically)
{
    const WinogradAlgo &algo = algoF2x2_3x3();
    Rng rng(41);
    nn::ConvLayer replicaA(3, 4, 3, nn::ConvMode::WinogradSpatial, algo,
                           rng);
    Rng rng2(41); // same seed: same spatial weights
    nn::ConvLayer replicaB(3, 4, 3, nn::ConvMode::WinogradSpatial, algo,
                           rng2);
    PlanCache cache(std::size_t(64) << 20);
    auto shared = cache.transformedWeights(
        "replica.conv", replicaA.spatialWeights(), algo);
    replicaA.shareWinoWeights(shared);
    replicaB.shareWinoWeights(shared);
    EXPECT_EQ(cache.weightBuilds(), 1u);
    EXPECT_EQ(&replicaA.winoWeights(), &replicaB.winoWeights());

    EngineConfig cfgA;
    cfgA.maxBatch = 2;
    cfgA.sharedCache = &cache;
    Engine engineA(replicaA, cfgA);
    EngineConfig cfgB;
    cfgB.maxBatch = 2;
    cfgB.sharedCache = &cache;
    Engine engineB(replicaB, cfgB);

    const auto xs = makeImages(4, 3, 8, 8, 51);
    for (const auto &x : xs) {
        Tensor ya = engineA.submit(x).get();
        Tensor yb = engineB.submit(x).get();
        EXPECT_EQ(ya.maxAbsDiff(yb), 0.0f);
    }
    engineA.stop();
    engineB.stop();
}

// ------------------------------------------------------ Serve knobs

TEST(ServeKnobs, EnvironmentKnobsParseWithSharedDiscipline)
{
    setenv("WINOMC_SERVE_MAX_BATCH", "3", 1);
    setenv("WINOMC_SERVE_MAX_DELAY_US", "250", 1);
    {
        nn::Sequential model = makeModel(1);
        Engine engine(model);
        EXPECT_EQ(engine.maxBatch(), 3);
        EXPECT_EQ(engine.maxDelayUs(), 250);
    }
    // Garbage warns and falls back to the defaults (same contract as
    // WINOMC_THREADS / WINOMC_WORKSPACE_LIMIT_MB).
    setenv("WINOMC_SERVE_MAX_BATCH", "7seven", 1);
    setenv("WINOMC_SERVE_MAX_DELAY_US", "-4", 1);
    {
        nn::Sequential model = makeModel(1);
        Engine engine(model);
        EXPECT_EQ(engine.maxBatch(), 8);
        EXPECT_EQ(engine.maxDelayUs(), 1000);
    }
    // Explicit config wins over the environment.
    {
        nn::Sequential model = makeModel(1);
        EngineConfig cfg;
        cfg.maxBatch = 2;
        cfg.maxDelayUs = 0;
        Engine engine(model, cfg);
        EXPECT_EQ(engine.maxBatch(), 2);
        EXPECT_EQ(engine.maxDelayUs(), 0);
    }
    unsetenv("WINOMC_SERVE_MAX_BATCH");
    unsetenv("WINOMC_SERVE_MAX_DELAY_US");
}

// --------------------------------------- Zero-alloc serving steady state

TEST(ServeSteadyState, ServingAllocatesNothingAfterWarmup)
{
    nn::Sequential model = makeModel(23);
    EngineConfig cfg;
    cfg.maxBatch = 4;
    cfg.maxDelayUs = 0;
    Engine engine(model, cfg);
    // Warm both traffic shapes at every batch size the batcher can
    // emit, plus one serving burst so the queue/demux transients pool.
    engine.warmup(3, 8, 8);
    engine.warmup(3, 12, 12);
    // A client keeps a bounded number of requests in flight and
    // consumes results as they stream back (letting every output
    // tensor pile up unconsumed would itself defeat slab reuse).
    const auto burst = [&](int count) {
        std::deque<std::future<Tensor>> futs;
        for (int i = 0; i < count; ++i) {
            Tensor x(1, 3, i % 2 ? 12 : 8, i % 2 ? 12 : 8);
            x.fill(float(i % 5) * 0.25f);
            futs.push_back(engine.submit(std::move(x)));
            while (futs.size() >= 8) {
                futs.front().get();
                futs.pop_front();
            }
        }
        while (!futs.empty()) {
            futs.front().get();
            futs.pop_front();
        }
    };
    burst(16);
    const auto s0 = ws::Workspace::global().stats();
    burst(120); // >= 100 requests, alternating shapes
    const auto s1 = ws::Workspace::global().stats();
    EXPECT_EQ(s1.freshAllocs, s0.freshAllocs)
        << "steady-state serving hit the heap";
    EXPECT_EQ(s1.freshBytes, s0.freshBytes);
    engine.stop();
    EXPECT_EQ(engine.served(), 136u);
}

// --------------------------------------------- Telemetry plane

TEST(ServeTelemetry, ChurnLoadExemplarResolvesToATraceSpan)
{
    const bool wasMetrics = metrics::enabled();
    const bool wasTrace = trace::enabled();
    metrics::setEnabled(true);
    trace::setEnabled(true);
    metrics::reset();
    trace::reset();

    nn::Sequential model = makeModel(7);
    EngineConfig cfg;
    cfg.maxBatch = 4;
    cfg.maxDelayUs = 0;
    {
        Engine engine(model, cfg);
        // Shape churn: alternate image sizes so batches break on
        // shape boundaries like real mixed traffic.
        std::vector<std::future<Tensor>> futs;
        auto xs1 = makeImages(12, 3, 16, 16, 11);
        auto xs2 = makeImages(12, 3, 24, 24, 13);
        for (int i = 0; i < 12; ++i) {
            futs.push_back(engine.submit(std::move(xs1[size_t(i)])));
            futs.push_back(engine.submit(std::move(xs2[size_t(i)])));
        }
        for (auto &f : futs)
            f.get();
        engine.stop();
    }

    // The latency histogram must carry an exemplar, and that
    // exemplar's trace id must resolve to a serve.request span in the
    // trace buffer — the end-to-end correlation the telemetry plane
    // promises (scrape outlier -> span).
    std::uint64_t exemplarId = 0;
    for (const auto &s : metrics::snapshot())
        if (s.name == "serve.latency_us") {
            EXPECT_EQ(s.count, std::uint64_t(24));
            exemplarId = s.exemplarId;
        }
    ASSERT_NE(exemplarId, std::uint64_t(0));
    const std::string json = trace::toJson();
    EXPECT_NE(json.find("\"serve.request\""), std::string::npos);
    EXPECT_NE(json.find("\"trace_id\": \"" +
                        std::to_string(exemplarId) + "\""),
              std::string::npos);
    EXPECT_NE(json.find("\"serve.batch\""), std::string::npos);

    metrics::reset();
    trace::reset();
    metrics::setEnabled(wasMetrics);
    trace::setEnabled(wasTrace);
}

// --------------------------------------------- SLO monitoring

TEST(ServeSlo, BurnRateMatchesBudgetArithmetic)
{
    serve::SloConfig cfg;
    cfg.latencyObjectiveUs = 1000.0;
    cfg.targetFraction = 0.99; // 1% error budget
    cfg.shortWindowSec = 5;
    cfg.longWindowSec = 20;
    serve::SloMonitor m(cfg);
    // 99 good + 1 bad in one second: violation fraction 1% = exactly
    // the budget -> burn rate 1.0.
    for (int i = 0; i < 99; ++i)
        m.observeAt(500.0, 0.0);
    m.observeAt(5000.0, 0.0);
    EXPECT_NEAR(m.burnRate(5), 1.0, 1e-12);
    EXPECT_EQ(m.observed(), std::uint64_t(100));
    EXPECT_EQ(m.violations(), std::uint64_t(1));
    // Below threshold: no alert.
    EXPECT_FALSE(m.evaluateAt(0.0));
}

TEST(ServeSlo, MultiWindowAlertFiresOnSustainedBurnAndClears)
{
    serve::SloConfig cfg;
    cfg.latencyObjectiveUs = 1000.0;
    cfg.targetFraction = 0.9; // 10% budget
    cfg.shortWindowSec = 5;
    cfg.longWindowSec = 20;
    cfg.burnThreshold = 2.0;
    serve::SloMonitor m(cfg);

    // Healthy traffic: one fast request per second.
    for (int t = 0; t < 10; ++t)
        m.observeAt(100.0, double(t));
    EXPECT_FALSE(m.evaluateAt(9.0));

    // A single slow second spikes the SHORT window but the long
    // window stays quiet: no page on a transient.
    for (int i = 0; i < 2; ++i)
        m.observeAt(9999.0, 10.0);
    EXPECT_GE(m.burnRate(5), cfg.burnThreshold);
    EXPECT_FALSE(m.evaluateAt(10.0));
    EXPECT_FALSE(m.alerting());

    // Sustained violations: ten slow requests per second for ten
    // seconds drives BOTH windows over threshold -> fires.
    for (int t = 11; t <= 20; ++t)
        for (int i = 0; i < 10; ++i)
            m.observeAt(9999.0, double(t));
    EXPECT_TRUE(m.evaluateAt(20.0));
    EXPECT_TRUE(m.alerting());

    // Recovery: fast traffic ages the violations out of the short
    // window first -> the alert clears promptly.
    for (int t = 21; t <= 30; ++t)
        for (int i = 0; i < 10; ++i)
            m.observeAt(100.0, double(t));
    EXPECT_FALSE(m.evaluateAt(30.0));
    EXPECT_FALSE(m.alerting());
}

TEST(ServeSlo, ObjectiveKnobFollowsEnvDiscipline)
{
    setenv("WINOMC_SLO_LATENCY_US", "2500", 1);
    EXPECT_DOUBLE_EQ(serve::resolveSloConfig().latencyObjectiveUs,
                     2500.0);
    // Garbage warns and falls back to the 50 ms default.
    setenv("WINOMC_SLO_LATENCY_US", "fast", 1);
    EXPECT_DOUBLE_EQ(serve::resolveSloConfig().latencyObjectiveUs,
                     50000.0);
    unsetenv("WINOMC_SLO_LATENCY_US");
    EXPECT_DOUBLE_EQ(serve::resolveSloConfig().latencyObjectiveUs,
                     50000.0);
    // An explicit objective wins over the environment.
    serve::SloConfig cfg;
    cfg.latencyObjectiveUs = 123.0;
    EXPECT_DOUBLE_EQ(serve::resolveSloConfig(cfg).latencyObjectiveUs,
                     123.0);
}

TEST(ServeSlo, EngineFeedsEveryServedLatencyIntoTheMonitor)
{
    nn::Sequential model = makeModel(3);
    EngineConfig cfg;
    cfg.maxBatch = 4;
    cfg.maxDelayUs = 0;
    Engine engine(model, cfg);
    std::vector<std::future<Tensor>> futs;
    auto xs = makeImages(10, 3, 16, 16, 5);
    for (auto &x : xs)
        futs.push_back(engine.submit(std::move(x)));
    for (auto &f : futs)
        f.get();
    engine.stop();
    EXPECT_EQ(engine.sloMonitor().observed(), std::uint64_t(10));
}

} // namespace
} // namespace winomc
