#include "winograd/tiling.hh"

#include <cmath>

namespace winomc {

TileGrid::TileGrid(int h_, int w_, const WinogradAlgo &algo)
    : h(h_), w(w_), m(algo.m), alpha(algo.alpha), pad((algo.r - 1) / 2),
      tilesH((h_ + algo.m - 1) / algo.m), tilesW((w_ + algo.m - 1) / algo.m)
{
    winomc_assert(h_ > 0 && w_ > 0, "empty feature map");
    winomc_assert(algo.r % 2 == 1,
                  "\"same\" convolution needs odd filter size, got r=",
                  algo.r);
}

WinoTiles::WinoTiles(int alpha_, int channels, int batch, int tiles)
    : alpha(alpha_), nch(channels), nb(batch), nt(tiles)
{
    winomc_assert(alpha_ > 0 && channels > 0 && batch > 0 && tiles > 0,
                  "degenerate WinoTiles shape");
    data = ws::acquire(size_t(alpha_) * alpha_ * channels * batch *
                       tiles);
}

WinoTiles::WinoTiles(const WinoTiles &o)
    : alpha(o.alpha), nch(o.nch), nb(o.nb), nt(o.nt),
      data(ws::acquire(o.data.size()))
{
    std::copy(o.data.begin(), o.data.end(), data.begin());
}

WinoTiles &
WinoTiles::operator=(const WinoTiles &o)
{
    if (this != &o) {
        alpha = o.alpha;
        nch = o.nch;
        nb = o.nb;
        nt = o.nt;
        ws::assignCopy(data, o.data);
    }
    return *this;
}

WinoTiles::WinoTiles(WinoTiles &&o) noexcept
    : alpha(o.alpha), nch(o.nch), nb(o.nb), nt(o.nt),
      data(std::move(o.data))
{
    o.alpha = o.nch = o.nb = o.nt = 0;
}

WinoTiles &
WinoTiles::operator=(WinoTiles &&o) noexcept
{
    if (this != &o) {
        ws::release(std::move(data));
        data = std::move(o.data);
        alpha = o.alpha;
        nch = o.nch;
        nb = o.nb;
        nt = o.nt;
        o.alpha = o.nch = o.nb = o.nt = 0;
    }
    return *this;
}

void
WinoTiles::reshape(int alpha_, int channels, int batch, int tiles)
{
    winomc_assert(alpha_ > 0 && channels > 0 && batch > 0 && tiles > 0,
                  "degenerate WinoTiles shape");
    const bool same = alpha == alpha_ && nch == channels &&
                      nb == batch && nt == tiles;
    alpha = alpha_;
    nch = channels;
    nb = batch;
    nt = tiles;
    if (same)
        return;
    const size_t need = size_t(alpha_) * alpha_ * channels * batch *
                        tiles;
    if (data.capacity() >= need) {
        data.assign(need, 0.0f);
    } else {
        ws::release(std::move(data));
        data = ws::acquire(need);
    }
}

WinoWeights::WinoWeights(int alpha_, int out_ch, int in_ch)
    : alpha(alpha_), nj(out_ch), ni(in_ch)
{
    winomc_assert(alpha_ > 0 && out_ch > 0 && in_ch > 0,
                  "degenerate WinoWeights shape");
    data = ws::acquire(size_t(alpha_) * alpha_ * out_ch * in_ch);
}

WinoWeights::WinoWeights(const WinoWeights &o)
    : alpha(o.alpha), nj(o.nj), ni(o.ni), data(ws::acquire(o.data.size()))
{
    std::copy(o.data.begin(), o.data.end(), data.begin());
}

WinoWeights &
WinoWeights::operator=(const WinoWeights &o)
{
    if (this != &o) {
        alpha = o.alpha;
        nj = o.nj;
        ni = o.ni;
        ws::assignCopy(data, o.data);
    }
    return *this;
}

WinoWeights::WinoWeights(WinoWeights &&o) noexcept
    : alpha(o.alpha), nj(o.nj), ni(o.ni), data(std::move(o.data))
{
    o.alpha = o.nj = o.ni = 0;
}

WinoWeights &
WinoWeights::operator=(WinoWeights &&o) noexcept
{
    if (this != &o) {
        ws::release(std::move(data));
        data = std::move(o.data);
        alpha = o.alpha;
        nj = o.nj;
        ni = o.ni;
        o.alpha = o.nj = o.ni = 0;
    }
    return *this;
}

void
WinoWeights::reshape(int alpha_, int out_ch, int in_ch)
{
    winomc_assert(alpha_ > 0 && out_ch > 0 && in_ch > 0,
                  "degenerate WinoWeights shape");
    const bool same = alpha == alpha_ && nj == out_ch && ni == in_ch;
    alpha = alpha_;
    nj = out_ch;
    ni = in_ch;
    if (same)
        return;
    const size_t need = size_t(alpha_) * alpha_ * out_ch * in_ch;
    if (data.capacity() >= need) {
        data.assign(need, 0.0f);
    } else {
        ws::release(std::move(data));
        data = ws::acquire(need);
    }
}

WinoWeights &
WinoWeights::operator+=(const WinoWeights &o)
{
    winomc_assert(alpha == o.alpha && nj == o.nj && ni == o.ni,
                  "WinoWeights += shape mismatch");
    for (size_t k = 0; k < data.size(); ++k)
        data[k] += o.data[k];
    return *this;
}

WinoWeights &
WinoWeights::operator*=(float s)
{
    for (auto &v : data)
        v *= s;
    return *this;
}

float
WinoWeights::maxAbsDiff(const WinoWeights &o) const
{
    winomc_assert(alpha == o.alpha && nj == o.nj && ni == o.ni,
                  "WinoWeights maxAbsDiff shape mismatch");
    float m = 0.0f;
    for (size_t k = 0; k < data.size(); ++k)
        m = std::max(m, std::abs(data[k] - o.data[k]));
    return m;
}

WinoTiles
tileMean(const std::vector<const WinoTiles *> &inputs)
{
    winomc_assert(!inputs.empty(), "mean of nothing");
    const WinoTiles &first = *inputs.front();
    WinoTiles out(first.alphaEdge(), first.channels(), first.batch(),
                  first.tiles());
    const float scale = 1.0f / float(inputs.size());
    for (const WinoTiles *in : inputs) {
        winomc_assert(in->alphaEdge() == first.alphaEdge() &&
                      in->channels() == first.channels() &&
                      in->batch() == first.batch() &&
                      in->tiles() == first.tiles(),
                      "tileMean shape mismatch");
        for (int uv = 0; uv < first.uvCount(); ++uv)
            for (int c = 0; c < first.channels(); ++c)
                for (int b = 0; b < first.batch(); ++b)
                    for (int t = 0; t < first.tiles(); ++t)
                        out.at(uv, c, b, t) +=
                            in->at(uv, c, b, t) * scale;
    }
    return out;
}

} // namespace winomc
