#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace winomc::sim {

void
EventQueue::schedule(Tick when, std::function<void()> fn)
{
    winomc_assert(when >= current, "scheduling into the past: ", when,
                  " < ", current);
    events.push(Entry{when, next_seq++, std::move(fn)});
}

void
EventQueue::scheduleAfter(Tick delay, std::function<void()> fn)
{
    schedule(current + delay, std::move(fn));
}

bool
EventQueue::runOne()
{
    if (events.empty())
        return false;
    Entry e = events.top();
    // priority_queue::top returns const ref; copy then pop (the function
    // object is small; correctness over micro-optimization here).
    events.pop();
    current = e.when;
    e.fn();
    return true;
}

void
EventQueue::run(uint64_t max_events)
{
    for (uint64_t n = 0; n < max_events && runOne(); ++n) {
    }
}

void
EventQueue::runUntil(Tick until)
{
    while (!events.empty() && events.top().when <= until)
        runOne();
    if (current < until)
        current = until;
}

void
EventQueue::reset()
{
    events = {};
    current = 0;
    next_seq = 0;
}

} // namespace winomc::sim
