/**
 * @file
 * Shape-bound Winograd execution plans.
 *
 * A WinoPlan binds one (algorithm, batch, in_ch -> out_ch, H, W)
 * configuration, precomputes the tile grid, and owns every
 * Winograd-domain slab the pipeline needs (input tiles, output tiles,
 * grad-output tiles, grad-input tiles). All stage execution goes through
 * the destination-passing kernels of winograd/conv.hh, so once a plan is
 * built, repeated training steps over the same shape perform zero heap
 * allocations in the Winograd path — the plan is the host-side analogue
 * of the paper's statically scheduled SRAM working set.
 *
 * Lifecycle: layers build a plan lazily on the first forward and rebuild
 * only when the incoming shape stops matching (matches()). The plan
 * budget is validated against WINOMC_WORKSPACE_LIMIT_MB at construction,
 * failing loudly instead of OOM-ing later.
 *
 * Thread-safety contract: a plan parallelizes *internally* (each stage
 * fans out across the common/parallel.hh pool) but is not reentrant —
 * concurrent calls into one plan race on its slabs. One plan per layer
 * (or per cluster in MPT) is the intended usage; results are bitwise
 * identical for any thread count.
 */

#ifndef WINOMC_WINOGRAD_PLAN_HH
#define WINOMC_WINOGRAD_PLAN_HH

#include "tensor/tensor.hh"
#include "winograd/algo.hh"
#include "winograd/tiling.hh"

namespace winomc {

class WinoPlan
{
  public:
    WinoPlan(const WinogradAlgo &algo, int batch, int inCh, int outCh,
             int h, int w);

    /** Does this plan cover the given execution configuration? */
    bool matches(const WinogradAlgo &algo, int batch, int inCh,
                 int outCh, int h, int w) const;

    const TileGrid &tileGrid() const { return grid; }
    int batch() const { return nb; }
    int inChannels() const { return ni; }
    int outChannels() const { return nj; }
    int height() const { return fh; }
    int width() const { return fw; }

    /** Total bytes of the plan-owned slabs (the planned working set). */
    std::size_t workspaceBytes() const;

    // -----------------------------------------------------------------
    // One-shot pipelines (the free winograd* wrappers route through
    // transient plans built on these). Each fully rewrites the slabs it
    // touches; forwardInto leaves inputTiles()/outputTiles() caching the
    // transformed activations of x.
    // -----------------------------------------------------------------

    /** y = winograd_conv(x, W); caches X and Y tiles in the plan. */
    void forwardInto(const Tensor &x, const WinoWeights &W, Tensor &y);
    /** dx from dy through the pipeline adjoint (no cached state used). */
    void backwardDataInto(const Tensor &dy, const WinoWeights &W,
                          Tensor &dx);
    /** dW (assigned, not accumulated) from x and dy. */
    void gradWeightsInto(const Tensor &x, const Tensor &dy,
                         WinoWeights &dW);

    // -----------------------------------------------------------------
    // Staged training-step API: forwardInto caches the input tiles;
    // transformGradOutput computes the grad-output tiles once, and both
    // gradient products then reuse them without re-transforming.
    // -----------------------------------------------------------------

    /** dYt = A dy A^T per tile; prerequisite of the FromCached calls. */
    void transformGradOutput(const Tensor &dy);
    /** dW (assigned) from the cached X tiles and grad-output tiles. */
    void gradWeightsFromCachedInto(WinoWeights &dW);
    /** dx from the grad-output tiles through W^T and the input adjoint. */
    void backwardDataFromCachedInto(const WinoWeights &W, Tensor &dx);

    // -----------------------------------------------------------------
    // Partial-execution access (mpt::MptConvLayer): scatter/gather move
    // between the spatial and Winograd domains; the partial element-wise
    // kernels of mpt/functional.hh then accumulate directly into the
    // plan-owned slabs. Callers zero outputTilesMutable() /
    // gradInputTilesMutable() before a fresh accumulation pass — a
    // zeroed reused slab is bitwise identical to a fresh one.
    // -----------------------------------------------------------------

    /** Xt = B^T x B per tile (marks the input cache valid). */
    void scatterInput(const Tensor &x);
    /** y = inverse transform of the (accumulated) output tiles. */
    void gatherOutputInto(Tensor &y);
    /** dYt = A dy A^T per tile (same as transformGradOutput). */
    void scatterGradOutput(const Tensor &dy) { transformGradOutput(dy); }
    /** dx = overlap-add adjoint of the (accumulated) grad-input tiles. */
    void gatherGradInputInto(Tensor &dx);

    const WinoTiles &inputTiles() const;
    const WinoTiles &outputTiles() const;
    const WinoTiles &gradOutputTiles() const;
    WinoTiles &outputTilesMutable() { return Yt; }
    WinoTiles &gradInputTilesMutable() { return dXt; }

    /** Is the input-tile cache populated (by forwardInto/scatterInput)? */
    bool inputCached() const { return haveInput; }
    /** Drop cache-validity (e.g. after an inference-only forward). */
    void invalidateCache() { haveInput = haveOutput = haveGrad = false; }

  private:
    const WinogradAlgo &alg;
    int nb, ni, nj, fh, fw;
    TileGrid grid;

    WinoTiles Xt;  ///< transformed input activations [a²][I][N][T]
    WinoTiles Yt;  ///< pre-inverse output tiles       [a²][J][N][T]
    WinoTiles dYt; ///< transformed output gradients   [a²][J][N][T]
    WinoTiles dXt; ///< Winograd-domain input grads    [a²][I][N][T]

    bool haveInput = false;  ///< Xt holds the last forward's input
    bool haveOutput = false; ///< Yt holds the last forward's output
    bool haveGrad = false;   ///< dYt holds the last backward's grads
};

} // namespace winomc

#endif // WINOMC_WINOGRAD_PLAN_HH
