/**
 * @file
 * google-benchmark timings of the numeric Winograd kernels against
 * direct convolution - the host-side counterpart of the Fig 1
 * compute-reduction story, measured on real code rather than the
 * analytic model.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "winograd/algo.hh"
#include "winograd/conv.hh"

using namespace winomc;

namespace {

struct Shapes
{
    int batch, ch, hw;
};

Shapes
shapeFor(int idx)
{
    switch (idx) {
      case 0:
        return {1, 16, 32};
      case 1:
        return {2, 32, 16};
      default:
        return {4, 8, 24};
    }
}

void
BM_DirectConv(benchmark::State &state)
{
    Shapes s = shapeFor(int(state.range(0)));
    Rng rng(1);
    Tensor x(s.batch, s.ch, s.hw, s.hw);
    Tensor w(s.ch, s.ch, 3, 3);
    x.fillUniform(rng);
    w.fillUniform(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(directConvForward(x, w));
    state.SetItemsProcessed(int64_t(state.iterations()) * s.batch *
                            s.ch * s.ch * s.hw * s.hw * 9);
}
BENCHMARK(BM_DirectConv)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void
BM_WinogradConvF2(benchmark::State &state)
{
    Shapes s = shapeFor(int(state.range(0)));
    Rng rng(1);
    Tensor x(s.batch, s.ch, s.hw, s.hw);
    Tensor w(s.ch, s.ch, 3, 3);
    x.fillUniform(rng);
    w.fillUniform(rng);
    const auto &algo = algoF2x2_3x3();
    WinoWeights W = transformWeights(w, algo);
    for (auto _ : state)
        benchmark::DoNotOptimize(winogradForward(x, W, algo));
    state.SetItemsProcessed(int64_t(state.iterations()) * s.batch *
                            s.ch * s.ch * s.hw * s.hw * 9);
}
BENCHMARK(BM_WinogradConvF2)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void
BM_WinogradConvF4(benchmark::State &state)
{
    Shapes s = shapeFor(int(state.range(0)));
    Rng rng(1);
    Tensor x(s.batch, s.ch, s.hw, s.hw);
    Tensor w(s.ch, s.ch, 3, 3);
    x.fillUniform(rng);
    w.fillUniform(rng);
    const auto &algo = algoF4x4_3x3();
    WinoWeights W = transformWeights(w, algo);
    for (auto _ : state)
        benchmark::DoNotOptimize(winogradForward(x, W, algo));
    state.SetItemsProcessed(int64_t(state.iterations()) * s.batch *
                            s.ch * s.ch * s.hw * s.hw * 9);
}
BENCHMARK(BM_WinogradConvF4)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void
BM_InputTransform(benchmark::State &state)
{
    Rng rng(1);
    Tensor x(2, 32, 32, 32);
    x.fillUniform(rng);
    const auto &algo = algoF2x2_3x3();
    for (auto _ : state)
        benchmark::DoNotOptimize(transformInput(x, algo));
}
BENCHMARK(BM_InputTransform)->Unit(benchmark::kMillisecond);

void
BM_ToomCookGenerate(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(
            makeWinograd(int(state.range(0)), int(state.range(1))));
}
BENCHMARK(BM_ToomCookGenerate)->Args({2, 3})->Args({4, 3})->Args({6, 3});

} // namespace

BENCHMARK_MAIN();
