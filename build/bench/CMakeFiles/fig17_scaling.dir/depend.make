# Empty dependencies file for fig17_scaling.
# This may be replaced when dependencies are built.
