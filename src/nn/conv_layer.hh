/**
 * @file
 * Trainable "same" 3x3/5x5 convolution layer with three execution modes:
 *
 *  - Direct:        spatial weights, direct convolution;
 *  - WinogradSpatial: spatial weights, executed through the Winograd
 *                   pipeline (Fig 2(a)) - gradients map back through the
 *                   weight-transform adjoint;
 *  - WinogradLayer: the paper's Winograd layer (Fig 2(b), [29]) - the
 *                   parameters ARE the Winograd-domain weights W and are
 *                   updated there directly.
 *
 * All three compute the same function at initialization; WinogradLayer
 * then evolves in a (slightly larger) parameter space.
 *
 * Winograd modes execute through a lazily-built WinoPlan bound to the
 * incoming shape: the plan owns every tile slab and the layer keeps its
 * gradient scratch, so steady-state training steps allocate nothing.
 */

#ifndef WINOMC_NN_CONV_LAYER_HH
#define WINOMC_NN_CONV_LAYER_HH

#include <memory>

#include "nn/module.hh"
#include "winograd/algo.hh"
#include "winograd/conv.hh"
#include "winograd/plan.hh"

namespace winomc::nn {

enum class ConvMode { Direct, WinogradSpatial, WinogradLayer };

class ConvLayer : public Module
{
  public:
    /**
     * @param in_ch, out_ch  channels
     * @param r              odd filter edge
     * @param mode           execution / weight-domain mode
     * @param algo           Winograd algorithm (ignored for Direct)
     */
    ConvLayer(int in_ch, int out_ch, int r, ConvMode mode,
              const WinogradAlgo &algo, Rng &rng);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &dy) override;
    void step(float lr) override;
    size_t paramCount() const override;
    std::string name() const override;

    ConvMode mode() const { return convMode; }
    /** Spatial weights (valid in Direct / WinogradSpatial modes). */
    const Tensor &spatialWeights() const { return w; }
    /** Winograd-domain weights (valid in Winograd modes); the shared
     *  slab when shareWinoWeights() is in effect. */
    const WinoWeights &winoWeights() const { return effectiveW(); }
    /** Cached pre-activation Winograd tiles from the last forward (for
     *  the activation-prediction experiments). */
    const WinoTiles &lastOutputTiles() const;
    /** The current execution plan (null before the first Winograd-mode
     *  forward). */
    const WinoPlan *plan() const { return execPlan.get(); }

    /**
     * Route plan leases through an external source — e.g. the serving
     * engine's shared, byte-budgeted serve::PlanCache — instead of the
     * layer's own LRU. The current plan (if any) is handed back to the
     * source it came from first. Pass nullptr to restore the internal
     * per-layer cache. The source must outlive the layer (or a final
     * setPlanSource(nullptr)).
     */
    void setPlanSource(PlanSource *src);

    /**
     * Adopt shared, frozen Winograd-domain weights (Winograd modes
     * only): the layer serves forwards from *shared instead of its own
     * W, so replicas of one model skip the per-replica weight
     * transform entirely (the serving plan cache hands every replica
     * the same transformed slab). The layer becomes inference-only —
     * step() on a shared layer dies. Pass nullptr to return to the
     * layer-owned weights.
     */
    void shareWinoWeights(std::shared_ptr<const WinoWeights> shared);

  private:
    /** (Re)lease execPlan iff the incoming shape stopped matching. */
    void ensurePlan(const Tensor &x);

    /** The active plan source (external override or the own LRU). */
    PlanSource &planSourceRef()
    {
        return planSrc ? *planSrc : planCache;
    }

    /** Winograd-domain weights to execute with (shared or own). */
    const WinoWeights &effectiveW() const
    {
        return sharedW ? *sharedW : W;
    }

    int inCh, outCh, r;
    ConvMode convMode;
    const WinogradAlgo &algo;

    Tensor w;       ///< spatial parameters (Direct / WinogradSpatial)
    Tensor dw;      ///< spatial gradient
    WinoWeights W;  ///< Winograd-domain parameters (Winograd modes)
    WinoWeights dW; ///< Winograd-domain gradient
    bool haveGrad = false;

    std::unique_ptr<WinoPlan> execPlan; ///< shape-bound slabs + grid
    PlanLru planCache;        ///< parks displaced plans (shape churn)
    PlanSource *planSrc = nullptr; ///< external override, else planCache
    std::shared_ptr<const WinoWeights> sharedW; ///< frozen shared weights
    WinoWeights gScratch; ///< per-step Winograd weight-grad scratch
    Tensor dwScratch;     ///< per-step spatial weight-grad scratch

    Tensor cachedX;    ///< input (Direct mode / fused train backward)
    /** True iff the activations the backward pass needs were cached by
     *  a train-mode forward and not clobbered since. */
    bool trainCached = false;
    /** True iff the last train-mode Winograd forward ran fused: the
     *  plan's input tiles are then NOT cached and backward rebuilds
     *  them from cachedX before the weight-gradient product. */
    bool usedFusedForward = false;
    int lastH = 0, lastW = 0;
};

} // namespace winomc::nn

#endif // WINOMC_NN_CONV_LAYER_HH
