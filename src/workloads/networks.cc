#include "workloads/networks.hh"

namespace winomc::workloads {

uint64_t
NetworkSpec::paramCount() const
{
    uint64_t n = 0;
    for (const auto &l : layers)
        n += l.weightElems();
    return n;
}

namespace {

void
repeatConv(std::vector<ConvSpec> &out, const std::string &prefix,
           int count, int batch, int in_ch, int out_ch, int hw)
{
    for (int k = 0; k < count; ++k) {
        ConvSpec s;
        s.name = prefix + "_" + std::to_string(k);
        s.batch = batch;
        s.inCh = k == 0 ? in_ch : out_ch;
        s.outCh = out_ch;
        s.h = hw;
        s.w = hw;
        s.r = 3;
        out.push_back(s);
    }
}

} // namespace

NetworkSpec
wideResnet40_10(int batch)
{
    // Depth 40 = 6n+4 with n=6: three groups of 6 basic blocks
    // (2 convs each), widths 160/320/640 at 32/16/8.
    NetworkSpec net;
    net.name = "WRN-40-10";
    net.dataset = "CIFAR";
    repeatConv(net.layers, "g1", 12, batch, 16, 160, 32);
    repeatConv(net.layers, "g2", 12, batch, 160, 320, 16);
    repeatConv(net.layers, "g3", 12, batch, 320, 640, 8);
    return net;
}

NetworkSpec
resnet34(int batch)
{
    NetworkSpec net;
    net.name = "ResNet-34";
    net.dataset = "ImageNet";
    repeatConv(net.layers, "conv2", 6, batch, 64, 64, 56);
    repeatConv(net.layers, "conv3", 8, batch, 64, 128, 28);
    repeatConv(net.layers, "conv4", 12, batch, 128, 256, 14);
    repeatConv(net.layers, "conv5", 6, batch, 256, 512, 7);
    return net;
}

NetworkSpec
fractalNet(int batch)
{
    // 4 blocks, 4 columns: a block with C columns holds
    // sum_{c=1..C} 2^(c-1) = 15 convolutions; column depth varies but
    // every conv in block b has the block's width and feature size.
    NetworkSpec net;
    net.name = "FractalNet";
    net.dataset = "ImageNet";
    const int widths[4] = {128, 256, 512, 1024};
    const int sizes[4] = {56, 28, 14, 7};
    int in_ch = 64; // stem output
    for (int b = 0; b < 4; ++b) {
        repeatConv(net.layers, "block" + std::to_string(b + 1), 15,
                   batch, in_ch, widths[b], sizes[b]);
        in_ch = widths[b];
    }
    return net;
}

NetworkSpec
vgg16(int batch)
{
    NetworkSpec net;
    net.name = "VGG-16";
    net.dataset = "ImageNet";
    repeatConv(net.layers, "conv1", 2, batch, 3, 64, 224);
    repeatConv(net.layers, "conv2", 2, batch, 64, 128, 112);
    repeatConv(net.layers, "conv3", 3, batch, 128, 256, 56);
    repeatConv(net.layers, "conv4", 3, batch, 256, 512, 28);
    repeatConv(net.layers, "conv5", 3, batch, 512, 512, 14);
    return net;
}

std::vector<NetworkSpec>
tableOneNetworks(int batch)
{
    return {wideResnet40_10(batch), resnet34(batch), fractalNet(batch)};
}

} // namespace winomc::workloads
