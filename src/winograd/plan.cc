#include "winograd/plan.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/metrics.hh"
#include "common/parallel.hh"
#include "common/perfcounters.hh"
#include "common/trace.hh"
#include "winograd/conv.hh"
#include "winograd/cost.hh"
#include "winograd/microkernel.hh"

namespace winomc {

namespace {

/**
 * Strip scratch budget: one input-side plus one output-side panel set
 * per worker should sit inside a typical L2 slice, so a whole strip's
 * transform -> accumulate -> inverse chain runs without round trips to
 * DRAM. Strips are whole tile panels; tiny grids collapse to one
 * panel-sized strip.
 */
constexpr std::size_t kStripScratchBytes = 512 * 1024;

/**
 * Auto-mode threshold: fuse once the staged pipeline's forward slabs
 * (Xt + Yt) overflow this. Below it the slabs are cache-resident
 * anyway and the staged path's tile caches come for free.
 */
constexpr std::size_t kFusedAutoMinSlabBytes = 1u << 20;

std::atomic<int> gFusedMode{-1}; ///< -1 = unresolved (parse env once)

/** RAII throughput probe for the fused phases (same contract as the
 *  staged StageTimer in conv.cc). */
class FusedTimer
{
  public:
    FusedTimer(const char *stage, double flops)
        : stage(stage), flops(flops), active(metrics::enabled())
    {
        if (active) {
            start = std::chrono::steady_clock::now();
            perf0 = perf::read();
        }
    }
    ~FusedTimer()
    {
        if (active) {
            std::chrono::duration<double> d =
                std::chrono::steady_clock::now() - start;
            mk::publishStageMetrics(stage, d.count(), flops);
            perf::publishStage(stage, perf0);
        }
    }
    FusedTimer(const FusedTimer &) = delete;
    FusedTimer &operator=(const FusedTimer &) = delete;

  private:
    const char *stage;
    double flops;
    bool active;
    std::chrono::steady_clock::time_point start;
    perf::Reading perf0;
};

} // namespace

const char *
fusedModeName(FusedMode m)
{
    switch (m) {
      case FusedMode::Off:
        return "off";
      case FusedMode::Auto:
        return "auto";
      case FusedMode::On:
        return "on";
    }
    return "auto";
}

FusedMode
parseFusedMode(const char *str)
{
    if (!str || !*str)
        return FusedMode::Auto;
    std::string s;
    for (const char *p = str; *p; ++p)
        if (!std::isspace(static_cast<unsigned char>(*p)))
            s += char(std::tolower(static_cast<unsigned char>(*p)));
    if (s == "auto")
        return FusedMode::Auto;
    if (s == "on")
        return FusedMode::On;
    if (s == "off")
        return FusedMode::Off;
    winomc_warn("ignoring unrecognized WINOMC_FUSED '", str,
                "' (want auto|on|off)");
    return FusedMode::Auto;
}

FusedMode
requestedFusedMode()
{
    int m = gFusedMode.load(std::memory_order_acquire);
    if (m < 0) {
        // Benign race: concurrent first calls parse the same env var.
        m = int(parseFusedMode(std::getenv("WINOMC_FUSED")));
        gFusedMode.store(m, std::memory_order_release);
    }
    return FusedMode(m);
}

void
setFusedMode(FusedMode m)
{
    gFusedMode.store(int(m), std::memory_order_release);
}

WinoPlan::WinoPlan(const WinogradAlgo &algo, int batch, int inCh,
                   int outCh, int h, int w)
    : alg(algo), nb(batch), ni(inCh), nj(outCh), fh(h), fw(w),
      grid(h, w, algo), pol(currentExecPolicy())
{
    winomc_assert(batch > 0 && inCh > 0 && outCh > 0,
                  "degenerate WinoPlan configuration");
    // Validate the planned working set against the workspace budget
    // before touching the pool, so an oversized shape dies with a clear
    // message instead of an OOM mid-pipeline.
    const std::size_t perUv =
        std::size_t(algo.alpha) * algo.alpha * batch * grid.tiles();
    ws::checkBudget(perUv * (2 * std::size_t(inCh + outCh)) *
                        sizeof(float),
                    "WinoPlan(" + std::to_string(batch) + "x" +
                        std::to_string(inCh) + "->" +
                        std::to_string(outCh) + "@" + std::to_string(h) +
                        "x" + std::to_string(w) + ")");
    Xt.reshape(algo.alpha, inCh, batch, grid.tiles());
    Yt.reshape(algo.alpha, outCh, batch, grid.tiles());
    dYt.reshape(algo.alpha, outCh, batch, grid.tiles());
    dXt.reshape(algo.alpha, inCh, batch, grid.tiles());
    // Policy-dependent slabs: the 16-bit input tiles replace Xt on the
    // staged half forward, the activation zero mask feeds the sparse
    // elementwise kernels. Both are sized here so policy execution
    // keeps the zero-steady-state-allocation contract.
    if (pol.prec != Prec::F32)
        Xh.reshape(algo.alpha, inCh, batch, grid.tiles());
    if (pol.sparse)
        actMask.reshape(algo.alpha * algo.alpha, inCh, batch,
                        grid.tiles());

    // Fused strip geometry: whole tile panels, sized so one worker's
    // in+out scratch fits kStripScratchBytes, clamped to [one panel,
    // the panel-rounded grid].
    const std::size_t a2 = std::size_t(algo.alpha) * algo.alpha;
    const std::size_t perTile = a2 * std::size_t(inCh + outCh) *
                                sizeof(float);
    int t = int(kStripScratchBytes / perTile);
    // Weight-amortization floor: each strip re-streams the whole
    // Winograd weight slab (a^2*I*J floats), while fusing saves one
    // write+read round trip of the strip's slab share (a^2*(I+J)*
    // stripT floats each way). Keeping the re-stream at <= 1/4 of the
    // saving needs stripT >= 2*I*J/(I+J) — without this floor, heavy
    // channel counts shrink strips until weight traffic eats the win.
    const int amort = 2 * inCh * outCh / (inCh + outCh);
    t = std::max(t, amort);
    t = ((t + mk::kTilePanel - 1) / mk::kTilePanel) * mk::kTilePanel;
    const int ntPanels =
        ((grid.tiles() + mk::kTilePanel - 1) / mk::kTilePanel) *
        mk::kTilePanel;
    stripT = std::clamp(t, mk::kTilePanel, ntPanels);

    // Exact in-bounds gather footprint of one (image, channel) plane,
    // for the measured-traffic counters.
    const int a = algo.alpha;
    for (int th = 0; th < grid.tilesH; ++th) {
        const int r0 = grid.tileRow(th);
        const int rows = std::min(r0 + a, h) - std::max(r0, 0);
        for (int tw = 0; tw < grid.tilesW; ++tw) {
            const int c0 = grid.tileCol(tw);
            const int cols = std::min(c0 + a, w) - std::max(c0, 0);
            gatherElemsA += std::size_t(rows) * cols;
        }
    }
}

bool
WinoPlan::matches(const WinogradAlgo &algo, int batch, int inCh,
                  int outCh, int h, int w) const
{
    return &algo == &alg && batch == nb && inCh == ni && outCh == nj &&
           h == fh && w == fw && pol == currentExecPolicy();
}

std::size_t
WinoPlan::workspaceBytes() const
{
    std::size_t stripBytes = 0;
    for (const auto &s : stripSlots)
        stripBytes += (s->in.size() + s->out.size()) * sizeof(float) +
                      s->inHalf.size() * sizeof(std::uint16_t) +
                      s->mask.wordCount() * sizeof(std::uint64_t);
    return (Xt.size() + Yt.size() + dYt.size() + dXt.size()) *
               sizeof(float) +
           Xh.size() * sizeof(std::uint16_t) +
           actMask.wordCount() * sizeof(std::uint64_t) + stripBytes;
}

bool
WinoPlan::fusedSupported() const
{
    // The strip kernels cover every "same"-conv configuration a plan
    // accepts today; the hook stays for future constraints (strides,
    // grouped layouts).
    return true;
}

bool
WinoPlan::shouldFuse(bool preserveTileCaches) const
{
    switch (requestedFusedMode()) {
      case FusedMode::Off:
        return false;
      case FusedMode::On:
        return fusedSupported();
      case FusedMode::Auto:
        break;
    }
    if (!fusedSupported() || preserveTileCaches)
        return false;
    // Fuse once the staged forward slabs overflow cache; below that,
    // staged is already cache-resident and keeps its tile caches.
    return (Xt.size() + Yt.size()) * sizeof(float) >=
           kFusedAutoMinSlabBytes;
}

WinoPlan::StripScratch *
WinoPlan::acquireStripSlot()
{
    std::lock_guard<std::mutex> lk(stripMu);
    if (stripFree.empty()) {
        auto s = std::make_unique<StripScratch>();
        s->in.reshape(alg.alpha, ni, 1, stripT);
        s->out.reshape(alg.alpha, nj, 1, stripT);
        if (pol.prec != Prec::F32)
            s->inHalf.reshape(alg.alpha, ni, 1, stripT);
        if (pol.sparse)
            s->mask.reshape(alg.alpha * alg.alpha, ni, 1, stripT);
        stripSlots.push_back(std::move(s));
        return stripSlots.back().get();
    }
    StripScratch *s = stripFree.back();
    stripFree.pop_back();
    return s;
}

void
WinoPlan::releaseStripSlot(StripScratch *s)
{
    std::lock_guard<std::mutex> lk(stripMu);
    stripFree.push_back(s);
}

void
WinoPlan::ensureStripSlots(int n)
{
    // Pre-build the worst-case concurrent slot count before entering
    // the parallel region. Lazy growth inside acquireStripSlot would
    // still be correct, but how many workers are simultaneously awake
    // varies run to run — growing the pool up front keeps the
    // zero-steady-state-allocation contract deterministic instead of
    // dependent on the warm-up call's scheduling luck.
    std::lock_guard<std::mutex> lk(stripMu);
    while (int(stripSlots.size()) < n) {
        auto s = std::make_unique<StripScratch>();
        s->in.reshape(alg.alpha, ni, 1, stripT);
        s->out.reshape(alg.alpha, nj, 1, stripT);
        if (pol.prec != Prec::F32)
            s->inHalf.reshape(alg.alpha, ni, 1, stripT);
        if (pol.sparse)
            s->mask.reshape(alg.alpha * alg.alpha, ni, 1, stripT);
        stripFree.push_back(s.get());
        stripSlots.push_back(std::move(s));
    }
}

void
WinoPlan::publishTraffic(const char *mode, const char *phase,
                         double xformBytes, double ewBytes,
                         double invBytes, double predictedBytes) const
{
    std::string base = "wino.";
    base += mode;
    base += '.';
    base += phase;
    metrics::counterAdd((base + ".xform_bytes").c_str(), xformBytes);
    metrics::counterAdd((base + ".ew_bytes").c_str(), ewBytes);
    metrics::counterAdd((base + ".inverse_bytes").c_str(), invBytes);
    metrics::counterAdd((base + ".bytes_moved").c_str(),
                        xformBytes + ewBytes + invBytes);
    metrics::counterAdd((base + ".calls").c_str(), 1.0);
    metrics::gaugeSet((base + ".predicted_bytes").c_str(),
                      predictedBytes);
}

void
WinoPlan::forwardInto(const Tensor &x, const WinoWeights &W, Tensor &y)
{
    WINOMC_SPAN("wino.phase.fwd", "wino");
    const bool half = pol.prec != Prec::F32;
    const int hk =
        pol.prec == Prec::F16 ? mk::kHalfF16 : mk::kHalfBf16;
    if (half) {
        ActMask *m = pol.sparse ? &actMask : nullptr;
        transformInputHalfInto(x, alg, Xh, hk, m);
        elementwiseForwardHalfInto(Xh, W, Yt, hk, m);
        // The fp32 Xt slab was bypassed; tile-cache consumers must
        // scatterInput (backward stays full fp32).
        haveInput = false;
    } else if (pol.sparse) {
        transformInputMaskInto(x, alg, Xt, actMask);
        elementwiseForwardSparseInto(Xt, W, Yt, actMask);
        haveInput = true; // Xt is the same fp32 slab, bitwise
    } else {
        transformInputInto(x, alg, Xt);
        elementwiseForwardInto(Xt, W, Yt);
        haveInput = true;
    }
    inverseTransformInto(Yt, alg, y);
    haveOutput = true;
    if (metrics::enabled()) {
        const ConvSpec spec{"plan", nb, ni, nj, fh, fw, alg.r};
        const double out = double(nb) * nj * fh * fw;
        const double f = double(sizeof(float));
        const double xb = double(precBytes(pol.prec)); // X-tile stream
        publishTraffic(
            "staged", "fwd",
            double(gatherElemsA) * nb * ni * f + double(Xt.size()) * xb,
            double(Xt.size()) * xb +
                (double(W.size()) + double(Yt.size())) * f,
            (double(Yt.size()) + out) * f,
            double(predictedTrafficBytes(spec, alg, Phase::Fprop, false)
                       .totalBytes()));
    }
}

void
WinoPlan::forwardFusedInto(const Tensor &x, const WinoWeights &W,
                           Tensor &y)
{
    WINOMC_SPAN("wino.fused.fwd", "wino");
    winomc_assert(x.n() == nb && x.c() == ni && x.h() == fh &&
                  x.w() == fw, "forwardFusedInto input shape mismatch");
    winomc_assert(y.n() == nb && y.c() == nj && y.h() == fh &&
                  y.w() == fw, "forwardFusedInto output shape mismatch");
    winomc_assert(W.alphaEdge() == alg.alpha && W.inChannels() == ni &&
                  W.outChannels() == nj,
                  "forwardFusedInto weight shape mismatch");
    const int nt = grid.tiles();
    const int nStrips = stripCount();
    const int a = alg.alpha;
    const int m = alg.m;
    FusedTimer probe("fused.fwd",
                     4.0 * a * a * a * double(nb) * ni * nt +
                         2.0 * a * a * double(nj) * ni * nb * nt +
                         2.0 * m * a * (a + m) * double(nb) * nj * nt);

    const std::int64_t nTasks = std::int64_t(nb) * nStrips;
    ensureStripSlots(int(std::min<std::int64_t>(
        ThreadPool::global().threadCount(), nTasks)));
    const bool half = pol.prec != Prec::F32;
    const int hk =
        pol.prec == Prec::F16 ? mk::kHalfF16 : mk::kHalfBf16;
    // One task per (image, strip); output tiles are disjoint across
    // tasks, so any chunking is race-free and bitwise identical.
    parallelFor(0, nTasks, 1,
                [&](std::int64_t lo, std::int64_t hi) {
        StripScratch *s = acquireStripSlot();
        for (std::int64_t task = lo; task < hi; ++task) {
            const int b = int(task / nStrips);
            const int t0 = int(task % nStrips) * stripT;
            const int tcnt = std::min(stripT, nt - t0);
            if (half) {
                ActMask *m = pol.sparse ? &s->mask : nullptr;
                transformInputStripHalf(x, alg, grid, b, t0, tcnt,
                                        s->inHalf, hk, m);
                elementwiseForwardStripHalf(s->inHalf, W, tcnt, s->out,
                                            hk, m);
            } else if (pol.sparse) {
                transformInputStripMask(x, alg, grid, b, t0, tcnt,
                                        s->in, s->mask);
                elementwiseForwardStripSparse(s->in, W, tcnt, s->out,
                                              s->mask);
            } else {
                transformInputStrip(x, alg, grid, b, t0, tcnt, s->in);
                elementwiseForwardStrip(s->in, W, tcnt, s->out);
            }
            inverseTransformStrip(s->out, alg, grid, b, t0, tcnt, y);
        }
        releaseStripSlot(s);
    });
    // The slabs were bypassed; previously cached tiles are now stale.
    haveInput = haveOutput = false;
    if (metrics::enabled()) {
        const ConvSpec spec{"plan", nb, ni, nj, fh, fw, alg.r};
        const double f = double(sizeof(float));
        publishTraffic(
            "fused", "fwd", double(gatherElemsA) * nb * ni * f,
            double(W.size()) * nb * nStrips * f,
            double(nb) * nj * fh * fw * f,
            double(predictedTrafficBytes(spec, alg, Phase::Fprop, true,
                                         nStrips)
                       .totalBytes()));
    }
}

void
WinoPlan::backwardDataInto(const Tensor &dy, const WinoWeights &W,
                           Tensor &dx)
{
    WINOMC_SPAN("wino.phase.bwd_data", "wino");
    inverseTransformAdjointInto(dy, alg, dYt);
    haveGrad = true;
    elementwiseBackwardDataInto(dYt, W, dXt);
    transformInputAdjointInto(dXt, alg, dx);
    if (metrics::enabled()) {
        const ConvSpec spec{"plan", nb, ni, nj, fh, fw, alg.r};
        const double outPlane = double(nb) * nj * fh * fw;
        const double inPlane = double(nb) * ni * fh * fw;
        const double addSweep = double(gatherElemsA) * nb * ni;
        const double f = double(sizeof(float));
        publishTraffic(
            "staged", "bwd_data", (outPlane + double(dYt.size())) * f,
            (double(dYt.size()) + double(W.size()) +
             double(dXt.size())) *
                f,
            (double(dXt.size()) + inPlane + 2.0 * addSweep) * f,
            double(predictedTrafficBytes(spec, alg, Phase::Bprop, false)
                       .totalBytes()));
    }
}

void
WinoPlan::backwardDataFusedInto(const Tensor &dy, const WinoWeights &W,
                                Tensor &dx)
{
    WINOMC_SPAN("wino.fused.bwd_data", "wino");
    winomc_assert(dy.n() == nb && dy.c() == nj && dy.h() == fh &&
                  dy.w() == fw,
                  "backwardDataFusedInto grad shape mismatch");
    winomc_assert(dx.n() == nb && dx.c() == ni && dx.h() == fh &&
                  dx.w() == fw,
                  "backwardDataFusedInto output shape mismatch");
    winomc_assert(W.alphaEdge() == alg.alpha && W.inChannels() == ni &&
                  W.outChannels() == nj,
                  "backwardDataFusedInto weight shape mismatch");
    const int nt = grid.tiles();
    const int nStrips = stripCount();
    const int a = alg.alpha;
    const int m = alg.m;
    FusedTimer probe("fused.bwd_data",
                     2.0 * m * a * (a + m) * double(nb) * nj * nt +
                         2.0 * a * a * double(nj) * ni * nb * nt +
                         4.0 * a * a * a * double(nb) * ni * nt);

    ensureStripSlots(
        std::min(ThreadPool::global().threadCount(), nb));
    // Overlap-add races across strips of one image, so the batch axis
    // is the parallel unit and strips run serially in ascending order
    // per image — the same summation order as the staged adjoint, so
    // any thread count is bitwise identical to serial.
    const std::size_t planeSz = std::size_t(ni) * fh * fw;
    parallelFor(0, nb, 1, [&](std::int64_t lo, std::int64_t hi) {
        StripScratch *s = acquireStripSlot();
        for (std::int64_t b = lo; b < hi; ++b) {
            float *dxb = dx.data() + std::size_t(b) * planeSz;
            std::fill(dxb, dxb + planeSz, 0.0f); // overlap-add target
            for (int strip = 0; strip < nStrips; ++strip) {
                const int t0 = strip * stripT;
                const int tcnt = std::min(stripT, nt - t0);
                inverseTransformAdjointStrip(dy, alg, grid, int(b), t0,
                                             tcnt, s->out);
                elementwiseBackwardDataStrip(s->out, W, tcnt, s->in);
                transformInputAdjointStripAdd(s->in, alg, grid, int(b),
                                              t0, tcnt, dx);
            }
        }
        releaseStripSlot(s);
    });
    if (metrics::enabled()) {
        const ConvSpec spec{"plan", nb, ni, nj, fh, fw, alg.r};
        const double addSweep = double(gatherElemsA) * nb * ni;
        const double f = double(sizeof(float));
        publishTraffic(
            "fused", "bwd_data", double(nb) * nj * fh * fw * f,
            double(W.size()) * nb * nStrips * f,
            (double(nb) * ni * fh * fw + 2.0 * addSweep) * f,
            double(predictedTrafficBytes(spec, alg, Phase::Bprop, true,
                                         nStrips)
                       .totalBytes()));
    }
}

void
WinoPlan::gradWeightsInto(const Tensor &x, const Tensor &dy,
                          WinoWeights &dW)
{
    WINOMC_SPAN("wino.phase.grad_weights", "wino");
    transformInputInto(x, alg, Xt);
    haveInput = true;
    inverseTransformAdjointInto(dy, alg, dYt);
    haveGrad = true;
    elementwiseGradWeightsInto(dYt, Xt, dW);
}

void
WinoPlan::transformGradOutput(const Tensor &dy)
{
    inverseTransformAdjointInto(dy, alg, dYt);
    haveGrad = true;
}

void
WinoPlan::gradWeightsFromCachedInto(WinoWeights &dW)
{
    winomc_assert(haveInput && haveGrad,
                  "gradWeightsFromCachedInto without cached forward "
                  "tiles and transformed grad-output");
    elementwiseGradWeightsInto(dYt, Xt, dW);
}

void
WinoPlan::backwardDataFromCachedInto(const WinoWeights &W, Tensor &dx)
{
    winomc_assert(haveGrad, "backwardDataFromCachedInto before "
                            "transformGradOutput");
    elementwiseBackwardDataInto(dYt, W, dXt);
    transformInputAdjointInto(dXt, alg, dx);
}

void
WinoPlan::scatterInput(const Tensor &x)
{
    transformInputInto(x, alg, Xt);
    haveInput = true;
}

void
WinoPlan::gatherOutputInto(Tensor &y)
{
    inverseTransformInto(Yt, alg, y);
    haveOutput = true;
}

void
WinoPlan::gatherGradInputInto(Tensor &dx)
{
    transformInputAdjointInto(dXt, alg, dx);
}

const WinoTiles &
WinoPlan::inputTiles() const
{
    winomc_assert(haveInput, "input tiles not populated");
    return Xt;
}

const WinoTiles &
WinoPlan::outputTiles() const
{
    winomc_assert(haveOutput,
                  "output tiles not populated (a fused forward bypasses "
                  "the tile slabs; tile-cache consumers need the staged "
                  "path, i.e. WINOMC_FUSED=auto or off)");
    return Yt;
}

const WinoTiles &
WinoPlan::gradOutputTiles() const
{
    winomc_assert(haveGrad, "grad-output tiles not populated");
    return dYt;
}

// ------------------------------------------------------------- PlanLru

PlanLru::PlanLru(int capacity) : cap(capacity)
{
    winomc_assert(capacity >= 1, "PlanLru needs capacity >= 1, got ",
                  capacity);
}

std::unique_ptr<WinoPlan>
PlanLru::acquirePlan(const WinogradAlgo &algo, int batch, int inCh,
                     int outCh, int h, int w)
{
    for (std::size_t i = 0; i < pool.size(); ++i) {
        if (pool[i]->matches(algo, batch, inCh, outCh, h, w)) {
            std::unique_ptr<WinoPlan> p = std::move(pool[i]);
            pool.erase(pool.begin() + long(i));
            // The parked plan's tile caches describe whatever forward
            // ran before it was displaced — never valid for the lease.
            p->invalidateCache();
            return p;
        }
    }
    return std::make_unique<WinoPlan>(algo, batch, inCh, outCh, h, w);
}

void
PlanLru::releasePlan(std::unique_ptr<WinoPlan> plan)
{
    if (!plan)
        return;
    pool.insert(pool.begin(), std::move(plan));
    if (int(pool.size()) > cap)
        pool.pop_back(); // evict LRU; slabs return to the workspace
}

// ------------------------------------------------- DWM decomposition

namespace {

/** Per-dimension decomposition units: (phase, chunk) pairs. */
struct DimUnit
{
    int ph, chunk;
};

std::vector<DimUnit>
decomposeDim(int k, int stride)
{
    std::vector<DimUnit> units;
    for (int ph = 0; ph < stride; ++ph) {
        const int taps = (k - ph + stride - 1) / stride;
        for (int c = 0; c < (taps + 2) / 3; ++c)
            units.push_back({ph, c});
    }
    return units;
}

} // namespace

std::vector<DecompTerm>
decomposeSpec(const ConvSpec &spec)
{
    const std::vector<DimUnit> rows =
        decomposeDim(spec.kernelH(), spec.strideH);
    const std::vector<DimUnit> cols =
        decomposeDim(spec.kernelW(), spec.strideW);
    std::vector<DecompTerm> terms;
    terms.reserve(rows.size() * cols.size());
    for (const DimUnit &ru : rows) {
        for (const DimUnit &cu : cols) {
            DecompTerm t;
            t.phR = ru.ph;
            t.chunkR = ru.chunk;
            t.phC = cu.ph;
            t.chunkC = cu.chunk;
            t.offR = spec.strideH * (3 * ru.chunk + 1) + ru.ph -
                     spec.padHEff();
            t.offC = spec.strideW * (3 * cu.chunk + 1) + cu.ph -
                     spec.padWEff();
            terms.push_back(t);
        }
    }
    return terms;
}

bool
decompSupported(const ConvSpec &spec)
{
    return spec.kernelH() >= 1 && spec.kernelH() <= 11 &&
           spec.kernelW() >= 1 && spec.kernelW() <= 11 &&
           spec.strideH >= 1 && spec.strideH <= 3 && spec.strideW >= 1 &&
           spec.strideW <= 3 && spec.h >= spec.kernelH() &&
           spec.w >= spec.kernelW() && spec.outH() >= 1 &&
           spec.outW() >= 1;
}

WinoDecompPlan::WinoDecompPlan(const ConvSpec &spec,
                               const WinogradAlgo &unit)
    : sp(spec), alg(unit), units(decomposeSpec(spec)),
      kerScratch(spec.outCh, spec.inCh, 3, 3),
      xGather(spec.batch, spec.inCh, spec.outH() + 2, spec.outW() + 2),
      yTerm(spec.batch, spec.outCh, spec.outH() + 2, spec.outW() + 2)
{
    winomc_assert(unit.r == 3, "decomposition terms are 3-tap units; "
                               "got an r=", unit.r, " algorithm");
    winomc_assert(decompSupported(spec),
                  "geometry not decomposable: ", spec.key());
    unitW.reserve(units.size());
    for (std::size_t u = 0; u < units.size(); ++u)
        unitW.emplace_back(alg.alpha, sp.outCh, sp.inCh);
    inner = std::make_unique<WinoPlan>(alg, sp.batch, sp.inCh, sp.outCh,
                                       sp.outH() + 2, sp.outW() + 2);
}

bool
WinoDecompPlan::matches(const ConvSpec &spec,
                        const WinogradAlgo &unit) const
{
    // The inner plan carries the ExecPolicy; delegating to its
    // matches() (via policy()) keeps decomposed execution rebuilding
    // across WINOMC_PREC / WINOMC_SPARSE flips like plain plans do.
    return &unit == &alg && spec.batch == sp.batch &&
           spec.inCh == sp.inCh && spec.outCh == sp.outCh &&
           spec.h == sp.h && spec.w == sp.w &&
           spec.kernelH() == sp.kernelH() &&
           spec.kernelW() == sp.kernelW() &&
           spec.strideH == sp.strideH && spec.strideW == sp.strideW &&
           spec.padHEff() == sp.padHEff() &&
           spec.padWEff() == sp.padWEff() &&
           inner->policy() == currentExecPolicy();
}

std::size_t
WinoDecompPlan::workspaceBytes() const
{
    std::size_t elems =
        kerScratch.size() + xGather.size() + yTerm.size();
    for (const WinoWeights &w : unitW)
        elems += w.size();
    return inner->workspaceBytes() + elems * sizeof(float);
}

void
WinoDecompPlan::setWeights(const Tensor &w)
{
    winomc_assert(w.n() == sp.outCh && w.c() == sp.inCh &&
                      w.h() == sp.kernelH() && w.w() == sp.kernelW(),
                  "decomposition weights mismatch the spec: got ",
                  w.n(), "x", w.c(), "x", w.h(), "x", w.w());
    const int kh = sp.kernelH();
    const int kw = sp.kernelW();
    for (std::size_t u = 0; u < units.size(); ++u) {
        const DecompTerm &t = units[u];
        for (int j = 0; j < sp.outCh; ++j) {
            for (int i = 0; i < sp.inCh; ++i) {
                for (int jr = 0; jr < 3; ++jr) {
                    const int ar =
                        sp.strideH * (3 * t.chunkR + jr) + t.phR;
                    for (int jc = 0; jc < 3; ++jc) {
                        const int ac =
                            sp.strideW * (3 * t.chunkC + jc) + t.phC;
                        kerScratch.at(j, i, jr, jc) =
                            (ar < kh && ac < kw) ? w.at(j, i, ar, ac)
                                                 : 0.0f;
                    }
                }
            }
        }
        transformWeightsInto(kerScratch, alg, unitW[u]);
    }
    haveWeights = true;
}

void
WinoDecompPlan::forwardInto(const Tensor &x, Tensor &y)
{
    WINOMC_SPAN("decomp.fwd", "wino");
    winomc_assert(haveWeights,
                  "WinoDecompPlan::forwardInto before setWeights");
    winomc_assert(x.n() == sp.batch && x.c() == sp.inCh &&
                      x.h() == sp.h && x.w() == sp.w,
                  "input mismatches the decomposed plan's spec");
    const int oh = sp.outH();
    const int ow = sp.outW();
    winomc_assert(y.n() == sp.batch && y.c() == sp.outCh &&
                      y.h() == oh && y.w() == ow,
                  "output mismatches the decomposed plan's spec");
    const int gh = oh + 2;
    const int gw = ow + 2;
    const int sH = sp.strideH;
    const int sW = sp.strideW;
    const auto &K = mk::kernels();

    y.fill(0.0f);
    // Terms run serially and accumulate in list order: the sum's
    // floating-point order is fixed regardless of thread count, and
    // each term is bitwise identical staged or fused (the inner
    // plan's own contract), so the whole decomposition is bitwise
    // reproducible.
    for (std::size_t u = 0; u < units.size(); ++u) {
        const DecompTerm &t = units[u];

        // Gather the term's strided view, one (image, channel) plane
        // per task: xg[i', j'] = x_zeroext[sH*(i'-1) + offR,
        // sW*(j'-1) + offC]. The 1-deep border carries real data
        // where available — the inner pipeline's own "same" padding
        // applies only outside the gathered map, and the border rows
        // of the term output are cropped below.
        const float *xbase = x.data();
        float *gbase = xGather.data();
        parallelFor(0, std::int64_t(sp.batch) * sp.inCh, 1,
                    [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t bi = lo; bi < hi; ++bi) {
                const float *xplane =
                    xbase + std::size_t(bi) * sp.h * sp.w;
                float *gplane = gbase + std::size_t(bi) * gh * gw;
                for (int gi = 0; gi < gh; ++gi) {
                    float *grow = gplane + std::size_t(gi) * gw;
                    const int iy = sH * (gi - 1) + t.offR;
                    if (iy < 0 || iy >= sp.h) {
                        std::fill(grow, grow + gw, 0.0f);
                        continue;
                    }
                    const float *xrow = xplane + std::size_t(iy) * sp.w;
                    if (sW == 1) {
                        // Contiguous span fast path: gj maps to
                        // ix = gj - 1 + offC.
                        const int lo2 = std::max(0, 1 - t.offC);
                        const int hi2 =
                            std::min(gw, sp.w + 1 - t.offC);
                        std::fill(grow, grow + std::min(gw, lo2), 0.0f);
                        if (hi2 > lo2)
                            std::memcpy(grow + lo2,
                                        xrow + lo2 - 1 + t.offC,
                                        std::size_t(hi2 - lo2) *
                                            sizeof(float));
                        if (hi2 < gw)
                            std::fill(grow + std::max(lo2, hi2),
                                      grow + gw, 0.0f);
                    } else {
                        for (int gj = 0; gj < gw; ++gj) {
                            const int ix = sW * (gj - 1) + t.offC;
                            grow[gj] = (ix >= 0 && ix < sp.w)
                                           ? xrow[ix]
                                           : 0.0f;
                        }
                    }
                }
            }
        });

        if (inner->shouldFuse(false))
            inner->forwardFusedInto(xGather, unitW[u], yTerm);
        else
            inner->forwardInto(xGather, unitW[u], yTerm);
        inner->invalidateCache();

        // Crop-accumulate the term's interior into y.
        const float *tbase = yTerm.data();
        float *ybase = y.data();
        parallelFor(0, std::int64_t(sp.batch) * sp.outCh, 1,
                    [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t bj = lo; bj < hi; ++bj) {
                const float *tplane =
                    tbase + std::size_t(bj) * gh * gw;
                float *yplane = ybase + std::size_t(bj) * oh * ow;
                for (int p = 0; p < oh; ++p)
                    K.axpy(yplane + std::size_t(p) * ow, 1.0f,
                           tplane + std::size_t(p + 1) * gw + 1,
                           std::int64_t(ow));
            }
        });
    }
    if (metrics::enabled()) {
        metrics::counterAdd("wino.decomp.fwd.calls");
        metrics::counterAdd("wino.decomp.fwd.terms",
                            double(units.size()));
    }
}

} // namespace winomc
