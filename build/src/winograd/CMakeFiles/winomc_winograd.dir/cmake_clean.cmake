file(REMOVE_RECURSE
  "CMakeFiles/winomc_winograd.dir/algo.cc.o"
  "CMakeFiles/winomc_winograd.dir/algo.cc.o.d"
  "CMakeFiles/winomc_winograd.dir/conv.cc.o"
  "CMakeFiles/winomc_winograd.dir/conv.cc.o.d"
  "CMakeFiles/winomc_winograd.dir/conv1d.cc.o"
  "CMakeFiles/winomc_winograd.dir/conv1d.cc.o.d"
  "CMakeFiles/winomc_winograd.dir/cost.cc.o"
  "CMakeFiles/winomc_winograd.dir/cost.cc.o.d"
  "CMakeFiles/winomc_winograd.dir/tiling.cc.o"
  "CMakeFiles/winomc_winograd.dir/tiling.cc.o.d"
  "CMakeFiles/winomc_winograd.dir/toom_cook.cc.o"
  "CMakeFiles/winomc_winograd.dir/toom_cook.cc.o.d"
  "libwinomc_winograd.a"
  "libwinomc_winograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winomc_winograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
