/**
 * @file
 * Analytic computation / data-access cost model for direct and Winograd
 * convolution (reproduces Figure 1 and feeds the NDP timing model).
 *
 * Data access is counted as DRAM traffic under the paper's NDP buffering
 * model (Section VI-B): weights/stationary operands are cached in the
 * 512 KiB double-buffered SRAM, the streamed matmul operand is re-read
 * once per 64-wide output-channel block, transform intermediates are
 * spilled to DRAM (they are far larger than the buffers) and re-read.
 * The paper's Figure 1 was measured on a Xeon with vTune (see DESIGN.md
 * substitution table); what it demonstrates - Winograd cuts multiplies
 * ~2.8x but inflates accesses ~4.4x - is a property of the algorithm
 * that this model reproduces.
 */

#ifndef WINOMC_WINOGRAD_COST_HH
#define WINOMC_WINOGRAD_COST_HH

#include <cstdint>

#include "winograd/algo.hh"
#include "winograd/conv_spec.hh"

namespace winomc {

/** Training phase of one layer (Section II-A). */
enum class Phase { Fprop, Bprop, UpdateGrad };

/** Cost of one phase of one layer on one worker ensemble. */
struct ConvCost
{
    uint64_t mults = 0;        ///< FP32 multiplies
    uint64_t adds = 0;         ///< FP32 adds
    uint64_t dramReadBytes = 0;
    uint64_t dramWriteBytes = 0;

    uint64_t macs() const { return mults; }
    uint64_t dramBytes() const { return dramReadBytes + dramWriteBytes; }

    ConvCost &
    operator+=(const ConvCost &o)
    {
        mults += o.mults;
        adds += o.adds;
        dramReadBytes += o.dramReadBytes;
        dramWriteBytes += o.dramWriteBytes;
        return *this;
    }
};

/** Hardware parameters the buffered-traffic model depends on. */
struct CostModelParams
{
    int systolicDim = 64;        ///< S x S MAC array (output block width)
    double bytesPerScalar = 4.0; ///< FP32
};

/** Direct ("spatial") convolution cost of one phase. */
ConvCost directConvCost(const ConvSpec &spec, Phase phase,
                        const CostModelParams &p = {});

/** Winograd convolution cost of one phase (Winograd-layer weights).
 *  The plain pipeline binds the stride-1 "same" square-kernel
 *  geometry; other descriptors go through decomposedConvCost. */
ConvCost winogradConvCost(const ConvSpec &spec, const WinogradAlgo &algo,
                          Phase phase, const CostModelParams &p = {});

/**
 * Forward cost of executing `spec` through the DWM decomposition into
 * F(m,3) units (winograd/plan.hh): the term count times the inner
 * stride-1 "same" 3x3 Winograd cost on the (outH+2) x (outW+2)
 * gathered map, plus each term's gather/crop-accumulate traffic.
 * Forward only — training of decomposed layers runs direct gradients.
 */
ConvCost decomposedConvCost(const ConvSpec &spec,
                            const WinogradAlgo &unit,
                            const CostModelParams &p = {});

/** Sum over the three phases of one training iteration. */
ConvCost directConvIterCost(const ConvSpec &spec,
                            const CostModelParams &p = {});
ConvCost winogradConvIterCost(const ConvSpec &spec,
                              const WinogradAlgo &algo,
                              const CostModelParams &p = {});

/**
 * Predicted slab-level memory traffic (bytes) of one executed phase of
 * the host Winograd pipeline, staged or fused (DESIGN.md §4.11).
 *
 * The model counts each stage's streamed operands once (stage-internal
 * register/cache blocking is assumed resident): the staged pipeline
 * pays a full write + read round trip through the Winograd-domain
 * slabs between every stage, the fused pipeline only touches spatial
 * operands plus one weight stream per (image, strip) task. Gathers are
 * tile-quantized (alpha^2 / m^2 elements per tile); the runtime
 * counters (`wino.<mode>.<phase>.*`) use exact in-bounds counts, so
 * measured/predicted lands slightly under 1 on shapes with padding.
 */
struct TrafficPrediction
{
    uint64_t xformBytes = 0;   ///< input-side gather / transform stage
    uint64_t ewBytes = 0;      ///< elementwise GEMM stage
    uint64_t inverseBytes = 0; ///< output-side transform / store stage

    uint64_t
    totalBytes() const
    {
        return xformBytes + ewBytes + inverseBytes;
    }
};

/**
 * @param fused          staged (false) or fused tile-strip (true) mode
 * @param stripsPerImage the fused strip count (WinoPlan::stripCount());
 *                       ignored for staged. UpdateGrad has no fused
 *                       path and always returns the staged prediction.
 */
TrafficPrediction predictedTrafficBytes(const ConvSpec &spec,
                                        const WinogradAlgo &algo,
                                        Phase phase, bool fused,
                                        int stripsPerImage = 1,
                                        const CostModelParams &p = {});

} // namespace winomc

#endif // WINOMC_WINOGRAD_COST_HH
