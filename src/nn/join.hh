/**
 * @file
 * FractalNet-style multi-branch block with the join operation of
 * Section VII-A / Figure 14.
 *
 * Standard join: each branch ends with its own ReLU, and the join
 * computes the element-wise mean of the *activated* branch outputs.
 *
 * Modified join (the paper's): branches emit pre-activation outputs, the
 * join computes their mean, and a single ReLU follows the join. Because
 * the mean is linear it commutes with the inverse Winograd transform, so
 * the join can run in the Winograd domain and one tile gather per join
 * is saved. The experiment of Fig 14 shows the two train to the same
 * validation accuracy.
 */

#ifndef WINOMC_NN_JOIN_HH
#define WINOMC_NN_JOIN_HH

#include "nn/basic_layers.hh"
#include "nn/conv_layer.hh"
#include "nn/module.hh"

namespace winomc::nn {

enum class JoinMode { Standard, Modified };

/**
 * Join block: N parallel branches whose outputs are averaged.
 * Branch modules must map equal input shapes to equal output shapes.
 */
class FractalJoinBlock : public Module
{
  public:
    FractalJoinBlock(std::vector<ModulePtr> branches, JoinMode mode);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &dy) override;
    void step(float lr) override;
    size_t paramCount() const override;
    std::string name() const override;

    JoinMode joinMode() const { return mode; }
    size_t branchCount() const { return branches.size(); }

  private:
    std::vector<ModulePtr> branches;
    /** Per-branch ReLUs (Standard) or one post-join ReLU (Modified). */
    std::vector<ReLU> branchRelus;
    ReLU joinRelu;
    JoinMode mode;
};

/**
 * Convenience factory: the 2-column fractal unit used in the Fig 14
 * experiment - deep branch conv-ReLU-conv, shallow branch conv, then the
 * selected join.
 */
ModulePtr makeFractalPair(int in_ch, int out_ch, int r, JoinMode join,
                          ConvMode conv_mode, const WinogradAlgo &algo,
                          Rng &rng);

} // namespace winomc::nn

#endif // WINOMC_NN_JOIN_HH
