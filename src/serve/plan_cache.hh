/**
 * @file
 * Shape-keyed plan + transformed-weight cache shared across the models
 * a serving engine (or several engines) runs.
 *
 * Two resources dominate Winograd serving cost when the traffic mix
 * churns through batch shapes:
 *
 *  - execution plans: the (algo, N, C -> K, H, W)-bound slab sets of
 *    winograd/plan.hh. PlanCache is a thread-safe, byte-budgeted LRU
 *    PlanSource: layers lease a plan per shape and park it back, and
 *    concurrent model instances draw from one pool instead of each
 *    holding a private copy of every shape.
 *  - Winograd-domain weights: replicas of one model would each pay the
 *    G w G^T transform per layer. transformedWeights() builds each
 *    tagged slab once and hands every replica the same immutable copy
 *    (wired into layers via nn::ConvLayer::shareWinoWeights).
 *
 * The byte budget rides WINOMC_WORKSPACE_LIMIT_MB by default — parked
 * plans are pool-adjacent memory and obey the same ceiling the
 * workspace retention does.
 */

#ifndef WINOMC_SERVE_PLAN_CACHE_HH
#define WINOMC_SERVE_PLAN_CACHE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "tensor/tensor.hh"
#include "winograd/plan.hh"
#include "winograd/tiling.hh"

namespace winomc::serve {

class PlanCache : public PlanSource
{
  public:
    /** @param budgetBytes ceiling on parked-plan bytes; 0 rides the
     *  workspace retention limit (WINOMC_WORKSPACE_LIMIT_MB). */
    explicit PlanCache(std::size_t budgetBytes = 0);

    /** Lease a plan for the configuration: a parked match when one
     *  exists (hit), a freshly built plan otherwise (miss). */
    std::unique_ptr<WinoPlan> acquirePlan(const WinogradAlgo &algo,
                                          int batch, int inCh, int outCh,
                                          int h, int w) override;

    /** Park a displaced plan, evicting least-recently-used plans while
     *  the parked total exceeds the byte budget. A plan bigger than
     *  the whole budget is destroyed outright. */
    void releasePlan(std::unique_ptr<WinoPlan> plan) override;

    /**
     * The Winograd-domain transform of `spatial` under `algo`, built
     * once per `tag` and shared by every caller ("model.conv3" -> one
     * slab for all replicas). The caller must keep the tag's spatial
     * weights stable — frozen inference weights — since later calls
     * return the first build.
     */
    std::shared_ptr<const WinoWeights>
    transformedWeights(const std::string &tag, const Tensor &spatial,
                       const WinogradAlgo &algo);

    /**
     * Descriptor-keyed variant: the slab is tagged by the canonical
     * shape key (ConvSpec::key(), batch excluded — weights are batch-
     * independent) plus the algorithm, the same identity the tuning
     * cache (winograd/tuner.hh) persists decisions under. Engines that
     * tune per descriptor share weight slabs per descriptor with no
     * hand-rolled tag scheme.
     */
    std::shared_ptr<const WinoWeights>
    transformedWeights(const ConvSpec &spec, const Tensor &spatial,
                       const WinogradAlgo &algo);

    std::size_t budgetBytes() const { return budget; }
    std::size_t parkedBytes() const;
    int parkedPlans() const;
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    std::uint64_t evictions() const;
    /** Distinct transformed-weight slabs built so far. */
    std::uint64_t weightBuilds() const;

    /** Destroy every parked plan and cached weight slab. */
    void clear();

  private:
    const std::size_t budget;
    mutable std::mutex mu;
    std::vector<std::unique_ptr<WinoPlan>> pool; ///< MRU first
    std::size_t poolBytes = 0;
    std::map<std::string, std::shared_ptr<const WinoWeights>> weights;
    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;
    std::uint64_t nEvictions = 0;
    std::uint64_t nWeightBuilds = 0;

    void publishGauges() const; // callers hold mu
};

} // namespace winomc::serve

#endif // WINOMC_SERVE_PLAN_CACHE_HH
