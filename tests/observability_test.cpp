/**
 * @file
 * Telemetry-plane tests: the Prometheus exposition endpoint (name
 * escaping, histogram bucket/exemplar rendering, NaN percentiles, a
 * live HTTP round trip with monotone scrape counters, bind-failure
 * fallback), the perf_event_open degradation ladder, WINOMC_LOG_LEVEL
 * parsing, and the flush-telemetry-on-fatal contract (death tests
 * asserting the partially-written trace file is valid JSON and the
 * metrics dump parses back).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/exposition.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/metrics_io.hh"
#include "common/perfcounters.hh"
#include "common/stats.hh"
#include "common/trace.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace winomc {
namespace {

/** Enables metrics for one test and restores/clears after. */
class ExpositionTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        wasMetrics = metrics::enabled();
        metrics::setEnabled(true);
        metrics::reset();
    }

    void
    TearDown() override
    {
        exposition::stop();
        metrics::reset();
        metrics::setEnabled(wasMetrics);
    }

    bool wasMetrics = false;
};

const metrics::Sample *
find(const std::vector<metrics::Sample> &snap, const std::string &name)
{
    for (const auto &s : snap)
        if (s.name == name)
            return &s;
    return nullptr;
}

/** Blocking HTTP GET against 127.0.0.1:port; returns the full
 *  response (headers + body), or "" on any socket failure. */
std::string
httpGet(int port)
{
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(std::uint16_t(port));
    if (connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                sizeof(addr)) != 0) {
        close(fd);
        return "";
    }
    const char req[] = "GET /metrics HTTP/1.1\r\n"
                       "Host: localhost\r\nConnection: close\r\n\r\n";
    (void)send(fd, req, sizeof(req) - 1, 0);
    std::string resp;
    char buf[4096];
    ssize_t n;
    while ((n = recv(fd, buf, sizeof(buf), 0)) > 0)
        resp.append(buf, std::size_t(n));
    close(fd);
    return resp;
}

/**
 * Minimal structural JSON check: quotes/escapes tracked, braces and
 * brackets balanced and properly nested, document is one object. Not
 * a grammar validator — but it rejects exactly the failure mode a
 * crash-time flush risks (a truncated or interleaved write).
 */
bool
structurallyValidJson(const std::string &s)
{
    std::vector<char> stack;
    bool inStr = false, esc = false;
    char first = 0, last = 0;
    for (char c : s) {
        if (inStr) {
            if (esc)
                esc = false;
            else if (c == '\\')
                esc = true;
            else if (c == '"')
                inStr = false;
            continue;
        }
        if (!std::isspace(static_cast<unsigned char>(c))) {
            if (!first)
                first = c;
            last = c;
        }
        if (c == '"') {
            inStr = true;
        } else if (c == '{' || c == '[') {
            stack.push_back(c);
        } else if (c == '}' || c == ']') {
            if (stack.empty() ||
                stack.back() != (c == '}' ? '{' : '['))
                return false;
            stack.pop_back();
        }
    }
    return !inStr && stack.empty() && first == '{' && last == '}';
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

// ------------------------------------------------- Text format

TEST(PromName, EscapesToMetricCharset)
{
    EXPECT_EQ(exposition::promName("serve.latency_us"),
              "serve_latency_us");
    EXPECT_EQ(exposition::promName("a-b/c d"), "a_b_c_d");
    EXPECT_EQ(exposition::promName("run:scope"), "run:scope");
    EXPECT_EQ(exposition::promName("9lives"), "_9lives");
    EXPECT_EQ(exposition::promName(""), "_");
}

TEST_F(ExpositionTest, RenderTextCoversEveryKind)
{
    metrics::counterAdd("obs.count", 3.0);
    metrics::gaugeSet("obs.gauge", -2.5);
    metrics::timerAdd("obs.timer", 0.25);
    metrics::timerAdd("obs.timer", 0.75);
    const std::string text =
        exposition::renderText(metrics::snapshot());
    EXPECT_NE(text.find("# TYPE obs_count counter\nobs_count 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE obs_gauge gauge\nobs_gauge -2.5\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE obs_timer summary\n"),
              std::string::npos);
    EXPECT_NE(text.find("obs_timer_count 2\n"), std::string::npos);
    EXPECT_NE(text.find("obs_timer_sum 1\n"), std::string::npos);
}

TEST_F(ExpositionTest, HistogramRendersCumulativeBucketsAndExemplar)
{
    metrics::histogramAddExemplar("lat", 5.0, 0.0, 10.0, 10, 7);
    metrics::histogramAddExemplar("lat", 9.5, 0.0, 10.0, 10, 42);
    const std::string text =
        exposition::renderText(metrics::snapshot());
    EXPECT_NE(text.find("# TYPE lat histogram\n"), std::string::npos);
    // Buckets are cumulative: 5.0 lands in [5,6) so le="5" still sees
    // zero, le="6" sees one, and the top edge sees both.
    EXPECT_NE(text.find("lat_bucket{le=\"5\"} 0\n"),
              std::string::npos);
    EXPECT_NE(text.find("lat_bucket{le=\"6\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("lat_sum 14.5\n"), std::string::npos);
    EXPECT_NE(text.find("lat_count 2\n"), std::string::npos);
    // The surviving exemplar is the largest value (9.5, id 42),
    // attached to the first bucket containing it.
    EXPECT_NE(
        text.find("lat_bucket{le=\"10\"} 2 # {trace_id=\"42\"} 9.5\n"),
        std::string::npos);
    EXPECT_EQ(text.find("trace_id=\"7\""), std::string::npos);
}

TEST_F(ExpositionTest, EmptyHistogramPercentilesRenderNaNNotDash)
{
    metrics::histogramRegister("empty.lat", 0.0, 100.0, 4);
    const std::string text =
        exposition::renderText(metrics::snapshot());
    EXPECT_NE(text.find("empty_lat_p50 NaN\n"), std::string::npos);
    EXPECT_NE(text.find("empty_lat_p99 NaN\n"), std::string::npos);
    EXPECT_NE(text.find("empty_lat_count 0\n"), std::string::npos);
    // "-" is the metrics-dump spelling for NaN; it must never leak
    // into the exposition body (Prometheus would reject the scrape).
    EXPECT_EQ(text.find(" -\n"), std::string::npos);
}

// ------------------------------------------------- Live endpoint

TEST_F(ExpositionTest, ServesMonotoneScrapesOverHttp)
{
    metrics::counterAdd("obs.live", 5.0);
    const int port = exposition::start(0); // ephemeral
    ASSERT_GT(port, 0);
    EXPECT_TRUE(exposition::running());
    EXPECT_EQ(exposition::port(), port);

    const std::string resp1 = httpGet(port);
    ASSERT_NE(resp1.find("HTTP/1.1 200 OK"), std::string::npos);
    ASSERT_NE(resp1.find("text/plain; version=0.0.4"),
              std::string::npos);
    EXPECT_NE(resp1.find("obs_live 5\n"), std::string::npos);

    // Scrapes are reads: counters keep their cumulative totals, and
    // a second scrape observes strictly more scrape traffic.
    metrics::counterAdd("obs.live", 2.0);
    const std::string resp2 = httpGet(port);
    EXPECT_NE(resp2.find("obs_live 7\n"), std::string::npos);
    EXPECT_NE(resp2.find("exposition_scrapes 2\n"),
              std::string::npos);

    // A second listener cannot start while one is running.
    EXPECT_EQ(exposition::start(0), -1);

    exposition::stop();
    EXPECT_FALSE(exposition::running());
    EXPECT_EQ(exposition::port(), -1);
}

TEST_F(ExpositionTest, BindFailureWarnsAndDegradesToDisabled)
{
    // Occupy a port ourselves, then ask the exposition to bind it.
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)),
              0);
    ASSERT_EQ(listen(fd, 1), 0);
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    ASSERT_EQ(getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                          &blen),
              0);
    const int taken = int(ntohs(bound.sin_port));

    EXPECT_EQ(exposition::start(taken), -1);
    EXPECT_FALSE(exposition::running());
    close(fd);
}

TEST_F(ExpositionTest, StartFromEnvHonorsKnobDiscipline)
{
    unsetenv("WINOMC_STATS_PORT");
    EXPECT_EQ(exposition::startFromEnv(), -1);
    EXPECT_FALSE(exposition::running());

    setenv("WINOMC_STATS_PORT", "eleventy", 1); // garbage: warn, skip
    EXPECT_EQ(exposition::startFromEnv(), -1);
    EXPECT_FALSE(exposition::running());
    unsetenv("WINOMC_STATS_PORT");
}

// ------------------------------------------------- Perf counters

TEST(PerfCounters, DegradationLadderNeverCrashes)
{
    const bool was = metrics::enabled();
    metrics::setEnabled(true);
    metrics::reset();

    const perf::Reading r0 = perf::read();
    EXPECT_EQ(r0.valid, perf::available());
    perf::publishStage("obs.test", r0); // must not crash either way
    if (!perf::available()) {
        const auto snap = metrics::snapshot();
        EXPECT_EQ(find(snap, "perf.obs.test.cycles"), nullptr);
    }

    // Differencing an invalid reading yields an invalid (zero) delta.
    perf::Reading a, b;
    a.cycles = 100;
    EXPECT_FALSE((a - b).valid);

    // disable() is the irreversible probe-failure path: every later
    // read is invalid and publishes nothing. (Must run last: it
    // disables counters for the rest of the process.)
    perf::disable();
    EXPECT_FALSE(perf::available());
    EXPECT_FALSE(perf::read().valid);

    metrics::reset();
    metrics::setEnabled(was);
}

// ------------------------------------------------- Log levels

TEST(Logging, ParseLogLevelFollowsKnobDiscipline)
{
    EXPECT_EQ(parseLogLevel("error"), 0);
    EXPECT_EQ(parseLogLevel("warn"), 1);
    EXPECT_EQ(parseLogLevel("warning"), 1);
    EXPECT_EQ(parseLogLevel("info"), 2);
    EXPECT_EQ(parseLogLevel("debug"), 3);
    EXPECT_EQ(parseLogLevel("DEBUG"), 3);
    EXPECT_EQ(parseLogLevel(" warn "), 1);
    // Garbage warns (always, the knob gates warnings) -> info.
    EXPECT_EQ(parseLogLevel("verbose"), 2);
    EXPECT_EQ(parseLogLevel(nullptr), 2);
    EXPECT_EQ(parseLogLevel(""), 2);
}

// ------------------------------------------------- Fatal-flush

TEST(TelemetryFlushDeath, FatalDumpsTraceAndMetricsBeforeExit)
{
    const std::string tracePath =
        testing::TempDir() + "winomc_fatal_trace.json";
    const std::string metricsPath =
        testing::TempDir() + "winomc_fatal_metrics.json";
    std::remove(tracePath.c_str());
    std::remove(metricsPath.c_str());

    EXPECT_DEATH(
        {
            metrics::setEnabled(true);
            trace::setEnabled(true);
            metrics::setConfiguredPath(metricsPath);
            trace::setConfiguredPath(tracePath);
            metrics::counterAdd("death.counter", 3.0);
            trace::emitComplete("death.span", "test", 1.0, 2.0);
            winomc_fatal("telemetry flush death test");
        },
        "telemetry flush death test");

    // The child died mid-run, but its flush must have left a COMPLETE
    // trace artifact: structurally valid JSON containing the span.
    const std::string traceBody = slurp(tracePath);
    ASSERT_FALSE(traceBody.empty());
    EXPECT_TRUE(structurallyValidJson(traceBody));
    EXPECT_NE(traceBody.find("\"death.span\""), std::string::npos);

    // And the metrics dump parses back through the standard reader.
    const auto parsed = metrics::parseDumpFile(metricsPath);
    const metrics::Sample *c = find(parsed, "death.counter");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value, 3.0);

    std::remove(tracePath.c_str());
    std::remove(metricsPath.c_str());
}

TEST(TelemetryFlushDeath, TerminateHandlerFlushesBeforeAbort)
{
    const std::string tracePath =
        testing::TempDir() + "winomc_terminate_trace.json";
    std::remove(tracePath.c_str());

    EXPECT_DEATH(
        {
            trace::setEnabled(true);
            trace::setConfiguredPath(tracePath);
            trace::emitComplete("terminate.span", "test", 1.0, 2.0);
            std::terminate();
        },
        "std::terminate called; flushing telemetry");

    const std::string traceBody = slurp(tracePath);
    ASSERT_FALSE(traceBody.empty());
    EXPECT_TRUE(structurallyValidJson(traceBody));
    EXPECT_NE(traceBody.find("\"terminate.span\""),
              std::string::npos);
    std::remove(tracePath.c_str());
}

} // namespace
} // namespace winomc
