/**
 * @file
 * Event-driven message-level network simulator.
 *
 * Each (src -> dst, bytes) message follows the topology's minimal route
 * hop by hop; every directed link is a serialized resource (bytes /
 * bandwidth occupancy plus the per-hop SerDes latency). Contention is
 * resolved in event order (virtual cut-through at message granularity).
 *
 * This is the dynamic counterpart of link_model.hh's ideal-schedule
 * bottleneck bound: for the bulk, regular patterns the system model
 * uses (all-to-all tile transfer, neighbor rings) the two agree within
 * the pipeline-fill term, which the tests assert; for irregular
 * patterns this simulator shows the queueing the analytic bound hides.
 */

#ifndef WINOMC_MEMNET_MESSAGE_SIM_HH
#define WINOMC_MEMNET_MESSAGE_SIM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "memnet/link_model.hh"
#include "sim/event_queue.hh"

namespace winomc::memnet {

struct Message
{
    int src;
    int dst;
    double bytes;
    double start = 0.0;   ///< earliest departure, seconds
    double finish = -1.0; ///< filled by the simulation
};

/** Per-run introspection of one simulateMessages() call. */
struct MessageSimStats
{
    double makespanSec = 0.0;
    double totalBytes = 0.0;   ///< bytes x hops moved over links
    uint64_t hops = 0;         ///< link occupations simulated
    int nodes = 0;
    int ports = 0;
    /** Serialization-busy seconds per directed link
     *  [node * ports + port]. */
    std::vector<double> linkBusySec;
    /** Which directed links exist in the topology. */
    std::vector<uint8_t> wired;

    /** Busy fraction of one directed link over the makespan. */
    double linkUtilization(int node, int port) const;
    double maxLinkUtilization() const;
    /** Mean busy fraction over wired links (idle links count). */
    double meanLinkUtilization() const;

    /** Counters/gauges/per-link utilization histogram under `prefix`
     *  (e.g. "memnet.p2p"). No-op when metrics are disabled. */
    void exportMetrics(const std::string &prefix) const;
};

/**
 * Simulate all messages to completion; returns the makespan in seconds.
 * `messages` is updated in place with per-message finish times. When
 * `stats` is given it is overwritten with this run's link occupancy;
 * when tracing is enabled each link occupation is also replayed as a
 * span on a fresh virtual timeline (1 us of sim time = 1 us of trace
 * time, one track per directed link).
 */
double simulateMessages(const noc::Topology &topo, const LinkSpec &link,
                        std::vector<Message> &messages,
                        MessageSimStats *stats = nullptr);

/** Convenience: simulate an all-to-all of bytes_per_pair. */
double simulateAllToAll(const noc::Topology &topo, const LinkSpec &link,
                        double bytes_per_pair);

} // namespace winomc::memnet

#endif // WINOMC_MEMNET_MESSAGE_SIM_HH
