# Empty compiler generated dependencies file for fig16_weight_size.
# This may be replaced when dependencies are built.
