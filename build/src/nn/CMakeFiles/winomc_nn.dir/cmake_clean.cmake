file(REMOVE_RECURSE
  "CMakeFiles/winomc_nn.dir/basic_layers.cc.o"
  "CMakeFiles/winomc_nn.dir/basic_layers.cc.o.d"
  "CMakeFiles/winomc_nn.dir/batchnorm.cc.o"
  "CMakeFiles/winomc_nn.dir/batchnorm.cc.o.d"
  "CMakeFiles/winomc_nn.dir/conv_layer.cc.o"
  "CMakeFiles/winomc_nn.dir/conv_layer.cc.o.d"
  "CMakeFiles/winomc_nn.dir/dataset.cc.o"
  "CMakeFiles/winomc_nn.dir/dataset.cc.o.d"
  "CMakeFiles/winomc_nn.dir/join.cc.o"
  "CMakeFiles/winomc_nn.dir/join.cc.o.d"
  "CMakeFiles/winomc_nn.dir/loss.cc.o"
  "CMakeFiles/winomc_nn.dir/loss.cc.o.d"
  "CMakeFiles/winomc_nn.dir/module.cc.o"
  "CMakeFiles/winomc_nn.dir/module.cc.o.d"
  "CMakeFiles/winomc_nn.dir/trainer.cc.o"
  "CMakeFiles/winomc_nn.dir/trainer.cc.o.d"
  "libwinomc_nn.a"
  "libwinomc_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winomc_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
