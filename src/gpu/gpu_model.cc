#include "gpu/gpu_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "mpt/task_graph.hh"

namespace winomc::gpu {

namespace {

/** Occupancy-dependent efficiency: full above the knee, square-root
 *  roll-off below it (small per-GPU batches underfill the SMs). */
double
effectiveEfficiency(const GpuConfig &cfg, double per_gpu_batch)
{
    double occ = std::min(1.0, per_gpu_batch / cfg.occupancyKneeBatch);
    // Square-root roll-off below the knee (smaller kernels lose
    // efficiency, but not proportionally), floored at 15%.
    return cfg.convEfficiency * std::max(0.15, std::sqrt(occ));
}

/** NCCL ring all-reduce of `bytes` (FP16 gradients) across g GPUs. */
double
allReduceTime(uint64_t bytes, int gpus, const GpuConfig &cfg)
{
    if (gpus <= 1)
        return 0.0;
    double g = gpus;
    double bw = cfg.nvlinkPerRing * cfg.ncclRings;
    return 2.0 * (g - 1.0) / g * double(bytes) / bw +
           2.0 * (g - 1.0) * cfg.ncclLatencySec;
}

} // namespace

GpuLayerTime
gpuLayerTime(const ConvSpec &spec, double per_gpu_batch,
             const GpuConfig &cfg)
{
    winomc_assert(per_gpu_batch > 0, "empty per-GPU batch");
    const double eff = effectiveEfficiency(cfg, per_gpu_batch);
    double flops = 2.0 * per_gpu_batch * spec.inCh * spec.outCh *
                   double(spec.outH()) * spec.outW() * spec.kernelH() *
                   spec.kernelW();
    if (spec.unitStride() && spec.squareKernel() && spec.kernelH() == 3)
        flops /= cfg.winogradSpeedup; // cuDNN picks the Winograd kernel

    // FP16 activations + weights traffic (roofline memory term).
    double bytes =
        2.0 * (per_gpu_batch * (double(spec.inCh) * spec.h * spec.w +
                                double(spec.outCh) * spec.outH() *
                                    spec.outW()) +
               double(spec.weightElems()));

    double kernel = std::max(flops / (cfg.peakFp16Flops * eff),
                             bytes / (cfg.memBandwidth *
                                      cfg.memEfficiency)) +
                    cfg.kernelOverheadSec;

    GpuLayerTime t;
    t.fwdSec = kernel;
    // Backward runs two convolution kernels (dgrad + wgrad).
    t.bwdSec = 2.0 * kernel;
    return t;
}

GpuResult
simulateGpuTraining(const workloads::NetworkSpec &net, int gpus,
                    const GpuConfig &cfg, int batch_override)
{
    winomc_assert(gpus >= 1, "need at least one GPU");
    winomc_assert(!net.layers.empty(), "empty network");
    const int total_batch =
        batch_override > 0 ? batch_override : net.layers.front().batch;
    const double per_gpu = double(total_batch) / gpus;
    winomc_assert(per_gpu >= 1.0, "more GPUs than batch items");

    // Task graph: forward chain, backward chain, per-layer gradient
    // all-reduce overlapped on the NVLink resource (NCCL streams).
    constexpr int kCompute = 0;
    constexpr int kNvlink = 1;
    mpt::TaskGraph graph;
    const int n = int(net.layers.size());
    std::vector<mpt::TaskId> fwd(size_t(n), -1);
    std::vector<mpt::TaskId> bwd(size_t(n), -1);
    double coll_total = 0.0;

    for (int l = 0; l < n; ++l) {
        GpuLayerTime t = gpuLayerTime(net.layers[size_t(l)], per_gpu,
                                      cfg);
        fwd[size_t(l)] = graph.addTask("fwd", t.fwdSec, kCompute);
        if (l > 0)
            graph.addDependency(fwd[size_t(l - 1)], fwd[size_t(l)]);
    }
    for (int l = n - 1; l >= 0; --l) {
        GpuLayerTime t = gpuLayerTime(net.layers[size_t(l)], per_gpu,
                                      cfg);
        bwd[size_t(l)] = graph.addTask("bwd", t.bwdSec, kCompute);
        graph.addDependency(l == n - 1 ? fwd[size_t(n - 1)]
                                       : bwd[size_t(l + 1)],
                            bwd[size_t(l)]);
        if (gpus > 1) {
            // FP16 gradients.
            uint64_t bytes = net.layers[size_t(l)].weightElems() * 2;
            double coll = allReduceTime(bytes, gpus, cfg);
            coll_total += coll;
            mpt::TaskId c = graph.addTask("nccl", coll, kNvlink);
            graph.addDependency(bwd[size_t(l)], c);
        }
    }

    GpuResult res;
    res.iterationSeconds = graph.simulate();
    res.imagesPerSec = double(total_batch) / res.iterationSeconds;
    res.powerWatts = gpus * cfg.boardPowerWatts + cfg.hostPowerWatts;
    res.allReduceSeconds = coll_total;
    return res;
}

int
bestBatchSize(const workloads::NetworkSpec &net, int gpus,
              const GpuConfig &cfg)
{
    int best = net.layers.front().batch;
    double best_rate = 0.0;
    for (int b : {256, 512, 1024, 2048, 4096}) {
        GpuResult r = simulateGpuTraining(net, gpus, cfg, b);
        if (r.imagesPerSec > best_rate) {
            best_rate = r.imagesPerSec;
            best = b;
        }
    }
    return best;
}

} // namespace winomc::gpu
