/**
 * @file
 * Small dense double-precision matrix used for Winograd transform
 * coefficients and the activation-prediction error analysis.
 */

#ifndef WINOMC_TENSOR_MATRIX_HH
#define WINOMC_TENSOR_MATRIX_HH

#include <initializer_list>
#include <string>
#include <vector>

namespace winomc {

/** Row-major double matrix; sized for transform coefficients (≤ ~8×8). */
class Matrix
{
  public:
    Matrix() : nrows(0), ncols(0) {}
    Matrix(int rows, int cols);
    /** Construct from nested braces: Matrix{{1,2},{3,4}}. */
    Matrix(std::initializer_list<std::initializer_list<double>> init);

    int rows() const { return nrows; }
    int cols() const { return ncols; }

    double &at(int r, int c);
    double at(int r, int c) const;

    /** Row-major backing store (micro-kernels index it [r*cols+c]). */
    const double *data() const { return buf.data(); }

    Matrix transposed() const;
    /** Elementwise absolute value (used for error-bound propagation). */
    Matrix abs() const;
    /** max |a - b| over all elements. */
    double maxAbsDiff(const Matrix &o) const;

    static Matrix identity(int n);

    std::string toString(int precision = 6) const;

  private:
    int nrows, ncols;
    std::vector<double> buf;
};

/** Standard matrix product. */
Matrix operator*(const Matrix &a, const Matrix &b);
Matrix operator+(const Matrix &a, const Matrix &b);
Matrix operator-(const Matrix &a, const Matrix &b);
Matrix operator*(double s, const Matrix &a);

} // namespace winomc

#endif // WINOMC_TENSOR_MATRIX_HH
