# Empty dependencies file for winomc_workloads.
# This may be replaced when dependencies are built.
