/**
 * @file
 * Performance and energy simulation of one convolution layer's training
 * iteration on the 256-worker NDP system, for every Table IV
 * configuration (the machinery behind Figures 15 and 16).
 *
 * Per phase the model composes:
 *  - systolic-array time of the element-wise dot products (Eq. 2),
 *  - vector-unit time of the (inverse) transforms, activation and
 *    weight update,
 *  - stacked-DRAM streaming (overlapped with compute by the double
 *    buffers),
 *  - tile scatter/gather as an all-to-all over the intra-cluster
 *    topology (bottleneck link model, validated against the flit and
 *    message simulators),
 *  - the pipelined ring collective of the group's weight slice,
 * and overlaps them with the wave pipeline / task-graph scheduler.
 */

#ifndef WINOMC_MPT_LAYER_SIM_HH
#define WINOMC_MPT_LAYER_SIM_HH

#include <string>

#include "memnet/cluster.hh"
#include "mpt/system_config.hh"
#include "winograd/conv_spec.hh"

namespace winomc::mpt {

/** One phase (fwd = fprop; bwd = bprop + updateGrad). */
struct PhaseResult
{
    double seconds = 0.0;

    // Pre-overlap totals per worker (diagnostics / energy).
    double computeSec = 0.0;
    double scatterSec = 0.0;
    double gatherSec = 0.0;
    double collectiveSec = 0.0;

    // Compute-unit composition of computeSec (pre-overlap): computeSec
    // == max of the three + task overhead, double buffering overlaps
    // the rest.
    double systolicSec = 0.0;
    double vectorSec = 0.0;
    double dramSec = 0.0;
    /** Time the compute units stall on the DRAM stream despite the
     *  SRAM double buffers (max(0, dramSec - other units)). */
    double dmaStallSec = 0.0;
    /** Useful-MAC fraction of the systolic array while it runs. */
    double systolicUtil = 0.0;

    double macs = 0.0;          ///< per worker
    double vecOps = 0.0;        ///< per worker
    double dramBytes = 0.0;     ///< per worker
    double linkBytesSent = 0.0; ///< per worker

    energy::EnergyBreakdown energy; ///< whole system
};

struct LayerResult
{
    PhaseResult fwd;
    PhaseResult bwd;
    memnet::ClusterShape shape{1, 1};
    std::string algoName;

    /** Split timings for the network-level task graph: bwd.seconds ==
     *  bpropSeconds + max(ugradComputeSeconds, collectiveSeconds) +
     *  scheduling overhead; the graph overlaps collectives with other
     *  layers' compute (Section VI-C's concurrent Reduce blocks). */
    double bpropSeconds = 0.0;
    double ugradComputeSeconds = 0.0;
    double collectiveSeconds = 0.0;

    /** Link-byte split per worker: point-to-point tile scatter/gather
     *  vs. the weight-gradient ring collective. */
    double p2pLinkBytes = 0.0;
    double collectiveLinkBytes = 0.0;

    double totalSeconds() const { return fwd.seconds + bwd.seconds; }
    energy::EnergyBreakdown
    totalEnergy() const
    {
        energy::EnergyBreakdown e = fwd.energy;
        e += bwd.energy;
        return e;
    }
};

/**
 * Paper-style time breakdown of one simulated layer (the Figure 15
 * bars): where the iteration's wall-clock went. Built by greedy
 * exposure — compute first, then intra-cluster tile communication,
 * then the inter-cluster collective, each capped by what is left of
 * the end-to-end time — so the four parts sum to totalSec *exactly*
 * (overlapped work is not double-counted; the remainder is pipeline
 * fill / scheduling idle).
 */
struct LayerBreakdown
{
    double computeSec = 0.0;
    double intraCommSec = 0.0; ///< tile scatter/gather inside clusters
    double interCommSec = 0.0; ///< weight-gradient ring collective
    double idleSec = 0.0;      ///< pipeline fill + scheduling gaps
    double totalSec = 0.0;     ///< == sum of the four above
};

LayerBreakdown layerBreakdown(const LayerResult &res);

/** Simulate with the strategy's own shape policy (dynamic clustering
 *  optimizes the shape for WinoMPTPredictDyn). */
LayerResult simulateLayer(const ConvSpec &spec, Strategy strategy,
                          const SystemParams &params);

/** Simulate with an explicitly fixed cluster shape (ablations /
 *  the dynamic-clustering optimizer). When `export_artifacts` is
 *  false the run skips metric/trace export — the dynamic-clustering
 *  search uses this so only the *chosen* shape is exported (under
 *  w_mp++, not smeared over the considered candidates). */
LayerResult simulateLayerWithShape(const ConvSpec &spec,
                                   Strategy strategy,
                                   const SystemParams &params,
                                   const memnet::ClusterShape &shape,
                                   bool export_artifacts = true);

} // namespace winomc::mpt

#endif // WINOMC_MPT_LAYER_SIM_HH
