/**
 * @file
 * Task graph and update-counter scheduler (Section VI-A).
 *
 * The host compiles the CNN into a graph whose nodes are computation or
 * communication blocks and whose edges are data dependencies; each NDP's
 * task scheduler starts a task once the update counters of all its
 * predecessors have incremented and its execution resource is free.
 *
 * This implementation simulates that scheduler on the event kernel:
 * every task carries a duration and a resource id; a resource runs one
 * task at a time; ready tasks start in task-creation order, so the
 * schedule is deterministic.
 */

#ifndef WINOMC_MPT_TASK_GRAPH_HH
#define WINOMC_MPT_TASK_GRAPH_HH

#include <string>
#include <vector>

#include "sim/event_queue.hh"

namespace winomc::mpt {

using TaskId = int;

class TaskGraph
{
  public:
    /** Tasks with this resource never contend. */
    static constexpr int kNoResource = -1;

    /**
     * @param name      diagnostic label
     * @param seconds   execution time (>= 0)
     * @param resource  serialization domain (e.g. one per compute unit,
     *                  tile network, ring network), or kNoResource
     */
    TaskId addTask(std::string name, double seconds, int resource);

    /** `after` cannot start until `before` completes. */
    void addDependency(TaskId before, TaskId after);

    /** Run the schedule; returns the makespan in seconds. When
     *  WINOMC_TRACE is set the simulated schedule is also exported as
     *  a Chrome-trace timeline (one track per resource). */
    double simulate();

    /** Export start/finish of every completed task to the trace
     *  recorder under its own virtual-time process (no-op when tracing
     *  is off; simulate() already calls this). */
    void exportTrace(const std::string &label) const;

    /** Completion time of a task (valid after simulate()). */
    double finishTime(TaskId id) const;
    double startTime(TaskId id) const;
    size_t taskCount() const { return tasks.size(); }
    const std::string &taskName(TaskId id) const;

  private:
    struct Task
    {
        std::string name;
        double seconds;
        int resource;
        std::vector<TaskId> dependents;
        int pendingDeps = 0;  ///< the update counter of Section VI-A
        double start = -1.0;
        double finish = -1.0;
    };

    std::vector<Task> tasks;
    int maxResource = -1;
};

} // namespace winomc::mpt

#endif // WINOMC_MPT_TASK_GRAPH_HH
