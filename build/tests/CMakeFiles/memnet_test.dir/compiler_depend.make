# Empty compiler generated dependencies file for memnet_test.
# This may be replaced when dependencies are built.
