#include "mpt/functional.hh"

#include "common/logging.hh"

namespace winomc::mpt {

namespace {

/** Copy one batch shard (rows [b0, b0+count)) out of a tensor. */
Tensor
batchShard(const Tensor &t, int b0, int count)
{
    Tensor out(count, t.c(), t.h(), t.w());
    for (int b = 0; b < count; ++b)
        for (int c = 0; c < t.c(); ++c)
            for (int i = 0; i < t.h(); ++i)
                for (int j = 0; j < t.w(); ++j)
                    out.at(b, c, i, j) = t.at(b0 + b, c, i, j);
    return out;
}

/** Paste a batch shard back at row b0. */
void
pasteShard(Tensor &dst, const Tensor &shard, int b0)
{
    for (int b = 0; b < shard.n(); ++b)
        for (int c = 0; c < shard.c(); ++c)
            for (int i = 0; i < shard.h(); ++i)
                for (int j = 0; j < shard.w(); ++j)
                    dst.at(b0 + b, c, i, j) = shard.at(b, c, i, j);
}

} // namespace

/**
 * The per-(group, cluster) worker computation: element-wise products
 * for the uv range this group owns. This is the "tile scattering" made
 * explicit - the worker only ever reads its own uv slice of X.
 */
void
partialElementwiseForward(const WinoTiles &X, const WinoWeights &W,
                          int uv0, int uv1, WinoTiles &Y)
{
    const int bt = X.batch() * X.tiles();
    for (int uv = uv0; uv < uv1; ++uv) {
        for (int j = 0; j < W.outChannels(); ++j) {
            float *yrow = Y.row(uv, j);
            for (int i = 0; i < W.inChannels(); ++i) {
                const float wji = W.at(uv, j, i);
                if (wji == 0.0f)
                    continue;
                const float *xrow = X.row(uv, i);
                for (int k = 0; k < bt; ++k)
                    yrow[k] += wji * xrow[k];
            }
        }
    }
}

void
partialElementwiseBackwardData(const WinoTiles &dY, const WinoWeights &W,
                               int uv0, int uv1, WinoTiles &dX)
{
    const int bt = dY.batch() * dY.tiles();
    for (int uv = uv0; uv < uv1; ++uv) {
        for (int j = 0; j < W.outChannels(); ++j) {
            const float *dyrow = dY.row(uv, j);
            for (int i = 0; i < W.inChannels(); ++i) {
                const float wji = W.at(uv, j, i);
                if (wji == 0.0f)
                    continue;
                float *dxrow = dX.row(uv, i);
                for (int k = 0; k < bt; ++k)
                    dxrow[k] += wji * dyrow[k];
            }
        }
    }
}

/** Partial weight gradient of one worker: its uv slice, its batch. */
void
partialElementwiseGradWeights(const WinoTiles &dY, const WinoTiles &X,
                              int uv0, int uv1, WinoWeights &dW_partial)
{
    const int bt = X.batch() * X.tiles();
    for (int uv = uv0; uv < uv1; ++uv) {
        for (int j = 0; j < dY.channels(); ++j) {
            const float *dyrow = dY.row(uv, j);
            for (int i = 0; i < X.channels(); ++i) {
                const float *xrow = X.row(uv, i);
                double acc = 0.0;
                for (int k = 0; k < bt; ++k)
                    acc += double(dyrow[k]) * xrow[k];
                dW_partial.at(uv, j, i) += float(acc);
            }
        }
    }
}

FunctionalResult
runFunctionalMpt(const Tensor &x, const Tensor &dy, const WinoWeights &W,
                 const WinogradAlgo &algo, int ng, int nc)
{
    winomc_assert(x.n() == dy.n() && x.h() == dy.h() && x.w() == dy.w(),
                  "x/dy shape mismatch");
    winomc_assert(x.n() % nc == 0, "batch ", x.n(),
                  " must divide across ", nc, " clusters");
    const int a2 = algo.alpha * algo.alpha;
    winomc_assert(a2 % ng == 0, "alpha^2 = ", a2,
                  " must divide across ", ng, " groups");
    const int uv_share = a2 / ng;
    const int shard = x.n() / nc;

    FunctionalResult res;
    res.y = Tensor(x.n(), dy.c(), x.h(), x.w());
    res.dx = Tensor(x.n(), x.c(), x.h(), x.w());
    res.dW = WinoWeights(algo.alpha, W.outChannels(), W.inChannels());

    for (int c = 0; c < nc; ++c) {
        const int b0 = c * shard;
        Tensor x_c = batchShard(x, b0, shard);
        Tensor dy_c = batchShard(dy, b0, shard);

        // --- fprop: scatter input tiles (each worker sees only its uv
        // slice), compute per group, gather output tiles.
        WinoTiles X = transformInput(x_c, algo);
        WinoTiles Y(algo.alpha, dy.c(), shard, X.tiles());
        for (int g = 0; g < ng; ++g) {
            partialElementwiseForward(X, W, g * uv_share,
                                      (g + 1) * uv_share, Y);
            // Scatter of X and gather of Y: the (ng-1)/ng fraction of
            // each worker's slice crosses links.
            res.tileElemsTransferred +=
                uint64_t(uv_share) * (X.channels() + Y.channels()) *
                shard * X.tiles() * uint64_t(ng - 1) / uint64_t(ng);
        }
        pasteShard(res.y, inverseTransform(Y, algo, x.h(), x.w()), b0);

        // --- bprop: scatter dY, compute per group, gather dX.
        WinoTiles dYt = inverseTransformAdjoint(dy_c, algo);
        WinoTiles dXt(algo.alpha, x.c(), shard, dYt.tiles());
        for (int g = 0; g < ng; ++g) {
            partialElementwiseBackwardData(dYt, W, g * uv_share,
                                           (g + 1) * uv_share, dXt);
            res.tileElemsTransferred +=
                uint64_t(uv_share) * (dYt.channels() + dXt.channels()) *
                shard * dYt.tiles() * uint64_t(ng - 1) / uint64_t(ng);
        }
        pasteShard(res.dx, transformInputAdjoint(dXt, algo, x.h(), x.w()),
                   b0);

        // --- updateGrad: every worker produces the partial gradient of
        // its group's weight slice over its batch shard; accumulating
        // into res.dW across clusters IS the ring reduction.
        for (int g = 0; g < ng; ++g) {
            partialElementwiseGradWeights(dYt, X, g * uv_share,
                                          (g + 1) * uv_share, res.dW);
            res.weightElemsReduced +=
                uint64_t(uv_share) * W.outChannels() * W.inChannels();
        }
    }
    return res;
}

FunctionalResult
runReference(const Tensor &x, const Tensor &dy, const WinoWeights &W,
             const WinogradAlgo &algo)
{
    FunctionalResult res;
    res.y = winogradForward(x, W, algo);
    res.dx = winogradBackwardData(dy, W, algo, x.h(), x.w());
    res.dW = winogradGradWeights(x, dy, algo);
    return res;
}

} // namespace winomc::mpt
