#include "mpt/mpt_conv_layer.hh"

namespace winomc::mpt {

namespace {

/** Copy batch rows [b0, b0 + out.n()) of t into the pre-shaped out. */
void
shardInto(const Tensor &t, int b0, Tensor &out)
{
    for (int b = 0; b < out.n(); ++b)
        for (int c = 0; c < t.c(); ++c)
            for (int i = 0; i < t.h(); ++i)
                for (int j = 0; j < t.w(); ++j)
                    out.at(b, c, i, j) = t.at(b0 + b, c, i, j);
}

void
pasteShard(Tensor &dst, const Tensor &shard, int b0)
{
    for (int b = 0; b < shard.n(); ++b)
        for (int c = 0; c < shard.c(); ++c)
            for (int i = 0; i < shard.h(); ++i)
                for (int j = 0; j < shard.w(); ++j)
                    dst.at(b0 + b, c, i, j) = shard.at(b, c, i, j);
}

} // namespace

MptConvLayer::MptConvLayer(int in_ch, int out_ch, int r, int ng_,
                           int nc_, const WinogradAlgo &algo_, Rng &rng)
    : inCh(in_ch), outCh(out_ch), ng(ng_), nc(nc_), algo(algo_),
      planCaches(std::size_t(nc_))
{
    winomc_assert(algo.r == r, "algo r mismatch");
    const int a2 = algo.alpha * algo.alpha;
    winomc_assert(ng >= 1 && a2 % ng == 0,
                  "alpha^2 must divide across groups");
    winomc_assert(nc >= 1, "need at least one cluster");
    uvShare = a2 / ng;

    Tensor w(out_ch, in_ch, r, r);
    w.fillKaiming(rng);
    W = transformWeights(w, algo);
    dW = WinoWeights(algo.alpha, out_ch, in_ch);
}

MptConvLayer::MptConvLayer(const ConvSpec &spec, int ng_, int nc_,
                           const WinogradAlgo &algo_, Rng &rng)
    : MptConvLayer(spec.inCh, spec.outCh, spec.kernelH(), ng_, nc_,
                   algo_, rng)
{
    winomc_assert(spec.samePadded() && spec.squareKernel(),
                  "MPT conv binds stride-1 same-padded square-kernel "
                  "geometry (got ", spec.key(), ")");
}

void
MptConvLayer::ensurePlans(const Tensor &x)
{
    const int sh = x.n() / nc;
    if (int(plans.size()) == nc &&
        plans[0]->matches(algo, sh, inCh, outCh, x.h(), x.w()))
        return;
    // Park each cluster's displaced plan in that cluster's pool before
    // leasing, so a shard-shape rotation (serving batch churn) reuses
    // parked plans instead of rebuilding every cluster's slab set.
    plans.resize(std::size_t(nc));
    for (int c = 0; c < nc; ++c) {
        PlanLru &cache = planCaches[std::size_t(c)];
        cache.releasePlan(std::move(plans[std::size_t(c)]));
        plans[std::size_t(c)] =
            cache.acquirePlan(algo, sh, inCh, outCh, x.h(), x.w());
    }
}

Tensor
MptConvLayer::forward(const Tensor &x, bool train)
{
    winomc_assert(x.c() == inCh, "channel mismatch");
    winomc_assert(x.n() % nc == 0, "batch ", x.n(),
                  " must divide across ", nc, " clusters");
    lastH = x.h();
    lastW = x.w();
    shard = x.n() / nc;
    ensurePlans(x);
    trainCached = train;

    Tensor y(x.n(), outCh, x.h(), x.w());
    xShard.reshape(shard, inCh, x.h(), x.w());
    yShard.reshape(shard, outCh, x.h(), x.w());

    for (int c = 0; c < nc; ++c) {
        WinoPlan &plan = *plans[size_t(c)];
        shardInto(x, c * shard, xShard);
        // Undivided alpha^2 inference shards have no partial-product
        // scatter/gather to satisfy, so the whole per-cluster forward
        // can run through the fused strip pipeline. Grouped (ng > 1)
        // or train-mode execution needs the plan slabs: the group loop
        // accumulates into Yt and backward reads the cached Xt.
        if (ng == 1 && !train && plan.shouldFuse(false)) {
            plan.forwardFusedInto(xShard, W, yShard);
            pasteShard(y, yShard, c * shard);
            continue;
        }
        plan.scatterInput(xShard);
        WinoTiles &Y = plan.outputTilesMutable();
        Y.fill(0.0f); // the group loop accumulates partial products
        for (int g = 0; g < ng; ++g) {
            partialElementwiseForward(plan.inputTiles(), W, g * uvShare,
                                      (g + 1) * uvShare, Y);
            tileElems += uint64_t(uvShare) * (inCh + outCh) * shard *
                         plan.tileGrid().tiles() * uint64_t(ng - 1) /
                         uint64_t(ng);
        }
        plan.gatherOutputInto(yShard);
        pasteShard(y, yShard, c * shard);
        if (!train)
            plan.invalidateCache();
    }
    return y;
}

Tensor
MptConvLayer::backward(const Tensor &dy)
{
    winomc_assert(trainCached,
                  "MptConvLayer::backward without a train-mode forward: "
                  "the cached tiles are stale");
    haveGrad = true;
    Tensor dx(dy.n(), inCh, lastH, lastW);
    dyShard.reshape(shard, outCh, lastH, lastW);
    dxShard.reshape(shard, inCh, lastH, lastW);

    for (int c = 0; c < nc; ++c) {
        WinoPlan &plan = *plans[size_t(c)];
        shardInto(dy, c * shard, dyShard);
        plan.scatterGradOutput(dyShard);
        WinoTiles &dXt = plan.gradInputTilesMutable();
        dXt.fill(0.0f); // group loop accumulates partial products
        for (int g = 0; g < ng; ++g) {
            partialElementwiseBackwardData(plan.gradOutputTiles(), W,
                                           g * uvShare,
                                           (g + 1) * uvShare, dXt);
            // The cross-cluster accumulation into dW below is the ring
            // reduction of the group's weight slice.
            partialElementwiseGradWeights(plan.gradOutputTiles(),
                                          plan.inputTiles(),
                                          g * uvShare,
                                          (g + 1) * uvShare, dW);
            tileElems += uint64_t(uvShare) * (inCh + outCh) * shard *
                         plan.tileGrid().tiles() * uint64_t(ng - 1) /
                         uint64_t(ng);
            weightElems += uint64_t(uvShare) * inCh * outCh;
        }
        plan.gatherGradInputInto(dxShard);
        pasteShard(dx, dxShard, c * shard);
    }
    return dx;
}

void
MptConvLayer::step(float lr)
{
    if (!haveGrad)
        return;
    haveGrad = false;
    dW *= -lr;
    W += dW;
    dW.fill(0.0f);
}

} // namespace winomc::mpt
