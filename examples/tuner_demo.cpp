/**
 * @file
 * Auto-tuner walkthrough: tune a mix of layer geometries — the paper's
 * 3x3 layers, a 5x5, a 7x7 stride-2 stem, a strided downsampler — and
 * print what the tuner picked, its predicted (and, in measure mode,
 * measured) time, and whether the decision came from the on-disk
 * tuning cache.
 *
 * Knobs:
 *   WINOMC_TUNE=off|analytic|measure   selection mode (default analytic)
 *   WINOMC_TUNE_CACHE=<path>           persist decisions; run this demo
 *                                      twice with the same path and the
 *                                      second run resolves every layer
 *                                      with from_cache=1.
 *
 * Build & run:  ./build/examples/tuner_demo
 */

#include <cstdio>

#include "winograd/plan.hh"
#include "winograd/tuner.hh"
#include "workloads/layers.hh"

using namespace winomc;

int
main()
{
    std::printf("tune mode: %s\n\n",
                tune::tuneModeName(tune::requestedTuneMode()));

    std::vector<ConvSpec> specs = workloads::tableTwoLayers(8);
    for (ConvSpec s : workloads::modernLayers(8))
        specs.push_back(s);

    std::printf("%-12s %-34s %-18s %10s %10s %10s\n", "layer", "shape",
                "algorithm", "pred_ms", "meas_ms", "from_cache");
    for (const ConvSpec &spec : specs) {
        const tune::AlgoChoice c = tune::selectAlgorithm(spec);
        char algo[48];
        switch (c.kind) {
          case tune::AlgoKind::Direct:
            std::snprintf(algo, sizeof(algo), "direct");
            break;
          case tune::AlgoKind::Winograd:
            std::snprintf(algo, sizeof(algo), "winograd F(%d,3)", c.m);
            break;
          case tune::AlgoKind::Decomposed:
            std::snprintf(algo, sizeof(algo), "decomposed F(%d,3) x%d",
                          c.m, int(decomposeSpec(spec).size()));
            break;
        }
        std::printf("%-12s %-34s %-18s %10.3f %10.3f %10d\n",
                    spec.name.c_str(), spec.key().c_str(), algo,
                    c.predictedMs, c.measuredMs, c.fromCache ? 1 : 0);
    }
    return 0;
}
