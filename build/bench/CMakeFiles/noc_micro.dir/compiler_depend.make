# Empty compiler generated dependencies file for noc_micro.
# This may be replaced when dependencies are built.
