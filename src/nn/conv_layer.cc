#include "nn/conv_layer.hh"

namespace winomc::nn {

ConvLayer::ConvLayer(int in_ch, int out_ch, int r_, ConvMode mode,
                     const WinogradAlgo &algo_, Rng &rng)
    : inCh(in_ch), outCh(out_ch), r(r_), convMode(mode), algo(algo_),
      w(out_ch, in_ch, r_, r_), dw(out_ch, in_ch, r_, r_)
{
    winomc_assert(r_ % 2 == 1, "ConvLayer needs odd filter size");
    if (mode != ConvMode::Direct) {
        winomc_assert(algo.r == r_, "algorithm r=", algo.r,
                      " mismatches layer r=", r_);
    }
    w.fillKaiming(rng);
    if (mode != ConvMode::Direct) {
        W = transformWeights(w, algo);
        dW = WinoWeights(algo.alpha, out_ch, in_ch);
    }
}

Tensor
ConvLayer::forward(const Tensor &x, bool train)
{
    winomc_assert(x.c() == inCh, "ConvLayer expected ", inCh,
                  " channels, got ", x.c());
    lastH = x.h();
    lastW = x.w();

    if (convMode == ConvMode::Direct) {
        if (train)
            cachedX = x;
        return directConvForward(x, w);
    }

    WinoTiles X = transformInput(x, algo);
    WinoTiles Y = elementwiseForward(X, W);
    Tensor y = inverseTransform(Y, algo, x.h(), x.w());
    if (train) {
        cachedXt = std::move(X);
        cachedY = std::move(Y);
    }
    return y;
}

Tensor
ConvLayer::backward(const Tensor &dy)
{
    haveGrad = true;
    if (convMode == ConvMode::Direct) {
        dw += directConvGradWeights(cachedX, dy, r);
        return directConvBackwardData(dy, w);
    }

    WinoTiles dY = inverseTransformAdjoint(dy, algo);
    WinoWeights g = elementwiseGradWeights(dY, cachedXt);
    if (convMode == ConvMode::WinogradLayer) {
        dW += g;
    } else {
        // Chain through W = G w G^T back to the spatial parameters.
        dw += transformWeightsAdjoint(g, algo);
    }
    WinoTiles dX = elementwiseBackwardData(dY, W);
    return transformInputAdjoint(dX, algo, lastH, lastW);
}

void
ConvLayer::step(float lr)
{
    if (!haveGrad)
        return;
    haveGrad = false;
    switch (convMode) {
      case ConvMode::Direct:
        dw *= -lr;
        w += dw;
        dw.fill(0.0f);
        break;
      case ConvMode::WinogradSpatial:
        dw *= -lr;
        w += dw;
        dw.fill(0.0f);
        W = transformWeights(w, algo);
        break;
      case ConvMode::WinogradLayer:
        dW *= -lr;
        W += dW;
        dW.fill(0.0f);
        break;
    }
}

size_t
ConvLayer::paramCount() const
{
    if (convMode == ConvMode::WinogradLayer)
        return W.size();
    return w.size();
}

std::string
ConvLayer::name() const
{
    switch (convMode) {
      case ConvMode::Direct:
        return "conv_direct";
      case ConvMode::WinogradSpatial:
        return "conv_wino_spatial";
      case ConvMode::WinogradLayer:
        return "conv_wino_layer";
    }
    return "conv";
}

} // namespace winomc::nn
