/**
 * @file
 * Procedurally generated image-classification dataset.
 *
 * The paper's data-dependent experiments use CIFAR / ImageNet, which are
 * unavailable offline; this generator produces a shape-classification
 * task (bars, crosses, rings, blobs with noise and jitter) whose trained
 * CNNs exhibit the properties those experiments rely on: sparse ReLU
 * activations and approximately normal Winograd-domain tile values (the
 * paper itself observes the normality, Section V-A). See the
 * substitution table in DESIGN.md.
 */

#ifndef WINOMC_NN_DATASET_HH
#define WINOMC_NN_DATASET_HH

#include <vector>

#include "common/rng.hh"
#include "tensor/tensor.hh"

namespace winomc::nn {

/** A labeled set of single-channel images. */
struct Dataset
{
    int imageSize;       ///< square edge
    int classes;
    std::vector<Tensor> images;  ///< each (1, 1, s, s)
    std::vector<int> labels;

    size_t size() const { return images.size(); }

    /** Stack items [first, first+count) into one (count,1,s,s) batch. */
    Tensor batch(size_t first, size_t count,
                 std::vector<int> &labels_out) const;
};

/**
 * Generate a synthetic shape dataset.
 *
 * Classes: 0 horizontal bar, 1 vertical bar, 2 diagonal, 3 cross,
 * 4 ring, 5 filled blob (classes beyond `classes` unused).
 */
Dataset makeShapeDataset(int count, int image_size, int classes, Rng &rng);

} // namespace winomc::nn

#endif // WINOMC_NN_DATASET_HH
