
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memnet/cluster.cc" "src/memnet/CMakeFiles/winomc_memnet.dir/cluster.cc.o" "gcc" "src/memnet/CMakeFiles/winomc_memnet.dir/cluster.cc.o.d"
  "/root/repo/src/memnet/collective.cc" "src/memnet/CMakeFiles/winomc_memnet.dir/collective.cc.o" "gcc" "src/memnet/CMakeFiles/winomc_memnet.dir/collective.cc.o.d"
  "/root/repo/src/memnet/link_model.cc" "src/memnet/CMakeFiles/winomc_memnet.dir/link_model.cc.o" "gcc" "src/memnet/CMakeFiles/winomc_memnet.dir/link_model.cc.o.d"
  "/root/repo/src/memnet/message_sim.cc" "src/memnet/CMakeFiles/winomc_memnet.dir/message_sim.cc.o" "gcc" "src/memnet/CMakeFiles/winomc_memnet.dir/message_sim.cc.o.d"
  "/root/repo/src/memnet/pipeline.cc" "src/memnet/CMakeFiles/winomc_memnet.dir/pipeline.cc.o" "gcc" "src/memnet/CMakeFiles/winomc_memnet.dir/pipeline.cc.o.d"
  "/root/repo/src/memnet/reduce_engine.cc" "src/memnet/CMakeFiles/winomc_memnet.dir/reduce_engine.cc.o" "gcc" "src/memnet/CMakeFiles/winomc_memnet.dir/reduce_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/winomc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/winomc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/winomc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
