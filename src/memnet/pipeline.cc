#include "memnet/pipeline.hh"

#include <algorithm>

#include "common/logging.hh"

namespace winomc::memnet {

double
pipelinedPhaseTime(const PhaseWork &work, PipelineStats *stats)
{
    winomc_assert(work.waves >= 1, "need at least one wave");
    winomc_assert(work.scatterSec >= 0 && work.computeSec >= 0 &&
                  work.gatherSec >= 0, "negative phase work");

    const int w = work.waves;
    const double sc = work.scatterSec / w;
    const double co = work.computeSec / w;
    const double ga = work.gatherSec / w;

    // Deterministic greedy resource schedule: the communication engine
    // serializes scatter_i / gather_j, the compute unit serializes
    // compute_i; wave order fixes all ties.
    double comm_free = 0.0, comp_free = 0.0, makespan = 0.0;
    for (int i = 0; i < w; ++i) {
        double s_end = comm_free + sc;
        comm_free = s_end;

        double c_end = std::max(comp_free, s_end) + co;
        comp_free = c_end;

        double g_end = std::max(comm_free, c_end) + ga;
        comm_free = g_end;
        makespan = std::max(makespan, g_end);
    }
    if (stats) {
        stats->makespanSec = makespan;
        stats->commBusySec = work.scatterSec + work.gatherSec;
        stats->compBusySec = work.computeSec;
        stats->commIdleSec =
            std::max(0.0, makespan - stats->commBusySec);
        stats->compIdleSec =
            std::max(0.0, makespan - stats->compBusySec);
    }
    return makespan;
}

} // namespace winomc::memnet
