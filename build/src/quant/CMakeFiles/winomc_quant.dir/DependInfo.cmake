
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/activation_map.cc" "src/quant/CMakeFiles/winomc_quant.dir/activation_map.cc.o" "gcc" "src/quant/CMakeFiles/winomc_quant.dir/activation_map.cc.o.d"
  "/root/repo/src/quant/predict.cc" "src/quant/CMakeFiles/winomc_quant.dir/predict.cc.o" "gcc" "src/quant/CMakeFiles/winomc_quant.dir/predict.cc.o.d"
  "/root/repo/src/quant/quantizer.cc" "src/quant/CMakeFiles/winomc_quant.dir/quantizer.cc.o" "gcc" "src/quant/CMakeFiles/winomc_quant.dir/quantizer.cc.o.d"
  "/root/repo/src/quant/zero_skip.cc" "src/quant/CMakeFiles/winomc_quant.dir/zero_skip.cc.o" "gcc" "src/quant/CMakeFiles/winomc_quant.dir/zero_skip.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/winograd/CMakeFiles/winomc_winograd.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/winomc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/winomc_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
