#include "memnet/link_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"

namespace winomc::memnet {

LinkSpec
LinkSpec::full()
{
    return LinkSpec{laneBandwidth(16, 15.0), 5e-9 + 2e-9};
}

LinkSpec
LinkSpec::narrow()
{
    return LinkSpec{laneBandwidth(8, 10.0), 5e-9 + 2e-9};
}

std::vector<double>
linkLoads(const noc::Topology &topo,
          const std::vector<std::vector<double>> &bytes)
{
    const int n = topo.nodes();
    const int ports = topo.ports();
    winomc_assert(int(bytes.size()) == n, "traffic matrix size mismatch");
    std::vector<double> load(size_t(n) * ports, 0.0);

    for (int s = 0; s < n; ++s) {
        winomc_assert(int(bytes[size_t(s)].size()) == n,
                      "traffic matrix row size mismatch");
        for (int d = 0; d < n; ++d) {
            double v = bytes[size_t(s)][size_t(d)];
            if (s == d || v <= 0.0)
                continue;
            int cur = s;
            while (cur != d) {
                int port = topo.route(cur, d);
                load[size_t(cur) * ports + port] += v;
                cur = topo.neighbor(cur, port);
            }
        }
    }
    return load;
}

double
bottleneckTime(const noc::Topology &topo,
               const std::vector<std::vector<double>> &bytes,
               const LinkSpec &link)
{
    std::vector<double> load = linkLoads(topo, bytes);
    double max_load = 0.0;
    for (double v : load)
        max_load = std::max(max_load, v);
    if (max_load == 0.0)
        return 0.0;

    int max_hops = 0;
    const int n = topo.nodes();
    for (int s = 0; s < n; ++s)
        for (int d = 0; d < n; ++d)
            if (s != d && bytes[size_t(s)][size_t(d)] > 0.0)
                max_hops = std::max(max_hops, topo.hopCount(s, d));

    return max_load / link.bandwidth + max_hops * link.hopLatencySec;
}

double
allToAllTime(const noc::Topology &topo, double bytes_per_pair,
             const LinkSpec &link)
{
    const int n = topo.nodes();
    std::vector<std::vector<double>> bytes(
        size_t(n), std::vector<double>(size_t(n), bytes_per_pair));
    for (int i = 0; i < n; ++i)
        bytes[size_t(i)][size_t(i)] = 0.0;
    return bottleneckTime(topo, bytes, link);
}

} // namespace winomc::memnet
