file(REMOVE_RECURSE
  "CMakeFiles/dram_micro.dir/dram_micro.cpp.o"
  "CMakeFiles/dram_micro.dir/dram_micro.cpp.o.d"
  "dram_micro"
  "dram_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
