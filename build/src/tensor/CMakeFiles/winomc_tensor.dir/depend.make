# Empty dependencies file for winomc_tensor.
# This may be replaced when dependencies are built.
