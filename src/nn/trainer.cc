#include "nn/trainer.hh"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "nn/loss.hh"

namespace winomc::nn {

std::vector<EpochStats>
train(Module &model, const Dataset &train_set, const Dataset &val_set,
      const TrainConfig &cfg, Rng &rng)
{
    static std::once_flag engine_logged;
    std::call_once(engine_logged, [] {
        winomc_inform("host execution engine: ",
                      ThreadPool::global().threadCount(),
                      " thread(s) (WINOMC_THREADS overrides)");
    });

    std::vector<EpochStats> history;
    std::vector<size_t> order(train_set.size());
    std::iota(order.begin(), order.end(), 0);

    float lr = cfg.lr;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        std::shuffle(order.begin(), order.end(), rng.raw());

        double loss_sum = 0.0;
        int correct = 0, seen = 0, batches = 0;
        for (size_t pos = 0; pos + cfg.batchSize <= train_set.size();
             pos += size_t(cfg.batchSize)) {
            // Gather the shuffled batch.
            Tensor xb(cfg.batchSize, 1, train_set.imageSize,
                      train_set.imageSize);
            std::vector<int> yb(size_t(cfg.batchSize));
            for (int k = 0; k < cfg.batchSize; ++k) {
                const Tensor &img = train_set.images[order[pos + k]];
                for (int i = 0; i < train_set.imageSize; ++i)
                    for (int j = 0; j < train_set.imageSize; ++j)
                        xb.at(k, 0, i, j) = img.at(i, j);
                yb[size_t(k)] = train_set.labels[order[pos + k]];
            }

            Tensor logits = model.forward(xb, true);
            LossResult res = softmaxCrossEntropy(logits, yb);
            model.backward(res.dlogits);
            model.step(lr);

            loss_sum += res.loss;
            correct += res.correct;
            seen += cfg.batchSize;
            ++batches;
        }

        EpochStats st;
        st.trainLoss = batches ? loss_sum / batches : 0.0;
        st.trainAcc = seen ? double(correct) / seen : 0.0;
        st.valAcc = evaluate(model, val_set, cfg.batchSize);
        history.push_back(st);
        if (cfg.verbose) {
            winomc_inform("epoch ", epoch + 1, "/", cfg.epochs, " loss ",
                          st.trainLoss, " train acc ", st.trainAcc,
                          " val acc ", st.valAcc);
        }
        lr *= cfg.lrDecay;
    }
    return history;
}

double
evaluate(Module &model, const Dataset &ds, int batch_size)
{
    int correct = 0, seen = 0;
    for (size_t pos = 0; pos < ds.size(); pos += size_t(batch_size)) {
        size_t count = std::min(size_t(batch_size), ds.size() - pos);
        std::vector<int> yb;
        Tensor xb = ds.batch(pos, count, yb);
        Tensor logits = model.forward(xb, false);
        LossResult res = softmaxCrossEntropy(logits, yb);
        correct += res.correct;
        seen += int(count);
    }
    return seen ? double(correct) / seen : 0.0;
}

} // namespace winomc::nn
