/**
 * @file
 * Tests for the quantizer and activation predictor: bracket/monotonicity
 * properties of the non-uniform quantizer, the no-false-negative
 * guarantee of the conservative prediction (property-tested over random
 * Gaussian tiles), 1D-vs-2D predict accuracy ordering, and zero-skip
 * counting.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "quant/activation_map.hh"
#include "quant/predict.hh"
#include "quant/prune.hh"
#include "quant/quantizer.hh"
#include "quant/zero_skip.hh"
#include "winograd/conv.hh"

namespace winomc::quant {
namespace {

// -------------------------------------------------------------- Quantizer

struct QuantCfg
{
    int levels, regions;
};

class QuantizerP : public ::testing::TestWithParam<QuantCfg> {};

TEST_P(QuantizerP, FloorBracketHolds)
{
    const auto cfg = GetParam();
    NonUniformQuantizer qz(cfg.levels, cfg.regions, 1.0);
    Rng rng(101);
    for (int k = 0; k < 20000; ++k) {
        float v = float(rng.gaussian(0.0, 1.3));
        Quantized q = qz.quantize(v);
        if (q.overflow) {
            EXPECT_GE(std::fabs(v), float(qz.fullScale()) * 0.999f);
            continue;
        }
        // Floor semantics: q <= v < q + res.
        EXPECT_LE(q.q, v) << "v=" << v;
        EXPECT_LT(v, q.q + q.res + 1e-6f) << "v=" << v;
        EXPECT_GT(q.res, 0.0f);
    }
}

TEST_P(QuantizerP, EncodeDecodeRoundTrip)
{
    const auto cfg = GetParam();
    NonUniformQuantizer qz(cfg.levels, cfg.regions, 2.0);
    Rng rng(102);
    for (int k = 0; k < 5000; ++k) {
        float v = float(rng.uniform(-qz.fullScale(), qz.fullScale()));
        int code = qz.encode(v);
        Quantized direct = qz.quantize(v);
        Quantized via = qz.decode(code);
        EXPECT_FLOAT_EQ(direct.q, via.q);
        EXPECT_FLOAT_EQ(direct.res, via.res);
        EXPECT_EQ(direct.overflow, via.overflow);
    }
}

TEST_P(QuantizerP, CodesMonotoneInValue)
{
    const auto cfg = GetParam();
    NonUniformQuantizer qz(cfg.levels, cfg.regions, 1.0);
    double lo = -qz.fullScale() * 0.999, hi = qz.fullScale() * 0.999;
    int prev = qz.encode(float(lo));
    for (int k = 1; k <= 400; ++k) {
        float v = float(lo + (hi - lo) * k / 400.0);
        int code = qz.encode(v);
        EXPECT_GE(code, prev) << "v=" << v;
        prev = code;
    }
}

INSTANTIATE_TEST_SUITE_P(Configs, QuantizerP,
    ::testing::Values(QuantCfg{64, 1}, QuantCfg{64, 2}, QuantCfg{64, 4},
                      QuantCfg{64, 8}, QuantCfg{32, 1}, QuantCfg{32, 4},
                      QuantCfg{16, 2}),
    [](const ::testing::TestParamInfo<QuantCfg> &info) {
        return "L" + std::to_string(info.param.levels) + "R" +
               std::to_string(info.param.regions);
    });

TEST(Quantizer, StepDoublesAcrossRegions)
{
    NonUniformQuantizer qz(64, 4, 1.0);
    // 8 steps per region per side; step in region r is delta * 2^r.
    double delta = qz.baseStep();
    // Value inside region 0.
    Quantized a = qz.quantize(float(delta * 0.5));
    EXPECT_NEAR(a.res, delta, 1e-6);
    // Value inside region 1 (just past 8 * delta).
    Quantized b = qz.quantize(float(delta * 9.0));
    EXPECT_NEAR(b.res, 2.0 * delta, 1e-6);
    // Region 3.
    double region3_lo = delta * 8.0 * (1 + 2 + 4);
    Quantized c = qz.quantize(float(region3_lo * 1.01));
    EXPECT_NEAR(c.res, 8.0 * delta, 1e-6);
}

TEST(Quantizer, BitsAndUniformDegenerate)
{
    NonUniformQuantizer q64(64, 4, 1.0);
    EXPECT_EQ(q64.bits(), 6);
    NonUniformQuantizer q32(32, 4, 1.0);
    EXPECT_EQ(q32.bits(), 5);

    // regions=1 is uniform: every step has the same width.
    NonUniformQuantizer qu(32, 1, 1.0);
    Rng rng(5);
    float first_res = -1.0f;
    for (int k = 0; k < 100; ++k) {
        Quantized q = qu.quantize(float(rng.uniform(-3.9, 3.9)));
        if (q.overflow)
            continue;
        if (first_res < 0)
            first_res = q.res;
        EXPECT_FLOAT_EQ(q.res, first_res);
    }
}

TEST_P(QuantizerP, BracketsTileTheRange)
{
    // Consecutive codes cover contiguous, non-overlapping brackets:
    // decode(k).q + decode(k).res == decode(k+1).q across the range.
    const auto cfg = GetParam();
    NonUniformQuantizer qz(cfg.levels, cfg.regions, 1.0);
    for (int code = 0; code + 1 < qz.levels(); ++code) {
        Quantized a = qz.decode(code);
        Quantized b = qz.decode(code + 1);
        ASSERT_FALSE(a.overflow);
        ASSERT_FALSE(b.overflow);
        EXPECT_NEAR(a.q + a.res, b.q, 1e-5)
            << "code " << code << " of " << qz.levels();
    }
    // The full grid spans [-range, range).
    Quantized lo = qz.decode(0);
    Quantized hi = qz.decode(qz.levels() - 1);
    EXPECT_NEAR(lo.q, -qz.fullScale(), 1e-5);
    EXPECT_NEAR(hi.q + hi.res, qz.fullScale(), 1e-5);
}

TEST(Quantizer, OverflowFlagged)
{
    NonUniformQuantizer qz(64, 4, 1.0); // range = 4 sigma = 4
    EXPECT_TRUE(qz.quantize(4.5f).overflow);
    EXPECT_TRUE(qz.quantize(-4.5f).overflow);
    EXPECT_FALSE(qz.quantize(3.9f).overflow);
    EXPECT_FALSE(qz.quantize(-3.9f).overflow);
    EXPECT_FALSE(qz.quantize(0.0f).overflow);
}

// -------------------------------------------------------------- Predictor

/// Gaussian random tiles: the distribution the paper observes for
/// Winograd-domain values (Section V-A).
WinoTiles
randomTiles(const WinogradAlgo &algo, int channels, int batch, int tiles,
            double sigma, double mean, Rng &rng)
{
    WinoTiles Y(algo.alpha, channels, batch, tiles);
    for (int uv = 0; uv < Y.uvCount(); ++uv)
        for (int c = 0; c < channels; ++c)
            for (int b = 0; b < batch; ++b)
                for (int t = 0; t < tiles; ++t)
                    Y.at(uv, c, b, t) = float(rng.gaussian(mean, sigma));
    return Y;
}

struct PredCfg
{
    int levels, regions;
    PredictMode mode;
};

class PredictorP : public ::testing::TestWithParam<PredCfg> {};

TEST_P(PredictorP, NoFalseNegativesOnGaussianTiles)
{
    const auto cfg = GetParam();
    const WinogradAlgo algo = makeWinograd(2, 3);
    Rng rng(777);
    // Negative mean so a sizable fraction of tiles is genuinely dead.
    WinoTiles Y = randomTiles(algo, 4, 4, 64, 1.0, -0.3, rng);

    double sigma = ActivationPredictor::wireSigma(Y, algo, cfg.mode);
    NonUniformQuantizer qz(cfg.levels, cfg.regions, sigma);
    ActivationPredictor pred(algo, qz, cfg.mode);
    PredictStats st = pred.run(Y);

    EXPECT_EQ(st.falseNegatives, 0u) << "conservativeness violated";
    EXPECT_GT(st.tiles, 0u);
    // Prediction can never exceed the actual dead ratio.
    EXPECT_LE(st.tilesDeadPredicted, st.tilesDeadActual);
    EXPECT_LE(st.linesDeadPredicted, st.linesDeadActual);
}

INSTANTIATE_TEST_SUITE_P(Configs, PredictorP,
    ::testing::Values(PredCfg{64, 1, PredictMode::TwoD},
                      PredCfg{64, 4, PredictMode::TwoD},
                      PredCfg{64, 8, PredictMode::TwoD},
                      PredCfg{32, 4, PredictMode::OneD},
                      PredCfg{32, 1, PredictMode::OneD},
                      PredCfg{16, 4, PredictMode::TwoD}),
    [](const ::testing::TestParamInfo<PredCfg> &info) {
        return std::string(info.param.mode == PredictMode::TwoD ? "p2d"
                                                                : "p1d") +
               "L" + std::to_string(info.param.levels) + "R" +
               std::to_string(info.param.regions);
    });

TEST(Predictor, PerfectQuantizerPredictsExactly)
{
    // With absurdly fine quantization the prediction approaches the
    // real-value upper limit (the dotted line of Fig 12).
    const WinogradAlgo algo = makeWinograd(2, 3);
    Rng rng(31);
    WinoTiles Y = randomTiles(algo, 2, 2, 64, 1.0, -0.5, rng);

    double sigma = ActivationPredictor::wireSigma(Y, algo,
                                                  PredictMode::OneD);
    NonUniformQuantizer qz(4096, 4, sigma);
    ActivationPredictor pred(algo, qz, PredictMode::OneD);
    PredictStats st = pred.run(Y);

    EXPECT_EQ(st.falseNegatives, 0u);
    // Nearly all actually-dead tiles should be caught.
    EXPECT_GE(st.tilesDeadPredicted,
              uint64_t(0.9 * double(st.tilesDeadActual)));
}

TEST(Predictor, OneDPredictsAtLeastAsManyTilesAsTwoD)
{
    // 1D predict accumulates only one stage of quantization error, so
    // with the same level budget it should catch at least as many dead
    // tiles (the paper's observation, Section V-B).
    const WinogradAlgo algo = makeWinograd(2, 3);
    Rng rng(32);
    WinoTiles Y = randomTiles(algo, 4, 2, 128, 1.0, -0.4, rng);

    double s2 = ActivationPredictor::wireSigma(Y, algo, PredictMode::TwoD);
    double s1 = ActivationPredictor::wireSigma(Y, algo, PredictMode::OneD);
    ActivationPredictor p2(algo, NonUniformQuantizer(32, 4, s2),
                           PredictMode::TwoD);
    ActivationPredictor p1(algo, NonUniformQuantizer(32, 4, s1),
                           PredictMode::OneD);
    PredictStats st2 = p2.run(Y);
    PredictStats st1 = p1.run(Y);

    EXPECT_GE(st1.tilesDeadPredicted, st2.tilesDeadPredicted);
}

TEST(Predictor, AllNegativeTilePredictedDead)
{
    const WinogradAlgo algo = makeWinograd(2, 3);
    WinoTiles Y(algo.alpha, 1, 1, 1);
    // Only the DC-ish element set to a large negative value: spatial
    // neurons are all strongly negative.
    for (int uv = 0; uv < Y.uvCount(); ++uv)
        Y.at(uv, 0, 0, 0) = -3.0f;

    NonUniformQuantizer qz(64, 4, 1.0);
    ActivationPredictor pred(algo, qz, PredictMode::OneD);
    PredictStats st = pred.run(Y);
    EXPECT_EQ(st.tilesDeadActual, 1u);
    EXPECT_EQ(st.falseNegatives, 0u);
}

TEST(Predictor, OverflowNeverSkips)
{
    const WinogradAlgo algo = makeWinograd(2, 3);
    WinoTiles Y(algo.alpha, 1, 1, 1);
    for (int uv = 0; uv < Y.uvCount(); ++uv)
        Y.at(uv, 0, 0, 0) = -100.0f; // far outside 4-sigma of qz below

    NonUniformQuantizer qz(64, 4, 1.0);
    ActivationPredictor pred(algo, qz, PredictMode::TwoD);
    PredictStats st = pred.run(Y);
    EXPECT_EQ(st.overflowTiles, 1u);
    EXPECT_EQ(st.tilesDeadPredicted, 0u); // conservative: no skip
    EXPECT_EQ(st.tilesDeadActual, 1u);
    EXPECT_EQ(st.falseNegatives, 0u);
}

// -------------------------------------------------------------- Zero skip

TEST(ZeroSkip, AllZeroInputFullySkippable)
{
    const WinogradAlgo algo = makeWinograd(2, 3);
    Tensor x(1, 1, 8, 8); // zeros
    ZeroSkipStats st = zeroSkipScatter(x, algo, PredictMode::TwoD);
    EXPECT_EQ(st.zeros, st.elems);
    EXPECT_DOUBLE_EQ(st.ratio(), 1.0);
}

TEST(ZeroSkip, DenseInputMostlyUnskippable)
{
    const WinogradAlgo algo = makeWinograd(2, 3);
    Rng rng(8);
    Tensor x(1, 1, 8, 8);
    x.fillUniform(rng, 0.5f, 1.5f); // strictly positive, dense
    ZeroSkipStats st = zeroSkipScatter(x, algo, PredictMode::TwoD);
    EXPECT_LT(st.ratio(), 0.1);
}

TEST(ZeroSkip, SparsePostReluInputPartiallySkippable)
{
    const WinogradAlgo algo = makeWinograd(2, 3);
    Rng rng(9);
    Tensor x(2, 2, 16, 16);
    x.fillGaussian(rng);
    // Apply ReLU and zero whole patches to mimic post-pool sparsity.
    for (int b = 0; b < 2; ++b)
        for (int c = 0; c < 2; ++c)
            for (int i = 0; i < 16; ++i)
                for (int j = 0; j < 16; ++j) {
                    float &v = x.at(b, c, i, j);
                    if (v < 0.0f || (i / 4 + j / 4) % 2 == 0)
                        v = 0.0f;
                }
    ZeroSkipStats st2 = zeroSkipScatter(x, algo, PredictMode::TwoD);
    ZeroSkipStats st1 = zeroSkipScatter(x, algo, PredictMode::OneD);
    EXPECT_GT(st2.ratio(), 0.1);
    // The one-sided representation preserves more raw zeros.
    EXPECT_GE(st1.ratio(), st2.ratio());
}

// ------------------------------------------------------------- Pruning

TEST(Prune, MagnitudePrunePicksSmallestAndHitsExactCount)
{
    // Distinct magnitudes: the pruned set is exactly the smallest-|w|
    // fraction, with round(sparsity * size) members.
    WinoWeights w(4, 3, 5); // 16 * 3 * 5 = 240 coefficients
    float v = 1.0f;
    for (int uv = 0; uv < w.uvCount(); ++uv)
        for (int j = 0; j < w.outChannels(); ++j)
            for (int i = 0; i < w.inChannels(); ++i) {
                w.at(uv, j, i) = (((uv + j + i) % 2) ? v : -v) * 0.01f;
                v += 1.0f;
            }

    PruneMask mask = magnitudePrune(w, 0.4);
    EXPECT_EQ(mask.prunedCount(), std::size_t(96)); // 0.4 * 240
    EXPECT_DOUBLE_EQ(mask.sparsity(), 0.4);

    // Every pruned magnitude <= every kept magnitude.
    float max_pruned = 0.0f, min_kept = 1e30f;
    for (int uv = 0; uv < w.uvCount(); ++uv)
        for (int j = 0; j < w.outChannels(); ++j)
            for (int i = 0; i < w.inChannels(); ++i) {
                const float a = std::fabs(w.at(uv, j, i));
                if (mask.pruned(uv, j, i))
                    max_pruned = std::max(max_pruned, a);
                else
                    min_kept = std::min(min_kept, a);
            }
    EXPECT_LE(max_pruned, min_kept);

    mask.apply(w);
    EXPECT_DOUBLE_EQ(winogradWeightSparsity(w), 0.4);
    for (int uv = 0; uv < w.uvCount(); ++uv)
        for (int j = 0; j < w.outChannels(); ++j)
            for (int i = 0; i < w.inChannels(); ++i)
                if (mask.pruned(uv, j, i)) {
                    EXPECT_EQ(w.at(uv, j, i), 0.0f);
                }
}

TEST(Prune, ThresholdTiesResolveDeterministically)
{
    // All magnitudes equal: the target count must still be met
    // exactly, ties resolved in flat index order (so two runs always
    // produce the same mask).
    WinoWeights w(2, 4, 4);
    w.fill(0.5f);
    PruneMask a = magnitudePrune(w, 0.5);
    PruneMask b = magnitudePrune(w, 0.5);
    EXPECT_EQ(a.prunedCount(), w.size() / 2);
    for (int uv = 0; uv < w.uvCount(); ++uv)
        for (int j = 0; j < w.outChannels(); ++j)
            for (int i = 0; i < w.inChannels(); ++i)
                EXPECT_EQ(a.pruned(uv, j, i), b.pruned(uv, j, i));
}

TEST(Prune, SparsityExtremesAndClamping)
{
    WinoWeights w(2, 2, 3);
    w.fill(1.0f);
    EXPECT_EQ(magnitudePrune(w, 0.0).prunedCount(), 0u);
    EXPECT_EQ(magnitudePrune(w, -2.0).prunedCount(), 0u); // clamped
    EXPECT_EQ(magnitudePrune(w, 1.0).prunedCount(), w.size());
    EXPECT_EQ(magnitudePrune(w, 7.0).prunedCount(), w.size());
    EXPECT_DOUBLE_EQ(PruneMask().sparsity(), 0.0); // empty mask
}

// --------------------------------------------------------- Packing DMA

TEST(ActivationMap, SetAndCount)
{
    ActivationMap map(20);
    for (size_t u = 0; u < 20; ++u)
        EXPECT_FALSE(map.live(u));
    map.set(3, true);
    map.set(9, true);
    map.set(19, true);
    map.set(9, false);
    EXPECT_TRUE(map.live(3));
    EXPECT_FALSE(map.live(9));
    EXPECT_EQ(map.liveCount(), 2u);
    EXPECT_EQ(map.mapBytes(), 3u); // ceil(20/8)
}

TEST(ActivationMap, PackUnpackRoundTrip)
{
    Rng rng(3);
    const size_t units = 40, uf = 16;
    std::vector<float> data(units * uf, 0.0f);
    ActivationMap map(units);
    for (size_t u = 0; u < units; ++u) {
        bool live = rng.coin(0.4);
        map.set(u, live);
        if (live)
            for (size_t k = 0; k < uf; ++k)
                data[u * uf + k] = float(rng.uniform(-1, 1));
    }

    auto packed = packUnits(data.data(), uf, map);
    EXPECT_EQ(packed.size(), map.liveCount() * uf);

    std::vector<float> restored(units * uf, -1.0f);
    unpackUnits(packed, uf, map, restored.data());
    for (size_t i = 0; i < data.size(); ++i)
        EXPECT_FLOAT_EQ(restored[i], data[i]) << i;
}

TEST(ActivationMap, ZeroUnitsDetected)
{
    const size_t units = 8, uf = 4;
    std::vector<float> data(units * uf, 0.0f);
    data[1 * uf + 2] = 3.0f; // unit 1 live
    data[6 * uf + 0] = -1.0f; // unit 6 live
    ActivationMap map = mapFromZeroUnits(data.data(), units, uf);
    EXPECT_EQ(map.liveCount(), 2u);
    EXPECT_TRUE(map.live(1));
    EXPECT_TRUE(map.live(6));
    EXPECT_FALSE(map.live(0));

    // Packed transfer + map is smaller than the raw stream whenever
    // sparsity beats the 1-bit/unit overhead.
    size_t raw = units * uf * 4;
    EXPECT_LT(packedWireBytes(map, uf), raw);
}

TEST(ActivationMap, DenseDataCostsOnlyTheMap)
{
    const size_t units = 16, uf = 8;
    std::vector<float> data(units * uf, 1.0f);
    ActivationMap map = mapFromZeroUnits(data.data(), units, uf);
    EXPECT_EQ(map.liveCount(), units);
    EXPECT_EQ(packedWireBytes(map, uf), units * uf * 4 + 2);
}

TEST(ActivationMap, EndToEndWithZeroSkipScatter)
{
    // Scatter path: transform post-ReLU input one-sided, drop zero
    // units, ship, reconstruct - the receiver's dot products see
    // exactly the original values.
    Rng rng(12);
    const size_t units = 64, uf = 4; // 4-value lines
    std::vector<float> stream(units * uf);
    for (auto &v : stream)
        v = rng.coin(0.5) ? 0.0f : float(rng.uniform(-2, 2));
    // Zero whole random units to create skippable lines.
    for (size_t u = 0; u < units; u += 3)
        for (size_t k = 0; k < uf; ++k)
            stream[u * uf + k] = 0.0f;

    ActivationMap map = mapFromZeroUnits(stream.data(), units, uf);
    auto packed = packUnits(stream.data(), uf, map);
    std::vector<float> restored(units * uf, -7.0f);
    unpackUnits(packed, uf, map, restored.data());
    for (size_t i = 0; i < stream.size(); ++i)
        EXPECT_FLOAT_EQ(restored[i], stream[i]);
    EXPECT_LT(packedWireBytes(map, uf), units * uf * 4);
}

} // namespace
} // namespace winomc::quant
