/**
 * @file
 * The full memory-centric network of Figure 9: N_g groups of N_c
 * workers (default 16 x 16 = 256) plus the host.
 *
 * Wiring:
 *  - a bidirectional ring through the workers of each group (the
 *    full-width links carrying the weight collectives);
 *  - a 2D flattened butterfly across the group-representatives of each
 *    cluster, i.e. the workers sharing an in-group index (the narrow
 *    links carrying tile transfer);
 *  - a host link from worker 0 of every group to the host processor
 *    (used by dynamic clustering to bridge groups, Section IV).
 *
 * Minimal dimension-ordered routing: fix the in-group index over the
 * ring first, then the group over the flattened butterfly; host
 * traffic enters/leaves through the group heads. Ring dateline VCs
 * keep the composite deadlock-free (ring channels depend only on
 * butterfly channels, never the reverse).
 *
 * Note the flit simulator models one link width per network; combined-
 * topology experiments use the narrow width everywhere, which is the
 * conservative choice for tile traffic (the system model accounts for
 * the two classes separately).
 */

#ifndef WINOMC_NOC_MEMCENTRIC_HH
#define WINOMC_NOC_MEMCENTRIC_HH

#include "noc/topology.hh"

namespace winomc::noc {

class MemCentricTopology : public Topology
{
  public:
    /**
     * @param groups   worker groups (default 16); must be a square
     *                 number so the cluster butterfly is 2D
     * @param per_group workers per group / ring length (default 16)
     */
    explicit MemCentricTopology(int groups = 16, int per_group = 16);

    std::string name() const override { return "memcentric"; }
    int nodes() const override { return ng * nc + 1; }
    int ports() const override;
    int neighbor(int node, int port) const override;
    int peerPort(int node, int port) const override;
    int route(int cur, int dst) const override;
    int nextVc(int node, int out_port, int cur_vc) const override;
    int vcsNeeded() const override { return 2; }

    int hostNode() const { return ng * nc; }
    int groupOf(int worker) const { return worker / nc; }
    int indexOf(int worker) const { return worker % nc; }
    int workerAt(int group, int index) const { return group * nc + index; }

    /** Port layout on workers. */
    int ringCwPort() const { return 0; }
    int ringCcwPort() const { return 1; }
    int fbflyPortBase() const { return 2; }
    int fbflyPorts() const { return 2 * (k - 1); }
    int hostPort() const { return 2 + fbflyPorts(); }

  private:
    int rowOf(int group) const { return group / k; }
    int colOf(int group) const { return group % k; }
    /** Output fbfly port at `group` toward `dst_group`. */
    int fbflyRoute(int group, int dst_group) const;
    /** Peer group through fbfly port p. */
    int fbflyNeighbor(int group, int p) const;

    int ng;  ///< groups
    int nc;  ///< workers per group (ring length)
    int k;   ///< butterfly edge: k * k == ng
};

} // namespace winomc::noc

#endif // WINOMC_NOC_MEMCENTRIC_HH
