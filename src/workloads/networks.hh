/**
 * @file
 * Convolution-layer inventories of the three CNNs of Table I:
 * Wide ResNet WRN-40-10 (CIFAR), ResNet-34 (ImageNet) and
 * FractalNet (4 blocks, 4 columns, ImageNet).
 *
 * Only the 3x3 convolution layers are enumerated - they dominate both
 * computation and weight volume in all three networks and are the
 * layers the Winograd transform / MPT apply to, matching the paper's
 * layer-wise treatment.
 */

#ifndef WINOMC_WORKLOADS_NETWORKS_HH
#define WINOMC_WORKLOADS_NETWORKS_HH

#include <string>
#include <vector>

#include "winograd/conv_spec.hh"

namespace winomc::workloads {

struct NetworkSpec
{
    std::string name;
    std::string dataset;
    std::vector<ConvSpec> layers;

    /** Total spatial-domain weight elements over all conv layers. */
    uint64_t paramCount() const;
};

/** WRN-40-10 on CIFAR (32x32), ~55.5M conv parameters. */
NetworkSpec wideResnet40_10(int batch = 256);

/** ResNet-34 on ImageNet (224x224), ~21M conv parameters. */
NetworkSpec resnet34(int batch = 256);

/**
 * FractalNet, 4 blocks x 4 columns on ImageNet. Channel widths
 * (128, 256, 512, 1024) at feature sizes (56, 28, 14, 7); each block
 * expands to 15 convolutions across its four columns.
 */
NetworkSpec fractalNet(int batch = 256);

/** All three Table I networks. */
std::vector<NetworkSpec> tableOneNetworks(int batch = 256);

/**
 * VGG-16 on ImageNet (~14.7M conv parameters): not in Table I, but the
 * classic all-3x3 network Winograd papers target; useful for extending
 * the scaling studies.
 */
NetworkSpec vgg16(int batch = 256);

} // namespace winomc::workloads

#endif // WINOMC_WORKLOADS_NETWORKS_HH
