/**
 * @file
 * Shape descriptor of one convolution layer.
 *
 * Historically this described only the paper's unit of evaluation — a
 * stride-1 "same" convolution — and the header claimed square feature
 * maps and filters even though `h`/`w` were already independent. The
 * descriptor is now general: feature maps may be rectangular, kernels
 * may be rectangular (`kh`/`kw` override the square edge `r`), and
 * stride/padding are explicit. Every default reproduces the old
 * behaviour, so the paper specs (`{name, B, I, J, H, W, r}` aggregates)
 * keep meaning exactly what they did: stride 1, "same" zero padding,
 * square r x r filters.
 */

#ifndef WINOMC_WINOGRAD_CONV_SPEC_HH
#define WINOMC_WINOGRAD_CONV_SPEC_HH

#include <cstdint>
#include <string>

namespace winomc {

/**
 * One convolution layer:
 *   input  (batch, inCh, h, w)
 *   weight (outCh, inCh, kernelH(), kernelW())
 *   output (batch, outCh, outH(), outW())
 */
struct ConvSpec
{
    std::string name;
    int batch;   ///< B
    int inCh;    ///< I
    int outCh;   ///< J
    int h;       ///< input feature-map height
    int w;       ///< input feature-map width
    int r;       ///< square filter edge (odd); superseded by kh/kw != 0

    // Generalized geometry. The defaults reproduce the legacy contract
    // (square r x r filter, stride 1, "same" padding), so existing
    // seven-field aggregate initializers are unchanged in meaning.
    int kh = 0;       ///< filter height; 0 = use `r`
    int kw = 0;       ///< filter width;  0 = use `r`
    int strideH = 1;  ///< vertical stride (>= 1)
    int strideW = 1;  ///< horizontal stride (>= 1)
    int padH = -1;    ///< top/bottom zero padding; -1 = (kernelH()-1)/2
    int padW = -1;    ///< left/right zero padding; -1 = (kernelW()-1)/2

    int kernelH() const { return kh > 0 ? kh : r; }
    int kernelW() const { return kw > 0 ? kw : r; }
    int padHEff() const { return padH >= 0 ? padH : (kernelH() - 1) / 2; }
    int padWEff() const { return padW >= 0 ? padW : (kernelW() - 1) / 2; }

    /** Output height: floor((h + 2*pad - k) / stride) + 1. */
    int outH() const
    {
        return (h + 2 * padHEff() - kernelH()) / strideH + 1;
    }
    /** Output width (same formula along w). */
    int outW() const
    {
        return (w + 2 * padWEff() - kernelW()) / strideW + 1;
    }

    bool unitStride() const { return strideH == 1 && strideW == 1; }
    bool squareKernel() const { return kernelH() == kernelW(); }
    /** The legacy contract: stride 1 and output size == input size. */
    bool samePadded() const
    {
        return unitStride() && outH() == h && outW() == w;
    }

    /**
     * Canonical shape identity (name excluded): the key of the tuning
     * cache (winograd/tuner.hh) and of descriptor-keyed plan/weight
     * lookups. Single token, no '.' (metric names split on dots).
     */
    std::string
    key() const
    {
        return "b" + std::to_string(batch) + "_c" + std::to_string(inCh) +
               "x" + std::to_string(outCh) + "_in" + std::to_string(h) +
               "x" + std::to_string(w) + "_k" + std::to_string(kernelH()) +
               "x" + std::to_string(kernelW()) + "_s" +
               std::to_string(strideH) + "x" + std::to_string(strideW) +
               "_p" + std::to_string(padHEff()) + "x" +
               std::to_string(padWEff());
    }

    /** Spatial-domain weight element count I*J*kernelH*kernelW. */
    uint64_t
    weightElems() const
    {
        return uint64_t(inCh) * outCh * kernelH() * kernelW();
    }
    /** Input feature-map element count B*I*H*W. */
    uint64_t
    inputElems() const
    {
        return uint64_t(batch) * inCh * h * w;
    }
    /** Output feature-map element count B*J*outH*outW. */
    uint64_t
    outputElems() const
    {
        return uint64_t(batch) * outCh * outH() * outW();
    }
};

} // namespace winomc

#endif // WINOMC_WINOGRAD_CONV_SPEC_HH
