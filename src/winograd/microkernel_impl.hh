/**
 * @file
 * Generic vector micro-kernel bodies, parameterized by the VF/VD
 * wrappers of common/simd.hh. Include order in every vector TU:
 *
 *     #include "winograd/microkernel.hh"
 *     #include "common/simd.hh"       // resolves VF/VD for this TU's -m flags
 *     #include "winograd/microkernel_impl.hh"
 *
 * Everything here lives in an anonymous namespace: each TU gets its
 * own copy compiled at its own ISA level, and exports only its
 * distinctly named factory (see WINOMC_MK_DEFINE_TABLE below), so
 * mixing TUs compiled with different -m flags is ODR-clean.
 *
 * Numerics: these bodies may fuse (FMA) and keep W partial sums, but
 * the operation order is a pure function of the lane width, so any
 * fixed ISA level is bitwise reproducible across runs and thread
 * counts. Reductions accumulate in double and combine lanes with a
 * fixed pairwise tree (simd::hsum).
 */

#ifndef WINOMC_WINOGRAD_MICROKERNEL_IMPL_HH
#define WINOMC_WINOGRAD_MICROKERNEL_IMPL_HH

namespace {
namespace mkimpl {

using simd::VD;
using simd::VF;
using winomc::mk::kTilePanel;

static_assert(kTilePanel % VD::W == 0,
              "tile panel must hold whole double vectors");
static_assert(kTilePanel % VF::W == 0 || VF::W > kTilePanel,
              "tile panel must hold whole float vectors");

void
panelAccum(float *y, const float *const *x, const float *w, int nv,
           int len)
{
    int k = 0;
    for (; k + VF::W <= len; k += VF::W) {
        VF acc = VF::load(y + k);
        for (int v = 0; v < nv; ++v)
            acc = VF::fma(VF::broadcast(w[v]), VF::load(x[v] + k), acc);
        acc.store(y + k);
    }
    if (k < len) {
        const int r = len - k;
        VF acc = VF::loadPartial(y + k, r);
        for (int v = 0; v < nv; ++v)
            acc = VF::fma(VF::broadcast(w[v]),
                          VF::loadPartial(x[v] + k, r), acc);
        acc.storePartial(y + k, r);
    }
}

double
dotDouble(const float *a, const float *b, int len)
{
    VD acc0 = VD::zero();
    VD acc1 = VD::zero();
    int k = 0;
    for (; k + 2 * VD::W <= len; k += 2 * VD::W) {
        acc0 = VD::fma(VD::loadFromFloat(a + k), VD::loadFromFloat(b + k),
                       acc0);
        acc1 = VD::fma(VD::loadFromFloat(a + k + VD::W),
                       VD::loadFromFloat(b + k + VD::W), acc1);
    }
    if (k + VD::W <= len) {
        acc0 = VD::fma(VD::loadFromFloat(a + k), VD::loadFromFloat(b + k),
                       acc0);
        k += VD::W;
    }
    if (k < len) {
        // Zero-filled tail lanes contribute exact 0 * 0 terms.
        const int r = len - k;
        acc1 = VD::fma(VD::loadFromFloatPartial(a + k, r),
                       VD::loadFromFloatPartial(b + k, r), acc1);
    }
    return simd::hsum(VD::add(acc0, acc1));
}

/**
 * Shared SoA sandwich: out = L * in * R per lane, lanes processed
 * VD::W at a time. `loadIn(e, l0, lc)` yields entry e for lanes
 * [l0, l0 + lc); `store(e, l0, lc, v)` writes the output entry.
 */
template <typename LoadFn, typename StoreFn>
inline void
sandwichPanel(const double *L, int p, int n, const double *R, int k,
              int q, int cnt, LoadFn loadIn, StoreFn store)
{
    for (int l0 = 0; l0 < cnt; l0 += VD::W) {
        const int lc = cnt - l0 < VD::W ? cnt - l0 : VD::W;
        VD tmp[8 * 8];
        for (int i = 0; i < p; ++i) {
            for (int j = 0; j < k; ++j) {
                VD acc = VD::zero();
                for (int t = 0; t < n; ++t)
                    acc = VD::fma(VD::broadcast(L[i * n + t]),
                                  loadIn(t * k + j, l0, lc), acc);
                tmp[i * k + j] = acc;
            }
        }
        for (int i = 0; i < p; ++i) {
            for (int j = 0; j < q; ++j) {
                VD acc = VD::zero();
                for (int t = 0; t < k; ++t)
                    acc = VD::fma(VD::broadcast(R[t * q + j]),
                                  tmp[i * k + t], acc);
                store(i * q + j, l0, lc, acc);
            }
        }
    }
}

void
xformFromTiles(const double *L, int p, int n, const double *R, int k,
               int q, const float *in, std::size_t inStride, double *out,
               int cnt)
{
    sandwichPanel(
        L, p, n, R, k, q, cnt,
        [&](int e, int l0, int lc) {
            const float *src = in + std::size_t(e) * inStride + l0;
            return lc == VD::W ? VD::loadFromFloat(src)
                               : VD::loadFromFloatPartial(src, lc);
        },
        [&](int e, int l0, int, VD v) {
            // The SoA panel always holds kTilePanel lanes, so a full
            // store stays in bounds; surplus lanes are never read.
            v.store(out + e * kTilePanel + l0);
        });
}

void
xformToTiles(const double *L, int p, int n, const double *R, int k,
             int q, const double *in, float *out, std::size_t outStride,
             int cnt)
{
    sandwichPanel(
        L, p, n, R, k, q, cnt,
        [&](int e, int l0, int) {
            return VD::load(in + e * kTilePanel + l0);
        },
        [&](int e, int l0, int lc, VD v) {
            float *dst = out + std::size_t(e) * outStride + l0;
            if (lc == VD::W)
                v.storeToFloat(dst);
            else
                v.storeToFloatPartial(dst, lc);
        });
}

/**
 * Layout pack/unpack between spatial planes and SoA tile panels.
 * These are pure data movement (a float->double widen at most), so
 * every ISA level shares the scalar loop structure — the strided
 * scatter/gather pattern (stride kTilePanel doubles per entry) does
 * not map onto contiguous vector loads, and bitwise parity with the
 * scalar oracle comes for free.
 */
void
packTilePanel(double *soa, const float *plane, int h, int w,
              const int *tr, const int *tc, int eh, int ew, int cnt)
{
    for (int l = 0; l < cnt; ++l) {
        const int r0 = tr[l];
        const int c0 = tc[l];
        for (int i = 0; i < eh; ++i) {
            const int rr = r0 + i;
            const bool rowIn = rr >= 0 && rr < h;
            for (int j = 0; j < ew; ++j) {
                const int cc = c0 + j;
                const bool in_map = rowIn && cc >= 0 && cc < w;
                soa[std::size_t(i * ew + j) * kTilePanel + l] =
                    in_map ? double(plane[std::size_t(rr) * w + cc])
                           : 0.0;
            }
        }
    }
    // Surplus lanes must stay defined for whole-vector panel sweeps.
    if (cnt < kTilePanel)
        for (int e = 0; e < eh * ew; ++e)
            for (int l = cnt; l < kTilePanel; ++l)
                soa[std::size_t(e) * kTilePanel + l] = 0.0;
}

void
unpackTilePanel(float *plane, int h, int w, const int *tr, const int *tc,
                int eh, int ew, const double *soa, int cnt)
{
    for (int l = 0; l < cnt; ++l) {
        const int r0 = tr[l];
        const int c0 = tc[l];
        for (int i = 0; i < eh; ++i) {
            const int rr = r0 + i;
            if (rr < 0 || rr >= h)
                continue; // boundary crop
            float *row = plane + std::size_t(rr) * w;
            for (int j = 0; j < ew; ++j) {
                const int cc = c0 + j;
                if (cc < 0 || cc >= w)
                    continue;
                row[cc] =
                    float(soa[std::size_t(i * ew + j) * kTilePanel + l]);
            }
        }
    }
}

void
unpackAddTilePanel(float *plane, int h, int w, const int *tr,
                   const int *tc, int eh, int ew, const double *soa,
                   int cnt)
{
    for (int l = 0; l < cnt; ++l) {
        const int r0 = tr[l];
        const int c0 = tc[l];
        for (int i = 0; i < eh; ++i) {
            const int rr = r0 + i;
            if (rr < 0 || rr >= h)
                continue;
            float *row = plane + std::size_t(rr) * w;
            for (int j = 0; j < ew; ++j) {
                const int cc = c0 + j;
                if (cc < 0 || cc >= w)
                    continue;
                row[cc] +=
                    float(soa[std::size_t(i * ew + j) * kTilePanel + l]);
            }
        }
    }
}

void
rowAccumDouble(double *acc, const float *x, double w, int n)
{
    const VD wv = VD::broadcast(w);
    int i = 0;
    for (; i + VD::W <= n; i += VD::W) {
        VD a = VD::load(acc + i);
        a = VD::fma(VD::loadFromFloat(x + i), wv, a);
        a.store(acc + i);
    }
    for (; i < n; ++i)
        acc[i] += double(x[i]) * w;
}

double
sumDouble(const float *x, std::int64_t n)
{
    VD acc = VD::zero();
    std::int64_t i = 0;
    for (; i + VD::W <= n; i += VD::W)
        acc = VD::add(acc, VD::loadFromFloat(x + i));
    if (i < n)
        acc = VD::add(acc, VD::loadFromFloatPartial(x + i, int(n - i)));
    return simd::hsum(acc);
}

void
reluForward(float *y, float *mask, const float *x, std::int64_t n)
{
    std::int64_t i = 0;
    if (mask) {
        for (; i + VF::W <= n; i += VF::W) {
            VF v = VF::load(x + i);
            VF::reluOf(v).store(y + i);
            VF::gtZeroOne(v).store(mask + i);
        }
        if (i < n) {
            const int r = int(n - i);
            VF v = VF::loadPartial(x + i, r);
            VF::reluOf(v).storePartial(y + i, r);
            VF::gtZeroOne(v).storePartial(mask + i, r);
        }
    } else {
        for (; i + VF::W <= n; i += VF::W)
            VF::reluOf(VF::load(x + i)).store(y + i);
        if (i < n) {
            const int r = int(n - i);
            VF::reluOf(VF::loadPartial(x + i, r)).storePartial(y + i, r);
        }
    }
}

void
mulPairwise(float *dst, const float *a, const float *b, std::int64_t n)
{
    std::int64_t i = 0;
    for (; i + VF::W <= n; i += VF::W)
        VF::mul(VF::load(a + i), VF::load(b + i)).store(dst + i);
    if (i < n) {
        const int r = int(n - i);
        VF::mul(VF::loadPartial(a + i, r), VF::loadPartial(b + i, r))
            .storePartial(dst + i, r);
    }
}

void
axpy(float *y, float a, const float *x, std::int64_t n)
{
    const VF av = VF::broadcast(a);
    std::int64_t i = 0;
    for (; i + VF::W <= n; i += VF::W)
        VF::fma(av, VF::load(x + i), VF::load(y + i)).store(y + i);
    if (i < n) {
        const int r = int(n - i);
        VF::fma(av, VF::loadPartial(x + i, r), VF::loadPartial(y + i, r))
            .storePartial(y + i, r);
    }
}

void
addRows(float *dst, const float *a, const float *b, std::int64_t n)
{
    std::int64_t i = 0;
    for (; i + VF::W <= n; i += VF::W)
        VF::add(VF::load(a + i), VF::load(b + i)).store(dst + i);
    if (i < n) {
        const int r = int(n - i);
        VF::add(VF::loadPartial(a + i, r), VF::loadPartial(b + i, r))
            .storePartial(dst + i, r);
    }
}

void
panelAccumSel(float *y, const float *const *x, const float *w, int nv,
              int len, int /*origNv*/)
{
    // The vector panelAccum accumulates row products sequentially for
    // every nv, so dropping rows whose terms are exactly zero cannot
    // change any partial sum: origNv is a scalar-TU concern only.
    panelAccum(y, x, w, nv, len);
}

void
panelAccumGrouped(float *y, const float *const *x, const float *w,
                  int nv, int len, const std::uint8_t * /*grpNv*/,
                  int /*nGroups*/, int /*tailOrig*/)
{
    // One sequential FMA chain over all surviving rows — exactly the
    // chain the blocked per-group calls would produce, so the group
    // structure only matters to the scalar TU. The chain is serial in
    // v by the bitwise contract; the only ILP available is across k,
    // so run four independent column accumulators per pass (each
    // element still sees its own unchanged chain).
    int k = 0;
    for (; k + 4 * VF::W <= len; k += 4 * VF::W) {
        VF a0 = VF::load(y + k);
        VF a1 = VF::load(y + k + VF::W);
        VF a2 = VF::load(y + k + 2 * VF::W);
        VF a3 = VF::load(y + k + 3 * VF::W);
        for (int v = 0; v < nv; ++v) {
            const float *xv = x[v] + k;
            const VF wv = VF::broadcast(w[v]);
            a0 = VF::fma(wv, VF::load(xv), a0);
            a1 = VF::fma(wv, VF::load(xv + VF::W), a1);
            a2 = VF::fma(wv, VF::load(xv + 2 * VF::W), a2);
            a3 = VF::fma(wv, VF::load(xv + 3 * VF::W), a3);
        }
        a0.store(y + k);
        a1.store(y + k + VF::W);
        a2.store(y + k + 2 * VF::W);
        a3.store(y + k + 3 * VF::W);
    }
    for (; k + VF::W <= len; k += VF::W) {
        VF acc = VF::load(y + k);
        for (int v = 0; v < nv; ++v)
            acc = VF::fma(VF::broadcast(w[v]), VF::load(x[v] + k), acc);
        acc.store(y + k);
    }
    if (k < len) {
        const int r = len - k;
        VF acc = VF::loadPartial(y + k, r);
        for (int v = 0; v < nv; ++v)
            acc = VF::fma(VF::broadcast(w[v]),
                          VF::loadPartial(x[v] + k, r), acc);
        acc.storePartial(y + k, r);
    }
}

void
panelAccumHalf(float *y, const std::uint16_t *const *x, const float *w,
               int nv, int len, int halfKind)
{
    const bool bf16 = halfKind == winomc::mk::kHalfBf16;
    int k = 0;
    // Two independent column accumulators: the per-row chain is serial
    // by the bitwise contract, so ILP comes from the k axis (each
    // element keeps its own unchanged chain).
    for (; k + 2 * VF::W <= len; k += 2 * VF::W) {
        VF a0 = VF::load(y + k);
        VF a1 = VF::load(y + k + VF::W);
        for (int v = 0; v < nv; ++v) {
            const std::uint16_t *xv = x[v] + k;
            const VF wv = VF::broadcast(w[v]);
            a0 = VF::fma(wv, bf16 ? VF::loadBf16(xv) : VF::loadF16(xv),
                         a0);
            a1 = VF::fma(wv,
                         bf16 ? VF::loadBf16(xv + VF::W)
                              : VF::loadF16(xv + VF::W),
                         a1);
        }
        a0.store(y + k);
        a1.store(y + k + VF::W);
    }
    for (; k + VF::W <= len; k += VF::W) {
        VF acc = VF::load(y + k);
        for (int v = 0; v < nv; ++v) {
            const VF xv = bf16 ? VF::loadBf16(x[v] + k)
                               : VF::loadF16(x[v] + k);
            acc = VF::fma(VF::broadcast(w[v]), xv, acc);
        }
        acc.store(y + k);
    }
    if (k < len) {
        const int r = len - k;
        VF acc = VF::loadPartial(y + k, r);
        for (int v = 0; v < nv; ++v) {
            const VF xv = bf16 ? VF::loadBf16Partial(x[v] + k, r)
                               : VF::loadF16Partial(x[v] + k, r);
            acc = VF::fma(VF::broadcast(w[v]), xv, acc);
        }
        acc.storePartial(y + k, r);
    }
}

void
xformToTilesHalf(const double *L, int p, int n, const double *R, int k,
                 int q, const double *in, std::uint16_t *out,
                 std::size_t outStride, int cnt, int halfKind)
{
    const bool bf16 = halfKind == winomc::mk::kHalfBf16;
    sandwichPanel(
        L, p, n, R, k, q, cnt,
        [&](int e, int l0, int) {
            return VD::load(in + e * kTilePanel + l0);
        },
        [&](int e, int l0, int lc, VD v) {
            // Round double -> float exactly as xformToTiles would,
            // then encode with the software RNE reference so every
            // ISA level writes identical bits.
            float tmp[VD::W > 4 ? VD::W : 4];
            v.storeToFloat(tmp);
            std::uint16_t *dst = out + std::size_t(e) * outStride + l0;
            if (bf16)
                for (int l = 0; l < lc; ++l)
                    dst[l] = winomc::half::f32ToBf16(tmp[l]);
            else
                for (int l = 0; l < lc; ++l)
                    dst[l] = winomc::half::f32ToF16(tmp[l]);
        });
}

void
cvtFloatToHalf(std::uint16_t *dst, const float *src, std::int64_t n,
               int halfKind)
{
    // Encode is always the software reference: identical bits on
    // every ISA level by construction.
    if (halfKind == winomc::mk::kHalfBf16)
        for (std::int64_t i = 0; i < n; ++i)
            dst[i] = winomc::half::f32ToBf16(src[i]);
    else
        for (std::int64_t i = 0; i < n; ++i)
            dst[i] = winomc::half::f32ToF16(src[i]);
}

void
cvtHalfToFloat(float *dst, const std::uint16_t *src, std::int64_t n,
               int halfKind)
{
    std::int64_t i = 0;
    if (halfKind == winomc::mk::kHalfBf16) {
        for (; i + VF::W <= n; i += VF::W)
            VF::loadBf16(src + i).store(dst + i);
        if (i < n)
            VF::loadBf16Partial(src + i, int(n - i))
                .storePartial(dst + i, int(n - i));
    } else {
        for (; i + VF::W <= n; i += VF::W)
            VF::loadF16(src + i).store(dst + i);
        if (i < n)
            VF::loadF16Partial(src + i, int(n - i))
                .storePartial(dst + i, int(n - i));
    }
}

std::uint64_t
panelZeroMask(const float *x, std::size_t stride, int entries, int cnt)
{
    // Mask building is a read-only scan off the critical arithmetic
    // path; the scalar loop keeps every ISA level's mask identical.
    std::uint64_t m = 0;
    for (int e = 0; e < entries; ++e) {
        const float *p = x + std::size_t(e) * stride;
        bool zero = true;
        for (int l = 0; l < cnt; ++l) {
            if (p[l] != 0.0f) {
                zero = false;
                break;
            }
        }
        if (zero)
            m |= std::uint64_t(1) << e;
    }
    return m;
}

std::uint64_t
panelZeroMaskHalf(const std::uint16_t *x, std::size_t stride,
                  int entries, int cnt)
{
    std::uint64_t m = 0;
    for (int e = 0; e < entries; ++e) {
        const std::uint16_t *p = x + std::size_t(e) * stride;
        bool zero = true;
        for (int l = 0; l < cnt; ++l) {
            if ((p[l] & 0x7fffu) != 0u) { // both formats: ±0 only
                zero = false;
                break;
            }
        }
        if (zero)
            m |= std::uint64_t(1) << e;
    }
    return m;
}

void
avgPool2Row(float *y, const float *r0, const float *r1, int outW)
{
    // Deinterleave through small stack panels, then combine with the
    // exact scalar association ((a + b) + c) + d so every ISA level
    // matches the scalar result bitwise.
    const VF quarter = VF::broadcast(0.25f);
    int o = 0;
    for (; o + VF::W <= outW; o += VF::W) {
        float t0[VF::W], t1[VF::W], t2[VF::W], t3[VF::W];
        for (int l = 0; l < VF::W; ++l) {
            t0[l] = r0[2 * (o + l)];
            t1[l] = r0[2 * (o + l) + 1];
            t2[l] = r1[2 * (o + l)];
            t3[l] = r1[2 * (o + l) + 1];
        }
        VF s = VF::add(
            VF::add(VF::add(VF::load(t0), VF::load(t1)), VF::load(t2)),
            VF::load(t3));
        VF::mul(quarter, s).store(y + o);
    }
    for (; o < outW; ++o)
        y[o] = 0.25f *
               (r0[2 * o] + r0[2 * o + 1] + r1[2 * o] + r1[2 * o + 1]);
}

} // namespace mkimpl
} // namespace

/**
 * Expands to the factory definition for this TU's ISA level. The table
 * is a function-local static so it needs no global constructor order.
 */
#define WINOMC_MK_DEFINE_TABLE(factoryName, isaEnum, isaStr)              \
    namespace winomc::mk::detail {                                        \
    const MicroKernels *factoryName()                                     \
    {                                                                     \
        static const MicroKernels table = {                               \
            isaEnum,          isaStr,                                     \
            simd::VF::W,      simd::VD::W,                                \
            mkimpl::panelAccum,     mkimpl::dotDouble,                    \
            mkimpl::xformFromTiles, mkimpl::xformToTiles,                 \
            mkimpl::packTilePanel,  mkimpl::unpackTilePanel,              \
            mkimpl::unpackAddTilePanel,                                   \
            mkimpl::rowAccumDouble, mkimpl::sumDouble,                    \
            mkimpl::reluForward,    mkimpl::mulPairwise,                  \
            mkimpl::axpy,           mkimpl::addRows,                      \
            mkimpl::avgPool2Row,                                          \
            mkimpl::panelAccumSel,  mkimpl::panelAccumGrouped,            \
            mkimpl::panelAccumHalf,                                       \
            mkimpl::xformToTilesHalf,                                     \
            mkimpl::cvtFloatToHalf, mkimpl::cvtHalfToFloat,               \
            mkimpl::panelZeroMask,  mkimpl::panelZeroMaskHalf,            \
        };                                                                \
        return &table;                                                    \
    }                                                                     \
    }

#endif // WINOMC_WINOGRAD_MICROKERNEL_IMPL_HH
