# Empty compiler generated dependencies file for prediction_demo.
# This may be replaced when dependencies are built.
