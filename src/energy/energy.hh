/**
 * @file
 * Energy model of the NDP system (Section VII-A).
 *
 * Four components, as in Figure 15: compute (MAC units), SRAM buffers,
 * 3D-stacked DRAM, and the memory-centric network's serial links
 * (including their idle power - high-speed SerDes burn power even when
 * no flit moves, which is why shorter execution time saves link energy).
 *
 * Constants: the paper gives 0.9 pJ / 3.7 pJ for FP32 ADD/MUL ([75]) and
 * models SRAM/DRAM with CACTI 6.5 / CACTI-3DD; CACTI is not available
 * offline, so representative published values are used instead (see
 * DESIGN.md substitution table). All system configurations share these
 * constants, and Fig 15/18 compare *relative* energy.
 */

#ifndef WINOMC_ENERGY_ENERGY_HH
#define WINOMC_ENERGY_ENERGY_HH

#include <cstdint>
#include <string>

namespace winomc::energy {

struct EnergyParams
{
    // Compute ([75], 28 nm).
    double fp32AddPj = 0.9;
    double fp32MulPj = 3.7;

    // Memory hierarchy (CACTI-representative).
    double sramPjPerByte = 1.0;   ///< 512 KiB scratch buffers
    double dramPjPerByte = 30.0;  ///< HMC internal access (~3.7 pJ/bit)

    // Memory-centric network links (model of [45]).
    double linkPjPerByte = 32.0;  ///< ~4 pJ/bit dynamic
    double fullLinkIdleWatts = 1.2;   ///< 16 lanes x 15 Gbps SerDes
    double narrowLinkIdleWatts = 0.4; ///< 8 lanes x 10 Gbps SerDes
};

/** Accumulated energy, split by the Figure 15 components. */
struct EnergyBreakdown
{
    double computeJ = 0.0;
    double sramJ = 0.0;
    double dramJ = 0.0;
    double linkJ = 0.0;
    /** Idle/static SerDes share of linkJ (already included in linkJ,
     *  never added again); the paper's argument that faster execution
     *  saves link energy hangs on this share being large. */
    double linkIdleJ = 0.0;

    double total() const { return computeJ + sramJ + dramJ + linkJ; }
    /** Dynamic (bytes-moved) share of linkJ. */
    double linkDynamicJ() const { return linkJ - linkIdleJ; }

    EnergyBreakdown &
    operator+=(const EnergyBreakdown &o)
    {
        computeJ += o.computeJ;
        sramJ += o.sramJ;
        dramJ += o.dramJ;
        linkJ += o.linkJ;
        linkIdleJ += o.linkIdleJ;
        return *this;
    }

    std::string toString() const;
};

/** Stateless helpers mapping activity counts to joules. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &p = {}) : params(p) {}

    double macsEnergy(uint64_t mults, uint64_t adds) const;
    double sramEnergy(uint64_t bytes) const;
    double dramEnergy(uint64_t bytes) const;
    /** Dynamic link energy for bytes moved over serial links. */
    double linkDynamicEnergy(uint64_t bytes) const;
    /** Idle/static link energy over a time window. */
    double linkIdleEnergy(int full_links, int narrow_links,
                          double seconds) const;

    const EnergyParams &p() const { return params; }

  private:
    EnergyParams params;
};

} // namespace winomc::energy

#endif // WINOMC_ENERGY_ENERGY_HH
