
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/distributed_training.cpp" "examples/CMakeFiles/distributed_training.dir/distributed_training.cpp.o" "gcc" "examples/CMakeFiles/distributed_training.dir/distributed_training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpt/CMakeFiles/winomc_mpt.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/winomc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/winomc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/memnet/CMakeFiles/winomc_memnet.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/winomc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/ndp/CMakeFiles/winomc_ndp.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/winomc_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/winomc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/winograd/CMakeFiles/winomc_winograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/winomc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/winomc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
