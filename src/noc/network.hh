/**
 * @file
 * Cycle-stepped flit-level network: routers wired by a Topology, flit
 * and credit propagation with per-hop SerDes latency, packet injection /
 * ejection with latency statistics.
 *
 * Link widths follow Table III: a full-width link moves 30 bytes per
 * 1 GHz cycle (16 lanes x 15 Gbps), a narrow link 10 bytes per cycle
 * (8 lanes x 10 Gbps); a packet of B bytes therefore serializes into
 * ceil(B / flit_bytes) flits.
 */

#ifndef WINOMC_NOC_NETWORK_HH
#define WINOMC_NOC_NETWORK_HH

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "noc/router.hh"
#include "noc/topology.hh"

namespace winomc::noc {

struct NocConfig
{
    int vcs = 2;
    int bufferDepth = 32;  ///< flits per input VC (covers credit RTT)
    /** Cycles from switch grant to downstream buffer: router pipeline
     *  (2) + serialization + deserialization (5 ns, Table III). */
    int hopLatency = 7;
    int flitBytes = 30;    ///< link phit per cycle (full-width default)
    /** Parallel injection channels from the terminal (the NDP feeds
     *  its router through the on-chip crossbar, so multi-port routers
     *  can accept several flits per cycle). */
    int injectionLanes = 1;
    /** Sample every router's buffered-flit count into a histogram each
     *  cycle. Off by default: the O(routers) per-cycle pass is only
     *  worth paying when the occupancy distribution is wanted. The
     *  cheap counters (link busy, stalls, inject/eject) are always
     *  collected. */
    bool sampleOccupancy = false;
};

class Network
{
  public:
    Network(std::unique_ptr<Topology> topo, const NocConfig &cfg);

    /**
     * Offer a packet to node `src`'s source queue. Returns the packet
     * id. Size is given in bytes and converted to flits.
     */
    int offerPacket(int src, int dst, int bytes);

    /** Advance one cycle. */
    void step();
    /** Run `cycles` cycles. */
    void run(int cycles);
    /** Step until all offered packets eject (or `max_cycles` pass);
     *  returns true if drained. */
    bool drain(int max_cycles);

    Tick now() const { return cycle; }
    const Topology &topology() const { return *topo; }
    const NocConfig &config() const { return cfg; }

    const PacketInfo &packet(int id) const { return packets[size_t(id)]; }
    size_t packetCount() const { return packets.size(); }
    uint64_t ejectedCount() const { return ejected; }

    /** Packet latency (inject -> eject) of ejected packets. */
    const Accumulator &latencyStats() const { return latency; }
    /** Flits ejected per node per cycle since the last resetStats(). */
    double acceptedFlitRate() const;
    /** Reset every windowed statistic (latency, link/stall/inject/
     *  eject counters, occupancy histogram) and restart the window at
     *  the current cycle. Lifetime conservation counters
     *  (offeredFlitCount / ejectedFlitCount) are simulation state and
     *  survive. */
    void resetStats();

    /** Flits currently buffered anywhere (0 when idle). */
    size_t flitsInFlight() const;

    // ------------------------------------------------- introspection
    /** Cycles covered by the current stats window. */
    Tick statsElapsed() const { return cycle - statsSince; }
    /** Lifetime flits offered via offerPacket (conservation). */
    uint64_t offeredFlitCount() const { return offeredFlits; }
    /** Lifetime flits ejected at terminals (conservation:
     *  offered == ejected + flitsInFlight() at any cycle). */
    uint64_t ejectedFlitCount() const { return totalEjectedFlits; }

    /** Busy fraction of the directed link out of (node, port) over the
     *  stats window: flits sent / elapsed cycles, always in [0, 1]
     *  (one flit per link per cycle). */
    double linkUtilization(int node, int port) const;
    /** Max / mean utilization over all wired directed links. */
    double maxLinkUtilization() const;
    double meanLinkUtilization() const;

    /** Arbitration scans blocked on exhausted downstream credits /
     *  on an output VC owned by another packet (head-of-line block),
     *  summed over routers, this stats window. */
    uint64_t creditStallCount() const;
    uint64_t holBlockCount() const;

    /** Flits per cycle this node injected / ejected over the window. */
    double injectionRate(int node) const;
    double ejectionRate(int node) const;

    /** Per-cycle buffered-flits-per-router distribution; only
     *  populated when cfg.sampleOccupancy is set. */
    const Histogram &occupancyHistogram() const;

    /** Push the window's statistics into the common/metrics registry
     *  under `prefix` (e.g. "noc.ring16"): counters for flit/stall
     *  totals, gauges for rates and utilization extremes, histogram
     *  metrics for per-link utilization, per-node injection/ejection
     *  rates, and router occupancy. No-op when metrics are disabled. */
    void exportMetrics(const std::string &prefix) const;
    /** Replay every ejected packet as a span on a fresh virtual-time
     *  trace timeline (1 cycle == 1 us, tid == source node). No-op
     *  when tracing is disabled. */
    void exportTrace(const std::string &label) const;

  private:
    struct Arrival
    {
        Tick when;
        int node, port, vc;
        bool is_credit;
        Flit flit; ///< valid when !is_credit
    };

    void deliverArrivals();
    void switchAllocation();
    void injection();

    std::unique_ptr<Topology> topo;
    NocConfig cfg;
    Tick cycle = 0;

    std::vector<Router> routers;
    std::vector<PacketInfo> packets;
    /** Per-(node, lane) source queues of un-injected flits. */
    std::vector<std::vector<std::deque<Flit>>> sourceQueues;
    uint64_t nextLane = 0;
    /** In-flight flits/credits sorted into per-cycle buckets. */
    std::deque<std::vector<Arrival>> wheel; ///< wheel[0] = this cycle

    Accumulator latency;
    uint64_t ejected = 0;
    uint64_t ejectedFlits = 0;
    Tick statsSince = 0;

    // Windowed introspection state (cleared by resetStats()).
    std::vector<uint64_t> linkBusy;        ///< [node * ports + port]
    std::vector<uint64_t> nodeInjected;    ///< flits entering router
    std::vector<uint64_t> nodeEjected;     ///< flits leaving at terminal
    std::vector<uint64_t> creditStalls;    ///< per node
    std::vector<uint64_t> holBlocks;       ///< per node
    std::optional<Histogram> occupancyHist;

    // Lifetime conservation counters (survive resetStats()).
    uint64_t offeredFlits = 0;
    uint64_t totalEjectedFlits = 0;
};

} // namespace winomc::noc

#endif // WINOMC_NOC_NETWORK_HH
