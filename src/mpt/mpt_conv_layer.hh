/**
 * @file
 * A trainable Winograd-layer convolution whose every training step runs
 * through the MPT partitioning (batch over N_c clusters, tile elements
 * over N_g groups) with explicit scatter/gather and group reductions -
 * a drop-in nn::Module that *is* the distributed execution, plus
 * communication accounting.
 *
 * Training a network built from these layers produces bit-equivalent
 * results (up to FP accumulation order) to training the single-worker
 * nn::ConvLayer in WinogradLayer mode - the end-to-end demonstration
 * that MPT changes the schedule, never the learned model.
 *
 * Each cluster owns a shape-bound WinoPlan: the plan slabs play the role
 * of the cluster's SRAM-resident tiles, and the partial element-wise
 * kernels accumulate straight into them, so steady-state steps allocate
 * nothing.
 */

#ifndef WINOMC_MPT_MPT_CONV_LAYER_HH
#define WINOMC_MPT_MPT_CONV_LAYER_HH

#include <memory>

#include "mpt/functional.hh"
#include "nn/module.hh"
#include "winograd/conv_spec.hh"
#include "winograd/plan.hh"

namespace winomc::mpt {

class MptConvLayer : public nn::Module
{
  public:
    /**
     * @param ng, nc  worker organization; alpha^2 % ng == 0, batch %
     *                nc == 0 at forward time
     */
    MptConvLayer(int in_ch, int out_ch, int r, int ng, int nc,
                 const WinogradAlgo &algo, Rng &rng);

    /**
     * Descriptor convenience: channels and filter size come from the
     * generalized ConvSpec. The MPT pipeline binds the paper's
     * geometry, so the spec must be stride-1 same-padded with a square
     * kernel matching the algorithm — decompose other shapes first.
     */
    MptConvLayer(const ConvSpec &spec, int ng, int nc,
                 const WinogradAlgo &algo, Rng &rng);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &dy) override;
    void step(float lr) override;
    size_t paramCount() const override { return W.size(); }
    std::string name() const override { return "mpt_conv"; }

    const WinoWeights &winoWeights() const { return W; }
    /** Winograd-domain values that crossed worker boundaries so far. */
    uint64_t tileElemsTransferred() const { return tileElems; }
    /** Gradient elements reduced across clusters so far. */
    uint64_t weightElemsReduced() const { return weightElems; }

  private:
    /** (Re)build the per-cluster plans iff the shard shape changed. */
    void ensurePlans(const Tensor &x);

    int inCh, outCh, ng, nc, uvShare;
    const WinogradAlgo &algo;
    WinoWeights W;
    WinoWeights dW;
    bool haveGrad = false;

    /** One execution plan per cluster; plan slabs cache the forward
     *  tiles the backward pass reuses. */
    std::vector<std::unique_ptr<WinoPlan>> plans;
    /** Per-cluster plan pools: a shard-shape change parks the displaced
     *  plans here instead of destroying them, so alternating batch
     *  shapes stop thrashing the workspace (one pool per cluster —
     *  same-shape plans cannot share a single LRU, a lease is
     *  exclusive). */
    std::vector<PlanLru> planCaches;
    /** Persistent scatter/gather staging tensors (shard-sized). */
    Tensor xShard, yShard, dyShard, dxShard;
    /** True iff the plan caches come from a train-mode forward. */
    bool trainCached = false;
    int lastH = 0, lastW = 0, shard = 0;

    uint64_t tileElems = 0;
    uint64_t weightElems = 0;
};

} // namespace winomc::mpt

#endif // WINOMC_MPT_MPT_CONV_LAYER_HH
