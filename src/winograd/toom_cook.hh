/**
 * @file
 * Toom-Cook / Winograd minimal-filtering transform-matrix generator.
 *
 * Generates exact B^T, G, A^T for F(m, r) (m outputs, r-tap filter,
 * alpha = m + r - 1 multiplications) from alpha - 1 finite interpolation
 * points plus the point at infinity.
 *
 * Derivation (transposition of Toom-Cook polynomial multiplication):
 * a linear-convolution algorithm s = C [(E u) (.) (G w)] with evaluation
 * matrices E (alpha x m), G (alpha x r) and interpolation matrix
 * C (alpha x alpha) transposes, in u <-> s, into the minimal filtering
 * algorithm  y = E^T [(G w) (.) (C^T x)],  i.e.  A^T = E^T, B^T = C^T.
 *
 * C's column i < alpha-1 holds the coefficients of the Lagrange basis
 * polynomial L_i(t); column alpha-1 holds the coefficients of the monic
 * master polynomial M(t) = prod (t - a_i) (the infinity point).
 */

#ifndef WINOMC_WINOGRAD_TOOM_COOK_HH
#define WINOMC_WINOGRAD_TOOM_COOK_HH

#include <vector>

#include "tensor/matrix.hh"
#include "winograd/rational.hh"

namespace winomc {

/** Exact rational transform triple for F(m, r). */
struct ToomCookMatrices
{
    int m;      ///< outputs per application
    int r;      ///< filter taps
    int alpha;  ///< tile size m + r - 1 (= number of products)
    std::vector<std::vector<Rational>> BT; ///< alpha x alpha
    std::vector<std::vector<Rational>> G;  ///< alpha x r
    std::vector<std::vector<Rational>> AT; ///< m x alpha
};

/**
 * Generate exact F(m, r) matrices.
 *
 * @param m       output count (>= 1)
 * @param r       filter taps (>= 1)
 * @param points  alpha - 1 distinct finite interpolation points;
 *                if empty, the default sequence 0, 1, -1, 2, -2, ... is
 *                used (the same family the canonical Lavin matrices use).
 */
ToomCookMatrices generateToomCook(int m, int r,
                                  std::vector<Rational> points = {});

/** Default interpolation point sequence 0, 1, -1, 2, -2, 3, -3, ... */
std::vector<Rational> defaultPoints(int count);

/** Convert an exact rational matrix to a double Matrix. */
Matrix toMatrix(const std::vector<std::vector<Rational>> &rm);

} // namespace winomc

#endif // WINOMC_WINOGRAD_TOOM_COOK_HH
