/**
 * @file
 * Stateless / small trainable layers: ReLU, 2x2 max pooling, global
 * average pooling, and a dense (fully connected) classifier head.
 */

#ifndef WINOMC_NN_BASIC_LAYERS_HH
#define WINOMC_NN_BASIC_LAYERS_HH

#include "nn/module.hh"

namespace winomc::nn {

/** Rectified linear unit (the paper's assumed activation, Section V-A). */
class ReLU : public Module
{
  public:
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &dy) override;
    std::string name() const override { return "relu"; }

  private:
    Tensor mask; ///< 1 where x > 0
};

/** 2x2 max pooling, stride 2 (odd trailing row/col dropped). */
class MaxPool2 : public Module
{
  public:
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &dy) override;
    std::string name() const override { return "maxpool2"; }

  private:
    Tensor argmax; ///< winner index 0..3 per output element
    int inH = 0, inW = 0;
};

/** 2x2 average pooling, stride 2 (odd trailing row/col dropped). */
class AvgPool2 : public Module
{
  public:
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &dy) override;
    std::string name() const override { return "avgpool2"; }

  private:
    int inH = 0, inW = 0;
};

/** Global average pooling: (B, C, H, W) -> (B, C, 1, 1). */
class GlobalAvgPool : public Module
{
  public:
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &dy) override;
    std::string name() const override { return "gap"; }

  private:
    int inH = 0, inW = 0;
};

/** Fully connected layer on flattened input, with bias. */
class Dense : public Module
{
  public:
    Dense(int in_features, int out_features, Rng &rng);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &dy) override;
    void step(float lr) override;
    size_t paramCount() const override;
    std::string name() const override { return "dense"; }

  private:
    int inF, outF;
    Tensor w;  ///< (1, 1, outF, inF)
    Tensor b;  ///< (1, 1, 1, outF)
    Tensor dw, db;
    Tensor cachedX; ///< flattened input (B, 1, 1, inF)
    int xc = 0, xh = 0, xw = 0; ///< original shape for backward
};

} // namespace winomc::nn

#endif // WINOMC_NN_BASIC_LAYERS_HH
