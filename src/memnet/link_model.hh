/**
 * @file
 * Message-level model of the memory-centric network links.
 *
 * For the full-system evaluation the paper assumes optimally scheduled
 * communication per layer (Section IV); under that assumption the time
 * of a bulk transfer pattern is governed by the most-loaded directed
 * link. This model routes a byte-level traffic matrix over a
 * noc::Topology (the same minimal routing the flit simulator uses,
 * which validates these numbers) and returns the bottleneck time plus
 * the pipeline-fill latency of the longest path.
 */

#ifndef WINOMC_MEMNET_LINK_MODEL_HH
#define WINOMC_MEMNET_LINK_MODEL_HH

#include <vector>

#include "noc/topology.hh"

namespace winomc::memnet {

/** One physical link class of Table III. */
struct LinkSpec
{
    double bandwidth;      ///< bytes/s per direction
    double hopLatencySec;  ///< SerDes + router per hop

    /** Full-width link: 16 lanes x 15 Gbps = 30 GB/s. */
    static LinkSpec full();
    /** Narrow link: 8 lanes x 10 Gbps = 10 GB/s. */
    static LinkSpec narrow();
};

/**
 * Time for the traffic matrix (bytes[src][dst], src != dst) to drain
 * over the topology with minimal routing and ideal scheduling.
 */
double bottleneckTime(const noc::Topology &topo,
                      const std::vector<std::vector<double>> &bytes,
                      const LinkSpec &link);

/**
 * All-to-all: every node sends `bytes_per_pair` to every other node
 * (the tile gather/scatter pattern inside a cluster).
 */
double allToAllTime(const noc::Topology &topo, double bytes_per_pair,
                    const LinkSpec &link);

/** Per-directed-link byte loads for a traffic matrix (diagnostics). */
std::vector<double>
linkLoads(const noc::Topology &topo,
          const std::vector<std::vector<double>> &bytes);

} // namespace winomc::memnet

#endif // WINOMC_MEMNET_LINK_MODEL_HH
