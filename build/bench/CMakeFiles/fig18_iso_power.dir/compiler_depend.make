# Empty compiler generated dependencies file for fig18_iso_power.
# This may be replaced when dependencies are built.
