/**
 * @file
 * End-to-end MPT training demonstration: the same CNN is trained twice
 * on identical data and seeds - once with ordinary single-worker
 * Winograd layers, once with MptConvLayer, whose every step runs the
 * multi-dimensional partitioning (batch over clusters, tile elements
 * over groups) with explicit scatter/gather and group reductions.
 *
 * The two training curves coincide (the parallelization never changes
 * the math), and the distributed run reports exactly how much
 * Winograd-domain data crossed worker boundaries to get there.
 *
 * Usage: distributed_training [ng] [nc]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/table.hh"
#include "mpt/mpt_conv_layer.hh"
#include "nn/basic_layers.hh"
#include "nn/conv_layer.hh"
#include "nn/dataset.hh"
#include "nn/trainer.hh"
#include "winograd/algo.hh"

using namespace winomc;

namespace {

std::unique_ptr<nn::Sequential>
buildNet(bool distributed, int ng, int nc, Rng &rng)
{
    const auto &algo = algoF2x2_3x3();
    auto net = std::make_unique<nn::Sequential>();
    auto conv = [&](int in_ch, int out_ch) -> nn::ModulePtr {
        if (distributed)
            return std::make_unique<mpt::MptConvLayer>(in_ch, out_ch, 3,
                                                       ng, nc, algo,
                                                       rng);
        return std::make_unique<nn::ConvLayer>(
            in_ch, out_ch, 3, nn::ConvMode::WinogradLayer, algo, rng);
    };
    net->add(conv(1, 8));
    net->add(std::make_unique<nn::ReLU>());
    net->add(std::make_unique<nn::MaxPool2>());
    net->add(conv(8, 8));
    net->add(std::make_unique<nn::ReLU>());
    net->add(std::make_unique<nn::MaxPool2>());
    net->add(std::make_unique<nn::Dense>(8 * 3 * 3, 3, rng));
    return net;
}

} // namespace

int
main(int argc, char **argv)
{
    const int ng = argc > 1 ? std::atoi(argv[1]) : 4;
    const int nc = argc > 2 ? std::atoi(argv[2]) : 4;
    std::printf("MPT distributed training on %d x %d = %d (virtual) "
                "workers vs a single worker\n\n", ng, nc, ng * nc);

    Rng data_rng(8);
    nn::Dataset train_set = nn::makeShapeDataset(256, 12, 3, data_rng);
    nn::Dataset val_set = nn::makeShapeDataset(96, 12, 3, data_rng);

    nn::TrainConfig cfg;
    cfg.epochs = 5;
    cfg.batchSize = 16; // must divide by nc

    Rng seed_a(1234), seed_b(1234), order_a(77), order_b(77);
    auto solo = buildNet(false, ng, nc, seed_a);
    auto dist = buildNet(true, ng, nc, seed_b);

    auto h_solo = nn::train(*solo, train_set, val_set, cfg, order_a);
    auto h_dist = nn::train(*dist, train_set, val_set, cfg, order_b);

    Table t("training curves (identical seeds and data order)");
    t.header({"epoch", "solo loss", "mpt loss", "solo val acc",
              "mpt val acc"});
    for (size_t e = 0; e < h_solo.size(); ++e) {
        t.row()
            .cell(int64_t(e + 1))
            .cell(h_solo[e].trainLoss, 4)
            .cell(h_dist[e].trainLoss, 4)
            .cell(h_solo[e].valAcc, 3)
            .cell(h_dist[e].valAcc, 3);
    }
    t.print();

    auto &c1 = dynamic_cast<mpt::MptConvLayer &>(dist->child(0));
    auto &c2 = dynamic_cast<mpt::MptConvLayer &>(dist->child(3));
    std::printf("tile data across worker boundaries: %s + %s; weight "
                "gradients reduced: %s elements\n",
                formatBytes(double(c1.tileElemsTransferred()) * 4).c_str(),
                formatBytes(double(c2.tileElemsTransferred()) * 4).c_str(),
                std::to_string(c1.weightElemsReduced() +
                               c2.weightElemsReduced()).c_str());
    std::printf("the curves coincide: MPT redistributes the work, "
                "never the result.\n");
    return 0;
}
