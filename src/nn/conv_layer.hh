/**
 * @file
 * Trainable convolution layer with four execution modes:
 *
 *  - Direct:        spatial weights, direct convolution;
 *  - WinogradSpatial: spatial weights, executed through the Winograd
 *                   pipeline (Fig 2(a)) - gradients map back through the
 *                   weight-transform adjoint;
 *  - WinogradLayer: the paper's Winograd layer (Fig 2(b), [29]) - the
 *                   parameters ARE the Winograd-domain weights W and are
 *                   updated there directly;
 *  - Auto:          spatial weights with generalized geometry (any
 *                   kernel size, stride, rectangular filters); the
 *                   execution algorithm - direct, plain F(m,3), or the
 *                   DWM decomposition into F(m,3) units - is picked per
 *                   shape by the winograd/tuner.hh auto-tuner
 *                   (WINOMC_TUNE), no manual mode hint needed.
 *
 * The three manual modes compute the same function at initialization;
 * WinogradLayer then evolves in a (slightly larger) parameter space.
 *
 * Winograd execution goes through a lazily-built WinoPlan (or
 * WinoDecompPlan) bound to the incoming shape: the plan owns every tile
 * slab and the layer keeps its gradient scratch, so steady-state
 * training steps allocate nothing.
 *
 * Training through an Auto layer is supported wherever the gradients
 * are defined on the fast path's geometry: stride-1 odd square kernels
 * (gradients run through the Winograd adjoints for 3x3, the direct
 * kernels for decomposed shapes). Strided or rectangular-kernel Auto
 * layers are inference-only and assert loudly in backward().
 */

#ifndef WINOMC_NN_CONV_LAYER_HH
#define WINOMC_NN_CONV_LAYER_HH

#include <memory>

#include "nn/module.hh"
#include "quant/prune.hh"
#include "winograd/algo.hh"
#include "winograd/conv.hh"
#include "winograd/plan.hh"
#include "winograd/tuner.hh"

namespace winomc::nn {

enum class ConvMode { Direct, WinogradSpatial, WinogradLayer, Auto };

class ConvLayer : public Module
{
  public:
    /**
     * Manual-mode constructor (square odd r, stride 1, "same").
     * @param in_ch, out_ch  channels
     * @param r              odd filter edge
     * @param mode           execution / weight-domain mode (not Auto —
     *                       Auto layers carry no algorithm hint; use
     *                       the geometry constructor)
     * @param algo           Winograd algorithm (ignored for Direct)
     */
    ConvLayer(int in_ch, int out_ch, int r, ConvMode mode,
              const WinogradAlgo &algo, Rng &rng);

    /**
     * Auto-mode constructor: generalized geometry, tuner-selected
     * execution. Padding is "same"-style ((k-1)/2 per dimension);
     * output is (H + 2*pad - kh)/strideH + 1 on each axis.
     */
    ConvLayer(int in_ch, int out_ch, int kernel_h, int kernel_w,
              int stride_h, int stride_w, Rng &rng);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &dy) override;
    void step(float lr) override;
    size_t paramCount() const override;
    std::string name() const override;

    ConvMode mode() const { return convMode; }
    /** Spatial weights (valid in every mode but WinogradLayer). */
    const Tensor &spatialWeights() const { return w; }
    /** Winograd-domain weights (valid in Winograd modes); the shared
     *  slab when shareWinoWeights() is in effect. */
    const WinoWeights &winoWeights() const { return effectiveW(); }
    /** Cached pre-activation Winograd tiles from the last forward (for
     *  the activation-prediction experiments). */
    const WinoTiles &lastOutputTiles() const;
    /** The current execution plan (null before the first Winograd-mode
     *  forward). */
    const WinoPlan *plan() const { return execPlan.get(); }
    /** The current decomposed plan (Auto mode, null unless the tuner
     *  picked the decomposition). */
    const WinoDecompPlan *decomposedPlan() const
    {
        return decompPlan.get();
    }
    /** The tuner's decision for the last Auto-mode shape (valid once a
     *  forward ran). */
    const tune::AlgoChoice &autoChoice() const { return choice; }

    /**
     * Route plan leases through an external source — e.g. the serving
     * engine's shared, byte-budgeted serve::PlanCache — instead of the
     * layer's own LRU. The current plan (if any) is handed back to the
     * source it came from first. Pass nullptr to restore the internal
     * per-layer cache. The source must outlive the layer (or a final
     * setPlanSource(nullptr)).
     */
    void setPlanSource(PlanSource *src);

    /**
     * Winograd-domain magnitude pruning (WinogradLayer mode only — the
     * parameters must live in the Winograd domain): zeroes the
     * smallest-|W| fraction of the transformed weights and pins them.
     * The per-coefficient mask is kept and applied to the Winograd-
     * domain weight gradient in backward(), so pruned coefficients
     * receive exactly-zero updates and stay dead through any number of
     * further SGD steps. Returns the achieved sparsity.
     */
    double pruneWinogradWeights(double sparsity);

    /** The active prune mask (null until pruneWinogradWeights ran). */
    const quant::PruneMask *winoPruneMask() const
    {
        return pruneMask.get();
    }

    /**
     * Adopt shared, frozen Winograd-domain weights (manual Winograd
     * modes only): the layer serves forwards from *shared instead of
     * its own W, so replicas of one model skip the per-replica weight
     * transform entirely (the serving plan cache hands every replica
     * the same transformed slab). The layer becomes inference-only —
     * step() on a shared layer dies. Pass nullptr to return to the
     * layer-owned weights.
     */
    void shareWinoWeights(std::shared_ptr<const WinoWeights> shared);

  private:
    /** (Re)lease execPlan iff the incoming shape stopped matching. */
    void ensurePlan(const Tensor &x);

    /** The incoming shape as a generalized descriptor (Auto mode). */
    ConvSpec autoSpec(const Tensor &x) const;
    /** Consult the tuner and (re)bind the chosen algorithm's state. */
    void ensureChoice(const ConvSpec &spec);
    /** The plain-Winograd forward body shared by the manual Winograd
     *  modes and Auto-with-Winograd. */
    Tensor winogradForwardBody(const Tensor &x, bool train);
    Tensor forwardAuto(const Tensor &x, bool train);

    /** The active plan source (external override or the own LRU). */
    PlanSource &planSourceRef()
    {
        return planSrc ? *planSrc : planCache;
    }

    /** Winograd-domain weights to execute with (shared or own). */
    const WinoWeights &effectiveW() const
    {
        return sharedW ? *sharedW : W;
    }

    int inCh, outCh, r;
    int kh, kw;     ///< kernel extents (== r in the manual modes)
    int sH, sW;     ///< strides (1 in the manual modes)
    ConvMode convMode;
    /** Execution algorithm: fixed in the manual Winograd modes, tuner-
     *  bound in Auto (null for Direct and before the first forward). */
    const WinogradAlgo *alg;

    Tensor w;       ///< spatial parameters (all modes but WinogradLayer)
    Tensor dw;      ///< spatial gradient
    WinoWeights W;  ///< Winograd-domain parameters (Winograd execution)
    WinoWeights dW; ///< Winograd-domain gradient
    bool haveGrad = false;

    std::unique_ptr<WinoPlan> execPlan; ///< shape-bound slabs + grid
    std::unique_ptr<WinoDecompPlan> decompPlan; ///< Auto decomposition
    PlanLru planCache;        ///< parks displaced plans (shape churn)
    PlanSource *planSrc = nullptr; ///< external override, else planCache
    std::shared_ptr<const WinoWeights> sharedW; ///< frozen shared weights
    WinoWeights gScratch; ///< per-step Winograd weight-grad scratch
    Tensor dwScratch;     ///< per-step spatial weight-grad scratch

    tune::AlgoChoice choice; ///< Auto: the tuner's decision
    bool haveChoice = false;
    bool decompWeightsDirty = true; ///< re-split weights before forward
    int tunedB = 0, tunedH = 0, tunedW = 0; ///< shape the choice binds

    /** Pinned-zero Winograd coefficients (pruneWinogradWeights). */
    std::unique_ptr<quant::PruneMask> pruneMask;

    Tensor cachedX;    ///< input (direct-gradient paths / fused train)
    /** True iff the activations the backward pass needs were cached by
     *  a train-mode forward and not clobbered since. */
    bool trainCached = false;
    int lastH = 0, lastW = 0;
};

} // namespace winomc::nn

#endif // WINOMC_NN_CONV_LAYER_HH
