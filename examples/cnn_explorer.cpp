/**
 * @file
 * Whole-network explorer: simulate one training iteration of any
 * bundled CNN on the NDP system under every Table IV configuration,
 * with per-layer dynamic-clustering decisions and the multi-GPU
 * comparison.
 *
 * Usage: cnn_explorer [wrn|resnet34|fractalnet|vgg16] [workers]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/table.hh"
#include "gpu/gpu_model.hh"
#include "mpt/network_sim.hh"
#include "workloads/networks.hh"

using namespace winomc;
using namespace winomc::mpt;

int
main(int argc, char **argv)
{
    const char *which = argc > 1 ? argv[1] : "resnet34";
    workloads::NetworkSpec net;
    if (std::strcmp(which, "wrn") == 0)
        net = workloads::wideResnet40_10();
    else if (std::strcmp(which, "fractalnet") == 0)
        net = workloads::fractalNet();
    else if (std::strcmp(which, "vgg16") == 0)
        net = workloads::vgg16();
    else
        net = workloads::resnet34();

    SystemParams sp;
    if (argc > 2)
        sp.workers = std::atoi(argv[2]);

    std::printf("%s (%s, %.1fM conv params, batch %d) on %d NDP "
                "workers\n\n", net.name.c_str(), net.dataset.c_str(),
                double(net.paramCount()) / 1e6, net.layers.front().batch,
                sp.workers);

    Table t("one training iteration");
    t.header({"config", "iteration ms", "img/s", "energy J", "avg W"});
    for (Strategy s : {Strategy::DirectDP, Strategy::WinoDP,
                       Strategy::WinoMPT, Strategy::WinoMPTPredict,
                       Strategy::WinoMPTPredictDyn}) {
        NetworkResult r = simulateNetwork(net, s, sp);
        t.row()
            .cell(strategyName(s))
            .cell(r.iterationSeconds * 1e3, 2)
            .cell(r.imagesPerSec, 0)
            .cell(r.energy.total(), 2)
            .cell(r.averagePowerWatts, 0);
    }
    t.print();

    // Per-layer dynamic-clustering map (compressed to runs).
    NetworkResult best = simulateNetwork(
        net, Strategy::WinoMPTPredictDyn, sp);
    std::printf("dynamic clustering: ");
    std::string last;
    int run = 0;
    for (size_t l = 0; l <= best.layers.size(); ++l) {
        std::string cur =
            l < best.layers.size()
                ? best.layers[l].shape.toString()
                : std::string();
        if (cur == last) {
            ++run;
            continue;
        }
        if (run > 0)
            std::printf("%dx %s  ", run, last.c_str());
        last = cur;
        run = 1;
    }
    std::printf("\n\n");

    auto g8 = gpu::simulateGpuTraining(net, 8);
    std::printf("8-GPU reference (batch %d): %.2f ms, %.0f img/s -> "
                "NDP w_mp++ is %.1fx faster\n",
                net.layers.front().batch, g8.iterationSeconds * 1e3,
                g8.imagesPerSec,
                g8.iterationSeconds / best.iterationSeconds);
    return 0;
}
