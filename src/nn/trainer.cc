#include "nn/trainer.hh"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <numeric>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/trace.hh"
#include "nn/loss.hh"

namespace winomc::nn {

std::vector<EpochStats>
train(Module &model, const Dataset &train_set, const Dataset &val_set,
      const TrainConfig &cfg, Rng &rng)
{
    static std::once_flag engine_logged;
    std::call_once(engine_logged, [] {
        winomc_inform("host execution engine: ",
                      ThreadPool::global().threadCount(),
                      " thread(s) (WINOMC_THREADS overrides)");
    });

    int batch_size = cfg.batchSize;
    if (batch_size <= 0) {
        winomc_warn("batchSize ", cfg.batchSize, " clamped to 1");
        batch_size = 1;
    }
    if (train_set.size() == 0)
        winomc_warn("training set is empty - every epoch is a no-op");

    std::vector<EpochStats> history;
    std::vector<size_t> order(train_set.size());
    std::iota(order.begin(), order.end(), 0);

    float lr = cfg.lr;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        WINOMC_SPAN("train.epoch", "train");
        const auto epoch_start = std::chrono::steady_clock::now();
        std::shuffle(order.begin(), order.end(), rng.raw());

        double loss_sum = 0.0;
        int correct = 0, seen = 0, batches = 0;
        // Walk the whole (shuffled) set; the final batch may be a
        // partial remainder so no sample is ever dropped, and
        // batch_size > size() degrades to one small batch per epoch.
        for (size_t pos = 0; pos < train_set.size();
             pos += size_t(batch_size)) {
            WINOMC_SPAN("train.batch", "train");
            const int bn = int(std::min(size_t(batch_size),
                                        train_set.size() - pos));
            // Gather the shuffled batch.
            Tensor xb(bn, 1, train_set.imageSize, train_set.imageSize);
            std::vector<int> yb(static_cast<size_t>(bn));
            for (int k = 0; k < bn; ++k) {
                const Tensor &img = train_set.images[order[pos + k]];
                for (int i = 0; i < train_set.imageSize; ++i)
                    for (int j = 0; j < train_set.imageSize; ++j)
                        xb.at(k, 0, i, j) = img.at(i, j);
                yb[size_t(k)] = train_set.labels[order[pos + k]];
            }

            Tensor logits = model.forward(xb, true);
            LossResult res = softmaxCrossEntropy(logits, yb);
            model.backward(res.dlogits);
            model.step(lr);

            // res.loss is the batch mean: weight by batch size so the
            // remainder batch counts per sample, not per batch.
            loss_sum += res.loss * bn;
            correct += res.correct;
            seen += bn;
            ++batches;
        }

        EpochStats st;
        st.trainLoss = seen ? loss_sum / seen : 0.0;
        st.trainAcc = seen ? double(correct) / seen : 0.0;
        st.valAcc = evaluate(model, val_set, batch_size);
        history.push_back(st);
        if (metrics::enabled()) {
            const std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - epoch_start;
            metrics::counterAdd("train.samples", seen);
            metrics::counterAdd("train.batches", batches);
            if (dt.count() > 0.0)
                metrics::gaugeSet("train.samples_per_sec",
                                  seen / dt.count());
        }
        if (cfg.verbose) {
            winomc_inform("epoch ", epoch + 1, "/", cfg.epochs, " loss ",
                          st.trainLoss, " train acc ", st.trainAcc,
                          " val acc ", st.valAcc);
        }
        lr *= cfg.lrDecay;
    }
    return history;
}

double
evaluate(Module &model, const Dataset &ds, int batch_size)
{
    WINOMC_SPAN("train.eval", "train");
    if (batch_size <= 0)
        batch_size = 1;
    int correct = 0, seen = 0;
    for (size_t pos = 0; pos < ds.size(); pos += size_t(batch_size)) {
        size_t count = std::min(size_t(batch_size), ds.size() - pos);
        std::vector<int> yb;
        Tensor xb = ds.batch(pos, count, yb);
        Tensor logits = model.forward(xb, false);
        LossResult res = softmaxCrossEntropy(logits, yb);
        correct += res.correct;
        seen += int(count);
    }
    return seen ? double(correct) / seen : 0.0;
}

} // namespace winomc::nn
