/**
 * @file
 * Exact rational arithmetic for Toom-Cook transform-matrix generation.
 *
 * The interpolation points used for Winograd filtering are tiny integers
 * (0, +-1, +-2, ...), so numerators/denominators stay minuscule; int64
 * storage with __int128 intermediates is far more than sufficient.
 */

#ifndef WINOMC_WINOGRAD_RATIONAL_HH
#define WINOMC_WINOGRAD_RATIONAL_HH

#include <cstdint>
#include <numeric>

#include "common/logging.hh"

namespace winomc {

/** Exact rational number, always stored normalized with positive den. */
class Rational
{
  public:
    constexpr Rational() : numv(0), denv(1) {}
    constexpr Rational(int64_t n) : numv(n), denv(1) {}
    Rational(int64_t n, int64_t d) : numv(n), denv(d) { normalize(); }

    int64_t num() const { return numv; }
    int64_t den() const { return denv; }
    double toDouble() const { return double(numv) / double(denv); }
    bool isZero() const { return numv == 0; }

    Rational
    operator+(const Rational &o) const
    {
        return make(i128(numv) * o.denv + i128(o.numv) * denv,
                    i128(denv) * o.denv);
    }
    Rational
    operator-(const Rational &o) const
    {
        return make(i128(numv) * o.denv - i128(o.numv) * denv,
                    i128(denv) * o.denv);
    }
    Rational
    operator*(const Rational &o) const
    {
        return make(i128(numv) * o.numv, i128(denv) * o.denv);
    }
    Rational
    operator/(const Rational &o) const
    {
        winomc_assert(o.numv != 0, "rational division by zero");
        return make(i128(numv) * o.denv, i128(denv) * o.numv);
    }
    Rational operator-() const { return Rational(-numv, denv); }

    Rational &operator+=(const Rational &o) { return *this = *this + o; }
    Rational &operator-=(const Rational &o) { return *this = *this - o; }
    Rational &operator*=(const Rational &o) { return *this = *this * o; }

    bool
    operator==(const Rational &o) const
    {
        return numv == o.numv && denv == o.denv;
    }
    bool operator!=(const Rational &o) const { return !(*this == o); }

  private:
    using i128 = __int128;

    static Rational
    make(i128 n, i128 d)
    {
        winomc_assert(d != 0, "zero denominator");
        if (d < 0) {
            n = -n;
            d = -d;
        }
        i128 g = gcd128(n < 0 ? -n : n, d);
        if (g > 1) {
            n /= g;
            d /= g;
        }
        winomc_assert(n <= INT64_MAX && n >= INT64_MIN && d <= INT64_MAX,
                      "rational overflow");
        Rational r;
        r.numv = int64_t(n);
        r.denv = int64_t(d);
        return r;
    }

    static i128
    gcd128(i128 a, i128 b)
    {
        while (b != 0) {
            i128 t = a % b;
            a = b;
            b = t;
        }
        return a == 0 ? 1 : a;
    }

    void
    normalize()
    {
        *this = make(numv, denv);
    }

    int64_t numv;
    int64_t denv;
};

} // namespace winomc

#endif // WINOMC_WINOGRAD_RATIONAL_HH
