/**
 * @file
 * Process-wide metrics registry: counters, gauges, and timers with
 * JSON/CSV export.
 *
 * Design points:
 *
 *  - Disabled by default. The knob is WINOMC_METRICS=<path>: when set,
 *    recording turns on and a dump is written to <path> at process
 *    exit (CSV when the path ends in ".csv", JSON otherwise). Tests
 *    and tools can also flip recording programmatically with
 *    setEnabled() and dump explicitly with dumpToFile().
 *  - When disabled every record call is a single relaxed atomic load
 *    and branch, so instrumented kernels stay within noise of the
 *    uninstrumented build.
 *  - Counters and timers accumulate into per-thread shards that are
 *    merged on snapshot/flush, so recording composes with
 *    common/parallel.hh workers without cross-thread contention on the
 *    hot path. Each shard carries its own mutex (uncontended in steady
 *    state) so snapshots are race-free under TSan. Gauges are
 *    last-write-wins and rare, so they write straight to the registry.
 *  - Names are dotted paths ("wino.ew.fwd", "train.samples"); the
 *    exporters emit them sorted for deterministic artifacts.
 */

#ifndef WINOMC_COMMON_METRICS_HH
#define WINOMC_COMMON_METRICS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace winomc {
class Histogram;
}

namespace winomc::metrics {

enum class Kind { Counter, Gauge, Timer, Histogram };

/** One merged metric in a snapshot. */
struct Sample
{
    std::string name;
    Kind kind = Kind::Counter;
    double value = 0.0;    ///< counter total / gauge last / histogram sum
    std::uint64_t count = 0; ///< record events (counter/timer/histogram)
    double totalSec = 0.0; ///< timers only
    double minSec = 0.0;
    double maxSec = 0.0;
    // Histograms only: distribution summary surviving the dump. NaN
    // when the histogram holds no samples (rendered "-" by the dumps).
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    // Histograms only: the largest-valued exemplar recorded so far
    // (id 0 = none). Serving attaches request trace ids here so a p99
    // outlier in a scrape resolves to its span in the trace file.
    std::uint64_t exemplarId = 0;
    double exemplarValue = 0.0;
    // Histograms only: the merged bucket payload backing this sample
    // (never aliases registry state), so consumers like the
    // Prometheus exposition can render per-bucket counts. Null for
    // other kinds and for samples re-parsed from a dump.
    std::shared_ptr<const winomc::Histogram> hist;

    double mean() const { return count ? value / double(count) : 0.0; }
};

/** True when recording is on (one relaxed atomic load). */
inline bool
enabled()
{
    extern std::atomic<bool> gEnabled;
    return gEnabled.load(std::memory_order_relaxed);
}

/** Turn recording on/off programmatically (tests, tools). */
void setEnabled(bool on);

/** Path configured via WINOMC_METRICS, or "" when unset. */
const std::string &configuredPath();

/** Override the dump path programmatically (tests, crash handlers):
 *  after this, dumpIfConfigured() — including the best-effort flush
 *  on fatal/panic — writes to `path`. Does not arm the at-exit dump. */
void setConfiguredPath(const std::string &path);

/** Accumulate `v` into counter `name`. No-op when disabled. */
void counterAdd(const char *name, double v = 1.0);

/** Set gauge `name` to its latest value. No-op when disabled. */
void gaugeSet(const char *name, double v);

/** Accumulate one timed interval into timer `name`. */
void timerAdd(const char *name, double seconds);

/**
 * Accumulate `v` into histogram metric `name`. The first add of a name
 * fixes its bucket layout ([lo, hi) split into `buckets` linear buckets
 * plus under/overflow); later adds reuse it, and callers must use one
 * layout per name (a mismatch is warned once and folded into the
 * count/sum without bucket detail). Snapshots expose count, sum, and
 * p50/p90/p99. No-op when disabled.
 */
void histogramAdd(const char *name, double v, double lo, double hi,
                  int buckets = 32);

/**
 * histogramAdd carrying an exemplar: `exemplarId` is an opaque
 * correlation id (a serve request's trace id). Each histogram keeps
 * the exemplar of the LARGEST value recorded so far, so the surviving
 * exemplar points at the worst outlier — the one a p99 investigation
 * wants. Id 0 means "no exemplar" (plain histogramAdd).
 */
void histogramAddExemplar(const char *name, double v, double lo,
                          double hi, int buckets,
                          std::uint64_t exemplarId);

/** Merge an externally accumulated histogram (e.g. a simulator's
 *  per-cycle occupancy distribution) into histogram metric `name`.
 *  No-op when disabled. */
void histogramMerge(const char *name, const winomc::Histogram &h);

/**
 * Create histogram metric `name` with the given bucket layout and zero
 * samples (a later histogramAdd reuses the layout). Long-lived services
 * (serve::Engine) register their latency histograms up front so a dump
 * taken before the first request still lists them; an empty histogram
 * has no percentiles — snapshots carry NaN and the dumps render "-".
 * No-op when disabled or when `name` was already recorded.
 */
void histogramRegister(const char *name, double lo, double hi,
                       int buckets = 32);

/**
 * Per-simulation-run metric scoping: while a scope `s` is set, every
 * recorded metric name is prefixed "s/", so sweeps (one scope per
 * configuration) dump side by side instead of smearing together.
 * Scoping is process-global — worker threads inherit it — and meant
 * for coarse, sequential run boundaries, not per-task tagging.
 */
void setRunScope(const std::string &scope);
/** Current run scope ("" when none). */
std::string runScope();

/** RAII run scope: sets on construction, restores on destruction. */
class RunScope
{
  public:
    explicit RunScope(const std::string &scope) : prev(runScope())
    {
        setRunScope(scope);
    }
    ~RunScope() { setRunScope(prev); }
    RunScope(const RunScope &) = delete;
    RunScope &operator=(const RunScope &) = delete;

  private:
    std::string prev;
};

/** Merged view of every metric recorded so far, sorted by name. */
std::vector<Sample> snapshot();

/**
 * Cursor for snapshotDelta(): holds the cumulative totals the last
 * delta was taken against. One baseline per consumer (the exposition
 * publisher, an SLO window, a test) — they never interfere, because
 * taking a delta reads the registry without mutating it.
 */
struct DeltaBaseline
{
    std::map<std::string, Sample> prev;
};

/**
 * Snapshot, differenced against (and then advancing) `base`:
 * counters/timers/histograms report value/count/totalSec accumulated
 * since the previous call with this baseline; gauges pass through
 * their latest value. Because every record lands in exactly one shard
 * and totals are monotone, consecutive deltas telescope exactly — the
 * sum of all deltas equals the plain snapshot, even under concurrent
 * recording (each in-flight record lands in exactly one delta).
 * Histogram percentiles/buckets/exemplars stay cumulative-to-date
 * (bucket layouts cannot be subtracted); scrape-style consumers want
 * the cumulative distribution anyway. Never resets the registry.
 */
std::vector<Sample> snapshotDelta(DeltaBaseline &base);

/** Drop all recorded values (all shards). Recording state unchanged. */
void reset();

/** Serialize the current snapshot. */
std::string toJson();
std::string toCsv();

/** Write the snapshot to `path` (CSV iff it ends in ".csv"). */
void dumpToFile(const std::string &path);

/** dumpToFile(configuredPath()) when WINOMC_METRICS is set; also runs
 *  automatically at process exit. Explicit calls let benches emit the
 *  artifact before a hard exit. */
void dumpIfConfigured();

/** RAII timer: accumulates its lifetime into timer `name`. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(const char *name)
        : name(name), active(enabled())
    {
        if (active)
            start = std::chrono::steady_clock::now();
    }
    ~ScopedTimer()
    {
        if (active) {
            std::chrono::duration<double> d =
                std::chrono::steady_clock::now() - start;
            timerAdd(name, d.count());
        }
    }
    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    const char *name;
    bool active;
    std::chrono::steady_clock::time_point start;
};

} // namespace winomc::metrics

#endif // WINOMC_COMMON_METRICS_HH
