#include "nn/basic_layers.hh"

#include <cmath>

#include "winograd/microkernel.hh"

namespace winomc::nn {

Tensor
ReLU::forward(const Tensor &x, bool train)
{
    Tensor y = x;
    if (train)
        mask = Tensor(x.n(), x.c(), x.h(), x.w());
    const mk::MicroKernels &K = mk::kernels();
    K.reluForward(y.data(), train ? mask.data() : nullptr, x.data(),
                  std::int64_t(x.size()));
    return y;
}

Tensor
ReLU::backward(const Tensor &dy)
{
    winomc_assert(dy.sameShape(mask), "ReLU backward shape mismatch");
    Tensor dx = dy;
    mk::kernels().mulPairwise(dx.data(), dy.data(), mask.data(),
                              std::int64_t(dy.size()));
    return dx;
}

Tensor
MaxPool2::forward(const Tensor &x, bool train)
{
    inH = x.h();
    inW = x.w();
    const int oh = x.h() / 2, ow = x.w() / 2;
    winomc_assert(oh > 0 && ow > 0, "maxpool2 input too small");
    Tensor y(x.n(), x.c(), oh, ow);
    if (train)
        argmax = Tensor(x.n(), x.c(), oh, ow);
    for (int b = 0; b < x.n(); ++b) {
        for (int c = 0; c < x.c(); ++c) {
            for (int i = 0; i < oh; ++i) {
                for (int j = 0; j < ow; ++j) {
                    float best = x.at(b, c, 2 * i, 2 * j);
                    int arg = 0;
                    for (int k = 1; k < 4; ++k) {
                        float v = x.at(b, c, 2 * i + k / 2,
                                       2 * j + k % 2);
                        if (v > best) {
                            best = v;
                            arg = k;
                        }
                    }
                    y.at(b, c, i, j) = best;
                    if (train)
                        argmax.at(b, c, i, j) = float(arg);
                }
            }
        }
    }
    return y;
}

Tensor
MaxPool2::backward(const Tensor &dy)
{
    Tensor dx(dy.n(), dy.c(), inH, inW);
    for (int b = 0; b < dy.n(); ++b) {
        for (int c = 0; c < dy.c(); ++c) {
            for (int i = 0; i < dy.h(); ++i) {
                for (int j = 0; j < dy.w(); ++j) {
                    int k = int(argmax.at(b, c, i, j));
                    dx.at(b, c, 2 * i + k / 2, 2 * j + k % 2) +=
                        dy.at(b, c, i, j);
                }
            }
        }
    }
    return dx;
}

Tensor
AvgPool2::forward(const Tensor &x, bool)
{
    inH = x.h();
    inW = x.w();
    const int oh = x.h() / 2, ow = x.w() / 2;
    winomc_assert(oh > 0 && ow > 0, "avgpool2 input too small");
    Tensor y(x.n(), x.c(), oh, ow);
    const mk::MicroKernels &K = mk::kernels();
    const float *xp = x.data();
    float *yp = y.data();
    for (int b = 0; b < x.n(); ++b) {
        for (int c = 0; c < x.c(); ++c) {
            const float *plane =
                xp + ((size_t(b) * x.c() + c) * x.h()) * x.w();
            float *yplane = yp + ((size_t(b) * x.c() + c) * oh) * ow;
            for (int i = 0; i < oh; ++i)
                K.avgPool2Row(yplane + size_t(i) * ow,
                              plane + size_t(2 * i) * x.w(),
                              plane + size_t(2 * i + 1) * x.w(), ow);
        }
    }
    return y;
}

Tensor
AvgPool2::backward(const Tensor &dy)
{
    Tensor dx(dy.n(), dy.c(), inH, inW);
    for (int b = 0; b < dy.n(); ++b)
        for (int c = 0; c < dy.c(); ++c)
            for (int i = 0; i < dy.h(); ++i)
                for (int j = 0; j < dy.w(); ++j) {
                    float g = 0.25f * dy.at(b, c, i, j);
                    dx.at(b, c, 2 * i, 2 * j) = g;
                    dx.at(b, c, 2 * i, 2 * j + 1) = g;
                    dx.at(b, c, 2 * i + 1, 2 * j) = g;
                    dx.at(b, c, 2 * i + 1, 2 * j + 1) = g;
                }
    return dx;
}

Tensor
GlobalAvgPool::forward(const Tensor &x, bool)
{
    inH = x.h();
    inW = x.w();
    Tensor y(x.n(), x.c(), 1, 1);
    const float scale = 1.0f / float(x.h() * x.w());
    const mk::MicroKernels &K = mk::kernels();
    const std::int64_t plane = std::int64_t(x.h()) * x.w();
    const float *xp = x.data();
    for (int b = 0; b < x.n(); ++b)
        for (int c = 0; c < x.c(); ++c)
            y.at(b, c, 0, 0) =
                float(K.sumDouble(
                    xp + (size_t(b) * x.c() + c) * size_t(plane),
                    plane)) *
                scale;
    return y;
}

Tensor
GlobalAvgPool::backward(const Tensor &dy)
{
    Tensor dx(dy.n(), dy.c(), inH, inW);
    const float scale = 1.0f / float(inH * inW);
    for (int b = 0; b < dy.n(); ++b)
        for (int c = 0; c < dy.c(); ++c)
            for (int i = 0; i < inH; ++i)
                for (int j = 0; j < inW; ++j)
                    dx.at(b, c, i, j) = dy.at(b, c, 0, 0) * scale;
    return dx;
}

Dense::Dense(int in_features, int out_features, Rng &rng)
    : inF(in_features), outF(out_features), w(1, 1, out_features,
      in_features), b(1, 1, 1, out_features),
      dw(1, 1, out_features, in_features), db(1, 1, 1, out_features)
{
    float sigma = std::sqrt(2.0f / float(in_features));
    w.fillGaussian(rng, 0.0f, sigma);
}

Tensor
Dense::forward(const Tensor &x, bool train)
{
    winomc_assert(x.c() * x.h() * x.w() == inF, "Dense expected ", inF,
                  " features, got ", x.c() * x.h() * x.w());
    xc = x.c();
    xh = x.h();
    xw = x.w();
    Tensor flat(x.n(), 1, 1, inF);
    for (int n = 0; n < x.n(); ++n) {
        int f = 0;
        for (int c = 0; c < x.c(); ++c)
            for (int i = 0; i < x.h(); ++i)
                for (int j = 0; j < x.w(); ++j)
                    flat.at(n, 0, 0, f++) = x.at(n, c, i, j);
    }
    if (train)
        cachedX = flat;

    Tensor y(x.n(), 1, 1, outF);
    for (int n = 0; n < x.n(); ++n) {
        for (int o = 0; o < outF; ++o) {
            double acc = b.at(0, 0, 0, o);
            for (int f = 0; f < inF; ++f)
                acc += double(w.at(0, 0, o, f)) * flat.at(n, 0, 0, f);
            y.at(n, 0, 0, o) = float(acc);
        }
    }
    return y;
}

Tensor
Dense::backward(const Tensor &dy)
{
    const int B = dy.n();
    for (int n = 0; n < B; ++n) {
        for (int o = 0; o < outF; ++o) {
            float g = dy.at(n, 0, 0, o);
            db.at(0, 0, 0, o) += g;
            for (int f = 0; f < inF; ++f)
                dw.at(0, 0, o, f) += g * cachedX.at(n, 0, 0, f);
        }
    }
    Tensor dx(B, xc, xh, xw);
    for (int n = 0; n < B; ++n) {
        int f = 0;
        for (int c = 0; c < xc; ++c) {
            for (int i = 0; i < xh; ++i) {
                for (int j = 0; j < xw; ++j) {
                    double acc = 0.0;
                    for (int o = 0; o < outF; ++o)
                        acc += double(w.at(0, 0, o, f)) * dy.at(n, 0, 0, o);
                    dx.at(n, c, i, j) = float(acc);
                    ++f;
                }
            }
        }
    }
    return dx;
}

void
Dense::step(float lr)
{
    // SGD axpy: w += (-lr) * dw. Bitwise identical to the legacy
    // `dw *= -lr; w += dw` sequence on the scalar path (sign flip and
    // subtract commute exactly in IEEE-754).
    const mk::MicroKernels &K = mk::kernels();
    K.axpy(w.data(), -lr, dw.data(), std::int64_t(w.size()));
    dw.fill(0.0f);
    K.axpy(b.data(), -lr, db.data(), std::int64_t(b.size()));
    db.fill(0.0f);
}

size_t
Dense::paramCount() const
{
    return w.size() + b.size();
}

} // namespace winomc::nn
