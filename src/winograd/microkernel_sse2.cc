/**
 * @file
 * SSE2 micro-kernel TU. On x86-64 SSE2 is baseline, so this TU builds
 * with the default flags; CMake defines WINOMC_HAVE_MK_SSE2 only for
 * x86 targets. Elsewhere the factory reports the level as absent.
 */

#include "winograd/microkernel.hh"

#if defined(WINOMC_HAVE_MK_SSE2)

#include "common/simd.hh"

static_assert(WINOMC_SIMD_LEVEL >= 1,
              "SSE2 TU compiled without SSE2 support");

#include "winograd/microkernel_impl.hh"

WINOMC_MK_DEFINE_TABLE(sse2Table, Isa::Sse2, "sse2")

#else

namespace winomc::mk::detail {

const MicroKernels *
sse2Table()
{
    return nullptr;
}

} // namespace winomc::mk::detail

#endif
