/**
 * @file
 * Tests for the observability layer: the metrics registry (counters /
 * gauges / timers, per-thread shard merging, JSON/CSV export) and the
 * Chrome trace-event recorder. The thread-merge tests run under an
 * 8-thread pool and carry the `concurrency` label so a
 * WINOMC_SANITIZE=thread build keeps the registry TSan-clean.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hh"
#include "common/metrics_io.hh"
#include "common/parallel.hh"
#include "common/stats.hh"
#include "common/trace.hh"

namespace winomc {
namespace {

/** Enables metrics + trace for one test and restores/clears after. */
class ObservabilityTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        wasMetrics = metrics::enabled();
        wasTrace = trace::enabled();
        metrics::setEnabled(true);
        trace::setEnabled(true);
        metrics::reset();
        trace::reset();
    }

    void
    TearDown() override
    {
        metrics::reset();
        trace::reset();
        metrics::setEnabled(wasMetrics);
        trace::setEnabled(wasTrace);
    }

    bool wasMetrics = false;
    bool wasTrace = false;
};

const metrics::Sample *
find(const std::vector<metrics::Sample> &snap, const std::string &name)
{
    for (const auto &s : snap)
        if (s.name == name)
            return &s;
    return nullptr;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

TEST_F(ObservabilityTest, CounterGaugeTimerBasics)
{
    metrics::counterAdd("t.counter", 2.0);
    metrics::counterAdd("t.counter", 3.0);
    metrics::gaugeSet("t.gauge", 1.5);
    metrics::gaugeSet("t.gauge", 2.5);
    metrics::timerAdd("t.timer", 0.25);
    metrics::timerAdd("t.timer", 0.75);

    auto snap = metrics::snapshot();
    const auto *c = find(snap, "t.counter");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->kind, metrics::Kind::Counter);
    EXPECT_DOUBLE_EQ(c->value, 5.0);
    EXPECT_EQ(c->count, 2u);

    const auto *g = find(snap, "t.gauge");
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->kind, metrics::Kind::Gauge);
    EXPECT_DOUBLE_EQ(g->value, 2.5); // last write wins

    const auto *t = find(snap, "t.timer");
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->kind, metrics::Kind::Timer);
    EXPECT_EQ(t->count, 2u);
    EXPECT_DOUBLE_EQ(t->totalSec, 1.0);
    EXPECT_DOUBLE_EQ(t->minSec, 0.25);
    EXPECT_DOUBLE_EQ(t->maxSec, 0.75);
}

TEST_F(ObservabilityTest, DisabledPathIsANoOp)
{
    metrics::setEnabled(false);
    metrics::counterAdd("t.hidden", 7.0);
    metrics::gaugeSet("t.hidden_gauge", 7.0);
    metrics::timerAdd("t.hidden_timer", 7.0);
    {
        metrics::ScopedTimer timer("t.hidden_scope");
    }
    metrics::setEnabled(true);
    auto snap = metrics::snapshot();
    EXPECT_EQ(find(snap, "t.hidden"), nullptr);
    EXPECT_EQ(find(snap, "t.hidden_gauge"), nullptr);
    EXPECT_EQ(find(snap, "t.hidden_timer"), nullptr);
    EXPECT_EQ(find(snap, "t.hidden_scope"), nullptr);
}

/// Counters and timers recorded concurrently from an 8-thread
/// parallelFor merge to exact totals (the TSan target of the
/// `concurrency` label).
TEST_F(ObservabilityTest, ShardsMergeExactlyUnderParallelFor)
{
    constexpr std::int64_t kN = 10000;
    ThreadPool pool(8);
    pool.parallelFor(0, kN, 1, [](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
            metrics::counterAdd("t.par.counter");
            metrics::timerAdd("t.par.timer", 0.001);
        }
    });

    auto snap = metrics::snapshot();
    const auto *c = find(snap, "t.par.counter");
    ASSERT_NE(c, nullptr);
    EXPECT_DOUBLE_EQ(c->value, double(kN));
    EXPECT_EQ(c->count, std::uint64_t(kN));

    const auto *t = find(snap, "t.par.timer");
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->count, std::uint64_t(kN));
    EXPECT_NEAR(t->totalSec, double(kN) * 0.001, 1e-6);
}

/// Shards of exited worker threads survive into the merged snapshot.
TEST_F(ObservabilityTest, RetiredThreadShardsAreKept)
{
    {
        ThreadPool pool(4);
        pool.parallelFor(0, 1000, 1,
                         [](std::int64_t lo, std::int64_t hi) {
                             for (std::int64_t i = lo; i < hi; ++i)
                                 metrics::counterAdd("t.retired");
                         });
    } // pool destroyed: worker shards merge into the registry
    const auto snap = metrics::snapshot();
    const auto *c = find(snap, "t.retired");
    ASSERT_NE(c, nullptr);
    EXPECT_DOUBLE_EQ(c->value, 1000.0);
}

TEST_F(ObservabilityTest, JsonDumpRoundTrips)
{
    metrics::counterAdd("t.json.counter", 42.0);
    metrics::timerAdd("t.json.timer", 0.5);
    metrics::gaugeSet("t.json.gauge", 2.25);

    const std::string path =
        ::testing::TempDir() + "metrics_roundtrip.json";
    metrics::dumpToFile(path);
    const std::string body = slurp(path);
    std::remove(path.c_str());

    // Structural JSON (one object, metrics array) with the exact
    // recorded values, so the artifact reparses downstream.
    EXPECT_EQ(body.front(), '{');
    EXPECT_NE(body.find("\"metrics\": ["), std::string::npos);
    EXPECT_NE(body.find("{\"name\": \"t.json.counter\", "
                        "\"kind\": \"counter\", \"count\": 1, "
                        "\"value\": 42}"),
              std::string::npos);
    EXPECT_NE(body.find("{\"name\": \"t.json.gauge\", "
                        "\"kind\": \"gauge\", \"count\": 1, "
                        "\"value\": 2.25}"),
              std::string::npos);
    EXPECT_NE(body.find("\"name\": \"t.json.timer\", "
                        "\"kind\": \"timer\", \"count\": 1, "
                        "\"total_sec\": 0.5"),
              std::string::npos);
}

TEST_F(ObservabilityTest, CsvDumpHasHeaderAndRows)
{
    metrics::counterAdd("t.csv.counter", 3.0);
    const std::string path = ::testing::TempDir() + "metrics.csv";
    metrics::dumpToFile(path);
    const std::string body = slurp(path);
    std::remove(path.c_str());
    EXPECT_EQ(body.rfind("name,kind,count,value,total_sec", 0), 0u);
    EXPECT_NE(body.find("t.csv.counter,counter,1,3"),
              std::string::npos);
}

TEST_F(ObservabilityTest, ResetClearsEverything)
{
    metrics::counterAdd("t.reset");
    metrics::reset();
    EXPECT_TRUE(metrics::snapshot().empty());
}

TEST_F(ObservabilityTest, SpanFeedsTraceAndMetrics)
{
    {
        WINOMC_SPAN("t.span", "test");
    }
    const auto snap = metrics::snapshot();
    const auto *t = find(snap, "t.span");
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->kind, metrics::Kind::Timer);
    EXPECT_EQ(t->count, 1u);

    const std::string json = trace::toJson();
    EXPECT_NE(json.find("\"name\": \"t.span\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(ObservabilityTest, TraceFileIsChromeLoadable)
{
    {
        WINOMC_SPAN("t.file_span", "test");
    }
    trace::emitCompleteAt("sim.task", "mpt-sim", 10.0, 5.0, 7, 2);
    trace::namePid(7, "simulated timeline");

    const std::string path = ::testing::TempDir() + "t.trace.json";
    trace::flushToFile(path);
    const std::string body = slurp(path);
    std::remove(path.c_str());

    // The chrome://tracing loader wants a traceEvents array of "X"
    // spans with numeric ts/dur/pid/tid.
    EXPECT_EQ(body.rfind("{\"traceEvents\": [", 0), 0u);
    EXPECT_NE(body.find("\"name\": \"sim.task\", \"cat\": \"mpt-sim\", "
                        "\"ph\": \"X\", \"ts\": 10, \"dur\": 5, "
                        "\"pid\": 7, \"tid\": 2"),
              std::string::npos);
    EXPECT_NE(body.find("\"name\": \"process_name\", \"ph\": \"M\", "
                        "\"pid\": 7"),
              std::string::npos);
    EXPECT_NE(body.find("\"name\": \"t.file_span\""),
              std::string::npos);
}

TEST_F(ObservabilityTest, TraceEventsRecordFromWorkers)
{
    ThreadPool pool(8);
    pool.parallelFor(0, 64, 1, [](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
            WINOMC_SPAN("t.worker_span", "test");
        }
    });
    const std::string json = trace::toJson();
    size_t count = 0, at = 0;
    while ((at = json.find("t.worker_span", at)) != std::string::npos) {
        ++count;
        ++at;
    }
    EXPECT_EQ(count, 64u);
}

/// Histogram adds from an 8-thread pool merge to exact counts, and the
/// percentiles land on the deterministic bucket edges: 1000 values
/// 0.0,0.1,...,99.9 over 100 unit buckets put the 500th sample in
/// bucket 50, so p50 reports that bucket's upper edge (51), p90 -> 91,
/// p99 -> 100.
TEST_F(ObservabilityTest, HistogramExactPercentilesUnderConcurrentAdd)
{
    constexpr std::int64_t kN = 1000;
    ThreadPool pool(8);
    pool.parallelFor(0, kN, 1, [](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
            metrics::histogramAdd("t.hist", double(i) / 10.0, 0.0,
                                  100.0, 100);
    });

    const auto snap = metrics::snapshot();
    const auto *h = find(snap, "t.hist");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->kind, metrics::Kind::Histogram);
    EXPECT_EQ(h->count, std::uint64_t(kN));
    EXPECT_DOUBLE_EQ(h->value, 49950.0); // sum of i/10, i in [0,1000)
    EXPECT_DOUBLE_EQ(h->p50, 51.0);
    EXPECT_DOUBLE_EQ(h->p90, 91.0);
    EXPECT_DOUBLE_EQ(h->p99, 100.0);
}

TEST_F(ObservabilityTest, HistogramDisabledIsANoOp)
{
    metrics::setEnabled(false);
    metrics::histogramAdd("t.hist.hidden", 1.0, 0.0, 10.0);
    Histogram ext(0.0, 10.0, 8);
    ext.add(3.0);
    metrics::histogramMerge("t.hist.hidden_merge", ext);
    metrics::setEnabled(true);
    auto snap = metrics::snapshot();
    EXPECT_EQ(find(snap, "t.hist.hidden"), nullptr);
    EXPECT_EQ(find(snap, "t.hist.hidden_merge"), nullptr);
}

/// A simulator-side Histogram merged via histogramMerge() carries its
/// full distribution into the snapshot, and later merges into the same
/// name accumulate.
TEST_F(ObservabilityTest, HistogramMergeAccumulates)
{
    Histogram a(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        a.add(double(i) + 0.5);
    metrics::histogramMerge("t.hist.merged", a);
    metrics::histogramMerge("t.hist.merged", a);

    const auto snap = metrics::snapshot();
    const auto *h = find(snap, "t.hist.merged");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 20u);
    EXPECT_DOUBLE_EQ(h->value, 2.0 * a.sum());
    EXPECT_DOUBLE_EQ(h->p50, 6.0); // 10th of 20 samples in bucket 5
}

/// Histogram samples survive a dump -> parse round trip (both formats)
/// with count, sum, and percentiles intact.
TEST_F(ObservabilityTest, HistogramDumpRoundTrips)
{
    for (int i = 0; i < 100; ++i)
        metrics::histogramAdd("t.hist.rt", double(i), 0.0, 100.0, 100);
    auto snap = metrics::snapshot();
    const auto *orig = find(snap, "t.hist.rt");
    ASSERT_NE(orig, nullptr);

    for (bool csv : {false, true}) {
        auto parsed = csv
                          ? metrics::parseCsvDump(metrics::toCsv())
                          : metrics::parseJsonDump(metrics::toJson());
        const auto *h = find(parsed, "t.hist.rt");
        ASSERT_NE(h, nullptr) << (csv ? "csv" : "json");
        EXPECT_EQ(h->kind, metrics::Kind::Histogram);
        EXPECT_EQ(h->count, orig->count);
        EXPECT_DOUBLE_EQ(h->value, orig->value);
        EXPECT_DOUBLE_EQ(h->p50, orig->p50);
        EXPECT_DOUBLE_EQ(h->p90, orig->p90);
        EXPECT_DOUBLE_EQ(h->p99, orig->p99);
    }
}

/// An eagerly registered histogram with zero samples (a serving engine
/// registers its latency distributions before the first request) has no
/// percentiles: the snapshot carries NaN, both dumps render "-", and a
/// parse maps "-" back to NaN instead of a plausible-looking 0.
TEST_F(ObservabilityTest, EmptyHistogramRendersDashAndRoundTripsNaN)
{
    metrics::histogramRegister("t.hist.empty", 0.0, 100.0, 10);
    const auto snap = metrics::snapshot();
    const auto *orig = find(snap, "t.hist.empty");
    ASSERT_NE(orig, nullptr);
    EXPECT_EQ(orig->kind, metrics::Kind::Histogram);
    EXPECT_EQ(orig->count, 0u);
    EXPECT_TRUE(std::isnan(orig->p50));
    EXPECT_TRUE(std::isnan(orig->p90));
    EXPECT_TRUE(std::isnan(orig->p99));

    EXPECT_NE(metrics::toJson().find("\"p50\": \"-\""),
              std::string::npos);
    for (bool csv : {false, true}) {
        auto parsed = csv
                          ? metrics::parseCsvDump(metrics::toCsv())
                          : metrics::parseJsonDump(metrics::toJson());
        const auto *h = find(parsed, "t.hist.empty");
        ASSERT_NE(h, nullptr) << (csv ? "csv" : "json");
        EXPECT_EQ(h->count, 0u);
        EXPECT_TRUE(std::isnan(h->p50)) << (csv ? "csv" : "json");
        EXPECT_TRUE(std::isnan(h->p90)) << (csv ? "csv" : "json");
        EXPECT_TRUE(std::isnan(h->p99)) << (csv ? "csv" : "json");
    }
    // A later add reuses the registered layout and the percentiles
    // come back numeric.
    metrics::histogramAdd("t.hist.empty", 50.0, 0.0, 100.0, 10);
    const auto snap2 = metrics::snapshot();
    const auto *live = find(snap2, "t.hist.empty");
    ASSERT_NE(live, nullptr);
    EXPECT_EQ(live->count, 1u);
    EXPECT_FALSE(std::isnan(live->p50));
}

/// Metric names containing quotes, commas, newlines, backslashes, and
/// control bytes survive a JSON and a CSV dump -> parse round trip
/// byte-for-byte.
TEST_F(ObservabilityTest, EscapedNamesRoundTripJsonAndCsv)
{
    const std::string nasty[] = {
        "t.evil\"quote",
        "t.evil,comma,comma",
        "t.evil\nnewline",
        "t.evil\\backslash",
        std::string("t.evil\x01"
                    "\x1f"
                    "ctl"),
        "t.evil \"all, of\nthe\\above\"",
    };
    double v = 1.0;
    for (const auto &name : nasty)
        metrics::counterAdd(name.c_str(), v += 1.0);

    for (bool csv : {false, true}) {
        auto parsed = csv
                          ? metrics::parseCsvDump(metrics::toCsv())
                          : metrics::parseJsonDump(metrics::toJson());
        double expect = 1.0;
        for (const auto &name : nasty) {
            const auto *c = find(parsed, name);
            ASSERT_NE(c, nullptr)
                << (csv ? "csv" : "json") << " lost: " << name;
            EXPECT_DOUBLE_EQ(c->value, expect += 1.0);
        }
    }
}

/// RunScope prefixes every recorded name with "<scope>/", nests, and
/// restores the previous scope on destruction.
TEST_F(ObservabilityTest, RunScopePrefixesAndRestores)
{
    metrics::counterAdd("t.scope.before");
    {
        metrics::RunScope outer("layerA");
        metrics::counterAdd("t.scope.in");
        {
            metrics::RunScope inner("layerB");
            metrics::counterAdd("t.scope.nested");
        }
        metrics::counterAdd("t.scope.in"); // back to outer
    }
    metrics::counterAdd("t.scope.after");

    auto snap = metrics::snapshot();
    EXPECT_NE(find(snap, "t.scope.before"), nullptr);
    EXPECT_NE(find(snap, "t.scope.after"), nullptr);
    const auto *in = find(snap, "layerA/t.scope.in");
    ASSERT_NE(in, nullptr);
    EXPECT_DOUBLE_EQ(in->value, 2.0);
    EXPECT_NE(find(snap, "layerB/t.scope.nested"), nullptr);
    EXPECT_EQ(find(snap, "t.scope.in"), nullptr);
}

TEST_F(ObservabilityTest, DisabledTraceRecordsNothing)
{
    trace::setEnabled(false);
    {
        WINOMC_SPAN("t.invisible", "test");
    }
    trace::emitCompleteAt("t.invisible2", "test", 0, 1, 3, 0);
    trace::setEnabled(true);
    const std::string json = trace::toJson();
    EXPECT_EQ(json.find("t.invisible"), std::string::npos);
}

// ---------------------------------------------------- Snapshot deltas

TEST_F(ObservabilityTest, SnapshotDeltaTelescopesExactlyUnderConcurrentAdds)
{
    // Scrape-while-recording: 8 producer threads hammer one counter,
    // one timer, and one histogram while the main thread takes deltas
    // against a private baseline. Every record lands in exactly one
    // shard and totals are monotone, so the deltas must telescope
    // EXACTLY — summed deltas equal the plain snapshot, nothing lost
    // or double-counted at shard boundaries.
    constexpr int kThreads = 8;
    constexpr int kPerThread = 4000;
    metrics::DeltaBaseline base;
    std::atomic<int> running{kThreads};
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t)
        producers.emplace_back([&running] {
            for (int i = 0; i < kPerThread; ++i) {
                metrics::counterAdd("d.count", 1.0);
                metrics::timerAdd("d.timer", 0.001);
                metrics::histogramAdd("d.hist", double(i % 100), 0.0,
                                      100.0, 100);
            }
            running.fetch_sub(1, std::memory_order_release);
        });

    double countSum = 0.0;
    std::uint64_t countEvents = 0;
    double timerSec = 0.0;
    std::uint64_t histEvents = 0;
    auto accumulate = [&] {
        for (const auto &s : metrics::snapshotDelta(base)) {
            if (s.name == "d.count") {
                countSum += s.value;
                countEvents += s.count;
            } else if (s.name == "d.timer") {
                timerSec += s.totalSec;
            } else if (s.name == "d.hist") {
                histEvents += s.count;
            }
        }
    };
    while (running.load(std::memory_order_acquire) > 0)
        accumulate(); // mid-flight deltas race with the adds
    for (auto &p : producers)
        p.join();
    accumulate(); // final delta picks up the remainder

    const double expected = double(kThreads) * kPerThread;
    EXPECT_DOUBLE_EQ(countSum, expected);
    EXPECT_EQ(countEvents, std::uint64_t(expected));
    EXPECT_EQ(histEvents, std::uint64_t(expected));
    EXPECT_NEAR(timerSec, expected * 0.001, 1e-9 * expected);

    // The registry itself was never reset by the scrapes.
    const auto snap = metrics::snapshot();
    const auto *c = find(snap, "d.count");
    ASSERT_NE(c, nullptr);
    EXPECT_DOUBLE_EQ(c->value, expected);
}

TEST_F(ObservabilityTest, SnapshotDeltaPassesGaugesThrough)
{
    metrics::DeltaBaseline base;
    metrics::gaugeSet("d.gauge", 5.0);
    auto d1 = metrics::snapshotDelta(base);
    const auto *g1 = find(d1, "d.gauge");
    ASSERT_NE(g1, nullptr);
    EXPECT_DOUBLE_EQ(g1->value, 5.0);
    // Gauges are last-write-wins state, not accumulation: the second
    // delta reports the current value again, not zero.
    auto d2 = metrics::snapshotDelta(base);
    const auto *g2 = find(d2, "d.gauge");
    ASSERT_NE(g2, nullptr);
    EXPECT_DOUBLE_EQ(g2->value, 5.0);
}

// ---------------------------------------------------- Exemplars

TEST_F(ObservabilityTest, HistogramKeepsLargestValuedExemplar)
{
    metrics::histogramAddExemplar("e.hist", 5.0, 0.0, 10.0, 10, 101);
    metrics::histogramAddExemplar("e.hist", 9.0, 0.0, 10.0, 10, 202);
    metrics::histogramAddExemplar("e.hist", 3.0, 0.0, 10.0, 10, 303);
    const auto snap = metrics::snapshot();
    const auto *h = find(snap, "e.hist");
    ASSERT_NE(h, nullptr);
    // The worst outlier survives: that is the sample a p99
    // investigation wants to resolve to a trace span.
    EXPECT_EQ(h->exemplarId, std::uint64_t(202));
    EXPECT_DOUBLE_EQ(h->exemplarValue, 9.0);
    // Id 0 marks "no exemplar" and never displaces a real one.
    metrics::histogramAdd("e.hist", 9.9, 0.0, 10.0, 10);
    const auto snap2 = metrics::snapshot();
    const auto *h2 = find(snap2, "e.hist");
    ASSERT_NE(h2, nullptr);
    EXPECT_EQ(h2->exemplarId, std::uint64_t(202));
}

TEST_F(ObservabilityTest, SnapshotCarriesHistogramBucketPayload)
{
    for (int i = 0; i < 10; ++i)
        metrics::histogramAdd("b.hist", double(i), 0.0, 10.0, 10);
    const auto snap = metrics::snapshot();
    const auto *h = find(snap, "b.hist");
    ASSERT_NE(h, nullptr);
    ASSERT_NE(h->hist, nullptr);
    EXPECT_EQ(h->hist->count(), std::uint64_t(10));
    std::uint64_t inBuckets = 0;
    for (int b = 0; b < h->hist->buckets(); ++b)
        inBuckets += h->hist->bucketCount(b);
    EXPECT_EQ(inBuckets + h->hist->underflow() + h->hist->overflow(),
              std::uint64_t(10));
}

} // namespace
} // namespace winomc
