/**
 * @file
 * Event-driven wave pipeline of one layer phase on one (representative)
 * worker (Section VI: double buffering overlaps DMA, compute, and the
 * communication engines).
 *
 * A phase is split into `waves`; wave i runs scatter_i (communication
 * resource) -> compute_i (systolic/vector resource) -> gather_i
 * (communication resource). Scatter and gather share the tile-transfer
 * links; compute has its own resource. The returned makespan captures
 * the overlap (roughly max of the totals) plus the pipeline fill.
 */

#ifndef WINOMC_MEMNET_PIPELINE_HH
#define WINOMC_MEMNET_PIPELINE_HH

namespace winomc::memnet {

struct PhaseWork
{
    double scatterSec = 0.0;  ///< total inbound tile communication
    double computeSec = 0.0;  ///< total compute (already DRAM-overlapped)
    double gatherSec = 0.0;   ///< total outbound tile communication
    int waves = 16;           ///< pipeline depth
};

/** Busy-vs-wait split of the two pipeline resources over one phase. */
struct PipelineStats
{
    double makespanSec = 0.0;
    double commBusySec = 0.0; ///< engine serializing scatter + gather
    double compBusySec = 0.0; ///< systolic/vector occupied
    /** Cycles a ready resource sat waiting for the other one (pipeline
     *  fill + bubbles); busy + idle == makespan per resource. */
    double commIdleSec = 0.0;
    double compIdleSec = 0.0;
};

/** Makespan of the wave pipeline; fills `stats` when given. */
double pipelinedPhaseTime(const PhaseWork &work,
                          PipelineStats *stats = nullptr);

} // namespace winomc::memnet

#endif // WINOMC_MEMNET_PIPELINE_HH
