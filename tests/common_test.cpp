/**
 * @file
 * Tests for the common substrate: stats accumulators, histograms, table
 * formatting, RNG determinism, unit helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "common/env.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"

namespace winomc {
namespace {

// ------------------------------------------------- Env knob parsing
//
// One parser serves every positive-integer knob (WINOMC_THREADS,
// WINOMC_WORKSPACE_LIMIT_MB, WINOMC_SERVE_MAX_BATCH /
// WINOMC_SERVE_MAX_DELAY_US); the table pins the shared contract so
// the knob families cannot drift apart again.

struct KnobCase
{
    const char *input; ///< nullptr = unset
    long long want;    ///< parsePositiveInt result (0 = "use default")
};

TEST(EnvKnobs, SharedParserTable)
{
    const long long kMax = 4096;
    const KnobCase cases[] = {
        {nullptr, 0},                 // unset: silent fallback
        {"", 0},                      // empty: silent fallback
        {"8", 8},                     // plain value
        {"  8", 8},                   // leading blanks (strtoll)
        {"8 ", 8},                    // trailing blanks tolerated
        {"8\t\n", 8},                 // any trailing whitespace
        {"banana", 0},                // garbage: warn + fallback
        {"12banana", 0},              // trailing junk: warn + fallback
        {"1.5", 0},                   // fractions are junk too
        {"-3", 0},                    // negative: warn + fallback
        {"0", 0},                     // zero: warn + fallback
        {"4096", 4096},               // at the ceiling
        {"4097", kMax},               // above: warn + clamp
        {"99999999999999999999", kMax}, // ERANGE: warn + clamp
    };
    for (const auto &c : cases) {
        EXPECT_EQ(env::parsePositiveInt("test knob", c.input, kMax),
                  c.want)
            << "input '" << (c.input ? c.input : "(null)") << "'";
    }
}

TEST(EnvKnobs, EnvLookupAppliesFallback)
{
    unsetenv("WINOMC_TEST_KNOB");
    EXPECT_EQ(env::envPositiveInt("WINOMC_TEST_KNOB", 100, 7), 7);
    setenv("WINOMC_TEST_KNOB", "42", 1);
    EXPECT_EQ(env::envPositiveInt("WINOMC_TEST_KNOB", 100, 7), 42);
    setenv("WINOMC_TEST_KNOB", "nope", 1);
    EXPECT_EQ(env::envPositiveInt("WINOMC_TEST_KNOB", 100, 7), 7);
    setenv("WINOMC_TEST_KNOB", "500", 1);
    EXPECT_EQ(env::envPositiveInt("WINOMC_TEST_KNOB", 100, 7), 100);
    unsetenv("WINOMC_TEST_KNOB");
}

TEST(Accumulator, BasicMoments)
{
    Accumulator a;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        a.add(v);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);
    EXPECT_DOUBLE_EQ(a.minimum(), 1.0);
    EXPECT_DOUBLE_EQ(a.maximum(), 4.0);
    EXPECT_NEAR(a.stddev(), std::sqrt(1.25), 1e-12);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, MergeEqualsCombinedStream)
{
    Rng rng(11);
    Accumulator whole, left, right;
    for (int i = 0; i < 1000; ++i) {
        double v = rng.gaussian(3.0, 2.0);
        whole.add(v);
        (i % 2 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.stddev(), whole.stddev(), 1e-9);
    EXPECT_DOUBLE_EQ(left.maximum(), whole.maximum());
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.5);
    h.add(9.99);
    h.add(10.0);
    h.add(25.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.count(), 5u);
}

TEST(Histogram, PercentileMonotone)
{
    Histogram h(0.0, 100.0, 100);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        h.add(rng.uniform(0, 100));
    double p50 = h.percentile(0.5);
    double p90 = h.percentile(0.9);
    double p99 = h.percentile(0.99);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_NEAR(p50, 50.0, 5.0);
    EXPECT_NEAR(p90, 90.0, 5.0);
}

TEST(Histogram, EmptyPercentileIsNaN)
{
    Histogram h(0.0, 100.0, 10);
    // No sample means no value below which any fraction falls; the old
    // `lo` answer masqueraded as a real quantile in reports.
    EXPECT_TRUE(std::isnan(h.percentile(0.5)));
    EXPECT_TRUE(std::isnan(h.percentile(0.99)));
    h.add(7.0);
    EXPECT_FALSE(std::isnan(h.percentile(0.5)));
    h.reset();
    EXPECT_TRUE(std::isnan(h.percentile(0.5)));
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.uniformInt(-3, 7);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 7);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(9);
    Accumulator a;
    for (int i = 0; i < 20000; ++i)
        a.add(rng.gaussian(1.0, 2.0));
    EXPECT_NEAR(a.mean(), 1.0, 0.1);
    EXPECT_NEAR(a.stddev(), 2.0, 0.1);
}

TEST(Table, FormatsAlignedColumns)
{
    Table t("demo");
    t.header({"layer", "time"});
    t.row().cell("early").cell(1.5, 1);
    t.row().cell("late").cell(uint64_t(42));
    std::string s = t.toString();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("early"), std::string::npos);
    EXPECT_NE(s.find("1.5"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(nsToSec(5.0), 5e-9);
    EXPECT_DOUBLE_EQ(secToNs(1e-6), 1000.0);
    EXPECT_DOUBLE_EQ(GBps(320), 320e9);
    // Full-width link of Table III: 16 lanes x 15 Gbps = 30 GB/s.
    EXPECT_DOUBLE_EQ(laneBandwidth(16, 15.0), 30e9);
    // Narrow link: 8 lanes x 10 Gbps = 10 GB/s.
    EXPECT_DOUBLE_EQ(laneBandwidth(8, 10.0), 10e9);
}

TEST(Units, FormatHelpers)
{
    EXPECT_EQ(formatBytes(2048.0), "2.00 KiB");
    EXPECT_EQ(formatTime(0.00124), "1.240 ms");
}

} // namespace
} // namespace winomc
