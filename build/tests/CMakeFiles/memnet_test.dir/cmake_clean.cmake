file(REMOVE_RECURSE
  "CMakeFiles/memnet_test.dir/memnet_test.cpp.o"
  "CMakeFiles/memnet_test.dir/memnet_test.cpp.o.d"
  "memnet_test"
  "memnet_test.pdb"
  "memnet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
