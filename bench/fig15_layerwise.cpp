/**
 * @file
 * Figure 15: execution time and energy of forward (fprop) and backward
 * (bprop + updateGrad) passes of the five Table II layers under the
 * Table IV configurations on 256 NDP workers, normalized to w_dp's
 * forward pass - the paper's headline layer-wise result.
 */

#include <cmath>
#include <cstdio>

#include "common/metrics.hh"
#include "common/table.hh"
#include "mpt/layer_sim.hh"
#include "workloads/layers.hh"

using namespace winomc;
using namespace winomc::mpt;

int
main()
{
    std::printf("Figure 15: layer-wise execution time and energy, 256 "
                "NDP workers, batch 256\n\n");

    SystemParams sp;
    const Strategy all[] = {Strategy::DirectDP, Strategy::WinoDP,
                            Strategy::WinoMPT, Strategy::WinoMPTPredict,
                            Strategy::WinoMPTPredictDyn};

    double log_sum = 0.0;
    int n = 0;
    for (const auto &spec : workloads::tableTwoLayers()) {
        // Scope the exported metrics to this layer so winomc-report
        // can group them ("<layer>/mpt.<strategy>.*").
        metrics::RunScope scope(spec.name);

        LayerResult base = simulateLayer(spec, Strategy::WinoDP, sp);
        const double norm = base.fwd.seconds;

        Table t("layer " + spec.name + " (" + std::to_string(spec.inCh) +
                "->" + std::to_string(spec.outCh) + " @" +
                std::to_string(spec.h) + "^2); times normalized to "
                "w_dp fwd");
        t.header({"config", "shape", "fwd", "bwd", "total", "fwd us",
                  "bwd us", "energy J", "compute J", "dram J",
                  "link J"});
        Table bt("layer " + spec.name + " time breakdown (us; "
                 "exact-sum: compute + intra + inter + idle == total)");
        bt.header({"config", "compute", "intra-comm", "inter-comm",
                   "idle", "total", "link idle %"});
        for (Strategy s : all) {
            LayerResult r = simulateLayer(spec, s, sp);
            auto e = r.totalEnergy();
            t.row()
                .cell(strategyName(s))
                .cell(r.shape.toString())
                .cell(r.fwd.seconds / norm, 2)
                .cell(r.bwd.seconds / norm, 2)
                .cell(r.totalSeconds() / norm, 2)
                .cell(r.fwd.seconds * 1e6, 1)
                .cell(r.bwd.seconds * 1e6, 1)
                .cell(e.total(), 3)
                .cell(e.computeJ, 3)
                .cell(e.dramJ, 3)
                .cell(e.linkJ, 3);
            LayerBreakdown b = layerBreakdown(r);
            bt.row()
                .cell(strategyName(s))
                .cell(b.computeSec * 1e6, 1)
                .cell(b.intraCommSec * 1e6, 1)
                .cell(b.interCommSec * 1e6, 1)
                .cell(b.idleSec * 1e6, 1)
                .cell(b.totalSec * 1e6, 1)
                .cell(e.linkJ > 0.0 ? 100.0 * e.linkIdleJ / e.linkJ
                                    : 0.0, 1);
        }
        t.print();
        bt.print();

        double sp_up =
            base.totalSeconds() /
            simulateLayer(spec, Strategy::WinoMPTPredictDyn, sp)
                .totalSeconds();
        log_sum += std::log(sp_up);
        ++n;
        std::printf("w_mp++ speedup over w_dp: %.2fx\n\n", sp_up);
    }

    std::printf("geomean w_mp++ speedup over w_dp: %.2fx "
                "(paper: 2.74x on average; late layers dominate, early "
                "layers neutralized by dynamic clustering)\n",
                std::exp(log_sum / n));
    if (metrics::enabled() && !metrics::configuredPath().empty())
        std::printf("\nmetrics dump: %s (render with "
                    "tools/winomc-report)\n",
                    metrics::configuredPath().c_str());
    return 0;
}
