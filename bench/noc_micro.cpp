/**
 * @file
 * Network microbenchmarks validating the Table III link assumptions:
 * load-latency curves of the ring and flattened-butterfly topologies
 * from the flit-level simulator, a cross-check of the analytic
 * bottleneck model against the event-driven message simulator, and
 * google-benchmark timings of the simulator itself.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "common/metrics.hh"
#include "common/table.hh"
#include "memnet/link_model.hh"
#include "memnet/message_sim.hh"
#include "noc/network.hh"
#include "noc/traffic.hh"

using namespace winomc;
using namespace winomc::noc;

namespace {

void
loadLatencyTable()
{
    Table t("flit-level load-latency (64 B packets, uniform random)");
    t.header({"topology", "offered", "accepted", "avg latency (cyc)",
              "util max", "util mean", "stalls/node/cyc", "saturated"});
    for (double load : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        for (int which = 0; which < 2; ++which) {
            NocConfig cfg;
            cfg.flitBytes = which == 0 ? 30 : 10;
            // The occupancy distribution is part of the saturation
            // story; sampling costs nothing at this scale.
            cfg.sampleOccupancy = true;
            std::unique_ptr<Topology> topo;
            if (which == 0)
                topo = std::make_unique<RingTopology>(16);
            else
                topo = std::make_unique<FlatButterfly2D>(4);
            Network net(std::move(topo), cfg);
            Rng rng(77);
            LoadPoint pt = measureLoadPoint(
                net, uniformRandom(16), load, 64, 1500, 4000, rng);
            const char *name =
                which == 0 ? "ring-16 (full)" : "fbfly-4x4 (narrow)";
            t.row()
                .cell(name)
                .cell(pt.offered, 2)
                .cell(pt.accepted, 2)
                .cell(pt.avgLatency, 1)
                .cell(pt.maxLinkUtil, 2)
                .cell(pt.meanLinkUtil, 2)
                .cell(pt.creditStallRate + pt.holBlockRate, 3)
                .cell(pt.saturated ? "yes" : "no");
            if (metrics::enabled()) {
                char prefix[64];
                std::snprintf(prefix, sizeof(prefix),
                              "noc.%s.load%.1f",
                              which == 0 ? "ring16" : "fbfly4x4", load);
                net.exportMetrics(prefix);
            }
        }
    }
    t.print();
}

void
analyticVsMessageSim()
{
    Table t("all-to-all: analytic bottleneck vs event-driven message "
            "sim");
    t.header({"topology", "bytes/pair", "analytic us", "simulated us",
              "ratio"});
    for (double v : {64e3, 1e6, 8e6}) {
        {
            FlatButterfly2D a(4);
            double an = memnet::allToAllTime(a, v,
                                             memnet::LinkSpec::narrow());
            FlatButterfly2D b(4);
            double si = memnet::simulateAllToAll(
                b, memnet::LinkSpec::narrow(), v);
            t.row().cell("fbfly-4x4").cell(v, 0).cell(an * 1e6, 1)
                .cell(si * 1e6, 1).cell(si / an, 2);
        }
        {
            FullyConnected a(4);
            double an = memnet::allToAllTime(a, v,
                                             memnet::LinkSpec::full());
            FullyConnected b(4);
            double si = memnet::simulateAllToAll(
                b, memnet::LinkSpec::full(), v);
            t.row().cell("clique-4").cell(v, 0).cell(an * 1e6, 1)
                .cell(si * 1e6, 1).cell(si / an, 2);
        }
    }
    t.print();
}

void
BM_FlitSimRingStep(benchmark::State &state)
{
    NocConfig cfg;
    Network net(std::make_unique<RingTopology>(int(state.range(0))),
                cfg);
    Rng rng(3);
    auto pattern = uniformRandom(int(state.range(0)));
    for (auto _ : state) {
        for (int s = 0; s < net.topology().nodes(); ++s)
            if (rng.coin(0.2))
                net.offerPacket(s, pattern(s, rng), 64);
        net.step();
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            net.topology().nodes());
}
BENCHMARK(BM_FlitSimRingStep)->Arg(16)->Arg(64)->Arg(256);

void
BM_MessageSimAllToAll(benchmark::State &state)
{
    for (auto _ : state) {
        FlatButterfly2D topo(4);
        benchmark::DoNotOptimize(memnet::simulateAllToAll(
            topo, memnet::LinkSpec::narrow(), 1e6));
    }
}
BENCHMARK(BM_MessageSimAllToAll);

} // namespace

int
main(int argc, char **argv)
{
    std::printf("NoC microbenchmarks (Table III validation)\n\n");
    loadLatencyTable();
    analyticVsMessageSim();

    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
