/**
 * @file
 * Figure 7: per-worker communication volume per training iteration
 * summed over all FractalNet layers (batch 256), sweeping the worker
 * count: data parallelism, MPT at Ng = Nc = sqrt(p), MPT with
 * per-layer dynamic clustering, and dynamic clustering plus activation
 * prediction / zero skipping. (The paper's y-axis is log-scale; dynamic
 * clustering buys ~1.4x at p = 256.)
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/table.hh"
#include "mpt/comm_volume.hh"
#include "winograd/algo.hh"
#include "workloads/networks.hh"

using namespace winomc;
using namespace winomc::mpt;

namespace {

/** Smallest per-worker volume across the dynamic-clustering shapes. */
double
dynVolume(const ConvSpec &spec, int p, const PredictionParams *pred)
{
    const auto &algo2 = algoF2x2_3x3();
    double best =
        dataParallelCommVolume(spec.weightElems(), p).total();
    if (p % 4 == 0) {
        best = std::min(best,
                        mptCommVolume(spec, algo2,
                                      memnet::ClusterShape::groups4(p),
                                      pred).total());
    }
    if (p % 16 == 0) {
        best = std::min(best,
                        mptCommVolume(spec, algo2,
                                      memnet::ClusterShape::groups16(p),
                                      pred).total());
    }
    return best;
}

} // namespace

int
main()
{
    std::printf("Figure 7: FractalNet per-worker communication per "
                "iteration (all layers, batch 256)\n\n");
    auto net = workloads::fractalNet();
    const auto &algo = algoF2x2_3x3();
    PredictionParams pred;

    Table t("per-worker MiB per iteration");
    t.header({"p", "DP", "MPT sqrt(p)", "MPT+dyn", "MPT+dyn+pred",
              "dyn gain", "DP/MPT+d+p"});
    for (int p : {16, 64, 256, 1024}) {
        // Ng capped at the F(2x2,3x3) tile-element count (16).
        int side = std::min(16, int(std::lround(std::sqrt(double(p)))));
        double dp = 0, mp = 0, dyn = 0, dyn_pred = 0;
        for (const auto &spec : net.layers) {
            dp += dataParallelCommVolume(spec.weightElems(), p).total();
            mp += mptCommVolume(spec, algo,
                                memnet::ClusterShape{side, p / side},
                                nullptr).total();
            dyn += dynVolume(spec, p, nullptr);
            dyn_pred += dynVolume(spec, p, &pred);
        }
        t.row()
            .cell(int64_t(p))
            .cell(dp / kMiB, 2)
            .cell(mp / kMiB, 2)
            .cell(dyn / kMiB, 2)
            .cell(dyn_pred / kMiB, 2)
            .cell(mp / dyn, 2)
            .cell(dp / dyn_pred, 2);
    }
    t.print();
    std::printf("expected shape: DP flat; MPT decreasing in p and "
                "overtaking DP; dynamic clustering always <= both "
                "(paper: ~1.4x gain at p=256); prediction shaves the "
                "tile component further.\n");
    return 0;
}
