/**
 * @file
 * One-dimensional Winograd filtering for (r x 1) filters
 * (Section VII-B: "for the 3x1 weights, F(2,3) can be used with a tile
 * size of 4x1"). The transform is applied along the height axis only;
 * every column of the feature map is an independent 1D signal.
 */

#ifndef WINOMC_WINOGRAD_CONV1D_HH
#define WINOMC_WINOGRAD_CONV1D_HH

#include "tensor/tensor.hh"
#include "winograd/algo.hh"

namespace winomc {

/**
 * y = x (*) w, "same", with w of shape (J, I, r, 1), via F(m, r)
 * applied 1D (tiles of alpha x 1, stride m along the rows).
 */
Tensor winograd1dForward(const Tensor &x, const Tensor &w,
                         const WinogradAlgo &algo);

/** Reference direct 1D convolution with (J, I, r, 1) filters. */
Tensor directConv1dForward(const Tensor &x, const Tensor &w);

} // namespace winomc

#endif // WINOMC_WINOGRAD_CONV1D_HH
