/**
 * @file
 * Conservative activation prediction of spatial-domain neurons from
 * quantized Winograd-domain data (Section V, Fig 11).
 *
 * The destination worker inverse-transforms the *quantized* values to an
 * estimate of each neuron and, in parallel, propagates the quantization
 * resolutions through the same transform to a maximum possible positive
 * error. A neuron is predicted non-activated only when
 * estimate + max_error <= 0, so a predicted-dead neuron is guaranteed
 * dead (no false negatives, hence no accuracy loss).
 *
 * Two flows, matching Fig 11:
 *  - 2D predict (many groups): each worker owns individual tile
 *    elements; quantized raw elements are sent and the full 2D inverse
 *    transform (and two-stage +/- error propagation) happens at the
 *    destination.
 *  - 1D predict (few groups): each worker owns a full tile line, applies
 *    the first 1D inverse transform exactly (real values), and sends the
 *    quantized 1D-transformed line; only one transform stage accumulates
 *    quantization error, so prediction is tighter.
 */

#ifndef WINOMC_QUANT_PREDICT_HH
#define WINOMC_QUANT_PREDICT_HH

#include <cstdint>

#include "quant/quantizer.hh"
#include "winograd/algo.hh"
#include "winograd/tiling.hh"

namespace winomc::quant {

/** Prediction flow variant. */
enum class PredictMode { TwoD, OneD };

/** Outcome of predicting one output tile. */
struct TilePrediction
{
    bool tileDeadActual = false;
    bool tileDeadPredicted = false;
    /** Dead output lines (the 1D-predict skip unit): out of algo.m. */
    int linesDeadActual = 0;
    int linesDeadPredicted = 0;
    bool overflow = false; ///< some input overflowed; nothing skipped
    /** A neuron was predicted dead while actually alive (must never
     *  happen - prediction would lose accuracy). */
    bool falseNegative = false;
};

/** Aggregate statistics over many tiles (feeds Fig 12). */
struct PredictStats
{
    uint64_t tiles = 0;
    uint64_t tilesDeadActual = 0;
    uint64_t tilesDeadPredicted = 0;
    uint64_t lines = 0;
    uint64_t linesDeadActual = 0;
    uint64_t linesDeadPredicted = 0;
    uint64_t overflowTiles = 0;
    /** Predicted dead but actually alive; must stay zero. */
    uint64_t falseNegatives = 0;

    double tileDeadActualRatio() const;
    double tileDeadPredictedRatio() const;
    double lineDeadActualRatio() const;
    double lineDeadPredictedRatio() const;

    void merge(const PredictStats &o);
};

class ActivationPredictor
{
  public:
    ActivationPredictor(const WinogradAlgo &algo,
                        NonUniformQuantizer quantizer, PredictMode mode);

    /**
     * Predict one output tile from its exact pre-activation
     * Winograd-domain values Y (alpha x alpha, row-major). Quantization
     * of what the wire would carry happens inside.
     */
    TilePrediction predictTile(const float *Y) const;

    /** Run over every (channel, batch, tile) of a WinoTiles tensor. */
    PredictStats run(const WinoTiles &Y) const;

    PredictMode mode() const { return predictMode; }
    const NonUniformQuantizer &quantizer() const { return qz; }

    /**
     * Sigma the quantizer should be built with: standard deviation of
     * the values actually transmitted (raw elements for 2D predict,
     * 1D-transformed values for 1D predict).
     */
    static double wireSigma(const WinoTiles &Y, const WinogradAlgo &algo,
                            PredictMode mode);

  private:
    WinogradAlgo algo; ///< by value: predictor owns its matrices
    NonUniformQuantizer qz;
    PredictMode predictMode;
};

} // namespace winomc::quant

#endif // WINOMC_QUANT_PREDICT_HH
