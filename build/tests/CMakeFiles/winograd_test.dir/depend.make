# Empty dependencies file for winograd_test.
# This may be replaced when dependencies are built.
