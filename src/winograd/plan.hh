/**
 * @file
 * Shape-bound Winograd execution plans.
 *
 * A WinoPlan binds one (algorithm, batch, in_ch -> out_ch, H, W)
 * configuration, precomputes the tile grid, and owns every
 * Winograd-domain slab the pipeline needs (input tiles, output tiles,
 * grad-output tiles, grad-input tiles). All stage execution goes through
 * the destination-passing kernels of winograd/conv.hh, so once a plan is
 * built, repeated training steps over the same shape perform zero heap
 * allocations in the Winograd path — the plan is the host-side analogue
 * of the paper's statically scheduled SRAM working set.
 *
 * Lifecycle: layers build a plan lazily on the first forward and rebuild
 * only when the incoming shape stops matching (matches()). The plan
 * budget is validated against WINOMC_WORKSPACE_LIMIT_MB at construction,
 * failing loudly instead of OOM-ing later.
 *
 * Thread-safety contract: a plan parallelizes *internally* (each stage
 * fans out across the common/parallel.hh pool) but is not reentrant —
 * concurrent calls into one plan race on its slabs. One plan per layer
 * (or per cluster in MPT) is the intended usage; results are bitwise
 * identical for any thread count.
 */

#ifndef WINOMC_WINOGRAD_PLAN_HH
#define WINOMC_WINOGRAD_PLAN_HH

#include <memory>
#include <mutex>
#include <vector>

#include "common/logging.hh"
#include "tensor/tensor.hh"
#include "winograd/algo.hh"
#include "winograd/conv_spec.hh"
#include "winograd/lowprec.hh"
#include "winograd/tiling.hh"

namespace winomc {

/**
 * WINOMC_FUSED knob: picks between the staged pipeline (full slabs
 * between stages) and the fused tile-strip pipeline (§4.11).
 *
 *  - Off:  always staged.
 *  - Auto: fused when the plan's shape qualifies (slabs overflow cache
 *          and no caller needs the tile caches), staged otherwise.
 *  - On:   fused wherever a fused path exists, regardless of size —
 *          including train-mode layer forwards, whose backward then
 *          rebuilds the input tiles from the cached activations.
 */
enum class FusedMode : int { Off = 0, Auto = 1, On = 2 };

/**
 * Parse a WINOMC_FUSED-style string ("auto" | "on" | "off", trimmed,
 * case-insensitive). Unknown input warns and yields Auto; never
 * throws, never exits (same discipline as parseIsa).
 */
FusedMode parseFusedMode(const char *str);

/**
 * The process-wide requested mode: the last setFusedMode() value, or
 * WINOMC_FUSED parsed once on first use when no override was set.
 */
FusedMode requestedFusedMode();

/** Programmatic override (tests/benchmarks); sets the mode exactly —
 *  setFusedMode(FusedMode::Auto) selects Auto, it does NOT re-read the
 *  environment. */
void setFusedMode(FusedMode m);

/** Human-readable name ("off", "auto", "on"). */
const char *fusedModeName(FusedMode m);

class WinoPlan
{
  public:
    WinoPlan(const WinogradAlgo &algo, int batch, int inCh, int outCh,
             int h, int w);

    /**
     * Does this plan cover the given execution configuration? Also
     * false when the process-wide ExecPolicy (WINOMC_PREC /
     * WINOMC_SPARSE) changed since construction: a plan executes
     * forwards under the policy it captured, so plan pools must
     * rebuild — never alias — across policy flips.
     */
    bool matches(const WinogradAlgo &algo, int batch, int inCh,
                 int outCh, int h, int w) const;

    /** The (precision, sparsity) policy captured at construction. */
    const ExecPolicy &policy() const { return pol; }

    const TileGrid &tileGrid() const { return grid; }
    int batch() const { return nb; }
    int inChannels() const { return ni; }
    int outChannels() const { return nj; }
    int height() const { return fh; }
    int width() const { return fw; }

    /** Total bytes of the plan-owned slabs (the planned working set). */
    std::size_t workspaceBytes() const;

    // -----------------------------------------------------------------
    // One-shot pipelines (the free winograd* wrappers route through
    // transient plans built on these). Each fully rewrites the slabs it
    // touches; forwardInto leaves inputTiles()/outputTiles() caching the
    // transformed activations of x.
    // -----------------------------------------------------------------

    /**
     * y = winograd_conv(x, W); caches X and Y tiles in the plan.
     * Executes under policy(): a sparse fp32 policy routes through the
     * zero-skipping kernels (bitwise identical output, Xt still
     * cached); a half policy stores the transformed activations in 16
     * bits — the fp32 Xt slab is then NOT populated (inputCached()
     * stays false) and callers needing input tiles must scatterInput.
     */
    void forwardInto(const Tensor &x, const WinoWeights &W, Tensor &y);
    /** dx from dy through the pipeline adjoint (no cached state used). */
    void backwardDataInto(const Tensor &dy, const WinoWeights &W,
                          Tensor &dx);
    /** dW (assigned, not accumulated) from x and dy. */
    void gradWeightsInto(const Tensor &x, const Tensor &dy,
                         WinoWeights &dW);

    // -----------------------------------------------------------------
    // Fused tile-strip pipeline (§4.11): transform -> per-(K,C) panel
    // accumulation -> inverse transform run per L2-sized strip of the
    // tile grid, touching only per-worker strip scratch — the full
    // Xt/Yt/dYt/dXt slabs are bypassed entirely. Bitwise identical to
    // the staged pipeline at every ISA level and for any thread count.
    // Leaves the plan's tile caches invalid (there are no slab tiles to
    // cache); callers needing inputTiles()/outputTiles() must use the
    // staged path.
    // -----------------------------------------------------------------

    /** Does a fused path exist for this plan's configuration? */
    bool fusedSupported() const;

    /**
     * Resolve the WINOMC_FUSED knob for this plan. Pass
     * preserveTileCaches = true when the caller will later read the
     * plan's tile caches (e.g. a train-mode layer forward): Auto then
     * refuses to fuse; only an explicit WINOMC_FUSED=on overrides it.
     */
    bool shouldFuse(bool preserveTileCaches) const;

    /** y = winograd_conv(x, W) per cache-resident tile strip. */
    void forwardFusedInto(const Tensor &x, const WinoWeights &W,
                          Tensor &y);

    /**
     * dx from dy per tile strip. Re-gathers dy per strip (an m x m
     * gather per tile — cheaper than streaming the a^2-wide dYt slab),
     * so no cached state is used or produced. Strips of one image run
     * serially in ascending order (overlap-add order is part of the
     * bitwise contract); the batch axis is the parallel unit.
     */
    void backwardDataFusedInto(const Tensor &dy, const WinoWeights &W,
                               Tensor &dx);

    /** Tiles per strip (multiple of mk::kTilePanel). */
    int stripTiles() const { return stripT; }
    /** Strips per image: ceil(tiles / stripTiles()). */
    int stripCount() const
    {
        return (grid.tiles() + stripT - 1) / stripT;
    }

    // -----------------------------------------------------------------
    // Staged training-step API: forwardInto caches the input tiles;
    // transformGradOutput computes the grad-output tiles once, and both
    // gradient products then reuse them without re-transforming.
    // -----------------------------------------------------------------

    /** dYt = A dy A^T per tile; prerequisite of the FromCached calls. */
    void transformGradOutput(const Tensor &dy);
    /** dW (assigned) from the cached X tiles and grad-output tiles. */
    void gradWeightsFromCachedInto(WinoWeights &dW);
    /** dx from the grad-output tiles through W^T and the input adjoint. */
    void backwardDataFromCachedInto(const WinoWeights &W, Tensor &dx);

    // -----------------------------------------------------------------
    // Partial-execution access (mpt::MptConvLayer): scatter/gather move
    // between the spatial and Winograd domains; the partial element-wise
    // kernels of mpt/functional.hh then accumulate directly into the
    // plan-owned slabs. Callers zero outputTilesMutable() /
    // gradInputTilesMutable() before a fresh accumulation pass — a
    // zeroed reused slab is bitwise identical to a fresh one.
    // -----------------------------------------------------------------

    /** Xt = B^T x B per tile (marks the input cache valid). */
    void scatterInput(const Tensor &x);
    /** y = inverse transform of the (accumulated) output tiles. */
    void gatherOutputInto(Tensor &y);
    /** dYt = A dy A^T per tile (same as transformGradOutput). */
    void scatterGradOutput(const Tensor &dy) { transformGradOutput(dy); }
    /** dx = overlap-add adjoint of the (accumulated) grad-input tiles. */
    void gatherGradInputInto(Tensor &dx);

    const WinoTiles &inputTiles() const;
    const WinoTiles &outputTiles() const;
    const WinoTiles &gradOutputTiles() const;
    WinoTiles &outputTilesMutable() { return Yt; }
    WinoTiles &gradInputTilesMutable() { return dXt; }

    /** Is the input-tile cache populated (by forwardInto/scatterInput)? */
    bool inputCached() const { return haveInput; }
    /** Drop cache-validity (e.g. after an inference-only forward). */
    void invalidateCache() { haveInput = haveOutput = haveGrad = false; }

  private:
    /**
     * Per-worker strip scratch: one input-side and one output-side
     * tile set of stripT tiles, batch dimension 1. Slots are created
     * lazily (first fused call at a given concurrency warms the pool)
     * and kept for the plan's lifetime, so fused steady state
     * allocates nothing.
     */
    struct StripScratch
    {
        WinoTiles in;  ///< [a²][I][1][stripT]
        WinoTiles out; ///< [a²][J][1][stripT]
        HalfTiles inHalf; ///< 16-bit in-side (half policies only)
        ActMask mask;     ///< strip-local zero mask (sparse policies)
    };

    StripScratch *acquireStripSlot();
    void releaseStripSlot(StripScratch *s);
    void ensureStripSlots(int n);

    /** Publish wino.<mode>.<phase> traffic counters + predicted gauge
     *  (no-op when metrics are disabled). Args are bytes, so streams
     *  of different element widths (fp32 vs 16-bit tiles) add up
     *  honestly. */
    void publishTraffic(const char *mode, const char *phase,
                        double xformBytes, double ewBytes,
                        double invBytes, double predictedBytes) const;

    const WinogradAlgo &alg;
    int nb, ni, nj, fh, fw;
    TileGrid grid;
    ExecPolicy pol; ///< precision/sparsity captured at construction

    WinoTiles Xt;  ///< transformed input activations [a²][I][N][T]
    WinoTiles Yt;  ///< pre-inverse output tiles       [a²][J][N][T]
    WinoTiles dYt; ///< transformed output gradients   [a²][J][N][T]
    WinoTiles dXt; ///< Winograd-domain input grads    [a²][I][N][T]
    HalfTiles Xh;  ///< 16-bit input tiles (half policies only)
    ActMask actMask; ///< activation zero mask (sparse policies only)

    bool haveInput = false;  ///< Xt holds the last forward's input
    bool haveOutput = false; ///< Yt holds the last forward's output
    bool haveGrad = false;   ///< dYt holds the last backward's grads

    int stripT = 0; ///< tiles per fused strip (multiple of kTilePanel)
    /** Exact in-bounds input-gather elements per (image, channel)
     *  plane: sum over tiles of the a x a window's overlap with the
     *  plane. Used by the measured-traffic counters. */
    std::size_t gatherElemsA = 0;

    std::vector<std::unique_ptr<StripScratch>> stripSlots;
    std::vector<StripScratch *> stripFree; ///< guarded by stripMu
    std::mutex stripMu;
};

/**
 * Where a layer's plans come from.
 *
 * Plans are exclusive while leased (a WinoPlan is not reentrant), so
 * the interface moves ownership both ways: acquirePlan() hands the
 * caller a plan matching the configuration — a cached one when the
 * source holds a match, a freshly built one otherwise — and
 * releasePlan() parks a displaced plan for future reuse instead of
 * destroying it. A re-issued plan always comes back with its tile
 * caches invalidated (they describe activations of an earlier lease).
 *
 * Every nn::ConvLayer owns a small PlanLru by default; a serving
 * engine can re-point layers at a shared, thread-safe source
 * (serve::PlanCache) so concurrent model instances draw from one pool.
 */
class PlanSource
{
  public:
    virtual ~PlanSource() = default;

    /** Lease a plan covering the configuration (cached or new). */
    virtual std::unique_ptr<WinoPlan>
    acquirePlan(const WinogradAlgo &algo, int batch, int inCh,
                int outCh, int h, int w) = 0;

    /**
     * Descriptor route of the same lease: a WinoPlan binds the
     * unit-stride "same" geometry, so the spec must satisfy
     * samePadded(). This is the spelling layers and the serving engine
     * use, so the descriptor — not loose ints — carries the cache key.
     */
    std::unique_ptr<WinoPlan>
    acquirePlan(const ConvSpec &spec, const WinogradAlgo &algo)
    {
        winomc_assert(spec.samePadded(),
                      "WinoPlan lease needs a stride-1 same-padded "
                      "spec; got ", spec.key());
        return acquirePlan(algo, spec.batch, spec.inCh, spec.outCh,
                           spec.h, spec.w);
    }

    /** Park a displaced plan for reuse. null is accepted and ignored,
     *  so callers can unconditionally hand back `std::move(slot)`. */
    virtual void releasePlan(std::unique_ptr<WinoPlan> plan) = 0;
};

/**
 * Small MRU-ordered plan pool — the default PlanSource of every
 * Winograd layer, and the fix for shape-churn allocation thrash:
 * alternating batch shapes (A/B/A/B serving traffic) used to rebuild
 * the layer plan on every flip, bouncing multi-MB slab sets off the
 * workspace pool; parking displaced plans here makes any rotation
 * over up to `capacity` shapes allocation-free after one warm-up of
 * each shape. Not thread-safe (per-layer, like the layer itself);
 * eviction destroys the least-recently-used plan, returning its slabs
 * to the workspace pool.
 */
class PlanLru : public PlanSource
{
  public:
    static constexpr int kDefaultCapacity = 4;

    explicit PlanLru(int capacity = kDefaultCapacity);

    std::unique_ptr<WinoPlan> acquirePlan(const WinogradAlgo &algo,
                                          int batch, int inCh, int outCh,
                                          int h, int w) override;
    void releasePlan(std::unique_ptr<WinoPlan> plan) override;

    /** Parked plans (excludes any currently leased). */
    int size() const { return int(pool.size()); }
    int capacity() const { return cap; }
    /** Destroy every parked plan (slabs return to the workspace). */
    void clear() { pool.clear(); }

  private:
    int cap;
    std::vector<std::unique_ptr<WinoPlan>> pool; ///< MRU first
};

// ---------------------------------------------------------------------
// DWM-style decomposition (DESIGN.md §4.14): a convolution with kernel
// taps beyond 3 and/or stride beyond 1 is rewritten as a SUM of small
// 3x3 stride-1 "same" convolutions over gathered input views — each
// term runs through the ordinary F(m,3) staged/fused strip pipelines,
// so every geometry the terms cover inherits the fast path (and its
// bitwise thread-invariance) instead of falling back to direct.
// ---------------------------------------------------------------------

/**
 * One decomposition term. Per dimension, tap index a of the original
 * kernel maps to phase ph = a % stride and position p = a / stride;
 * positions are chunked in threes (chunk c covers p in [3c, 3c+3)),
 * and each (ph, c) pair becomes a 3-tap unit kernel
 *   k_u[j] = w[stride * (3c + j) + ph]   (zero where out of range)
 * convolved over the strided input view
 *   x_u[i] = x_zeroext[stride * i + off],  off = stride*(3c+1) + ph - pad.
 * The 2D term is the product of one row and one column unit.
 */
struct DecompTerm
{
    int phR, chunkR; ///< row phase / chunk
    int phC, chunkC; ///< column phase / chunk
    int offR, offC;  ///< input-view offsets (may be negative)
};

/** The term list of a spec (row-major over (row unit, col unit)). */
std::vector<DecompTerm> decomposeSpec(const ConvSpec &spec);

/**
 * Can this geometry run decomposed? Requires positive output size,
 * kernels up to 11 taps and strides up to 3 per dimension (beyond that
 * the term count outgrows any benefit over direct).
 */
bool decompSupported(const ConvSpec &spec);

/**
 * Shape-bound decomposed execution plan.
 *
 * Owns one inner WinoPlan shared by every term — all terms convolve
 * the same (batch, inCh -> outCh, outH+2, outW+2) gathered view, where
 * the +2 border absorbs the inner pipeline's "same" zero padding (the
 * shifted views carry real data where the inner padding would
 * otherwise clip it; the border rows of each term's output are
 * inner-padding artifacts and are cropped by the accumulation). Terms
 * execute serially in term-list order and accumulate row-by-row with
 * the fixed-chain axpy kernel, so results are bitwise identical for
 * any thread count and for staged vs fused inner execution.
 *
 * Steady state allocates nothing: the gather/accumulate tensors, the
 * per-term transformed weights, and the inner plan slabs all persist
 * for the plan's lifetime. Like WinoPlan, not reentrant.
 */
class WinoDecompPlan
{
  public:
    /** @param unit the F(m,3) algorithm every term executes with */
    WinoDecompPlan(const ConvSpec &spec, const WinogradAlgo &unit);

    /** Does this plan cover the given spec (name ignored) and unit? */
    bool matches(const ConvSpec &spec, const WinogradAlgo &unit) const;

    int terms() const { return int(units.size()); }
    const WinogradAlgo &unitAlgo() const { return alg; }
    const ConvSpec &spec() const { return sp; }
    const WinoPlan &innerPlan() const { return *inner; }

    /** Plan-owned bytes: inner plan slabs + gather/accumulate maps +
     *  per-term Winograd weights. */
    std::size_t workspaceBytes() const;

    /** Split spatial weights (J, I, kh, kw) into per-term transformed
     *  unit weights. Call once, and again whenever weights change. */
    void setWeights(const Tensor &w);

    /** y = conv(x) as the ordered sum of the decomposition terms. */
    void forwardInto(const Tensor &x, Tensor &y);

  private:
    ConvSpec sp;
    const WinogradAlgo &alg;
    std::vector<DecompTerm> units;
    std::vector<WinoWeights> unitW; ///< one transformed set per term
    Tensor kerScratch; ///< (J, I, 3, 3) spatial unit-kernel staging
    Tensor xGather;    ///< (B, I, outH+2, outW+2) strided view
    Tensor yTerm;      ///< (B, J, outH+2, outW+2) term output
    std::unique_ptr<WinoPlan> inner;
    bool haveWeights = false;
};

} // namespace winomc

#endif // WINOMC_WINOGRAD_PLAN_HH
