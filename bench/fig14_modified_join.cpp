/**
 * @file
 * Figure 14: validation accuracy of the standard FractalNet join
 * (ReLU inside each branch, then mean) versus the paper's modified join
 * (mean of pre-activations, then one ReLU), which is linear and can run
 * in the Winograd domain, saving one tile gather per join.
 *
 * The paper trains FractalNet on CIFAR-10 for 250 epochs; offline we
 * train a 2-column fractal network on the procedural shape dataset
 * (DESIGN.md substitution table) - the claim being reproduced is that
 * the two joins reach the same validation accuracy.
 */

#include <cstdio>
#include <memory>

#include "common/table.hh"
#include "nn/basic_layers.hh"
#include "nn/join.hh"
#include "nn/trainer.hh"
#include "winograd/algo.hh"

using namespace winomc;
using namespace winomc::nn;

namespace {

std::unique_ptr<Sequential>
buildFractalNet(JoinMode join, Rng &rng)
{
    const auto &algo = algoF2x2_3x3();
    auto net = std::make_unique<Sequential>();
    net->add(makeFractalPair(1, 8, 3, join, ConvMode::WinogradLayer,
                             algo, rng));
    net->add(std::make_unique<MaxPool2>());
    net->add(makeFractalPair(8, 12, 3, join, ConvMode::WinogradLayer,
                             algo, rng));
    net->add(std::make_unique<MaxPool2>());
    net->add(std::make_unique<Dense>(12 * 4 * 4, 4, rng));
    return net;
}

} // namespace

int
main()
{
    std::printf("Figure 14: standard vs modified (Winograd-domain-able) "
                "join\n\n");

    Rng data_rng(11);
    Dataset train_set = makeShapeDataset(384, 16, 4, data_rng);
    Dataset val_set = makeShapeDataset(128, 16, 4, data_rng);

    TrainConfig cfg;
    cfg.epochs = 8;
    cfg.batchSize = 16;
    cfg.lr = 0.06f;

    Table t("validation accuracy per epoch (chance = 0.25)");
    t.header({"epoch", "standard join", "modified join"});

    Rng rng_a(42), rng_b(42), t_a(5), t_b(5);
    auto std_net = buildFractalNet(JoinMode::Standard, rng_a);
    auto mod_net = buildFractalNet(JoinMode::Modified, rng_b);
    auto std_hist = train(*std_net, train_set, val_set, cfg, t_a);
    auto mod_hist = train(*mod_net, train_set, val_set, cfg, t_b);

    for (size_t e = 0; e < std_hist.size(); ++e) {
        t.row()
            .cell(int64_t(e + 1))
            .cell(std_hist[e].valAcc, 3)
            .cell(mod_hist[e].valAcc, 3);
    }
    t.print();

    double gap = std_hist.back().valAcc - mod_hist.back().valAcc;
    std::printf("final gap: %+.3f (paper: indistinguishable; the join "
                "mean is linear, so moving the ReLU after it changes "
                "the function class only marginally)\n",
                gap);
    return 0;
}
