/**
 * @file
 * Zero-skipping of input-tile scattering (Section V-B).
 *
 * Post-ReLU feature maps are sparse; after the (partial) input transform
 * many transferred values are exactly zero and can be omitted from the
 * scatter, with the receiving worker re-inserting zeros from the shared
 * activation map. This module measures the skippable fraction for the
 * two transfer representations:
 *
 *  - 2D (many groups): fully transformed tile elements B^T x B;
 *  - 1D (few groups):  one-sided 1D transform B^T x, computed at the
 *    source before the transfer (Section IV).
 */

#ifndef WINOMC_QUANT_ZERO_SKIP_HH
#define WINOMC_QUANT_ZERO_SKIP_HH

#include <cstdint>

#include "quant/predict.hh"
#include "tensor/tensor.hh"
#include "winograd/algo.hh"

namespace winomc::quant {

struct ZeroSkipStats
{
    uint64_t elems = 0;
    uint64_t zeros = 0;

    double ratio() const { return elems ? double(zeros) / elems : 0.0; }

    void
    merge(const ZeroSkipStats &o)
    {
        elems += o.elems;
        zeros += o.zeros;
    }
};

/**
 * Count skippable (exactly zero) values in the scatter representation of
 * input feature maps x under the given predict/transfer mode.
 */
ZeroSkipStats zeroSkipScatter(const Tensor &x, const WinogradAlgo &algo,
                              PredictMode mode);

} // namespace winomc::quant

#endif // WINOMC_QUANT_ZERO_SKIP_HH
