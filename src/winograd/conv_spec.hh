/**
 * @file
 * Shape descriptor of one "same" convolution layer (stride 1, square
 * feature maps and filters), the unit of evaluation throughout the paper.
 */

#ifndef WINOMC_WINOGRAD_CONV_SPEC_HH
#define WINOMC_WINOGRAD_CONV_SPEC_HH

#include <cstdint>
#include <string>

namespace winomc {

/** One convolution layer: batch x in_ch x h x w (*) out_ch x in_ch x r x r. */
struct ConvSpec
{
    std::string name;
    int batch;   ///< B
    int inCh;    ///< I
    int outCh;   ///< J
    int h;       ///< feature map height (== width of output, "same")
    int w;       ///< feature map width
    int r;       ///< filter edge (odd)

    /** Spatial-domain weight element count |w| = I*J*r*r. */
    uint64_t weightElems() const { return uint64_t(inCh) * outCh * r * r; }
    /** Input feature-map element count B*I*H*W. */
    uint64_t
    inputElems() const
    {
        return uint64_t(batch) * inCh * h * w;
    }
    /** Output feature-map element count B*J*H*W. */
    uint64_t
    outputElems() const
    {
        return uint64_t(batch) * outCh * h * w;
    }
};

} // namespace winomc

#endif // WINOMC_WINOGRAD_CONV_SPEC_HH
