file(REMOVE_RECURSE
  "libwinomc_tensor.a"
)
