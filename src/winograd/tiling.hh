/**
 * @file
 * Tiling geometry for Winograd convolution and the Winograd-domain tile
 * container.
 *
 * An H x W feature map convolved "same" (stride 1, pad (r-1)/2) with an
 * F(m,r) algorithm decomposes into ceil(H/m) x ceil(W/m) overlapping
 * input tiles of alpha x alpha (stride m), each producing an m x m patch
 * of the output.
 */

#ifndef WINOMC_WINOGRAD_TILING_HH
#define WINOMC_WINOGRAD_TILING_HH

#include <vector>

#include "common/logging.hh"
#include "tensor/workspace.hh"
#include "winograd/algo.hh"

namespace winomc {

/** Tile grid geometry for one feature-map plane. */
struct TileGrid
{
    int h, w;        ///< spatial feature-map size (output == input, "same")
    int m;           ///< outputs per tile edge
    int alpha;       ///< input tile edge
    int pad;         ///< zero padding on each border, (r-1)/2
    int tilesH;      ///< ceil(h / m)
    int tilesW;      ///< ceil(w / m)

    TileGrid(int h, int w, const WinogradAlgo &algo);

    int tiles() const { return tilesH * tilesW; }
    /** Top-left input coordinate (may be negative: padding) of a tile. */
    int tileRow(int th) const { return th * m - pad; }
    int tileCol(int tw) const { return tw * m - pad; }
};

/**
 * Winograd-domain tiles for a batch of feature maps.
 *
 * Layout: [uv][channel][batch][tile] with uv = u * alpha + v, so that the
 * element-wise dot product of Equation (2) is, per uv, a dense
 * (channels) x (batch * tiles) matrix. This mirrors the paper's Figure 3:
 * T^2 independent matrix multiplications.
 */
class WinoTiles
{
  public:
    WinoTiles() = default;
    WinoTiles(int alpha, int channels, int batch, int tiles);

    ~WinoTiles() { ws::release(std::move(data)); }
    WinoTiles(const WinoTiles &o);
    WinoTiles &operator=(const WinoTiles &o);
    WinoTiles(WinoTiles &&o) noexcept;
    WinoTiles &operator=(WinoTiles &&o) noexcept;

    /** Rebind shape, reusing the slab when capacity allows. Contents
     *  are zeroed iff the shape changed. */
    void reshape(int alpha, int channels, int batch, int tiles);

    int alphaEdge() const { return alpha; }
    int uvCount() const { return alpha * alpha; }
    int channels() const { return nch; }
    int batch() const { return nb; }
    int tiles() const { return nt; }
    size_t size() const { return data.size(); }

    float &
    at(int uv, int c, int b, int t)
    {
        return data[index(uv, c, b, t)];
    }
    float
    at(int uv, int c, int b, int t) const
    {
        return data[index(uv, c, b, t)];
    }

    /** Contiguous (batch * tiles) row for a given (uv, channel). */
    float *
    row(int uv, int c)
    {
        return data.data() + index(uv, c, 0, 0);
    }
    const float *
    row(int uv, int c) const
    {
        return data.data() + index(uv, c, 0, 0);
    }

    void fill(float v) { std::fill(data.begin(), data.end(), v); }

    /**
     * Pointer to element (uv=0, c, b, t); element (uv, c, b, t) lives
     * uv * uvStride() floats further on. The micro-kernel transforms
     * walk all uv entries of a panel of consecutive tiles through this
     * base + stride pair.
     */
    float *
    uvBase(int c, int b, int t)
    {
        return data.data() + index(0, c, b, t);
    }
    const float *
    uvBase(int c, int b, int t) const
    {
        return data.data() + index(0, c, b, t);
    }
    size_t uvStride() const { return (size_t(nch) * nb) * nt; }

  private:
    size_t
    index(int uv, int c, int b, int t) const
    {
        winomc_assert(uv >= 0 && uv < alpha * alpha && c >= 0 && c < nch &&
                      b >= 0 && b < nb && t >= 0 && t < nt,
                      "WinoTiles index out of range");
        return ((size_t(uv) * nch + c) * nb + b) * nt + t;
    }

    int alpha = 0;
    int nch = 0;
    int nb = 0;
    int nt = 0;
    std::vector<float> data;
};

/**
 * Winograd-domain weights: [uv][out_ch][in_ch]. The per-uv slice is the
 * (J x I) matrix of Equation (2).
 */
class WinoWeights
{
  public:
    WinoWeights() = default;
    WinoWeights(int alpha, int out_ch, int in_ch);

    ~WinoWeights() { ws::release(std::move(data)); }
    WinoWeights(const WinoWeights &o);
    WinoWeights &operator=(const WinoWeights &o);
    WinoWeights(WinoWeights &&o) noexcept;
    WinoWeights &operator=(WinoWeights &&o) noexcept;

    /** Rebind shape, reusing the slab when capacity allows. Contents
     *  are zeroed iff the shape changed. */
    void reshape(int alpha, int out_ch, int in_ch);

    int alphaEdge() const { return alpha; }
    int uvCount() const { return alpha * alpha; }
    int outChannels() const { return nj; }
    int inChannels() const { return ni; }
    size_t size() const { return data.size(); }

    float &at(int uv, int j, int i) { return data[index(uv, j, i)]; }
    float at(int uv, int j, int i) const { return data[index(uv, j, i)]; }

    void fill(float v) { std::fill(data.begin(), data.end(), v); }

    /** Flat backing store (for whole-buffer updates like SGD axpy). */
    float *raw() { return data.data(); }
    const float *raw() const { return data.data(); }

    WinoWeights &operator+=(const WinoWeights &o);
    WinoWeights &operator*=(float s);
    float maxAbsDiff(const WinoWeights &o) const;

  private:
    size_t
    index(int uv, int j, int i) const
    {
        winomc_assert(uv >= 0 && uv < alpha * alpha && j >= 0 && j < nj &&
                      i >= 0 && i < ni, "WinoWeights index out of range");
        return (size_t(uv) * nj + j) * ni + i;
    }

    int alpha = 0;
    int nj = 0;
    int ni = 0;
    std::vector<float> data;
};

/**
 * Element-wise mean of Winograd-domain tile sets: the *modified join*
 * of Section VII-A executed in the Winograd domain. Because the mean is
 * linear it commutes with the inverse transform, so joining here saves
 * one tile gather per joined branch (the tests prove the equality).
 */
WinoTiles tileMean(const std::vector<const WinoTiles *> &inputs);

} // namespace winomc

#endif // WINOMC_WINOGRAD_TILING_HH
