# Empty compiler generated dependencies file for winomc_memnet.
# This may be replaced when dependencies are built.
