file(REMOVE_RECURSE
  "CMakeFiles/fig12_activation_prediction.dir/fig12_activation_prediction.cpp.o"
  "CMakeFiles/fig12_activation_prediction.dir/fig12_activation_prediction.cpp.o.d"
  "fig12_activation_prediction"
  "fig12_activation_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_activation_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
