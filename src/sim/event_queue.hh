/**
 * @file
 * Discrete-event simulation kernel.
 *
 * Ticks are cycles of the 1 GHz system clock (Table III): 1 tick = 1 ns.
 * Events scheduled for the same tick execute in scheduling order
 * (deterministic FIFO tie-break), which makes every simulation
 * reproducible.
 */

#ifndef WINOMC_SIM_EVENT_QUEUE_HH
#define WINOMC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hh"

namespace winomc::sim {

class EventQueue
{
  public:
    Tick now() const { return current; }

    /** Schedule fn at absolute tick `when` (>= now). */
    void schedule(Tick when, std::function<void()> fn);
    /** Schedule fn `delay` ticks from now. */
    void scheduleAfter(Tick delay, std::function<void()> fn);

    bool empty() const { return events.empty(); }
    size_t pending() const { return events.size(); }

    /** Execute the next event; returns false if none remain. */
    bool runOne();
    /** Run until the queue drains or `max_events` fire. */
    void run(uint64_t max_events = UINT64_MAX);
    /** Run events with tick <= until. */
    void runUntil(Tick until);

    /** Drop everything and reset time to zero. */
    void reset();

  private:
    struct Entry
    {
        Tick when;
        uint64_t seq;
        std::function<void()> fn;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> events;
    Tick current = 0;
    uint64_t next_seq = 0;
};

} // namespace winomc::sim

#endif // WINOMC_SIM_EVENT_QUEUE_HH
