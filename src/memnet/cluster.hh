/**
 * @file
 * Cluster/group organization of the 2D worker array (Sections III-B,
 * IV) and the per-configuration tile-transfer network.
 *
 * p workers are arranged as N_g groups x N_c clusters (N_g * N_c = p).
 * A *group* holds one subset of the tile elements, replicated across the
 * batch (data parallelism inside the group, ring collective for its
 * weight slice). A *cluster* holds one batch shard spread over all
 * N_g tile-element owners; tile scatter/gather is an all-to-all among
 * the N_g workers of a cluster.
 *
 * Dynamic clustering (Section IV) picks per layer one of:
 *   (N_g, N_c) = (16, p/16) tile elements fully spread; 2D predict;
 *                FBFLY (4x4, narrow links) inside the cluster;
 *   (N_g, N_c) = (4, p/4)   one tile line per worker; 1D predict (the
 *                first 1D transform also shrinks gather lines from
 *                alpha to m elements); fully connected 4-clique;
 *   (N_g, N_c) = (1, p)     pure data parallelism, no tile transfer.
 */

#ifndef WINOMC_MEMNET_CLUSTER_HH
#define WINOMC_MEMNET_CLUSTER_HH

#include <memory>
#include <string>

#include "memnet/link_model.hh"
#include "noc/topology.hh"

namespace winomc::memnet {

/** Tile-transfer flavor implied by the group count. */
enum class TransferMode { None, OneD, TwoD };

struct ClusterShape
{
    int ng; ///< groups (tile-element owners)
    int nc; ///< clusters (batch shards)

    int workers() const { return ng * nc; }
    TransferMode transferMode() const;
    std::string toString() const;

    /** Ring length for the weight collective inside a group. */
    int ringLength() const { return nc; }

    /** The three configurations of Section IV for p workers. */
    static ClusterShape groups16(int p);
    static ClusterShape groups4(int p);
    static ClusterShape dataParallel(int p);
};

/** Intra-cluster topology for tile transfer (nullptr when ng == 1). */
std::unique_ptr<noc::Topology> clusterTopology(const ClusterShape &shape);

/** Link class used for tile transfer in this configuration. */
LinkSpec clusterLink(const ClusterShape &shape);

} // namespace winomc::memnet

#endif // WINOMC_MEMNET_CLUSTER_HH
