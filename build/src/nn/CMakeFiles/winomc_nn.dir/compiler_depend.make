# Empty compiler generated dependencies file for winomc_nn.
# This may be replaced when dependencies are built.
