#include "quant/prune.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace winomc::quant {

PruneMask::PruneMask(int alpha, int outCh, int inCh)
    : alpha(alpha), nj(outCh), ni(inCh)
{
    winomc_assert(alpha > 0 && outCh > 0 && inCh > 0,
                  "degenerate PruneMask shape");
    words.assign((size() + 63) / 64, 0);
}

std::size_t
PruneMask::prunedCount() const
{
    std::size_t n = 0;
    for (std::uint64_t w : words)
        n += std::size_t(__builtin_popcountll(w));
    return n;
}

double
PruneMask::sparsity() const
{
    return empty() ? 0.0 : double(prunedCount()) / double(size());
}

void
PruneMask::apply(WinoWeights &w) const
{
    winomc_assert(w.alphaEdge() == alpha && w.outChannels() == nj &&
                      w.inChannels() == ni,
                  "PruneMask/WinoWeights shape mismatch");
    float *raw = w.raw();
    const std::size_t n = size();
    for (std::size_t f = 0; f < n; ++f)
        if ((words[f >> 6] >> (f & 63)) & 1u)
            raw[f] = 0.0f;
}

PruneMask
magnitudePrune(const WinoWeights &w, double sparsity)
{
    const int alpha = w.alphaEdge();
    PruneMask mask(alpha, w.outChannels(), w.inChannels());
    const std::size_t n = mask.size();
    sparsity = std::clamp(sparsity, 0.0, 1.0);
    const std::size_t target =
        std::size_t(std::llround(sparsity * double(n)));
    if (target == 0)
        return mask;

    const float *raw = w.raw();
    std::vector<float> mags(n);
    for (std::size_t f = 0; f < n; ++f)
        mags[f] = std::fabs(raw[f]);

    // The threshold is the target-th smallest magnitude; everything
    // strictly below it is pruned, then ties at the threshold are
    // taken in flat index order until exactly `target` bits are set.
    std::vector<float> sorted = mags;
    std::nth_element(sorted.begin(), sorted.begin() + (target - 1),
                     sorted.end());
    const float thr = sorted[target - 1];

    std::size_t setBits = 0;
    for (std::size_t f = 0; f < n && setBits < target; ++f) {
        if (mags[f] < thr) {
            mask.setPruned(int(f / (std::size_t(w.outChannels()) *
                                    w.inChannels())),
                           int(f / w.inChannels() % w.outChannels()),
                           int(f % w.inChannels()));
            ++setBits;
        }
    }
    for (std::size_t f = 0; f < n && setBits < target; ++f) {
        const int uv = int(f / (std::size_t(w.outChannels()) *
                                w.inChannels()));
        const int j = int(f / w.inChannels() % w.outChannels());
        const int i = int(f % w.inChannels());
        if (mags[f] == thr && !mask.pruned(uv, j, i)) {
            mask.setPruned(uv, j, i);
            ++setBits;
        }
    }
    return mask;
}

double
winogradWeightSparsity(const WinoWeights &w)
{
    if (w.size() == 0)
        return 0.0;
    const float *raw = w.raw();
    std::size_t zeros = 0;
    for (std::size_t f = 0; f < w.size(); ++f)
        zeros += raw[f] == 0.0f;
    return double(zeros) / double(w.size());
}

} // namespace winomc::quant
