file(REMOVE_RECURSE
  "libwinomc_gpu.a"
)
