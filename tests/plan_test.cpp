/**
 * @file
 * Workspace allocator + execution plan tests: size-class slab reuse,
 * WINOMC_WORKSPACE_LIMIT_MB parsing and budget enforcement, plan-vs-
 * stage-pipeline bitwise parity (odd shapes, 1-vs-8 threads), zero
 * steady-state allocation across training steps for every ConvMode and
 * the MPT layer, and the backward-after-eval-forward stale-cache
 * regression.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "mpt/mpt_conv_layer.hh"
#include "nn/conv_layer.hh"
#include "tensor/workspace.hh"
#include "winograd/conv.hh"
#include "winograd/plan.hh"

namespace winomc {

// This suite validates the fp32 pipeline against fp32 oracles (direct
// convolution, numeric gradients, bitwise stage parity), so the
// activation storage precision is pinned to fp32 regardless of
// WINOMC_PREC. WINOMC_SPARSE stays env-driven on purpose: sparse
// execution is bitwise identical and must keep passing here.
[[maybe_unused]] const bool kPinFp32 = [] {
    setPrec(Prec::F32);
    return true;
}();

namespace {

// --------------------------------------------------------------- Workspace

TEST(Workspace, AcquireIsZeroFilledAndClassSized)
{
    ws::Workspace w;
    auto a = w.acquire(300);
    ASSERT_EQ(a.size(), 300u);
    EXPECT_GE(a.capacity(), 512u); // next power-of-two class above 300
    EXPECT_TRUE(std::all_of(a.begin(), a.end(),
                            [](float v) { return v == 0.0f; }));
    EXPECT_EQ(w.stats().freshAllocs, 1u);
    w.release(std::move(a));
}

TEST(Workspace, ReleasedSlabIsReusedAndRezeroed)
{
    ws::Workspace w;
    auto a = w.acquire(1000);
    std::fill(a.begin(), a.end(), 7.0f);
    w.release(std::move(a));
    auto b = w.acquire(600); // same 1024-float class: must reuse
    EXPECT_EQ(w.stats().freshAllocs, 1u);
    EXPECT_EQ(w.stats().reuses, 1u);
    EXPECT_TRUE(std::all_of(b.begin(), b.end(),
                            [](float v) { return v == 0.0f; }));
    w.release(std::move(b));
    const auto st = w.stats();
    EXPECT_EQ(st.bytesInUse, 0u);
    EXPECT_GT(st.pooledBytes, 0u);
    EXPECT_EQ(st.releases, 2u);
}

TEST(Workspace, HighWaterTracksPeakNotCurrent)
{
    ws::Workspace w;
    auto a = w.acquire(1024);
    auto b = w.acquire(1024);
    const auto peak = w.stats().bytesInUse;
    w.release(std::move(a));
    w.release(std::move(b));
    EXPECT_EQ(w.stats().bytesInUse, 0u);
    EXPECT_EQ(w.stats().highWater, peak);
}

TEST(Workspace, RetentionLimitDropsExcessSlabs)
{
    ws::Workspace w;
    w.setLimitBytes(4096); // exactly one 1024-float slab
    auto a = w.acquire(1024);
    auto b = w.acquire(1024);
    w.release(std::move(a));
    w.release(std::move(b)); // pool already at the limit: freed
    const auto st = w.stats();
    EXPECT_EQ(st.dropped, 1u);
    EXPECT_LE(st.pooledBytes, 4096u);
    w.trim();
    EXPECT_EQ(w.stats().pooledBytes, 0u);
}

TEST(Workspace, ParseLimitKnobHandlesGarbage)
{
    EXPECT_EQ(ws::parseWorkspaceLimitMb(nullptr), 0u);
    EXPECT_EQ(ws::parseWorkspaceLimitMb(""), 0u);
    EXPECT_EQ(ws::parseWorkspaceLimitMb("banana"), 0u);
    EXPECT_EQ(ws::parseWorkspaceLimitMb("12banana"), 0u);
    EXPECT_EQ(ws::parseWorkspaceLimitMb("-3"), 0u);
    EXPECT_EQ(ws::parseWorkspaceLimitMb("0"), 0u);
    EXPECT_EQ(ws::parseWorkspaceLimitMb("256"), 256u);
    EXPECT_EQ(ws::parseWorkspaceLimitMb("256 "), 256u);
    EXPECT_EQ(ws::parseWorkspaceLimitMb("99999999999999999999"),
              ws::kMaxLimitMb);
    EXPECT_EQ(ws::parseWorkspaceLimitMb("2097153"), ws::kMaxLimitMb);
}

TEST(Workspace, TilesReshapeReusesSlabAndZeroesOnShapeChange)
{
    WinoTiles t(4, 2, 2, 4);
    t.at(0, 0, 0, 0) = 5.0f;
    t.reshape(4, 2, 2, 3); // shape change within capacity: zeroed
    EXPECT_EQ(t.at(0, 0, 0, 0), 0.0f);
    t.at(0, 0, 0, 0) = 2.0f;
    t.reshape(4, 2, 2, 3); // same shape: contents preserved
    EXPECT_EQ(t.at(0, 0, 0, 0), 2.0f);
}

TEST(WorkspaceDeath, OverBudgetPlanFailsLoudly)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ws::Workspace::global().setLimitBytes(std::size_t(1) << 20);
            WinogradAlgo algo = makeWinograd(4, 3);
            WinoPlan plan(algo, 64, 64, 64, 64, 64);
        },
        "WINOMC_WORKSPACE_LIMIT_MB");
}

// ----------------------------------------------------- Plan bitwise parity

struct PlanCase
{
    int batch, in_ch, out_ch, h, w, m, r;
};

class PlanParityP : public ::testing::TestWithParam<PlanCase> {};

TEST_P(PlanParityP, BitwiseMatchesStagePipelineForAnyThreadCount)
{
    const auto p = GetParam();
    WinogradAlgo algo = makeWinograd(p.m, p.r);
    Rng rng(123);
    Tensor x(p.batch, p.in_ch, p.h, p.w);
    Tensor dy(p.batch, p.out_ch, p.h, p.w);
    Tensor w(p.out_ch, p.in_ch, p.r, p.r);
    x.fillUniform(rng);
    dy.fillUniform(rng);
    w.fillUniform(rng);
    const WinoWeights W = transformWeights(w, algo);

    Tensor y1, dx1; // thread-count invariance probes
    for (int threads : {1, 8}) {
        ThreadPool::global().setThreadCount(threads);
        // Reference: the raw stage composition the wrappers used to be.
        WinoTiles Xr = transformInput(x, algo);
        WinoTiles Yr = elementwiseForward(Xr, W);
        Tensor y_ref = inverseTransform(Yr, algo, p.h, p.w);
        WinoTiles dYr = inverseTransformAdjoint(dy, algo);
        WinoTiles dXr = elementwiseBackwardData(dYr, W);
        Tensor dx_ref = transformInputAdjoint(dXr, algo, p.h, p.w);
        WinoWeights dW_ref = elementwiseGradWeights(dYr, Xr);

        WinoPlan plan(algo, p.batch, p.in_ch, p.out_ch, p.h, p.w);
        Tensor y(p.batch, p.out_ch, p.h, p.w);
        Tensor dx(p.batch, p.in_ch, p.h, p.w);
        WinoWeights dW(algo.alpha, p.out_ch, p.in_ch);
        // Twice through the same plan: the second pass runs on dirty
        // slabs and must still be bitwise identical.
        for (int pass = 0; pass < 2; ++pass) {
            plan.forwardInto(x, W, y);
            plan.backwardDataInto(dy, W, dx);
            plan.gradWeightsInto(x, dy, dW);
            EXPECT_EQ(y.maxAbsDiff(y_ref), 0.0f);
            EXPECT_EQ(dx.maxAbsDiff(dx_ref), 0.0f);
            EXPECT_EQ(dW.maxAbsDiff(dW_ref), 0.0f);
        }

        // Free wrappers route through transient plans.
        EXPECT_EQ(winogradForward(x, W, algo).maxAbsDiff(y_ref), 0.0f);
        EXPECT_EQ(winogradBackwardData(dy, W, algo, p.h, p.w)
                      .maxAbsDiff(dx_ref),
                  0.0f);
        EXPECT_EQ(winogradGradWeights(x, dy, algo).maxAbsDiff(dW_ref),
                  0.0f);

        if (threads == 1) {
            y1 = y;
            dx1 = dx;
        } else {
            EXPECT_EQ(y.maxAbsDiff(y1), 0.0f);
            EXPECT_EQ(dx.maxAbsDiff(dx1), 0.0f);
        }
    }
    ThreadPool::global().setThreadCount(0); // restore default
}

INSTANTIATE_TEST_SUITE_P(Shapes, PlanParityP,
    ::testing::Values(
        PlanCase{1, 1, 1, 3, 3, 2, 3},  // N=1, single ragged tile
        PlanCase{1, 2, 5, 5, 7, 2, 3},  // C < K, ragged grid
        PlanCase{3, 5, 2, 9, 6, 4, 3},  // C > K, F(4,3)
        PlanCase{2, 3, 4, 8, 8, 4, 3}), // even grid, F(4,3)
    [](const ::testing::TestParamInfo<PlanCase> &info) {
        const auto &p = info.param;
        return "b" + std::to_string(p.batch) + "c" +
               std::to_string(p.in_ch) + "k" + std::to_string(p.out_ch) +
               "h" + std::to_string(p.h) + "w" + std::to_string(p.w) +
               "F" + std::to_string(p.m) + "r" + std::to_string(p.r);
    });

TEST(ConvLayerPlan, AllModesBitwiseMatchReferenceAcrossSteps)
{
    WinogradAlgo algo = makeWinograd(2, 3);
    for (auto mode : {nn::ConvMode::Direct, nn::ConvMode::WinogradSpatial,
                      nn::ConvMode::WinogradLayer}) {
        Rng rng(42);
        nn::ConvLayer layer(3, 4, 3, mode, algo, rng);
        Rng data_rng(7);
        // Two iterations: the second runs on reused plan slabs.
        for (int iter = 0; iter < 2; ++iter) {
            Tensor x(2, 3, 6, 6);
            Tensor dy(2, 4, 6, 6);
            x.fillUniform(data_rng);
            dy.fillUniform(data_rng);
            Tensor y = layer.forward(x, true);
            Tensor dx = layer.backward(dy);
            if (mode == nn::ConvMode::Direct) {
                Tensor y_ref =
                    directConvForward(x, layer.spatialWeights());
                Tensor dx_ref =
                    directConvBackwardData(dy, layer.spatialWeights());
                EXPECT_EQ(y.maxAbsDiff(y_ref), 0.0f);
                EXPECT_EQ(dx.maxAbsDiff(dx_ref), 0.0f);
            } else {
                const WinoWeights &W = layer.winoWeights();
                WinoTiles X = transformInput(x, algo);
                Tensor y_ref = inverseTransform(
                    elementwiseForward(X, W), algo, 6, 6);
                WinoTiles dYt = inverseTransformAdjoint(dy, algo);
                Tensor dx_ref = transformInputAdjoint(
                    elementwiseBackwardData(dYt, W), algo, 6, 6);
                EXPECT_EQ(y.maxAbsDiff(y_ref), 0.0f);
                EXPECT_EQ(dx.maxAbsDiff(dx_ref), 0.0f);
            }
        }
    }
}

// ------------------------------------------------ Zero steady-state alloc

TEST(WorkspaceSteadyState, ConvLayerStepAllocatesNothingAfterWarmup)
{
    WinogradAlgo algo = makeWinograd(2, 3);
    for (auto mode : {nn::ConvMode::Direct, nn::ConvMode::WinogradSpatial,
                      nn::ConvMode::WinogradLayer}) {
        Rng rng(11);
        nn::ConvLayer layer(3, 4, 3, mode, algo, rng);
        Tensor x(2, 3, 8, 8);
        Tensor dy(2, 4, 8, 8);
        x.fillUniform(rng);
        dy.fillUniform(rng);
        auto trainStep = [&] {
            Tensor y = layer.forward(x, true);
            Tensor dx = layer.backward(dy);
            layer.step(0.01f);
        };
        trainStep(); // warm-up builds the plan and primes the pool
        const auto s0 = ws::Workspace::global().stats();
        for (int i = 0; i < 10; ++i)
            trainStep();
        const auto s1 = ws::Workspace::global().stats();
        EXPECT_EQ(s1.freshAllocs, s0.freshAllocs)
            << "mode " << int(mode) << " hit the heap in steady state";
        EXPECT_EQ(s1.freshBytes, s0.freshBytes);
        EXPECT_EQ(s1.highWater, s0.highWater)
            << "mode " << int(mode) << " high water drifted";
        EXPECT_GT(s1.reuses, s0.reuses);
    }
}

TEST(WorkspaceSteadyState, MptConvLayerStepAllocatesNothingAfterWarmup)
{
    WinogradAlgo algo = makeWinograd(2, 3); // alpha^2 = 16
    Rng rng(19);
    mpt::MptConvLayer layer(3, 4, 3, 2, 2, algo, rng);
    Tensor x(4, 3, 8, 8);
    Tensor dy(4, 4, 8, 8);
    x.fillUniform(rng);
    dy.fillUniform(rng);
    auto trainStep = [&] {
        Tensor y = layer.forward(x, true);
        Tensor dx = layer.backward(dy);
        layer.step(0.01f);
    };
    trainStep();
    const auto s0 = ws::Workspace::global().stats();
    for (int i = 0; i < 10; ++i)
        trainStep();
    const auto s1 = ws::Workspace::global().stats();
    EXPECT_EQ(s1.freshAllocs, s0.freshAllocs);
    EXPECT_EQ(s1.freshBytes, s0.freshBytes);
    EXPECT_EQ(s1.highWater, s0.highWater);
    EXPECT_GT(s1.reuses, s0.reuses);
}

// ------------------------------- Shape-churn plan-rebuild regression
//
// Serving traffic alternates between a handful of batch shapes (the
// batcher emits whatever coalesced by the deadline). A layer that
// rebuilds its plan whenever the incoming shape stops matching throws
// the previous plan's slabs back at the workspace pool on every flip;
// under a pinned retention limit the pool cannot hold both shapes'
// slabs, so every flip drops and re-allocates — heap traffic on every
// request, forever. The fix parks displaced plans in a small per-layer
// LRU instead of destroying them, so A/B/A/B settles to zero fresh
// allocations after one warm-up of each shape.
//
// The tight limit is what makes this test bite: with the default 1 GB
// retention the pool absorbs the rebuild churn and freshAllocs goes
// flat even on the broken code. The limit is sized to the larger
// plan's working set, so transient activations still pool while a
// whole displaced plan does not.

/** Pin the global workspace retention limit; restore on scope exit. */
class ScopedWorkspaceLimit
{
  public:
    explicit ScopedWorkspaceLimit(std::size_t bytes)
        : prev(ws::Workspace::global().limitBytes())
    {
        ws::Workspace::global().setLimitBytes(bytes);
    }
    ~ScopedWorkspaceLimit()
    {
        ws::Workspace::global().setLimitBytes(prev);
    }

  private:
    std::size_t prev;
};

TEST(ConvLayerPlan, AlternatingShapesAllocateNothingAfterWarmup)
{
    WinogradAlgo algo = makeWinograd(2, 3);
    Rng rng(23);
    nn::ConvLayer layer(3, 4, 3, nn::ConvMode::WinogradLayer, algo, rng);
    Tensor xa(2, 3, 12, 12);
    Tensor xb(4, 3, 12, 12);
    Rng data(5);
    xa.fillUniform(data);
    xb.fillUniform(data);

    std::size_t planBytes = 0;
    {
        WinoPlan probe(algo, 4, 3, 4, 12, 12);
        planBytes = probe.workspaceBytes();
    }
    ScopedWorkspaceLimit limit(planBytes);
    ws::Workspace::global().trim();

    // Warm both shapes (plan build + one full flip cycle so the pool's
    // transient-slab population settles), then alternate.
    for (int i = 0; i < 4; ++i)
        layer.forward(i % 2 ? xb : xa, false);
    const auto s0 = ws::Workspace::global().stats();
    for (int i = 0; i < 8; ++i)
        layer.forward(i % 2 ? xb : xa, false);
    const auto s1 = ws::Workspace::global().stats();
    EXPECT_EQ(s1.freshAllocs, s0.freshAllocs)
        << "alternating batch shapes hit the heap in steady state";
    EXPECT_EQ(s1.freshBytes, s0.freshBytes);
}

TEST(MptConvLayerPlan, AlternatingShapesAllocateNothingAfterWarmup)
{
    WinogradAlgo algo = makeWinograd(2, 3); // alpha^2 = 16
    Rng rng(29);
    mpt::MptConvLayer layer(3, 4, 3, 2, 2, algo, rng);
    Tensor xa(4, 3, 12, 12); // shard batch 2
    Tensor xb(8, 3, 12, 12); // shard batch 4
    Rng data(5);
    xa.fillUniform(data);
    xb.fillUniform(data);

    std::size_t planBytes = 0;
    {
        WinoPlan probe(algo, 4, 3, 4, 12, 12);
        planBytes = probe.workspaceBytes();
    }
    // Both clusters flip together: budget both shard plans of the
    // larger shape.
    ScopedWorkspaceLimit limit(2 * planBytes);
    ws::Workspace::global().trim();

    // Warm both shapes (plan build + one full flip cycle so the pool's
    // transient-slab population settles), then alternate.
    for (int i = 0; i < 4; ++i)
        layer.forward(i % 2 ? xb : xa, false);
    const auto s0 = ws::Workspace::global().stats();
    for (int i = 0; i < 8; ++i)
        layer.forward(i % 2 ? xb : xa, false);
    const auto s1 = ws::Workspace::global().stats();
    EXPECT_EQ(s1.freshAllocs, s0.freshAllocs)
        << "alternating shard shapes hit the heap in steady state";
    EXPECT_EQ(s1.freshBytes, s0.freshBytes);
}

// -------------------------------------------- Stale-cache regression

TEST(ConvLayerDeath, BackwardAfterEvalForwardDies)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    WinogradAlgo algo = makeWinograd(2, 3);
    for (auto mode : {nn::ConvMode::Direct, nn::ConvMode::WinogradSpatial,
                      nn::ConvMode::WinogradLayer}) {
        Rng rng(3);
        nn::ConvLayer layer(2, 2, 3, mode, algo, rng);
        Tensor x(1, 2, 4, 4);
        Tensor dy(1, 2, 4, 4);
        x.fillUniform(rng);
        dy.fillUniform(rng);
        layer.forward(x, true);
        layer.backward(dy); // trained forward: fine
        layer.forward(x, false);
        // An inference forward invalidates the training cache; the old
        // implementation silently produced gradients from stale tiles.
        EXPECT_DEATH(layer.backward(dy), "stale");
    }
}

TEST(MptConvLayerDeath, BackwardAfterEvalForwardDies)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    WinogradAlgo algo = makeWinograd(2, 3);
    Rng rng(3);
    mpt::MptConvLayer layer(2, 2, 3, 2, 1, algo, rng);
    Tensor x(2, 2, 4, 4);
    Tensor dy(2, 2, 4, 4);
    x.fillUniform(rng);
    dy.fillUniform(rng);
    layer.forward(x, true);
    layer.backward(dy);
    layer.forward(x, false);
    EXPECT_DEATH(layer.backward(dy), "stale");
}

} // namespace
} // namespace winomc
