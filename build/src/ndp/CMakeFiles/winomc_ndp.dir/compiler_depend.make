# Empty compiler generated dependencies file for winomc_ndp.
# This may be replaced when dependencies are built.
