/**
 * @file
 * Vectorized micro-kernel table with runtime ISA dispatch.
 *
 * The hot loops of the Winograd pipeline (elementwise GEMM stages,
 * tile-side transforms, direct conv inner loop) and the nn/ secondary
 * paths (ReLU, pooling, SGD axpy) all funnel through a small set of
 * primitive kernels. Each primitive exists in up to four variants —
 * scalar, SSE2, AVX2+FMA, AVX-512F — compiled in separate translation
 * units with per-file -m flags, so one binary runs on any x86-64 host
 * and picks the widest supported unit at startup via cpuid.
 *
 * Selection order:
 *   1. WINOMC_ISA env var (auto | scalar | sse2 | avx2 | avx512);
 *      garbage or an ISA the CPU lacks warns and falls back, never
 *      crashes (same discipline as WINOMC_THREADS).
 *   2. setIsa() programmatic override (tests/benchmarks).
 *   3. auto = highest level supported by the running CPU.
 *
 * Numerics policy: the scalar table reproduces today's loop structures
 * exactly — WINOMC_ISA=scalar is bitwise identical to the pre-SIMD
 * code and serves as the parity oracle. Vector variants may fuse and
 * reassociate (FMA, W-lane partial sums) but keep a fixed, lane-count-
 * determined summation order, so a given ISA level is bitwise
 * reproducible across runs and thread counts.
 */

#ifndef WINOMC_WINOGRAD_MICROKERNEL_HH
#define WINOMC_WINOGRAD_MICROKERNEL_HH

#include <cstddef>
#include <cstdint>

namespace winomc {
namespace mk {

/** ISA ladder, ordered so higher value = wider vectors. */
enum class Isa : int {
    Scalar = 0,
    Sse2 = 1,
    Avx2 = 2,
    Avx512 = 3,
    Auto = 99, ///< resolve to the highest level the CPU supports
};

/**
 * Lane count of the SoA tile panels used by the transform kernels.
 * Callers gather/scatter the spatial side in panels of kTilePanel
 * tiles; the kernels then sweep whole panels per transform entry.
 * 16 covers a full AVX-512 float register and two AVX2 registers.
 */
constexpr int kTilePanel = 16;

/**
 * One resolved kernel table. All pointers are non-null; the scalar
 * table backs any primitive a vector TU does not specialize.
 */
struct MicroKernels
{
    Isa isa;
    const char *name;  ///< "scalar", "sse2", "avx2", "avx512"
    int floatLanes;    ///< packed float width of this level
    int doubleLanes;   ///< packed double width of this level

    // --- elementwise GEMM primitives (unit-stride [b*t] axis) -------

    /**
     * y[k] += sum_v w[v] * x[v][k] for k in [0, len). nv in [1, 8].
     * The register-blocked core of elementwiseForward/BackwardData.
     */
    void (*panelAccum)(float *y, const float *const *x, const float *w,
                       int nv, int len);

    /**
     * Double-precision dot product sum_k a[k]*b[k] with a deterministic
     * (per-ISA) summation order. Core of elementwiseGradWeights.
     */
    double (*dotDouble)(const float *a, const float *b, int len);

    // --- transform primitives (SoA across a panel of tiles) ---------

    /**
     * out = L * in * R applied per-lane across cnt (<= kTilePanel)
     * tiles. The float input is strided: entry e of lane l lives at
     * in[e * inStride + l] (WinoTiles uv-major layout: e indexes the
     * n*k transform entries, lanes are contiguous tiles). out is a
     * dense SoA double buffer out[e * kTilePanel + l] of p*q entries.
     * Dims: L is p x n, in is n x k (per lane), R is k x q.
     */
    void (*xformFromTiles)(const double *L, int p, int n,
                           const double *R, int k, int q,
                           const float *in, std::size_t inStride,
                           double *out, int cnt);

    /**
     * Mirror of xformFromTiles: dense SoA double input
     * in[e * kTilePanel + l] (n x k entries per lane), float SoA
     * output at out[e * outStride + l] (p*q entries).
     */
    void (*xformToTiles)(const double *L, int p, int n,
                         const double *R, int k, int q,
                         const double *in, float *out,
                         std::size_t outStride, int cnt);

    // --- tile-panel layout pack/unpack (spatial <-> blocked SoA) ----

    /**
     * Gather cnt (<= kTilePanel) spatial eh x ew patches into the
     * dense SoA double panel the transform kernels consume:
     * soa[(i*ew + j) * kTilePanel + l] = plane[(tr[l]+i)*w + tc[l]+j]
     * with 0.0 outside [0,h) x [0,w) (implicit padding / boundary
     * crop; tr/tc may be negative). Surplus lanes l >= cnt of every
     * entry are zeroed so whole-vector sweeps over the panel stay
     * defined. tr/tc need only cnt valid entries.
     */
    void (*packTilePanel)(double *soa, const float *plane, int h, int w,
                          const int *tr, const int *tc, int eh, int ew,
                          int cnt);

    /**
     * Scatter a dense SoA double panel back to spatial positions:
     * plane[(tr[l]+i)*w + tc[l]+j] = float(soa[(i*ew+j)*kTilePanel+l]),
     * skipping entries outside [0,h) x [0,w) (boundary crop). Lanes
     * scatter in ascending order.
     */
    void (*unpackTilePanel)(float *plane, int h, int w, const int *tr,
                            const int *tc, int eh, int ew,
                            const double *soa, int cnt);

    /**
     * Overlap-add variant of unpackTilePanel: += instead of =, lanes
     * strictly in ascending order (the summation order at overlapping
     * pixels is part of the bitwise contract).
     */
    void (*unpackAddTilePanel)(float *plane, int h, int w, const int *tr,
                               const int *tc, int eh, int ew,
                               const double *soa, int cnt);

    // --- direct conv / reduction primitives -------------------------

    /** acc[i] += w * x[i] for i in [0, n), double accumulators. */
    void (*rowAccumDouble)(double *acc, const float *x, double w, int n);

    /** Fixed-order double-precision sum of n floats. */
    double (*sumDouble)(const float *x, std::int64_t n);

    // --- nn/ secondary-path primitives ------------------------------

    /**
     * y[i] = x[i] > 0 ? x[i] : 0; if mask is non-null,
     * mask[i] = x[i] > 0 ? 1 : 0.
     */
    void (*reluForward)(float *y, float *mask, const float *x,
                        std::int64_t n);

    /** dst[i] = a[i] * b[i]. (ReLU backward: dst = dy * mask.) */
    void (*mulPairwise)(float *dst, const float *a, const float *b,
                        std::int64_t n);

    /** y[i] += a * x[i]. (SGD update with a = -lr.) */
    void (*axpy)(float *y, float a, const float *x, std::int64_t n);

    /** dst[i] = a[i] + b[i]. (Pooling row combine.) */
    void (*addRows)(float *dst, const float *a, const float *b,
                    std::int64_t n);

    /**
     * One output row of 2x2 average pooling:
     * y[o] = 0.25f * (((r0[2o] + r0[2o+1]) + r1[2o]) + r1[2o+1])
     * for o in [0, outW). The association is fixed so every ISA level
     * reproduces the scalar result bitwise.
     */
    void (*avgPool2Row)(float *y, const float *r0, const float *r1,
                        int outW);

    // --- sparse + low-precision extensions --------------------------

    /**
     * panelAccum over a caller-compacted row subset. `origNv` is the
     * row count of the uncompacted block; the scalar kernel uses it to
     * pick the same expression shape (flat 8-term sum vs accumulate
     * loop) panelAccum would have used, so dropping rows whose terms
     * are exactly zero stays bitwise identical to the dense kernel.
     * Vector levels accumulate sequentially for every nv and ignore
     * origNv. nv may be 0 (pure no-op).
     */
    void (*panelAccumSel)(float *y, const float *const *x,
                          const float *w, int nv, int len, int origNv);

    /**
     * Whole-column variant of panelAccumSel: one pass over the y panel
     * accumulating every surviving row of the full input-channel
     * column at once. The caller compacts rows in ascending order
     * across consecutive kIUnroll register blocks; grpNv[g] is the
     * survivor count of the g-th non-empty block (empty blocks are
     * omitted) and tailOrig is the uncompacted row count of the LAST
     * group (8 for a full block, ni % 8 for a ragged tail). The scalar
     * kernel replays panelAccum's per-block expression shape inside a
     * single y read-modify-write — bitwise identical to the blocked
     * dense kernel because fp32 store/load round trips are exact.
     * Vector levels accumulate all nv rows in one sequential FMA chain
     * and ignore the grouping (same chain as the blocked calls). The
     * point: the blocked kernel re-reads each y panel ni/8 times, so
     * at high sparsity y traffic, not FLOPs, dominates; one pass makes
     * skipped rows actually buy time.
     */
    void (*panelAccumGrouped)(float *y, const float *const *x,
                              const float *w, int nv, int len,
                              const std::uint8_t *grpNv, int nGroups,
                              int tailOrig);

    /**
     * panelAccum with 16-bit activation rows: each x[v][k] is decoded
     * (kHalfBf16 | kHalfF16 -> fp32, exact) before the fp32
     * multiply-accumulate. Sequential per-row accumulation at every
     * level, so staged and fused blockings agree bitwise per ISA.
     */
    void (*panelAccumHalf)(float *y, const std::uint16_t *const *x,
                           const float *w, int nv, int len,
                           int halfKind);

    /**
     * xformToTiles with a 16-bit destination: the fp32 transform
     * result of each lane is encoded to `halfKind` with software
     * round-to-nearest-even (common/half.hh), so every ISA level
     * writes identical bits.
     */
    void (*xformToTilesHalf)(const double *L, int p, int n,
                             const double *R, int k, int q,
                             const double *in, std::uint16_t *out,
                             std::size_t outStride, int cnt,
                             int halfKind);

    /** dst[i] = encode(src[i]) — software RNE, ISA-independent bits. */
    void (*cvtFloatToHalf)(std::uint16_t *dst, const float *src,
                           std::int64_t n, int halfKind);

    /** dst[i] = decode(src[i]) — exact, so hardware decode is fine. */
    void (*cvtHalfToFloat)(float *dst, const std::uint16_t *src,
                           std::int64_t n, int halfKind);

    /**
     * Bit e (e < entries <= 64) of the result is 1 iff lanes
     * x[e * stride + 0 .. cnt) are all exactly 0.0f (or -0.0f). Scans
     * exactly cnt <= kTilePanel lanes per entry — the mask builder for
     * the just-written SoA panel of the input transform.
     */
    std::uint64_t (*panelZeroMask)(const float *x, std::size_t stride,
                                   int entries, int cnt);

    /** panelZeroMask over 16-bit payloads: zero test is
     *  (bits & 0x7fff) == 0 (both formats encode ±0 that way). */
    std::uint64_t (*panelZeroMaskHalf)(const std::uint16_t *x,
                                       std::size_t stride, int entries,
                                       int cnt);
};

/** halfKind selector for the 16-bit microkernel variants. */
constexpr int kHalfBf16 = 0;
constexpr int kHalfF16 = 1;

/**
 * Parse a WINOMC_ISA-style string. Unknown or malformed input warns
 * and yields Auto; never throws, never exits.
 */
Isa parseIsa(const char *str);

/** Highest ISA level the running CPU supports (Scalar on non-x86). */
Isa highestSupported();

/**
 * Clamp a requested level to what the CPU supports. A request above
 * the hardware warns once and falls back to highestSupported().
 * Auto resolves to highestSupported().
 */
Isa resolveIsa(Isa requested);

/** Human-readable name ("scalar", "sse2", "avx2", "avx512", "auto"). */
const char *isaName(Isa isa);

/**
 * The active kernel table. First call resolves WINOMC_ISA (or any
 * pending setIsa override), caches the result, and publishes the
 * kernel.isa.level gauge. Thread-safe; subsequent calls are one
 * atomic load.
 */
const MicroKernels &kernels();

/** ISA level of the table kernels() returns. Resolves on first use. */
Isa activeIsa();

/**
 * Programmatic override (tests/benchmarks). Isa::Auto re-reads
 * WINOMC_ISA and re-resolves. Takes effect for subsequent kernels()
 * calls; not meant to race with in-flight kernel work.
 */
void setIsa(Isa isa);

/**
 * Publish per-stage throughput: kernel.<stage>.gflops gauge plus the
 * kernel.time.vector / kernel.time.scalar split (nanoseconds) used by
 * the winomc-report "Kernel dispatch" table. No-op when metrics are
 * disabled.
 */
void publishStageMetrics(const char *stage, double seconds, double flops);

namespace detail {
/**
 * Per-TU factories. Each returns a fully populated table for its
 * level, or nullptr when that TU was compiled out (non-x86 build or
 * compiler lacks the -m flag). Defined in microkernel_<level>.cc.
 */
const MicroKernels *scalarTable();
const MicroKernels *sse2Table();
const MicroKernels *avx2Table();
const MicroKernels *avx512Table();
} // namespace detail

} // namespace mk
} // namespace winomc

#endif // WINOMC_WINOGRAD_MICROKERNEL_HH
