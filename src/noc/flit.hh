/**
 * @file
 * Flit and packet descriptors of the flit-level network simulator.
 */

#ifndef WINOMC_NOC_FLIT_HH
#define WINOMC_NOC_FLIT_HH

#include <cstdint>

#include "common/units.hh"

namespace winomc::noc {

/** One flow-control unit. Packet metadata lives in Network::packets. */
struct Flit
{
    int packet = -1;  ///< owning packet id
    bool head = false;
    bool tail = false;
    int dst = -1;     ///< destination node (copied from packet for route)
    int vc = 0;       ///< virtual channel currently occupied
};

/** Packet bookkeeping (created at injection, finalized at ejection). */
struct PacketInfo
{
    int src = -1;
    int dst = -1;
    int flits = 1;
    Tick injected = 0;   ///< when offered to the source queue
    Tick network_in = 0; ///< when the head flit entered the router
    Tick ejected = 0;
    bool done = false;
};

} // namespace winomc::noc

#endif // WINOMC_NOC_FLIT_HH
