/**
 * @file
 * Tests for the multi-GPU baseline model: roofline behaviour,
 * sub-linear fixed-batch scaling, large-batch recovery, and the
 * NDP-vs-GPU comparisons of Figs 17/18.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "gpu/gpu_model.hh"
#include "mpt/network_sim.hh"
#include "workloads/networks.hh"

namespace winomc::gpu {
namespace {

TEST(GpuLayer, BackwardCostsTwoKernels)
{
    ConvSpec spec{"x", 256, 128, 128, 28, 28, 3};
    GpuLayerTime t = gpuLayerTime(spec, 32.0, {});
    EXPECT_NEAR(t.bwdSec, 2.0 * t.fwdSec, 1e-12);
}

TEST(GpuLayer, SmallBatchLosesEfficiency)
{
    ConvSpec spec{"x", 256, 256, 256, 14, 14, 3};
    GpuLayerTime big = gpuLayerTime(spec, 256.0, {});
    GpuLayerTime small = gpuLayerTime(spec, 8.0, {});
    // 32x less work but far less than 32x faster.
    EXPECT_LT(small.fwdSec * 32.0 * 0.9, big.fwdSec * 32.0);
    EXPECT_GT(small.fwdSec, big.fwdSec / 32.0 * 2.0);
}

TEST(GpuTraining, FixedBatchScalingSubLinear)
{
    // Fig 17: at fixed batch 256, 8 GPUs deliver much less than 8x.
    auto net = workloads::resnet34();
    double r1 = simulateGpuTraining(net, 1).imagesPerSec;
    double r8 = simulateGpuTraining(net, 8).imagesPerSec;
    EXPECT_GT(r8, r1);          // still faster...
    EXPECT_LT(r8 / r1, 5.0);    // ...but clearly sub-linear
}

TEST(GpuTraining, LargeBatchRestoresScaling)
{
    // Fig 18: growing the batch to 2K-4K recovers GPU throughput.
    auto net = workloads::resnet34();
    double fixed = simulateGpuTraining(net, 8).imagesPerSec;
    double big = simulateGpuTraining(net, 8, {}, 4096).imagesPerSec;
    EXPECT_GT(big, 2.0 * fixed);
    int best = bestBatchSize(net, 8);
    EXPECT_GE(best, 1024);
}

TEST(GpuTraining, PowerModel)
{
    auto net = workloads::wideResnet40_10();
    GpuResult r8 = simulateGpuTraining(net, 8);
    GpuConfig cfg;
    EXPECT_DOUBLE_EQ(r8.powerWatts,
                     8 * cfg.boardPowerWatts + cfg.hostPowerWatts);
}

TEST(GpuVsNdp, MptNdpBeatsEightGpuAtFixedBatch)
{
    // Fig 17: 256 NDP with w_mp++ vs the 8-GPU system at batch 256
    // (paper: 21.6x; our analytic GPU model is more charitable, so
    // accept anything clearly above 3x).
    mpt::SystemParams sp;
    for (const auto &net : workloads::tableOneNetworks()) {
        double ndp = mpt::simulateNetwork(
            net, mpt::Strategy::WinoMPTPredictDyn, sp).iterationSeconds;
        double gpu = simulateGpuTraining(net, 8).iterationSeconds;
        EXPECT_GT(gpu / ndp, 3.0) << net.name;
    }
}

TEST(GpuVsNdp, PerfPerWattAdvantageAtBestBatch)
{
    // Fig 18: iso-power, GPUs at their best batch, NDP at 256: the NDP
    // system sustains a clear perf/W lead (paper: 9.5x on average).
    mpt::SystemParams sp;
    double log_sum = 0.0;
    int n = 0;
    for (const auto &net : workloads::tableOneNetworks()) {
        auto ndp = mpt::simulateNetwork(
            net, mpt::Strategy::WinoMPTPredictDyn, sp);
        double ndp_ppw = ndp.imagesPerSec / ndp.averagePowerWatts;
        int batch = bestBatchSize(net, 8);
        GpuResult g = simulateGpuTraining(net, 8, {}, batch);
        double gpu_ppw = g.imagesPerSec / g.powerWatts;
        log_sum += std::log(ndp_ppw / gpu_ppw);
        ++n;
    }
    double geomean = std::exp(log_sum / n);
    EXPECT_GT(geomean, 2.0);
    EXPECT_LT(geomean, 30.0);
}

} // namespace
} // namespace winomc::gpu
