/**
 * @file
 * Open-loop load generator for the serving engine.
 *
 * Submits single-image requests at a fixed target rate (arrivals are
 * scheduled from the clock, not from completions, so queueing delay is
 * measured honestly — under overload the bounded queue's backpressure
 * throttles the producer and the run degrades toward closed-loop),
 * optionally alternating a second image shape to exercise the plan
 * cache, and reports per-request latency (exact p50/p99 from every
 * sample), sustained throughput, and workspace allocation per request.
 *
 * Usage:
 *   winomc_serve_bench [--seconds S] [--rate QPS] [--c C] [--h H]
 *                      [--w W] [--churn N] [--max-batch B]
 *                      [--delay-us D] [--json PATH]
 *
 *  --churn N   every Nth request uses a 3/4-sized image (0 = off),
 *              alternating shapes through the plan cache
 *  --json PATH merge "SERVE_*" rows into the BENCH_wino.json-style
 *              artifact at PATH (non-serve rows are preserved)
 *
 * With WINOMC_METRICS=<path> set, the serve.* metrics dump is written
 * on exit for winomc-report's Serving table; the bench enables
 * metrics recording itself, so only the path is needed.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hh"
#include "common/rng.hh"
#include "nn/conv_layer.hh"
#include "serve/engine.hh"
#include "tensor/workspace.hh"
#include "winograd/microkernel.hh"

namespace {

using winomc::Rng;
using winomc::Tensor;
using Clock = std::chrono::steady_clock;

struct Options
{
    double seconds = 2.0;
    double rate = 1000.0; // target arrivals per second
    int c = 3, h = 32, w = 32;
    int churn = 0; // every Nth request uses the alternate shape
    int maxBatch = 0;      // 0: knob/default
    long long delayUs = -1; // <0: knob/default
    std::string jsonPath;
};

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                return nullptr;
            }
            return argv[++i];
        };
        const char *a = argv[i];
        const char *v = nullptr;
        if (!std::strcmp(a, "--seconds")) {
            if (!(v = need(a)))
                return false;
            opt.seconds = std::atof(v);
        } else if (!std::strcmp(a, "--rate")) {
            if (!(v = need(a)))
                return false;
            opt.rate = std::atof(v);
        } else if (!std::strcmp(a, "--c")) {
            if (!(v = need(a)))
                return false;
            opt.c = std::atoi(v);
        } else if (!std::strcmp(a, "--h")) {
            if (!(v = need(a)))
                return false;
            opt.h = std::atoi(v);
        } else if (!std::strcmp(a, "--w")) {
            if (!(v = need(a)))
                return false;
            opt.w = std::atoi(v);
        } else if (!std::strcmp(a, "--churn")) {
            if (!(v = need(a)))
                return false;
            opt.churn = std::atoi(v);
        } else if (!std::strcmp(a, "--max-batch")) {
            if (!(v = need(a)))
                return false;
            opt.maxBatch = std::atoi(v);
        } else if (!std::strcmp(a, "--delay-us")) {
            if (!(v = need(a)))
                return false;
            opt.delayUs = std::atoll(v);
        } else if (!std::strcmp(a, "--json")) {
            if (!(v = need(a)))
                return false;
            opt.jsonPath = v;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", a);
            return false;
        }
    }
    if (opt.seconds <= 0.0 || opt.rate <= 0.0 || opt.c < 1 ||
        opt.h < 4 || opt.w < 4) {
        std::fprintf(stderr, "invalid option values\n");
        return false;
    }
    return true;
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return std::nan("");
    const std::size_t idx = std::min(
        sorted.size() - 1, std::size_t(q * double(sorted.size())));
    return sorted[idx];
}

/** Merge SERVE_* rows into a BENCH_wino.json-style artifact: rows
 *  with the same name are replaced, every other row (including other
 *  serving configurations) is preserved. */
void
mergeJson(const std::string &path,
          const std::vector<std::string> &serveRows)
{
    auto nameOf = [](const std::string &row) {
        const auto b = row.find("\"name\": \"");
        if (b == std::string::npos)
            return std::string();
        const auto s = b + 9;
        return row.substr(s, row.find('"', s) - s);
    };
    std::vector<std::string> newNames;
    for (const auto &r : serveRows)
        newNames.push_back(nameOf(r));
    std::vector<std::string> keep;
    std::ifstream in(path);
    if (in) {
        std::string line;
        while (std::getline(in, line)) {
            if (line.find("{\"name\":") != std::string::npos &&
                std::find(newNames.begin(), newNames.end(),
                          nameOf(line)) == newNames.end()) {
                // Strip any trailing comma; re-added on write.
                std::string t = line;
                while (!t.empty() &&
                       (t.back() == ',' || t.back() == ' '))
                    t.pop_back();
                keep.push_back(t);
            }
        }
    }
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
        return;
    }
    out << "{\n  \"benchmarks\": [\n";
    std::vector<std::string> all = keep;
    all.insert(all.end(), serveRows.begin(), serveRows.end());
    for (std::size_t i = 0; i < all.size(); ++i)
        out << all[i] << (i + 1 < all.size() ? "," : "") << "\n";
    out << "  ]\n}\n";
    std::printf("merged %zu serving row(s) into %s (%zu rows kept)\n",
                serveRows.size(), path.c_str(), keep.size());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace winomc;

    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    metrics::setEnabled(true);

    Rng rng(12345);
    nn::Sequential model;
    model.add(std::make_unique<nn::ConvLayer>(
        opt.c, 8, 3, nn::ConvMode::WinogradLayer, algoF2x2_3x3(), rng));
    model.add(std::make_unique<nn::ConvLayer>(
        8, 8, 3, nn::ConvMode::WinogradLayer, algoF2x2_3x3(), rng));

    serve::EngineConfig cfg;
    cfg.maxBatch = opt.maxBatch;
    cfg.maxDelayUs = opt.delayUs;
    serve::Engine engine(model, cfg);

    const int altH = std::max(4, opt.h * 3 / 4);
    const int altW = std::max(4, opt.w * 3 / 4);
    engine.warmup(opt.c, opt.h, opt.w);
    if (opt.churn > 0)
        engine.warmup(opt.c, altH, altW);

    // Pre-built request images, reused round-robin: the generator must
    // not allocate on the submission path.
    std::vector<Tensor> pool;
    for (int i = 0; i < 8; ++i) {
        const bool alt = opt.churn > 0 && i % opt.churn == opt.churn - 1;
        pool.emplace_back(1, opt.c, alt ? altH : opt.h,
                          alt ? altW : opt.w);
        pool.back().fillUniform(rng);
    }

    struct Pending
    {
        Clock::time_point submitted;
        std::future<Tensor> fut;
    };
    std::deque<Pending> inflight;
    std::mutex mu;
    std::condition_variable cv;
    bool doneSubmitting = false;

    std::vector<double> latencyUs;
    latencyUs.reserve(std::size_t(opt.rate * opt.seconds) + 16);

    const auto s0 = ws::Workspace::global().stats();
    const auto start = Clock::now();
    const auto interval =
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(1.0 / opt.rate));

    std::thread consumer([&] {
        std::unique_lock<std::mutex> lock(mu);
        while (true) {
            cv.wait(lock, [&] {
                return !inflight.empty() || doneSubmitting;
            });
            if (inflight.empty()) {
                if (doneSubmitting)
                    return;
                continue;
            }
            Pending p = std::move(inflight.front());
            inflight.pop_front();
            lock.unlock();
            p.fut.get();
            latencyUs.push_back(
                std::chrono::duration<double, std::micro>(
                    Clock::now() - p.submitted)
                    .count());
            lock.lock();
        }
    });

    std::uint64_t submitted = 0;
    while (true) {
        const auto next = start + interval * submitted;
        if (next - Clock::now() > std::chrono::seconds(0))
            std::this_thread::sleep_until(next);
        if (Clock::now() - start >
            std::chrono::duration<double>(opt.seconds))
            break;
        const Tensor &img = pool[submitted % pool.size()];
        Pending p;
        p.submitted = Clock::now();
        p.fut = engine.submit(img); // copies; blocks under backpressure
        {
            std::lock_guard<std::mutex> lock(mu);
            inflight.push_back(std::move(p));
        }
        cv.notify_one();
        ++submitted;
    }
    {
        std::lock_guard<std::mutex> lock(mu);
        doneSubmitting = true;
    }
    cv.notify_all();
    consumer.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    const auto s1 = ws::Workspace::global().stats();
    engine.stop();

    std::sort(latencyUs.begin(), latencyUs.end());
    double mean = 0.0;
    for (double v : latencyUs)
        mean += v;
    mean = latencyUs.empty() ? std::nan("") : mean / latencyUs.size();
    double ss = 0.0;
    for (double v : latencyUs)
        ss += (v - mean) * (v - mean);
    const double stddev =
        latencyUs.size() > 1
            ? std::sqrt(ss / double(latencyUs.size() - 1))
            : 0.0;
    const double p50 = percentile(latencyUs, 0.50);
    const double p99 = percentile(latencyUs, 0.99);
    const double qps = double(engine.served()) / elapsed;
    const double freshPerReq =
        double(s1.freshBytes - s0.freshBytes) /
        double(std::max<std::uint64_t>(1, engine.served()));
    const double allocsPerReq =
        double(s1.freshAllocs - s0.freshAllocs) /
        double(std::max<std::uint64_t>(1, engine.served()));

    const std::string shape = "c" + std::to_string(opt.c) + "h" +
                              std::to_string(opt.h) + "w" +
                              std::to_string(opt.w);
    std::printf("SERVE_OpenLoop/%s  served=%llu  qps=%.1f  "
                "mean_us=%.1f  p50_us=%.1f  p99_us=%.1f  "
                "fresh_bytes_per_req=%.1f  fresh_allocs_per_req=%.3f\n",
                shape.c_str(),
                (unsigned long long)engine.served(), qps, mean, p50,
                p99, freshPerReq, allocsPerReq);
    std::printf("serve.batch_max=%d  serve.delay_us=%lld  "
                "plan_cache: hits=%llu misses=%llu evictions=%llu\n",
                engine.maxBatch(), engine.maxDelayUs(),
                (unsigned long long)engine.planCache().hits(),
                (unsigned long long)engine.planCache().misses(),
                (unsigned long long)engine.planCache().evictions());

    if (!opt.jsonPath.empty()) {
        std::ostringstream row;
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"name\": \"SERVE_OpenLoop/%s/mb%d/rate%.0f%s\", "
            "\"isa\": \"%s\", \"ms_per_iter\": %.4f, "
            "\"stddev_ms\": %.4f, \"gflops\": 0.00, "
            "\"ws_fresh_bytes_per_iter\": %.1f, "
            "\"ws_acquires_per_iter\": %.2f, "
            "\"p50_us\": %.1f, \"p99_us\": %.1f, \"qps\": %.1f}",
            shape.c_str(), engine.maxBatch(), opt.rate,
            opt.churn > 0 ? "/churn" : "",
            mk::isaName(mk::activeIsa()), mean / 1000.0,
            stddev / 1000.0, freshPerReq, allocsPerReq, p50, p99, qps);
        mergeJson(opt.jsonPath, {std::string(buf)});
    }

    metrics::dumpIfConfigured();
    // The CI smoke gate: a run that served nothing or lost its latency
    // distribution exits non-zero.
    if (engine.served() == 0 || !std::isfinite(p99) || p99 <= 0.0) {
        std::fprintf(stderr, "serve bench produced no valid latency\n");
        return 1;
    }
    return 0;
}
