/**
 * @file
 * Tables I and II: the evaluated networks and layers.
 */

#include <cstdio>

#include "common/table.hh"
#include "common/units.hh"
#include "workloads/layers.hh"
#include "workloads/networks.hh"

using namespace winomc;

int
main()
{
    Table t1("Table I: CNNs");
    t1.header({"network", "dataset", "conv layers", "conv params"});
    for (const auto &net : workloads::tableOneNetworks()) {
        char params[32];
        std::snprintf(params, sizeof(params), "%.1fM",
                      double(net.paramCount()) / 1e6);
        t1.row()
            .cell(net.name)
            .cell(net.dataset)
            .cell(int64_t(net.layers.size()))
            .cell(params);
    }
    t1.print();

    Table t2("Table II: layers (batch 256)");
    t2.header({"layer", "in ch", "out ch", "fmap", "filter", "|w|",
               "input MiB"});
    for (const auto &l : workloads::tableTwoLayers()) {
        t2.row()
            .cell(l.name)
            .cell(int64_t(l.inCh))
            .cell(int64_t(l.outCh))
            .cell(std::to_string(l.h) + "x" + std::to_string(l.w))
            .cell(std::to_string(l.r) + "x" + std::to_string(l.r))
            .cell(int64_t(l.weightElems()))
            .cell(double(l.inputElems()) * 4.0 / kMiB, 1);
    }
    t2.print();
    return 0;
}
