file(REMOVE_RECURSE
  "CMakeFiles/winomc_mpt.dir/clustering.cc.o"
  "CMakeFiles/winomc_mpt.dir/clustering.cc.o.d"
  "CMakeFiles/winomc_mpt.dir/comm_volume.cc.o"
  "CMakeFiles/winomc_mpt.dir/comm_volume.cc.o.d"
  "CMakeFiles/winomc_mpt.dir/functional.cc.o"
  "CMakeFiles/winomc_mpt.dir/functional.cc.o.d"
  "CMakeFiles/winomc_mpt.dir/layer_sim.cc.o"
  "CMakeFiles/winomc_mpt.dir/layer_sim.cc.o.d"
  "CMakeFiles/winomc_mpt.dir/mpt_conv_layer.cc.o"
  "CMakeFiles/winomc_mpt.dir/mpt_conv_layer.cc.o.d"
  "CMakeFiles/winomc_mpt.dir/network_sim.cc.o"
  "CMakeFiles/winomc_mpt.dir/network_sim.cc.o.d"
  "CMakeFiles/winomc_mpt.dir/task_graph.cc.o"
  "CMakeFiles/winomc_mpt.dir/task_graph.cc.o.d"
  "libwinomc_mpt.a"
  "libwinomc_mpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winomc_mpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
