/**
 * @file
 * Scalar micro-kernel table: the parity oracle.
 *
 * These loops reproduce, operation for operation, the arithmetic the
 * pre-SIMD kernels in conv.cc and nn/ performed — same expressions,
 * same association, same float/double promotion points. This TU is
 * compiled with the project's default flags (x86-64 baseline: no FMA,
 * so no contraction), which makes WINOMC_ISA=scalar bitwise identical
 * to the pre-dispatch code on every platform. Do not "optimize" these
 * loops; the vector TUs exist for that.
 */

#include "winograd/microkernel.hh"

#include "common/half.hh"

namespace {

using winomc::mk::kTilePanel;

void
panelAccum(float *y, const float *const *x, const float *w, int nv,
           int len)
{
    // Mirrors the elementwise-forward register block: the full
    // 8-channel unroll is one flat expression; partial blocks take the
    // accumulate-in-a-local path. The two shapes associate additions
    // differently, so both are preserved verbatim.
    if (nv == 8) {
        const float *x0 = x[0], *x1 = x[1], *x2 = x[2], *x3 = x[3];
        const float *x4 = x[4], *x5 = x[5], *x6 = x[6], *x7 = x[7];
        for (int k = 0; k < len; ++k)
            y[k] += w[0] * x0[k] + w[1] * x1[k] + w[2] * x2[k] +
                    w[3] * x3[k] + w[4] * x4[k] + w[5] * x5[k] +
                    w[6] * x6[k] + w[7] * x7[k];
    } else {
        for (int k = 0; k < len; ++k) {
            float acc = y[k];
            for (int v = 0; v < nv; ++v)
                acc += w[v] * x[v][k];
            y[k] = acc;
        }
    }
}

double
dotDouble(const float *a, const float *b, int len)
{
    // Four fixed accumulator chains, tail into s0, pairwise combine —
    // exactly the grad-weights reduction order.
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    int k = 0;
    for (; k + 4 <= len; k += 4) {
        s0 += double(a[k]) * b[k];
        s1 += double(a[k + 1]) * b[k + 1];
        s2 += double(a[k + 2]) * b[k + 2];
        s3 += double(a[k + 3]) * b[k + 3];
    }
    for (; k < len; ++k)
        s0 += double(a[k]) * b[k];
    return (s0 + s1) + (s2 + s3);
}

/** Shared sandwich core: out = L (p x n) * in (n x k) * R (k x q),
 *  identical loop structure to the old per-tile sandwich() helper. */
template <typename LoadFn, typename StoreFn>
inline void
sandwichLane(const double *L, int p, int n, const double *R, int k,
             int q, LoadFn load, StoreFn store)
{
    double tmp[8 * 8];
    for (int i = 0; i < p; ++i) {
        for (int j = 0; j < k; ++j) {
            double acc = 0.0;
            for (int t = 0; t < n; ++t)
                acc += L[i * n + t] * load(t * k + j);
            tmp[i * k + j] = acc;
        }
    }
    for (int i = 0; i < p; ++i) {
        for (int j = 0; j < q; ++j) {
            double acc = 0.0;
            for (int t = 0; t < k; ++t)
                acc += tmp[i * k + t] * R[t * q + j];
            store(i * q + j, acc);
        }
    }
}

void
xformFromTiles(const double *L, int p, int n, const double *R, int k,
               int q, const float *in, std::size_t inStride, double *out,
               int cnt)
{
    for (int l = 0; l < cnt; ++l) {
        sandwichLane(
            L, p, n, R, k, q,
            [&](int e) { return double(in[std::size_t(e) * inStride + l]); },
            [&](int e, double v) { out[e * kTilePanel + l] = v; });
    }
}

void
xformToTiles(const double *L, int p, int n, const double *R, int k,
             int q, const double *in, float *out, std::size_t outStride,
             int cnt)
{
    for (int l = 0; l < cnt; ++l) {
        sandwichLane(
            L, p, n, R, k, q,
            [&](int e) { return in[e * kTilePanel + l]; },
            [&](int e, double v) {
                out[std::size_t(e) * outStride + l] = float(v);
            });
    }
}

void
packTilePanel(double *soa, const float *plane, int h, int w,
              const int *tr, const int *tc, int eh, int ew, int cnt)
{
    // Mirrors the spatial gather loops the staged transforms used
    // inline: per lane, row-bounds hoisted, zero outside the plane.
    for (int l = 0; l < cnt; ++l) {
        const int r0 = tr[l];
        const int c0 = tc[l];
        for (int i = 0; i < eh; ++i) {
            const int rr = r0 + i;
            const bool rowIn = rr >= 0 && rr < h;
            for (int j = 0; j < ew; ++j) {
                const int cc = c0 + j;
                const bool in_map = rowIn && cc >= 0 && cc < w;
                soa[std::size_t(i * ew + j) * kTilePanel + l] =
                    in_map ? double(plane[std::size_t(rr) * w + cc])
                           : 0.0;
            }
        }
    }
    // The transform kernels stream whole vectors over the panel, so
    // surplus lanes of a short panel must be defined.
    if (cnt < kTilePanel)
        for (int e = 0; e < eh * ew; ++e)
            for (int l = cnt; l < kTilePanel; ++l)
                soa[std::size_t(e) * kTilePanel + l] = 0.0;
}

void
unpackTilePanel(float *plane, int h, int w, const int *tr, const int *tc,
                int eh, int ew, const double *soa, int cnt)
{
    for (int l = 0; l < cnt; ++l) {
        const int r0 = tr[l];
        const int c0 = tc[l];
        for (int i = 0; i < eh; ++i) {
            const int rr = r0 + i;
            if (rr < 0 || rr >= h)
                continue; // boundary crop
            float *row = plane + std::size_t(rr) * w;
            for (int j = 0; j < ew; ++j) {
                const int cc = c0 + j;
                if (cc < 0 || cc >= w)
                    continue;
                row[cc] =
                    float(soa[std::size_t(i * ew + j) * kTilePanel + l]);
            }
        }
    }
}

void
unpackAddTilePanel(float *plane, int h, int w, const int *tr,
                   const int *tc, int eh, int ew, const double *soa,
                   int cnt)
{
    for (int l = 0; l < cnt; ++l) {
        const int r0 = tr[l];
        const int c0 = tc[l];
        for (int i = 0; i < eh; ++i) {
            const int rr = r0 + i;
            if (rr < 0 || rr >= h)
                continue;
            float *row = plane + std::size_t(rr) * w;
            for (int j = 0; j < ew; ++j) {
                const int cc = c0 + j;
                if (cc < 0 || cc >= w)
                    continue;
                row[cc] +=
                    float(soa[std::size_t(i * ew + j) * kTilePanel + l]);
            }
        }
    }
}

void
rowAccumDouble(double *acc, const float *x, double w, int n)
{
    for (int i = 0; i < n; ++i)
        acc[i] += double(x[i]) * w;
}

double
sumDouble(const float *x, std::int64_t n)
{
    // Plain serial accumulation: the GlobalAvgPool reduction order.
    double acc = 0.0;
    for (std::int64_t i = 0; i < n; ++i)
        acc += x[i];
    return acc;
}

void
reluForward(float *y, float *mask, const float *x, std::int64_t n)
{
    if (mask) {
        for (std::int64_t i = 0; i < n; ++i) {
            bool on = x[i] > 0.0f;
            y[i] = on ? x[i] : 0.0f;
            mask[i] = on ? 1.0f : 0.0f;
        }
    } else {
        for (std::int64_t i = 0; i < n; ++i)
            y[i] = x[i] > 0.0f ? x[i] : 0.0f;
    }
}

void
mulPairwise(float *dst, const float *a, const float *b, std::int64_t n)
{
    for (std::int64_t i = 0; i < n; ++i)
        dst[i] = a[i] * b[i];
}

void
axpy(float *y, float a, const float *x, std::int64_t n)
{
    for (std::int64_t i = 0; i < n; ++i)
        y[i] += a * x[i];
}

void
addRows(float *dst, const float *a, const float *b, std::int64_t n)
{
    for (std::int64_t i = 0; i < n; ++i)
        dst[i] = a[i] + b[i];
}

void
avgPool2Row(float *y, const float *r0, const float *r1, int outW)
{
    for (int o = 0; o < outW; ++o)
        y[o] = 0.25f *
               (r0[2 * o] + r0[2 * o + 1] + r1[2 * o] + r1[2 * o + 1]);
}

void
panelAccumSel(float *y, const float *const *x, const float *w, int nv,
              int len, int origNv)
{
    // Row-compacted panelAccum. Terms dropped by the caller are exact
    // ±0.0f products, and removing exact zeros from either expression
    // shape below leaves every partial sum bitwise unchanged — but the
    // SHAPE must match what panelAccum would have used for the
    // uncompacted block, hence the origNv switch.
    if (nv == 0)
        return; // y[k] += (sum of exact zeros) is a bitwise no-op
    if (origNv == 8) {
        // The flat 8-term expression, minus the zero terms: seed with
        // the first surviving product, left-associate the rest, add to
        // y last.
        for (int k = 0; k < len; ++k) {
            float s = w[0] * x[0][k];
            for (int v = 1; v < nv; ++v)
                s += w[v] * x[v][k];
            y[k] += s;
        }
    } else {
        for (int k = 0; k < len; ++k) {
            float acc = y[k];
            for (int v = 0; v < nv; ++v)
                acc += w[v] * x[v][k];
            y[k] = acc;
        }
    }
}

void
panelAccumGrouped(float *y, const float *const *x, const float *w,
                  int /*nv*/, int len, const std::uint8_t *grpNv,
                  int nGroups, int tailOrig)
{
    // One y read-modify-write per element, but each group's partial
    // sum keeps the expression shape the blocked panelAccum /
    // panelAccumSel sequence would have used: full blocks form the
    // flat left-associated product sum added to the accumulator as one
    // term; a ragged tail accumulates per row. The fp32 store/load
    // between blocked calls is exact, so collapsing the passes cannot
    // change any bit.
    for (int k = 0; k < len; ++k) {
        float acc = y[k];
        int v = 0;
        for (int g = 0; g < nGroups; ++g) {
            const int gn = grpNv[g];
            if (g + 1 < nGroups || tailOrig == 8) {
                float s = w[v] * x[v][k];
                for (int u = 1; u < gn; ++u)
                    s += w[v + u] * x[v + u][k];
                acc += s;
            } else {
                for (int u = 0; u < gn; ++u)
                    acc += w[v + u] * x[v + u][k];
            }
            v += gn;
        }
        y[k] = acc;
    }
}

void
panelAccumHalf(float *y, const std::uint16_t *const *x, const float *w,
               int nv, int len, int halfKind)
{
    const bool bf16 = halfKind == winomc::mk::kHalfBf16;
    for (int k = 0; k < len; ++k) {
        float acc = y[k];
        for (int v = 0; v < nv; ++v) {
            const float xv = bf16 ? winomc::half::bf16ToF32(x[v][k])
                                  : winomc::half::f16ToF32(x[v][k]);
            acc += w[v] * xv;
        }
        y[k] = acc;
    }
}

void
xformToTilesHalf(const double *L, int p, int n, const double *R, int k,
                 int q, const double *in, std::uint16_t *out,
                 std::size_t outStride, int cnt, int halfKind)
{
    const bool bf16 = halfKind == winomc::mk::kHalfBf16;
    for (int l = 0; l < cnt; ++l) {
        sandwichLane(
            L, p, n, R, k, q,
            [&](int e) { return in[e * kTilePanel + l]; },
            [&](int e, double v) {
                // Same double -> float rounding point as xformToTiles,
                // then the software RNE encode.
                const float f = float(v);
                out[std::size_t(e) * outStride + l] =
                    bf16 ? winomc::half::f32ToBf16(f)
                         : winomc::half::f32ToF16(f);
            });
    }
}

void
cvtFloatToHalf(std::uint16_t *dst, const float *src, std::int64_t n,
               int halfKind)
{
    if (halfKind == winomc::mk::kHalfBf16)
        for (std::int64_t i = 0; i < n; ++i)
            dst[i] = winomc::half::f32ToBf16(src[i]);
    else
        for (std::int64_t i = 0; i < n; ++i)
            dst[i] = winomc::half::f32ToF16(src[i]);
}

void
cvtHalfToFloat(float *dst, const std::uint16_t *src, std::int64_t n,
               int halfKind)
{
    if (halfKind == winomc::mk::kHalfBf16)
        for (std::int64_t i = 0; i < n; ++i)
            dst[i] = winomc::half::bf16ToF32(src[i]);
    else
        for (std::int64_t i = 0; i < n; ++i)
            dst[i] = winomc::half::f16ToF32(src[i]);
}

std::uint64_t
panelZeroMask(const float *x, std::size_t stride, int entries, int cnt)
{
    std::uint64_t m = 0;
    for (int e = 0; e < entries; ++e) {
        const float *p = x + std::size_t(e) * stride;
        bool zero = true;
        for (int l = 0; l < cnt; ++l) {
            if (p[l] != 0.0f) {
                zero = false;
                break;
            }
        }
        if (zero)
            m |= std::uint64_t(1) << e;
    }
    return m;
}

std::uint64_t
panelZeroMaskHalf(const std::uint16_t *x, std::size_t stride,
                  int entries, int cnt)
{
    std::uint64_t m = 0;
    for (int e = 0; e < entries; ++e) {
        const std::uint16_t *p = x + std::size_t(e) * stride;
        bool zero = true;
        for (int l = 0; l < cnt; ++l) {
            if ((p[l] & 0x7fffu) != 0u) { // both formats: ±0 only
                zero = false;
                break;
            }
        }
        if (zero)
            m |= std::uint64_t(1) << e;
    }
    return m;
}

const winomc::mk::MicroKernels kTable = {
    winomc::mk::Isa::Scalar,
    "scalar",
    1,
    1,
    panelAccum,
    dotDouble,
    xformFromTiles,
    xformToTiles,
    packTilePanel,
    unpackTilePanel,
    unpackAddTilePanel,
    rowAccumDouble,
    sumDouble,
    reluForward,
    mulPairwise,
    axpy,
    addRows,
    avgPool2Row,
    panelAccumSel,
    panelAccumGrouped,
    panelAccumHalf,
    xformToTilesHalf,
    cvtFloatToHalf,
    cvtHalfToFloat,
    panelZeroMask,
    panelZeroMaskHalf,
};

} // namespace

namespace winomc::mk::detail {

const MicroKernels *
scalarTable()
{
    return &kTable;
}

} // namespace winomc::mk::detail
