# Empty compiler generated dependencies file for winomc_gpu.
# This may be replaced when dependencies are built.
