/**
 * @file
 * Topologies of the memory-centric network (Section IV / Table III):
 * bidirectional ring (weight collectives), 2D flattened butterfly (tile
 * transfer inside a cluster, max 2 hops), and a fully connected clique
 * (the 4-worker cluster of the (4, 64) configuration; single hop).
 *
 * A topology describes wiring (neighbor/port maps), minimal routing
 * (output port per hop) and virtual-channel selection (dateline VCs on
 * the ring for deadlock freedom).
 */

#ifndef WINOMC_NOC_TOPOLOGY_HH
#define WINOMC_NOC_TOPOLOGY_HH

#include <memory>
#include <string>

namespace winomc::noc {

class Topology
{
  public:
    virtual ~Topology() = default;

    virtual std::string name() const = 0;
    virtual int nodes() const = 0;
    /** Network ports per router (terminal port excluded). */
    virtual int ports() const = 0;
    /** Peer node reached through `port` of `node` (-1 if unwired). */
    virtual int neighbor(int node, int port) const = 0;
    /** Port on the peer that this link enters. */
    virtual int peerPort(int node, int port) const = 0;
    /** Minimal route: output port at `cur` toward `dst`. */
    virtual int route(int cur, int dst) const = 0;
    /** VC a packet uses at injection. */
    virtual int selectVc(int src, int dst) const { (void)src; (void)dst;
        return 0; }
    /**
     * VC on the outgoing link given the current VC (deadlock avoidance;
     * the ring switches to the high VC when crossing its dateline).
     */
    virtual int
    nextVc(int node, int out_port, int cur_vc) const
    {
        (void)node;
        (void)out_port;
        return cur_vc;
    }
    /** VCs the network must provision. */
    virtual int vcsNeeded() const { return 1; }
    /** Hop count of the minimal route. */
    int hopCount(int src, int dst) const;
};

/** Bidirectional ring; minimal (shorter-direction) routing; 2 dateline
 *  VCs. Port 0 = clockwise (+1), port 1 = counter-clockwise (-1). */
class RingTopology : public Topology
{
  public:
    explicit RingTopology(int n);

    std::string name() const override { return "ring"; }
    int nodes() const override { return n; }
    int ports() const override { return 2; }
    int neighbor(int node, int port) const override;
    int peerPort(int node, int port) const override;
    int route(int cur, int dst) const override;
    int nextVc(int node, int out_port, int cur_vc) const override;
    int vcsNeeded() const override { return 2; }

  private:
    int n;
};

/**
 * 2D flattened butterfly: k x k routers, every router directly linked to
 * all routers sharing its row and all sharing its column. Minimal
 * routing goes row first, then column (<= 2 hops).
 * Ports 0..k-2: row links; ports k-1..2k-3: column links.
 */
class FlatButterfly2D : public Topology
{
  public:
    explicit FlatButterfly2D(int k);

    std::string name() const override { return "fbfly2d"; }
    int nodes() const override { return k * k; }
    int ports() const override { return 2 * (k - 1); }
    int neighbor(int node, int port) const override;
    int peerPort(int node, int port) const override;
    int route(int cur, int dst) const override;

    int edge() const { return k; }

  private:
    int rowOf(int node) const { return node / k; }
    int colOf(int node) const { return node % k; }

    int k;
};

/** Fully connected clique (single-hop between any pair). */
class FullyConnected : public Topology
{
  public:
    explicit FullyConnected(int n);

    std::string name() const override { return "clique"; }
    int nodes() const override { return n; }
    int ports() const override { return n - 1; }
    int neighbor(int node, int port) const override;
    int peerPort(int node, int port) const override;
    int route(int cur, int dst) const override;

  private:
    int n;
};

} // namespace winomc::noc

#endif // WINOMC_NOC_TOPOLOGY_HH
