#include "common/metrics.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/logging.hh"

namespace winomc::metrics {

std::atomic<bool> gEnabled{false};

namespace {

/** Accumulation state of one metric inside one shard (or merged). */
struct Value
{
    Kind kind = Kind::Counter;
    double value = 0.0;
    std::uint64_t count = 0;
    double totalSec = 0.0;
    double minSec = 0.0;
    double maxSec = 0.0;

    void
    mergeFrom(const Value &o)
    {
        kind = o.kind;
        value += o.value;
        if (o.kind == Kind::Gauge)
            value = o.value;
        if (o.kind == Kind::Timer) {
            minSec = count ? std::min(minSec, o.minSec) : o.minSec;
            maxSec = count ? std::max(maxSec, o.maxSec) : o.maxSec;
        }
        count += o.count;
        totalSec += o.totalSec;
    }
};

using ValueMap = std::map<std::string, Value>;

/**
 * Per-thread accumulation shard. The owning thread takes the shard
 * mutex for each record; snapshot/reset take it briefly from outside.
 * The mutex is uncontended except during a snapshot, so the enabled
 * hot path stays cheap and TSan-clean.
 */
struct Shard
{
    std::mutex mu;
    ValueMap values;
};

struct Registry
{
    std::mutex mu;
    std::vector<std::shared_ptr<Shard>> shards;
    ValueMap retired; ///< gauges + shards of exited threads
    std::string path; ///< WINOMC_METRICS, if set

    static Registry &
    instance()
    {
        static Registry *r = new Registry; // never destroyed: shards
        return *r;                         // may outlive main()
    }
};

/** Registers this thread's shard on first use, merges it on exit. */
struct ShardHandle
{
    std::shared_ptr<Shard> shard = std::make_shared<Shard>();

    ShardHandle()
    {
        Registry &r = Registry::instance();
        std::lock_guard<std::mutex> lk(r.mu);
        r.shards.push_back(shard);
    }

    ~ShardHandle()
    {
        Registry &r = Registry::instance();
        std::lock_guard<std::mutex> lk(r.mu);
        {
            std::lock_guard<std::mutex> slk(shard->mu);
            for (const auto &[name, v] : shard->values)
                r.retired[name].mergeFrom(v);
            shard->values.clear();
        }
        r.shards.erase(
            std::remove(r.shards.begin(), r.shards.end(), shard),
            r.shards.end());
    }
};

Shard &
localShard()
{
    thread_local ShardHandle handle;
    return *handle.shard;
}

void
dumpAtExit()
{
    dumpIfConfigured();
}

/** Reads WINOMC_METRICS once and arms the at-exit dump. */
struct EnvInit
{
    EnvInit()
    {
        const char *p = std::getenv("WINOMC_METRICS");
        if (p && *p) {
            Registry::instance().path = p;
            gEnabled.store(true, std::memory_order_relaxed);
            std::atexit(dumpAtExit);
        }
    }
};
EnvInit envInit;

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

ValueMap
mergedValues()
{
    Registry &r = Registry::instance();
    std::lock_guard<std::mutex> lk(r.mu);
    ValueMap out = r.retired;
    for (const auto &shard : r.shards) {
        std::lock_guard<std::mutex> slk(shard->mu);
        for (const auto &[name, v] : shard->values)
            out[name].mergeFrom(v);
    }
    return out;
}

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::Counter:
        return "counter";
      case Kind::Gauge:
        return "gauge";
      case Kind::Timer:
        return "timer";
    }
    return "?";
}

} // namespace

void
setEnabled(bool on)
{
    gEnabled.store(on, std::memory_order_relaxed);
}

const std::string &
configuredPath()
{
    return Registry::instance().path;
}

void
counterAdd(const char *name, double v)
{
    if (!enabled())
        return;
    Shard &s = localShard();
    std::lock_guard<std::mutex> lk(s.mu);
    Value &val = s.values[name];
    val.kind = Kind::Counter;
    val.value += v;
    ++val.count;
}

void
gaugeSet(const char *name, double v)
{
    if (!enabled())
        return;
    Registry &r = Registry::instance();
    std::lock_guard<std::mutex> lk(r.mu);
    Value &val = r.retired[name];
    val.kind = Kind::Gauge;
    val.value = v;
    ++val.count;
}

void
timerAdd(const char *name, double seconds)
{
    if (!enabled())
        return;
    Shard &s = localShard();
    std::lock_guard<std::mutex> lk(s.mu);
    Value &val = s.values[name];
    val.kind = Kind::Timer;
    val.minSec = val.count ? std::min(val.minSec, seconds) : seconds;
    val.maxSec = val.count ? std::max(val.maxSec, seconds) : seconds;
    val.totalSec += seconds;
    ++val.count;
}

std::vector<Sample>
snapshot()
{
    std::vector<Sample> out;
    for (const auto &[name, v] : mergedValues()) {
        Sample s;
        s.name = name;
        s.kind = v.kind;
        s.value = v.value;
        s.count = v.count;
        s.totalSec = v.totalSec;
        s.minSec = v.minSec;
        s.maxSec = v.maxSec;
        out.push_back(std::move(s));
    }
    return out; // std::map iteration is already name-sorted
}

void
reset()
{
    Registry &r = Registry::instance();
    std::lock_guard<std::mutex> lk(r.mu);
    r.retired.clear();
    for (const auto &shard : r.shards) {
        std::lock_guard<std::mutex> slk(shard->mu);
        shard->values.clear();
    }
}

std::string
toJson()
{
    std::ostringstream oss;
    oss.precision(17);
    oss << "{\n  \"metrics\": [";
    bool first = true;
    for (const Sample &s : snapshot()) {
        oss << (first ? "\n" : ",\n");
        first = false;
        oss << "    {\"name\": \"" << s.name << "\", \"kind\": \""
            << kindName(s.kind) << "\", \"count\": " << s.count;
        if (s.kind == Kind::Timer) {
            oss << ", \"total_sec\": " << s.totalSec
                << ", \"min_sec\": " << s.minSec
                << ", \"max_sec\": " << s.maxSec;
        } else {
            oss << ", \"value\": " << s.value;
        }
        oss << "}";
    }
    oss << "\n  ]\n}\n";
    return oss.str();
}

std::string
toCsv()
{
    std::ostringstream oss;
    oss.precision(17);
    oss << "name,kind,count,value,total_sec,min_sec,max_sec\n";
    for (const Sample &s : snapshot()) {
        oss << s.name << "," << kindName(s.kind) << "," << s.count << ","
            << s.value << "," << s.totalSec << "," << s.minSec << ","
            << s.maxSec << "\n";
    }
    return oss.str();
}

void
dumpToFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        winomc_warn("cannot write metrics dump to '", path, "'");
        return;
    }
    std::string body = endsWith(path, ".csv") ? toCsv() : toJson();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
}

void
dumpIfConfigured()
{
    const std::string &path = configuredPath();
    if (path.empty())
        return;
    dumpToFile(path);
}

} // namespace winomc::metrics
