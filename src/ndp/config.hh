/**
 * @file
 * Configuration of one near-data-processing worker (Section VI / Table
 * III): a 3D-stacked memory module whose logic layer carries a systolic
 * array, a vector processor on scratch-pad memory, double-buffered SRAM,
 * and the communication engines.
 */

#ifndef WINOMC_NDP_CONFIG_HH
#define WINOMC_NDP_CONFIG_HH

#include <cstddef>

#include "common/units.hh"

namespace winomc::ndp {

struct NdpConfig
{
    /** S x S MAC systolic array. 64 (FP32, layer-wise eval, Section
     *  VI-B) or 96 (FP16 mul / FP32 acc, whole-CNN eval, Section
     *  VII-C). */
    int systolicDim = 64;
    double clockHz = 1e9;

    /** HMC-style stacked DRAM bandwidth (Table III). */
    double dramBandwidth = GBps(320);

    /** Vector processor lanes (ReLU, pooling, joins, weight update). */
    int vectorLanes = 64;

    /** Dedicated transformation-unit throughput in MACs/cycle: the
     *  (inverse) Winograd transforms run in the communication engines'
     *  transformation units (Section VI-C), which are wider than the
     *  vector processor. */
    int transformLanes = 256;

    /** Double-buffered input SRAM (two 512 KiB instances). */
    size_t inputBufBytes = 512 * 1024;
    size_t outputBufBytes = 128 * 1024;

    /** Fixed per-task scheduling overhead (descriptor fetch, dependency
     *  counter check, DMA programming - Section VI-A), in seconds. */
    double taskOverheadSec = 0.5e-6;
};

} // namespace winomc::ndp

#endif // WINOMC_NDP_CONFIG_HH
