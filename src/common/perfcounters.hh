/**
 * @file
 * Hardware performance counters via perf_event_open.
 *
 * Wraps the four counters the roofline analysis needs — cycles,
 * instructions, LLC load misses, stalled backend cycles — behind a
 * per-thread, lazily opened counter set. The degradation ladder never
 * crashes a run:
 *
 *  1. Non-Linux builds compile a stub: available() is false, every
 *     Reading is invalid.
 *  2. perf_event_open refused (seccomp, perf_event_paranoid, no PMU):
 *     one warning, then permanently disabled for the process.
 *  3. Individual counters the PMU lacks (stalled-cycles-backend is
 *     often unimplemented) open as absent: their fields read 0 and the
 *     per-counter valid mask says so.
 *
 * Counters measure the CALLING THREAD only (pid=0, user mode). The
 * Winograd stage probes run on the thread that enters the stage, so
 * under a multi-threaded pool the counts cover that thread's share of
 * the work — cycles/instruction ratios and bytes/cycle stay
 * meaningful; absolute totals scale with 1/threads. DESIGN.md §4.13
 * discusses the trade-off.
 *
 * Usage: take a Reading before a region, publish the delta after:
 *
 *     perf::Reading r0 = perf::read();
 *     ... hot region ...
 *     perf::publishStage("wino.staged.fwd", r0);   // perf.<stage>.*
 */

#ifndef WINOMC_COMMON_PERFCOUNTERS_HH
#define WINOMC_COMMON_PERFCOUNTERS_HH

#include <cstdint>

namespace winomc::perf {

/** One cumulative (or differenced) counter reading. */
struct Reading
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t stalledBackend = 0;
    bool valid = false; ///< false: counters unavailable, fields are 0

    Reading
    operator-(const Reading &o) const
    {
        Reading d;
        d.valid = valid && o.valid;
        if (d.valid) {
            d.cycles = cycles - o.cycles;
            d.instructions = instructions - o.instructions;
            d.llcMisses = llcMisses - o.llcMisses;
            d.stalledBackend = stalledBackend - o.stalledBackend;
        }
        return d;
    }
};

/**
 * True when hardware counters work on this host. The first call
 * probes (opening a cycles counter); a refusal warns once and latches
 * false for the process.
 */
bool available();

/** Force-disable (tests exercising the degraded path). Irreversible
 *  within the process, like a real probe failure. */
void disable();

/** Cumulative counters of the calling thread since its first read().
 *  Invalid (all zeros) when unavailable. */
Reading read();

/**
 * Publish `read() - start` under metrics counters
 * perf.<stage>.{cycles,instructions,llc_misses,stalled_backend}.
 * No-op when metrics are disabled or the delta is invalid, so probes
 * cost one relaxed load on the disabled path.
 */
void publishStage(const char *stage, const Reading &start);

/** Typical LLC line size, for bytes/cycle estimates. */
constexpr std::uint64_t kCacheLineBytes = 64;

} // namespace winomc::perf

#endif // WINOMC_COMMON_PERFCOUNTERS_HH
