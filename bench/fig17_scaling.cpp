/**
 * @file
 * Figure 17: training throughput scaling at fixed total batch 256 for
 * the three Table I CNNs - the DGX-1-like multi-GPU system (1..8 V100s,
 * data parallelism) versus the NDP system (1..256 workers) under w_dp
 * and w_mp++; speedups normalized to a single NDP worker.
 */

#include <cstdio>

#include "common/table.hh"
#include "gpu/gpu_model.hh"
#include "mpt/network_sim.hh"
#include "workloads/networks.hh"

using namespace winomc;
using namespace winomc::mpt;

int
main()
{
    std::printf("Figure 17: fixed-batch-256 scaling, multi-GPU vs NDP\n"
                "\n");

    for (const auto &net : workloads::tableOneNetworks()) {
        std::printf("== %s (%s, %.1fM conv params) ==\n",
                    net.name.c_str(), net.dataset.c_str(),
                    double(net.paramCount()) / 1e6);

        Table gt("multi-GPU (data parallel, cuDNN Winograd, NCCL)");
        gt.header({"GPUs", "img/s", "scaling"});
        double gpu1 = 0.0;
        for (int g : {1, 2, 4, 8}) {
            auto r = gpu::simulateGpuTraining(net, g);
            if (g == 1)
                gpu1 = r.imagesPerSec;
            gt.row()
                .cell(int64_t(g))
                .cell(r.imagesPerSec, 0)
                .cell(r.imagesPerSec / gpu1, 2);
        }
        gt.print();

        SystemParams one;
        one.workers = 1;
        double base =
            simulateNetwork(net, Strategy::WinoDP, one).imagesPerSec;

        Table nt("NDP workers (speedup vs 1 NDP)");
        nt.header({"p", "w_dp img/s", "w_dp scal", "w_mp++ img/s",
                   "w_mp++ scal"});
        double dp256 = 0.0, pp256 = 0.0;
        for (int p : {1, 4, 16, 64, 256}) {
            SystemParams sp;
            sp.workers = p;
            auto dp = simulateNetwork(net, Strategy::WinoDP, sp);
            auto pp = simulateNetwork(net, Strategy::WinoMPTPredictDyn,
                                      sp);
            if (p == 256) {
                dp256 = dp.imagesPerSec;
                pp256 = pp.imagesPerSec;
            }
            nt.row()
                .cell(int64_t(p))
                .cell(dp.imagesPerSec, 0)
                .cell(dp.imagesPerSec / base, 1)
                .cell(pp.imagesPerSec, 0)
                .cell(pp.imagesPerSec / base, 1);
        }
        nt.print();

        auto g8 = gpu::simulateGpuTraining(net, 8);
        std::printf("w_mp++/w_dp at p=256: %.2fx   "
                    "NDP-256 w_mp++ vs 8-GPU: %.1fx\n\n",
                    pp256 / dp256, pp256 / g8.imagesPerSec);
    }

    std::printf("paper: 8-GPU scales sub-linearly at batch 256; "
                "w_mp++ 2.7x over w_dp at p=256 (71x vs 191x over one "
                "NDP); 21.6x over the 8-GPU system.\n");
    return 0;
}
