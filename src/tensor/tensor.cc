#include "tensor/tensor.hh"

#include <algorithm>
#include <cmath>

namespace winomc {

Tensor::Tensor(int n, int c, int h, int w) : dims{n, c, h, w}
{
    winomc_assert(n >= 0 && c >= 0 && h >= 0 && w >= 0,
                  "negative tensor dim");
    buf = ws::acquire(size_t(n) * c * h * w);
}

Tensor::Tensor(const Tensor &o)
    : dims{o.dims[0], o.dims[1], o.dims[2], o.dims[3]},
      buf(ws::acquire(o.buf.size()))
{
    std::copy(o.buf.begin(), o.buf.end(), buf.begin());
}

Tensor &
Tensor::operator=(const Tensor &o)
{
    if (this != &o) {
        for (int i = 0; i < 4; ++i)
            dims[i] = o.dims[i];
        ws::assignCopy(buf, o.buf);
    }
    return *this;
}

Tensor::Tensor(Tensor &&o) noexcept
    : dims{o.dims[0], o.dims[1], o.dims[2], o.dims[3]},
      buf(std::move(o.buf))
{
    for (int i = 0; i < 4; ++i)
        o.dims[i] = 0;
}

Tensor &
Tensor::operator=(Tensor &&o) noexcept
{
    if (this != &o) {
        ws::release(std::move(buf));
        buf = std::move(o.buf);
        for (int i = 0; i < 4; ++i) {
            dims[i] = o.dims[i];
            o.dims[i] = 0;
        }
    }
    return *this;
}

void
Tensor::reshape(int n, int c, int h, int w)
{
    winomc_assert(n >= 0 && c >= 0 && h >= 0 && w >= 0,
                  "negative tensor dim");
    const bool same = dims[0] == n && dims[1] == c && dims[2] == h &&
                      dims[3] == w;
    dims[0] = n;
    dims[1] = c;
    dims[2] = h;
    dims[3] = w;
    if (same)
        return;
    const size_t need = size_t(n) * c * h * w;
    if (buf.capacity() >= need) {
        buf.assign(need, 0.0f);
    } else {
        ws::release(std::move(buf));
        buf = ws::acquire(need);
    }
}

bool
Tensor::sameShape(const Tensor &o) const
{
    return dims[0] == o.dims[0] && dims[1] == o.dims[1] &&
           dims[2] == o.dims[2] && dims[3] == o.dims[3];
}

void
Tensor::fill(float v)
{
    std::fill(buf.begin(), buf.end(), v);
}

void
Tensor::fillUniform(Rng &rng, float lo, float hi)
{
    for (auto &v : buf)
        v = float(rng.uniform(lo, hi));
}

void
Tensor::fillGaussian(Rng &rng, float mean, float sigma)
{
    for (auto &v : buf)
        v = float(rng.gaussian(mean, sigma));
}

void
Tensor::fillKaiming(Rng &rng)
{
    double fan_in = double(dims[1]) * dims[2] * dims[3];
    double sigma = std::sqrt(2.0 / std::max(fan_in, 1.0));
    fillGaussian(rng, 0.0f, float(sigma));
}

Tensor &
Tensor::operator+=(const Tensor &o)
{
    winomc_assert(sameShape(o), "tensor += shape mismatch");
    for (size_t i = 0; i < buf.size(); ++i)
        buf[i] += o.buf[i];
    return *this;
}

Tensor &
Tensor::operator-=(const Tensor &o)
{
    winomc_assert(sameShape(o), "tensor -= shape mismatch");
    for (size_t i = 0; i < buf.size(); ++i)
        buf[i] -= o.buf[i];
    return *this;
}

Tensor &
Tensor::operator*=(float s)
{
    for (auto &v : buf)
        v *= s;
    return *this;
}

float
Tensor::absMax() const
{
    float m = 0.0f;
    for (auto v : buf)
        m = std::max(m, std::abs(v));
    return m;
}

float
Tensor::maxAbsDiff(const Tensor &o) const
{
    winomc_assert(sameShape(o), "maxAbsDiff shape mismatch");
    float m = 0.0f;
    for (size_t i = 0; i < buf.size(); ++i)
        m = std::max(m, std::abs(buf[i] - o.buf[i]));
    return m;
}

float
Tensor::stddev() const
{
    if (buf.empty())
        return 0.0f;
    double mean = 0.0;
    for (auto v : buf)
        mean += v;
    mean /= double(buf.size());
    double var = 0.0;
    for (auto v : buf)
        var += (v - mean) * (v - mean);
    return float(std::sqrt(var / double(buf.size())));
}

} // namespace winomc
