#include "memnet/collective.hh"

#include "common/logging.hh"

namespace winomc::memnet {

double
ringAllReduceTime(uint64_t bytes, int workers, const CollectiveConfig &cfg)
{
    winomc_assert(workers >= 1, "collective needs >= 1 worker");
    if (workers == 1 || bytes == 0)
        return 0.0;

    const double per_ring = double(bytes) / cfg.rings;
    const double n = double(workers);
    // Bandwidth term: reduce-scatter + all-gather move 2 (n-1)/n of the
    // message across every link of the ring.
    double bw_time = 2.0 * (n - 1.0) / n * per_ring / cfg.link.bandwidth;
    // Pipeline fill: 2 (n-1) chunk hops.
    double chunk_time = double(cfg.chunkBytes) / cfg.link.bandwidth +
                        cfg.link.hopLatencySec;
    return bw_time + 2.0 * (n - 1.0) * chunk_time;
}

uint64_t
ringAllReduceBytesPerWorker(uint64_t bytes, int workers)
{
    if (workers <= 1)
        return 0;
    double n = double(workers);
    return uint64_t(2.0 * (n - 1.0) / n * double(bytes));
}

} // namespace winomc::memnet
