#include "quant/predict.hh"

#include <array>
#include <cmath>

#include "common/logging.hh"

namespace winomc::quant {

namespace {
constexpr int kMaxAlpha = 8;
} // namespace

double
PredictStats::tileDeadActualRatio() const
{
    return tiles ? double(tilesDeadActual) / double(tiles) : 0.0;
}

double
PredictStats::tileDeadPredictedRatio() const
{
    return tiles ? double(tilesDeadPredicted) / double(tiles) : 0.0;
}

double
PredictStats::lineDeadActualRatio() const
{
    return lines ? double(linesDeadActual) / double(lines) : 0.0;
}

double
PredictStats::lineDeadPredictedRatio() const
{
    return lines ? double(linesDeadPredicted) / double(lines) : 0.0;
}

void
PredictStats::merge(const PredictStats &o)
{
    tiles += o.tiles;
    tilesDeadActual += o.tilesDeadActual;
    tilesDeadPredicted += o.tilesDeadPredicted;
    lines += o.lines;
    linesDeadActual += o.linesDeadActual;
    linesDeadPredicted += o.linesDeadPredicted;
    overflowTiles += o.overflowTiles;
    falseNegatives += o.falseNegatives;
}

ActivationPredictor::ActivationPredictor(const WinogradAlgo &algo_,
                                         NonUniformQuantizer quantizer,
                                         PredictMode mode)
    : algo(algo_), qz(quantizer), predictMode(mode)
{
    winomc_assert(algo.alpha <= kMaxAlpha, "alpha too large");
}

TilePrediction
ActivationPredictor::predictTile(const float *Y) const
{
    const int a = algo.alpha;
    const int m = algo.m;
    TilePrediction out;

    // ---- Exact spatial neurons (ground truth): y = AT * Y * A.
    std::array<double, kMaxAlpha * kMaxAlpha> exact{};
    {
        std::array<double, kMaxAlpha * kMaxAlpha> tmp{}; // AT*Y (m x a)
        for (int u = 0; u < m; ++u)
            for (int j = 0; j < a; ++j) {
                double acc = 0;
                for (int i = 0; i < a; ++i)
                    acc += algo.AT.at(u, i) * double(Y[i * a + j]);
                tmp[size_t(u * a + j)] = acc;
            }
        for (int u = 0; u < m; ++u)
            for (int v = 0; v < m; ++v) {
                double acc = 0;
                for (int j = 0; j < a; ++j)
                    acc += tmp[size_t(u * a + j)] * algo.A.at(j, v);
                exact[size_t(u * m + v)] = acc;
            }
    }

    // ---- Estimate + max positive error from quantized wire data.
    std::array<double, kMaxAlpha * kMaxAlpha> est{};
    std::array<double, kMaxAlpha * kMaxAlpha> errp{};
    bool overflow = false;

    if (predictMode == PredictMode::TwoD) {
        // Quantize every raw element; two-stage propagation.
        std::array<double, kMaxAlpha * kMaxAlpha> q{}, res{};
        for (int k = 0; k < a * a; ++k) {
            Quantized z = qz.quantize(Y[k]);
            overflow = overflow || z.overflow;
            q[size_t(k)] = z.q;
            res[size_t(k)] = z.res;
        }
        // Stage 1 (rows, coefficients AT): estimate and +/- error.
        std::array<double, kMaxAlpha * kMaxAlpha> t{}, tpos{}, tneg{};
        for (int u = 0; u < m; ++u) {
            for (int j = 0; j < a; ++j) {
                double e = 0, p = 0, n = 0;
                for (int i = 0; i < a; ++i) {
                    double c = algo.AT.at(u, i);
                    e += c * q[size_t(i * a + j)];
                    if (c > 0)
                        p += c * res[size_t(i * a + j)];
                    else
                        n += c * res[size_t(i * a + j)];
                }
                t[size_t(u * a + j)] = e;
                tpos[size_t(u * a + j)] = p;
                tneg[size_t(u * a + j)] = n;
            }
        }
        // Stage 2 (columns, coefficients A): positive error couples the
        // sign of the coefficient with the +/- stage-1 bounds.
        for (int u = 0; u < m; ++u) {
            for (int v = 0; v < m; ++v) {
                double e = 0, p = 0;
                for (int j = 0; j < a; ++j) {
                    double c = algo.A.at(j, v);
                    e += c * t[size_t(u * a + j)];
                    p += c * (c > 0 ? tpos[size_t(u * a + j)]
                                    : tneg[size_t(u * a + j)]);
                }
                est[size_t(u * m + v)] = e;
                errp[size_t(u * m + v)] = p;
            }
        }
    } else {
        // 1D predict: the source owning row i computes z[i][v] =
        // sum_j Y[i][j] A[j][v] exactly, then quantizes z.
        std::array<double, kMaxAlpha * kMaxAlpha> zq{}, zres{};
        for (int i = 0; i < a; ++i) {
            for (int v = 0; v < m; ++v) {
                double z = 0;
                for (int j = 0; j < a; ++j)
                    z += double(Y[i * a + j]) * algo.A.at(j, v);
                Quantized c = qz.quantize(float(z));
                overflow = overflow || c.overflow;
                zq[size_t(i * m + v)] = c.q;
                zres[size_t(i * m + v)] = c.res;
            }
        }
        // Destination: y[u][v] = sum_i AT[u][i] z[i][v]; one error stage.
        for (int u = 0; u < m; ++u) {
            for (int v = 0; v < m; ++v) {
                double e = 0, p = 0;
                for (int i = 0; i < a; ++i) {
                    double c = algo.AT.at(u, i);
                    e += c * zq[size_t(i * m + v)];
                    if (c > 0)
                        p += c * zres[size_t(i * m + v)];
                }
                est[size_t(u * m + v)] = e;
                errp[size_t(u * m + v)] = p;
            }
        }
    }

    // ---- Classify.
    out.overflow = overflow;
    bool all_dead_actual = true;
    bool all_dead_pred = true;
    for (int v = 0; v < m; ++v) {
        bool line_dead_actual = true;
        bool line_dead_pred = true;
        for (int u = 0; u < m; ++u) {
            bool dead = exact[size_t(u * m + v)] <= 0.0;
            bool pred = !overflow &&
                        est[size_t(u * m + v)] + errp[size_t(u * m + v)]
                            <= 0.0;
            if (pred && !dead)
                out.falseNegative = true;
            line_dead_actual = line_dead_actual && dead;
            line_dead_pred = line_dead_pred && pred;
            all_dead_actual = all_dead_actual && dead;
            all_dead_pred = all_dead_pred && pred;
        }
        out.linesDeadActual += line_dead_actual ? 1 : 0;
        out.linesDeadPredicted += line_dead_pred ? 1 : 0;
    }
    out.tileDeadActual = all_dead_actual;
    out.tileDeadPredicted = all_dead_pred;
    return out;
}

PredictStats
ActivationPredictor::run(const WinoTiles &Y) const
{
    const int a = algo.alpha;
    winomc_assert(Y.alphaEdge() == a, "tile size mismatch");
    PredictStats st;
    std::array<float, kMaxAlpha * kMaxAlpha> buf{};

    for (int c = 0; c < Y.channels(); ++c) {
        for (int b = 0; b < Y.batch(); ++b) {
            for (int t = 0; t < Y.tiles(); ++t) {
                for (int uv = 0; uv < a * a; ++uv)
                    buf[size_t(uv)] = Y.at(uv, c, b, t);
                TilePrediction p = predictTile(buf.data());
                ++st.tiles;
                st.tilesDeadActual += p.tileDeadActual ? 1 : 0;
                st.tilesDeadPredicted += p.tileDeadPredicted ? 1 : 0;
                st.lines += uint64_t(algo.m);
                st.linesDeadActual += uint64_t(p.linesDeadActual);
                st.linesDeadPredicted += uint64_t(p.linesDeadPredicted);
                st.overflowTiles += p.overflow ? 1 : 0;
                if (p.falseNegative)
                    ++st.falseNegatives;
            }
        }
    }
    return st;
}

double
ActivationPredictor::wireSigma(const WinoTiles &Y, const WinogradAlgo &algo,
                               PredictMode mode)
{
    const int a = algo.alpha;
    double sum = 0, sum2 = 0;
    uint64_t n = 0;

    for (int c = 0; c < Y.channels(); ++c) {
        for (int b = 0; b < Y.batch(); ++b) {
            for (int t = 0; t < Y.tiles(); ++t) {
                if (mode == PredictMode::TwoD) {
                    for (int uv = 0; uv < a * a; ++uv) {
                        double v = Y.at(uv, c, b, t);
                        sum += v;
                        sum2 += v * v;
                        ++n;
                    }
                } else {
                    for (int i = 0; i < a; ++i) {
                        for (int v = 0; v < algo.m; ++v) {
                            double z = 0;
                            for (int j = 0; j < a; ++j)
                                z += double(Y.at(i * a + j, c, b, t)) *
                                     algo.A.at(j, v);
                            sum += z;
                            sum2 += z * z;
                            ++n;
                        }
                    }
                }
            }
        }
    }
    if (n == 0)
        return 1.0;
    double mean = sum / double(n);
    double var = sum2 / double(n) - mean * mean;
    return var > 1e-30 ? std::sqrt(var) : 1.0;
}

} // namespace winomc::quant
