#include "mpt/network_sim.hh"

#include "common/logging.hh"
#include "mpt/task_graph.hh"

namespace winomc::mpt {

NetworkResult
simulateNetwork(const workloads::NetworkSpec &net, Strategy strategy,
                const SystemParams &params)
{
    winomc_assert(!net.layers.empty(), "empty network");

    NetworkResult res;
    res.layers.reserve(net.layers.size());
    for (const auto &spec : net.layers) {
        res.layers.push_back(simulateLayer(spec, strategy, params));
        res.energy += res.layers.back().totalEnergy();
    }

    // Section VI-A task graph of one training iteration.
    constexpr int kCompute = 0;
    constexpr int kRing = 1;
    TaskGraph graph;
    const int n = int(net.layers.size());
    std::vector<TaskId> fwd(size_t(n), -1);
    std::vector<TaskId> bprop(size_t(n), -1);
    std::vector<TaskId> ugrad(size_t(n), -1);
    std::vector<TaskId> coll(size_t(n), -1);

    for (int l = 0; l < n; ++l) {
        const LayerResult &lr = res.layers[size_t(l)];
        fwd[size_t(l)] = graph.addTask("fwd_" + net.layers[size_t(l)].name,
                                       lr.fwd.seconds, kCompute);
        if (l > 0)
            graph.addDependency(fwd[size_t(l - 1)], fwd[size_t(l)]);
    }
    for (int l = n - 1; l >= 0; --l) {
        const LayerResult &lr = res.layers[size_t(l)];
        const std::string &nm = net.layers[size_t(l)].name;
        bprop[size_t(l)] = graph.addTask("bprop_" + nm, lr.bpropSeconds,
                                         kCompute);
        graph.addDependency(l == n - 1 ? fwd[size_t(n - 1)]
                                       : bprop[size_t(l + 1)],
                            bprop[size_t(l)]);
        ugrad[size_t(l)] = graph.addTask("ugrad_" + nm,
                                         lr.ugradComputeSeconds,
                                         kCompute);
        graph.addDependency(bprop[size_t(l)], ugrad[size_t(l)]);
        if (lr.collectiveSeconds > 0.0) {
            coll[size_t(l)] = graph.addTask("coll_" + nm,
                                            lr.collectiveSeconds, kRing);
            graph.addDependency(ugrad[size_t(l)], coll[size_t(l)]);
        }
    }

    res.iterationSeconds = graph.simulate();
    res.fwdSeconds = graph.finishTime(fwd[size_t(n - 1)]);
    res.imagesPerSec = net.layers.front().batch / res.iterationSeconds;
    res.averagePowerWatts =
        res.iterationSeconds > 0.0
            ? res.energy.total() / res.iterationSeconds
            : 0.0;
    return res;
}

} // namespace winomc::mpt
