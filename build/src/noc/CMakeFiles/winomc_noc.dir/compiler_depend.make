# Empty compiler generated dependencies file for winomc_noc.
# This may be replaced when dependencies are built.
