/**
 * @file
 * Timing model of the NDP computation units (Section VI-B).
 *
 * Systolic array: an (M x K) * (K x N) matrix multiplication tiles into
 * ceil(M/S) * ceil(N/S) output blocks; each block streams K partial
 * sums, with fill/drain overlapped across blocks by the double-buffered
 * weight-stationary dataflow. One side of the array is fed from the
 * on-chip buffer, the other streams from DRAM in the worst case, so the
 * effective time is the maximum of the compute time and the DRAM stream
 * time (double buffering overlaps them).
 */

#ifndef WINOMC_NDP_TIMING_HH
#define WINOMC_NDP_TIMING_HH

#include <cstdint>

#include "ndp/config.hh"

namespace winomc::ndp {

/** Cycles for the systolic array to compute (M x K) * (K x N). */
uint64_t systolicCycles(const NdpConfig &cfg, uint64_t m, uint64_t k,
                        uint64_t n);

/** Seconds for the systolic array to compute (M x K) * (K x N). */
double systolicTime(const NdpConfig &cfg, uint64_t m, uint64_t k,
                    uint64_t n);

/** Useful-MAC fraction of the systolic array over that computation:
 *  m*k*n MACs / (cycles x S x S PE slots), in (0, 1]. Ragged edge
 *  blocks and the fill/drain term are what it loses. */
double systolicUtilization(const NdpConfig &cfg, uint64_t m, uint64_t k,
                           uint64_t n);

/** Seconds for the vector unit to run `ops` lane-operations. */
double vectorTime(const NdpConfig &cfg, uint64_t ops);

/** Seconds for the transformation units to run `macs` operations. */
double transformTime(const NdpConfig &cfg, uint64_t macs);

/** Seconds to stream `bytes` to/from stacked DRAM. */
double dramTime(const NdpConfig &cfg, uint64_t bytes);

/**
 * Seconds for one double-buffered task: compute overlapped with its
 * DRAM traffic, plus the task-scheduling overhead.
 */
double overlappedTaskTime(const NdpConfig &cfg, double compute_sec,
                          uint64_t dram_bytes);

} // namespace winomc::ndp

#endif // WINOMC_NDP_TIMING_HH
