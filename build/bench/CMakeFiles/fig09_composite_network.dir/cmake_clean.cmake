file(REMOVE_RECURSE
  "CMakeFiles/fig09_composite_network.dir/fig09_composite_network.cpp.o"
  "CMakeFiles/fig09_composite_network.dir/fig09_composite_network.cpp.o.d"
  "fig09_composite_network"
  "fig09_composite_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_composite_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
