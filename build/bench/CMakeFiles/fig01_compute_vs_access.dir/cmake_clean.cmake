file(REMOVE_RECURSE
  "CMakeFiles/fig01_compute_vs_access.dir/fig01_compute_vs_access.cpp.o"
  "CMakeFiles/fig01_compute_vs_access.dir/fig01_compute_vs_access.cpp.o.d"
  "fig01_compute_vs_access"
  "fig01_compute_vs_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_compute_vs_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
