/**
 * @file
 * Dynamic-clustering optimizer (Section IV): per layer, evaluate the
 * available (N_g, N_c) configurations and pick the one minimizing the
 * iteration time. Neural networks have fixed layer structure, so the
 * choice is precomputed once; reconfiguration between layers only
 * reroutes traffic through the host and costs no data movement.
 */

#ifndef WINOMC_MPT_CLUSTERING_HH
#define WINOMC_MPT_CLUSTERING_HH

#include <vector>

#include "mpt/layer_sim.hh"

namespace winomc::mpt {

struct ClusteringChoice
{
    memnet::ClusterShape shape{1, 1};
    double seconds = 0.0;       ///< layer iteration time
    double commBytesPerWorker = 0.0;
};

/**
 * Evaluate every available configuration for a layer (prediction on,
 * as in w_mp++). Sorted fastest-first.
 */
std::vector<ClusteringChoice> evaluateShapes(const ConvSpec &spec,
                                             const SystemParams &params);

/** The shape dynamic clustering selects for this layer. */
memnet::ClusterShape chooseShape(const ConvSpec &spec,
                                 const SystemParams &params);

} // namespace winomc::mpt

#endif // WINOMC_MPT_CLUSTERING_HH
