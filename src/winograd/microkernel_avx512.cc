/**
 * @file
 * AVX-512F micro-kernel TU. CMake compiles this file with -mavx512f
 * and defines WINOMC_HAVE_MK_AVX512 when the compiler accepts the flag
 * on an x86 target; the code is only *executed* after the runtime
 * cpuid check in microkernel.cc, so the binary stays runnable on
 * hosts without AVX-512 (CI builds this TU even on runners that
 * cannot execute it).
 */

#include "winograd/microkernel.hh"

#if defined(WINOMC_HAVE_MK_AVX512)

#include "common/simd.hh"

static_assert(WINOMC_SIMD_LEVEL >= 3,
              "AVX-512 TU compiled without -mavx512f");

#include "winograd/microkernel_impl.hh"

WINOMC_MK_DEFINE_TABLE(avx512Table, Isa::Avx512, "avx512")

#else

namespace winomc::mk::detail {

const MicroKernels *
avx512Table()
{
    return nullptr;
}

} // namespace winomc::mk::detail

#endif
