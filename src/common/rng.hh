/**
 * @file
 * Deterministic random number generation used across the library.
 *
 * Every stochastic component takes an explicit Rng (or seed) so that all
 * experiments are reproducible run-to-run.
 */

#ifndef WINOMC_COMMON_RNG_HH
#define WINOMC_COMMON_RNG_HH

#include <cstdint>
#include <random>

namespace winomc {

/**
 * Thin wrapper around a 64-bit Mersenne twister with convenience
 * distributions. Copyable; copies diverge independently.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed'c0de'f00dULL) : engine(seed) {}

    /** Uniform double in [0, 1). */
    double uniform() { return unit(engine); }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        return std::uniform_int_distribution<int64_t>(lo, hi)(engine);
    }

    /** Normal with the given mean / standard deviation. */
    double
    gaussian(double mean = 0.0, double sigma = 1.0)
    {
        return std::normal_distribution<double>(mean, sigma)(engine);
    }

    /** Bernoulli with probability p of true. */
    bool coin(double p = 0.5) { return uniform() < p; }

    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
    std::uniform_real_distribution<double> unit{0.0, 1.0};
};

} // namespace winomc

#endif // WINOMC_COMMON_RNG_HH
