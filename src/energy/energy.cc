#include "energy/energy.hh"

#include <cstdio>

namespace winomc::energy {

std::string
EnergyBreakdown::toString() const
{
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "compute %.3g J, sram %.3g J, dram %.3g J, link %.3g J"
                  " (%.0f%% idle; total %.3g J)",
                  computeJ, sramJ, dramJ, linkJ,
                  linkJ > 0.0 ? 100.0 * linkIdleJ / linkJ : 0.0,
                  total());
    return buf;
}

double
EnergyModel::macsEnergy(uint64_t mults, uint64_t adds) const
{
    return (double(mults) * params.fp32MulPj +
            double(adds) * params.fp32AddPj) * 1e-12;
}

double
EnergyModel::sramEnergy(uint64_t bytes) const
{
    return double(bytes) * params.sramPjPerByte * 1e-12;
}

double
EnergyModel::dramEnergy(uint64_t bytes) const
{
    return double(bytes) * params.dramPjPerByte * 1e-12;
}

double
EnergyModel::linkDynamicEnergy(uint64_t bytes) const
{
    return double(bytes) * params.linkPjPerByte * 1e-12;
}

double
EnergyModel::linkIdleEnergy(int full_links, int narrow_links,
                            double seconds) const
{
    return (full_links * params.fullLinkIdleWatts +
            narrow_links * params.narrowLinkIdleWatts) * seconds;
}

} // namespace winomc::energy
