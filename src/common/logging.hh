/**
 * @file
 * Status/error reporting in the gem5 style.
 *
 * panic()  - internal invariant violated; a winomc bug. Aborts.
 * fatal()  - the user asked for something impossible (bad config). Exits.
 * warn()   - something works but not as well as it should.
 * inform() - normal status output.
 */

#ifndef WINOMC_COMMON_LOGGING_HH
#define WINOMC_COMMON_LOGGING_HH

#include <cstdio>
#include <sstream>
#include <string>

namespace winomc {

namespace detail {

/** Append all args, stream-formatted, to one string. */
template <typename... Args>
std::string
concatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Global verbosity: 0 = silent, 1 = warn, 2 = inform (default). */
void setLogLevel(int level);
int logLevel();

} // namespace winomc

/** Abort: something that should never happen happened (a winomc bug). */
#define winomc_panic(...)                                                    \
    ::winomc::detail::panicImpl(__FILE__, __LINE__,                          \
        ::winomc::detail::concatMessage(__VA_ARGS__))

/** Exit(1): the simulation cannot continue due to a user/config error. */
#define winomc_fatal(...)                                                    \
    ::winomc::detail::fatalImpl(__FILE__, __LINE__,                          \
        ::winomc::detail::concatMessage(__VA_ARGS__))

/** Non-fatal: functionality may be degraded. */
#define winomc_warn(...)                                                     \
    ::winomc::detail::warnImpl(::winomc::detail::concatMessage(__VA_ARGS__))

/** Normal status message. */
#define winomc_inform(...)                                                   \
    ::winomc::detail::informImpl(                                            \
        ::winomc::detail::concatMessage(__VA_ARGS__))

/** Assert an internal invariant; compiled in all build types. */
#define winomc_assert(cond, ...)                                             \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::winomc::detail::panicImpl(__FILE__, __LINE__,                  \
                ::winomc::detail::concatMessage("assertion '" #cond          \
                    "' failed. ", ##__VA_ARGS__));                           \
        }                                                                    \
    } while (0)

#endif // WINOMC_COMMON_LOGGING_HH
