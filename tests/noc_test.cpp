/**
 * @file
 * Tests for the flit-level network simulator: topology wiring
 * invariants, routing minimality, flit conservation, latency semantics,
 * bandwidth saturation, and deadlock freedom under load.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/metrics.hh"

#include "noc/memcentric.hh"
#include "noc/network.hh"
#include "noc/topology.hh"
#include "noc/traffic.hh"

namespace winomc::noc {
namespace {

// ---------------------------------------------------------- Topologies

/// Wiring involution: the link through (node, port) comes back through
/// (neighbor, peerPort).
void
checkWiring(const Topology &t)
{
    for (int node = 0; node < t.nodes(); ++node) {
        for (int port = 0; port < t.ports(); ++port) {
            int peer = t.neighbor(node, port);
            if (peer < 0)
                continue;
            int back = t.peerPort(node, port);
            EXPECT_EQ(t.neighbor(peer, back), node)
                << t.name() << " node " << node << " port " << port;
            EXPECT_EQ(t.peerPort(peer, back), port)
                << t.name() << " node " << node << " port " << port;
        }
    }
}

TEST(Topology, RingWiring)
{
    RingTopology t(8);
    checkWiring(t);
    EXPECT_EQ(t.neighbor(7, 0), 0);
    EXPECT_EQ(t.neighbor(0, 1), 7);
}

TEST(Topology, FbflyWiring)
{
    FlatButterfly2D t(4);
    checkWiring(t);
    EXPECT_EQ(t.nodes(), 16);
    EXPECT_EQ(t.ports(), 6);
}

TEST(Topology, CliqueWiring)
{
    FullyConnected t(4);
    checkWiring(t);
    EXPECT_EQ(t.ports(), 3);
}

TEST(Topology, RingRoutesMinimally)
{
    RingTopology t(10);
    for (int s = 0; s < 10; ++s) {
        for (int d = 0; d < 10; ++d) {
            if (s == d)
                continue;
            int fwd = (d - s + 10) % 10;
            int expect = std::min(fwd, 10 - fwd);
            EXPECT_EQ(t.hopCount(s, d), expect) << s << "->" << d;
        }
    }

}

TEST(Topology, FbflyMaxTwoHops)
{
    FlatButterfly2D t(4);
    for (int s = 0; s < t.nodes(); ++s) {
        for (int d = 0; d < t.nodes(); ++d) {
            if (s != d) {
                EXPECT_LE(t.hopCount(s, d), 2) << s << "->" << d;
            }
        }
    }
}

TEST(Topology, CliqueSingleHop)
{
    FullyConnected t(6);
    for (int s = 0; s < 6; ++s) {
        for (int d = 0; d < 6; ++d) {
            if (s != d) {
                EXPECT_EQ(t.hopCount(s, d), 1);
            }
        }
    }
}

TEST(Topology, RingDatelineVcSwitch)
{
    RingTopology t(8);
    EXPECT_EQ(t.nextVc(7, 0, 0), 1); // crossing 7 -> 0
    EXPECT_EQ(t.nextVc(0, 1, 0), 1); // crossing 0 -> 7
    EXPECT_EQ(t.nextVc(3, 0, 0), 0);
    EXPECT_EQ(t.nextVc(3, 1, 1), 1); // stays on high VC once switched
}

// ------------------------------------------------------------- Network

NocConfig
smallCfg()
{
    NocConfig cfg;
    cfg.vcs = 2;
    cfg.bufferDepth = 32;
    cfg.hopLatency = 7;
    cfg.flitBytes = 30;
    return cfg;
}

TEST(Network, SinglePacketLatencyMatchesHops)
{
    auto net = Network(std::make_unique<RingTopology>(8), smallCfg());
    net.offerPacket(0, 2, 30); // one flit, 2 hops
    ASSERT_TRUE(net.drain(1000));
    const PacketInfo &p = net.packet(0);
    EXPECT_TRUE(p.done);
    // inject cycle + 2 hops * hopLatency + egress grant cycles; the
    // exact pipeline adds a couple of arbitration cycles.
    Tick lat = p.ejected - p.injected;
    EXPECT_GE(lat, Tick(2 * 7));
    EXPECT_LE(lat, Tick(2 * 7 + 6));
}

TEST(Network, MultiFlitPacketSerializes)
{
    auto net = Network(std::make_unique<RingTopology>(8), smallCfg());
    net.offerPacket(0, 1, 256); // ceil(256/30) = 9 flits, 1 hop
    ASSERT_TRUE(net.drain(1000));
    Tick lat = net.packet(0).ejected - net.packet(0).injected;
    // Head needs ~hopLatency; the other 8 flits pipeline at 1/cycle.
    EXPECT_GE(lat, Tick(7 + 8));
}

TEST(Network, AllPacketsDeliveredUniformTraffic)
{
    auto net = Network(std::make_unique<FlatButterfly2D>(4), smallCfg());
    Rng rng(5);
    int sent = 0;
    for (int k = 0; k < 500; ++k) {
        int s = int(rng.uniformInt(0, 15));
        int d = int(rng.uniformInt(0, 14));
        if (d >= s)
            ++d;
        net.offerPacket(s, d, 64);
        ++sent;
    }
    ASSERT_TRUE(net.drain(100000));
    EXPECT_EQ(net.ejectedCount(), uint64_t(sent));
    EXPECT_EQ(net.flitsInFlight(), 0u);
}

TEST(Network, RingHeavyLoadDrainsNoDeadlock)
{
    // All-to-all on a ring under heavy load exercises the dateline VCs.
    auto net = Network(std::make_unique<RingTopology>(16), smallCfg());
    Rng rng(6);
    int sent = 0;
    for (int k = 0; k < 2000; ++k) {
        int s = int(rng.uniformInt(0, 15));
        int d = int(rng.uniformInt(0, 14));
        if (d >= s)
            ++d;
        net.offerPacket(s, d, 128);
        ++sent;
    }
    ASSERT_TRUE(net.drain(500000)) << "possible deadlock";
    EXPECT_EQ(net.ejectedCount(), uint64_t(sent));
}

TEST(Network, NeighborRingSustainsNearFullBandwidth)
{
    auto net = Network(std::make_unique<RingTopology>(8), smallCfg());
    Rng rng(7);
    LoadPoint pt = measureLoadPoint(net, ringNeighbor(8), 0.9, 256, 2000,
                                    6000, rng);
    // Neighbor traffic uses disjoint links; ~0.9 flits/node/cycle must
    // be deliverable.
    EXPECT_GT(pt.accepted, 0.8);
    EXPECT_FALSE(pt.saturated);
}

TEST(Network, UniformRingSaturatesBeyondBisection)
{
    // Uniform on a ring saturates near 8/n = 0.5 flits/node/cycle for
    // n=16 (theoretical capacity 4/ (n/4)... conservatively below 0.9).
    auto net = Network(std::make_unique<RingTopology>(16), smallCfg());
    Rng rng(8);
    LoadPoint pt = measureLoadPoint(net, uniformRandom(16), 0.9, 64,
                                    2000, 6000, rng);
    EXPECT_LT(pt.accepted, 0.75);
}

TEST(Network, FbflyUniformOutperformsRingUniform)
{
    Rng rng_a(9), rng_b(9);
    auto ring = Network(std::make_unique<RingTopology>(16), smallCfg());
    auto fbfly = Network(std::make_unique<FlatButterfly2D>(4),
                         smallCfg());
    LoadPoint pr = measureLoadPoint(ring, uniformRandom(16), 0.7, 64,
                                    2000, 5000, rng_a);
    LoadPoint pf = measureLoadPoint(fbfly, uniformRandom(16), 0.7, 64,
                                    2000, 5000, rng_b);
    EXPECT_GT(pf.accepted, pr.accepted);
    EXPECT_LT(pf.avgLatency, pr.avgLatency);
}

TEST(Network, LatencyRisesWithLoad)
{
    Rng rng_a(10), rng_b(10);
    auto low = Network(std::make_unique<FlatButterfly2D>(4), smallCfg());
    auto high = Network(std::make_unique<FlatButterfly2D>(4), smallCfg());
    LoadPoint pl = measureLoadPoint(low, uniformRandom(16), 0.05, 64,
                                    2000, 5000, rng_a);
    LoadPoint ph = measureLoadPoint(high, uniformRandom(16), 0.6, 64,
                                    2000, 5000, rng_b);
    EXPECT_GT(ph.avgLatency, pl.avgLatency);
}

// ------------------------------------------- Stats and conservation

/// Drive uniform traffic, checking offered == ejected + in-flight at
/// arbitrary mid-flight cycles and after the drain, on every topology.
void
checkConservation(std::unique_ptr<Topology> topo, int nodes)
{
    Network net(std::move(topo), smallCfg());
    Rng rng(11);
    for (int burst = 0; burst < 10; ++burst) {
        for (int k = 0; k < 40; ++k) {
            int s = int(rng.uniformInt(0, nodes - 1));
            int d = int(rng.uniformInt(0, nodes - 2));
            if (d >= s)
                ++d;
            net.offerPacket(s, d, int(rng.uniformInt(1, 200)));
        }
        net.run(17); // deliberately mid-flight
        EXPECT_EQ(net.offeredFlitCount(),
                  net.ejectedFlitCount() + net.flitsInFlight())
            << net.topology().name() << " burst " << burst;
    }
    ASSERT_TRUE(net.drain(500000)) << net.topology().name();
    EXPECT_EQ(net.flitsInFlight(), 0u);
    EXPECT_EQ(net.offeredFlitCount(), net.ejectedFlitCount())
        << net.topology().name();
    EXPECT_GT(net.offeredFlitCount(), 0u);
}

TEST(NetworkStats, FlitConservationRing)
{
    checkConservation(std::make_unique<RingTopology>(16), 16);
}

TEST(NetworkStats, FlitConservationFbfly)
{
    checkConservation(std::make_unique<FlatButterfly2D>(4), 16);
}

TEST(NetworkStats, FlitConservationClique)
{
    checkConservation(std::make_unique<FullyConnected>(8), 8);
}

/// Every per-link utilization lies in [0, 1] (one flit per link per
/// cycle), the mean never exceeds the max, and injection/ejection
/// rates stay within the injection-lane budget.
TEST(NetworkStats, UtilizationBounded)
{
    NocConfig cfg = smallCfg();
    cfg.sampleOccupancy = true;
    Network net(std::make_unique<RingTopology>(16), cfg);
    Rng rng(12);
    measureLoadPoint(net, uniformRandom(16), 0.8, 64, 1000, 3000, rng);

    const Topology &t = net.topology();
    double max_seen = 0.0;
    for (int node = 0; node < t.nodes(); ++node) {
        for (int port = 0; port < t.ports(); ++port) {
            double u = net.linkUtilization(node, port);
            EXPECT_GE(u, 0.0);
            EXPECT_LE(u, 1.0) << "node " << node << " port " << port;
            max_seen = std::max(max_seen, u);
        }
        EXPECT_GE(net.injectionRate(node), 0.0);
        EXPECT_LE(net.injectionRate(node), double(cfg.injectionLanes));
        EXPECT_GE(net.ejectionRate(node), 0.0);
        EXPECT_LE(net.ejectionRate(node), double(cfg.injectionLanes));
    }
    EXPECT_DOUBLE_EQ(net.maxLinkUtilization(), max_seen);
    EXPECT_GT(net.maxLinkUtilization(), 0.0);
    EXPECT_LE(net.meanLinkUtilization(), net.maxLinkUtilization());
    EXPECT_GT(net.occupancyHistogram().count(), 0u);
}

/// resetStats() zeroes the window (latency, links, stalls, occupancy)
/// but the lifetime conservation counters survive and the invariant
/// keeps holding afterwards.
TEST(NetworkStats, ResetStatsKeepsConservationCounters)
{
    NocConfig cfg = smallCfg();
    cfg.sampleOccupancy = true;
    Network net(std::make_unique<RingTopology>(8), cfg);
    Rng rng(13);
    for (int k = 0; k < 200; ++k) {
        int s = int(rng.uniformInt(0, 7));
        int d = int(rng.uniformInt(0, 6));
        if (d >= s)
            ++d;
        net.offerPacket(s, d, 64);
    }
    net.run(300);
    const uint64_t offered = net.offeredFlitCount();
    const uint64_t ejected_before = net.ejectedFlitCount();
    ASSERT_GT(net.creditStallCount() + net.holBlockCount(), 0u);

    net.resetStats();
    EXPECT_EQ(net.statsElapsed(), Tick(0));
    EXPECT_EQ(net.creditStallCount(), 0u);
    EXPECT_EQ(net.holBlockCount(), 0u);
    EXPECT_DOUBLE_EQ(net.maxLinkUtilization(), 0.0);
    EXPECT_EQ(net.latencyStats().count(), 0u);
    EXPECT_EQ(net.occupancyHistogram().count(), 0u);
    // Lifetime counters are simulation state, not window state.
    EXPECT_EQ(net.offeredFlitCount(), offered);
    EXPECT_EQ(net.ejectedFlitCount(), ejected_before);
    EXPECT_EQ(net.offeredFlitCount(),
              net.ejectedFlitCount() + net.flitsInFlight());

    // A fresh batch accumulates into the new window on top of the
    // surviving lifetime counters.
    for (int k = 0; k < 50; ++k) {
        int s = int(rng.uniformInt(0, 7));
        net.offerPacket(s, (s + 1 + int(rng.uniformInt(0, 6))) % 8, 64);
    }
    ASSERT_TRUE(net.drain(100000));
    EXPECT_EQ(net.offeredFlitCount(), net.ejectedFlitCount());
    EXPECT_GT(net.offeredFlitCount(), offered);
    EXPECT_GT(net.maxLinkUtilization(), 0.0); // new window accumulated
}

/// exportMetrics() lands the conservation counters and bounded gauges
/// in the registry under the requested prefix.
TEST(NetworkStats, ExportMetricsMatchesAccessors)
{
    const bool was = metrics::enabled();
    metrics::setEnabled(true);
    metrics::reset();

    NocConfig cfg = smallCfg();
    cfg.sampleOccupancy = true;
    Network net(std::make_unique<FlatButterfly2D>(4), cfg);
    Rng rng(14);
    measureLoadPoint(net, uniformRandom(16), 0.4, 64, 500, 2000, rng);
    net.exportMetrics("t.noc");

    auto snap = metrics::snapshot();
    auto get = [&](const char *name) -> const metrics::Sample * {
        for (const auto &s : snap)
            if (s.name == name)
                return &s;
        return nullptr;
    };
    const auto *off = get("t.noc.flits_offered");
    ASSERT_NE(off, nullptr);
    EXPECT_DOUBLE_EQ(off->value, double(net.offeredFlitCount()));
    const auto *ej = get("t.noc.flits_ejected");
    ASSERT_NE(ej, nullptr);
    EXPECT_DOUBLE_EQ(ej->value, double(net.ejectedFlitCount()));
    const auto *util = get("t.noc.link_util_max");
    ASSERT_NE(util, nullptr);
    EXPECT_DOUBLE_EQ(util->value, net.maxLinkUtilization());
    const auto *occ = get("t.noc.router_occupancy");
    ASSERT_NE(occ, nullptr);
    EXPECT_EQ(occ->kind, metrics::Kind::Histogram);
    EXPECT_EQ(occ->count, net.occupancyHistogram().count());

    metrics::reset();
    metrics::setEnabled(was);
}

// ------------------------------------------------ MemCentricTopology

TEST(MemCentric, WiringInvolution)
{
    MemCentricTopology t(16, 16);
    EXPECT_EQ(t.nodes(), 257);
    checkWiring(t);
}

TEST(MemCentric, SmallConfigWiring)
{
    MemCentricTopology t(4, 4);
    EXPECT_EQ(t.nodes(), 17);
    checkWiring(t);
}

TEST(MemCentric, GroupRingAndClusterButterflyHops)
{
    MemCentricTopology t(16, 16);
    // Same group: ring distance.
    EXPECT_EQ(t.hopCount(t.workerAt(3, 0), t.workerAt(3, 5)), 5);
    EXPECT_EQ(t.hopCount(t.workerAt(3, 0), t.workerAt(3, 12)), 4);
    // Same cluster (same index): <= 2 butterfly hops.
    for (int g = 1; g < 16; ++g)
        EXPECT_LE(t.hopCount(t.workerAt(0, 7), t.workerAt(g, 7)), 2);
    // General case: ring (<= 8) then butterfly (<= 2).
    for (int s : {0, 37, 200}) {
        for (int d : {255, 129, 3}) {
            if (s == d)
                continue;
            EXPECT_LE(t.hopCount(s, d), 10) << s << "->" << d;
        }
    }
}

TEST(MemCentric, HostReachableFromEverywhere)
{
    MemCentricTopology t(16, 16);
    for (int w : {0, 15, 137, 255}) {
        // Worker -> host: ring to the group head (<= 8) + 1.
        EXPECT_LE(t.hopCount(w, t.hostNode()), 9);
        // Host -> worker: host link + ring.
        EXPECT_LE(t.hopCount(t.hostNode(), w), 9);
    }
}

TEST(MemCentric, MptTrafficDrains)
{
    // Simultaneous ring-neighbor (collective) and intra-cluster
    // all-to-all (tile transfer) traffic on the composite network must
    // drain - the hybrid-topology claim of Section IV.
    NocConfig cfg;
    cfg.flitBytes = 10;
    auto topo = std::make_unique<MemCentricTopology>(4, 4);
    const MemCentricTopology &t = *topo;
    Network net(std::move(topo), cfg);

    int sent = 0;
    for (int round = 0; round < 20; ++round) {
        for (int g = 0; g < 4; ++g) {
            for (int i = 0; i < 4; ++i) {
                // Collective hop to the ring successor.
                net.offerPacket(t.workerAt(g, i),
                                t.workerAt(g, (i + 1) % 4), 256);
                ++sent;
                // Tile transfer to every other cluster member.
                for (int og = 0; og < 4; ++og) {
                    if (og == g)
                        continue;
                    net.offerPacket(t.workerAt(g, i),
                                    t.workerAt(og, i), 64);
                    ++sent;
                }
            }
        }
    }
    ASSERT_TRUE(net.drain(500000)) << "composite network deadlock?";
    EXPECT_EQ(net.ejectedCount(), uint64_t(sent));
}

TEST(MemCentric, RandomTrafficWithHostDrains)
{
    NocConfig cfg;
    auto topo = std::make_unique<MemCentricTopology>(4, 4);
    Network net(std::move(topo), cfg);
    Rng rng(17);
    int sent = 0;
    for (int kk = 0; kk < 800; ++kk) {
        int s = int(rng.uniformInt(0, 16)); // host included
        int d = int(rng.uniformInt(0, 15));
        if (d >= s)
            ++d;
        net.offerPacket(s, d, 64);
        ++sent;
    }
    ASSERT_TRUE(net.drain(500000));
    EXPECT_EQ(net.ejectedCount(), uint64_t(sent));
}

} // namespace
} // namespace winomc::noc
