/**
 * @file
 * Functional (numerical) emulation of multi-dimensional parallel
 * training.
 *
 * The performance model (layer_sim.hh) answers "how fast"; this module
 * answers "is the parallel computation the same computation". It
 * executes one Winograd-layer training step exactly as the MPT
 * partitioning prescribes - batch split over N_c clusters, tile
 * elements split over N_g groups, explicit tile scatter/gather inside
 * each cluster, weight-gradient reduction inside each group - and
 * returns results that must match the single-worker reference to FP
 * accumulation tolerance. The integration tests assert exactly that:
 * MPT changes the schedule, never the math.
 */

#ifndef WINOMC_MPT_FUNCTIONAL_HH
#define WINOMC_MPT_FUNCTIONAL_HH

#include <cstdint>

#include "winograd/algo.hh"
#include "winograd/conv.hh"

namespace winomc::mpt {

struct FunctionalResult
{
    Tensor y;        ///< forward output, gathered from all workers
    Tensor dx;       ///< backward-data output
    WinoWeights dW;  ///< weight gradient after the group reductions

    /** Winograd-domain values crossing worker boundaries (elements). */
    uint64_t tileElemsTransferred = 0;
    /** Gradient elements reduced across clusters (per group summed). */
    uint64_t weightElemsReduced = 0;
};

/**
 * Execute fprop + bprop + updateGrad of one Winograd layer partitioned
 * over ng groups x nc clusters.
 *
 * @param x     input (B, I, H, W); B must divide by nc
 * @param dy    upstream gradient (B, J, H, W)
 * @param W     Winograd-domain weights (replicated in every cluster,
 *              sliced across groups)
 * @param algo  transform; alpha^2 must divide by ng
 */
FunctionalResult runFunctionalMpt(const Tensor &x, const Tensor &dy,
                                  const WinoWeights &W,
                                  const WinogradAlgo &algo, int ng,
                                  int nc);

/** Single-worker reference of the same step. */
FunctionalResult runReference(const Tensor &x, const Tensor &dy,
                              const WinoWeights &W,
                              const WinogradAlgo &algo);

/**
 * Per-worker (group-slice) kernels: the element-wise dot products of
 * Equation (2) restricted to the uv range [uv0, uv1) one group owns.
 * These are what every (group, cluster) worker executes; the functional
 * emulation and the MptConvLayer compose them.
 * @{
 */
void partialElementwiseForward(const WinoTiles &X, const WinoWeights &W,
                               int uv0, int uv1, WinoTiles &Y);
void partialElementwiseBackwardData(const WinoTiles &dY,
                                    const WinoWeights &W, int uv0,
                                    int uv1, WinoTiles &dX);
void partialElementwiseGradWeights(const WinoTiles &dY,
                                   const WinoTiles &X, int uv0, int uv1,
                                   WinoWeights &dW);
/** @} */

} // namespace winomc::mpt

#endif // WINOMC_MPT_FUNCTIONAL_HH
