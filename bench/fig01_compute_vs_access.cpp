/**
 * @file
 * Figure 1: computation and data-access comparison of direct vs
 * Winograd-transformed convolution over the five Table II layers
 * (batch 256, one training iteration).
 *
 * The paper measured a Xeon with vTune; here the analytic cost model
 * (NDP buffering assumptions of Section VI-B) produces the same
 * algorithm-level result: Winograd cuts multiplications by ~2-4x while
 * inflating memory traffic by ~3-5x, which motivates near-data
 * processing.
 */

#include <cmath>
#include <cstdio>

#include "common/table.hh"
#include "winograd/algo.hh"
#include "winograd/cost.hh"
#include "workloads/layers.hh"

using namespace winomc;

int
main()
{
    std::printf("Figure 1: computation vs data access, direct vs "
                "Winograd (F(4x4,3x3))\n\n");

    Table t("per training iteration, batch 256");
    t.header({"layer", "direct GMACs", "wino GMACs", "compute ratio",
              "direct GB", "wino GB", "access ratio"});

    double log_c = 0.0, log_a = 0.0;
    auto layers = workloads::tableTwoLayers();
    for (const auto &spec : layers) {
        ConvCost d = directConvIterCost(spec);
        ConvCost w = winogradConvIterCost(spec, algoF4x4_3x3());
        double cr = double(d.mults) / double(w.mults);
        double ar = double(w.dramBytes()) / double(d.dramBytes());
        log_c += std::log(cr);
        log_a += std::log(ar);
        t.row()
            .cell(spec.name)
            .cell(double(d.mults) / 1e9, 2)
            .cell(double(w.mults) / 1e9, 2)
            .cell(cr, 2)
            .cell(double(d.dramBytes()) / 1e9, 2)
            .cell(double(w.dramBytes()) / 1e9, 2)
            .cell(ar, 2);
    }
    t.rule();
    t.row()
        .cell("geomean")
        .cell("")
        .cell("")
        .cell(std::exp(log_c / double(layers.size())), 2)
        .cell("")
        .cell("")
        .cell(std::exp(log_a / double(layers.size())), 2);
    t.print();

    std::printf("paper: computation down ~2.8x, accesses up ~4.4x "
                "(measured on a Xeon; see EXPERIMENTS.md)\n");
    return 0;
}
