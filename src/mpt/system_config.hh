/**
 * @file
 * System configurations of Table IV and the shared model parameters.
 *
 *   d_dp    direct convolution, data parallelism, update w
 *   w_dp    Winograd convolution (F(4x4,3x3)), data parallelism,
 *           update w - the paper's baseline
 *   w_mp    Winograd + MPT at fixed (16 Ng, 16 Nc), update W
 *   w_mp+   w_mp + activation prediction and zero skipping
 *   w_mp++  w_mp+ + dynamic clustering (per-layer (1,p)/(4,p/4)/(16,p/16))
 */

#ifndef WINOMC_MPT_SYSTEM_CONFIG_HH
#define WINOMC_MPT_SYSTEM_CONFIG_HH

#include <string>

#include "energy/energy.hh"
#include "memnet/collective.hh"
#include "ndp/config.hh"

namespace winomc::mpt {

enum class Strategy
{
    DirectDP,          ///< d_dp
    WinoDP,            ///< w_dp
    WinoMPT,           ///< w_mp
    WinoMPTPredict,    ///< w_mp+
    WinoMPTPredictDyn, ///< w_mp++
};

std::string strategyName(Strategy s);
/** True for the three MPT variants. */
bool usesMpt(Strategy s);
/** True when activation prediction / zero skipping applies. */
bool usesPrediction(Strategy s);

/**
 * Communication-reduction parameters of Section V. Defaults are the
 * paper's measured ratios (Fig 12); the fig12 bench re-measures them
 * from this library's own trained CNNs and synthetic tiles.
 */
struct PredictionParams
{
    /** Tile-gathering skip: predicted-dead tile ratio (2D predict,
     *  6-bit) / predicted-dead line ratio (1D predict, 5-bit). */
    double gatherSkip2D = 0.340;
    double gatherSkip1D = 0.781;
    /** Input-tile scattering zero ratios. */
    double scatterSkip2D = 0.393;
    double scatterSkip1D = 0.647;
    /** Quantized pre-transmission width. */
    int quantBits2D = 6;
    int quantBits1D = 5;
    /** Activation-map overhead, bits per element. */
    double mapBitsPerElem = 1.0;
};

/** Everything the layer/network simulations need. */
struct SystemParams
{
    int workers = 256;
    ndp::NdpConfig ndp;
    energy::EnergyParams energy;
    PredictionParams predict;
    /** Double-buffered waves per layer phase (Section VI-B). */
    int pipelineWaves = 16;
    /** Tile-transfer contention factor over the ideal-schedule link
     *  bound, measured by the flit-level simulator on the 64 B-packet
     *  all-to-all (bench/memnet_validation: ~1.6x at saturation; the
     *  packing DMA's larger transfers sit lower). */
    double tileContentionFactor = 1.5;
    /** Rings for the weight collective: MPT splits the I/O bandwidth
     *  half/half between collectives and tile transfer (2 rings); pure
     *  data parallelism uses all four links (4 rings). */
    int mptCollectiveRings = 2;
    int dpCollectiveRings = 4;
};

} // namespace winomc::mpt

#endif // WINOMC_MPT_SYSTEM_CONFIG_HH
