/**
 * @file
 * Synthetic traffic generation and load-latency measurement for the
 * flit-level simulator (the methodology behind validating Table III's
 * link assumptions and the noc_micro bench).
 */

#ifndef WINOMC_NOC_TRAFFIC_HH
#define WINOMC_NOC_TRAFFIC_HH

#include <functional>

#include "common/rng.hh"
#include "noc/network.hh"

namespace winomc::noc {

/** Destination pattern: maps (src, rng) -> dst (!= src). */
using TrafficPattern = std::function<int(int src, Rng &rng)>;

/** Uniform random over all other nodes. */
TrafficPattern uniformRandom(int nodes);
/** Ring neighbor (clockwise): the collective-communication pattern. */
TrafficPattern ringNeighbor(int nodes);
/** Matrix transpose for a square fbfly (k x k); self-sends fall back to
 *  uniform, handled by the caller. */
TrafficPattern transpose(int k);

/** Result of one open-loop load point. */
struct LoadPoint
{
    double offered;      ///< flits / node / cycle offered
    double accepted;     ///< flits / node / cycle ejected
    double avgLatency;   ///< cycles, inject -> eject
    bool saturated;      ///< source queues kept growing
    double maxLinkUtil;  ///< hottest directed link, measure window
    double meanLinkUtil; ///< mean over wired links
    /** Stalled arbitration scans per node per cycle over the window. */
    double creditStallRate;
    double holBlockRate;
};

/**
 * Open-loop experiment: every node offers `packet_bytes` packets as a
 * Bernoulli process with the given flit rate; measures accepted rate
 * and mean latency after warmup.
 */
LoadPoint measureLoadPoint(Network &net, const TrafficPattern &pattern,
                           double offered_flit_rate, int packet_bytes,
                           int warmup_cycles, int measure_cycles,
                           Rng &rng);

} // namespace winomc::noc

#endif // WINOMC_NOC_TRAFFIC_HH
