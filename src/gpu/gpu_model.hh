/**
 * @file
 * Analytic multi-GPU baseline (Section VII-C): a DGX-1-like node with
 * Volta-class GPUs, NVLink, and NCCL ring all-reduce, training with
 * data parallelism, FP16 tensor cores, and cuDNN Winograd kernels.
 *
 * A real DGX-1 is not available offline; this roofline-style model
 * reproduces the *behaviour* the paper measures: strong per-GPU
 * compute that decays in efficiency as the per-GPU batch shrinks
 * (kernel overheads and low occupancy), and a weight all-reduce whose
 * time is roughly batch-independent, giving the sub-linear fixed-batch
 * scaling of Fig 17 and the large-batch recovery of Fig 18. Constants
 * below are documented, not measured.
 */

#ifndef WINOMC_GPU_GPU_MODEL_HH
#define WINOMC_GPU_GPU_MODEL_HH

#include "workloads/networks.hh"

namespace winomc::gpu {

struct GpuConfig
{
    // Volta V100-like.
    double peakFp16Flops = 125e12;    ///< tensor-core peak
    double convEfficiency = 0.18;     ///< achieved fraction (TF-2017 era)
    double winogradSpeedup = 1.8;     ///< cuDNN Winograd on 3x3 layers
    double memBandwidth = 900e9;      ///< HBM2
    double memEfficiency = 0.7;
    double kernelOverheadSec = 20e-6; ///< launch + setup per conv kernel
    /** Occupancy knee: efficiency degrades when the per-GPU batch drops
     *  below this (the fixed-256-batch scaling problem of Fig 17). */
    double occupancyKneeBatch = 128.0;

    // NVLink + NCCL (six 25 GB/s links per GPU, 6 rings when all 8
    // GPUs participate).
    double nvlinkPerRing = 25e9;
    int ncclRings = 6;
    double ncclLatencySec = 8e-6;     ///< per collective step

    double boardPowerWatts = 300.0;   ///< V100 TDP
    double hostPowerWatts = 200.0;
};

struct GpuLayerTime
{
    double fwdSec = 0.0;
    double bwdSec = 0.0;   ///< bprop + wgrad kernels
};

struct GpuResult
{
    double iterationSeconds = 0.0;
    double imagesPerSec = 0.0;
    double powerWatts = 0.0;
    double allReduceSeconds = 0.0; ///< total collective time (overlapped)
};

/** One conv layer's kernel times on one GPU with per-GPU batch b. */
GpuLayerTime gpuLayerTime(const ConvSpec &spec, double per_gpu_batch,
                          const GpuConfig &cfg);

/**
 * One training iteration of the network on `gpus` GPUs with data
 * parallelism. `batch_override` replaces the network's batch (0 keeps
 * it); the Fig 18 experiment raises it to 2K-4K.
 */
GpuResult simulateGpuTraining(const workloads::NetworkSpec &net,
                              int gpus, const GpuConfig &cfg = {},
                              int batch_override = 0);

/** Best-throughput batch from {256, 512, ..., 4096} (Fig 18). */
int bestBatchSize(const workloads::NetworkSpec &net, int gpus,
                  const GpuConfig &cfg = {});

} // namespace winomc::gpu

#endif // WINOMC_GPU_GPU_MODEL_HH
