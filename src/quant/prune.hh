/**
 * @file
 * Winograd-domain weight pruning with native training (Li, Park &
 * Tang, arXiv 1702.08597).
 *
 * Pruning happens directly on the transformed weight slab
 * (WinoWeights, [uv][out_ch][in_ch]): a magnitude threshold zeroes the
 * smallest coefficients, and the resulting PruneMask is then applied
 * to every Winograd-domain weight *gradient* before the SGD update, so
 * pruned coefficients stay exactly 0.0f through training. Because the
 * elementwise kernels already skip zero weight terms row-wise, a
 * pruned slab accelerates the forward/backward passes with no
 * separate sparse format.
 */

#ifndef WINOMC_QUANT_PRUNE_HH
#define WINOMC_QUANT_PRUNE_HH

#include <cstdint>
#include <vector>

#include "winograd/tiling.hh"

namespace winomc::quant {

/**
 * Bit-per-coefficient mask over a WinoWeights slab. Bit = 1 means
 * "pruned": the coefficient is forced to zero and its gradient is
 * masked every step. Storage is one bit per (uv, j, i) in flat
 * WinoWeights index order.
 */
class PruneMask
{
  public:
    PruneMask() = default;
    PruneMask(int alpha, int outCh, int inCh);

    bool empty() const { return words.empty(); }
    int alphaEdge() const { return alpha; }
    int outChannels() const { return nj; }
    int inChannels() const { return ni; }
    std::size_t size() const { return std::size_t(alpha) * alpha * nj * ni; }

    bool
    pruned(int uv, int j, int i) const
    {
        const std::size_t bit = index(uv, j, i);
        return (words[bit >> 6] >> (bit & 63)) & 1u;
    }
    void
    setPruned(int uv, int j, int i)
    {
        const std::size_t bit = index(uv, j, i);
        words[bit >> 6] |= std::uint64_t(1) << (bit & 63);
    }

    std::size_t prunedCount() const;
    /** Pruned fraction in [0, 1]; 0 for an empty mask. */
    double sparsity() const;

    /** Zero every pruned coefficient of `w` (shape must match). */
    void apply(WinoWeights &w) const;

  private:
    std::size_t
    index(int uv, int j, int i) const
    {
        winomc_assert(uv >= 0 && uv < alpha * alpha && j >= 0 && j < nj &&
                          i >= 0 && i < ni,
                      "PruneMask index out of range");
        return (std::size_t(uv) * nj + j) * ni + i;
    }

    int alpha = 0;
    int nj = 0;
    int ni = 0;
    std::vector<std::uint64_t> words;
};

/**
 * Magnitude pruning of a transformed weight slab: marks the
 * `sparsity` fraction (clamped to [0, 1]) of coefficients with the
 * smallest |w| as pruned. Deterministic: ties at the threshold
 * magnitude are resolved in flat index order, so the mask always
 * prunes exactly round(sparsity * size) coefficients.
 */
PruneMask magnitudePrune(const WinoWeights &w, double sparsity);

/** Fraction of exactly-zero coefficients in a WinoWeights slab. */
double winogradWeightSparsity(const WinoWeights &w);

} // namespace winomc::quant

#endif // WINOMC_QUANT_PRUNE_HH
