#include "noc/traffic.hh"

#include "common/logging.hh"

namespace winomc::noc {

TrafficPattern
uniformRandom(int nodes)
{
    return [nodes](int src, Rng &rng) {
        int d = int(rng.uniformInt(0, nodes - 2));
        return d >= src ? d + 1 : d;
    };
}

TrafficPattern
ringNeighbor(int nodes)
{
    return [nodes](int src, Rng &) { return (src + 1) % nodes; };
}

TrafficPattern
transpose(int k)
{
    return [k](int src, Rng &) {
        int row = src / k, col = src % k;
        return col * k + row;
    };
}

LoadPoint
measureLoadPoint(Network &net, const TrafficPattern &pattern,
                 double offered_flit_rate, int packet_bytes,
                 int warmup_cycles, int measure_cycles, Rng &rng)
{
    const int n = net.topology().nodes();
    const int flits_per_packet =
        (packet_bytes + net.config().flitBytes - 1) /
        net.config().flitBytes;
    const double packet_rate = offered_flit_rate / flits_per_packet;

    auto offer = [&](int cycles) {
        for (int c = 0; c < cycles; ++c) {
            for (int s = 0; s < n; ++s) {
                if (rng.uniform() < packet_rate) {
                    int d = pattern(s, rng);
                    if (d == s) {
                        // Self-send (e.g. transpose diagonal): redirect
                        // uniformly so offered load stays constant.
                        d = int(rng.uniformInt(0, n - 2));
                        if (d >= s)
                            ++d;
                    }
                    net.offerPacket(s, d, packet_bytes);
                }
            }
            net.step();
        }
    };

    offer(warmup_cycles);
    net.resetStats();
    size_t backlog_before = net.flitsInFlight();
    offer(measure_cycles);
    size_t backlog_after = net.flitsInFlight();

    LoadPoint pt;
    pt.offered = offered_flit_rate;
    pt.accepted = net.acceptedFlitRate();
    pt.avgLatency = net.latencyStats().mean();
    pt.maxLinkUtil = net.maxLinkUtilization();
    pt.meanLinkUtil = net.meanLinkUtilization();
    double node_cycles = double(n) * double(net.statsElapsed());
    pt.creditStallRate =
        node_cycles ? double(net.creditStallCount()) / node_cycles : 0.0;
    pt.holBlockRate =
        node_cycles ? double(net.holBlockCount()) / node_cycles : 0.0;
    // Saturation heuristic: backlog grew by more than 25% of what was
    // offered during measurement.
    double offered_flits = offered_flit_rate * n * measure_cycles;
    pt.saturated =
        double(backlog_after) - double(backlog_before) >
        0.25 * offered_flits;
    return pt;
}

} // namespace winomc::noc
