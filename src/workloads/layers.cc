#include "workloads/layers.hh"

namespace winomc::workloads {

std::vector<ConvSpec>
tableTwoLayers(int batch)
{
    return {
        {"Early", batch, 64, 64, 112, 112, 3},
        {"Mid-A", batch, 128, 128, 56, 56, 3},
        {"Mid-B", batch, 256, 256, 28, 28, 3},
        {"Late-A", batch, 512, 512, 14, 14, 3},
        {"Late-B", batch, 512, 512, 7, 7, 3},
    };
}

std::vector<ConvSpec>
tableTwoLayers5x5(int batch)
{
    std::vector<ConvSpec> layers = tableTwoLayers(batch);
    for (auto &l : layers) {
        l.r = 5;
        l.name += "-5x5";
    }
    return layers;
}

} // namespace winomc::workloads
