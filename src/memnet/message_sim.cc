#include "memnet/message_sim.hh"

#include <algorithm>
#include <functional>

#include "common/logging.hh"

namespace winomc::memnet {

namespace {

/** Seconds -> picosecond ticks (event kernel granularity). */
Tick
toTicks(double sec)
{
    return Tick(sec * 1e12 + 0.5);
}

double
toSec(Tick t)
{
    return double(t) * 1e-12;
}

} // namespace

double
simulateMessages(const noc::Topology &topo, const LinkSpec &link,
                 std::vector<Message> &messages)
{
    const int ports = topo.ports();
    // linkFree[node * ports + port]: tick the directed link frees up.
    std::vector<Tick> link_free(size_t(topo.nodes()) * ports, 0);

    sim::EventQueue eq;
    Tick makespan = 0;
    const Tick hop_lat = toTicks(link.hopLatencySec);

    // One hop of one message: occupy the link for serialization time,
    // then arrive at the next node after the hop latency.
    std::function<void(size_t, int)> advance = [&](size_t mi, int node) {
        Message &m = messages[mi];
        if (node == m.dst) {
            m.finish = toSec(eq.now());
            makespan = std::max(makespan, eq.now());
            return;
        }
        int port = topo.route(node, m.dst);
        Tick &free_at = link_free[size_t(node) * ports + port];
        Tick start = std::max(eq.now(), free_at);
        Tick ser = toTicks(m.bytes / link.bandwidth);
        free_at = start + ser;
        int next = topo.neighbor(node, port);
        eq.schedule(start + ser + hop_lat,
                    [&advance, mi, next] { advance(mi, next); });
    };

    for (size_t mi = 0; mi < messages.size(); ++mi) {
        winomc_assert(messages[mi].src != messages[mi].dst,
                      "message to self");
        winomc_assert(messages[mi].bytes > 0, "empty message");
        int src = messages[mi].src;
        eq.schedule(toTicks(messages[mi].start),
                    [&advance, mi, src] { advance(mi, src); });
    }
    eq.run();
    return toSec(makespan);
}

double
simulateAllToAll(const noc::Topology &topo, const LinkSpec &link,
                 double bytes_per_pair)
{
    std::vector<Message> msgs;
    const int n = topo.nodes();
    // The communication engines packetize bulk transfers (Section VI-C);
    // split each pairwise flow into chunks and interleave sources and
    // destinations round-robin, which lets multi-hop flows pipeline.
    constexpr int kChunks = 8;
    const double chunk = bytes_per_pair / kChunks;
    for (int c = 0; c < kChunks; ++c)
        for (int k = 1; k < n; ++k)
            for (int s = 0; s < n; ++s)
                msgs.push_back(Message{s, (s + k) % n, chunk, 0.0, -1.0});
    return simulateMessages(topo, link, msgs);
}

} // namespace winomc::memnet
