file(REMOVE_RECURSE
  "CMakeFiles/winomc_sim.dir/event_queue.cc.o"
  "CMakeFiles/winomc_sim.dir/event_queue.cc.o.d"
  "libwinomc_sim.a"
  "libwinomc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winomc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
