file(REMOVE_RECURSE
  "libwinomc_winograd.a"
)
