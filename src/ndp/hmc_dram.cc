#include "ndp/hmc_dram.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/metrics.hh"

namespace winomc::ndp {

HmcDram::HmcDram(const HmcConfig &cfg_) : cfg(cfg_)
{
    winomc_assert(cfg.vaults >= 1 && cfg.banksPerVault >= 1,
                  "degenerate HMC geometry");
    winomc_assert(cfg.accessBytes > 0 && cfg.rowBytes >= cfg.accessBytes,
                  "bad access/row sizes");
    vaults.resize(size_t(cfg.vaults));
    for (auto &v : vaults)
        v.banks.resize(size_t(cfg.banksPerVault));
}

int
HmcDram::vaultOf(uint64_t addr) const
{
    // Low-order interleaving at access granularity spreads streams
    // across vaults (the HMC default).
    return int((addr / cfg.accessBytes) % uint64_t(cfg.vaults));
}

int
HmcDram::bankOf(uint64_t addr) const
{
    uint64_t per_vault = (addr / cfg.accessBytes) / uint64_t(cfg.vaults);
    uint64_t row_units = cfg.rowBytes / cfg.accessBytes;
    return int((per_vault / row_units) % uint64_t(cfg.banksPerVault));
}

int64_t
HmcDram::rowOf(uint64_t addr) const
{
    uint64_t per_vault = (addr / cfg.accessBytes) / uint64_t(cfg.vaults);
    uint64_t row_units = cfg.rowBytes / cfg.accessBytes;
    return int64_t(per_vault / row_units / uint64_t(cfg.banksPerVault));
}

int
HmcDram::submit(uint64_t addr, uint32_t bytes)
{
    winomc_assert(bytes > 0, "empty request");
    int id = int(requests.size());
    DramRequest req;
    req.addr = addr;
    req.bytes = bytes;
    req.issued = cycle;
    requests.push_back(req);
    ++pending;

    // Split into access-granularity beats; all beats of a request go to
    // the vault queues (contiguous requests stripe across vaults by
    // construction), and the request completes at its last beat.
    int beats = 0;
    for (uint32_t off = 0; off < bytes; off += cfg.accessBytes) {
        Vault &v = vaults[size_t(vaultOf(addr + off))];
        VaultEntry e;
        e.reqId = id;
        e.bank = bankOf(addr + off);
        e.row = rowOf(addr + off);
        v.queue.push_back(e);
        ++beats;
    }
    requests.back().beatsLeft = beats;
    return id;
}

void
HmcDram::scheduleVault(Vault &vault)
{
    if (vault.queue.empty())
        return;
    const Tick burst =
        Tick((cfg.accessBytes + cfg.busBytesPerCycle - 1) /
             uint32_t(cfg.busBytesPerCycle));
    // Don't reserve the data TSVs unboundedly far ahead: allow the
    // CAS-latency pipeline plus a few bursts of slack.
    if (vault.busFreeAt > cycle + Tick(cfg.tCas) + 4 * burst)
        return;

    // FR-FCFS: oldest row-hit within the window first; else oldest.
    size_t pick = 0;
    if (cfg.frfcfs) {
        size_t window = std::min(vault.queue.size(),
                                 size_t(cfg.windowDepth));
        bool found = false;
        for (size_t k = 0; k < window; ++k) {
            const VaultEntry &e = vault.queue[k];
            const Bank &b = vault.banks[size_t(e.bank)];
            if (b.openRow == e.row && b.readyAt <= cycle) {
                pick = k;
                found = true;
                break;
            }
        }
        if (!found)
            pick = 0;
    }

    VaultEntry e = vault.queue[pick];
    Bank &bank = vault.banks[size_t(e.bank)];
    if (bank.readyAt > cycle)
        return; // bank busy; try again next cycle

    // Column commands pipeline: the data TSVs are the serializing
    // resource; CAS/activate latency overlaps with earlier bursts.
    Tick data_at;
    if (bank.openRow == e.row) {
        ++row_hits;
        data_at = std::max(cycle + Tick(cfg.tCas), vault.busFreeAt);
        bank.readyAt = cycle + burst; // hit stream at burst rate
    } else {
        ++row_misses;
        Tick penalty = bank.openRow >= 0 ? Tick(cfg.tRp) : 0;
        data_at = std::max(cycle + penalty + Tick(cfg.tRcd) +
                               Tick(cfg.tCas),
                           vault.busFreeAt);
        bank.openRow = e.row;
        bank.readyAt = cycle + penalty + Tick(cfg.tRcd);
    }
    vault.busFreeAt = data_at + burst;
    vault.queue.erase(vault.queue.begin() + long(pick));

    DramRequest &req = requests[size_t(e.reqId)];
    Tick done_at = data_at + burst;
    if (done_at > req.completed)
        req.completed = done_at;
    winomc_assert(req.beatsLeft > 0, "beat underflow");
    if (--req.beatsLeft == 0) {
        req.done = true;
        --pending;
        bytesDone += req.bytes;
    }
}

void
HmcDram::step()
{
    for (auto &v : vaults)
        scheduleVault(v);
    ++cycle;
}

bool
HmcDram::drain(uint64_t max_cycles)
{
    for (uint64_t k = 0; k < max_cycles && pending > 0; ++k)
        step();
    return pending == 0;
}

const DramRequest &
HmcDram::request(int id) const
{
    return requests.at(size_t(id));
}

double
HmcDram::achievedBandwidth() const
{
    if (cycle == 0)
        return 0.0;
    return double(bytesDone) / (double(cycle) * 1e-9);
}

void
HmcDram::exportMetrics(const std::string &prefix) const
{
    if (!metrics::enabled())
        return;
    metrics::counterAdd((prefix + ".bytes").c_str(), double(bytesDone));
    metrics::counterAdd((prefix + ".row_hits").c_str(),
                        double(row_hits));
    metrics::counterAdd((prefix + ".row_misses").c_str(),
                        double(row_misses));
    metrics::gaugeSet((prefix + ".achieved_bw").c_str(),
                      achievedBandwidth());
    metrics::gaugeSet((prefix + ".bw_utilization").c_str(),
                      bandwidthUtilization());
    metrics::gaugeSet((prefix + ".row_hit_rate").c_str(), rowHitRate());
}

} // namespace winomc::ndp
