/**
 * @file
 * Minimal trainable-module abstraction for the neural-network substrate.
 *
 * This is deliberately small: enough to train the CNNs the algorithmic
 * experiments need (activation-prediction statistics, the modified-join
 * equivalence of Fig 14, end-to-end convergence checks), not a deep
 * learning framework. Modules cache what they need on forward() and
 * consume it on backward().
 */

#ifndef WINOMC_NN_MODULE_HH
#define WINOMC_NN_MODULE_HH

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hh"

namespace winomc::nn {

/** Base class of every trainable or stateless layer. */
class Module
{
  public:
    virtual ~Module() = default;

    /**
     * Run the layer. @param train true during training (layers may cache
     * activations for backward()).
     */
    virtual Tensor forward(const Tensor &x, bool train) = 0;

    /** Backpropagate; returns dL/dx. Only valid after forward(train). */
    virtual Tensor backward(const Tensor &dy) = 0;

    /** SGD step with the accumulated gradients, then clear them. */
    virtual void step(float lr) { (void)lr; }

    /** Number of trainable parameters. */
    virtual size_t paramCount() const { return 0; }

    virtual std::string name() const = 0;
};

using ModulePtr = std::unique_ptr<Module>;

/** Runs children in order. */
class Sequential : public Module
{
  public:
    Sequential() = default;

    Sequential &add(ModulePtr m);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &dy) override;
    void step(float lr) override;
    size_t paramCount() const override;
    std::string name() const override { return "sequential"; }

    size_t size() const { return children.size(); }
    Module &child(size_t i) { return *children.at(i); }

  private:
    std::vector<ModulePtr> children;
};

} // namespace winomc::nn

#endif // WINOMC_NN_MODULE_HH
