#include "common/trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace winomc::trace {

std::atomic<bool> gEnabled{false};

namespace {

struct Event
{
    std::string name;
    std::string cat;
    double tsUs = 0.0;
    double durUs = 0.0;
    int pid = kHostPid;
    int tid = 0;
    bool metadata = false; ///< process_name record instead of a span
    std::vector<SpanArg> args; ///< optional span arguments
};

/** Per-thread event buffer; same locking discipline as the metrics
 *  shards (owner locks per append, flush locks from outside). */
struct Buffer
{
    std::mutex mu;
    std::vector<Event> events;
};

struct Recorder
{
    std::mutex mu;
    std::vector<std::shared_ptr<Buffer>> buffers;
    std::vector<Event> retired; ///< events of exited threads + metadata
    std::string path;
    std::atomic<int> nextTid{0};
    std::atomic<int> nextSimPid{kHostPid + 1};

    static Recorder &
    instance()
    {
        static Recorder *r = new Recorder; // outlives worker threads
        return *r;
    }
};

struct BufferHandle
{
    std::shared_ptr<Buffer> buffer = std::make_shared<Buffer>();

    BufferHandle()
    {
        Recorder &r = Recorder::instance();
        std::lock_guard<std::mutex> lk(r.mu);
        r.buffers.push_back(buffer);
    }

    ~BufferHandle()
    {
        Recorder &r = Recorder::instance();
        std::lock_guard<std::mutex> lk(r.mu);
        {
            std::lock_guard<std::mutex> blk(buffer->mu);
            r.retired.insert(r.retired.end(), buffer->events.begin(),
                             buffer->events.end());
            buffer->events.clear();
        }
        r.buffers.erase(
            std::remove(r.buffers.begin(), r.buffers.end(), buffer),
            r.buffers.end());
    }
};

Buffer &
localBuffer()
{
    thread_local BufferHandle handle;
    return *handle.buffer;
}

std::chrono::steady_clock::time_point
processStart()
{
    static const auto t0 = std::chrono::steady_clock::now();
    return t0;
}

void
flushAtExit()
{
    flushIfConfigured();
}

struct EnvInit
{
    EnvInit()
    {
        processStart(); // pin t0 as early as possible
        const char *p = std::getenv("WINOMC_TRACE");
        if (p && *p) {
            Recorder::instance().path = p;
            gEnabled.store(true, std::memory_order_relaxed);
            std::atexit(flushAtExit);
        }
    }
};
EnvInit envInit;

void
append(Event ev)
{
    Buffer &b = localBuffer();
    std::lock_guard<std::mutex> lk(b.mu);
    b.events.push_back(std::move(ev));
}

/** Minimal JSON string escaping (names are plain identifiers). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20)
            continue;
        out.push_back(c);
    }
    return out;
}

} // namespace

void
setEnabled(bool on)
{
    gEnabled.store(on, std::memory_order_relaxed);
}

const std::string &
configuredPath()
{
    return Recorder::instance().path;
}

void
setConfiguredPath(const std::string &path)
{
    Recorder::instance().path = path;
}

double
nowUs()
{
    std::chrono::duration<double, std::micro> d =
        std::chrono::steady_clock::now() - processStart();
    return d.count();
}

int
currentTid()
{
    thread_local int tid =
        Recorder::instance().nextTid.fetch_add(1,
                                               std::memory_order_relaxed);
    return tid;
}

void
emitComplete(const char *name, const char *cat, double ts_us,
             double dur_us)
{
    if (!enabled())
        return;
    Event ev;
    ev.name = name;
    ev.cat = cat;
    ev.tsUs = ts_us;
    ev.durUs = dur_us;
    ev.pid = kHostPid;
    ev.tid = currentTid();
    append(std::move(ev));
}

void
emitCompleteArgs(const char *name, const char *cat, double ts_us,
                 double dur_us, std::vector<SpanArg> args)
{
    if (!enabled())
        return;
    Event ev;
    ev.name = name;
    ev.cat = cat;
    ev.tsUs = ts_us;
    ev.durUs = dur_us;
    ev.pid = kHostPid;
    ev.tid = currentTid();
    ev.args = std::move(args);
    append(std::move(ev));
}

void
emitCompleteAt(const std::string &name, const char *cat, double ts_us,
               double dur_us, int pid, int tid)
{
    if (!enabled())
        return;
    Event ev;
    ev.name = name;
    ev.cat = cat;
    ev.tsUs = ts_us;
    ev.durUs = dur_us;
    ev.pid = pid;
    ev.tid = tid;
    append(std::move(ev));
}

void
namePid(int pid, const std::string &name)
{
    if (!enabled())
        return;
    Event ev;
    ev.name = name;
    ev.pid = pid;
    ev.metadata = true;
    append(std::move(ev));
}

int
allocSimPid()
{
    return Recorder::instance().nextSimPid.fetch_add(
        1, std::memory_order_relaxed);
}

void
reset()
{
    Recorder &r = Recorder::instance();
    std::lock_guard<std::mutex> lk(r.mu);
    r.retired.clear();
    for (const auto &buffer : r.buffers) {
        std::lock_guard<std::mutex> blk(buffer->mu);
        buffer->events.clear();
    }
}

std::string
toJson()
{
    Recorder &r = Recorder::instance();
    std::vector<Event> events;
    {
        std::lock_guard<std::mutex> lk(r.mu);
        events = r.retired;
        for (const auto &buffer : r.buffers) {
            std::lock_guard<std::mutex> blk(buffer->mu);
            events.insert(events.end(), buffer->events.begin(),
                          buffer->events.end());
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         if (a.pid != b.pid)
                             return a.pid < b.pid;
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         return a.tsUs < b.tsUs;
                     });

    std::ostringstream oss;
    oss.precision(17);
    oss << "{\"traceEvents\": [";
    bool first = true;
    for (const Event &ev : events) {
        oss << (first ? "\n" : ",\n");
        first = false;
        if (ev.metadata) {
            oss << " {\"name\": \"process_name\", \"ph\": \"M\", "
                << "\"pid\": " << ev.pid << ", \"tid\": 0, "
                << "\"args\": {\"name\": \"" << escape(ev.name)
                << "\"}}";
        } else {
            oss << " {\"name\": \"" << escape(ev.name) << "\", "
                << "\"cat\": \"" << escape(ev.cat) << "\", "
                << "\"ph\": \"X\", \"ts\": " << ev.tsUs
                << ", \"dur\": " << ev.durUs << ", \"pid\": " << ev.pid
                << ", \"tid\": " << ev.tid;
            if (!ev.args.empty()) {
                oss << ", \"args\": {";
                for (std::size_t i = 0; i < ev.args.size(); ++i) {
                    oss << (i ? ", " : "") << "\""
                        << escape(ev.args[i].key) << "\": \""
                        << escape(ev.args[i].value) << "\"";
                }
                oss << "}";
            }
            oss << "}";
        }
    }
    oss << "\n], \"displayTimeUnit\": \"ms\"}\n";
    return oss.str();
}

void
flushToFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        winomc_warn("cannot write trace to '", path, "'");
        return;
    }
    std::string body = toJson();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
}

void
flushIfConfigured()
{
    const std::string &path = configuredPath();
    if (path.empty())
        return;
    flushToFile(path);
}

} // namespace winomc::trace
