file(REMOVE_RECURSE
  "libwinomc_noc.a"
)
