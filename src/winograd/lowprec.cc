#include "winograd/lowprec.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>

#include "winograd/microkernel.hh"

namespace winomc {

namespace {

std::atomic<int> gPrec{-1};   ///< -1 = unresolved (parse env once)
std::atomic<int> gSparse{-1}; ///< -1 = unresolved (parse env once)

std::string
normalized(const char *str)
{
    std::string s;
    for (const char *p = str; *p; ++p)
        if (!std::isspace(static_cast<unsigned char>(*p)))
            s += char(std::tolower(static_cast<unsigned char>(*p)));
    return s;
}

} // namespace

const char *
precName(Prec p)
{
    switch (p) {
      case Prec::F32:
        return "fp32";
      case Prec::F16:
        return "fp16";
      case Prec::Bf16:
        return "bf16";
    }
    return "fp32";
}

int
precBytes(Prec p)
{
    return p == Prec::F32 ? 4 : 2;
}

Prec
parsePrec(const char *str)
{
    if (!str || !*str)
        return Prec::F32;
    const std::string s = normalized(str);
    if (s == "fp32" || s == "f32")
        return Prec::F32;
    if (s == "fp16" || s == "f16")
        return Prec::F16;
    if (s == "bf16" || s == "bfloat16")
        return Prec::Bf16;
    winomc_warn("ignoring unrecognized WINOMC_PREC '", str,
                "' (want fp32|fp16|bf16)");
    return Prec::F32;
}

Prec
requestedPrec()
{
    int p = gPrec.load(std::memory_order_acquire);
    if (p < 0) {
        // Benign race: concurrent first calls parse the same env var.
        p = int(parsePrec(std::getenv("WINOMC_PREC")));
        gPrec.store(p, std::memory_order_release);
    }
    return Prec(p);
}

void
setPrec(Prec p)
{
    gPrec.store(int(p), std::memory_order_release);
}

bool
parseSparse(const char *str)
{
    if (!str || !*str)
        return false;
    const std::string s = normalized(str);
    if (s == "on" || s == "1" || s == "true")
        return true;
    if (s == "off" || s == "0" || s == "false")
        return false;
    winomc_warn("ignoring unrecognized WINOMC_SPARSE '", str,
                "' (want on|off)");
    return false;
}

bool
requestedSparse()
{
    int v = gSparse.load(std::memory_order_acquire);
    if (v < 0) {
        // Benign race: concurrent first calls parse the same env var.
        v = parseSparse(std::getenv("WINOMC_SPARSE")) ? 1 : 0;
        gSparse.store(v, std::memory_order_release);
    }
    return v != 0;
}

void
setSparseMode(bool on)
{
    gSparse.store(on ? 1 : 0, std::memory_order_release);
}

ExecPolicy
currentExecPolicy()
{
    return ExecPolicy{requestedPrec(), requestedSparse()};
}

std::string
execPolicySuffix(const ExecPolicy &pol)
{
    std::string s;
    if (pol.prec == Prec::F16)
        s += "_fp16";
    else if (pol.prec == Prec::Bf16)
        s += "_bf16";
    if (pol.sparse)
        s += "_sp";
    return s;
}

void
HalfTiles::reshape(int a, int channels, int batch, int tiles)
{
    const bool same =
        a == alpha && channels == nch && batch == nb && tiles == nt;
    alpha = a;
    nch = channels;
    nb = batch;
    nt = tiles;
    const std::size_t need = std::size_t(a) * a * channels * batch * tiles;
    if (same && data.size() == need)
        return;
    data.assign(need, 0);
}

void
ActMask::reshape(int uvCount, int channels, int batch, int tiles)
{
    nUv = uvCount;
    nch = channels;
    nb = batch;
    nt = tiles;
    nPanels = (tiles + mk::kTilePanel - 1) / mk::kTilePanel;
    const std::size_t bitsPerPlane = std::size_t(nPanels) * nUv;
    wpp = (bitsPerPlane + 63) / 64;
    words.assign(wpp * std::size_t(nch) * nb, 0);
}

void
ActMask::clear()
{
    std::fill(words.begin(), words.end(), 0);
}

bool
ActMask::rowRangeZero(int uv, int c, int k0, int kb) const
{
    // The flat row index k maps to (image b = k / nt, tile t = k % nt).
    // This sits on the skip-decision path of every sparse GEMM block,
    // so divide once to locate the starting image, then walk the
    // overlapped panels with plain arithmetic (t / kTilePanel is a
    // shift — the panel width is a constexpr power of two).
    int b = k0 / nt;
    int t = k0 - b * nt;
    const std::uint64_t *pl = plane(c, b);
    for (int remaining = kb; remaining > 0;) {
        const int p = t / mk::kTilePanel;
        const std::size_t bit = std::size_t(p) * nUv + uv;
        if (!((pl[bit >> 6] >> (bit & 63)) & 1u))
            return false;
        const int panelEnd = std::min((p + 1) * mk::kTilePanel, nt);
        remaining -= panelEnd - t;
        t = panelEnd;
        if (t >= nt) { // next image's plane
            t = 0;
            ++b;
            if (remaining > 0)
                pl = plane(c, b);
        }
    }
    return true;
}

} // namespace winomc
