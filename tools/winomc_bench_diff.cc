/**
 * @file
 * winomc-bench-diff: regression gate between two wino_kernels --json
 * artifacts (a fresh run vs the committed BENCH_wino.json baseline).
 *
 *     winomc-bench-diff [--ms-threshold PCT] <baseline.json> <fresh.json>
 *
 * Exits non-zero when any benchmark row regresses:
 *
 *  - ms_per_iter grows more than PCT percent over the baseline
 *    (default 10; CI uses a wide threshold because the baseline was
 *    recorded on different hardware — the gate is for blowups, the
 *    committed artifact is for humans);
 *  - ws_fresh_bytes_per_iter increases AT ALL. Steady-state fresh
 *    heap bytes are machine-independent and exactly reproducible, so
 *    any increase is a real allocation leak into the hot path, and
 *    zero tolerance is the right gate;
 *  - max_abs_err (the SPARSE_* / PREC_* rows' numeric error against
 *    an in-run dense fp32 reference) grows past FACTOR x the baseline
 *    (--err-threshold, default 2). The error is deterministic per ISA
 *    but the baseline may have been recorded under a different ISA, so
 *    a small multiplicative headroom is allowed; a real numerics
 *    regression (e.g. a half-precision accumulate sneaking in) moves
 *    the error by orders of magnitude, not tens of percent. A baseline
 *    of exactly 0 (the sparse fp32 bitwise rows) tolerates no fresh
 *    error at all — 0 * FACTOR is still 0.
 *
 * Rows present only in the baseline (coverage loss) or only in the
 * fresh run (new benchmarks) are reported but do not fail the gate:
 * renames are routine; the hard gates are the measured regressions.
 *
 * The parser is line-based like the artifact writer: one benchmark
 * object per line, "key": value pairs — not a general JSON parser, by
 * design (the artifact is ours, and the tool must not grow deps).
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

struct Row
{
    double msPerIter = 0.0;
    double wsFreshBytesPerIter = 0.0;
    double maxAbsErr = 0.0;
    bool haveMs = false;
    bool haveWs = false;
    bool haveErr = false;
};

/** Extract the string value of `"key": "..."` from a row line. */
bool
extractString(const std::string &line, const char *key,
              std::string &out)
{
    const std::string pat = std::string("\"") + key + "\": \"";
    const size_t at = line.find(pat);
    if (at == std::string::npos)
        return false;
    const size_t start = at + pat.size();
    const size_t end = line.find('"', start);
    if (end == std::string::npos)
        return false;
    out = line.substr(start, end - start);
    return true;
}

/** Extract the numeric value of `"key": <number>` from a row line. */
bool
extractNumber(const std::string &line, const char *key, double &out)
{
    const std::string pat = std::string("\"") + key + "\": ";
    const size_t at = line.find(pat);
    if (at == std::string::npos)
        return false;
    out = std::strtod(line.c_str() + at + pat.size(), nullptr);
    return true;
}

/** name -> row for every benchmark object in the artifact. */
std::map<std::string, Row>
parseArtifact(const std::string &path, bool &ok)
{
    std::map<std::string, Row> rows;
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "winomc-bench-diff: cannot read '%s'\n",
                     path.c_str());
        ok = false;
        return rows;
    }
    std::string line;
    while (std::getline(in, line)) {
        std::string name;
        if (!extractString(line, "name", name))
            continue;
        Row r;
        r.haveMs = extractNumber(line, "ms_per_iter", r.msPerIter);
        r.haveWs = extractNumber(line, "ws_fresh_bytes_per_iter",
                                 r.wsFreshBytesPerIter);
        r.haveErr = extractNumber(line, "max_abs_err", r.maxAbsErr);
        if (r.haveMs || r.haveWs)
            rows[name] = r;
    }
    ok = true;
    if (rows.empty()) {
        std::fprintf(stderr,
                     "winomc-bench-diff: no benchmark rows in '%s'\n",
                     path.c_str());
        ok = false;
    }
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    double msThresholdPct = 10.0;
    double errThresholdFactor = 2.0;
    std::vector<std::string> inputs;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ms-threshold") == 0 &&
            i + 1 < argc) {
            msThresholdPct = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--err-threshold") == 0 &&
                   i + 1 < argc) {
            errThresholdFactor = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            std::printf(
                "usage: winomc-bench-diff [--ms-threshold PCT] "
                "[--err-threshold FACTOR] <baseline.json> "
                "<fresh.json>\n"
                "  exits 1 on a >PCT%% ms/iter regression (default "
                "10), any\n  ws_fresh_bytes_per_iter increase, or a "
                "max_abs_err above FACTOR x\n  the baseline "
                "(default 2; a 0 baseline tolerates no error)\n");
            return 0;
        } else {
            inputs.push_back(argv[i]);
        }
    }
    if (inputs.size() != 2) {
        std::fprintf(stderr, "winomc-bench-diff: need exactly "
                             "<baseline.json> <fresh.json> "
                             "(try --help)\n");
        return 2;
    }

    bool okBase = false, okFresh = false;
    const auto base = parseArtifact(inputs[0], okBase);
    const auto fresh = parseArtifact(inputs[1], okFresh);
    if (!okBase || !okFresh)
        return 2;

    int regressions = 0;
    int compared = 0;
    for (const auto &[name, b] : base) {
        const auto it = fresh.find(name);
        if (it == fresh.end()) {
            std::printf("MISSING  %s (in baseline only)\n",
                        name.c_str());
            continue;
        }
        const Row &f = it->second;
        ++compared;
        if (b.haveMs && f.haveMs && b.msPerIter > 0.0) {
            const double pct =
                100.0 * (f.msPerIter - b.msPerIter) / b.msPerIter;
            if (pct > msThresholdPct) {
                ++regressions;
                std::printf("SLOWER   %s: %.4g -> %.4g ms/iter "
                            "(+%.1f%% > %.1f%%)\n",
                            name.c_str(), b.msPerIter, f.msPerIter,
                            pct, msThresholdPct);
            }
        }
        if (b.haveWs && f.haveWs &&
            f.wsFreshBytesPerIter > b.wsFreshBytesPerIter) {
            ++regressions;
            std::printf("ALLOCS   %s: ws_fresh_bytes_per_iter "
                        "%.4g -> %.4g (any increase fails)\n",
                        name.c_str(), b.wsFreshBytesPerIter,
                        f.wsFreshBytesPerIter);
        }
        if (b.haveErr && f.haveErr &&
            f.maxAbsErr > b.maxAbsErr * errThresholdFactor) {
            ++regressions;
            std::printf("NUMERICS %s: max_abs_err %.6g -> %.6g "
                        "(> %.2gx baseline fails)\n",
                        name.c_str(), b.maxAbsErr, f.maxAbsErr,
                        errThresholdFactor);
        }
    }
    for (const auto &[name, f] : fresh) {
        (void)f;
        if (!base.count(name))
            std::printf("NEW      %s (no baseline)\n", name.c_str());
    }

    std::printf("winomc-bench-diff: %d row(s) compared, %d "
                "regression(s), ms threshold %.1f%%\n",
                compared, regressions, msThresholdPct);
    return regressions ? 1 : 0;
}
