/**
 * @file
 * Simple statistics accumulators used by the simulators and benches.
 */

#ifndef WINOMC_COMMON_STATS_HH
#define WINOMC_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace winomc {

/** Streaming scalar statistic: count / sum / min / max / mean / stddev. */
class Accumulator
{
  public:
    void add(double v);
    void merge(const Accumulator &other);
    void reset();

    uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n ? total / double(n) : 0.0; }
    double minimum() const { return n ? lo : 0.0; }
    double maximum() const { return n ? hi : 0.0; }
    /** Population standard deviation (Welford). */
    double stddev() const;

  private:
    uint64_t n = 0;
    double total = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double mu = 0.0;   // running mean (Welford)
    double m2 = 0.0;   // running sum of squared deviations
};

/** Fixed-range linear histogram with under/overflow buckets. */
class Histogram
{
  public:
    Histogram(double lo, double hi, int buckets);

    void add(double v);
    /** Accumulate another histogram of the same shape (same lo/hi/
     *  bucket count; checked). */
    void merge(const Histogram &other);
    /** True when `other` uses the same lo/hi/bucket configuration. */
    bool sameShape(const Histogram &other) const;
    void reset();

    double low() const { return lo; }
    double high() const { return hi; }
    double sum() const { return total; }
    double mean() const { return n ? total / double(n) : 0.0; }
    uint64_t count() const { return n; }
    uint64_t bucketCount(int b) const { return counts.at(b + 1); }
    uint64_t underflow() const { return counts.front(); }
    uint64_t overflow() const { return counts.back(); }
    int buckets() const { return int(counts.size()) - 2; }
    double bucketLow(int b) const;
    /** Value below which the given fraction of samples fall; NaN when
     *  the histogram holds no samples (there is no such value). */
    double percentile(double frac) const;

    std::string toString(int max_width = 50) const;

  private:
    double lo, hi, width;
    uint64_t n = 0;
    double total = 0.0;
    std::vector<uint64_t> counts; // [under, b0..bN-1, over]
};

} // namespace winomc

#endif // WINOMC_COMMON_STATS_HH
