file(REMOVE_RECURSE
  "CMakeFiles/noc_micro.dir/noc_micro.cpp.o"
  "CMakeFiles/noc_micro.dir/noc_micro.cpp.o.d"
  "noc_micro"
  "noc_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
