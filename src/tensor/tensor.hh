/**
 * @file
 * Dense 4D tensor in NCHW layout.
 *
 * This is the numeric substrate for the convolution / Winograd kernels.
 * Scalars are float (the paper's workers compute in FP32); the Winograd
 * transform matrices are generated in exact rational arithmetic and
 * applied in double before rounding, so the tensors only ever see the
 * final FP32 values.
 */

#ifndef WINOMC_TENSOR_TENSOR_HH
#define WINOMC_TENSOR_TENSOR_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "tensor/workspace.hh"

namespace winomc {

/**
 * Dense tensor with up to four dimensions (n, c, h, w), NCHW layout.
 * Lower-rank tensors set the leading dims to 1 (e.g. a matrix is
 * (1, 1, h, w)).
 *
 * Storage routes through ws::Workspace: construction acquires a pooled
 * slab, destruction releases it, so steady-state shapes never touch the
 * heap. Copy assignment reuses the destination's capacity when it
 * suffices.
 */
class Tensor
{
  public:
    Tensor() : dims{0, 0, 0, 0} {}
    Tensor(int n, int c, int h, int w);
    /** 2D convenience constructor: (1, 1, h, w). */
    Tensor(int h, int w) : Tensor(1, 1, h, w) {}

    ~Tensor() { ws::release(std::move(buf)); }
    Tensor(const Tensor &o);
    Tensor &operator=(const Tensor &o);
    Tensor(Tensor &&o) noexcept;
    Tensor &operator=(Tensor &&o) noexcept;

    /**
     * Rebind to a new shape, reusing the slab when it has capacity.
     * Contents are zeroed iff the shape changed; same-shape reshapes
     * leave the data untouched.
     */
    void reshape(int n, int c, int h, int w);

    int n() const { return dims[0]; }
    int c() const { return dims[1]; }
    int h() const { return dims[2]; }
    int w() const { return dims[3]; }
    size_t size() const { return buf.size(); }
    bool sameShape(const Tensor &o) const;

    float &
    at(int in, int ic, int ih, int iw)
    {
        return buf[index(in, ic, ih, iw)];
    }
    float
    at(int in, int ic, int ih, int iw) const
    {
        return buf[index(in, ic, ih, iw)];
    }
    /** 2D accessors on a (1,1,h,w) tensor. */
    float &at(int ih, int iw) { return at(0, 0, ih, iw); }
    float at(int ih, int iw) const { return at(0, 0, ih, iw); }

    float *data() { return buf.data(); }
    const float *data() const { return buf.data(); }

    void fill(float v);
    void fillUniform(Rng &rng, float lo = -1.0f, float hi = 1.0f);
    void fillGaussian(Rng &rng, float mean = 0.0f, float sigma = 1.0f);
    /** Kaiming-style init for conv weights (fan_in = c*h*w). */
    void fillKaiming(Rng &rng);

    Tensor &operator+=(const Tensor &o);
    Tensor &operator-=(const Tensor &o);
    Tensor &operator*=(float s);

    /** Largest absolute element. */
    float absMax() const;
    /** Largest absolute elementwise difference. */
    float maxAbsDiff(const Tensor &o) const;
    /** Standard deviation of the elements. */
    float stddev() const;

  private:
    size_t
    index(int in, int ic, int ih, int iw) const
    {
        winomc_assert(in >= 0 && in < dims[0] && ic >= 0 && ic < dims[1] &&
                      ih >= 0 && ih < dims[2] && iw >= 0 && iw < dims[3],
                      "tensor index (", in, ",", ic, ",", ih, ",", iw,
                      ") out of (", dims[0], ",", dims[1], ",", dims[2],
                      ",", dims[3], ")");
        return ((size_t(in) * dims[1] + ic) * dims[2] + ih) * dims[3] + iw;
    }

    int dims[4];
    std::vector<float> buf;
};

} // namespace winomc

#endif // WINOMC_TENSOR_TENSOR_HH
