
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/winograd/algo.cc" "src/winograd/CMakeFiles/winomc_winograd.dir/algo.cc.o" "gcc" "src/winograd/CMakeFiles/winomc_winograd.dir/algo.cc.o.d"
  "/root/repo/src/winograd/conv.cc" "src/winograd/CMakeFiles/winomc_winograd.dir/conv.cc.o" "gcc" "src/winograd/CMakeFiles/winomc_winograd.dir/conv.cc.o.d"
  "/root/repo/src/winograd/conv1d.cc" "src/winograd/CMakeFiles/winomc_winograd.dir/conv1d.cc.o" "gcc" "src/winograd/CMakeFiles/winomc_winograd.dir/conv1d.cc.o.d"
  "/root/repo/src/winograd/cost.cc" "src/winograd/CMakeFiles/winomc_winograd.dir/cost.cc.o" "gcc" "src/winograd/CMakeFiles/winomc_winograd.dir/cost.cc.o.d"
  "/root/repo/src/winograd/tiling.cc" "src/winograd/CMakeFiles/winomc_winograd.dir/tiling.cc.o" "gcc" "src/winograd/CMakeFiles/winomc_winograd.dir/tiling.cc.o.d"
  "/root/repo/src/winograd/toom_cook.cc" "src/winograd/CMakeFiles/winomc_winograd.dir/toom_cook.cc.o" "gcc" "src/winograd/CMakeFiles/winomc_winograd.dir/toom_cook.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/winomc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/winomc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
