#include "nn/dataset.hh"

#include <cmath>

#include "common/logging.hh"

namespace winomc::nn {

Tensor
Dataset::batch(size_t first, size_t count, std::vector<int> &labels_out)
const
{
    winomc_assert(first + count <= images.size(), "batch out of range");
    Tensor out(int(count), 1, imageSize, imageSize);
    labels_out.resize(count);
    for (size_t k = 0; k < count; ++k) {
        const Tensor &img = images[first + k];
        for (int i = 0; i < imageSize; ++i)
            for (int j = 0; j < imageSize; ++j)
                out.at(int(k), 0, i, j) = img.at(i, j);
        labels_out[k] = labels[first + k];
    }
    return out;
}

namespace {

void
drawShape(Tensor &img, int cls, int s, Rng &rng)
{
    const int cx = int(rng.uniformInt(s / 3, 2 * s / 3));
    const int cy = int(rng.uniformInt(s / 3, 2 * s / 3));
    const int len = int(rng.uniformInt(s / 3, s / 2));
    const float amp = float(rng.uniform(0.8, 1.2));

    auto put = [&](int y, int x) {
        if (y >= 0 && y < s && x >= 0 && x < s)
            img.at(y, x) += amp;
    };

    switch (cls) {
      case 0: // horizontal bar
        for (int d = -len; d <= len; ++d)
            put(cy, cx + d);
        break;
      case 1: // vertical bar
        for (int d = -len; d <= len; ++d)
            put(cy + d, cx);
        break;
      case 2: // diagonal
        for (int d = -len; d <= len; ++d)
            put(cy + d, cx + d);
        break;
      case 3: // cross
        for (int d = -len; d <= len; ++d) {
            put(cy, cx + d);
            put(cy + d, cx);
        }
        break;
      case 4: { // ring
        const int rad = len;
        for (int a = 0; a < 64; ++a) {
            double th = 2.0 * M_PI * a / 64.0;
            put(cy + int(std::lround(rad * std::sin(th))),
                cx + int(std::lround(rad * std::cos(th))));
        }
        break;
      }
      default: { // filled blob
        const int rad = std::max(1, len / 2);
        for (int dy = -rad; dy <= rad; ++dy)
            for (int dx = -rad; dx <= rad; ++dx)
                if (dy * dy + dx * dx <= rad * rad)
                    put(cy + dy, cx + dx);
        break;
      }
    }
}

} // namespace

Dataset
makeShapeDataset(int count, int image_size, int classes, Rng &rng)
{
    winomc_assert(classes >= 2 && classes <= 6, "2..6 classes supported");
    Dataset ds;
    ds.imageSize = image_size;
    ds.classes = classes;
    ds.images.reserve(size_t(count));
    ds.labels.reserve(size_t(count));

    for (int k = 0; k < count; ++k) {
        int cls = int(rng.uniformInt(0, classes - 1));
        Tensor img(image_size, image_size);
        img.fillGaussian(rng, 0.0f, 0.15f); // background noise
        drawShape(img, cls, image_size, rng);
        ds.images.push_back(std::move(img));
        ds.labels.push_back(cls);
    }
    return ds;
}

} // namespace winomc::nn
