#include "noc/router.hh"

#include "common/logging.hh"

namespace winomc::noc {

Router::Router(int node_, int net_ports, int vcs_, int buf_depth,
               int inj_lanes)
    : node(node_), netPorts(net_ports), vcs(vcs_), bufDepth(buf_depth),
      injLanes(inj_lanes),
      inputs(size_t(net_ports) + size_t(inj_lanes),
             std::vector<InputVc>(size_t(vcs_))),
      credits(size_t(net_ports), std::vector<int>(size_t(vcs_),
                                                  buf_depth)),
      ownerIn(size_t(net_ports), std::vector<int>(size_t(vcs_), -1)),
      rrPtr(size_t(net_ports) + 1, 0)
{
    winomc_assert(inj_lanes >= 1, "need at least one injection lane");
}

bool
Router::hasSpace(int port, int vc) const
{
    return int(inputs[size_t(port)][size_t(vc)].fifo.size()) < bufDepth;
}

void
Router::acceptFlit(int port, int vc, const Flit &f)
{
    auto &in = inputs[size_t(port)][size_t(vc)];
    winomc_assert(int(in.fifo.size()) < bufDepth,
                  "input buffer overflow at node ", node, " port ", port,
                  " vc ", vc);
    in.fifo.push_back(f);
}

void
Router::acceptCredit(int port, int vc)
{
    int &c = credits[size_t(port)][size_t(vc)];
    ++c;
    winomc_assert(c <= bufDepth, "credit overflow at node ", node);
}

size_t
Router::occupancy() const
{
    size_t n = 0;
    for (const auto &port : inputs)
        for (const auto &vc : port)
            n += vc.fifo.size();
    return n;
}

} // namespace winomc::noc
