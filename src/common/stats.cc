#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.hh"

namespace winomc {

void
Accumulator::add(double v)
{
    if (n == 0) {
        lo = hi = v;
    } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    ++n;
    total += v;
    double delta = v - mu;
    mu += delta / double(n);
    m2 += delta * (v - mu);
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    double delta = other.mu - mu;
    uint64_t tot = n + other.n;
    m2 += other.m2 + delta * delta * double(n) * double(other.n) /
        double(tot);
    mu = (mu * double(n) + other.mu * double(other.n)) / double(tot);
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
    total += other.total;
    n = tot;
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

double
Accumulator::stddev() const
{
    return n ? std::sqrt(m2 / double(n)) : 0.0;
}

Histogram::Histogram(double lo_, double hi_, int buckets)
    : lo(lo_), hi(hi_), width((hi_ - lo_) / buckets),
      counts(size_t(buckets) + 2, 0)
{
    winomc_assert(buckets > 0 && hi_ > lo_,
                  "histogram needs positive range and bucket count");
}

bool
Histogram::sameShape(const Histogram &other) const
{
    return lo == other.lo && hi == other.hi &&
           counts.size() == other.counts.size();
}

void
Histogram::merge(const Histogram &other)
{
    winomc_assert(sameShape(other),
                  "merging histograms of different shapes");
    n += other.n;
    total += other.total;
    for (size_t b = 0; b < counts.size(); ++b)
        counts[b] += other.counts[b];
}

void
Histogram::reset()
{
    n = 0;
    total = 0.0;
    std::fill(counts.begin(), counts.end(), 0);
}

void
Histogram::add(double v)
{
    ++n;
    total += v;
    if (v < lo) {
        ++counts.front();
    } else if (v >= hi) {
        ++counts.back();
    } else {
        ++counts[size_t((v - lo) / width) + 1];
    }
}

double
Histogram::bucketLow(int b) const
{
    return lo + b * width;
}

double
Histogram::percentile(double frac) const
{
    winomc_assert(frac >= 0.0 && frac <= 1.0, "percentile frac in [0,1]");
    // A histogram with zero samples has no percentiles. Returning `lo`
    // here (the old behaviour) silently presented the range minimum as
    // a latency quantile in dumps and report tables; NaN propagates to
    // the exporters, which render it as "-".
    if (n == 0)
        return std::numeric_limits<double>::quiet_NaN();
    uint64_t target = uint64_t(frac * double(n));
    uint64_t seen = counts.front();
    if (seen > target)
        return lo;
    for (int b = 0; b < buckets(); ++b) {
        seen += counts[size_t(b) + 1];
        if (seen > target)
            return bucketLow(b) + width;
    }
    return hi;
}

std::string
Histogram::toString(int max_width) const
{
    uint64_t peak = 1;
    for (int b = 0; b < buckets(); ++b)
        peak = std::max(peak, bucketCount(b));
    std::ostringstream oss;
    for (int b = 0; b < buckets(); ++b) {
        int bar = int(double(bucketCount(b)) / double(peak) * max_width);
        oss << "[" << bucketLow(b) << ", " << bucketLow(b) + width << ") "
            << std::string(size_t(bar), '#') << " " << bucketCount(b)
            << "\n";
    }
    return oss.str();
}

} // namespace winomc
