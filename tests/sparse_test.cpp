/**
 * @file
 * Sparse + low-precision execution tests: the WINOMC_PREC /
 * WINOMC_SPARSE knobs, the 16-bit storage conversions, the activation
 * zero-mask machinery, Winograd-domain pruning through training, and
 * the plan/tuner/weight-cache policy keying.
 *
 * The two load-bearing claims this suite pins down:
 *
 *  - sparse fp32 execution is BITWISE identical to dense fp32 (staged
 *    and fused, every ISA, every thread count): skipping a product
 *    whose factors are exactly zero removes only exact-zero addends
 *    from the fp32 accumulation chain, which cannot change any partial
 *    sum bit (finite inputs; the inf/NaN caveat is documented in
 *    winograd/conv.hh);
 *  - 16-bit activation storage is a pure storage transform: encode is
 *    software round-to-nearest-even on every ISA, accumulation stays
 *    fp32, so staged and fused agree bitwise and the error vs the fp32
 *    oracle stays inside the per-precision bounds asserted here.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/half.hh"
#include "common/metrics.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "nn/conv_layer.hh"
#include "quant/prune.hh"
#include "serve/plan_cache.hh"
#include "winograd/conv.hh"
#include "winograd/lowprec.hh"
#include "winograd/microkernel.hh"
#include "winograd/plan.hh"
#include "winograd/tuner.hh"

namespace winomc {
namespace {

/**
 * Every test in this file flips process-wide execution state on
 * purpose, so each one scopes its changes: baseline fp32-dense on
 * entry, everything restored on exit (precision, sparsity, ISA,
 * thread count, tuner hint). Plans capture the policy at construction,
 * so tests build their plans *after* each policy flip.
 */
struct PolicyGuard
{
    PolicyGuard()
    {
        setPrec(Prec::F32);
        setSparseMode(false);
    }
    ~PolicyGuard()
    {
        setPrec(Prec::F32);
        setSparseMode(false);
        mk::setIsa(mk::Isa::Auto);
        ThreadPool::global().setThreadCount(0);
        tune::setSparsityHint(0.0);
    }
};

/** Post-ReLU-looking input: Gaussian, negatives clamped, whole
 *  channel-planes and patch blocks zeroed so full tile panels go dead
 *  (the activation mask's fast path) alongside scattered zeros. */
Tensor
reluSparseInput(int b, int c, int h, int w, Rng &rng)
{
    Tensor x(b, c, h, w);
    x.fillGaussian(rng);
    for (int n = 0; n < b; ++n)
        for (int ch = 0; ch < c; ++ch)
            for (int i = 0; i < h; ++i)
                for (int j = 0; j < w; ++j) {
                    float &v = x.at(n, ch, i, j);
                    if (v < 0.0f || ch % 3 == 0 ||
                        (i / 4 + j / 4) % 2 == 0)
                        v = 0.0f;
                }
    return x;
}

/** Transformed weights pruned to `sparsity` by magnitude. */
WinoWeights
prunedWeights(int outCh, int inCh, int r, const WinogradAlgo &algo,
              double sparsity, Rng &rng)
{
    Tensor w(outCh, inCh, r, r);
    w.fillUniform(rng);
    WinoWeights W = transformWeights(w, algo);
    quant::magnitudePrune(W, sparsity).apply(W);
    return W;
}

// ------------------------------------------------------------- Knobs

TEST(LowPrecKnobs, ParsePrecAcceptsAliasesAndRejectsGarbage)
{
    EXPECT_EQ(parsePrec(nullptr), Prec::F32);
    EXPECT_EQ(parsePrec(""), Prec::F32);
    EXPECT_EQ(parsePrec("fp32"), Prec::F32);
    EXPECT_EQ(parsePrec("fp16"), Prec::F16);
    EXPECT_EQ(parsePrec("bf16"), Prec::Bf16);
    EXPECT_EQ(parsePrec("  BF16  "), Prec::Bf16);
    EXPECT_EQ(parsePrec("FP16"), Prec::F16);
    // Garbage warns and falls back to the default.
    EXPECT_EQ(parsePrec("int8"), Prec::F32);
    EXPECT_EQ(parsePrec("fast"), Prec::F32);
}

TEST(LowPrecKnobs, ParseSparseAcceptsBooleanSpellings)
{
    EXPECT_FALSE(parseSparse(nullptr));
    EXPECT_FALSE(parseSparse(""));
    EXPECT_TRUE(parseSparse("on"));
    EXPECT_TRUE(parseSparse("1"));
    EXPECT_TRUE(parseSparse("TRUE"));
    EXPECT_FALSE(parseSparse("off"));
    EXPECT_FALSE(parseSparse("0"));
    EXPECT_FALSE(parseSparse("false"));
    EXPECT_FALSE(parseSparse("maybe")); // garbage -> default
}

TEST(LowPrecKnobs, PrecNamesAndBytes)
{
    EXPECT_STREQ(precName(Prec::F32), "fp32");
    EXPECT_STREQ(precName(Prec::F16), "fp16");
    EXPECT_STREQ(precName(Prec::Bf16), "bf16");
    EXPECT_EQ(precBytes(Prec::F32), 4);
    EXPECT_EQ(precBytes(Prec::F16), 2);
    EXPECT_EQ(precBytes(Prec::Bf16), 2);
}

TEST(LowPrecKnobs, PolicySuffixEmptyAtDefaultOnly)
{
    // The empty default keeps pre-policy cache keys and weight tags
    // byte-identical — on-disk tuner caches survive the upgrade.
    EXPECT_EQ(execPolicySuffix({Prec::F32, false}), "");
    EXPECT_EQ(execPolicySuffix({Prec::F16, false}), "_fp16");
    EXPECT_EQ(execPolicySuffix({Prec::Bf16, false}), "_bf16");
    EXPECT_EQ(execPolicySuffix({Prec::F32, true}), "_sp");
    EXPECT_EQ(execPolicySuffix({Prec::Bf16, true}), "_bf16_sp");
}

// -------------------------------------------------- Half conversions

TEST(HalfConvert, Bf16EncodeIsRoundToNearestEven)
{
    // Exactly representable values round-trip bitwise (powers of two
    // are exact at any bf16-covered exponent).
    for (float v : {0.0f, 1.0f, -2.5f, 0.15625f, std::ldexp(1.0f, 100),
                    std::ldexp(1.0f, -100)})
        EXPECT_EQ(half::bf16ToF32(half::f32ToBf16(v)), v) << v;
    // 1 + 2^-8 is the exact tie between 1.0 and the next bf16; RNE
    // picks the even mantissa (1.0).
    EXPECT_EQ(half::bf16ToF32(half::f32ToBf16(1.00390625f)), 1.0f);
    // Just above the tie rounds up.
    EXPECT_GT(half::bf16ToF32(half::f32ToBf16(1.0040f)), 1.0f);
    // Signed zero and infinities survive.
    EXPECT_EQ(half::f32ToBf16(-0.0f), 0x8000u);
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(half::bf16ToF32(half::f32ToBf16(inf)), inf);
    EXPECT_EQ(half::bf16ToF32(half::f32ToBf16(-inf)), -inf);
    // NaN stays NaN (quieted, never squashed to inf).
    EXPECT_TRUE(std::isnan(
        half::bf16ToF32(half::f32ToBf16(std::nanf("0x7")))));
}

TEST(HalfConvert, F16EncodeHandlesSubnormalsAndOverflow)
{
    for (float v : {0.0f, 1.0f, -1.5f, 0.333251953125f, 65504.0f})
        EXPECT_EQ(half::f16ToF32(half::f32ToF16(v)), v) << v;
    // Smallest f16 subnormal is exact.
    const float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(half::f32ToF16(tiny), 0x0001u);
    EXPECT_EQ(half::f16ToF32(std::uint16_t(0x0001u)), tiny);
    // Below half the smallest subnormal rounds to signed zero.
    EXPECT_EQ(half::f32ToF16(std::ldexp(1.0f, -26)), 0x0000u);
    EXPECT_EQ(half::f32ToF16(-std::ldexp(1.0f, -26)), 0x8000u);
    // Above the f16 range overflows to inf under RNE.
    EXPECT_EQ(half::f32ToF16(65520.0f), 0x7c00u);
    EXPECT_EQ(half::f32ToF16(1.0e6f), 0x7c00u);
    EXPECT_TRUE(std::isnan(half::f16ToF32(half::f32ToF16(
        std::numeric_limits<float>::quiet_NaN()))));
}

TEST(HalfConvert, EncodeDecodeIdempotentOverAllPayloads)
{
    // decode is exact, so encode(decode(h)) == h for every non-NaN
    // 16-bit pattern — both formats. This is what makes mixed
    // hardware/software decode paths interchangeable.
    for (std::uint32_t h = 0; h < 0x10000u; ++h) {
        const auto u = std::uint16_t(h);
        const bool f16Nan = (h & 0x7c00u) == 0x7c00u && (h & 0x03ffu);
        if (!f16Nan) {
            ASSERT_EQ(half::f32ToF16(half::f16ToF32(u)), u) << h;
        }
        const bool bfNan = (h & 0x7f80u) == 0x7f80u && (h & 0x007fu);
        if (!bfNan) {
            ASSERT_EQ(half::f32ToBf16(half::bf16ToF32(u)), u) << h;
        }
    }
}

TEST(HalfConvert, VectorEncodeMatchesReferenceBitwise)
{
    // The microkernel cvtFloatToHalf must equal the software reference
    // bit-for-bit on every ISA (the encode is deliberately software).
    PolicyGuard guard;
    Rng rng(2024);
    std::vector<float> src(1003);
    for (auto &v : src)
        v = float(rng.gaussian(0.0, 10.0));
    src[0] = 0.0f;
    src[1] = -0.0f;
    src[2] = 65520.0f; // f16 overflow
    src[3] = std::ldexp(1.0f, -25); // f16 subnormal tie

    for (mk::Isa isa : {mk::Isa::Scalar, mk::Isa::Auto}) {
        mk::setIsa(isa);
        const mk::MicroKernels &K = mk::kernels();
        std::vector<std::uint16_t> dst(src.size(), 0xffffu);
        K.cvtFloatToHalf(dst.data(), src.data(),
                         std::int64_t(src.size()), mk::kHalfF16);
        for (std::size_t i = 0; i < src.size(); ++i)
            ASSERT_EQ(dst[i], half::f32ToF16(src[i])) << i;
        K.cvtFloatToHalf(dst.data(), src.data(),
                         std::int64_t(src.size()), mk::kHalfBf16);
        for (std::size_t i = 0; i < src.size(); ++i)
            ASSERT_EQ(dst[i], half::f32ToBf16(src[i])) << i;

        // And decode is exact: float(dst) back through cvtHalfToFloat
        // equals the reference decode.
        std::vector<float> back(src.size(), -1.0f);
        K.cvtHalfToFloat(back.data(), dst.data(),
                         std::int64_t(src.size()), mk::kHalfBf16);
        for (std::size_t i = 0; i < src.size(); ++i)
            ASSERT_EQ(back[i], half::bf16ToF32(dst[i])) << i;
    }
}

// ------------------------------------------------- Zero-mask kernels

TEST(PanelZeroMask, DetectsExactZeroLaneSets)
{
    PolicyGuard guard;
    const int entries = 36; // F(4,3) alpha^2 — exercises >32 bits
    std::vector<float> x(std::size_t(entries) * mk::kTilePanel, 0.0f);
    // Entry 3: one nonzero lane. Entry 35: -0.0 everywhere (still
    // "zero" — negative zero products are exact zeros too).
    x[3 * mk::kTilePanel + 7] = 1.0e-30f;
    for (int l = 0; l < mk::kTilePanel; ++l)
        x[35 * mk::kTilePanel + l] = -0.0f;

    for (mk::Isa isa : {mk::Isa::Scalar, mk::Isa::Auto}) {
        mk::setIsa(isa);
        const mk::MicroKernels &K = mk::kernels();
        const std::uint64_t m = K.panelZeroMask(
            x.data(), mk::kTilePanel, entries, mk::kTilePanel);
        for (int e = 0; e < entries; ++e)
            EXPECT_EQ((m >> e) & 1u, e == 3 ? 0u : 1u)
                << "entry " << e << " isa " << int(isa);

        // Ragged panel: only cnt lanes are inspected, so entry 3 with
        // its nonzero at lane 7 reads all-zero when cnt <= 7.
        const std::uint64_t r = K.panelZeroMask(
            x.data(), mk::kTilePanel, entries, 5);
        EXPECT_EQ((r >> 3) & 1u, 1u);
    }
}

TEST(PanelZeroMask, HalfVariantTreatsSignedZeroAsZero)
{
    PolicyGuard guard;
    const int entries = 16;
    std::vector<std::uint16_t> x(std::size_t(entries) * mk::kTilePanel,
                                 0x0000u);
    x[0 * mk::kTilePanel + 1] = 0x8000u; // -0.0 in both formats
    x[5 * mk::kTilePanel + 0] = 0x3c00u; // 1.0 (f16)

    for (mk::Isa isa : {mk::Isa::Scalar, mk::Isa::Auto}) {
        mk::setIsa(isa);
        const std::uint64_t m = mk::kernels().panelZeroMaskHalf(
            x.data(), mk::kTilePanel, entries, mk::kTilePanel);
        EXPECT_EQ((m >> 0) & 1u, 1u) << int(isa);
        EXPECT_EQ((m >> 5) & 1u, 0u) << int(isa);
        for (int e = 6; e < entries; ++e)
            EXPECT_EQ((m >> e) & 1u, 1u);
    }
}

TEST(ActMaskUnit, OrPanelBitsCrossesWordBoundaries)
{
    // alpha = 6 -> 36 uv bits per panel: panel 1 starts at bit 36, so
    // its run spills from word 0 into word 1 — the spill path.
    ActMask m;
    m.reshape(36, 2, 1, 40); // 40 tiles -> 3 panels of 16
    EXPECT_EQ(m.panels(), 3);
    m.clear();
    m.orPanelBits(1, 0, 1, (std::uint64_t(1) << 35) | 1u);
    EXPECT_TRUE(m.panelZero(0, 1, 0, 1));
    EXPECT_TRUE(m.panelZero(35, 1, 0, 1));
    EXPECT_FALSE(m.panelZero(1, 1, 0, 1));
    // Other planes and panels untouched.
    EXPECT_FALSE(m.panelZero(0, 0, 0, 1));
    EXPECT_FALSE(m.panelZero(0, 1, 0, 0));
    m.clear();
    EXPECT_FALSE(m.panelZero(0, 1, 0, 1));
}

TEST(ActMaskUnit, RowRangeZeroIsConservative)
{
    // 1 image, 40 tiles: flat row = 40 elements, panels of 16.
    ActMask m;
    m.reshape(4, 1, 1, 40);
    m.clear();
    // Nothing marked: no range is skippable.
    EXPECT_FALSE(m.rowRangeZero(2, 0, 0, 40));
    // Mark panels 0 and 2 zero for uv=2; panel 1 stays live.
    m.orPanelBits(0, 0, 0, std::uint64_t(1) << 2);
    m.orPanelBits(0, 0, 2, std::uint64_t(1) << 2);
    EXPECT_TRUE(m.rowRangeZero(2, 0, 0, 16));   // exactly panel 0
    EXPECT_TRUE(m.rowRangeZero(2, 0, 0, 10));   // inside panel 0
    EXPECT_FALSE(m.rowRangeZero(2, 0, 0, 17));  // touches panel 1
    EXPECT_FALSE(m.rowRangeZero(2, 0, 16, 16)); // panel 1 itself
    EXPECT_TRUE(m.rowRangeZero(2, 0, 32, 8));   // tail panel
    EXPECT_FALSE(m.rowRangeZero(3, 0, 0, 16));  // other uv untouched
}

// ------------------------------------------ Bitwise sparse execution

struct SparseCase
{
    int batch, in_ch, out_ch, h, w, m;
};

class SparseParityP : public ::testing::TestWithParam<SparseCase> {};

TEST_P(SparseParityP, SparseForwardBitwiseEqualsDense)
{
    PolicyGuard guard;
    const auto p = GetParam();
    const WinogradAlgo algo = makeWinograd(p.m, 3);
    Rng rng(515);
    Tensor x = reluSparseInput(p.batch, p.in_ch, p.h, p.w, rng);
    Tensor dy(p.batch, p.out_ch, p.h, p.w);
    dy.fillUniform(rng);
    const WinoWeights W =
        prunedWeights(p.out_ch, p.in_ch, 3, algo, 0.6, rng);

    for (mk::Isa isa : {mk::Isa::Scalar, mk::Isa::Auto}) {
        mk::setIsa(isa);
        for (int threads : {1, 8}) {
            ThreadPool::global().setThreadCount(threads);

            // Dense fp32 reference under the same ISA/thread setting.
            setSparseMode(false);
            WinoPlan dense(algo, p.batch, p.in_ch, p.out_ch, p.h, p.w);
            Tensor y_ref(p.batch, p.out_ch, p.h, p.w);
            Tensor dx_ref(p.batch, p.in_ch, p.h, p.w);
            WinoWeights dW_ref(algo.alpha, p.out_ch, p.in_ch);
            dense.forwardInto(x, W, y_ref);
            dense.backwardDataInto(dy, W, dx_ref);
            dense.gradWeightsInto(x, dy, dW_ref);
            Tensor yf_ref(p.batch, p.out_ch, p.h, p.w);
            dense.forwardFusedInto(x, W, yf_ref);

            setSparseMode(true);
            WinoPlan sparse(algo, p.batch, p.in_ch, p.out_ch, p.h, p.w);
            EXPECT_TRUE(sparse.matches(algo, p.batch, p.in_ch,
                                       p.out_ch, p.h, p.w));
            // The dense-policy plan no longer matches once the policy
            // flipped — pools must rebuild, never alias.
            EXPECT_FALSE(dense.matches(algo, p.batch, p.in_ch,
                                       p.out_ch, p.h, p.w));
            Tensor y(p.batch, p.out_ch, p.h, p.w);
            Tensor dx(p.batch, p.in_ch, p.h, p.w);
            WinoWeights dW(algo.alpha, p.out_ch, p.in_ch);
            // Twice: the second pass runs on dirty slabs and a dirty
            // (rebuilt) activation mask.
            for (int pass = 0; pass < 2; ++pass) {
                sparse.forwardInto(x, W, y);
                sparse.backwardDataInto(dy, W, dx);
                sparse.gradWeightsInto(x, dy, dW);
                EXPECT_EQ(y.maxAbsDiff(y_ref), 0.0f)
                    << "isa " << int(isa) << " threads " << threads;
                EXPECT_EQ(dx.maxAbsDiff(dx_ref), 0.0f);
                EXPECT_EQ(dW.maxAbsDiff(dW_ref), 0.0f);
            }
            Tensor yf(p.batch, p.out_ch, p.h, p.w);
            sparse.forwardFusedInto(x, W, yf);
            EXPECT_EQ(yf.maxAbsDiff(yf_ref), 0.0f) << "fused";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SparseParityP,
    ::testing::Values(
        SparseCase{1, 1, 1, 3, 3, 2},   // single ragged tile
        SparseCase{2, 3, 4, 9, 7, 2},   // ragged grid
        SparseCase{2, 4, 3, 12, 12, 4}, // F(4,3), even grid
        SparseCase{1, 5, 2, 18, 10, 6}),// F(6,3), alpha^2 = 64 bits
    [](const ::testing::TestParamInfo<SparseCase> &info) {
        const auto &p = info.param;
        return "b" + std::to_string(p.batch) + "c" +
               std::to_string(p.in_ch) + "k" + std::to_string(p.out_ch) +
               "h" + std::to_string(p.h) + "w" + std::to_string(p.w) +
               "F" + std::to_string(p.m);
    });

TEST(SparseExec, AllZeroInputYieldsExactZeroOutput)
{
    PolicyGuard guard;
    setSparseMode(true);
    const WinogradAlgo algo = makeWinograd(4, 3);
    Rng rng(77);
    Tensor x(2, 3, 10, 10); // zeros: every panel is skippable
    const WinoWeights W = prunedWeights(4, 3, 3, algo, 0.0, rng);
    WinoPlan plan(algo, 2, 3, 4, 10, 10);
    Tensor y(2, 4, 10, 10);
    plan.forwardInto(x, W, y);
    EXPECT_EQ(y.absMax(), 0.0f);
}

// --------------------------------------------- Half-precision bounds

class HalfPrecP : public ::testing::TestWithParam<SparseCase> {};

TEST_P(HalfPrecP, ForwardWithinDocumentedBoundsAndFusedBitwise)
{
    PolicyGuard guard;
    const auto p = GetParam();
    const WinogradAlgo algo = makeWinograd(p.m, 3);
    Rng rng(909);
    Tensor x = reluSparseInput(p.batch, p.in_ch, p.h, p.w, rng);
    Tensor w(p.out_ch, p.in_ch, 3, 3);
    w.fillKaiming(rng);
    const WinoWeights W = transformWeights(w, algo);

    Tensor y_ref(p.batch, p.out_ch, p.h, p.w);
    {
        WinoPlan dense(algo, p.batch, p.in_ch, p.out_ch, p.h, p.w);
        dense.forwardInto(x, W, y_ref);
    }
    const float scale = std::max(1.0f, y_ref.absMax());

    // Storage-format relative error bounds, measured and rounded up
    // with ~3-4x headroom (documented in DESIGN.md §4.15): the 16-bit
    // rounding happens once, on the transformed activations, and the
    // inverse transform amplifies by a constant that grows with m
    // (F(4,3)'s inverse has larger entries than F(2,3)'s, hence the
    // per-m split). bf16 keeps 8 mantissa bits (eps 2^-8), f16 11
    // (eps 2^-11).
    struct Bound { Prec prec; float rel; };
    const float bf16Rel = p.m <= 2 ? 3e-2f : 1e-1f;
    const float f16Rel = p.m <= 2 ? 4e-3f : 1e-2f;
    for (Bound b : {Bound{Prec::Bf16, bf16Rel}, Bound{Prec::F16, f16Rel}}) {
        setPrec(b.prec);
        // Half storage composes with sparse skipping; run both ways.
        for (bool sp : {false, true}) {
            setSparseMode(sp);
            WinoPlan plan(algo, p.batch, p.in_ch, p.out_ch, p.h, p.w);
            Tensor y(p.batch, p.out_ch, p.h, p.w);
            plan.forwardInto(x, W, y);
            EXPECT_LT(y.maxAbsDiff(y_ref), b.rel * scale)
                << precName(b.prec) << " sparse=" << sp;
            // Same plan, fused: identical encode + fp32 accumulation
            // order per output element, so staged and fused agree
            // BITWISE even in 16-bit storage.
            Tensor yf(p.batch, p.out_ch, p.h, p.w);
            plan.forwardFusedInto(x, W, yf);
            EXPECT_EQ(yf.maxAbsDiff(y), 0.0f)
                << precName(b.prec) << " sparse=" << sp;
            // A half-policy forward does not populate the fp32 input
            // slab; training callers must re-scatter.
            EXPECT_FALSE(plan.inputCached());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, HalfPrecP,
    ::testing::Values(SparseCase{2, 3, 4, 9, 7, 2},
                      SparseCase{2, 4, 3, 12, 12, 4}),
    [](const ::testing::TestParamInfo<SparseCase> &info) {
        const auto &p = info.param;
        return "b" + std::to_string(p.batch) + "c" +
               std::to_string(p.in_ch) + "F" + std::to_string(p.m);
    });

TEST(HalfPrec, TrainingThroughHalfForwardStillLearns)
{
    // The backward pass re-scatters the saved fp32 input, so training
    // with 16-bit forward storage follows the fp32 trajectory closely.
    PolicyGuard guard;
    Rng rng_a(55), rng_b(55), data_rng(66);
    const auto &algo = algoF2x2_3x3();
    nn::ConvLayer ref(2, 3, 3, nn::ConvMode::WinogradLayer, algo, rng_a);
    setPrec(Prec::Bf16);
    nn::ConvLayer lp(2, 3, 3, nn::ConvMode::WinogradLayer, algo, rng_b);

    Tensor x(2, 2, 8, 8);
    x.fillUniform(data_rng);
    // One fixed upstream gradient for BOTH layers: the backward pass
    // consumes the saved fp32 input (not the 16-bit forward result),
    // so with identical dy the weight trajectories must stay bitwise
    // in lockstep — any forward-storage error shows up in y only.
    Tensor dy(2, 3, 8, 8);
    dy.fillUniform(data_rng);
    for (int step = 0; step < 4; ++step) {
        setPrec(Prec::F32);
        Tensor ya = ref.forward(x, true);
        ref.backward(dy);
        ref.step(0.05f);
        setPrec(Prec::Bf16);
        Tensor yb = lp.forward(x, true);
        lp.backward(dy);
        lp.step(0.05f);
        EXPECT_LT(ya.maxAbsDiff(yb),
                  3e-2f * std::max(1.0f, ya.absMax()))
            << "step " << step;
    }
    EXPECT_EQ(ref.winoWeights().maxAbsDiff(lp.winoWeights()), 0.0f);
}

// ------------------------------------------- Pruning through training

TEST(Pruning, PrunedCoefficientsStayExactlyZeroThroughSgd)
{
    PolicyGuard guard;
    setSparseMode(true);
    Rng rng(41), data_rng(42);
    const auto &algo = algoF2x2_3x3();
    nn::ConvLayer layer(3, 4, 3, nn::ConvMode::WinogradLayer, algo, rng);

    const double achieved = layer.pruneWinogradWeights(0.7);
    EXPECT_NEAR(achieved, 0.7, 0.01);
    const quant::PruneMask *mask = layer.winoPruneMask();
    ASSERT_NE(mask, nullptr);

    Tensor x(4, 3, 8, 8);
    for (int step = 0; step < 6; ++step) {
        x.fillUniform(data_rng);
        Tensor y = layer.forward(x, true);
        layer.backward(y);
        layer.step(0.05f);
    }

    const WinoWeights &W = layer.winoWeights();
    std::size_t live_moved = 0;
    for (int uv = 0; uv < W.uvCount(); ++uv)
        for (int j = 0; j < W.outChannels(); ++j)
            for (int i = 0; i < W.inChannels(); ++i) {
                if (mask->pruned(uv, j, i))
                    ASSERT_EQ(W.at(uv, j, i), 0.0f)
                        << uv << "," << j << "," << i;
                else if (W.at(uv, j, i) != 0.0f)
                    ++live_moved;
            }
    // The surviving coefficients actually trained, and the achieved
    // ratio (exact-count rounding of 0.7) held through every step.
    EXPECT_GT(live_moved, 0u);
    EXPECT_GE(quant::winogradWeightSparsity(W), achieved - 1e-12);
}

// ----------------------------------------------- Policy-keyed caches

TEST(PolicyKeys, PlanCacheNeverAliasesWeightsAcrossPolicies)
{
    PolicyGuard guard;
    serve::PlanCache cache(std::size_t(1) << 30);
    const auto &algo = algoF2x2_3x3();
    Rng rng(7);
    Tensor w(4, 3, 3, 3);
    w.fillUniform(rng);
    const ConvSpec spec{"layer0", 8, 3, 4, 16, 16, 3};

    auto w32 = cache.transformedWeights(spec, w, algo);
    auto w32b = cache.transformedWeights(spec, w, algo);
    EXPECT_EQ(w32.get(), w32b.get()); // same policy -> shared slab

    setPrec(Prec::Bf16);
    auto wbf = cache.transformedWeights(spec, w, algo);
    EXPECT_NE(wbf.get(), w32.get()); // engines never alias across prec

    setSparseMode(true);
    auto wbfsp = cache.transformedWeights(spec, w, algo);
    EXPECT_NE(wbfsp.get(), wbf.get());

    setPrec(Prec::F32);
    setSparseMode(false);
    auto w32c = cache.transformedWeights(spec, w, algo);
    EXPECT_EQ(w32c.get(), w32.get()); // back to the original entry
}

TEST(PolicyKeys, TunerMemoizesPerPolicy)
{
    PolicyGuard guard;
    tune::setTuneMode(tune::TuneMode::Analytic);
    tune::setTuneCachePath(nullptr);
    tune::resetTunerForTest();
    const ConvSpec spec{"conv", 8, 16, 16, 32, 32, 3};

    const tune::TunerStats s0 = tune::tunerStats();
    tune::selectAlgorithm(spec);
    tune::selectAlgorithm(spec);
    const tune::TunerStats s1 = tune::tunerStats();
    EXPECT_EQ(s1.memoHits, s0.memoHits + 1);

    // A different policy is a different key: full selection again, no
    // memo hit.
    setPrec(Prec::Bf16);
    tune::selectAlgorithm(spec);
    const tune::TunerStats s2 = tune::tunerStats();
    EXPECT_EQ(s2.memoHits, s1.memoHits);
    EXPECT_EQ(s2.selects, s1.selects + 1);
    // And it memoizes under its own key.
    tune::selectAlgorithm(spec);
    EXPECT_EQ(tune::tunerStats().memoHits, s1.memoHits + 1);
    tune::resetTunerForTest();
}

TEST(PolicyKeys, CostModelChargesPolicyAdjustments)
{
    PolicyGuard guard;
    const ConvSpec spec{"conv", 8, 32, 32, 32, 32, 3};
    tune::AlgoChoice wino;
    wino.kind = tune::AlgoKind::Winograd;
    wino.m = 4;

    const double base = tune::predictMs(spec, wino);

    // 16-bit activations shrink the DRAM term.
    setPrec(Prec::Bf16);
    EXPECT_LT(tune::predictMs(spec, wino), base);
    setPrec(Prec::F32);

    // A sparse policy with a nonzero observed skip ratio shrinks the
    // elementwise FLOP term; with a zero hint the model is unchanged.
    setSparseMode(true);
    EXPECT_DOUBLE_EQ(tune::predictMs(spec, wino), base);
    tune::setSparsityHint(0.8);
    EXPECT_LT(tune::predictMs(spec, wino), base);
    // The hint only applies under a sparse policy.
    setSparseMode(false);
    EXPECT_DOUBLE_EQ(tune::predictMs(spec, wino), base);
}

// ----------------------------------------------- Measured acceptance

TEST(SparseExec, SkipCountersAndSparseSpeedupAtHighSparsity)
{
    // The PR's perf acceptance gate: at >= 70% weight sparsity (plus
    // ReLU-style activation zeros) the sparse forward must beat the
    // dense fp32 forward on the same shape, and the quant.* counters
    // must show real skipping. Timed as min-of-N on a shape large
    // enough to swamp per-call overhead.
    // Channel-heavy shape: the elementwise GEMM (where sparsity pays)
    // dominates the transforms, as in the deep layers the paper
    // prunes. Measured margin at this shape is ~20%, so the < below
    // has real cushion against timer noise.
    PolicyGuard guard;
    const WinogradAlgo algo = makeWinograd(4, 3);
    const int B = 2, C = 128, K = 128, H = 32;
    Rng rng(3137);
    Tensor x = reluSparseInput(B, C, H, H, rng);
    const WinoWeights W = prunedWeights(K, C, 3, algo, 0.85, rng);
    EXPECT_GE(quant::winogradWeightSparsity(W), 0.84);
    Tensor y(B, K, H, H);

    auto timeMs = [&](WinoPlan &plan, int reps) {
        plan.forwardInto(x, W, y); // warm the slabs
        double best = 1e30;
        for (int i = 0; i < reps; ++i) {
            const auto t0 = std::chrono::steady_clock::now();
            plan.forwardInto(x, W, y);
            const std::chrono::duration<double, std::milli> d =
                std::chrono::steady_clock::now() - t0;
            best = std::min(best, d.count());
        }
        return best;
    };

    setSparseMode(false);
    WinoPlan dense(algo, B, C, K, H, H);
    const double dense_ms = timeMs(dense, 7);

    setSparseMode(true);
    WinoPlan sparse(algo, B, C, K, H, H);

    // Counter check around one instrumented run.
    const bool wasEnabled = metrics::enabled();
    metrics::setEnabled(true);
    metrics::reset();
    sparse.forwardInto(x, W, y);
    double rows_total = 0, rows_skipped = 0, panels_zero = 0;
    for (const auto &s : metrics::snapshot()) {
        if (s.name == "quant.ew.rows_total")
            rows_total = s.value;
        else if (s.name == "quant.ew.rows_skipped")
            rows_skipped = s.value;
        else if (s.name == "quant.mask.panels_zero")
            panels_zero = s.value;
    }
    metrics::reset();
    metrics::setEnabled(wasEnabled);
    EXPECT_GT(rows_total, 0.0);
    EXPECT_GT(panels_zero, 0.0);
    // At 85% weight sparsity the row compaction must be dropping well
    // over half of the candidate rows.
    EXPECT_GT(rows_skipped, 0.5 * rows_total);

    const double sparse_ms = timeMs(sparse, 7);
    RecordProperty("dense_ms", std::to_string(dense_ms));
    RecordProperty("sparse_ms", std::to_string(sparse_ms));
    // The timing gate holds for vector dispatch, where the sparse
    // path's single y-pass removes the traffic the blocked dense
    // kernel re-reads. Under pinned scalar dispatch (WINOMC_ISA=
    // scalar CI pass) the dense kernel is not bandwidth-bound and the
    // compaction scan has no SIMD to amortize against, so sparse can
    // lose there — correctness (bitwise parity, counters above) is
    // still enforced; only the speed claim is vector-scoped.
    if (mk::activeIsa() != mk::Isa::Scalar)
        EXPECT_LT(sparse_ms, dense_ms)
            << "sparse execution must beat dense fp32 at 85% sparsity";
}

TEST(HalfPrec, Bf16MovesMeasurablyFewerBytesThanFp32)
{
    // The PR's traffic acceptance gate: wino.staged.fwd.bytes_moved
    // counts the X-tile stream at its storage width, so bf16 must
    // report strictly fewer bytes than fp32 for one identical forward.
    PolicyGuard guard;
    const WinogradAlgo algo = makeWinograd(4, 3);
    const int B = 2, C = 8, K = 8, H = 24;
    Rng rng(11);
    Tensor x(B, C, H, H);
    x.fillUniform(rng);
    Tensor w(K, C, 3, 3);
    w.fillUniform(rng);
    const WinoWeights W = transformWeights(w, algo);
    Tensor y(B, K, H, H);

    const bool wasEnabled = metrics::enabled();
    auto measuredBytes = [&]() {
        metrics::setEnabled(true);
        metrics::reset();
        WinoPlan plan(algo, B, C, K, H, H);
        plan.forwardInto(x, W, y);
        double bytes = 0;
        for (const auto &s : metrics::snapshot())
            if (s.name == "wino.staged.fwd.bytes_moved")
                bytes = s.value;
        metrics::reset();
        return bytes;
    };

    const double b32 = measuredBytes();
    setPrec(Prec::Bf16);
    const double b16 = measuredBytes();
    metrics::setEnabled(wasEnabled);

    ASSERT_GT(b32, 0.0);
    ASSERT_GT(b16, 0.0);
    EXPECT_LT(b16, b32);
    // The saving is exactly the X-slab halving: two streams touch the
    // slab (transform write, elementwise read), 2 bytes saved per
    // element each.
    const double xSlabElems =
        double(algo.alpha) * algo.alpha *
        TileGrid(H, H, algo).tiles() * B * C;
    EXPECT_NEAR(b32 - b16, 2.0 * xSlabElems * 2.0, 1.0);
}

} // namespace
} // namespace winomc
