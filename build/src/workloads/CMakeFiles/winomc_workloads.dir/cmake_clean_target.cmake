file(REMOVE_RECURSE
  "libwinomc_workloads.a"
)
