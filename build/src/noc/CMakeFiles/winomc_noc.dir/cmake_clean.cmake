file(REMOVE_RECURSE
  "CMakeFiles/winomc_noc.dir/memcentric.cc.o"
  "CMakeFiles/winomc_noc.dir/memcentric.cc.o.d"
  "CMakeFiles/winomc_noc.dir/network.cc.o"
  "CMakeFiles/winomc_noc.dir/network.cc.o.d"
  "CMakeFiles/winomc_noc.dir/router.cc.o"
  "CMakeFiles/winomc_noc.dir/router.cc.o.d"
  "CMakeFiles/winomc_noc.dir/topology.cc.o"
  "CMakeFiles/winomc_noc.dir/topology.cc.o.d"
  "CMakeFiles/winomc_noc.dir/traffic.cc.o"
  "CMakeFiles/winomc_noc.dir/traffic.cc.o.d"
  "libwinomc_noc.a"
  "libwinomc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winomc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
