/**
 * @file
 * Portable SIMD vector wrapper for the micro-kernel TUs.
 *
 * VF (packed float) and VD (packed double) map to the widest vector
 * unit the *current translation unit* is compiled for, selected from
 * the compiler's predefined macros:
 *
 *   __AVX512F__          -> 16 floats / 8 doubles
 *   __AVX2__ + __FMA__   ->  8 floats / 4 doubles
 *   __SSE2__ (x86-64)    ->  4 floats / 2 doubles
 *   anything else        ->  1 float  / 1 double (plain scalar)
 *
 * IMPORTANT: this header is meant to be included ONLY from the
 * ISA-specific micro-kernel TUs (winograd/microkernel_*.cc), each of
 * which is compiled with its own -m flags. Everything lives in an
 * anonymous namespace so two TUs compiled at different ISA levels can
 * coexist in one binary without ODR violations; the only symbols a TU
 * exports are its uniquely named kernel-table factory.
 *
 * Masked tails: loadPartial/storePartial handle the trailing n < W
 * lanes of a loop (AVX-512 uses native mask registers; the narrower
 * levels fall back to a lane loop). Partial loads zero-fill the lanes
 * beyond n so arithmetic on the tail never touches garbage.
 */

#ifndef WINOMC_COMMON_SIMD_HH
#define WINOMC_COMMON_SIMD_HH

#include <cstdint>

#include "common/half.hh"

#if defined(__AVX512F__)
#define WINOMC_SIMD_LEVEL 3
#elif defined(__AVX2__) && defined(__FMA__)
#define WINOMC_SIMD_LEVEL 2
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define WINOMC_SIMD_LEVEL 1
#else
#define WINOMC_SIMD_LEVEL 0
#endif

#if WINOMC_SIMD_LEVEL >= 1
#include <immintrin.h>
#endif

namespace {
namespace simd {

#if WINOMC_SIMD_LEVEL == 3

struct VF
{
    __m512 v;
    static constexpr int W = 16;

    static VF zero() { return {_mm512_setzero_ps()}; }
    static VF broadcast(float x) { return {_mm512_set1_ps(x)}; }
    static VF load(const float *p) { return {_mm512_loadu_ps(p)}; }
    static VF
    loadPartial(const float *p, int n)
    {
        const __mmask16 m = __mmask16((1u << n) - 1u);
        return {_mm512_maskz_loadu_ps(m, p)};
    }
    void store(float *p) const { _mm512_storeu_ps(p, v); }
    void
    storePartial(float *p, int n) const
    {
        _mm512_mask_storeu_ps(p, __mmask16((1u << n) - 1u), v);
    }
    static VF
    fma(VF a, VF b, VF acc)
    {
        return {_mm512_fmadd_ps(a.v, b.v, acc.v)};
    }
    static VF add(VF a, VF b) { return {_mm512_add_ps(a.v, b.v)}; }
    static VF mul(VF a, VF b) { return {_mm512_mul_ps(a.v, b.v)}; }
    /** max(x, 0) with the scalar `x > 0 ? x : 0` semantics. */
    static VF
    reluOf(VF x)
    {
        return {_mm512_max_ps(x.v, _mm512_setzero_ps())};
    }
    /** 1.0f where x > 0, else 0.0f. */
    static VF
    gtZeroOne(VF x)
    {
        const __mmask16 m =
            _mm512_cmp_ps_mask(x.v, _mm512_setzero_ps(), _CMP_GT_OQ);
        return {_mm512_maskz_mov_ps(m, _mm512_set1_ps(1.0f))};
    }
    /** Decode W bfloat16 payloads (value << 16 — exact). */
    static VF
    loadBf16(const std::uint16_t *p)
    {
        const __m256i raw =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
        return {_mm512_castsi512_ps(
            _mm512_slli_epi32(_mm512_cvtepu16_epi32(raw), 16))};
    }
    static VF
    loadBf16Partial(const std::uint16_t *p, int n)
    {
        alignas(32) std::uint16_t tmp[W] = {};
        for (int i = 0; i < n; ++i)
            tmp[i] = p[i];
        return loadBf16(tmp);
    }
    /** Decode W binary16 payloads (exact widening; AVX512F cvtph). */
    static VF
    loadF16(const std::uint16_t *p)
    {
        const __m256i raw =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
        return {_mm512_cvtph_ps(raw)};
    }
    static VF
    loadF16Partial(const std::uint16_t *p, int n)
    {
        alignas(32) std::uint16_t tmp[W] = {};
        for (int i = 0; i < n; ++i)
            tmp[i] = p[i];
        return loadF16(tmp);
    }
};

struct VD
{
    __m512d v;
    static constexpr int W = 8;

    static VD zero() { return {_mm512_setzero_pd()}; }
    static VD broadcast(double x) { return {_mm512_set1_pd(x)}; }
    static VD load(const double *p) { return {_mm512_loadu_pd(p)}; }
    void store(double *p) const { _mm512_storeu_pd(p, v); }
    static VD
    loadFromFloat(const float *p)
    {
        return {_mm512_cvtps_pd(_mm256_loadu_ps(p))};
    }
    static VD
    loadFromFloatPartial(const float *p, int n)
    {
        // 512-bit masked load (AVX512F; the 256-bit form needs VL),
        // low half converted. n <= 8 keeps the mask in the low lanes.
        const __mmask16 m = __mmask16((1u << n) - 1u);
        const __m512 wide = _mm512_maskz_loadu_ps(m, p);
        return {_mm512_cvtps_pd(_mm512_castps512_ps256(wide))};
    }
    void
    storeToFloat(float *p) const
    {
        _mm256_storeu_ps(p, _mm512_cvtpd_ps(v));
    }
    void
    storeToFloatPartial(float *p, int n) const
    {
        // Widen to 512 bits for the F-level masked store; only the
        // low n (<= 8) lanes are written, the rest stay untouched.
        const __m512 wide =
            _mm512_zextps256_ps512(_mm512_cvtpd_ps(v));
        _mm512_mask_storeu_ps(p, __mmask16((1u << n) - 1u), wide);
    }
    static VD
    fma(VD a, VD b, VD acc)
    {
        return {_mm512_fmadd_pd(a.v, b.v, acc.v)};
    }
    static VD add(VD a, VD b) { return {_mm512_add_pd(a.v, b.v)}; }
    static VD mul(VD a, VD b) { return {_mm512_mul_pd(a.v, b.v)}; }
};

#elif WINOMC_SIMD_LEVEL == 2

struct VF
{
    __m256 v;
    static constexpr int W = 8;

    static VF zero() { return {_mm256_setzero_ps()}; }
    static VF broadcast(float x) { return {_mm256_set1_ps(x)}; }
    static VF load(const float *p) { return {_mm256_loadu_ps(p)}; }
    static VF
    loadPartial(const float *p, int n)
    {
        alignas(32) float tmp[W] = {};
        for (int i = 0; i < n; ++i)
            tmp[i] = p[i];
        return {_mm256_load_ps(tmp)};
    }
    void store(float *p) const { _mm256_storeu_ps(p, v); }
    void
    storePartial(float *p, int n) const
    {
        alignas(32) float tmp[W];
        _mm256_store_ps(tmp, v);
        for (int i = 0; i < n; ++i)
            p[i] = tmp[i];
    }
    static VF
    fma(VF a, VF b, VF acc)
    {
        return {_mm256_fmadd_ps(a.v, b.v, acc.v)};
    }
    static VF add(VF a, VF b) { return {_mm256_add_ps(a.v, b.v)}; }
    static VF mul(VF a, VF b) { return {_mm256_mul_ps(a.v, b.v)}; }
    static VF
    reluOf(VF x)
    {
        return {_mm256_max_ps(x.v, _mm256_setzero_ps())};
    }
    static VF
    gtZeroOne(VF x)
    {
        const __m256 m =
            _mm256_cmp_ps(x.v, _mm256_setzero_ps(), _CMP_GT_OQ);
        return {_mm256_and_ps(m, _mm256_set1_ps(1.0f))};
    }
    /** Decode W bfloat16 payloads (value << 16 — exact). */
    static VF
    loadBf16(const std::uint16_t *p)
    {
        const __m128i raw =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
        return {_mm256_castsi256_ps(
            _mm256_slli_epi32(_mm256_cvtepu16_epi32(raw), 16))};
    }
    static VF
    loadBf16Partial(const std::uint16_t *p, int n)
    {
        alignas(16) std::uint16_t tmp[W] = {};
        for (int i = 0; i < n; ++i)
            tmp[i] = p[i];
        return loadBf16(tmp);
    }
    /**
     * Decode W binary16 payloads. Uses the F16C unit when this TU was
     * compiled with it (decode is exact, so the hardware result is
     * bitwise identical to the software reference); otherwise the
     * common/half.hh reference loop.
     */
    static VF
    loadF16(const std::uint16_t *p)
    {
#if defined(__F16C__)
        const __m128i raw =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
        return {_mm256_cvtph_ps(raw)};
#else
        alignas(32) float tmp[W];
        for (int i = 0; i < W; ++i)
            tmp[i] = winomc::half::f16ToF32(p[i]);
        return {_mm256_load_ps(tmp)};
#endif
    }
    static VF
    loadF16Partial(const std::uint16_t *p, int n)
    {
        alignas(16) std::uint16_t tmp[W] = {};
        for (int i = 0; i < n; ++i)
            tmp[i] = p[i];
        return loadF16(tmp);
    }
};

struct VD
{
    __m256d v;
    static constexpr int W = 4;

    static VD zero() { return {_mm256_setzero_pd()}; }
    static VD broadcast(double x) { return {_mm256_set1_pd(x)}; }
    static VD load(const double *p) { return {_mm256_loadu_pd(p)}; }
    void store(double *p) const { _mm256_storeu_pd(p, v); }
    static VD
    loadFromFloat(const float *p)
    {
        return {_mm256_cvtps_pd(_mm_loadu_ps(p))};
    }
    static VD
    loadFromFloatPartial(const float *p, int n)
    {
        alignas(16) float tmp[W] = {};
        for (int i = 0; i < n; ++i)
            tmp[i] = p[i];
        return {_mm256_cvtps_pd(_mm_load_ps(tmp))};
    }
    void
    storeToFloat(float *p) const
    {
        _mm_storeu_ps(p, _mm256_cvtpd_ps(v));
    }
    void
    storeToFloatPartial(float *p, int n) const
    {
        alignas(16) float tmp[W];
        _mm_store_ps(tmp, _mm256_cvtpd_ps(v));
        for (int i = 0; i < n; ++i)
            p[i] = tmp[i];
    }
    static VD
    fma(VD a, VD b, VD acc)
    {
        return {_mm256_fmadd_pd(a.v, b.v, acc.v)};
    }
    static VD add(VD a, VD b) { return {_mm256_add_pd(a.v, b.v)}; }
    static VD mul(VD a, VD b) { return {_mm256_mul_pd(a.v, b.v)}; }
};

#elif WINOMC_SIMD_LEVEL == 1

struct VF
{
    __m128 v;
    static constexpr int W = 4;

    static VF zero() { return {_mm_setzero_ps()}; }
    static VF broadcast(float x) { return {_mm_set1_ps(x)}; }
    static VF load(const float *p) { return {_mm_loadu_ps(p)}; }
    static VF
    loadPartial(const float *p, int n)
    {
        alignas(16) float tmp[W] = {};
        for (int i = 0; i < n; ++i)
            tmp[i] = p[i];
        return {_mm_load_ps(tmp)};
    }
    void store(float *p) const { _mm_storeu_ps(p, v); }
    void
    storePartial(float *p, int n) const
    {
        alignas(16) float tmp[W];
        _mm_store_ps(tmp, v);
        for (int i = 0; i < n; ++i)
            p[i] = tmp[i];
    }
    /** No FMA at this level: mul + add, rounded separately. */
    static VF
    fma(VF a, VF b, VF acc)
    {
        return {_mm_add_ps(acc.v, _mm_mul_ps(a.v, b.v))};
    }
    static VF add(VF a, VF b) { return {_mm_add_ps(a.v, b.v)}; }
    static VF mul(VF a, VF b) { return {_mm_mul_ps(a.v, b.v)}; }
    static VF
    reluOf(VF x)
    {
        return {_mm_max_ps(x.v, _mm_setzero_ps())};
    }
    static VF
    gtZeroOne(VF x)
    {
        const __m128 m = _mm_cmpgt_ps(x.v, _mm_setzero_ps());
        return {_mm_and_ps(m, _mm_set1_ps(1.0f))};
    }
    /** Decode W bfloat16 payloads: interleave below zeros = << 16. */
    static VF
    loadBf16(const std::uint16_t *p)
    {
        const __m128i raw =
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(p));
        return {_mm_castsi128_ps(
            _mm_unpacklo_epi16(_mm_setzero_si128(), raw))};
    }
    static VF
    loadBf16Partial(const std::uint16_t *p, int n)
    {
        alignas(16) std::uint16_t tmp[W] = {};
        for (int i = 0; i < n; ++i)
            tmp[i] = p[i];
        return loadBf16(tmp);
    }
    /** Decode W binary16 payloads via the exact software reference. */
    static VF
    loadF16(const std::uint16_t *p)
    {
        alignas(16) float tmp[W];
        for (int i = 0; i < W; ++i)
            tmp[i] = winomc::half::f16ToF32(p[i]);
        return {_mm_load_ps(tmp)};
    }
    static VF
    loadF16Partial(const std::uint16_t *p, int n)
    {
        alignas(16) std::uint16_t tmp[W] = {};
        for (int i = 0; i < n; ++i)
            tmp[i] = p[i];
        return loadF16(tmp);
    }
};

struct VD
{
    __m128d v;
    static constexpr int W = 2;

    static VD zero() { return {_mm_setzero_pd()}; }
    static VD broadcast(double x) { return {_mm_set1_pd(x)}; }
    static VD load(const double *p) { return {_mm_loadu_pd(p)}; }
    void store(double *p) const { _mm_storeu_pd(p, v); }
    static VD
    loadFromFloat(const float *p)
    {
        // Convert the two low floats of an 8-byte load.
        return {_mm_cvtps_pd(
            _mm_castsi128_ps(_mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(p))))};
    }
    static VD
    loadFromFloatPartial(const float *p, int n)
    {
        alignas(16) float tmp[4] = {};
        for (int i = 0; i < n; ++i)
            tmp[i] = p[i];
        return {_mm_cvtps_pd(_mm_load_ps(tmp))};
    }
    void
    storeToFloat(float *p) const
    {
        alignas(16) float tmp[4];
        _mm_store_ps(tmp, _mm_cvtpd_ps(v));
        p[0] = tmp[0];
        p[1] = tmp[1];
    }
    void
    storeToFloatPartial(float *p, int n) const
    {
        alignas(16) float tmp[4];
        _mm_store_ps(tmp, _mm_cvtpd_ps(v));
        for (int i = 0; i < n; ++i)
            p[i] = tmp[i];
    }
    static VD
    fma(VD a, VD b, VD acc)
    {
        return {_mm_add_pd(acc.v, _mm_mul_pd(a.v, b.v))};
    }
    static VD add(VD a, VD b) { return {_mm_add_pd(a.v, b.v)}; }
    static VD mul(VD a, VD b) { return {_mm_mul_pd(a.v, b.v)}; }
};

#else // WINOMC_SIMD_LEVEL == 0: plain scalar fallback (non-x86 hosts)

struct VF
{
    float v;
    static constexpr int W = 1;

    static VF zero() { return {0.0f}; }
    static VF broadcast(float x) { return {x}; }
    static VF load(const float *p) { return {*p}; }
    static VF loadPartial(const float *p, int n) { return {n ? *p : 0.0f}; }
    void store(float *p) const { *p = v; }
    void
    storePartial(float *p, int n) const
    {
        if (n)
            *p = v;
    }
    static VF fma(VF a, VF b, VF acc) { return {acc.v + a.v * b.v}; }
    static VF add(VF a, VF b) { return {a.v + b.v}; }
    static VF mul(VF a, VF b) { return {a.v * b.v}; }
    static VF reluOf(VF x) { return {x.v > 0.0f ? x.v : 0.0f}; }
    static VF gtZeroOne(VF x) { return {x.v > 0.0f ? 1.0f : 0.0f}; }
    static VF
    loadBf16(const std::uint16_t *p)
    {
        return {winomc::half::bf16ToF32(*p)};
    }
    static VF
    loadBf16Partial(const std::uint16_t *p, int n)
    {
        return {n ? winomc::half::bf16ToF32(*p) : 0.0f};
    }
    static VF
    loadF16(const std::uint16_t *p)
    {
        return {winomc::half::f16ToF32(*p)};
    }
    static VF
    loadF16Partial(const std::uint16_t *p, int n)
    {
        return {n ? winomc::half::f16ToF32(*p) : 0.0f};
    }
};

struct VD
{
    double v;
    static constexpr int W = 1;

    static VD zero() { return {0.0}; }
    static VD broadcast(double x) { return {x}; }
    static VD load(const double *p) { return {*p}; }
    void store(double *p) const { *p = v; }
    static VD loadFromFloat(const float *p) { return {double(*p)}; }
    static VD
    loadFromFloatPartial(const float *p, int n)
    {
        return {n ? double(*p) : 0.0};
    }
    void storeToFloat(float *p) const { *p = float(v); }
    void
    storeToFloatPartial(float *p, int n) const
    {
        if (n)
            *p = float(v);
    }
    static VD fma(VD a, VD b, VD acc) { return {acc.v + a.v * b.v}; }
    static VD add(VD a, VD b) { return {a.v + b.v}; }
    static VD mul(VD a, VD b) { return {a.v * b.v}; }
};

#endif

/** Fixed-order (pairwise-tree) horizontal sum: deterministic per ISA. */
inline double
hsum(VD x)
{
    double lanes[VD::W];
    x.store(lanes);
    int n = VD::W;
    while (n > 1) {
        for (int i = 0; i < n / 2; ++i)
            lanes[i] = lanes[2 * i] + lanes[2 * i + 1];
        n /= 2;
    }
    return lanes[0];
}

} // namespace simd
} // namespace

#endif // WINOMC_COMMON_SIMD_HH
