/**
 * @file
 * Drive the flit-level network simulator directly: pick a topology,
 * traffic pattern and load, and watch the latency/throughput response
 * of the memory-centric network's building blocks.
 *
 * Usage: noc_explorer [ring|fbfly|clique] [nodes] [load 0..1]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/table.hh"
#include "noc/network.hh"
#include "noc/traffic.hh"

using namespace winomc;
using namespace winomc::noc;

int
main(int argc, char **argv)
{
    const char *kind = argc > 1 ? argv[1] : "fbfly";
    int nodes = argc > 2 ? std::atoi(argv[2]) : 16;
    double max_load = argc > 3 ? std::atof(argv[3]) : 0.9;

    NocConfig cfg;
    std::unique_ptr<Topology> proto;
    if (std::strcmp(kind, "ring") == 0) {
        proto = std::make_unique<RingTopology>(nodes);
        cfg.flitBytes = 30; // full-width links
    } else if (std::strcmp(kind, "clique") == 0) {
        proto = std::make_unique<FullyConnected>(nodes);
        cfg.flitBytes = 30;
    } else {
        int k = 2;
        while (k * k < nodes)
            ++k;
        nodes = k * k;
        proto = std::make_unique<FlatButterfly2D>(k);
        cfg.flitBytes = 10; // narrow links inside a cluster
    }
    std::printf("topology %s with %d nodes, %d B/flit, hop latency %d "
                "cycles\n\n", proto->name().c_str(), nodes,
                cfg.flitBytes, cfg.hopLatency);

    Table t("uniform-random load sweep (64 B packets)");
    t.header({"offered", "accepted", "avg latency", "saturated"});
    std::string name = proto->name();
    for (double load = 0.1; load <= max_load + 1e-9; load += 0.2) {
        std::unique_ptr<Topology> topo;
        if (name == "ring")
            topo = std::make_unique<RingTopology>(nodes);
        else if (name == "clique")
            topo = std::make_unique<FullyConnected>(nodes);
        else
            topo = std::make_unique<FlatButterfly2D>(
                static_cast<FlatButterfly2D &>(*proto).edge());
        Network net(std::move(topo), cfg);
        Rng rng(99);
        LoadPoint pt = measureLoadPoint(net, uniformRandom(nodes), load,
                                        64, 2000, 5000, rng);
        t.row()
            .cell(pt.offered, 2)
            .cell(pt.accepted, 2)
            .cell(pt.avgLatency, 1)
            .cell(pt.saturated ? "yes" : "no");
    }
    t.print();
    return 0;
}
