#include "winograd/tuner.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/rng.hh"
#include "winograd/algo.hh"
#include "winograd/conv.hh"
#include "winograd/cost.hh"
#include "winograd/plan.hh"
#include "winograd/tiling.hh"

namespace winomc::tune {

namespace {

// ------------------------------------------------------ mode knob

std::atomic<int> gTuneMode{-1}; ///< -1 = unresolved (parse env once)

/** Expected element-wise skip ratio under a sparse policy. */
std::atomic<double> gSparsityHint{0.0};

// ------------------------------------------- analytic host roofline
//
// Calibrated against the committed BENCH_wino.json stage rates on the
// reference host: the element-wise GEMM stage runs near the vector
// peak, the transform stages run well below it (scalar sandwich
// arithmetic, gather-heavy access), and their efficiency drops with
// the tile edge — the large-alpha transform matrices are dense in
// non-trivial coefficients, so the "2*alpha^3 MACs" upper bound the
// cost model charges is increasingly real work. The absolute numbers
// matter less than the ratios: they are what ranks F(4,3) above
// F(6,3) on the paper's layer shapes, matching measurement.

constexpr double kDirectGflops = 6.0; ///< direct conv loops
constexpr double kEwGflops = 25.0;    ///< element-wise GEMM stage
constexpr double kXfGflops = 8.0;     ///< transforms at alpha = 6
constexpr double kDramGBps = 8.0;     ///< streamed slab traffic

// ------------------------------------------------- numeric safety

/** fp32 error budget: largest acceptable relative error vs direct. */
constexpr double kSafeRelError = 1e-4;

// --------------------------------------------------- tuner state

struct TunerState
{
    std::mutex mu;
    std::map<std::string, AlgoChoice> memo; ///< in-process winners
    std::map<std::string, AlgoChoice> disk; ///< loaded cache file
    bool diskLoaded = false;
    bool havePathOverride = false;
    std::string pathOverride;
    TunerStats stats;
};

TunerState &
state()
{
    static TunerState s;
    return s;
}

std::string
cachePath(const TunerState &s)
{
    if (s.havePathOverride)
        return s.pathOverride;
    const char *env = std::getenv("WINOMC_TUNE_CACHE");
    return env ? std::string(env) : std::string();
}

AlgoKind
parseKind(const std::string &s, bool &ok)
{
    ok = true;
    if (s == "direct")
        return AlgoKind::Direct;
    if (s == "winograd")
        return AlgoKind::Winograd;
    if (s == "decomposed")
        return AlgoKind::Decomposed;
    ok = false;
    return AlgoKind::Direct;
}

/** Parse the cache file into s.disk (best effort, warns on damage). */
void
loadDiskLocked(TunerState &s)
{
    if (s.diskLoaded)
        return;
    s.diskLoaded = true;
    const std::string path = cachePath(s);
    if (path.empty())
        return;
    std::ifstream in(path);
    if (!in)
        return; // no cache yet — first run
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key, kindName;
        AlgoChoice ch;
        if (!(ls >> key >> kindName >> ch.m >> ch.predictedMs >>
              ch.measuredMs)) {
            winomc_warn("ignoring malformed tuning-cache line in ",
                        path, ": '", line, "'");
            continue;
        }
        bool ok = false;
        ch.kind = parseKind(kindName, ok);
        if (!ok) {
            winomc_warn("ignoring unknown algorithm '", kindName,
                        "' in tuning cache ", path);
            continue;
        }
        ch.fromCache = true;
        s.disk[key] = ch;
    }
}

/** Rewrite the cache file from the union of disk + memo winners. */
void
storeDiskLocked(TunerState &s)
{
    const std::string path = cachePath(s);
    if (path.empty())
        return;
    std::map<std::string, AlgoChoice> all = s.disk;
    for (const auto &kv : s.memo)
        all[kv.first] = kv.second;
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        winomc_warn("cannot write tuning cache ", path);
        return;
    }
    out << "# winomc tuning cache v1\n"
        << "# <key> <algo> <m> <predicted_ms> <measured_ms>\n";
    for (const auto &kv : all) {
        const AlgoChoice &ch = kv.second;
        out << kv.first << ' ' << algoKindName(ch.kind) << ' ' << ch.m
            << ' ' << ch.predictedMs << ' ' << ch.measuredMs << '\n';
    }
}

/** Is a plain F(m,3) pipeline applicable (no decomposition needed)? */
bool
plain3x3(const ConvSpec &spec)
{
    return spec.samePadded() && spec.squareKernel() &&
           spec.kernelH() == 3;
}

/** Is a cached/computed choice legal for this spec at all? */
bool
choiceLegal(const ConvSpec &spec, const AlgoChoice &ch)
{
    switch (ch.kind) {
      case AlgoKind::Direct:
        return true;
      case AlgoKind::Winograd:
        return plain3x3(spec) && numericallySafe(ch.m, 3);
      case AlgoKind::Decomposed:
        return decompSupported(spec) && numericallySafe(ch.m, 3);
    }
    return false;
}

std::vector<AlgoChoice>
candidatesFor(const ConvSpec &spec)
{
    std::vector<AlgoChoice> cs;
    cs.push_back({AlgoKind::Direct, 0, 0, 0, false});
    for (int m : {2, 4, 6}) {
        if (!numericallySafe(m, 3))
            continue;
        if (plain3x3(spec))
            cs.push_back({AlgoKind::Winograd, m, 0, 0, false});
        else if (decompSupported(spec))
            cs.push_back({AlgoKind::Decomposed, m, 0, 0, false});
    }
    return cs;
}

/** The WINOMC_TUNE=off static policy: paper default, no cost model. */
AlgoChoice
heuristicChoice(const ConvSpec &spec)
{
    AlgoChoice ch;
    if (plain3x3(spec)) {
        ch.kind = AlgoKind::Winograd;
        ch.m = 4;
    } else if (decompSupported(spec) &&
               spec.kernelH() * spec.kernelW() > 1) {
        ch.kind = AlgoKind::Decomposed;
        ch.m = 4;
    }
    return ch;
}

/**
 * Time one candidate's forward on a batch-clamped copy of the layer
 * (best of two steady-state runs after one warm-up; construction and
 * weight transform excluded). Measurement is a tuning-time activity —
 * it allocates freely; the selected plan is rebuilt by the caller.
 */
double
measureChoiceMs(const ConvSpec &spec0, const AlgoChoice &ch)
{
    ConvSpec spec = spec0;
    spec.batch = std::min(spec.batch, 4);
    Rng rng(1234);
    Tensor x(spec.batch, spec.inCh, spec.h, spec.w);
    Tensor w(spec.outCh, spec.inCh, spec.kernelH(), spec.kernelW());
    x.fillUniform(rng);
    w.fillUniform(rng);

    auto best2 = [](auto &&fn) {
        fn(); // warm-up: plans, strip slots, workspace pool
        double best = std::numeric_limits<double>::infinity();
        for (int rep = 0; rep < 2; ++rep) {
            const auto t0 = std::chrono::steady_clock::now();
            fn();
            const std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - t0;
            best = std::min(best, dt.count());
        }
        return best * 1e3;
    };

    switch (ch.kind) {
      case AlgoKind::Direct: {
        return best2([&] {
            directConvForwardEx(x, w, spec.strideH, spec.strideW,
                                spec.padHEff(), spec.padWEff());
        });
      }
      case AlgoKind::Winograd: {
        const WinogradAlgo &a = algoForTile(ch.m);
        WinoPlan plan(a, spec.batch, spec.inCh, spec.outCh, spec.h,
                      spec.w);
        const WinoWeights W = transformWeights(w, a);
        Tensor y(spec.batch, spec.outCh, spec.h, spec.w);
        return best2([&] {
            if (plan.shouldFuse(false))
                plan.forwardFusedInto(x, W, y);
            else
                plan.forwardInto(x, W, y);
            plan.invalidateCache();
        });
      }
      case AlgoKind::Decomposed: {
        WinoDecompPlan plan(spec, algoForTile(ch.m));
        plan.setWeights(w);
        Tensor y(spec.batch, spec.outCh, spec.outH(), spec.outW());
        return best2([&] { plan.forwardInto(x, y); });
      }
    }
    return std::numeric_limits<double>::infinity();
}

void
publishChoice(const ConvSpec &spec, const AlgoChoice &ch)
{
    if (!metrics::enabled())
        return;
    const std::string prefix = "tuner.layer." + spec.key() + ".";
    metrics::gaugeSet((prefix + "kind").c_str(), double(int(ch.kind)));
    metrics::gaugeSet((prefix + "m").c_str(), double(ch.m));
    metrics::gaugeSet((prefix + "terms").c_str(),
                      ch.kind == AlgoKind::Decomposed
                          ? double(decomposeSpec(spec).size())
                          : 0.0);
    metrics::gaugeSet((prefix + "pred_ms").c_str(), ch.predictedMs);
    metrics::gaugeSet((prefix + "meas_ms").c_str(), ch.measuredMs);
    metrics::gaugeSet((prefix + "cache_hit").c_str(),
                      ch.fromCache ? 1.0 : 0.0);
}

} // namespace

const char *
tuneModeName(TuneMode m)
{
    switch (m) {
      case TuneMode::Off:
        return "off";
      case TuneMode::Analytic:
        return "analytic";
      case TuneMode::Measure:
        return "measure";
    }
    return "analytic";
}

TuneMode
parseTuneMode(const char *str)
{
    if (!str || !*str)
        return TuneMode::Analytic;
    std::string s;
    for (const char *p = str; *p; ++p)
        if (!std::isspace(static_cast<unsigned char>(*p)))
            s += char(std::tolower(static_cast<unsigned char>(*p)));
    if (s == "off")
        return TuneMode::Off;
    if (s == "analytic")
        return TuneMode::Analytic;
    if (s == "measure")
        return TuneMode::Measure;
    winomc_warn("ignoring unrecognized WINOMC_TUNE '", str,
                "' (want off|analytic|measure)");
    return TuneMode::Analytic;
}

TuneMode
requestedTuneMode()
{
    int m = gTuneMode.load(std::memory_order_acquire);
    if (m < 0) {
        // Benign race: concurrent first calls parse the same env var.
        m = int(parseTuneMode(std::getenv("WINOMC_TUNE")));
        gTuneMode.store(m, std::memory_order_release);
    }
    return TuneMode(m);
}

void
setTuneMode(TuneMode m)
{
    gTuneMode.store(int(m), std::memory_order_release);
}

double
sparsityHint()
{
    return gSparsityHint.load(std::memory_order_acquire);
}

void
setSparsityHint(double ratio)
{
    gSparsityHint.store(std::clamp(ratio, 0.0, 1.0),
                        std::memory_order_release);
}

const char *
algoKindName(AlgoKind k)
{
    switch (k) {
      case AlgoKind::Direct:
        return "direct";
      case AlgoKind::Winograd:
        return "winograd";
      case AlgoKind::Decomposed:
        return "decomposed";
    }
    return "direct";
}

double
winogradMaxRelError(int m, int r)
{
    // Survey-cataloged fp32 worst-case relative error of F(m,3) vs
    // direct (Tong & Huang, arXiv 2111.00977). Growth is steep in the
    // tile edge: each extra interpolation point stretches the
    // transform matrices' condition number.
    if (r != 3)
        return std::numeric_limits<double>::infinity();
    switch (m) {
      case 2:
        return 2e-7;
      case 4:
        return 1e-6;
      case 6:
        return 9e-5;
      case 8:
        return 1e-2;
    }
    return std::numeric_limits<double>::infinity();
}

bool
numericallySafe(int m, int r)
{
    return winogradMaxRelError(m, r) <= kSafeRelError;
}

double
predictMs(const ConvSpec &spec, const AlgoChoice &choice)
{
    const CostModelParams p;
    switch (choice.kind) {
      case AlgoKind::Direct: {
        const ConvCost c = directConvCost(spec, Phase::Fprop, p);
        return 1e3 * (2.0 * double(c.mults) / (kDirectGflops * 1e9) +
                      double(c.dramBytes()) / (kDramGBps * 1e9));
      }
      case AlgoKind::Winograd: {
        const WinogradAlgo &a = algoForTile(choice.m);
        const ConvCost c = winogradConvCost(spec, a, Phase::Fprop, p);
        const TileGrid grid(spec.h, spec.w, a);
        const double a2 = double(a.alpha) * a.alpha;
        const double ewMacs = double(grid.tiles()) * a2 * spec.batch *
                              double(spec.inCh) * spec.outCh;
        const double xfMacs = double(c.mults) - ewMacs;
        // Transform rate scales as 6/alpha: the F(6,3) matrices are
        // dense in non-trivial coefficients where F(2,3)'s are mostly
        // 0/±1, so the nominal MAC bound understates small tiles and
        // is nearly exact for large ones.
        const double xfRate = kXfGflops * 1e9 * (6.0 / a.alpha);
        // ExecPolicy adjustments (both zero at the fp32-dense
        // default): a sparse policy skips the hinted fraction of the
        // element-wise FLOPs; 16-bit storage shrinks the X-slab
        // round trip (one write in the transform, one read in the
        // element-wise stage).
        const ExecPolicy pol = currentExecPolicy();
        const double keep =
            pol.sparse
                ? 1.0 - std::clamp(sparsityHint(), 0.0, 0.99)
                : 1.0;
        double bytes = double(c.dramBytes());
        if (pol.prec != Prec::F32) {
            const double xSlabElems = double(grid.tiles()) * a2 *
                                      spec.batch * spec.inCh;
            bytes -= 2.0 * xSlabElems *
                     (p.bytesPerScalar - precBytes(pol.prec));
        }
        return 1e3 * (2.0 * ewMacs * keep / (kEwGflops * 1e9) +
                      2.0 * xfMacs / xfRate +
                      bytes / (kDramGBps * 1e9));
      }
      case AlgoKind::Decomposed: {
        const int terms = int(decomposeSpec(spec).size());
        ConvSpec innerSpec = spec;
        innerSpec.h = spec.outH() + 2;
        innerSpec.w = spec.outW() + 2;
        innerSpec.r = 3;
        innerSpec.kh = innerSpec.kw = 0;
        innerSpec.strideH = innerSpec.strideW = 1;
        innerSpec.padH = innerSpec.padW = -1;
        AlgoChoice innerChoice;
        innerChoice.kind = AlgoKind::Winograd;
        innerChoice.m = choice.m;
        const double perTermMs = predictMs(innerSpec, innerChoice);
        const double gatherBytes =
            (2.0 * double(innerSpec.inputElems()) +
             2.0 * double(spec.outputElems())) *
            p.bytesPerScalar;
        return terms *
               (perTermMs + 1e3 * gatherBytes / (kDramGBps * 1e9));
      }
    }
    return std::numeric_limits<double>::infinity();
}

AlgoChoice
selectAlgorithm(const ConvSpec &spec)
{
    TunerState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.stats.selects++;
    if (metrics::enabled())
        metrics::counterAdd("tuner.selects");

    // The ExecPolicy suffix is empty at the fp32-dense default, so
    // existing cache files keep their keys; non-default policies get
    // distinct memo/disk entries (their cost ranking differs).
    const std::string key =
        spec.key() + execPolicySuffix(currentExecPolicy());
    const TuneMode mode = requestedTuneMode();

    if (auto it = s.memo.find(key); it != s.memo.end()) {
        s.stats.memoHits++;
        if (metrics::enabled())
            metrics::counterAdd("tuner.memo_hits");
        return it->second;
    }

    // The on-disk cache (analytic/measure modes, when configured).
    if (mode != TuneMode::Off && !cachePath(s).empty()) {
        loadDiskLocked(s);
        if (auto it = s.disk.find(key); it != s.disk.end()) {
            if (choiceLegal(spec, it->second)) {
                s.stats.cacheHits++;
                if (metrics::enabled())
                    metrics::counterAdd("tuner.cache_hits");
                s.memo[key] = it->second;
                publishChoice(spec, it->second);
                return it->second;
            }
            winomc_warn("tuning-cache entry for ", key,
                        " names an inapplicable algorithm; re-tuning");
        }
        s.stats.cacheMisses++;
        if (metrics::enabled())
            metrics::counterAdd("tuner.cache_misses");
    }

    AlgoChoice best;
    if (mode == TuneMode::Off) {
        best = heuristicChoice(spec);
        best.predictedMs = predictMs(spec, best);
    } else {
        std::vector<AlgoChoice> cs = candidatesFor(spec);
        for (AlgoChoice &c : cs)
            c.predictedMs = predictMs(spec, c);
        std::sort(cs.begin(), cs.end(),
                  [](const AlgoChoice &a, const AlgoChoice &b) {
                      return a.predictedMs < b.predictedMs;
                  });
        best = cs.front();
        if (mode == TuneMode::Measure) {
            // Refine: time the analytically closest candidates and
            // let the stopwatch overrule the model.
            const int nMeasure = std::min<int>(3, int(cs.size()));
            double bestMs = std::numeric_limits<double>::infinity();
            for (int i = 0; i < nMeasure; ++i) {
                cs[i].measuredMs = measureChoiceMs(spec, cs[i]);
                s.stats.measureRuns++;
                if (metrics::enabled())
                    metrics::counterAdd("tuner.measure_runs");
                if (cs[i].measuredMs < bestMs) {
                    bestMs = cs[i].measuredMs;
                    best = cs[i];
                }
            }
        }
    }

    s.memo[key] = best;
    if (mode != TuneMode::Off)
        storeDiskLocked(s);
    publishChoice(spec, best);
    return best;
}

void
setTuneCachePath(const char *path)
{
    TunerState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.havePathOverride = path != nullptr;
    s.pathOverride = path ? path : "";
    s.disk.clear();
    s.diskLoaded = false;
}

void
resetTunerForTest()
{
    TunerState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.memo.clear();
    s.disk.clear();
    s.diskLoaded = false;
}

TunerStats
tunerStats()
{
    TunerState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.stats;
}

} // namespace winomc::tune
