file(REMOVE_RECURSE
  "CMakeFiles/prediction_demo.dir/prediction_demo.cpp.o"
  "CMakeFiles/prediction_demo.dir/prediction_demo.cpp.o.d"
  "prediction_demo"
  "prediction_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prediction_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
