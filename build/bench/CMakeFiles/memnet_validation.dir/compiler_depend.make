# Empty compiler generated dependencies file for memnet_validation.
# This may be replaced when dependencies are built.
