#include "mpt/layer_sim.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/trace.hh"
#include "memnet/collective.hh"
#include "memnet/link_model.hh"
#include "memnet/pipeline.hh"
#include "mpt/comm_volume.hh"
#include "ndp/timing.hh"
#include "winograd/algo.hh"
#include "winograd/cost.hh"
#include "winograd/tiling.hh"

namespace winomc::mpt {

namespace {

constexpr double kB = 4.0; ///< bytes per FP32 scalar

/** Algorithm choice of Section VII-A: F(2x2,3x3) when tile elements are
 *  split across groups (smaller Winograd-domain weights), F(4x4,3x3)
 *  for a single group (more compute reduction); F(2x2,5x5) for r=5. */
const WinogradAlgo &
algoFor(int r, int ng)
{
    if (r == 3)
        return ng > 1 ? algoF2x2_3x3() : algoF4x4_3x3();
    if (r == 5)
        return algoF2x2_5x5();
    winomc_fatal("no Winograd algorithm for r=", r);
}

/** Per-worker, single-phase work of a Winograd layer under MPT. */
struct WinoPhase
{
    double systolicSec = 0, vectorSec = 0, dramSec = 0;
    double systolicUtil = 0; ///< useful-MAC fraction of the array
    double macs = 0, vecOps = 0, xformOps = 0, dramBytes = 0;
    double scatterSend = 0, gatherSend = 0; ///< bytes per worker
    double scatterSec = 0, gatherSec = 0;
};

struct WinoGeometry
{
    double t;    ///< tiles per image per channel
    double bc;   ///< batch shard per cluster
    double uv;   ///< tile elements owned per worker
    double a2, a3;
    double mrows; ///< dot-product M dimension (bc * t)
};

WinoGeometry
geometry(const ConvSpec &spec, const WinogradAlgo &algo,
         const memnet::ClusterShape &shape)
{
    WinoGeometry g;
    TileGrid grid(spec.h, spec.w, algo);
    g.t = grid.tiles();
    g.bc = double(spec.batch) / shape.nc;
    g.a2 = double(algo.alpha) * algo.alpha;
    g.a3 = g.a2 * algo.alpha;
    g.uv = g.a2 / shape.ng;
    g.mrows = g.bc * g.t;
    winomc_assert(g.bc >= 1.0, "more clusters than batch items");
    winomc_assert(g.uv >= 1.0, "more groups than tile elements");
    return g;
}

/** All-to-all time among the ng cluster members for per-worker send
 *  volume `send_bytes`, including the flit-level contention factor. */
double
clusterAllToAll(const memnet::ClusterShape &shape, double send_bytes,
                const SystemParams &params)
{
    if (shape.ng <= 1 || send_bytes <= 0.0)
        return 0.0;
    auto topo = memnet::clusterTopology(shape);
    return memnet::allToAllTime(*topo, send_bytes / (shape.ng - 1),
                                memnet::clusterLink(shape)) *
           params.tileContentionFactor;
}

/**
 * fprop / bprop of the Winograd layer. For bprop pass in_ch/out_ch
 * swapped: the scattered tiles are the dy side, the gathered ones dx.
 */
WinoPhase
winoPropPhase(const ConvSpec &spec, const WinogradAlgo &algo,
              const memnet::ClusterShape &shape,
              const SystemParams &params, const PredictionParams *pred,
              bool backward, bool spatial_weights)
{
    const WinoGeometry g = geometry(spec, algo, shape);
    const double in_ch = backward ? spec.outCh : spec.inCh;
    const double out_ch = backward ? spec.inCh : spec.outCh;
    const double s = params.ndp.systolicDim;
    const auto mode = shape.transferMode();

    WinoPhase ph;

    // Element-wise dot products: uv applications of
    // (mrows x in_ch) * (in_ch x out_ch) on the systolic array.
    ph.systolicSec = g.uv * ndp::systolicTime(params.ndp,
                                              uint64_t(g.mrows),
                                              uint64_t(in_ch),
                                              uint64_t(out_ch));
    ph.systolicUtil = ndp::systolicUtilization(params.ndp,
                                               uint64_t(g.mrows),
                                               uint64_t(in_ch),
                                               uint64_t(out_ch));
    ph.macs = g.uv * g.mrows * in_ch * out_ch;

    // Vector unit: forward transform at the tile source, inverse
    // transform + activation at the gatherer. Spatial data of the
    // cluster's batch shard is spread over its ng workers.
    const double xform_tiles = g.bc * in_ch * g.t / shape.ng;
    const double inv_tiles = g.bc * out_ch * g.t / shape.ng;
    ph.xformOps = (xform_tiles + inv_tiles) * 2.0 * g.a3;
    ph.vecOps = g.bc * out_ch * spec.h * spec.w / shape.ng;
    if (spatial_weights && !backward) {
        // w_dp re-transforms the updated spatial weights to the
        // Winograd domain every iteration (W = G w G^T; the Winograd
        // layer of Fig 2(b) avoids exactly this).
        ph.xformOps += double(spec.inCh) * spec.outCh *
                       (g.a2 * spec.kernelH() +
                        double(algo.alpha) * spec.kernelH() *
                            spec.kernelW());
    }
    ph.vectorSec = ndp::vectorTime(params.ndp, uint64_t(ph.vecOps)) +
                   ndp::transformTime(params.ndp, uint64_t(ph.xformOps));

    // Stacked-DRAM traffic per worker.
    const double x_res = g.uv * in_ch * g.mrows * kB;
    const double y_res = g.uv * out_ch * g.mrows * kB;
    const double w_slice = g.uv * in_ch * out_ch * kB;
    const double spatial_in = g.bc * in_ch * spec.h * spec.w * kB /
                              shape.ng;
    const double spatial_out = g.bc * out_ch * spec.h * spec.w * kB /
                               shape.ng;
    ph.dramBytes = spatial_in           // read spatial input
                 + x_res                 // store received tiles
                 + x_res * std::ceil(out_ch / s) // stream for dots
                 + w_slice               // weights
                 + y_res * 2.0           // output tiles store + reload
                 + spatial_out;          // write spatial output
    ph.dramSec = ph.dramBytes / params.ndp.dramBandwidth;

    // Tile transfer (none when ng == 1).
    if (shape.ng > 1) {
        const double frac = double(shape.ng - 1) / shape.ng;
        double scatter_f = 1.0, gather_f = 1.0, gather_rep = 1.0;
        if (pred) {
            scatter_f = scatterScale(*pred, mode);
            gather_f = gatherScale(*pred, mode);
        }
        if (mode == memnet::TransferMode::OneD)
            gather_rep = double(algo.m) / algo.alpha;

        ph.scatterSend = xform_tiles * g.a2 * kB * frac * scatter_f;
        ph.gatherSend = y_res * frac * gather_rep * gather_f;
        ph.scatterSec = clusterAllToAll(shape, ph.scatterSend, params);
        ph.gatherSec = clusterAllToAll(shape, ph.gatherSend, params);
    }
    return ph;
}

/** updateGrad compute of the Winograd layer (no tile transfer). */
WinoPhase
winoUpdatePhase(const ConvSpec &spec, const WinogradAlgo &algo,
                const memnet::ClusterShape &shape,
                const SystemParams &params, bool spatial_weights)
{
    const WinoGeometry g = geometry(spec, algo, shape);
    const double s = params.ndp.systolicDim;

    WinoPhase ph;
    // dW[uv] (J x I) = dY[uv] (J x mrows) * X[uv]^T (mrows x I).
    ph.systolicSec = g.uv * ndp::systolicTime(params.ndp,
                                              uint64_t(spec.outCh),
                                              uint64_t(g.mrows),
                                              uint64_t(spec.inCh));
    ph.systolicUtil = ndp::systolicUtilization(params.ndp,
                                               uint64_t(spec.outCh),
                                               uint64_t(g.mrows),
                                               uint64_t(spec.inCh));
    ph.macs = g.uv * g.mrows * spec.inCh * spec.outCh;

    const double w_slice = g.uv * spec.inCh * spec.outCh * kB;
    // Weight update touches each updated parameter twice (scale + add):
    // the spatial |w| for w_dp, the group's W slice for the Winograd
    // layer.
    ph.vecOps = 2.0 * (spatial_weights ? double(spec.weightElems())
                                       : w_slice / kB);
    if (spatial_weights) {
        // w_dp maps dW back through the transform adjoint before the
        // collective: dw = G^T dW G, r*alpha^2 + r^2*alpha MACs per
        // (i, j) pair.
        ph.xformOps += double(spec.inCh) * spec.outCh *
                       (g.a2 * spec.kernelH() +
                        double(algo.alpha) * spec.kernelH() *
                            spec.kernelW());
    }
    ph.vectorSec = ndp::vectorTime(params.ndp, uint64_t(ph.vecOps)) +
                   ndp::transformTime(params.ndp, uint64_t(ph.xformOps));

    const double x_res = g.uv * spec.inCh * g.mrows * kB;
    const double y_res = g.uv * spec.outCh * g.mrows * kB;
    // Weight-side traffic: the Winograd layer reads + writes its W
    // slice; w_dp transforms each completed dW block to the (4x
    // smaller) spatial dw on the fly in the transformation unit, so
    // only |w| spills.
    const double w_traffic =
        spatial_weights
            ? 2.0 * double(spec.weightElems()) * kB
            : 2.0 * w_slice;
    ph.dramBytes = y_res + x_res * std::ceil(spec.outCh / s) + w_traffic;
    ph.dramSec = ph.dramBytes / params.ndp.dramBandwidth;
    return ph;
}

/** Direct convolution per-worker phase (d_dp). */
WinoPhase
directPhase(const ConvSpec &spec, const memnet::ClusterShape &shape,
            const SystemParams &params, Phase phase)
{
    winomc_assert(shape.ng == 1, "direct convolution is data parallel");
    const double bc = double(spec.batch) / shape.nc;
    winomc_assert(bc >= 1.0, "more workers than batch items");

    ConvSpec worker_spec = spec;
    worker_spec.batch = int(bc);

    WinoPhase ph;
    const uint64_t hw = uint64_t(spec.outH()) * spec.outW();
    const uint64_t rr = uint64_t(spec.kernelH()) * spec.kernelW();
    uint64_t mm = 0, kk = 0, nn = 0;
    switch (phase) {
      case Phase::Fprop:
        mm = uint64_t(bc) * hw;
        kk = uint64_t(spec.inCh) * rr;
        nn = uint64_t(spec.outCh);
        break;
      case Phase::Bprop:
        mm = uint64_t(bc) * hw;
        kk = uint64_t(spec.outCh) * rr;
        nn = uint64_t(spec.inCh);
        break;
      case Phase::UpdateGrad:
        mm = uint64_t(spec.outCh);
        kk = uint64_t(bc) * hw;
        nn = uint64_t(spec.inCh) * rr;
        break;
    }
    ph.systolicSec = ndp::systolicTime(params.ndp, mm, kk, nn);
    ph.systolicUtil = ndp::systolicUtilization(params.ndp, mm, kk, nn);
    ConvCost cost = directConvCost(worker_spec, phase);
    ph.macs = double(cost.mults);
    ph.vecOps = bc * spec.outCh * hw / 16.0; // activation etc.
    ph.vectorSec = ndp::vectorTime(params.ndp, uint64_t(ph.vecOps));
    ph.dramBytes = double(cost.dramBytes());
    ph.dramSec = ph.dramBytes / params.ndp.dramBandwidth;
    return ph;
}

/** Links powered per worker in each situation (for idle energy). */
struct LinksOn
{
    int full;
    int narrow;
};

LinksOn
propLinks(const memnet::ClusterShape &shape)
{
    if (shape.ng == 1)
        return {1, 0}; // minimal host connectivity, rest turned off
    if (shape.ng <= 4)
        return {4, 0}; // clique over full-width links via host
    return {1, 6};     // fbfly narrow links + host
}

LinksOn
collectiveLinks(const memnet::ClusterShape &shape, int rings)
{
    (void)shape;
    return {rings, 0};
}

PhaseResult
assemblePropPhase(const WinoPhase &ph, const SystemParams &params,
                  const LinksOn &links)
{
    PhaseResult r;
    r.computeSec = std::max({ph.systolicSec, ph.vectorSec, ph.dramSec}) +
                   params.pipelineWaves * params.ndp.taskOverheadSec;
    r.scatterSec = ph.scatterSec;
    r.gatherSec = ph.gatherSec;
    r.systolicSec = ph.systolicSec;
    r.vectorSec = ph.vectorSec;
    r.dramSec = ph.dramSec;
    r.dmaStallSec = std::max(
        0.0, ph.dramSec - std::max(ph.systolicSec, ph.vectorSec));
    r.systolicUtil = ph.systolicUtil;

    memnet::PhaseWork w;
    w.scatterSec = ph.scatterSec;
    w.computeSec = r.computeSec;
    w.gatherSec = ph.gatherSec;
    w.waves = params.pipelineWaves;
    r.seconds = memnet::pipelinedPhaseTime(w);

    r.macs = ph.macs;
    r.vecOps = ph.vecOps;
    r.dramBytes = ph.dramBytes;
    r.linkBytesSent = ph.scatterSend + ph.gatherSend;

    const double p = params.workers;
    energy::EnergyModel em(params.energy);
    r.energy.computeJ = em.macsEnergy(
        uint64_t(ph.macs * p),
        uint64_t((ph.macs + ph.vecOps + ph.xformOps) * p));
    r.energy.dramJ = em.dramEnergy(uint64_t(ph.dramBytes * p));
    r.energy.sramJ = em.sramEnergy(uint64_t(3.0 * ph.dramBytes * p));
    r.energy.linkIdleJ = em.linkIdleEnergy(
        int(links.full * p), int(links.narrow * p), r.seconds);
    r.energy.linkJ =
        em.linkDynamicEnergy(uint64_t(r.linkBytesSent * p)) +
        r.energy.linkIdleJ;
    return r;
}

/** Export one simulated phase under `prefix` ("mpt.<config>.<phase>").
 *  Seconds-valued fields go to timers (count = simulated phases, total
 *  = accumulated model time), work/traffic totals to counters. */
void
exportPhaseMetrics(const std::string &prefix, const PhaseResult &r)
{
    metrics::timerAdd((prefix + ".seconds").c_str(), r.seconds);
    metrics::timerAdd((prefix + ".compute_sec").c_str(), r.computeSec);
    metrics::timerAdd((prefix + ".scatter_sec").c_str(), r.scatterSec);
    metrics::timerAdd((prefix + ".gather_sec").c_str(), r.gatherSec);
    metrics::timerAdd((prefix + ".collective_sec").c_str(),
                      r.collectiveSec);
    metrics::timerAdd((prefix + ".systolic_sec").c_str(),
                      r.systolicSec);
    metrics::timerAdd((prefix + ".vector_sec").c_str(), r.vectorSec);
    metrics::timerAdd((prefix + ".dram_sec").c_str(), r.dramSec);
    metrics::timerAdd((prefix + ".dma_stall_sec").c_str(),
                      r.dmaStallSec);
    metrics::histogramAdd((prefix + ".systolic_util").c_str(),
                          r.systolicUtil, 0.0, 1.0, 20);
    metrics::counterAdd((prefix + ".macs").c_str(), r.macs);
    metrics::counterAdd((prefix + ".vec_ops").c_str(), r.vecOps);
    metrics::counterAdd((prefix + ".dram_bytes").c_str(), r.dramBytes);
    metrics::counterAdd((prefix + ".link_bytes").c_str(),
                        r.linkBytesSent);
    metrics::counterAdd((prefix + ".energy_j").c_str(),
                        r.energy.total());
}

/** Per-phase accounting of one simulated layer (Figures 15/16), the
 *  exact-sum time breakdown, the Fig 15 energy split (incl. the idle-
 *  link share), and the P2P-vs-collective traffic split. */
void
exportLayerMetrics(Strategy strategy, const LayerResult &res)
{
    const std::string base = "mpt." + strategyName(strategy);
    exportPhaseMetrics(base + ".fwd", res.fwd);
    exportPhaseMetrics(base + ".bwd", res.bwd);
    metrics::counterAdd((base + ".layers").c_str());

    const LayerBreakdown b = layerBreakdown(res);
    metrics::timerAdd((base + ".breakdown.compute_sec").c_str(),
                      b.computeSec);
    metrics::timerAdd((base + ".breakdown.intra_comm_sec").c_str(),
                      b.intraCommSec);
    metrics::timerAdd((base + ".breakdown.inter_comm_sec").c_str(),
                      b.interCommSec);
    metrics::timerAdd((base + ".breakdown.idle_sec").c_str(),
                      b.idleSec);
    metrics::timerAdd((base + ".breakdown.total_sec").c_str(),
                      b.totalSec);

    const energy::EnergyBreakdown e = res.totalEnergy();
    metrics::counterAdd((base + ".energy.compute_j").c_str(),
                        e.computeJ);
    metrics::counterAdd((base + ".energy.sram_j").c_str(), e.sramJ);
    metrics::counterAdd((base + ".energy.dram_j").c_str(), e.dramJ);
    metrics::counterAdd((base + ".energy.link_j").c_str(), e.linkJ);
    metrics::counterAdd((base + ".energy.link_idle_j").c_str(),
                        e.linkIdleJ);

    metrics::counterAdd((base + ".p2p_bytes").c_str(),
                        res.p2pLinkBytes);
    metrics::counterAdd((base + ".collective_bytes").c_str(),
                        res.collectiveLinkBytes);
}

/** Lay one phase's sub-steps end to end on a virtual-time timeline
 *  (sub-steps overlap in the model, so this shows composition, not the
 *  critical path — that is `PhaseResult::seconds`). */
double
exportPhaseTrace(int pid, double t0_sec, const char *which,
                 const PhaseResult &r)
{
    struct Part {
        const char *name;
        double sec;
    };
    const Part parts[] = {{"scatter", r.scatterSec},
                          {"compute", r.computeSec},
                          {"gather", r.gatherSec},
                          {"collective", r.collectiveSec}};
    double t = t0_sec;
    for (const auto &p : parts) {
        if (p.sec <= 0.0)
            continue;
        trace::emitCompleteAt(std::string(which) + "." + p.name,
                              "mpt-phase", t * 1e6, p.sec * 1e6, pid,
                              1);
        t += p.sec;
    }
    return t;
}

/** One simulated layer as its own virtual-time trace process. */
void
exportLayerTrace(Strategy strategy, const LayerResult &res)
{
    const int pid = trace::allocSimPid();
    trace::namePid(pid, "mpt " + strategyName(strategy) + " " +
                            res.shape.toString() + " " + res.algoName +
                            " (virtual time)");
    double t = exportPhaseTrace(pid, 0.0, "fwd", res.fwd);
    exportPhaseTrace(pid, t, "bwd", res.bwd);
}

} // namespace

std::string
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::DirectDP:
        return "d_dp";
      case Strategy::WinoDP:
        return "w_dp";
      case Strategy::WinoMPT:
        return "w_mp";
      case Strategy::WinoMPTPredict:
        return "w_mp+";
      case Strategy::WinoMPTPredictDyn:
        return "w_mp++";
    }
    return "?";
}

bool
usesMpt(Strategy s)
{
    return s == Strategy::WinoMPT || s == Strategy::WinoMPTPredict ||
           s == Strategy::WinoMPTPredictDyn;
}

bool
usesPrediction(Strategy s)
{
    return s == Strategy::WinoMPTPredict ||
           s == Strategy::WinoMPTPredictDyn;
}

LayerBreakdown
layerBreakdown(const LayerResult &res)
{
    LayerBreakdown b;
    b.totalSec = res.totalSeconds();
    // Pre-overlap component totals over the whole iteration.
    const double compute_raw = res.fwd.computeSec +
                               res.bwd.computeSec +
                               res.ugradComputeSeconds;
    const double intra_raw = res.fwd.scatterSec + res.fwd.gatherSec +
                             res.bwd.scatterSec + res.bwd.gatherSec;
    const double inter_raw = res.collectiveSeconds;
    // Greedy exposure, each part capped by the remaining end-to-end
    // time, so the four parts sum to totalSec exactly.
    double rem = b.totalSec;
    b.computeSec = std::min(compute_raw, rem);
    rem -= b.computeSec;
    b.intraCommSec = std::min(intra_raw, rem);
    rem -= b.intraCommSec;
    b.interCommSec = std::min(inter_raw, rem);
    rem -= b.interCommSec;
    b.idleSec = rem;
    return b;
}

LayerResult
simulateLayerWithShape(const ConvSpec &spec, Strategy strategy,
                       const SystemParams &params,
                       const memnet::ClusterShape &shape,
                       bool export_artifacts)
{
    winomc_assert(shape.workers() == params.workers,
                  "shape ", shape.toString(), " does not cover ",
                  params.workers, " workers");
    LayerResult res;
    res.shape = shape;
    energy::EnergyModel em(params.energy);
    const double p = params.workers;

    if (strategy == Strategy::DirectDP) {
        res.algoName = "direct";
        WinoPhase f = directPhase(spec, shape, params, Phase::Fprop);
        WinoPhase b = directPhase(spec, shape, params, Phase::Bprop);
        WinoPhase u = directPhase(spec, shape, params,
                                  Phase::UpdateGrad);
        res.fwd = assemblePropPhase(f, params, propLinks(shape));
        PhaseResult bp = assemblePropPhase(b, params, propLinks(shape));

        // Weight collective: |w| over all p workers, 4 rings.
        memnet::CollectiveConfig cc;
        cc.rings = params.dpCollectiveRings;
        const uint64_t w_bytes = uint64_t(spec.weightElems() * kB);
        double coll = memnet::ringAllReduceTime(w_bytes, shape.nc, cc);
        double ug_compute =
            std::max({u.systolicSec, u.vectorSec, u.dramSec}) +
            params.ndp.taskOverheadSec;

        PhaseResult ug = assemblePropPhase(
            u, params, collectiveLinks(shape, cc.rings));
        ug.collectiveSec = coll;
        ug.seconds = std::max(ug_compute, coll) +
                     params.ndp.taskOverheadSec;
        ug.linkBytesSent = double(memnet::ringAllReduceBytesPerWorker(
            w_bytes, shape.nc));
        ug.energy.linkIdleJ =
            em.linkIdleEnergy(int(cc.rings * p), 0, ug.seconds);
        ug.energy.linkJ =
            em.linkDynamicEnergy(uint64_t(ug.linkBytesSent * p)) +
            ug.energy.linkIdleJ;

        res.bwd = bp;
        res.bwd.seconds += ug.seconds;
        res.bwd.collectiveSec = coll;
        res.bwd.macs += ug.macs;
        res.bwd.vecOps += ug.vecOps;
        res.bwd.dramBytes += ug.dramBytes;
        res.bwd.linkBytesSent += ug.linkBytesSent;
        res.bwd.systolicSec += ug.systolicSec;
        res.bwd.vectorSec += ug.vectorSec;
        res.bwd.dramSec += ug.dramSec;
        res.bwd.dmaStallSec += ug.dmaStallSec;
        res.bwd.energy += ug.energy;
        res.bpropSeconds = bp.seconds;
        res.ugradComputeSeconds = ug_compute;
        res.collectiveSeconds = coll;
        res.p2pLinkBytes = res.fwd.linkBytesSent + bp.linkBytesSent;
        res.collectiveLinkBytes = ug.linkBytesSent;
        if (export_artifacts && metrics::enabled())
            exportLayerMetrics(strategy, res);
        if (export_artifacts && trace::enabled())
            exportLayerTrace(strategy, res);
        return res;
    }

    // Winograd strategies. A single-group shape *is* data parallelism
    // (the dynamic-clustering DP configuration): weights update in the
    // spatial domain and all four links serve the collective rings.
    winomc_assert(spec.samePadded() && spec.squareKernel(),
                  "the MPT Winograd strategies bind the paper's "
                  "stride-1 same-padded square-kernel geometry (got ",
                  spec.key(), "); decompose first or use d_dp");
    const WinogradAlgo &algo = algoFor(spec.kernelH(), shape.ng);
    res.algoName = algo.name();
    const PredictionParams *pred =
        usesPrediction(strategy) ? &params.predict : nullptr;

    const bool spatial_weights =
        strategy == Strategy::WinoDP || shape.ng == 1;
    WinoPhase f = winoPropPhase(spec, algo, shape, params, pred, false,
                                spatial_weights);
    WinoPhase b = winoPropPhase(spec, algo, shape, params, pred, true,
                                spatial_weights);
    WinoPhase u = winoUpdatePhase(spec, algo, shape, params,
                                  spatial_weights);

    res.fwd = assemblePropPhase(f, params, propLinks(shape));
    PhaseResult bp = assemblePropPhase(b, params, propLinks(shape));

    // Collective: w_dp reduces spatial |w| over p workers (4 rings);
    // MPT reduces the group slice |W|/ng over the N_c ring (2 rings).
    memnet::CollectiveConfig cc;
    uint64_t coll_bytes;
    if (spatial_weights) {
        cc.rings = params.dpCollectiveRings;
        coll_bytes = uint64_t(spec.weightElems() * kB);
    } else {
        cc.rings = params.mptCollectiveRings;
        coll_bytes = uint64_t(double(spec.inCh) * spec.outCh *
                              algo.alpha * algo.alpha * kB / shape.ng);
    }
    double coll = memnet::ringAllReduceTime(coll_bytes, shape.nc, cc);
    double ug_compute =
        std::max({u.systolicSec, u.vectorSec, u.dramSec}) +
        params.ndp.taskOverheadSec;

    PhaseResult ug = assemblePropPhase(
        u, params, collectiveLinks(shape, cc.rings));
    ug.collectiveSec = coll;
    ug.seconds = std::max(ug_compute, coll) + params.ndp.taskOverheadSec;
    ug.linkBytesSent = double(memnet::ringAllReduceBytesPerWorker(
        coll_bytes, shape.nc));
    ug.energy.linkIdleJ =
        em.linkIdleEnergy(int(cc.rings * p), 0, ug.seconds);
    ug.energy.linkJ =
        em.linkDynamicEnergy(uint64_t(ug.linkBytesSent * p)) +
        ug.energy.linkIdleJ;

    res.bwd = bp;
    res.bwd.seconds += ug.seconds;
    res.bwd.collectiveSec = coll;
    res.bwd.macs += ug.macs;
    res.bwd.vecOps += ug.vecOps;
    res.bwd.dramBytes += ug.dramBytes;
    res.bwd.linkBytesSent += ug.linkBytesSent;
    res.bwd.systolicSec += ug.systolicSec;
    res.bwd.vectorSec += ug.vectorSec;
    res.bwd.dramSec += ug.dramSec;
    res.bwd.dmaStallSec += ug.dmaStallSec;
    res.bwd.energy += ug.energy;
    res.bpropSeconds = bp.seconds;
    res.ugradComputeSeconds = ug_compute;
    res.collectiveSeconds = coll;
    res.p2pLinkBytes = res.fwd.linkBytesSent + bp.linkBytesSent;
    res.collectiveLinkBytes = ug.linkBytesSent;
    if (export_artifacts && metrics::enabled())
        exportLayerMetrics(strategy, res);
    if (export_artifacts && trace::enabled())
        exportLayerTrace(strategy, res);
    return res;
}

LayerResult
simulateLayer(const ConvSpec &spec, Strategy strategy,
              const SystemParams &params)
{
    const int p = params.workers;
    switch (strategy) {
      case Strategy::DirectDP:
      case Strategy::WinoDP:
        return simulateLayerWithShape(
            spec, strategy, params, memnet::ClusterShape::dataParallel(p));
      case Strategy::WinoMPT:
      case Strategy::WinoMPTPredict: {
        auto shape = p % 16 == 0 ? memnet::ClusterShape::groups16(p)
                     : p % 4 == 0 ? memnet::ClusterShape::groups4(p)
                                  : memnet::ClusterShape::dataParallel(p);
        return simulateLayerWithShape(spec, strategy, params, shape);
      }
      case Strategy::WinoMPTPredictDyn: {
        // Dynamic clustering: evaluate the available configurations and
        // keep the fastest (Section IV; the choice is precomputed per
        // layer and reconfiguration costs nothing). The exploration
        // runs silent; only the chosen shape is exported, under w_mp++.
        LayerResult best;
        bool have = false;
        auto consider = [&](const memnet::ClusterShape &shape) {
            LayerResult r = simulateLayerWithShape(
                spec, Strategy::WinoMPTPredict, params, shape,
                /*export_artifacts=*/false);
            if (!have || r.totalSeconds() < best.totalSeconds()) {
                best = r;
                have = true;
            }
        };
        consider(memnet::ClusterShape::dataParallel(p));
        if (p % 4 == 0)
            consider(memnet::ClusterShape::groups4(p));
        if (p % 16 == 0)
            consider(memnet::ClusterShape::groups16(p));
        if (metrics::enabled())
            exportLayerMetrics(Strategy::WinoMPTPredictDyn, best);
        if (trace::enabled())
            exportLayerTrace(Strategy::WinoMPTPredictDyn, best);
        return best;
      }
    }
    winomc_panic("unknown strategy");
}

} // namespace winomc::mpt
