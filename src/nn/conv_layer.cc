#include "nn/conv_layer.hh"

#include "winograd/microkernel.hh"

namespace winomc::nn {

ConvLayer::ConvLayer(int in_ch, int out_ch, int r_, ConvMode mode,
                     const WinogradAlgo &algo_, Rng &rng)
    : inCh(in_ch), outCh(out_ch), r(r_), convMode(mode), algo(algo_),
      w(out_ch, in_ch, r_, r_), dw(out_ch, in_ch, r_, r_)
{
    winomc_assert(r_ % 2 == 1, "ConvLayer needs odd filter size");
    if (mode != ConvMode::Direct) {
        winomc_assert(algo.r == r_, "algorithm r=", algo.r,
                      " mismatches layer r=", r_);
    }
    w.fillKaiming(rng);
    if (mode != ConvMode::Direct) {
        W = transformWeights(w, algo);
        dW = WinoWeights(algo.alpha, out_ch, in_ch);
        gScratch = WinoWeights(algo.alpha, out_ch, in_ch);
        if (mode == ConvMode::WinogradSpatial)
            dwScratch = Tensor(out_ch, in_ch, r_, r_);
    }
}

void
ConvLayer::ensurePlan(const Tensor &x)
{
    if (execPlan &&
        execPlan->matches(algo, x.n(), inCh, outCh, x.h(), x.w()))
        return;
    // Park the displaced plan before leasing: an A/B/A shape flip then
    // finds the parked plan and the whole rotation stays allocation-
    // free, where rebuilding in place bounced the slabs off the
    // workspace pool on every flip.
    PlanSource &src = planSourceRef();
    src.releasePlan(std::move(execPlan));
    execPlan = src.acquirePlan(algo, x.n(), inCh, outCh, x.h(), x.w());
}

void
ConvLayer::setPlanSource(PlanSource *src)
{
    if (src == planSrc)
        return;
    // The active plan belongs to the outgoing source's pool economy —
    // hand it back there before switching.
    planSourceRef().releasePlan(std::move(execPlan));
    planSrc = src;
}

void
ConvLayer::shareWinoWeights(std::shared_ptr<const WinoWeights> shared)
{
    if (shared) {
        winomc_assert(convMode != ConvMode::Direct,
                      "shareWinoWeights on a Direct-mode layer");
        winomc_assert(shared->alphaEdge() == algo.alpha &&
                          shared->outChannels() == outCh &&
                          shared->inChannels() == inCh,
                      "shared Winograd weights mismatch the layer: got ",
                      shared->alphaEdge(), "/", shared->outChannels(),
                      "/", shared->inChannels(), ", want ", algo.alpha,
                      "/", outCh, "/", inCh);
    }
    sharedW = std::move(shared);
}

Tensor
ConvLayer::forward(const Tensor &x, bool train)
{
    winomc_assert(x.c() == inCh, "ConvLayer expected ", inCh,
                  " channels, got ", x.c());
    winomc_assert(!(train && sharedW),
                  "train-mode forward on a ConvLayer with shared frozen "
                  "Winograd weights (inference-only)");
    lastH = x.h();
    lastW = x.w();
    trainCached = train;

    if (convMode == ConvMode::Direct) {
        if (train)
            cachedX = x;
        return directConvForward(x, w);
    }

    ensurePlan(x);
    Tensor y(x.n(), outCh, x.h(), x.w());
    // A train-mode forward wants the plan's input-tile cache for the
    // weight-gradient product, so Auto stays staged there; only an
    // explicit WINOMC_FUSED=on fuses it, caching the raw activations
    // instead and re-transforming them in backward().
    usedFusedForward = execPlan->shouldFuse(train);
    if (usedFusedForward) {
        execPlan->forwardFusedInto(x, effectiveW(), y);
        if (train)
            cachedX = x;
    } else {
        execPlan->forwardInto(x, effectiveW(), y);
        if (!train)
            execPlan->invalidateCache();
    }
    return y;
}

Tensor
ConvLayer::backward(const Tensor &dy)
{
    winomc_assert(trainCached,
                  "ConvLayer::backward without a train-mode forward: "
                  "the cached activations are stale");
    haveGrad = true;
    if (convMode == ConvMode::Direct) {
        dw += directConvGradWeights(cachedX, dy, r);
        return directConvBackwardData(dy, w);
    }

    // A fused forward bypassed the slabs, so the input-tile cache the
    // weight-gradient product needs does not exist yet — rebuild it
    // from the cached activations (identical tiles, staged or not).
    if (usedFusedForward)
        execPlan->scatterInput(cachedX);
    execPlan->transformGradOutput(dy);
    execPlan->gradWeightsFromCachedInto(gScratch);
    if (convMode == ConvMode::WinogradLayer) {
        dW += gScratch;
    } else {
        // Chain through W = G w G^T back to the spatial parameters.
        transformWeightsAdjointInto(gScratch, algo, dwScratch);
        dw += dwScratch;
    }
    Tensor dx(dy.n(), inCh, lastH, lastW);
    if (execPlan->shouldFuse(false))
        execPlan->backwardDataFusedInto(dy, W, dx);
    else
        execPlan->backwardDataFromCachedInto(W, dx);
    return dx;
}

void
ConvLayer::step(float lr)
{
    winomc_assert(!sharedW,
                  "step() on a ConvLayer with shared frozen Winograd "
                  "weights (inference-only)");
    if (!haveGrad)
        return;
    haveGrad = false;
    const mk::MicroKernels &K = mk::kernels();
    switch (convMode) {
      case ConvMode::Direct:
        K.axpy(w.data(), -lr, dw.data(), std::int64_t(w.size()));
        dw.fill(0.0f);
        break;
      case ConvMode::WinogradSpatial:
        K.axpy(w.data(), -lr, dw.data(), std::int64_t(w.size()));
        dw.fill(0.0f);
        transformWeightsInto(w, algo, W);
        break;
      case ConvMode::WinogradLayer:
        K.axpy(W.raw(), -lr, dW.raw(), std::int64_t(W.size()));
        dW.fill(0.0f);
        break;
    }
}

const WinoTiles &
ConvLayer::lastOutputTiles() const
{
    winomc_assert(execPlan != nullptr,
                  "lastOutputTiles before any Winograd-mode forward");
    return execPlan->outputTiles();
}

size_t
ConvLayer::paramCount() const
{
    if (convMode == ConvMode::WinogradLayer)
        return W.size();
    return w.size();
}

std::string
ConvLayer::name() const
{
    switch (convMode) {
      case ConvMode::Direct:
        return "conv_direct";
      case ConvMode::WinogradSpatial:
        return "conv_wino_spatial";
      case ConvMode::WinogradLayer:
        return "conv_wino_layer";
    }
    return "conv";
}

} // namespace winomc::nn
