# Empty dependencies file for dram_micro.
# This may be replaced when dependencies are built.
