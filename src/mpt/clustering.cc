#include "mpt/clustering.hh"

#include <algorithm>

namespace winomc::mpt {

std::vector<ClusteringChoice>
evaluateShapes(const ConvSpec &spec, const SystemParams &params)
{
    std::vector<ClusteringChoice> out;
    auto consider = [&](const memnet::ClusterShape &shape) {
        LayerResult r = simulateLayerWithShape(
            spec, Strategy::WinoMPTPredict, params, shape);
        ClusteringChoice c;
        c.shape = shape;
        c.seconds = r.totalSeconds();
        c.commBytesPerWorker = r.fwd.linkBytesSent + r.bwd.linkBytesSent;
        out.push_back(c);
    };

    const int p = params.workers;
    consider(memnet::ClusterShape::dataParallel(p));
    if (p % 4 == 0)
        consider(memnet::ClusterShape::groups4(p));
    if (p % 16 == 0)
        consider(memnet::ClusterShape::groups16(p));

    std::sort(out.begin(), out.end(),
              [](const ClusteringChoice &a, const ClusteringChoice &b) {
                  return a.seconds < b.seconds;
              });
    return out;
}

memnet::ClusterShape
chooseShape(const ConvSpec &spec, const SystemParams &params)
{
    return evaluateShapes(spec, params).front().shape;
}

} // namespace winomc::mpt
