/**
 * @file
 * Figure 9 brought to life: the full 256-worker + host memory-centric
 * network as ONE flit-level simulation, carrying both MPT traffic
 * classes at once - ring-neighbor collective chunks inside every group
 * and all-to-all tile transfer inside every cluster - plus host
 * control packets, exactly the mix the hybrid topology exists to
 * serve.
 *
 * Reported: completion time of the combined phase vs. the two classes
 * run in isolation (the hybrid topology keeps them off each other's
 * links, so the combination costs almost nothing extra), and the same
 * mix forced onto a pure 256-node ring for contrast.
 */

#include <cstdio>
#include <memory>

#include "common/table.hh"
#include "noc/memcentric.hh"
#include "noc/network.hh"

using namespace winomc;
using namespace winomc::noc;

namespace {

constexpr int kRounds = 24;

/** Collective traffic: every worker streams 256 B chunks to its ring
 *  successor within the group. */
int
offerCollective(Network &net, const MemCentricTopology &t)
{
    int sent = 0;
    for (int round = 0; round < kRounds; ++round) {
        for (int g = 0; g < 16; ++g) {
            for (int i = 0; i < 16; ++i) {
                net.offerPacket(t.workerAt(g, i),
                                t.workerAt(g, (i + 1) % 16), 256);
                ++sent;
            }
        }
    }
    return sent;
}

/** Tile traffic: every worker sends 64 B to every other member of its
 *  cluster (the workers sharing its in-group index). */
int
offerTiles(Network &net, const MemCentricTopology &t)
{
    int sent = 0;
    for (int round = 0; round < kRounds / 4; ++round) {
        for (int i = 0; i < 16; ++i) {
            for (int g = 0; g < 16; ++g) {
                for (int og = 0; og < 16; ++og) {
                    if (og == g)
                        continue;
                    net.offerPacket(t.workerAt(g, i),
                                    t.workerAt(og, i), 64);
                    ++sent;
                }
            }
        }
    }
    return sent;
}

/** Host control packets (task descriptors / reconfig commands). */
int
offerHost(Network &net, const MemCentricTopology &t)
{
    for (int g = 0; g < 16; ++g)
        net.offerPacket(t.hostNode(), t.workerAt(g, 5), 64);
    return 16;
}

double
runMix(bool collective, bool tiles, bool host, uint64_t &cycles)
{
    NocConfig cfg;
    cfg.flitBytes = 10;     // conservative: narrow width everywhere
    cfg.injectionLanes = 4;
    auto topo = std::make_unique<MemCentricTopology>(16, 16);
    const MemCentricTopology &t = *topo;
    Network net(std::move(topo), cfg);

    int sent = 0;
    if (collective)
        sent += offerCollective(net, t);
    if (tiles)
        sent += offerTiles(net, t);
    if (host)
        sent += offerHost(net, t);
    bool ok = net.drain(5'000'000);
    cycles = net.now();
    if (!ok || net.ejectedCount() != uint64_t(sent))
        return -1.0;
    return double(cycles) * 1e-9;
}

} // namespace

int
main()
{
    std::printf("Figure 9 composite network: 257 flit-level routers "
                "(16 groups x 16 workers + host)\n\n");

    Table t("combined MPT traffic on the hybrid topology");
    t.header({"traffic", "cycles", "time us"});
    uint64_t c_coll = 0, c_tiles = 0, c_all = 0;
    double t_coll = runMix(true, false, false, c_coll);
    double t_tiles = runMix(false, true, false, c_tiles);
    double t_all = runMix(true, true, true, c_all);
    t.row().cell("collectives only (group rings)").cell(c_coll)
        .cell(t_coll * 1e6, 1);
    t.row().cell("tile transfer only (cluster fbfly)").cell(c_tiles)
        .cell(t_tiles * 1e6, 1);
    t.row().cell("both + host control").cell(c_all)
        .cell(t_all * 1e6, 1);
    t.print();

    double slowdown = t_all / std::max(t_coll, t_tiles);
    std::printf("combined / max(isolated) = %.2f - the two classes ride "
                "disjoint link classes (Section IV's hybrid topology), "
                "so running them together costs %.0f%% extra.\n",
                slowdown, (slowdown - 1.0) * 100.0);
    return 0;
}
