// Bit-exact software conversions between fp32 and the two 16-bit
// storage formats (IEEE binary16 and bfloat16). The encoders are
// always software so every ISA produces identical bits (round to
// nearest even, including subnormals and carry into inf for f16);
// the decoders are exact by construction, so hardware-accelerated
// decode paths in the microkernels are bitwise interchangeable with
// these reference loops.
#pragma once

#include <cstdint>
#include <cstring>

namespace winomc::half {

inline std::uint32_t f32Bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

inline float f32FromBits(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

// fp32 -> bfloat16, round to nearest even. NaNs are quieted so that
// truncation can never turn a signalling NaN payload into infinity.
inline std::uint16_t f32ToBf16(float f) {
  std::uint32_t u = f32Bits(f);
  if ((u & 0x7f800000u) == 0x7f800000u && (u & 0x007fffffu) != 0u) {
    return static_cast<std::uint16_t>((u >> 16) | 0x0040u);
  }
  u += 0x7fffu + ((u >> 16) & 1u);
  return static_cast<std::uint16_t>(u >> 16);
}

inline float bf16ToF32(std::uint16_t h) {
  return f32FromBits(static_cast<std::uint32_t>(h) << 16);
}

// fp32 -> binary16, round to nearest even with subnormal support and
// overflow to infinity. Matches F16C (_mm_cvtps_ph with rounding mode
// _MM_FROUND_TO_NEAREST_INT) bit-for-bit on every input.
inline std::uint16_t f32ToF16(float f) {
  const std::uint32_t u = f32Bits(f);
  const std::uint32_t sign = (u >> 16) & 0x8000u;
  const std::uint32_t abs = u & 0x7fffffffu;

  if (abs >= 0x7f800000u) { // inf / NaN
    const std::uint32_t nan = abs > 0x7f800000u ? 0x0200u : 0u;
    return static_cast<std::uint16_t>(sign | 0x7c00u | nan);
  }
  const int e = static_cast<int>(abs >> 23) - 127;
  if (abs <= 0x33000000u) { // <= 2^-25: rounds to signed zero
    return static_cast<std::uint16_t>(sign);
  }
  if (e < -14) { // subnormal half
    const std::uint32_t mant = (abs & 0x007fffffu) | 0x00800000u;
    const int shift = 13 + (-14 - e); // 14..24
    std::uint32_t q = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (q & 1u))) {
      ++q; // may carry into the smallest normal; the bit layout makes
           // that carry land in the exponent field naturally
    }
    return static_cast<std::uint16_t>(sign | q);
  }
  if (e > 15) { // overflow to inf
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  std::uint32_t bits = static_cast<std::uint32_t>(e + 15) << 10;
  bits |= (abs >> 13) & 0x03ffu;
  const std::uint32_t rem = abs & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (bits & 1u))) {
    ++bits; // mantissa carry may roll into the exponent (correct) or
            // all the way to inf (also correct for RNE)
  }
  return static_cast<std::uint16_t>(sign | bits);
}

inline float f16ToF32(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t e = (h >> 10) & 0x1fu;
  const std::uint32_t m = h & 0x03ffu;
  if (e == 0u) {
    if (m == 0u) return f32FromBits(sign); // signed zero
    // Subnormal: normalize by shifting the mantissa up until the
    // implicit bit (bit 10) is set, adjusting the exponent per shift.
    std::uint32_t mant = m;
    int sh = 0;
    while ((mant & 0x0400u) == 0u) {
      mant <<= 1;
      ++sh;
    }
    mant &= 0x03ffu;
    const std::uint32_t exp = static_cast<std::uint32_t>(113 - sh);
    return f32FromBits(sign | (exp << 23) | (mant << 13));
  }
  if (e == 31u) { // inf / NaN
    return f32FromBits(sign | 0x7f800000u | (m << 13));
  }
  return f32FromBits(sign | ((e + 112u) << 23) | (m << 13));
}

} // namespace winomc::half
