/**
 * @file
 * winomc-report: turn WINOMC_METRICS dumps into the paper-style summary
 * tables (the Figure 15/16 views of a run).
 *
 * Reads one or more metric dumps (JSON or CSV, auto-detected) written
 * by any winomc binary run with WINOMC_METRICS=<path>, and emits:
 *
 *  - the per-layer / per-strategy time breakdown (compute,
 *    intra-cluster tile communication, inter-cluster collective, idle),
 *    verifying that every row sums to the end-to-end iteration time
 *    within 1% (the exporter constructs them to match exactly);
 *  - the energy split by component, including the idle-link share of
 *    link energy (the paper's Fig 15 argument);
 *  - the P2P-vs-collective traffic split;
 *  - the Winograd pipeline memory-traffic table (wino.<mode>.<phase>
 *    counters): measured bytes per call against the cost model's
 *    predictedTrafficBytes() gauge, with a component sum check
 *    (xform + ew + inverse must equal bytes_moved within 1%);
 *  - a NoC/memnet saturation summary (hottest and mean link
 *    utilization, credit-stall and head-of-line-block events, router
 *    occupancy percentiles);
 *  - a per-stage roofline table joining the kernel.<stage>.{seconds,
 *    flops} software probes with the perf.<stage>.* hardware counters
 *    (common/perfcounters.hh): achieved GFLOP/s, IPC, backend-stall
 *    share, LLC-miss bytes/cycle, and arithmetic intensity per
 *    LLC-filtered byte. The software columns always render; on hosts
 *    without perf counters the hardware columns degrade to "-";
 *  - the serving SLO state (slo.* gauges from serve/slo.hh): latency
 *    objective, short/long-window burn rates, alert state, violation
 *    count.
 *
 * Output is markdown (default) or CSV (--csv). Exits non-zero when a
 * breakdown row fails the 1% sum check.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/metrics_io.hh"

namespace {

using winomc::metrics::Kind;
using winomc::metrics::Sample;

struct Options
{
    bool csv = false;
    std::vector<std::string> inputs;
};

/** (scope, rest) from a possibly run-scoped metric name. */
std::pair<std::string, std::string>
splitScope(const std::string &name)
{
    size_t slash = name.find('/');
    if (slash == std::string::npos)
        return {"", name};
    return {name.substr(0, slash), name.substr(slash + 1)};
}

/** (strategy, rest) from "mpt.<strategy>.<rest>"; empty on no match. */
std::pair<std::string, std::string>
splitStrategy(const std::string &rest)
{
    if (rest.rfind("mpt.", 0) != 0)
        return {"", ""};
    size_t dot = rest.find('.', 4);
    if (dot == std::string::npos)
        return {"", ""};
    return {rest.substr(4, dot - 4), rest.substr(dot + 1)};
}

/** One (layer scope, strategy) row of the time-breakdown table. */
struct BreakdownRow
{
    double computeSec = 0, intraSec = 0, interSec = 0, idleSec = 0;
    double totalSec = 0;
    bool haveTotal = false;
};

struct EnergyRow
{
    double computeJ = 0, sramJ = 0, dramJ = 0, linkJ = 0, linkIdleJ = 0;
    double total() const { return computeJ + sramJ + dramJ + linkJ; }
};

struct TrafficRow
{
    double p2pBytes = 0, collectiveBytes = 0;
};

/** Measured-vs-predicted DRAM traffic of one wino.<mode>.<phase>
 *  pipeline (staged/fused x fwd/bwd_data). */
struct WinoTrafficRow
{
    double xformBytes = 0, ewBytes = 0, inverseBytes = 0;
    double bytesMoved = 0, calls = 0, predictedBytes = 0;
};

/** Zero-skip telemetry of one run scope ("quant.*": the sparse /
 *  low-precision elementwise counters from winograd/conv.cc). */
struct QuantRow
{
    double rowsTotal = 0, rowsSkipped = 0, flopsSkipped = 0;
    double panelsTotal = 0, panelsZero = 0;
};

/** Saturation numbers of one simulated network (noc.* / memnet.*). */
struct NetRow
{
    double linkUtilMax = 0, linkUtilMean = 0;
    double creditStalls = 0, holBlocks = 0;
    double occP50 = 0, occP90 = 0, occP99 = 0;
    bool haveOccupancy = false;
};

/** Workspace allocator gauges of one run scope ("workspace.*"). */
struct WorkspaceRow
{
    double bytesInUse = 0, highWater = 0, pooledBytes = 0;
    double freshAllocs = 0, freshBytes = 0, reuses = 0;
};

/** Serving-engine telemetry of one run scope ("serve.*"). */
struct ServeRow
{
    double requests = 0, batches = 0, queueDepth = 0;
    double batchMean = 0, batchP50 = 0, batchP99 = 0;
    double latP50 = 0, latP90 = 0, latP99 = 0;
    double cacheHits = 0, cacheMisses = 0, cacheEvictions = 0;
    double weightBuilds = 0, cacheBytes = 0, cachePlans = 0;
    bool haveEngine = false, haveCache = false;
};

/** Micro-kernel dispatch telemetry of one run scope ("kernel.*"). */
struct KernelRow
{
    double isaLevel = -1;
    std::map<std::string, double> stageGflops; // stage -> GFLOP/s
    double vectorSec = 0, scalarSec = 0;
};

/** One (scope, stage) roofline row: software-side time/work from
 *  kernel.<stage>.{seconds,flops}, hardware side from perf.<stage>.*
 *  (zero cycles = host without usable perf counters). */
struct RooflineRow
{
    double seconds = 0, flops = 0;
    double cycles = 0, instructions = 0, llcMisses = 0, stalled = 0;
};

/** Serving SLO state of one run scope ("slo.*", serve/slo.hh). */
struct SloRow
{
    double objectiveUs = 0, burnShort = 0, burnLong = 0;
    double alertActive = 0, violations = 0;
};

/** One auto-tuner decision ("tuner.layer.<shape key>.*",
 *  winograd/tuner.hh). */
struct TunerRow
{
    double kind = -1, m = 0, terms = 0;
    double predMs = 0, measMs = 0, cacheHit = 0;
};

/** Auto-tuner counter totals of one run scope ("tuner.<leaf>"). */
struct TunerTotals
{
    double selects = 0, memoHits = 0, cacheHits = 0, cacheMisses = 0;
    double measureRuns = 0;
};

using RowKey = std::pair<std::string, std::string>; // (scope, strategy)

struct Report
{
    std::map<RowKey, BreakdownRow> breakdown;
    std::map<RowKey, EnergyRow> energy;
    std::map<RowKey, TrafficRow> traffic;
    std::map<std::string, WinoTrafficRow> winoTraffic; // key: mode.phase
    std::map<std::string, QuantRow> quant;             // key: scope
    std::map<std::string, NetRow> nets; // key: scoped network prefix
    std::map<std::string, WorkspaceRow> workspaces; // key: scope
    std::map<std::string, KernelRow> kernels;       // key: scope
    std::map<std::string, ServeRow> serving;        // key: scope
    std::map<RowKey, RooflineRow> roofline; // key: (scope, stage)
    std::map<std::string, SloRow> slos;     // key: scope
    std::map<RowKey, TunerRow> tuner;       // key: (scope, shape key)
    std::map<std::string, TunerTotals> tunerTotals; // key: scope
};

/** tuner.layer.*.kind gauge value -> AlgoKind name. */
const char *
algoKindLabel(double kind)
{
    switch (int(kind)) {
      case 0:
        return "direct";
      case 1:
        return "winograd";
      case 2:
        return "decomposed";
      default:
        return "?";
    }
}

/** kernel.isa.level gauge value -> WINOMC_ISA-style name. */
const char *
isaLevelName(double level)
{
    switch (int(level)) {
      case 0:
        return "scalar";
      case 1:
        return "sse2";
      case 2:
        return "avx2";
      case 3:
        return "avx512";
      default:
        return "?";
    }
}

void
ingest(Report &rep, const Sample &s)
{
    auto [scope, rest] = splitScope(s.name);
    auto [strategy, leaf] = splitStrategy(rest);
    if (!strategy.empty()) {
        RowKey key{scope, strategy};
        if (leaf.rfind("breakdown.", 0) == 0) {
            BreakdownRow &r = rep.breakdown[key];
            const std::string part = leaf.substr(10);
            if (part == "compute_sec")
                r.computeSec = s.totalSec;
            else if (part == "intra_comm_sec")
                r.intraSec = s.totalSec;
            else if (part == "inter_comm_sec")
                r.interSec = s.totalSec;
            else if (part == "idle_sec")
                r.idleSec = s.totalSec;
            else if (part == "total_sec") {
                r.totalSec = s.totalSec;
                r.haveTotal = true;
            }
        } else if (leaf.rfind("energy.", 0) == 0) {
            EnergyRow &r = rep.energy[key];
            const std::string part = leaf.substr(7);
            if (part == "compute_j")
                r.computeJ = s.value;
            else if (part == "sram_j")
                r.sramJ = s.value;
            else if (part == "dram_j")
                r.dramJ = s.value;
            else if (part == "link_j")
                r.linkJ = s.value;
            else if (part == "link_idle_j")
                r.linkIdleJ = s.value;
        } else if (leaf == "p2p_bytes") {
            rep.traffic[key].p2pBytes = s.value;
        } else if (leaf == "collective_bytes") {
            rep.traffic[key].collectiveBytes = s.value;
        }
        return;
    }

    // Auto-tuner decisions ("tuner.layer.<shape key>.<leaf>"; the
    // shape key is dot-free by construction) and counter totals
    // ("tuner.<leaf>").
    if (rest.rfind("tuner.", 0) == 0) {
        const std::string skey = scope.empty() ? "-" : scope;
        if (rest.rfind("tuner.layer.", 0) == 0) {
            const size_t dot = rest.rfind('.');
            if (dot == std::string::npos || dot <= 12)
                return;
            TunerRow &r = rep.tuner[{skey, rest.substr(12, dot - 12)}];
            const std::string leaft = rest.substr(dot + 1);
            if (leaft == "kind")
                r.kind = s.value;
            else if (leaft == "m")
                r.m = s.value;
            else if (leaft == "terms")
                r.terms = s.value;
            else if (leaft == "pred_ms")
                r.predMs = s.value;
            else if (leaft == "meas_ms")
                r.measMs = s.value;
            else if (leaft == "cache_hit")
                r.cacheHit = s.value;
            return;
        }
        TunerTotals &t = rep.tunerTotals[skey];
        const std::string leaft = rest.substr(6);
        if (leaft == "selects")
            t.selects = s.value;
        else if (leaft == "memo_hits")
            t.memoHits = s.value;
        else if (leaft == "cache_hits")
            t.cacheHits = s.value;
        else if (leaft == "cache_misses")
            t.cacheMisses = s.value;
        else if (leaft == "measure_runs")
            t.measureRuns = s.value;
        return;
    }

    // Winograd pipeline traffic ("wino.<mode>.<phase>.<leaf>"). Only
    // the known leaves land here — trace spans share the wino. prefix
    // but never appear in metric dumps.
    if (rest.rfind("wino.", 0) == 0) {
        size_t dot = rest.rfind('.');
        if (dot == std::string::npos || dot <= 5)
            return;
        const std::string leafT = rest.substr(dot + 1);
        if (leafT != "xform_bytes" && leafT != "ew_bytes" &&
            leafT != "inverse_bytes" && leafT != "bytes_moved" &&
            leafT != "calls" && leafT != "predicted_bytes")
            return;
        std::string key = rest.substr(5, dot - 5); // "<mode>.<phase>"
        if (!scope.empty())
            key = scope + "/" + key;
        WinoTrafficRow &r = rep.winoTraffic[key];
        if (leafT == "xform_bytes")
            r.xformBytes = s.value;
        else if (leafT == "ew_bytes")
            r.ewBytes = s.value;
        else if (leafT == "inverse_bytes")
            r.inverseBytes = s.value;
        else if (leafT == "bytes_moved")
            r.bytesMoved = s.value;
        else if (leafT == "calls")
            r.calls = s.value;
        else
            r.predictedBytes = s.value;
        return;
    }

    // Zero-skip telemetry ("quant.ew.* / quant.mask.*").
    if (rest.rfind("quant.", 0) == 0) {
        QuantRow &r = rep.quant[scope.empty() ? "-" : scope];
        const std::string leafq = rest.substr(6);
        if (leafq == "ew.rows_total")
            r.rowsTotal = s.value;
        else if (leafq == "ew.rows_skipped")
            r.rowsSkipped = s.value;
        else if (leafq == "ew.flops_skipped")
            r.flopsSkipped = s.value;
        else if (leafq == "mask.panels_total")
            r.panelsTotal = s.value;
        else if (leafq == "mask.panels_zero")
            r.panelsZero = s.value;
        return;
    }

    // Micro-kernel dispatch telemetry ("kernel.<leaf>").
    if (rest.rfind("kernel.", 0) == 0) {
        const std::string skey = scope.empty() ? "-" : scope;
        KernelRow &r = rep.kernels[skey];
        const std::string leafk = rest.substr(7);
        auto hasSuffix = [&](const char *suf) {
            const size_t n = std::strlen(suf);
            return leafk.size() > n &&
                   leafk.rfind(suf) == leafk.size() - n;
        };
        if (leafk == "isa.level")
            r.isaLevel = s.value;
        else if (leafk == "time.vector")
            r.vectorSec = s.totalSec;
        else if (leafk == "time.scalar")
            r.scalarSec = s.totalSec;
        else if (hasSuffix(".gflops"))
            r.stageGflops[leafk.substr(0, leafk.size() - 7)] = s.value;
        else if (hasSuffix(".seconds"))
            rep.roofline[{skey, leafk.substr(0, leafk.size() - 8)}]
                .seconds = s.totalSec;
        else if (hasSuffix(".flops"))
            rep.roofline[{skey, leafk.substr(0, leafk.size() - 6)}]
                .flops = s.value;
        return;
    }

    // Hardware counter deltas ("perf.<stage>.<counter>",
    // common/perfcounters.hh). perf.available is a capability gauge,
    // not a stage.
    if (rest.rfind("perf.", 0) == 0) {
        const std::string leafp = rest.substr(5);
        if (leafp == "available")
            return;
        const size_t dot = leafp.rfind('.');
        if (dot == std::string::npos)
            return;
        RooflineRow &r =
            rep.roofline[{scope.empty() ? "-" : scope,
                          leafp.substr(0, dot)}];
        const std::string counter = leafp.substr(dot + 1);
        if (counter == "cycles")
            r.cycles = s.value;
        else if (counter == "instructions")
            r.instructions = s.value;
        else if (counter == "llc_misses")
            r.llcMisses = s.value;
        else if (counter == "stalled_backend")
            r.stalled = s.value;
        return;
    }

    // Serving SLO state ("slo.<leaf>", serve/slo.hh).
    if (rest.rfind("slo.", 0) == 0) {
        SloRow &r = rep.slos[scope.empty() ? "-" : scope];
        const std::string leafo = rest.substr(4);
        if (leafo == "objective_us")
            r.objectiveUs = s.value;
        else if (leafo == "burn_rate_short")
            r.burnShort = s.value;
        else if (leafo == "burn_rate_long")
            r.burnLong = s.value;
        else if (leafo == "alert_active")
            r.alertActive = s.value;
        else if (leafo == "violations")
            r.violations = s.value;
        return;
    }

    // Serving-engine telemetry ("serve.<leaf>", see serve/engine.hh).
    if (rest.rfind("serve.", 0) == 0) {
        ServeRow &r = rep.serving[scope.empty() ? "-" : scope];
        const std::string leafs = rest.substr(6);
        if (leafs == "requests") {
            r.requests = s.value;
            r.haveEngine = true;
        } else if (leafs == "batches") {
            r.batches = s.value;
            r.haveEngine = true;
        } else if (leafs == "queue_depth") {
            r.queueDepth = s.value;
        } else if (leafs == "batch_size") {
            r.batchMean = s.mean();
            r.batchP50 = s.p50;
            r.batchP99 = s.p99;
            r.haveEngine = true;
        } else if (leafs == "latency_us") {
            r.latP50 = s.p50;
            r.latP90 = s.p90;
            r.latP99 = s.p99;
            r.haveEngine = true;
        } else if (leafs == "plan_cache.hits") {
            r.cacheHits = s.value;
            r.haveCache = true;
        } else if (leafs == "plan_cache.misses") {
            r.cacheMisses = s.value;
            r.haveCache = true;
        } else if (leafs == "plan_cache.evictions") {
            r.cacheEvictions = s.value;
            r.haveCache = true;
        } else if (leafs == "plan_cache.weight_builds") {
            r.weightBuilds = s.value;
            r.haveCache = true;
        } else if (leafs == "plan_cache.bytes") {
            r.cacheBytes = s.value;
            r.haveCache = true;
        } else if (leafs == "plan_cache.plans") {
            r.cachePlans = s.value;
            r.haveCache = true;
        }
        return;
    }

    // Workspace allocator gauges ("workspace.<leaf>").
    if (rest.rfind("workspace.", 0) == 0) {
        WorkspaceRow &r = rep.workspaces[scope.empty() ? "-" : scope];
        const std::string leafw = rest.substr(10);
        if (leafw == "bytes_in_use")
            r.bytesInUse = s.value;
        else if (leafw == "high_water_bytes")
            r.highWater = s.value;
        else if (leafw == "pooled_bytes")
            r.pooledBytes = s.value;
        else if (leafw == "fresh_allocs")
            r.freshAllocs = s.value;
        else if (leafw == "fresh_bytes")
            r.freshBytes = s.value;
        else if (leafw == "slab_reuses")
            r.reuses = s.value;
        return;
    }

    // Network saturation metrics: "<net prefix>.<leaf>" where the
    // prefix starts with noc. or memnet. (keep the scope visible).
    if (rest.rfind("noc.", 0) != 0 && rest.rfind("memnet.", 0) != 0)
        return;
    size_t dot = rest.rfind('.');
    if (dot == std::string::npos)
        return;
    std::string leaf2 = rest.substr(dot + 1);
    std::string prefix = rest.substr(0, dot);
    // Histogram names carry one more level (e.g. ...router_occupancy).
    std::string full = scope.empty() ? prefix : scope + "/" + prefix;
    NetRow &r = rep.nets[full];
    if (leaf2 == "link_util_max")
        r.linkUtilMax = s.value;
    else if (leaf2 == "link_util_mean")
        r.linkUtilMean = s.value;
    else if (leaf2 == "credit_stall_events")
        r.creditStalls = s.value;
    else if (leaf2 == "hol_block_events")
        r.holBlocks = s.value;
    else if (leaf2 == "router_occupancy") {
        r.occP50 = s.p50;
        r.occP90 = s.p90;
        r.occP99 = s.p99;
        r.haveOccupancy = true;
    }
}

std::string
fmt(double v)
{
    // NaN marks "no samples" (e.g. percentiles of an empty latency
    // histogram); render it as the same "-" the dumps use.
    if (std::isnan(v))
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
}

std::string
rowName(const RowKey &key)
{
    return key.first.empty() ? "-" : key.first;
}

// ------------------------------------------------------------ markdown

void
mdTable(const std::vector<std::string> &head,
        const std::vector<std::vector<std::string>> &rows)
{
    auto line = [](const std::vector<std::string> &cells) {
        std::string out = "|";
        for (const auto &c : cells)
            out += " " + c + " |";
        std::printf("%s\n", out.c_str());
    };
    line(head);
    std::vector<std::string> rule(head.size(), "---");
    line(rule);
    for (const auto &r : rows)
        line(r);
    std::printf("\n");
}

void
csvTable(const char *section, const std::vector<std::string> &head,
         const std::vector<std::vector<std::string>> &rows)
{
    std::printf("section,%s\n", section);
    std::string h;
    for (size_t i = 0; i < head.size(); ++i)
        h += (i ? "," : "") + head[i];
    std::printf("%s\n", h.c_str());
    for (const auto &r : rows) {
        std::string l;
        for (size_t i = 0; i < r.size(); ++i)
            l += (i ? "," : "") + r[i];
        std::printf("%s\n", l.c_str());
    }
    std::printf("\n");
}

void
emitSection(const Options &opt, const char *title,
            const std::vector<std::string> &head,
            const std::vector<std::vector<std::string>> &rows)
{
    if (rows.empty())
        return;
    if (opt.csv) {
        csvTable(title, head, rows);
    } else {
        std::printf("## %s\n\n", title);
        mdTable(head, rows);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0)
            opt.csv = true;
        else if (std::strcmp(argv[i], "--help") == 0 ||
                 std::strcmp(argv[i], "-h") == 0) {
            std::printf("usage: winomc-report [--csv] <dump>...\n"
                        "  <dump>  WINOMC_METRICS artifact (.json or "
                        ".csv)\n");
            return 0;
        } else {
            opt.inputs.push_back(argv[i]);
        }
    }
    if (opt.inputs.empty()) {
        std::fprintf(stderr, "winomc-report: no input dumps "
                             "(try --help)\n");
        return 2;
    }

    Report rep;
    size_t samples = 0;
    for (const auto &path : opt.inputs) {
        auto parsed = winomc::metrics::parseDumpFile(path);
        samples += parsed.size();
        for (const auto &s : parsed)
            ingest(rep, s);
    }
    if (samples == 0) {
        std::fprintf(stderr, "winomc-report: no metrics parsed\n");
        return 2;
    }

    int sum_failures = 0;
    {
        std::vector<std::vector<std::string>> rows;
        for (const auto &[key, r] : rep.breakdown) {
            const double sum =
                r.computeSec + r.intraSec + r.interSec + r.idleSec;
            const double ref = r.haveTotal ? r.totalSec : sum;
            const bool ok =
                ref <= 0.0 ? sum <= 0.0
                           : std::fabs(sum - ref) <= 0.01 * ref;
            if (!ok)
                ++sum_failures;
            rows.push_back({rowName(key), key.second, fmt(r.computeSec),
                            fmt(r.intraSec), fmt(r.interSec),
                            fmt(r.idleSec), fmt(ref),
                            ok ? "ok" : "MISMATCH"});
        }
        emitSection(opt, "Time breakdown (seconds)",
                    {"layer", "strategy", "compute", "intra-comm",
                     "inter-comm", "idle", "total", "sum check"},
                    rows);
    }

    {
        std::vector<std::vector<std::string>> rows;
        for (const auto &[key, r] : rep.energy) {
            const double idle_pct =
                r.linkJ > 0.0 ? 100.0 * r.linkIdleJ / r.linkJ : 0.0;
            rows.push_back({rowName(key), key.second, fmt(r.computeJ),
                            fmt(r.sramJ), fmt(r.dramJ), fmt(r.linkJ),
                            fmt(idle_pct), fmt(r.total())});
        }
        emitSection(opt, "Energy breakdown (joules)",
                    {"layer", "strategy", "compute", "sram", "dram",
                     "link", "link idle %", "total"},
                    rows);
    }

    {
        std::vector<std::vector<std::string>> rows;
        for (const auto &[key, r] : rep.traffic) {
            const double total = r.p2pBytes + r.collectiveBytes;
            rows.push_back(
                {rowName(key), key.second, fmt(r.p2pBytes),
                 fmt(r.collectiveBytes),
                 fmt(total > 0.0 ? 100.0 * r.p2pBytes / total : 0.0)});
        }
        emitSection(opt, "Link traffic split (bytes per worker)",
                    {"layer", "strategy", "p2p", "collective", "p2p %"},
                    rows);
    }

    {
        // Measured slab/tensor traffic per pipeline call against the
        // cost model's prediction. The measured counters accumulate
        // over all calls; predicted_bytes is a per-call gauge. The
        // components must reproduce bytes_moved within 1% (the
        // exporter sums them exactly, so a mismatch means a dropped
        // or double-counted counter) — failures trip the same exit
        // gate as the time-breakdown check. meas/pred lands slightly
        // under 1 when the tile grid overhangs the feature map: the
        // prediction quantizes gather traffic to whole tiles while
        // the measured counter counts the exact in-bounds elements.
        // The gauge keeps only the LAST call's prediction, so the
        // ratio is only meaningful for dumps where every call through
        // a pipeline used one layer shape.
        std::vector<std::vector<std::string>> rows;
        for (const auto &[key, r] : rep.winoTraffic) {
            const double calls = r.calls > 0.0 ? r.calls : 1.0;
            const double sum =
                r.xformBytes + r.ewBytes + r.inverseBytes;
            const bool ok =
                r.bytesMoved <= 0.0
                    ? sum <= 0.0
                    : std::fabs(sum - r.bytesMoved) <=
                          0.01 * r.bytesMoved;
            if (!ok)
                ++sum_failures;
            const double perCall = r.bytesMoved / calls;
            rows.push_back(
                {key, fmt(r.calls), fmt(perCall),
                 fmt(r.predictedBytes),
                 r.predictedBytes > 0.0 ? fmt(perCall / r.predictedBytes)
                                        : "-",
                 ok ? "ok" : "MISMATCH"});
        }
        emitSection(opt, "Winograd memory traffic",
                    {"pipeline", "calls", "measured B/call",
                     "predicted B/call", "meas/pred", "sum check"},
                    rows);
    }

    {
        // Zero-skip effectiveness of the sparse / low-precision
        // elementwise kernels (WINOMC_SPARSE, quant.* counters): how
        // many (j, k-block) weight rows the compaction dropped (from
        // pruned weights or dead activation panels) and what fraction
        // of activation tile panels the mask build found all-zero. A
        // row-skip % far below the weight sparsity means the input
        // had little panel-level structure for the mask to exploit.
        std::vector<std::vector<std::string>> rows;
        for (const auto &[scope, r] : rep.quant) {
            const std::string rowPct =
                r.rowsTotal > 0.0
                    ? fmt(100.0 * r.rowsSkipped / r.rowsTotal)
                    : "-";
            const std::string panelPct =
                r.panelsTotal > 0.0
                    ? fmt(100.0 * r.panelsZero / r.panelsTotal)
                    : "-";
            rows.push_back({scope, fmt(r.rowsTotal),
                            fmt(r.rowsSkipped), rowPct,
                            fmt(r.flopsSkipped), fmt(r.panelsTotal),
                            fmt(r.panelsZero), panelPct});
        }
        emitSection(opt, "Sparsity & precision",
                    {"scope", "ew rows", "rows skipped", "skip %",
                     "FLOPs skipped", "mask panels", "panels zero",
                     "zero %"},
                    rows);
    }

    {
        std::vector<std::vector<std::string>> rows;
        for (const auto &[net, r] : rep.nets) {
            rows.push_back(
                {net, fmt(r.linkUtilMax), fmt(r.linkUtilMean),
                 fmt(r.creditStalls), fmt(r.holBlocks),
                 r.haveOccupancy ? fmt(r.occP50) + " / " +
                                       fmt(r.occP90) + " / " +
                                       fmt(r.occP99)
                                 : "-"});
        }
        emitSection(opt, "Network saturation",
                    {"network", "util max", "util mean", "credit stalls",
                     "HoL blocks", "occupancy p50/p90/p99"},
                    rows);
    }

    {
        std::vector<std::vector<std::string>> rows;
        for (const auto &[scope, r] : rep.workspaces) {
            const double total = r.freshAllocs + r.reuses;
            rows.push_back(
                {scope, fmt(r.highWater / (1 << 20)),
                 fmt(r.bytesInUse / (1 << 20)),
                 fmt(r.pooledBytes / (1 << 20)), fmt(r.freshAllocs),
                 fmt(r.freshBytes / (1 << 20)),
                 fmt(total > 0.0 ? 100.0 * r.reuses / total : 0.0)});
        }
        emitSection(opt, "Workspace allocator",
                    {"scope", "high water MB", "in use MB", "pooled MB",
                     "fresh allocs", "fresh MB", "reuse %"},
                    rows);
    }

    {
        // Latency percentiles render "-" for an empty histogram (NaN
        // round-trips through the dump), so a zero-traffic run is
        // visible as such instead of reporting a latency of 0.
        std::vector<std::vector<std::string>> rows;
        for (const auto &[scope, r] : rep.serving) {
            if (!r.haveEngine)
                continue;
            const double perBatch =
                r.batches > 0.0 ? r.requests / r.batches : 0.0;
            rows.push_back({scope, fmt(r.requests), fmt(r.batches),
                            fmt(perBatch), fmt(r.batchP50),
                            fmt(r.batchP99), fmt(r.latP50),
                            fmt(r.latP90), fmt(r.latP99),
                            fmt(r.queueDepth)});
        }
        emitSection(opt, "Serving",
                    {"scope", "requests", "batches", "req/batch",
                     "batch p50", "batch p99", "lat us p50",
                     "lat us p90", "lat us p99", "queue depth"},
                    rows);
    }

    {
        std::vector<std::vector<std::string>> rows;
        for (const auto &[scope, r] : rep.serving) {
            if (!r.haveCache)
                continue;
            const double lookups = r.cacheHits + r.cacheMisses;
            rows.push_back(
                {scope, fmt(r.cacheHits), fmt(r.cacheMisses),
                 fmt(lookups > 0.0 ? 100.0 * r.cacheHits / lookups
                                   : 0.0),
                 fmt(r.cacheEvictions), fmt(r.weightBuilds),
                 fmt(r.cachePlans), fmt(r.cacheBytes / (1 << 20))});
        }
        emitSection(opt, "Serving plan cache",
                    {"scope", "hits", "misses", "hit %", "evictions",
                     "weight builds", "parked plans", "parked MB"},
                    rows);
    }

    {
        std::vector<std::vector<std::string>> rows;
        for (const auto &[scope, r] : rep.kernels) {
            const double total = r.vectorSec + r.scalarSec;
            const std::string share =
                total > 0.0 ? fmt(100.0 * r.vectorSec / total) : "-";
            if (r.stageGflops.empty())
                rows.push_back({scope, isaLevelName(r.isaLevel), "-",
                                "-", fmt(r.vectorSec),
                                fmt(r.scalarSec), share});
            for (const auto &[stage, gflops] : r.stageGflops)
                rows.push_back({scope, isaLevelName(r.isaLevel), stage,
                                fmt(gflops), fmt(r.vectorSec),
                                fmt(r.scalarSec), share});
        }
        emitSection(opt, "Kernel dispatch",
                    {"scope", "isa", "stage", "GFLOP/s", "vector s",
                     "scalar s", "vector %"},
                    rows);
    }

    {
        // Achieved GFLOP/s comes from the software probes and always
        // renders; IPC / stall share / LLC-miss bytes per cycle need
        // the perf.<stage>.* hardware counters and degrade to "-" on
        // hosts where perf_event_open is refused. FLOP per LLC-byte
        // is the arithmetic intensity seen past the LLC — compare it
        // against the Winograd memory-traffic table's predicted
        // bytes/call to see whether a stage is compute- or
        // traffic-limited. Counters are per participating thread, so
        // ratios are exact while absolute cycle counts cover that
        // thread's share of the stage.
        std::vector<std::vector<std::string>> rows;
        for (const auto &[key, r] : rep.roofline) {
            const bool hw = r.cycles > 0.0;
            const double llcBytes = r.llcMisses * 64.0;
            rows.push_back(
                {rowName(key), key.second, fmt(r.seconds),
                 fmt(r.seconds > 0.0 ? r.flops / r.seconds * 1e-9
                                     : 0.0),
                 hw ? fmt(r.instructions / r.cycles) : "-",
                 hw ? fmt(100.0 * r.stalled / r.cycles) : "-",
                 hw ? fmt(llcBytes / r.cycles) : "-",
                 llcBytes > 0.0 ? fmt(r.flops / llcBytes) : "-"});
        }
        emitSection(opt, "Roofline (per stage)",
                    {"scope", "stage", "seconds", "GFLOP/s", "IPC",
                     "backend stall %", "LLC-miss B/cycle",
                     "FLOP/LLC-byte"},
                    rows);
    }

    {
        // One row per tuned shape: the chosen algorithm (with the
        // F(m,3) tile and, for the DWM decomposition, the unit-term
        // count), the cost model's predicted time, the measured time
        // when WINOMC_TUNE=measure ran (else "-"), and whether the
        // decision came from the on-disk tuning cache
        // (WINOMC_TUNE_CACHE) instead of a fresh tuning pass.
        std::vector<std::vector<std::string>> rows;
        for (const auto &[key, r] : rep.tuner) {
            std::string algo = algoKindLabel(r.kind);
            if (int(r.kind) == 1 || int(r.kind) == 2)
                algo += " F(" + fmt(r.m) + ",3)";
            if (int(r.kind) == 2)
                algo += " x" + fmt(r.terms);
            rows.push_back(
                {rowName(key), key.second, algo, fmt(r.predMs),
                 r.measMs > 0.0 ? fmt(r.measMs) : "-",
                 r.cacheHit > 0.0 ? "hit" : "miss"});
        }
        emitSection(opt, "Algorithm selection",
                    {"scope", "shape", "algorithm", "predicted ms",
                     "measured ms", "tune cache"},
                    rows);
    }

    {
        std::vector<std::vector<std::string>> rows;
        for (const auto &[scope, t] : rep.tunerTotals)
            rows.push_back({scope, fmt(t.selects), fmt(t.memoHits),
                            fmt(t.cacheHits), fmt(t.cacheMisses),
                            fmt(t.measureRuns)});
        emitSection(opt, "Tuner activity",
                    {"scope", "selects", "memo hits", "cache hits",
                     "cache misses", "measure runs"},
                    rows);
    }

    {
        // Burn rate 1.0 = consuming the latency error budget exactly
        // at the sustainable rate; the alert fires when both windows
        // burn above the monitor's threshold (serve/slo.hh).
        std::vector<std::vector<std::string>> rows;
        for (const auto &[scope, r] : rep.slos)
            rows.push_back({scope, fmt(r.objectiveUs),
                            fmt(r.burnShort), fmt(r.burnLong),
                            r.alertActive > 0.0 ? "FIRING" : "ok",
                            fmt(r.violations)});
        emitSection(opt, "Serving SLO",
                    {"scope", "objective us", "burn short",
                     "burn long", "alert", "violations"},
                    rows);
    }

    if (sum_failures) {
        std::fprintf(stderr,
                     "winomc-report: %d breakdown row(s) fail the 1%% "
                     "sum check\n",
                     sum_failures);
        return 1;
    }
    return 0;
}
