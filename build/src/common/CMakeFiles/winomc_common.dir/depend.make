# Empty dependencies file for winomc_common.
# This may be replaced when dependencies are built.
