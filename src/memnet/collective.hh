/**
 * @file
 * Pipelined ring collective timing (Section VI-C).
 *
 * Weight-gradient reduction + updated-weight broadcast run as a
 * pipelined ring collective: the message is split into 256-byte chunks
 * (Table III) that travel the ring concurrently. With the data divided
 * into n per-worker shards the bandwidth-optimal schedule moves
 * 2 (n-1)/n of the bytes through every link (reduce-scatter +
 * all-gather), plus 2 (n-1) chunk-hop latencies of pipeline fill.
 * Multiple independent rings (the paper uses 2 for MPT, 4 for pure data
 * parallelism) split the message evenly.
 */

#ifndef WINOMC_MEMNET_COLLECTIVE_HH
#define WINOMC_MEMNET_COLLECTIVE_HH

#include <cstdint>

#include "memnet/link_model.hh"

namespace winomc::memnet {

struct CollectiveConfig
{
    int chunkBytes = 256;  ///< packet size for collectives (Table III)
    LinkSpec link = LinkSpec::full();
    int rings = 2;         ///< independent rings sharing the message
};

/**
 * Seconds for an all-reduce (reduce + broadcast) of `bytes` across
 * `workers` ring members. Returns 0 for a single worker.
 */
double ringAllReduceTime(uint64_t bytes, int workers,
                         const CollectiveConfig &cfg);

/** Bytes each worker moves during the collective (for link energy). */
uint64_t ringAllReduceBytesPerWorker(uint64_t bytes, int workers);

} // namespace winomc::memnet

#endif // WINOMC_MEMNET_COLLECTIVE_HH
