#include "tensor/workspace.hh"

#include <algorithm>
#include <cstdlib>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/metrics.hh"

namespace winomc::ws {

namespace {

constexpr std::size_t kMinClassFloats = 256;

/** Slab capacity of a size class, in floats. */
std::size_t
classFloats(int cls)
{
    return kMinClassFloats << cls;
}

/** Smallest size class whose slabs hold at least n floats. */
int
classCeil(std::size_t n)
{
    int cls = 0;
    while (classFloats(cls) < n)
        ++cls;
    return cls;
}

/** Largest size class whose slabs fit inside a capacity of n floats. */
int
classFloor(std::size_t capacity)
{
    int cls = classCeil(capacity);
    if (classFloats(cls) > capacity && cls > 0)
        --cls;
    return std::min(cls, Workspace::kClasses - 1);
}

} // namespace

std::size_t
parseWorkspaceLimitMb(const char *str)
{
    return std::size_t(env::parsePositiveInt(
        "WINOMC_WORKSPACE_LIMIT_MB workspace limit", str,
        (long long)kMaxLimitMb));
}

Workspace &
Workspace::global()
{
    // Leaked singleton: tensors released during static destruction must
    // still find a live pool (same lifetime policy as the metrics
    // registry).
    static Workspace *g = new Workspace();
    return *g;
}

std::vector<float>
Workspace::acquire(std::size_t n)
{
    if (n == 0)
        return {};
    const int cls = classCeil(n);
    winomc_assert(cls < kClasses, "workspace request of ", n,
                  " floats exceeds the largest size class");
    std::vector<float> slab;
    {
        std::lock_guard<std::mutex> lock(mu);
        if (!pool[cls].empty()) {
            slab = std::move(pool[cls].back());
            pool[cls].pop_back();
            st.pooledBytes -= slab.capacity() * sizeof(float);
            ++st.reuses;
        } else {
            ++st.freshAllocs;
            st.freshBytes += classFloats(cls) * sizeof(float);
        }
    }
    if (slab.capacity() < classFloats(cls))
        slab.reserve(classFloats(cls)); // fresh slab: one heap alloc
    slab.assign(n, 0.0f);               // capacity suffices: no alloc
    {
        std::lock_guard<std::mutex> lock(mu);
        st.bytesInUse += slab.capacity() * sizeof(float);
        st.highWater = std::max(st.highWater, st.bytesInUse);
        publishGauges();
    }
    return slab;
}

void
Workspace::release(std::vector<float> &&buf)
{
    const std::size_t capBytes = buf.capacity() * sizeof(float);
    if (capBytes == 0)
        return;
    std::vector<float> slab = std::move(buf);
    std::vector<float> doomed; // freed outside the lock
    {
        std::lock_guard<std::mutex> lock(mu);
        ++st.releases;
        st.bytesInUse -= std::min(st.bytesInUse, capBytes);
        if (st.pooledBytes + capBytes <= limitBytesLocked()) {
            slab.clear(); // keeps capacity
            st.pooledBytes += capBytes;
            pool[classFloor(slab.capacity())].push_back(
                std::move(slab));
        } else {
            ++st.dropped;
            doomed = std::move(slab);
        }
        publishGauges();
    }
}

Stats
Workspace::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return st;
}

void
Workspace::resetStats()
{
    std::lock_guard<std::mutex> lock(mu);
    const std::size_t in_use = st.bytesInUse;
    const std::size_t pooled = st.pooledBytes;
    st = Stats{};
    st.bytesInUse = in_use;
    st.pooledBytes = pooled;
    st.highWater = in_use;
}

void
Workspace::trim()
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &cls : pool)
        cls.clear();
    st.pooledBytes = 0;
    publishGauges();
}

std::size_t
Workspace::limitBytes() const
{
    std::lock_guard<std::mutex> lock(mu);
    return const_cast<Workspace *>(this)->limitBytesLocked();
}

void
Workspace::setLimitBytes(std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(mu);
    limitB = bytes ? bytes : 1; // 0 is "unset": keep a live sentinel
}

std::size_t
Workspace::limitBytesLocked()
{
    if (limitB == 0) {
        std::size_t mb = parseWorkspaceLimitMb(
            std::getenv("WINOMC_WORKSPACE_LIMIT_MB"));
        if (mb == 0)
            mb = kDefaultLimitMb;
        limitB = mb << 20;
    }
    return limitB;
}

void
Workspace::publishGauges() const
{
    if (!metrics::enabled())
        return;
    metrics::gaugeSet("workspace.bytes_in_use", double(st.bytesInUse));
    metrics::gaugeSet("workspace.high_water_bytes", double(st.highWater));
    metrics::gaugeSet("workspace.pooled_bytes", double(st.pooledBytes));
    metrics::gaugeSet("workspace.fresh_allocs", double(st.freshAllocs));
    metrics::gaugeSet("workspace.fresh_bytes", double(st.freshBytes));
    metrics::gaugeSet("workspace.slab_reuses", double(st.reuses));
}

std::vector<float>
acquire(std::size_t n)
{
    return Workspace::global().acquire(n);
}

void
release(std::vector<float> &&buf)
{
    Workspace::global().release(std::move(buf));
}

void
assignCopy(std::vector<float> &dst, const std::vector<float> &src)
{
    if (dst.capacity() < src.size()) {
        release(std::move(dst));
        dst = acquire(src.size());
    }
    dst.assign(src.begin(), src.end());
}

void
checkBudget(std::size_t bytes, const std::string &what)
{
    const std::size_t limit = Workspace::global().limitBytes();
    if (bytes > limit) {
        winomc_fatal(what, " needs ", bytes,
                     " bytes of workspace, over the ", limit >> 20,
                     " MB budget; raise WINOMC_WORKSPACE_LIMIT_MB or "
                     "shrink the shape");
    }
}

} // namespace winomc::ws
