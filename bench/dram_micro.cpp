/**
 * @file
 * HMC-stack microbenchmark: achieved bandwidth of the vault-level
 * FR-FCFS model (Table III) under streaming, strided and random
 * patterns - the validation behind the flat 320 GB/s used by the
 * system-level model, and the reason Winograd's extra data accesses
 * want a 3D-stacked memory under the compute (Fig 1 / Section VI).
 */

#include <cstdio>

#include "common/rng.hh"
#include "common/table.hh"
#include "ndp/hmc_dram.hh"

using namespace winomc;
using namespace winomc::ndp;

namespace {

double
runPattern(const char *kind, bool frfcfs, uint64_t &hits, uint64_t &miss)
{
    HmcConfig cfg;
    cfg.frfcfs = frfcfs;
    HmcDram d(cfg);
    Rng rng(13);
    if (kind[0] == 's') { // stream
        for (int k = 0; k < 512; ++k)
            d.submit(uint64_t(k) * 4096, 4096);
    } else if (kind[0] == 't') { // two thrashing streams
        for (int k = 0; k < 6000; ++k)
            d.submit(uint64_t(k % 2) * 8 * 1024 * 1024 +
                         uint64_t(k / 2) * 32 +
                         uint64_t(rng.uniformInt(0, 1)) * 1024 * 1024,
                     32);
    } else { // random
        for (int k = 0; k < 20000; ++k)
            d.submit(uint64_t(rng.uniformInt(0, 1 << 26)) & ~31ULL, 32);
    }
    d.drain(100'000'000);
    hits = d.rowHits();
    miss = d.rowMisses();
    return d.achievedBandwidth();
}

} // namespace

int
main()
{
    std::printf("HMC vault model: 16 vaults x 20 B/cycle @ 1 GHz "
                "(peak 320 GB/s), FR-FCFS window 16\n\n");
    Table t("achieved bandwidth");
    t.header({"pattern", "scheduler", "GB/s", "of peak", "row hits",
              "row misses"});
    for (const char *kind : {"stream", "thrash", "random"}) {
        for (bool fr : {true, false}) {
            uint64_t hits = 0, miss = 0;
            double bw = runPattern(kind, fr, hits, miss);
            t.row()
                .cell(kind)
                .cell(fr ? "FR-FCFS" : "FCFS")
                .cell(bw / 1e9, 1)
                .cell(bw / 320e9, 2)
                .cell(hits)
                .cell(miss);
        }
    }
    t.print();
    std::printf("streaming sustains most of the peak the system model "
                "assumes; FR-FCFS (Table III) recovers bandwidth that "
                "in-order scheduling loses to row thrashing.\n");
    return 0;
}
