#include "mpt/mpt_conv_layer.hh"

namespace winomc::mpt {

namespace {

Tensor
shardOf(const Tensor &t, int b0, int count)
{
    Tensor out(count, t.c(), t.h(), t.w());
    for (int b = 0; b < count; ++b)
        for (int c = 0; c < t.c(); ++c)
            for (int i = 0; i < t.h(); ++i)
                for (int j = 0; j < t.w(); ++j)
                    out.at(b, c, i, j) = t.at(b0 + b, c, i, j);
    return out;
}

void
pasteShard(Tensor &dst, const Tensor &shard, int b0)
{
    for (int b = 0; b < shard.n(); ++b)
        for (int c = 0; c < shard.c(); ++c)
            for (int i = 0; i < shard.h(); ++i)
                for (int j = 0; j < shard.w(); ++j)
                    dst.at(b0 + b, c, i, j) = shard.at(b, c, i, j);
}

} // namespace

MptConvLayer::MptConvLayer(int in_ch, int out_ch, int r, int ng_,
                           int nc_, const WinogradAlgo &algo_, Rng &rng)
    : inCh(in_ch), outCh(out_ch), ng(ng_), nc(nc_), algo(algo_)
{
    winomc_assert(algo.r == r, "algo r mismatch");
    const int a2 = algo.alpha * algo.alpha;
    winomc_assert(ng >= 1 && a2 % ng == 0,
                  "alpha^2 must divide across groups");
    winomc_assert(nc >= 1, "need at least one cluster");
    uvShare = a2 / ng;

    Tensor w(out_ch, in_ch, r, r);
    w.fillKaiming(rng);
    W = transformWeights(w, algo);
    dW = WinoWeights(algo.alpha, out_ch, in_ch);
}

Tensor
MptConvLayer::forward(const Tensor &x, bool train)
{
    winomc_assert(x.c() == inCh, "channel mismatch");
    winomc_assert(x.n() % nc == 0, "batch ", x.n(),
                  " must divide across ", nc, " clusters");
    lastH = x.h();
    lastW = x.w();
    shard = x.n() / nc;

    Tensor y(x.n(), outCh, x.h(), x.w());
    if (train)
        cachedX.clear();

    for (int c = 0; c < nc; ++c) {
        Tensor x_c = shardOf(x, c * shard, shard);
        WinoTiles X = transformInput(x_c, algo);
        WinoTiles Y(algo.alpha, outCh, shard, X.tiles());
        for (int g = 0; g < ng; ++g) {
            partialElementwiseForward(X, W, g * uvShare,
                                      (g + 1) * uvShare, Y);
            tileElems += uint64_t(uvShare) * (inCh + outCh) * shard *
                         X.tiles() * uint64_t(ng - 1) / uint64_t(ng);
        }
        pasteShard(y, inverseTransform(Y, algo, x.h(), x.w()),
                   c * shard);
        if (train)
            cachedX.push_back(std::move(X));
    }
    return y;
}

Tensor
MptConvLayer::backward(const Tensor &dy)
{
    winomc_assert(int(cachedX.size()) == nc,
                  "backward without cached forward");
    haveGrad = true;
    Tensor dx(dy.n(), inCh, lastH, lastW);

    for (int c = 0; c < nc; ++c) {
        Tensor dy_c = shardOf(dy, c * shard, shard);
        WinoTiles dYt = inverseTransformAdjoint(dy_c, algo);
        WinoTiles dXt(algo.alpha, inCh, shard, dYt.tiles());
        for (int g = 0; g < ng; ++g) {
            partialElementwiseBackwardData(dYt, W, g * uvShare,
                                           (g + 1) * uvShare, dXt);
            // The cross-cluster accumulation into dW below is the ring
            // reduction of the group's weight slice.
            partialElementwiseGradWeights(dYt, cachedX[size_t(c)],
                                          g * uvShare,
                                          (g + 1) * uvShare, dW);
            tileElems += uint64_t(uvShare) * (inCh + outCh) * shard *
                         dYt.tiles() * uint64_t(ng - 1) / uint64_t(ng);
            weightElems += uint64_t(uvShare) * inCh * outCh;
        }
        pasteShard(dx,
                   transformInputAdjoint(dXt, algo, lastH, lastW),
                   c * shard);
    }
    return dx;
}

void
MptConvLayer::step(float lr)
{
    if (!haveGrad)
        return;
    haveGrad = false;
    dW *= -lr;
    W += dW;
    dW.fill(0.0f);
}

} // namespace winomc::mpt
