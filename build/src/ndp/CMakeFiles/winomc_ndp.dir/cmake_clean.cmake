file(REMOVE_RECURSE
  "CMakeFiles/winomc_ndp.dir/hmc_dram.cc.o"
  "CMakeFiles/winomc_ndp.dir/hmc_dram.cc.o.d"
  "CMakeFiles/winomc_ndp.dir/timing.cc.o"
  "CMakeFiles/winomc_ndp.dir/timing.cc.o.d"
  "libwinomc_ndp.a"
  "libwinomc_ndp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winomc_ndp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
