/**
 * @file
 * Shared parsing contract for integer environment knobs.
 *
 * Every positive-integer knob in the project (WINOMC_THREADS,
 * WINOMC_WORKSPACE_LIMIT_MB, the WINOMC_SERVE_* serving knobs) follows
 * one hardened discipline instead of hand-rolling its own strtol copy:
 *
 *  - missing/empty      -> 0 (caller falls back to its default), silent;
 *  - garbage / trailing junk -> 0 with a warning;
 *  - zero or negative   -> 0 with a warning;
 *  - above the knob's ceiling (or out of long long range) -> warn and
 *    clamp to the ceiling.
 *
 * Trailing blanks are tolerated ("8 " parses as 8). The helpers never
 * crash and never exit: a bad knob degrades to the default, loudly.
 */

#ifndef WINOMC_COMMON_ENV_HH
#define WINOMC_COMMON_ENV_HH

namespace winomc::env {

/**
 * Parse `str` as a positive integer knob value named `knob` (used in
 * warnings, e.g. "WINOMC_THREADS"). Returns 0 for missing/garbage/
 * non-positive input, `maxValue` for anything larger.
 */
long long parsePositiveInt(const char *knob, const char *str,
                           long long maxValue);

/**
 * getenv(knob) + parsePositiveInt, with `fallback` when the variable is
 * unset or rejected.
 */
long long envPositiveInt(const char *knob, long long maxValue,
                         long long fallback);

} // namespace winomc::env

#endif // WINOMC_COMMON_ENV_HH
