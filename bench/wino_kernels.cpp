/**
 * @file
 * google-benchmark timings of the numeric Winograd kernels against
 * direct convolution - the host-side counterpart of the Fig 1
 * compute-reduction story, measured on real code rather than the
 * analytic model.
 *
 * The elementwise / transform kernels and the end-to-end pipeline also
 * sweep the execution-engine thread count (1/2/4/hardware max) so the
 * scaling of the blocked GEMM path is tracked release to release. Each
 * row is labeled with the micro-kernel ISA that executed it (see
 * WINOMC_ISA); the *Scalar variants pin the scalar table at threads:1
 * so the SIMD speedup is visible inside one run.
 *
 * With WINOMC_METRICS=BENCH_wino.json the run additionally dumps the
 * per-stage timer registry (wino.xform.*, wino.ew.*) as a reproducible
 * JSON artifact; WINOMC_TRACE=wino.trace.json captures the spans for
 * chrome://tracing / Perfetto.
 *
 * --json <path> writes a compact baseline artifact: ms per kernel, the
 * executing ISA, achieved GFLOP/s, run-to-run stddev (the flag implies
 * --benchmark_repetitions=3 unless one is given explicitly), plus the
 * workspace traffic per iteration (fresh heap bytes and slab
 * acquires), so allocation regressions in the hot path are as visible
 * as time regressions.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/trace.hh"
#include "quant/prune.hh"
#include "tensor/workspace.hh"
#include "winograd/algo.hh"
#include "winograd/conv.hh"
#include "winograd/lowprec.hh"
#include "winograd/microkernel.hh"
#include "winograd/plan.hh"

using namespace winomc;

namespace {

/**
 * Brackets a benchmark's timing loop with workspace-counter snapshots
 * and reports the per-iteration allocation traffic as user counters
 * (picked up by the console table and the --json artifact). Returns
 * the acquires/iter value so callers can assert on it.
 */
struct WsProbe
{
    ws::Stats s0 = ws::Workspace::global().stats();

    double
    report(benchmark::State &state) const
    {
        const ws::Stats s1 = ws::Workspace::global().stats();
        const double iters = double(std::max<int64_t>(
            state.iterations(), 1));
        const double acquires =
            double((s1.freshAllocs + s1.reuses) -
                   (s0.freshAllocs + s0.reuses)) /
            iters;
        state.counters["ws_fresh_bytes_per_iter"] =
            double(s1.freshBytes - s0.freshBytes) / iters;
        state.counters["ws_acquires_per_iter"] = acquires;
        return acquires;
    }
};

/** Tag the row with the executing ISA and its raw FLOP rate. */
void
reportKernelRate(benchmark::State &state, double flopsPerIter)
{
    state.SetLabel(mk::isaName(mk::activeIsa()));
    state.counters["flops_per_sec"] = benchmark::Counter(
        flopsPerIter * double(state.iterations()),
        benchmark::Counter::kIsRate);
}

struct Shapes
{
    int batch, ch, hw;
};

Shapes
shapeFor(int idx)
{
    switch (idx) {
      case 0:
        return {1, 16, 32};
      case 1:
        return {2, 32, 16};
      default:
        return {4, 8, 24};
    }
}

/** Nominal direct-conv FLOPs for an N x C -> C, hw x hw, r=3 layer:
 *  the common yardstick all conv benchmarks report their rate in. */
double
convFlops(const Shapes &s)
{
    return 2.0 * s.batch * double(s.ch) * s.ch * s.hw * s.hw * 9;
}

/** Thread sweep 1/2/4/max, deduplicated for small machines. */
void
threadArgs(benchmark::internal::Benchmark *b)
{
    b->ArgName("threads");
    std::vector<int> counts = {1, 2, 4, defaultThreadCount()};
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()),
                 counts.end());
    for (int c : counts)
        b->Arg(c);
}

void
BM_DirectConv(benchmark::State &state)
{
    Shapes s = shapeFor(int(state.range(0)));
    Rng rng(1);
    Tensor x(s.batch, s.ch, s.hw, s.hw);
    Tensor w(s.ch, s.ch, 3, 3);
    x.fillUniform(rng);
    w.fillUniform(rng);
    WsProbe probe;
    for (auto _ : state)
        benchmark::DoNotOptimize(directConvForward(x, w));
    probe.report(state);
    reportKernelRate(state, convFlops(s));
    state.SetItemsProcessed(int64_t(state.iterations()) * s.batch *
                            s.ch * s.ch * s.hw * s.hw * 9);
}
BENCHMARK(BM_DirectConv)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

/**
 * Shared body for the F(2,3)/F(4,3) forward benchmarks: a persistent
 * WinoPlan owns every slab, so after the warm-up call the steady state
 * must not touch the workspace at all (the transient winogradForward
 * wrapper used to re-acquire 5 slabs per call).
 */
void
winogradForwardPlanned(benchmark::State &state, const WinogradAlgo &algo)
{
    Shapes s = shapeFor(int(state.range(0)));
    Rng rng(1);
    Tensor x(s.batch, s.ch, s.hw, s.hw);
    Tensor w(s.ch, s.ch, 3, 3);
    x.fillUniform(rng);
    w.fillUniform(rng);
    WinoWeights W = transformWeights(w, algo);
    WinoPlan plan(algo, s.batch, s.ch, s.ch, s.hw, s.hw);
    Tensor y(s.batch, s.ch, s.hw, s.hw);
    plan.forwardInto(x, W, y); // warm-up: all slabs acquired here
    WsProbe probe;
    for (auto _ : state) {
        plan.forwardInto(x, W, y);
        benchmark::DoNotOptimize(y.data());
    }
    const double acquires = probe.report(state);
    reportKernelRate(state, convFlops(s));
    state.SetItemsProcessed(int64_t(state.iterations()) * s.batch *
                            s.ch * s.ch * s.hw * s.hw * 9);
    if (acquires > 0.5)
        state.SkipWithError(
            "persistent WinoPlan still acquires workspace slabs in "
            "steady state");
}

void
BM_WinogradConvF2(benchmark::State &state)
{
    winogradForwardPlanned(state, algoF2x2_3x3());
}
BENCHMARK(BM_WinogradConvF2)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void
BM_WinogradConvF4(benchmark::State &state)
{
    winogradForwardPlanned(state, algoF4x4_3x3());
}
BENCHMARK(BM_WinogradConvF4)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// -------------------------------------------------------------------
// Decomposed (DWM) execution vs the generalized direct kernel on
// shapes the plain F(m,3) pipeline cannot run. Both rows of a pair
// report the rate in the direct-conv-equivalent FLOPs of the SAME
// spec (2*B*I*J*outH*outW*kh*kw) — the honest yardstick: the
// decomposition performs more raw arithmetic, so a win must show up
// as lower ms/iter, not as an inflated FLOP count.

ConvSpec
decompBenchSpec(bool strided)
{
    if (strided) {
        ConvSpec s{"bench-3x3s2", 2, 64, 64, 28, 28, 3};
        s.strideH = s.strideW = 2;
        return s;
    }
    ConvSpec s{"bench-5x5", 2, 32, 32, 20, 20, 5};
    return s;
}

double
specDirectFlops(const ConvSpec &s)
{
    return 2.0 * s.batch * double(s.inCh) * s.outCh * s.outH() *
           s.outW() * s.kernelH() * s.kernelW();
}

void
decomposedForwardPlanned(benchmark::State &state, bool strided)
{
    const ConvSpec spec = decompBenchSpec(strided);
    Rng rng(1);
    Tensor x(spec.batch, spec.inCh, spec.h, spec.w);
    Tensor w(spec.outCh, spec.inCh, spec.kernelH(), spec.kernelW());
    x.fillUniform(rng);
    w.fillUniform(rng);
    WinoDecompPlan plan(spec, algoF4x4_3x3());
    plan.setWeights(w);
    Tensor y(spec.batch, spec.outCh, spec.outH(), spec.outW());
    plan.forwardInto(x, y); // warm-up: all slabs acquired here
    WsProbe probe;
    for (auto _ : state) {
        plan.forwardInto(x, y);
        benchmark::DoNotOptimize(y.data());
    }
    const double acquires = probe.report(state);
    reportKernelRate(state, specDirectFlops(spec));
    if (acquires > 0.005)
        state.SkipWithError(
            "persistent WinoDecompPlan still acquires workspace slabs "
            "in steady state");
}

void
directForwardEx(benchmark::State &state, bool strided)
{
    const ConvSpec spec = decompBenchSpec(strided);
    Rng rng(1);
    Tensor x(spec.batch, spec.inCh, spec.h, spec.w);
    Tensor w(spec.outCh, spec.inCh, spec.kernelH(), spec.kernelW());
    x.fillUniform(rng);
    w.fillUniform(rng);
    WsProbe probe;
    for (auto _ : state)
        benchmark::DoNotOptimize(directConvForwardEx(
            x, w, spec.strideH, spec.strideW, spec.padHEff(),
            spec.padWEff()));
    probe.report(state);
    reportKernelRate(state, specDirectFlops(spec));
}

void
BM_WinoDecomposed5x5(benchmark::State &state)
{
    decomposedForwardPlanned(state, false);
}
BENCHMARK(BM_WinoDecomposed5x5)->Unit(benchmark::kMillisecond);

void
BM_WinoDecomposedStride2(benchmark::State &state)
{
    decomposedForwardPlanned(state, true);
}
BENCHMARK(BM_WinoDecomposedStride2)->Unit(benchmark::kMillisecond);

void
BM_DirectConv5x5(benchmark::State &state)
{
    directForwardEx(state, false);
}
BENCHMARK(BM_DirectConv5x5)->Unit(benchmark::kMillisecond);

void
BM_DirectConvStride2(benchmark::State &state)
{
    directForwardEx(state, true);
}
BENCHMARK(BM_DirectConvStride2)->Unit(benchmark::kMillisecond);

// -------------------------------------------------------------------
// Threaded kernel benchmarks. Largest shape: batch 8, 64 -> 64
// channels, 32x32 feature maps, F(4x4, 3x3); batch*tiles = 512 per uv.
// -------------------------------------------------------------------

struct ElementwiseFixture
{
    ElementwiseFixture()
    {
        Rng rng(1);
        Tensor x(8, 64, 32, 32);
        Tensor w(64, 64, 3, 3);
        x.fillUniform(rng);
        w.fillUniform(rng);
        const auto &algo = algoF4x4_3x3();
        W = transformWeights(w, algo);
        X = transformInput(x, algo);
        dY = inverseTransformAdjoint(x, algo);
    }

    double
    ewFlops() const
    {
        return 2.0 * X.uvCount() * double(W.outChannels()) *
               W.inChannels() * X.batch() * X.tiles();
    }

    WinoWeights W;
    WinoTiles X, dY;
};

ElementwiseFixture &
elementwiseFixture()
{
    static ElementwiseFixture f;
    return f;
}

/** FLOPs of one inverse transform over the fixture's tile set. */
double
inverseFlops(const WinoTiles &Y, const WinogradAlgo &algo)
{
    const int a = algo.alpha;
    const int m = algo.m;
    return 2.0 * m * a * (a + m) * double(Y.batch()) * Y.channels() *
           Y.tiles();
}

void
BM_ElementwiseForward(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(int(state.range(0)));
    auto &f = elementwiseFixture();
    WsProbe probe;
    for (auto _ : state)
        benchmark::DoNotOptimize(elementwiseForward(f.X, f.W));
    probe.report(state);
    reportKernelRate(state, f.ewFlops());
    // 2 flops per (uv, j, i, k) MAC.
    state.SetItemsProcessed(int64_t(state.iterations()) * f.X.uvCount() *
                            f.W.outChannels() * f.W.inChannels() *
                            f.X.batch() * f.X.tiles() * 2);
}
BENCHMARK(BM_ElementwiseForward)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_ElementwiseBackwardData(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(int(state.range(0)));
    auto &f = elementwiseFixture();
    WsProbe probe;
    for (auto _ : state)
        benchmark::DoNotOptimize(elementwiseBackwardData(f.dY, f.W));
    probe.report(state);
    reportKernelRate(state, f.ewFlops());
    state.SetItemsProcessed(int64_t(state.iterations()) * f.X.uvCount() *
                            f.W.outChannels() * f.W.inChannels() *
                            f.X.batch() * f.X.tiles() * 2);
}
BENCHMARK(BM_ElementwiseBackwardData)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_ElementwiseGradWeights(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(int(state.range(0)));
    auto &f = elementwiseFixture();
    WsProbe probe;
    for (auto _ : state)
        benchmark::DoNotOptimize(elementwiseGradWeights(f.dY, f.X));
    probe.report(state);
    reportKernelRate(state, f.ewFlops());
    state.SetItemsProcessed(int64_t(state.iterations()) * f.X.uvCount() *
                            f.W.outChannels() * f.W.inChannels() *
                            f.X.batch() * f.X.tiles() * 2);
}
BENCHMARK(BM_ElementwiseGradWeights)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_InputTransform(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(int(state.range(0)));
    Rng rng(1);
    Tensor x(2, 32, 32, 32);
    x.fillUniform(rng);
    const auto &algo = algoF2x2_3x3();
    TileGrid grid(x.h(), x.w(), algo);
    const int a = algo.alpha;
    WsProbe probe;
    for (auto _ : state)
        benchmark::DoNotOptimize(transformInput(x, algo));
    probe.report(state);
    reportKernelRate(state, 4.0 * a * a * a * double(x.n()) * x.c() *
                                grid.tiles());
}
BENCHMARK(BM_InputTransform)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_InverseTransform(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(int(state.range(0)));
    auto &f = elementwiseFixture();
    const auto &algo = algoF4x4_3x3();
    WinoTiles Y = elementwiseForward(f.X, f.W);
    WsProbe probe;
    for (auto _ : state)
        benchmark::DoNotOptimize(inverseTransform(Y, algo, 32, 32));
    probe.report(state);
    reportKernelRate(state, inverseFlops(Y, algo));
}
BENCHMARK(BM_InverseTransform)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

// -------------------------------------------------------------------
// Scalar-pinned single-thread variants of the SIMD-sensitive kernels:
// the in-run baseline the auto rows are compared against.
// -------------------------------------------------------------------

void
BM_ElementwiseForwardScalar(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(1);
    mk::setIsa(mk::Isa::Scalar);
    auto &f = elementwiseFixture();
    WsProbe probe;
    for (auto _ : state)
        benchmark::DoNotOptimize(elementwiseForward(f.X, f.W));
    probe.report(state);
    reportKernelRate(state, f.ewFlops());
    mk::setIsa(mk::Isa::Auto);
}
BENCHMARK(BM_ElementwiseForwardScalar)->Unit(benchmark::kMillisecond);

void
BM_ElementwiseGradWeightsScalar(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(1);
    mk::setIsa(mk::Isa::Scalar);
    auto &f = elementwiseFixture();
    WsProbe probe;
    for (auto _ : state)
        benchmark::DoNotOptimize(elementwiseGradWeights(f.dY, f.X));
    probe.report(state);
    reportKernelRate(state, f.ewFlops());
    mk::setIsa(mk::Isa::Auto);
}
BENCHMARK(BM_ElementwiseGradWeightsScalar)->Unit(benchmark::kMillisecond);

void
BM_InverseTransformScalar(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(1);
    mk::setIsa(mk::Isa::Scalar);
    auto &f = elementwiseFixture();
    const auto &algo = algoF4x4_3x3();
    WinoTiles Y = elementwiseForward(f.X, f.W);
    WsProbe probe;
    for (auto _ : state)
        benchmark::DoNotOptimize(inverseTransform(Y, algo, 32, 32));
    probe.report(state);
    reportKernelRate(state, inverseFlops(Y, algo));
    mk::setIsa(mk::Isa::Auto);
}
BENCHMARK(BM_InverseTransformScalar)->Unit(benchmark::kMillisecond);

// -------------------------------------------------------------------
// End-to-end pipeline benchmarks: persistent WinoPlans (zero workspace
// traffic in steady state, enforced below), staged vs fused rows so
// BENCH_wino.json carries both modes of every pipeline.
// -------------------------------------------------------------------

/** Per-stage FLOP yardsticks of the host pipeline (matching the
 *  wino.* stage timers): 2D transform, elementwise GEMM, inverse. */
double
xfFlops(const WinogradAlgo &algo, int B, int C, int t)
{
    const double a = algo.alpha;
    return 4.0 * a * a * a * B * C * t;
}

double
ewFlops(const WinogradAlgo &algo, int B, int I, int J, int t)
{
    const double a = algo.alpha;
    return 2.0 * a * a * I * J * double(B) * t;
}

double
invFlops(const WinogradAlgo &algo, int B, int C, int t)
{
    const double a = algo.alpha;
    const double m = algo.m;
    return 2.0 * m * a * (a + m) * B * C * t;
}

/** RAII override of the fused mode, restoring the prior request so a
 *  forced row cannot leak into later benchmarks. */
struct FusedModeOverride
{
    FusedMode prev = requestedFusedMode();
    explicit FusedModeOverride(FusedMode m) { setFusedMode(m); }
    ~FusedModeOverride() { setFusedMode(prev); }
};

/**
 * Forward pass through a persistent plan, staged or fused, on a shape
 * whose tile slabs (~127 MiB per side for Xt/Yt) overflow any cache
 * level — the configuration the fused strip pipeline exists for.
 * Steady state must not touch the workspace in either mode.
 */
void
winoForwardPlannedMode(benchmark::State &state, bool fused)
{
    ThreadPool::global().setThreadCount(int(state.range(0)));
    FusedModeOverride ovr(fused ? FusedMode::On : FusedMode::Off);
    const auto &algo = algoF4x4_3x3();
    Rng rng(1);
    const int B = 16, C = 96, HW = 96;
    Tensor x(B, C, HW, HW);
    Tensor w(C, C, 3, 3);
    x.fillUniform(rng);
    w.fillUniform(rng);
    WinoWeights W = transformWeights(w, algo);
    WinoPlan plan(algo, B, C, C, HW, HW);
    Tensor y(B, C, HW, HW);
    auto run = [&] {
        if (fused)
            plan.forwardFusedInto(x, W, y);
        else
            plan.forwardInto(x, W, y);
    };
    run(); // warm-up: slabs / strip slots acquired here
    WsProbe probe;
    for (auto _ : state) {
        run();
        benchmark::DoNotOptimize(y.data());
    }
    const double acquires = probe.report(state);
    const int t = plan.tileGrid().tiles();
    reportKernelRate(state, xfFlops(algo, B, C, t) +
                                ewFlops(algo, B, C, C, t) +
                                invFlops(algo, B, C, t));
    if (acquires > 0.5)
        state.SkipWithError("persistent WinoPlan still acquires "
                            "workspace slabs in steady state");
}

void
BM_WinoForward(benchmark::State &state)
{
    winoForwardPlannedMode(state, false);
}
BENCHMARK(BM_WinoForward)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_WinoForwardFused(benchmark::State &state)
{
    winoForwardPlannedMode(state, true);
}
BENCHMARK(BM_WinoForwardFused)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

/**
 * One full training step of a Winograd layer through a persistent
 * plan: forward, weight gradient from the cached tiles, backward-data.
 * The single end-to-end number future PRs track. The fused variant
 * mirrors the WINOMC_FUSED=on layer schedule: the fused forward
 * bypasses the slabs, so the weight-gradient product re-scatters the
 * activations (scatterInput) exactly as nn::ConvLayer::backward does.
 * On this deliberately small, cache-resident shape the re-scatter
 * costs more than the slab round trip saves, so the fused row reads
 * slower here — the forward pair above, on a slab-overflowing shape,
 * is the fusion-win comparison.
 */
void
winoTrainStepPlanned(benchmark::State &state, bool fused)
{
    ThreadPool::global().setThreadCount(int(state.range(0)));
    FusedModeOverride ovr(fused ? FusedMode::On : FusedMode::Off);
    Rng rng(1);
    const auto &algo = algoF4x4_3x3();
    const int B = 4, C = 32, HW = 32;
    Tensor x(B, C, HW, HW);
    Tensor w(C, C, 3, 3);
    Tensor dy(B, C, HW, HW);
    x.fillUniform(rng);
    w.fillUniform(rng);
    dy.fillUniform(rng);
    WinoWeights W = transformWeights(w, algo);
    WinoPlan plan(algo, B, C, C, HW, HW);
    Tensor y(B, C, HW, HW);
    Tensor dx(B, C, HW, HW);
    WinoWeights dW(algo.alpha, C, C);
    auto step = [&] {
        if (fused) {
            plan.forwardFusedInto(x, W, y);
            plan.scatterInput(x); // rebuild Xt for the weight grad
            plan.transformGradOutput(dy);
            plan.gradWeightsFromCachedInto(dW);
            plan.backwardDataFusedInto(dy, W, dx);
        } else {
            plan.forwardInto(x, W, y);
            plan.transformGradOutput(dy);
            plan.gradWeightsFromCachedInto(dW);
            plan.backwardDataFromCachedInto(W, dx);
        }
    };
    step(); // warm-up: slabs / strip slots acquired here
    WsProbe probe;
    for (auto _ : state) {
        step();
        benchmark::DoNotOptimize(y.data());
        benchmark::DoNotOptimize(dx.data());
        benchmark::DoNotOptimize(dW.raw());
    }
    const double acquires = probe.report(state);
    // Executed FLOPs of the schedule above (the fused row pays the
    // extra scatterInput transform; its rate is honest, not inflated).
    const int t = plan.tileGrid().tiles();
    const double fwd = xfFlops(algo, B, C, t) +
                       ewFlops(algo, B, C, C, t) +
                       invFlops(algo, B, C, t);
    const double grad = invFlops(algo, B, C, t) + // dy adjoint
                        ewFlops(algo, B, C, C, t);
    const double bwd = ewFlops(algo, B, C, C, t) +
                       xfFlops(algo, B, C, t);
    double flops = fwd + grad + bwd;
    if (fused)
        flops += xfFlops(algo, B, C, t) + // scatterInput
                 invFlops(algo, B, C, t); // bwd re-gathers dy
    reportKernelRate(state, flops);
    if (acquires > 0.5)
        state.SkipWithError("persistent WinoPlan still acquires "
                            "workspace slabs in steady state");
}

void
BM_WinoEndToEnd(benchmark::State &state)
{
    winoTrainStepPlanned(state, false);
}
BENCHMARK(BM_WinoEndToEnd)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_WinoEndToEndFused(benchmark::State &state)
{
    winoTrainStepPlanned(state, true);
}
BENCHMARK(BM_WinoEndToEndFused)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

// -------------------------------------------------------------------
// Sparse + low-precision execution rows (the quant/ hot path). Every
// row runs the full planned forward under a forced ExecPolicy on one
// channel-heavy shape (B2, 128 -> 128 channels, 32x32, F(4x4,3x3) —
// the regime the zero-skip compaction targets), with the transformed
// weights magnitude-pruned to 85% and a post-ReLU-looking input so
// the activation mask has dead panels to skip. Each row reports two
// extra counters into the --json artifact:
//
//   achieved_sparsity  weight-slab zero fraction after pruning
//                      (exactly reproducible);
//   max_abs_err        max |y - y_dense_fp32| against an in-run dense
//                      fp32 reference on identical inputs. 0.0 for the
//                      sparse fp32 rows (bitwise contract); bounded by
//                      the documented per-precision envelope for the
//                      16-bit rows. winomc-bench-diff gates on this
//                      so a numerics regression fails like a slowdown.
//
// The rate is reported in dense-equivalent FLOPs — skipped work must
// show up as a higher rate / lower ms, never as a shrunken yardstick.
// -------------------------------------------------------------------

/** RAII override of the process-wide ExecPolicy, restoring the prior
 *  request so a forced row cannot leak into later benchmarks. */
struct PolicyOverride
{
    Prec prevPrec = requestedPrec();
    bool prevSparse = requestedSparse();
    PolicyOverride(Prec p, bool sparse)
    {
        setPrec(p);
        setSparseMode(sparse);
    }
    ~PolicyOverride()
    {
        setPrec(prevPrec);
        setSparseMode(prevSparse);
    }
};

/** Shared input/weights/reference of every SPARSE_* / PREC_* row:
 *  built once, dense fp32 reference computed once. */
struct QuantFixture
{
    static constexpr int B = 2, C = 128, HW = 32;
    static constexpr double kPruneTarget = 0.85;

    Tensor x{B, C, HW, HW};
    WinoWeights W;
    Tensor yRef{B, C, HW, HW};
    double achievedSparsity = 0.0;

    QuantFixture()
    {
        const auto &algo = algoF4x4_3x3();
        Rng rng(7);
        // Post-ReLU-looking input: Gaussian, negatives clamped, whole
        // channel planes and patch blocks zeroed so full tile panels
        // go dead alongside scattered zeros.
        x.fillGaussian(rng);
        for (int n = 0; n < B; ++n)
            for (int ch = 0; ch < C; ++ch)
                for (int i = 0; i < HW; ++i)
                    for (int j = 0; j < HW; ++j) {
                        float &v = x.at(n, ch, i, j);
                        if (v < 0.0f || ch % 3 == 0 ||
                            (i / 4 + j / 4) % 2 == 0)
                            v = 0.0f;
                    }
        Tensor w(C, C, 3, 3);
        w.fillUniform(rng);
        W = transformWeights(w, algo);
        quant::magnitudePrune(W, kPruneTarget).apply(W);
        achievedSparsity = quant::winogradWeightSparsity(W);
        PolicyOverride dense(Prec::F32, false);
        WinoPlan ref(algo, B, C, C, HW, HW);
        ref.forwardInto(x, W, yRef);
    }
};

QuantFixture &
quantFixture()
{
    static QuantFixture f;
    return f;
}

/**
 * Forward pass under a forced (precision, sparsity, fused) policy on
 * the shared quant fixture. The dense fp32 row (SPARSE_DenseRef) runs
 * the untouched dense kernels on the same pruned weights and sparse
 * input — the in-artifact baseline the SPARSE_/PREC_ rows are read
 * against.
 */
void
quantForwardPlanned(benchmark::State &state, Prec prec, bool sparse,
                    bool fused)
{
    ThreadPool::global().setThreadCount(defaultThreadCount());
    PolicyOverride pol(prec, sparse);
    FusedModeOverride ovr(fused ? FusedMode::On : FusedMode::Off);
    const auto &algo = algoF4x4_3x3();
    auto &f = quantFixture();
    WinoPlan plan(algo, f.B, f.C, f.C, f.HW, f.HW);
    Tensor y(f.B, f.C, f.HW, f.HW);
    auto run = [&] {
        if (fused)
            plan.forwardFusedInto(f.x, f.W, y);
        else
            plan.forwardInto(f.x, f.W, y);
    };
    run(); // warm-up: slabs / strip slots acquired here
    WsProbe probe;
    for (auto _ : state) {
        run();
        benchmark::DoNotOptimize(y.data());
    }
    probe.report(state);
    const int t = plan.tileGrid().tiles();
    reportKernelRate(state, xfFlops(algo, f.B, f.C, t) +
                                ewFlops(algo, f.B, f.C, f.C, t) +
                                invFlops(algo, f.B, f.C, t));
    state.counters["achieved_sparsity"] = f.achievedSparsity;
    state.counters["max_abs_err"] = double(y.maxAbsDiff(f.yRef));
}

void
BM_SPARSE_DenseRef(benchmark::State &state)
{
    quantForwardPlanned(state, Prec::F32, false, false);
}
BENCHMARK(BM_SPARSE_DenseRef)->Unit(benchmark::kMillisecond);

void
BM_SPARSE_Forward(benchmark::State &state)
{
    quantForwardPlanned(state, Prec::F32, true, false);
}
BENCHMARK(BM_SPARSE_Forward)->Unit(benchmark::kMillisecond);

void
BM_SPARSE_ForwardFused(benchmark::State &state)
{
    quantForwardPlanned(state, Prec::F32, true, true);
}
BENCHMARK(BM_SPARSE_ForwardFused)->Unit(benchmark::kMillisecond);

void
BM_PREC_Bf16Forward(benchmark::State &state)
{
    quantForwardPlanned(state, Prec::Bf16, false, false);
}
BENCHMARK(BM_PREC_Bf16Forward)->Unit(benchmark::kMillisecond);

void
BM_PREC_Fp16Forward(benchmark::State &state)
{
    quantForwardPlanned(state, Prec::F16, false, false);
}
BENCHMARK(BM_PREC_Fp16Forward)->Unit(benchmark::kMillisecond);

void
BM_PREC_Bf16SparseForward(benchmark::State &state)
{
    quantForwardPlanned(state, Prec::Bf16, true, false);
}
BENCHMARK(BM_PREC_Bf16SparseForward)->Unit(benchmark::kMillisecond);

void
BM_ToomCookGenerate(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(
            makeWinograd(int(state.range(0)), int(state.range(1))));
}
BENCHMARK(BM_ToomCookGenerate)->Args({2, 3})->Args({4, 3})->Args({6, 3})
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------- --json baseline dump

struct JsonRecord
{
    std::string name;
    std::string isa;
    std::vector<double> ms; ///< one entry per repetition
    double gflops = 0.0;    ///< last seen (identical across reps)
    double freshBytesPerIter = 0.0;
    double acquiresPerIter = 0.0;
    double achievedSparsity = 0.0; ///< quant rows only (haveQuant)
    double maxAbsErr = 0.0;        ///< quant rows only (haveQuant)
    bool haveQuant = false;
};

/** Console output as usual, plus a record of every per-iteration run
 *  for the --json artifact; repetitions of one benchmark fold into a
 *  single record so the artifact carries run-to-run stddev. */
class RecordingReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &r : runs) {
            if (r.run_type != Run::RT_Iteration)
                continue;
            const std::string name = r.benchmark_name();
            JsonRecord *rec = nullptr;
            auto it = byName.find(name);
            if (it == byName.end()) {
                records.push_back(JsonRecord{});
                byName[name] = records.size() - 1;
                rec = &records.back();
                rec->name = name;
            } else {
                rec = &records[it->second];
            }
            rec->isa = r.report_label.empty() ? rec->isa : r.report_label;
            rec->ms.push_back(r.GetAdjustedRealTime()); // unit: ms
            auto c = r.counters.find("flops_per_sec");
            if (c != r.counters.end())
                rec->gflops = c->second / 1e9;
            c = r.counters.find("ws_fresh_bytes_per_iter");
            if (c != r.counters.end())
                rec->freshBytesPerIter = c->second;
            c = r.counters.find("ws_acquires_per_iter");
            if (c != r.counters.end())
                rec->acquiresPerIter = c->second;
            c = r.counters.find("achieved_sparsity");
            if (c != r.counters.end()) {
                rec->achievedSparsity = c->second;
                rec->haveQuant = true;
            }
            c = r.counters.find("max_abs_err");
            if (c != r.counters.end())
                rec->maxAbsErr = c->second;
        }
        ConsoleReporter::ReportRuns(runs);
    }

    std::vector<JsonRecord> records;

  private:
    std::map<std::string, size_t> byName;
};

void
meanStddev(const std::vector<double> &v, double &mean, double &stddev)
{
    mean = 0.0;
    stddev = 0.0;
    if (v.empty())
        return;
    for (double x : v)
        mean += x;
    mean /= double(v.size());
    if (v.size() < 2)
        return;
    double ss = 0.0;
    for (double x : v)
        ss += (x - mean) * (x - mean);
    stddev = std::sqrt(ss / double(v.size() - 1));
}

bool
writeJson(const std::string &path, const std::vector<JsonRecord> &recs)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "{\n  \"benchmarks\": [\n");
    for (size_t i = 0; i < recs.size(); ++i) {
        double mean = 0.0, stddev = 0.0;
        meanStddev(recs[i].ms, mean, stddev);
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"isa\": \"%s\", "
                     "\"ms_per_iter\": %.4f, \"stddev_ms\": %.4f, "
                     "\"gflops\": %.2f, "
                     "\"ws_fresh_bytes_per_iter\": %.1f, "
                     "\"ws_acquires_per_iter\": %.2f",
                     recs[i].name.c_str(), recs[i].isa.c_str(), mean,
                     stddev, recs[i].gflops, recs[i].freshBytesPerIter,
                     recs[i].acquiresPerIter);
        if (recs[i].haveQuant)
            std::fprintf(f,
                         ", \"achieved_sparsity\": %.4f, "
                         "\"max_abs_err\": %.6e",
                         recs[i].achievedSparsity, recs[i].maxAbsErr);
        std::fprintf(f, "}%s\n", i + 1 < recs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
}

/** Strip "--json <path>" (or "--json=<path>") from argv; returns the
 *  path or "" when the flag is absent. */
std::string
extractJsonFlag(int &argc, char **argv)
{
    std::string path;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            path = argv[++i];
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            path = argv[i] + 7;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    return path;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = extractJsonFlag(argc, argv);
    // A --json artifact should carry run-to-run stddev: default to 3
    // repetitions unless the caller chose a count themselves.
    std::vector<char *> args(argv, argv + argc);
    char repFlag[] = "--benchmark_repetitions=3";
    if (!json_path.empty()) {
        bool hasReps = false;
        for (int i = 1; i < argc; ++i)
            if (std::strncmp(argv[i], "--benchmark_repetitions", 23) == 0)
                hasReps = true;
        if (!hasReps)
            args.push_back(repFlag);
    }
    int argc2 = int(args.size());
    benchmark::Initialize(&argc2, args.data());
    if (benchmark::ReportUnrecognizedArguments(argc2, args.data()))
        return 1;
    RecordingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    if (!json_path.empty()) {
        if (writeJson(json_path, reporter.records))
            std::printf("json baseline: %s\n", json_path.c_str());
        else
            winomc_warn("cannot write json baseline to ", json_path);
    }
    // Emit the observability artifacts before returning so the dump
    // exists even if a wrapper kills the process at exit.
    winomc::metrics::dumpIfConfigured();
    winomc::trace::flushIfConfigured();
    if (!winomc::metrics::configuredPath().empty())
        std::printf("metrics dump: %s\n",
                    winomc::metrics::configuredPath().c_str());
    if (!winomc::trace::configuredPath().empty())
        std::printf("trace file:   %s\n",
                    winomc::trace::configuredPath().c_str());
    return 0;
}
