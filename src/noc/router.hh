/**
 * @file
 * Input-queued wormhole router with virtual channels and credit-based
 * flow control (Table III: 1 GHz router clock, minimal routing).
 *
 * Per cycle each output port grants at most one flit, chosen round-robin
 * among the input VCs routed to it. A head flit acquires the output VC
 * (wormhole: the packet owns it until the tail passes) and must see a
 * downstream credit; body/tail flits follow the established path.
 */

#ifndef WINOMC_NOC_ROUTER_HH
#define WINOMC_NOC_ROUTER_HH

#include <cstddef>
#include <deque>
#include <vector>

#include "noc/flit.hh"

namespace winomc::noc {

class Network;

/** Per-router state; the Network steps all routers synchronously. */
class Router
{
  public:
    /**
     * @param node       node id
     * @param net_ports  network ports (injection ports follow, egress
     *                   is conceptual)
     * @param vcs        virtual channels per port
     * @param buf_depth  flits of buffering per input VC
     * @param inj_lanes  parallel injection channels
     */
    Router(int node, int net_ports, int vcs, int buf_depth,
           int inj_lanes = 1);

    int inputPorts() const { return netPorts + injLanes; }
    int injectionPort(int lane = 0) const { return netPorts + lane; }

    /** True if input (port, vc) can accept one more flit. */
    bool hasSpace(int port, int vc) const;
    /** Deposit an arriving flit into an input buffer. */
    void acceptFlit(int port, int vc, const Flit &f);
    /** Return one credit for output (port, vc). */
    void acceptCredit(int port, int vc);

    /** Total buffered flits (for drain checks). */
    size_t occupancy() const;

  private:
    friend class Network;

    struct InputVc
    {
        std::deque<Flit> fifo;
        int outPort = -1; ///< assigned at head, -1 when idle
        int outVc = -1;
    };

    int node;
    int netPorts;
    int vcs;
    int bufDepth;
    int injLanes;

    /** inputs[port][vc]; port == netPorts is the injection port. */
    std::vector<std::vector<InputVc>> inputs;
    /** credits[port][vc]: free downstream slots (network ports only). */
    std::vector<std::vector<int>> credits;
    /** ownerIn[port][vc]: flattened input id owning output VC, or -1. */
    std::vector<std::vector<int>> ownerIn;
    /** Round-robin pointers per output port (egress = netPorts). */
    std::vector<int> rrPtr;
};

} // namespace winomc::noc

#endif // WINOMC_NOC_ROUTER_HH
