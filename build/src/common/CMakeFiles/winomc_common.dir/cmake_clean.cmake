file(REMOVE_RECURSE
  "CMakeFiles/winomc_common.dir/logging.cc.o"
  "CMakeFiles/winomc_common.dir/logging.cc.o.d"
  "CMakeFiles/winomc_common.dir/stats.cc.o"
  "CMakeFiles/winomc_common.dir/stats.cc.o.d"
  "CMakeFiles/winomc_common.dir/table.cc.o"
  "CMakeFiles/winomc_common.dir/table.cc.o.d"
  "libwinomc_common.a"
  "libwinomc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winomc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
