file(REMOVE_RECURSE
  "CMakeFiles/fig06_comm_per_layer.dir/fig06_comm_per_layer.cpp.o"
  "CMakeFiles/fig06_comm_per_layer.dir/fig06_comm_per_layer.cpp.o.d"
  "fig06_comm_per_layer"
  "fig06_comm_per_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_comm_per_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
