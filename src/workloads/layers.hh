/**
 * @file
 * The five representative convolution layers of Table II.
 *
 * The paper evaluates one early, two middle, and two late 3x3 layers at
 * batch 256; the exact dimensions are not legible in the available
 * text, so representative ResNet/VGG-family shapes are used that match
 * the description (early = largest feature map / smallest weights, late
 * = smallest feature map / largest weights). See DESIGN.md.
 */

#ifndef WINOMC_WORKLOADS_LAYERS_HH
#define WINOMC_WORKLOADS_LAYERS_HH

#include <vector>

#include "winograd/conv_spec.hh"

namespace winomc::workloads {

/** The Table II layers at the given batch size (paper: 256). */
std::vector<ConvSpec> tableTwoLayers(int batch = 256);

/** Same shapes with 5x5 filters (the Fig 16 experiment). */
std::vector<ConvSpec> tableTwoLayers5x5(int batch = 256);

/**
 * Generalized-geometry layers the paper's table omits but modern nets
 * lead with: a 7x7 stride-2 stem, a 5x5 inception-style layer, and a
 * 3x3 stride-2 downsampler. None fit the plain F(m,3) pipeline — they
 * exercise the descriptor generalization, the DWM decomposition, and
 * the auto-tuner's direct-vs-decomposed calls.
 */
std::vector<ConvSpec> modernLayers(int batch = 256);

} // namespace winomc::workloads

#endif // WINOMC_WORKLOADS_LAYERS_HH
