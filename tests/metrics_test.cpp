/**
 * @file
 * Tests for the observability layer: the metrics registry (counters /
 * gauges / timers, per-thread shard merging, JSON/CSV export) and the
 * Chrome trace-event recorder. The thread-merge tests run under an
 * 8-thread pool and carry the `concurrency` label so a
 * WINOMC_SANITIZE=thread build keeps the registry TSan-clean.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/metrics.hh"
#include "common/parallel.hh"
#include "common/trace.hh"

namespace winomc {
namespace {

/** Enables metrics + trace for one test and restores/clears after. */
class ObservabilityTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        wasMetrics = metrics::enabled();
        wasTrace = trace::enabled();
        metrics::setEnabled(true);
        trace::setEnabled(true);
        metrics::reset();
        trace::reset();
    }

    void
    TearDown() override
    {
        metrics::reset();
        trace::reset();
        metrics::setEnabled(wasMetrics);
        trace::setEnabled(wasTrace);
    }

    bool wasMetrics = false;
    bool wasTrace = false;
};

const metrics::Sample *
find(const std::vector<metrics::Sample> &snap, const std::string &name)
{
    for (const auto &s : snap)
        if (s.name == name)
            return &s;
    return nullptr;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

TEST_F(ObservabilityTest, CounterGaugeTimerBasics)
{
    metrics::counterAdd("t.counter", 2.0);
    metrics::counterAdd("t.counter", 3.0);
    metrics::gaugeSet("t.gauge", 1.5);
    metrics::gaugeSet("t.gauge", 2.5);
    metrics::timerAdd("t.timer", 0.25);
    metrics::timerAdd("t.timer", 0.75);

    auto snap = metrics::snapshot();
    const auto *c = find(snap, "t.counter");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->kind, metrics::Kind::Counter);
    EXPECT_DOUBLE_EQ(c->value, 5.0);
    EXPECT_EQ(c->count, 2u);

    const auto *g = find(snap, "t.gauge");
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->kind, metrics::Kind::Gauge);
    EXPECT_DOUBLE_EQ(g->value, 2.5); // last write wins

    const auto *t = find(snap, "t.timer");
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->kind, metrics::Kind::Timer);
    EXPECT_EQ(t->count, 2u);
    EXPECT_DOUBLE_EQ(t->totalSec, 1.0);
    EXPECT_DOUBLE_EQ(t->minSec, 0.25);
    EXPECT_DOUBLE_EQ(t->maxSec, 0.75);
}

TEST_F(ObservabilityTest, DisabledPathIsANoOp)
{
    metrics::setEnabled(false);
    metrics::counterAdd("t.hidden", 7.0);
    metrics::gaugeSet("t.hidden_gauge", 7.0);
    metrics::timerAdd("t.hidden_timer", 7.0);
    {
        metrics::ScopedTimer timer("t.hidden_scope");
    }
    metrics::setEnabled(true);
    auto snap = metrics::snapshot();
    EXPECT_EQ(find(snap, "t.hidden"), nullptr);
    EXPECT_EQ(find(snap, "t.hidden_gauge"), nullptr);
    EXPECT_EQ(find(snap, "t.hidden_timer"), nullptr);
    EXPECT_EQ(find(snap, "t.hidden_scope"), nullptr);
}

/// Counters and timers recorded concurrently from an 8-thread
/// parallelFor merge to exact totals (the TSan target of the
/// `concurrency` label).
TEST_F(ObservabilityTest, ShardsMergeExactlyUnderParallelFor)
{
    constexpr std::int64_t kN = 10000;
    ThreadPool pool(8);
    pool.parallelFor(0, kN, 1, [](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
            metrics::counterAdd("t.par.counter");
            metrics::timerAdd("t.par.timer", 0.001);
        }
    });

    auto snap = metrics::snapshot();
    const auto *c = find(snap, "t.par.counter");
    ASSERT_NE(c, nullptr);
    EXPECT_DOUBLE_EQ(c->value, double(kN));
    EXPECT_EQ(c->count, std::uint64_t(kN));

    const auto *t = find(snap, "t.par.timer");
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->count, std::uint64_t(kN));
    EXPECT_NEAR(t->totalSec, double(kN) * 0.001, 1e-6);
}

/// Shards of exited worker threads survive into the merged snapshot.
TEST_F(ObservabilityTest, RetiredThreadShardsAreKept)
{
    {
        ThreadPool pool(4);
        pool.parallelFor(0, 1000, 1,
                         [](std::int64_t lo, std::int64_t hi) {
                             for (std::int64_t i = lo; i < hi; ++i)
                                 metrics::counterAdd("t.retired");
                         });
    } // pool destroyed: worker shards merge into the registry
    const auto *c = find(metrics::snapshot(), "t.retired");
    ASSERT_NE(c, nullptr);
    EXPECT_DOUBLE_EQ(c->value, 1000.0);
}

TEST_F(ObservabilityTest, JsonDumpRoundTrips)
{
    metrics::counterAdd("t.json.counter", 42.0);
    metrics::timerAdd("t.json.timer", 0.5);
    metrics::gaugeSet("t.json.gauge", 2.25);

    const std::string path =
        ::testing::TempDir() + "metrics_roundtrip.json";
    metrics::dumpToFile(path);
    const std::string body = slurp(path);
    std::remove(path.c_str());

    // Structural JSON (one object, metrics array) with the exact
    // recorded values, so the artifact reparses downstream.
    EXPECT_EQ(body.front(), '{');
    EXPECT_NE(body.find("\"metrics\": ["), std::string::npos);
    EXPECT_NE(body.find("{\"name\": \"t.json.counter\", "
                        "\"kind\": \"counter\", \"count\": 1, "
                        "\"value\": 42}"),
              std::string::npos);
    EXPECT_NE(body.find("{\"name\": \"t.json.gauge\", "
                        "\"kind\": \"gauge\", \"count\": 1, "
                        "\"value\": 2.25}"),
              std::string::npos);
    EXPECT_NE(body.find("\"name\": \"t.json.timer\", "
                        "\"kind\": \"timer\", \"count\": 1, "
                        "\"total_sec\": 0.5"),
              std::string::npos);
}

TEST_F(ObservabilityTest, CsvDumpHasHeaderAndRows)
{
    metrics::counterAdd("t.csv.counter", 3.0);
    const std::string path = ::testing::TempDir() + "metrics.csv";
    metrics::dumpToFile(path);
    const std::string body = slurp(path);
    std::remove(path.c_str());
    EXPECT_EQ(body.rfind("name,kind,count,value,total_sec", 0), 0u);
    EXPECT_NE(body.find("t.csv.counter,counter,1,3"),
              std::string::npos);
}

TEST_F(ObservabilityTest, ResetClearsEverything)
{
    metrics::counterAdd("t.reset");
    metrics::reset();
    EXPECT_TRUE(metrics::snapshot().empty());
}

TEST_F(ObservabilityTest, SpanFeedsTraceAndMetrics)
{
    {
        WINOMC_SPAN("t.span", "test");
    }
    const auto *t = find(metrics::snapshot(), "t.span");
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->kind, metrics::Kind::Timer);
    EXPECT_EQ(t->count, 1u);

    const std::string json = trace::toJson();
    EXPECT_NE(json.find("\"name\": \"t.span\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(ObservabilityTest, TraceFileIsChromeLoadable)
{
    {
        WINOMC_SPAN("t.file_span", "test");
    }
    trace::emitCompleteAt("sim.task", "mpt-sim", 10.0, 5.0, 7, 2);
    trace::namePid(7, "simulated timeline");

    const std::string path = ::testing::TempDir() + "t.trace.json";
    trace::flushToFile(path);
    const std::string body = slurp(path);
    std::remove(path.c_str());

    // The chrome://tracing loader wants a traceEvents array of "X"
    // spans with numeric ts/dur/pid/tid.
    EXPECT_EQ(body.rfind("{\"traceEvents\": [", 0), 0u);
    EXPECT_NE(body.find("\"name\": \"sim.task\", \"cat\": \"mpt-sim\", "
                        "\"ph\": \"X\", \"ts\": 10, \"dur\": 5, "
                        "\"pid\": 7, \"tid\": 2"),
              std::string::npos);
    EXPECT_NE(body.find("\"name\": \"process_name\", \"ph\": \"M\", "
                        "\"pid\": 7"),
              std::string::npos);
    EXPECT_NE(body.find("\"name\": \"t.file_span\""),
              std::string::npos);
}

TEST_F(ObservabilityTest, TraceEventsRecordFromWorkers)
{
    ThreadPool pool(8);
    pool.parallelFor(0, 64, 1, [](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
            WINOMC_SPAN("t.worker_span", "test");
        }
    });
    const std::string json = trace::toJson();
    size_t count = 0, at = 0;
    while ((at = json.find("t.worker_span", at)) != std::string::npos) {
        ++count;
        ++at;
    }
    EXPECT_EQ(count, 64u);
}

TEST_F(ObservabilityTest, DisabledTraceRecordsNothing)
{
    trace::setEnabled(false);
    {
        WINOMC_SPAN("t.invisible", "test");
    }
    trace::emitCompleteAt("t.invisible2", "test", 0, 1, 3, 0);
    trace::setEnabled(true);
    const std::string json = trace::toJson();
    EXPECT_EQ(json.find("t.invisible"), std::string::npos);
}

} // namespace
} // namespace winomc
