/**
 * @file
 * Tests for the NDP timing and energy models.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "energy/energy.hh"
#include "ndp/hmc_dram.hh"
#include "ndp/timing.hh"

namespace winomc {
namespace {

using namespace ndp;
using namespace energy;

TEST(SystolicTiming, SingleBlock)
{
    NdpConfig cfg;
    // 64x64 output, K=128: one block, 128 + 2*64 cycles.
    EXPECT_EQ(systolicCycles(cfg, 64, 128, 64), uint64_t(128 + 128));
    EXPECT_EQ(systolicCycles(cfg, 64, 1000, 64), uint64_t(1000 + 128));
}

TEST(SystolicTiming, BlocksTile)
{
    NdpConfig cfg;
    // 130 x 70 output: ceil(130/64)=3, ceil(70/64)=2 -> 6 blocks; the
    // pipeline fill/drain is paid once (double-buffered dataflow).
    EXPECT_EQ(systolicCycles(cfg, 130, 32, 70),
              uint64_t(6) * 32 + 128);
}

TEST(SystolicTiming, TimeScalesWithClock)
{
    NdpConfig cfg;
    double t1 = systolicTime(cfg, 64, 64, 64);
    cfg.clockHz = 2e9;
    EXPECT_NEAR(systolicTime(cfg, 64, 64, 64), t1 / 2, 1e-12);
}

TEST(VectorTiming, LaneRounding)
{
    NdpConfig cfg; // 64 lanes at 1 GHz
    EXPECT_NEAR(vectorTime(cfg, 64), 1e-9, 1e-15);
    EXPECT_NEAR(vectorTime(cfg, 65), 2e-9, 1e-15);
}

TEST(DramTiming, BandwidthModel)
{
    NdpConfig cfg; // 320 GB/s
    EXPECT_NEAR(dramTime(cfg, 320'000'000), 1e-3, 1e-9);
}

TEST(OverlappedTask, MaxOfComputeAndDram)
{
    NdpConfig cfg;
    cfg.taskOverheadSec = 0.0;
    // Compute-bound.
    EXPECT_NEAR(overlappedTaskTime(cfg, 1e-3, 1000), 1e-3, 1e-9);
    // DRAM-bound: 3.2 GB at 320 GB/s = 10 ms.
    EXPECT_NEAR(overlappedTaskTime(cfg, 1e-3, 3'200'000'000ULL), 1e-2,
                1e-8);
}

TEST(OverlappedTask, OverheadAdds)
{
    NdpConfig cfg;
    cfg.taskOverheadSec = 1e-6;
    double t = overlappedTaskTime(cfg, 1e-3, 0);
    EXPECT_NEAR(t, 1e-3 + 1e-6, 1e-12);
}

TEST(EnergyModel, PaperMacConstants)
{
    EnergyModel em;
    // 1e12 mults at 3.7 pJ + 1e12 adds at 0.9 pJ = 4.6 J.
    EXPECT_NEAR(em.macsEnergy(1'000'000'000'000ULL,
                              1'000'000'000'000ULL), 4.6, 1e-9);
}

TEST(EnergyModel, LinkIdleScalesWithTimeAndLinks)
{
    EnergyModel em;
    double e = em.linkIdleEnergy(4, 0, 2.0);
    EXPECT_NEAR(e, 4 * 1.2 * 2.0, 1e-12);
    EXPECT_GT(em.linkIdleEnergy(0, 4, 1.0), 0.0);
}

TEST(EnergyBreakdown, AccumulatesAndTotals)
{
    EnergyBreakdown a;
    a.computeJ = 1.0;
    a.dramJ = 2.0;
    EnergyBreakdown b;
    b.sramJ = 0.5;
    b.linkJ = 0.25;
    a += b;
    EXPECT_DOUBLE_EQ(a.total(), 3.75);
    EXPECT_NE(a.toString().find("total"), std::string::npos);
}

// ------------------------------------------------------------- HMC DRAM

TEST(HmcDram, SingleRequestLatency)
{
    HmcDram d;
    int id = d.submit(0, 32);
    ASSERT_TRUE(d.drain(1000));
    const DramRequest &req = d.request(id);
    EXPECT_TRUE(req.done);
    // Cold access: tRCD + tCAS + burst.
    HmcConfig cfg;
    Tick burst = Tick((cfg.accessBytes + cfg.busBytesPerCycle - 1) /
                      uint32_t(cfg.busBytesPerCycle));
    EXPECT_EQ(req.completed, Tick(cfg.tRcd + cfg.tCas) + burst);
}

TEST(HmcDram, StreamingSustainsMostOfPeak)
{
    HmcDram d;
    for (int k = 0; k < 256; ++k)
        d.submit(uint64_t(k) * 4096, 4096);
    ASSERT_TRUE(d.drain(10'000'000));
    // Table III's 320 GB/s assumption: streams must get close to it.
    EXPECT_GT(d.achievedBandwidth(), 0.55 * d.config().peakBandwidth());
    EXPECT_GT(d.rowHits(), 10 * d.rowMisses());
}

TEST(HmcDram, RandomAccessesCollapse)
{
    HmcDram d;
    Rng rng(5);
    for (int k = 0; k < 5000; ++k)
        d.submit(uint64_t(rng.uniformInt(0, 1 << 26)) & ~31ULL, 32);
    ASSERT_TRUE(d.drain(10'000'000));
    EXPECT_LT(d.achievedBandwidth(), 0.2 * d.config().peakBandwidth());
    EXPECT_GT(d.rowMisses(), d.rowHits());
}

TEST(HmcDram, FrFcfsBeatsFcfsOnConflictingStreams)
{
    auto run = [](bool frfcfs) {
        HmcConfig cfg;
        cfg.frfcfs = frfcfs;
        HmcDram d(cfg);
        Rng rng(2);
        // Interleaved streams thrashing row buffers when served
        // strictly in order.
        for (int k = 0; k < 3000; ++k) {
            d.submit(uint64_t(k % 2) * 8 * 1024 * 1024 +
                         uint64_t(k / 2) * 32 +
                         uint64_t(rng.uniformInt(0, 1)) * 1024 * 1024,
                     32);
        }
        EXPECT_TRUE(d.drain(10'000'000));
        return d.achievedBandwidth();
    };
    double fcfs = run(false);
    double frfcfs = run(true);
    EXPECT_GT(frfcfs, 2.0 * fcfs);
}

TEST(HmcDram, AllRequestsComplete)
{
    HmcDram d;
    Rng rng(9);
    std::vector<int> ids;
    for (int k = 0; k < 500; ++k)
        ids.push_back(d.submit(
            uint64_t(rng.uniformInt(0, 1 << 22)) & ~31ULL,
            uint32_t(32 * rng.uniformInt(1, 8))));
    ASSERT_TRUE(d.drain(10'000'000));
    EXPECT_EQ(d.pendingCount(), 0u);
    for (int id : ids) {
        EXPECT_TRUE(d.request(id).done);
        EXPECT_GE(d.request(id).completed, d.request(id).issued);
    }
}

} // namespace
} // namespace winomc
