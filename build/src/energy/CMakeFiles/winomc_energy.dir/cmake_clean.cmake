file(REMOVE_RECURSE
  "CMakeFiles/winomc_energy.dir/energy.cc.o"
  "CMakeFiles/winomc_energy.dir/energy.cc.o.d"
  "libwinomc_energy.a"
  "libwinomc_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winomc_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
