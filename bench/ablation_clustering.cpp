/**
 * @file
 * Ablation: per-layer dynamic-clustering choices (Section IV) and the
 * contribution of each MPT ingredient - fixed shapes vs the optimizer,
 * prediction on/off, 1D vs 2D transfer - over the Table II layers.
 */

#include <cstdio>

#include "common/table.hh"
#include "mpt/clustering.hh"
#include "mpt/layer_sim.hh"
#include "workloads/layers.hh"

using namespace winomc;
using namespace winomc::mpt;

int
main()
{
    std::printf("Ablation: dynamic clustering and prediction, 256 NDP "
                "workers\n\n");
    SystemParams sp;

    Table t("per-layer iteration time (us) under each fixed shape; "
            "* marks the dynamic choice");
    t.header({"layer", "(1,256)", "(4,64)", "(16,16)", "chosen",
              "pred off us", "pred gain"});
    for (const auto &spec : workloads::tableTwoLayers()) {
        auto choices = evaluateShapes(spec, sp);
        double t1 = 0, t4 = 0, t16 = 0;
        for (const auto &c : choices) {
            double us = c.seconds * 1e6;
            if (c.shape.ng == 1)
                t1 = us;
            else if (c.shape.ng == 4)
                t4 = us;
            else
                t16 = us;
        }
        auto best = choices.front().shape;
        double no_pred =
            simulateLayerWithShape(spec, Strategy::WinoMPT, sp, best)
                .totalSeconds() * 1e6;
        double with_pred = choices.front().seconds * 1e6;

        t.row()
            .cell(spec.name)
            .cell(t1, 1)
            .cell(t4, 1)
            .cell(t16, 1)
            .cell(best.toString() + "*")
            .cell(no_pred, 1)
            .cell(no_pred / with_pred, 2);
    }
    t.print();

    std::printf("expected: early layers choose (1,256); later layers "
                "shift to (4,64)/(16,16); prediction only helps shapes "
                "with tile transfer.\n");
    return 0;
}
