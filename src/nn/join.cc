#include "nn/join.hh"

namespace winomc::nn {

FractalJoinBlock::FractalJoinBlock(std::vector<ModulePtr> branches_,
                                   JoinMode mode_)
    : branches(std::move(branches_)), branchRelus(branches.size()),
      mode(mode_)
{
    winomc_assert(branches.size() >= 2, "join needs >= 2 branches");
}

Tensor
FractalJoinBlock::forward(const Tensor &x, bool train)
{
    const float scale = 1.0f / float(branches.size());
    Tensor acc;
    for (size_t k = 0; k < branches.size(); ++k) {
        Tensor out = branches[k]->forward(x, train);
        if (mode == JoinMode::Standard)
            out = branchRelus[k].forward(out, train);
        if (k == 0) {
            acc = std::move(out);
        } else {
            winomc_assert(acc.sameShape(out),
                          "join branch shape mismatch");
            acc += out;
        }
    }
    acc *= scale;
    if (mode == JoinMode::Modified)
        acc = joinRelu.forward(acc, train);
    return acc;
}

Tensor
FractalJoinBlock::backward(const Tensor &dy)
{
    const float scale = 1.0f / float(branches.size());
    Tensor djoin = dy;
    if (mode == JoinMode::Modified)
        djoin = joinRelu.backward(djoin);
    djoin *= scale;

    Tensor dx;
    for (size_t k = 0; k < branches.size(); ++k) {
        Tensor g = djoin;
        if (mode == JoinMode::Standard)
            g = branchRelus[k].backward(g);
        Tensor d = branches[k]->backward(g);
        if (k == 0)
            dx = std::move(d);
        else
            dx += d;
    }
    return dx;
}

void
FractalJoinBlock::step(float lr)
{
    for (auto &b : branches)
        b->step(lr);
}

size_t
FractalJoinBlock::paramCount() const
{
    size_t n = 0;
    for (const auto &b : branches)
        n += b->paramCount();
    return n;
}

std::string
FractalJoinBlock::name() const
{
    return mode == JoinMode::Standard ? "join_standard" : "join_modified";
}

ModulePtr
makeFractalPair(int in_ch, int out_ch, int r, JoinMode join,
                ConvMode conv_mode, const WinogradAlgo &algo, Rng &rng)
{
    auto deep = std::make_unique<Sequential>();
    deep->add(std::make_unique<ConvLayer>(in_ch, out_ch, r, conv_mode,
                                          algo, rng));
    deep->add(std::make_unique<ReLU>());
    deep->add(std::make_unique<ConvLayer>(out_ch, out_ch, r, conv_mode,
                                          algo, rng));

    auto shallow = std::make_unique<ConvLayer>(in_ch, out_ch, r,
                                               conv_mode, algo, rng);

    std::vector<ModulePtr> branches;
    branches.push_back(std::move(deep));
    branches.push_back(std::move(shallow));
    return std::make_unique<FractalJoinBlock>(std::move(branches), join);
}

} // namespace winomc::nn
