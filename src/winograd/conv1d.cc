#include "winograd/conv1d.hh"

#include <array>
#include <vector>

#include "common/logging.hh"

namespace winomc {

Tensor
winograd1dForward(const Tensor &x, const Tensor &w,
                  const WinogradAlgo &algo)
{
    winomc_assert(w.h() == algo.r && w.w() == 1,
                  "1D Winograd expects (J, I, r, 1) filters matching "
                  "algo r");
    winomc_assert(x.c() == w.c(), "channel mismatch");
    winomc_assert(algo.r % 2 == 1, "\"same\" needs odd r");
    constexpr int kMaxAlpha = 8;
    winomc_assert(algo.alpha <= kMaxAlpha, "alpha too large");

    const int a = algo.alpha;
    const int m = algo.m;
    const int pad = (algo.r - 1) / 2;
    const int tiles = (x.h() + m - 1) / m;
    const int I = x.c(), J = w.n();

    // Winograd-domain filters: G w (a x 1 per (j, i) pair).
    std::vector<double> gw(size_t(J) * I * a, 0.0);
    for (int j = 0; j < J; ++j)
        for (int i = 0; i < I; ++i)
            for (int u = 0; u < a; ++u) {
                double acc = 0;
                for (int k = 0; k < algo.r; ++k)
                    acc += algo.G.at(u, k) * w.at(j, i, k, 0);
                gw[(size_t(j) * I + i) * a + u] = acc;
            }

    Tensor y(x.n(), J, x.h(), x.w());
    std::array<double, kMaxAlpha> seg{};
    std::array<double, kMaxAlpha> tx{};

    for (int b = 0; b < x.n(); ++b) {
        for (int col = 0; col < x.w(); ++col) {
            for (int t = 0; t < tiles; ++t) {
                const int r0 = t * m - pad;
                // Transform every input channel's segment, then the
                // element-wise dot across channels per output channel.
                std::vector<double> X(size_t(I) * a, 0.0);
                for (int i = 0; i < I; ++i) {
                    for (int u = 0; u < a; ++u) {
                        int rr = r0 + u;
                        seg[size_t(u)] =
                            rr >= 0 && rr < x.h()
                                ? double(x.at(b, i, rr, col))
                                : 0.0;
                    }
                    for (int u = 0; u < a; ++u) {
                        double acc = 0;
                        for (int k = 0; k < a; ++k)
                            acc += algo.BT.at(u, k) * seg[size_t(k)];
                        X[size_t(i) * a + u] = acc;
                    }
                }
                for (int j = 0; j < J; ++j) {
                    for (int u = 0; u < a; ++u) {
                        double acc = 0;
                        for (int i = 0; i < I; ++i)
                            acc += X[size_t(i) * a + u] *
                                   gw[(size_t(j) * I + i) * a + u];
                        tx[size_t(u)] = acc;
                    }
                    for (int o = 0; o < m; ++o) {
                        int rr = t * m + o;
                        if (rr >= x.h())
                            continue;
                        double acc = 0;
                        for (int u = 0; u < a; ++u)
                            acc += algo.AT.at(o, u) * tx[size_t(u)];
                        y.at(b, j, rr, col) = float(acc);
                    }
                }
            }
        }
    }
    return y;
}

Tensor
directConv1dForward(const Tensor &x, const Tensor &w)
{
    winomc_assert(w.w() == 1 && w.h() % 2 == 1,
                  "expects odd (J, I, r, 1) filters");
    winomc_assert(x.c() == w.c(), "channel mismatch");
    const int r = w.h();
    const int pad = (r - 1) / 2;
    Tensor y(x.n(), w.n(), x.h(), x.w());

    for (int b = 0; b < x.n(); ++b)
        for (int j = 0; j < w.n(); ++j)
            for (int oy = 0; oy < x.h(); ++oy)
                for (int ox = 0; ox < x.w(); ++ox) {
                    double acc = 0;
                    for (int i = 0; i < x.c(); ++i)
                        for (int k = 0; k < r; ++k) {
                            int iy = oy + k - pad;
                            if (iy < 0 || iy >= x.h())
                                continue;
                            acc += double(x.at(b, i, iy, ox)) *
                                   w.at(j, i, k, 0);
                        }
                    y.at(b, j, oy, ox) = float(acc);
                }
    return y;
}

} // namespace winomc
